package sdpolicy

import (
	"context"
	"encoding/json"
	"math"
	"path/filepath"
	"testing"
)

// TestPrimeFromWireResultRoundTrips is the report-frame contract at
// the API level: a Result that crossed the wire (public JSON only),
// restored with SetReportJSON and primed into a second engine, must
// serve the same campaign point as a pure cache hit with byte-equal
// output — and survive a SaveCache/LoadCache round trip with its
// per-job report intact.
func TestPrimeFromWireResultRoundTrips(t *testing.T) {
	ctx := context.Background()
	point := NewPoint("wl5", 0.2, 1, Options{Policy: "sd", MaxSlowdown: 10})

	source := NewEngine(2, 16)
	want, err := source.SimulatePoint(ctx, point)
	if err != nil {
		t.Fatal(err)
	}
	reportJSON, err := want.ReportJSON()
	if err != nil {
		t.Fatal(err)
	}

	// Cross the wire: marshal/unmarshal keeps only public fields, the
	// report frame carries the rest.
	wire, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var restored Result
	if err := json.Unmarshal(wire, &restored); err != nil {
		t.Fatal(err)
	}
	if err := restored.SetReportJSON(reportJSON); err != nil {
		t.Fatal(err)
	}

	warmed := NewEngine(2, 16)
	if err := warmed.Prime(point, &restored); err != nil {
		t.Fatal(err)
	}
	got, err := warmed.SimulatePoint(ctx, point)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := warmed.CacheStats()
	if hits != 1 || misses != 0 {
		t.Fatalf("hits %d misses %d after priming, want 1 and 0", hits, misses)
	}
	gotJSON, _ := json.Marshal(got)
	if string(gotJSON) != string(wire) {
		t.Fatalf("primed result diverged:\n%s\nvs\n%s", gotJSON, wire)
	}
	if len(got.Daily()) == 0 || len(got.Daily()) != len(want.Daily()) {
		t.Fatalf("primed report lost daily rows: %d vs %d", len(got.Daily()), len(want.Daily()))
	}

	// The primed entry spills and reloads like a simulated one.
	spill := filepath.Join(t.TempDir(), CacheFileName)
	stats, err := warmed.SaveCache(spill)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 1 {
		t.Fatalf("spilled %d entries, want 1", stats.Entries)
	}
	reloaded := NewEngine(2, 16)
	if err := reloaded.LoadCache(spill); err != nil {
		t.Fatal(err)
	}
	res, err := reloaded.SimulatePoint(ctx, point)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := reloaded.CacheStats(); misses != 0 {
		t.Fatal("reloaded spill did not serve the point from cache")
	}
	if len(res.Daily()) != len(want.Daily()) {
		t.Fatal("report lost across spill round trip")
	}
}

// TestPrimeRejectsBadInputs: a nil result or an invalid point must not
// poison the cache.
func TestPrimeRejectsBadInputs(t *testing.T) {
	e := NewEngine(1, 4)
	if err := e.Prime(NewPoint("wl1", 0.1, 1, Options{}), nil); err == nil {
		t.Fatal("nil result primed")
	}
	bad := NewPoint("wl1", 0.1, 1, Options{})
	bad.Scale = math.NaN() // a NaN key could never be looked up again
	if err := e.Prime(bad, &Result{}); err == nil {
		t.Fatal("invalid point primed")
	}
	// Priming into a cache-disabled engine is a harmless no-op.
	off := NewEngine(1, 0)
	if err := off.Prime(NewPoint("wl1", 0.1, 1, Options{}), &Result{}); err != nil {
		t.Fatal(err)
	}
}
