package sdpolicy

import (
	"fmt"
	"math"
)

// Variant is one labelled scheduler configuration of an experiment sweep.
type Variant struct {
	Label   string
	Options Options
}

// MaxSDVariants returns the Figures 1-3 configurations: MAXSD 5, 10, 50,
// infinite, and the dynamic feedback cut-off DynAVGSD. All use
// SharingFactor 0.5 and the ideal runtime model, as in Section 4.1.
func MaxSDVariants() []Variant {
	return []Variant{
		{"MAXSD 5", Options{Policy: "sd", MaxSlowdown: 5}},
		{"MAXSD 10", Options{Policy: "sd", MaxSlowdown: 10}},
		{"MAXSD 50", Options{Policy: "sd", MaxSlowdown: 50}},
		{"MAXSD inf", Options{Policy: "sd"}},
		{"DynAVGSD", Options{Policy: "sd", DynamicCutoff: "avg"}},
	}
}

// SweepRow is one (workload, variant) point of Figures 1-3, normalised
// to the static backfill baseline of the same workload: 1.0 means equal,
// below 1.0 means the SD configuration improved the metric.
type SweepRow struct {
	Workload        string
	Variant         string
	Makespan        float64
	AvgResponse     float64
	AvgSlowdown     float64
	MalleableStarts int
}

// SweepMaxSD regenerates Figures 1-3: for each workload, the static
// baseline and every MAX_SLOWDOWN variant, reporting normalised
// makespan, response and slowdown.
func SweepMaxSD(workloads []string, scale float64, seed uint64) ([]SweepRow, error) {
	var rows []SweepRow
	for _, name := range workloads {
		w, err := NewWorkload(name, scale, seed)
		if err != nil {
			return nil, err
		}
		base, err := Simulate(w, Options{Policy: "static"})
		if err != nil {
			return nil, fmt.Errorf("%s static: %w", name, err)
		}
		for _, v := range MaxSDVariants() {
			res, err := Simulate(w, v.Options)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", name, v.Label, err)
			}
			rows = append(rows, SweepRow{
				Workload:        name,
				Variant:         v.Label,
				Makespan:        ratio(float64(res.Makespan), float64(base.Makespan)),
				AvgResponse:     ratio(res.AvgResponse, base.AvgResponse),
				AvgSlowdown:     ratio(res.AvgSlowdown, base.AvgSlowdown),
				MalleableStarts: res.MalleableStarts,
			})
		}
	}
	return rows, nil
}

// ModelRow is one Figure 8 point: an SD-Policy DynAVGSD run under one
// runtime model, normalised to the static baseline under the same model.
type ModelRow struct {
	Workload    string
	Model       string
	Makespan    float64
	AvgResponse float64
	AvgSlowdown float64
}

// CompareRuntimeModels regenerates Figure 8: SD-Policy with the dynamic
// cut-off under the ideal and the worst-case runtime models.
func CompareRuntimeModels(workloads []string, scale float64, seed uint64) ([]ModelRow, error) {
	var rows []ModelRow
	for _, name := range workloads {
		w, err := NewWorkload(name, scale, seed)
		if err != nil {
			return nil, err
		}
		for _, mdl := range []string{"ideal", "worst"} {
			base, err := Simulate(w, Options{Policy: "static", Model: mdl})
			if err != nil {
				return nil, err
			}
			res, err := Simulate(w, Options{Policy: "sd", DynamicCutoff: "avg", Model: mdl})
			if err != nil {
				return nil, err
			}
			rows = append(rows, ModelRow{
				Workload:    name,
				Model:       mdl,
				Makespan:    ratio(float64(res.Makespan), float64(base.Makespan)),
				AvgResponse: ratio(res.AvgResponse, base.AvgResponse),
				AvgSlowdown: ratio(res.AvgSlowdown, base.AvgSlowdown),
			})
		}
	}
	return rows, nil
}

// BigAnalysis is the Section 4.2 study of the large workload (Figures
// 4-7): static vs SD-Policy MAXSD 10 on the Curie-like trace, with
// category heatmaps and per-day series.
type BigAnalysis struct {
	Static *Result
	SD     *Result
	// Ratios are static/SD means per (node bucket × runtime bucket):
	// above 1.0 means SD improved that category (Figures 4-6).
	SlowdownRatio [][]float64
	RunTimeRatio  [][]float64
	WaitRatio     [][]float64
	// Daily series of both runs (Figure 7).
	StaticDaily []DayPoint
	SDDaily     []DayPoint
}

// AnalyzeBigWorkload regenerates Figures 4-7 on the wl4 Curie-like
// workload with the paper's best static cut-off (MAXSD 10).
func AnalyzeBigWorkload(scale float64, seed uint64) (*BigAnalysis, error) {
	w, err := NewWorkload("wl4", scale, seed)
	if err != nil {
		return nil, err
	}
	static, err := Simulate(w, Options{Policy: "static"})
	if err != nil {
		return nil, err
	}
	sd, err := Simulate(w, Options{Policy: "sd", MaxSlowdown: 10})
	if err != nil {
		return nil, err
	}
	return &BigAnalysis{
		Static:        static,
		SD:            sd,
		SlowdownRatio: static.HeatmapRatio(sd, HeatSlowdown),
		RunTimeRatio:  static.HeatmapRatio(sd, HeatRunTime),
		WaitRatio:     static.HeatmapRatio(sd, HeatWait),
		StaticDaily:   static.Daily(),
		SDDaily:       sd.Daily(),
	}, nil
}

// RealRunReport is the Figure 9 comparison on the application workload:
// improvement percentages of SD-Policy over static backfill.
type RealRunReport struct {
	Static *Result
	SD     *Result
	// Improvements in percent (positive = SD better), Figure 9's bars.
	MakespanPct    float64
	AvgResponsePct float64
	AvgSlowdownPct float64
	EnergyPct      float64
}

// RealRunExperiment regenerates Figure 9: the wl5 application mix under
// the contention-aware App runtime model, static vs SD-Policy.
func RealRunExperiment(scale float64, seed uint64) (*RealRunReport, error) {
	w, err := NewWorkload("wl5", scale, seed)
	if err != nil {
		return nil, err
	}
	static, err := Simulate(w, Options{Policy: "static", Model: "app"})
	if err != nil {
		return nil, err
	}
	sd, err := Simulate(w, Options{Policy: "sd", DynamicCutoff: "avg", Model: "app"})
	if err != nil {
		return nil, err
	}
	return &RealRunReport{
		Static:         static,
		SD:             sd,
		MakespanPct:    improvement(float64(static.Makespan), float64(sd.Makespan)),
		AvgResponsePct: improvement(static.AvgResponse, sd.AvgResponse),
		AvgSlowdownPct: improvement(static.AvgSlowdown, sd.AvgSlowdown),
		EnergyPct:      improvement(static.EnergyKWh, sd.EnergyKWh),
	}, nil
}

// Table1Row is one workload inventory line of Table 1, with the
// static-backfill aggregates measured by simulation.
type Table1Row struct {
	ID          string
	Name        string
	Jobs        int
	Nodes       int
	Cores       int
	MaxJobNodes int
	AvgResponse float64
	AvgSlowdown float64
	Makespan    int64
}

// Table1 regenerates the Table 1 inventory by building every preset and
// measuring its static-backfill baseline.
func Table1(scale float64, seed uint64) ([]Table1Row, error) {
	names := []string{"wl1", "wl2", "wl3", "wl4", "wl5"}
	rows := make([]Table1Row, 0, len(names))
	for _, name := range names {
		w, err := NewWorkload(name, scale, seed)
		if err != nil {
			return nil, err
		}
		res, err := Simulate(w, Options{Policy: "static"})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			ID: name, Name: w.Name(), Jobs: w.Jobs(),
			Nodes: w.Nodes(), Cores: w.Cores(), MaxJobNodes: w.MaxJobNodes(),
			AvgResponse: res.AvgResponse, AvgSlowdown: res.AvgSlowdown,
			Makespan: res.Makespan,
		})
	}
	return rows, nil
}

// Table2Row is one application line of Table 2.
type Table2Row struct {
	App      string
	SharePct float64
}

// Table2 regenerates the Table 2 application mix from the generated wl5
// workload.
func Table2(scale float64, seed uint64) ([]Table2Row, error) {
	w, err := NewWorkload("wl5", scale, seed)
	if err != nil {
		return nil, err
	}
	shares := w.AppShares()
	order := []string{"PILS", "STREAM", "CoreNeuron", "NEST", "Alya"}
	rows := make([]Table2Row, 0, len(order))
	for _, app := range order {
		rows = append(rows, Table2Row{App: app, SharePct: 100 * shares[app]})
	}
	return rows, nil
}

// AblationRow is one point of a design-choice sweep.
type AblationRow struct {
	Parameter   string
	Value       string
	AvgSlowdown float64 // normalised to static backfill
	AvgResponse float64
	Makespan    float64
}

// AblateSharingFactor sweeps the SharingFactor (Section 3.3) on the
// given workload.
func AblateSharingFactor(name string, scale float64, seed uint64, factors []float64) ([]AblationRow, error) {
	w, err := NewWorkload(name, scale, seed)
	if err != nil {
		return nil, err
	}
	base, err := Simulate(w, Options{Policy: "static"})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, sf := range factors {
		res, err := Simulate(w, Options{Policy: "sd", SharingFactor: sf})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ablation("sharing-factor", fmt.Sprintf("%.2f", sf), res, base))
	}
	return rows, nil
}

// AblateMaxMates sweeps m, the mate combination bound (Section 3.2.4:
// "we did not see improvements ... increasing m over two").
func AblateMaxMates(name string, scale float64, seed uint64, ms []int) ([]AblationRow, error) {
	w, err := NewWorkload(name, scale, seed)
	if err != nil {
		return nil, err
	}
	base, err := Simulate(w, Options{Policy: "static"})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, m := range ms {
		res, err := Simulate(w, Options{Policy: "sd", MaxMates: m})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ablation("max-mates", fmt.Sprintf("%d", m), res, base))
	}
	return rows, nil
}

// AblateMalleableFraction sweeps the malleable share of a mixed
// rigid/malleable workload (Section 1: SD-Policy "supports mixed
// workloads ... ideal for being used in transition").
func AblateMalleableFraction(name string, scale float64, seed uint64, fracs []float64) ([]AblationRow, error) {
	base, err := func() (*Result, error) {
		w, err := NewWorkload(name, scale, seed)
		if err != nil {
			return nil, err
		}
		return Simulate(w, Options{Policy: "static"})
	}()
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, f := range fracs {
		w, err := NewWorkload(name, scale, seed)
		if err != nil {
			return nil, err
		}
		w.SetMalleableFraction(f)
		res, err := Simulate(w, Options{Policy: "sd"})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ablation("malleable-fraction", fmt.Sprintf("%.2f", f), res, base))
	}
	return rows, nil
}

// ComparePolicies runs static backfill, non-adaptive oversubscription
// and SD-Policy on the same workload — the §1/§5 motivation that
// malleability beats blind resource sharing. Values are normalised to
// static backfill.
func ComparePolicies(name string, scale float64, seed uint64) ([]AblationRow, error) {
	w, err := NewWorkload(name, scale, seed)
	if err != nil {
		return nil, err
	}
	base, err := Simulate(w, Options{Policy: "static"})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, p := range []string{"static", "oversubscribe", "sd"} {
		res, err := Simulate(w, Options{Policy: p})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ablation("policy", p, res, base))
	}
	return rows, nil
}

// AblateFreeNodeMixing compares mate selection with and without the
// IncludeFreeNodes option (Section 3.2.4).
func AblateFreeNodeMixing(name string, scale float64, seed uint64) ([]AblationRow, error) {
	w, err := NewWorkload(name, scale, seed)
	if err != nil {
		return nil, err
	}
	base, err := Simulate(w, Options{Policy: "static"})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, mix := range []bool{false, true} {
		res, err := Simulate(w, Options{Policy: "sd", IncludeFreeNodes: mix})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ablation("free-node-mixing", fmt.Sprintf("%v", mix), res, base))
	}
	return rows, nil
}

func ablation(param, value string, res, base *Result) AblationRow {
	return AblationRow{
		Parameter:   param,
		Value:       value,
		AvgSlowdown: ratio(res.AvgSlowdown, base.AvgSlowdown),
		AvgResponse: ratio(res.AvgResponse, base.AvgResponse),
		Makespan:    ratio(float64(res.Makespan), float64(base.Makespan)),
	}
}

func ratio(v, base float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return v / base
}

// improvement returns the percentage reduction of v relative to base.
func improvement(base, v float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return 100 * (base - v) / base
}
