package sdpolicy

import (
	"context"
	"encoding/json"
	"math"

	"sdpolicy/internal/reducer"
)

// Variant is one labelled scheduler configuration of an experiment sweep.
type Variant struct {
	Label   string
	Options Options
}

// MaxSDVariants returns the Figures 1-3 configurations: MAXSD 5, 10, 50,
// infinite, and the dynamic feedback cut-off DynAVGSD. All use
// SharingFactor 0.5 and the ideal runtime model, as in Section 4.1.
func MaxSDVariants() []Variant {
	return []Variant{
		{"MAXSD 5", Options{Policy: "sd", MaxSlowdown: 5}},
		{"MAXSD 10", Options{Policy: "sd", MaxSlowdown: 10}},
		{"MAXSD 50", Options{Policy: "sd", MaxSlowdown: 50}},
		{"MAXSD inf", Options{Policy: "sd"}},
		{"DynAVGSD", Options{Policy: "sd", DynamicCutoff: "avg"}},
	}
}

// SweepRow is one (workload, variant) point of Figures 1-3, normalised
// to the static backfill baseline of the same workload: 1.0 means equal,
// below 1.0 means the SD configuration improved the metric.
type SweepRow struct {
	Workload        string  `json:"workload"`
	Variant         string  `json:"variant"`
	Makespan        float64 `json:"makespan"`
	AvgResponse     float64 `json:"avg_response"`
	AvgSlowdown     float64 `json:"avg_slowdown"`
	MalleableStarts int     `json:"malleable_starts"`
}

// SweepMaxSD regenerates Figures 1-3 on the Default engine.
func SweepMaxSD(workloads []string, scale float64, seed uint64) ([]SweepRow, error) {
	return Default().SweepMaxSD(context.Background(), workloads, scale, seed)
}

// SweepMaxSD regenerates Figures 1-3: for each workload, the static
// baseline and every MAX_SLOWDOWN variant, reporting normalised
// makespan, response and slowdown. The campaign — one static baseline
// plus len(MaxSDVariants()) points per workload — runs across the
// engine's worker pool; each workload's baseline simulates once and is
// shared by its variant rows through the campaign cache.
func (e *Engine) SweepMaxSD(ctx context.Context, workloads []string, scale float64, seed uint64) ([]SweepRow, error) {
	v, err := e.Experiment(ctx, "sweep_maxsd", reducer.Params{
		"workloads": workloads, "scale": scale, "seed": seed,
	})
	if err != nil {
		return nil, err
	}
	return v.([]SweepRow), nil
}

// ModelRow is one Figure 8 point: an SD-Policy DynAVGSD run under one
// runtime model, normalised to the static baseline under the same model.
type ModelRow struct {
	Workload    string
	Model       string
	Makespan    float64
	AvgResponse float64
	AvgSlowdown float64
}

// CompareRuntimeModels regenerates Figure 8 on the Default engine.
func CompareRuntimeModels(workloads []string, scale float64, seed uint64) ([]ModelRow, error) {
	return Default().CompareRuntimeModels(context.Background(), workloads, scale, seed)
}

// CompareRuntimeModels regenerates Figure 8: SD-Policy with the dynamic
// cut-off under the ideal and the worst-case runtime models.
func (e *Engine) CompareRuntimeModels(ctx context.Context, workloads []string, scale float64, seed uint64) ([]ModelRow, error) {
	v, err := e.Experiment(ctx, "runtime_models", reducer.Params{
		"workloads": workloads, "scale": scale, "seed": seed,
	})
	if err != nil {
		return nil, err
	}
	return v.([]ModelRow), nil
}

// HeatCells is a heatmap cell grid that survives JSON round-trips:
// empty buckets are NaN in memory (the HeatmapRatio convention, which
// encoding/json refuses to marshal) and null on the wire.
type HeatCells [][]float64

func (h HeatCells) MarshalJSON() ([]byte, error) {
	rows := make([][]*float64, len(h))
	for i, row := range h {
		rows[i] = make([]*float64, len(row))
		for j := range row {
			if !math.IsNaN(row[j]) {
				v := row[j]
				rows[i][j] = &v
			}
		}
	}
	return json.Marshal(rows)
}

func (h *HeatCells) UnmarshalJSON(data []byte) error {
	var rows [][]*float64
	if err := json.Unmarshal(data, &rows); err != nil {
		return err
	}
	out := make(HeatCells, len(rows))
	for i, row := range rows {
		out[i] = make([]float64, len(row))
		for j, v := range row {
			if v == nil {
				out[i][j] = math.NaN()
			} else {
				out[i][j] = *v
			}
		}
	}
	*h = out
	return nil
}

// BigAnalysis is the Section 4.2 study of the large workload (Figures
// 4-7): static vs SD-Policy MAXSD 10 on the Curie-like trace, with
// category heatmaps and per-day series.
type BigAnalysis struct {
	Static *Result
	SD     *Result
	// Ratios are static/SD means per (node bucket × runtime bucket):
	// above 1.0 means SD improved that category (Figures 4-6).
	SlowdownRatio HeatCells
	RunTimeRatio  HeatCells
	WaitRatio     HeatCells
	// Daily series of both runs (Figure 7).
	StaticDaily []DayPoint
	SDDaily     []DayPoint
}

// AnalyzeBigWorkload regenerates Figures 4-7 on the Default engine.
func AnalyzeBigWorkload(scale float64, seed uint64) (*BigAnalysis, error) {
	return Default().AnalyzeBigWorkload(context.Background(), scale, seed)
}

// AnalyzeBigWorkload regenerates Figures 4-7 on the wl4 Curie-like
// workload with the paper's best static cut-off (MAXSD 10). The two
// runs execute concurrently and are shared with any other campaign
// touching the same points (e.g. fig7 after fig4-6 is all cache hits).
func (e *Engine) AnalyzeBigWorkload(ctx context.Context, scale float64, seed uint64) (*BigAnalysis, error) {
	v, err := e.Experiment(ctx, "big_workload", reducer.Params{"scale": scale, "seed": seed})
	if err != nil {
		return nil, err
	}
	return v.(*BigAnalysis), nil
}

// RealRunReport is the Figure 9 comparison on the application workload:
// improvement percentages of SD-Policy over static backfill.
type RealRunReport struct {
	Static *Result
	SD     *Result
	// Improvements in percent (positive = SD better), Figure 9's bars.
	MakespanPct    float64
	AvgResponsePct float64
	AvgSlowdownPct float64
	EnergyPct      float64
}

// RealRunExperiment regenerates Figure 9 on the Default engine.
func RealRunExperiment(scale float64, seed uint64) (*RealRunReport, error) {
	return Default().RealRunExperiment(context.Background(), scale, seed)
}

// RealRunExperiment regenerates Figure 9: the wl5 application mix under
// the contention-aware App runtime model, static vs SD-Policy.
func (e *Engine) RealRunExperiment(ctx context.Context, scale float64, seed uint64) (*RealRunReport, error) {
	v, err := e.Experiment(ctx, "real_run", reducer.Params{"scale": scale, "seed": seed})
	if err != nil {
		return nil, err
	}
	return v.(*RealRunReport), nil
}

// Table1Row is one workload inventory line of Table 1, with the
// static-backfill aggregates measured by simulation.
type Table1Row struct {
	ID          string
	Name        string
	Jobs        int
	Nodes       int
	Cores       int
	MaxJobNodes int
	AvgResponse float64
	AvgSlowdown float64
	Makespan    int64
}

// Table1 regenerates the Table 1 inventory on the Default engine.
func Table1(scale float64, seed uint64) ([]Table1Row, error) {
	return Default().Table1(context.Background(), scale, seed)
}

// Table1 regenerates the Table 1 inventory by building every preset and
// measuring its static-backfill baseline; the five baselines simulate
// concurrently and seed the cache for every later experiment that
// normalises against them.
func (e *Engine) Table1(ctx context.Context, scale float64, seed uint64) ([]Table1Row, error) {
	v, err := e.Experiment(ctx, "table1", reducer.Params{"scale": scale, "seed": seed})
	if err != nil {
		return nil, err
	}
	return v.([]Table1Row), nil
}

// Table2Row is one application line of Table 2.
type Table2Row struct {
	App      string
	SharePct float64
}

// Table2 regenerates the Table 2 application mix on the Default engine.
func Table2(scale float64, seed uint64) ([]Table2Row, error) {
	return Default().Table2(context.Background(), scale, seed)
}

// Table2 regenerates the Table 2 application mix from the generated wl5
// workload. The experiment is generation-only — its point set is empty,
// so nothing simulates — but it runs through the same registry path as
// every other experiment and honours ctx cancellation.
func (e *Engine) Table2(ctx context.Context, scale float64, seed uint64) ([]Table2Row, error) {
	v, err := e.Experiment(ctx, "table2", reducer.Params{"scale": scale, "seed": seed})
	if err != nil {
		return nil, err
	}
	return v.([]Table2Row), nil
}

// table2Rows generates the Table 2 mix; shared by the table2 descriptor.
func table2Rows(scale float64, seed uint64) ([]Table2Row, error) {
	w, err := NewWorkload("wl5", scale, seed)
	if err != nil {
		return nil, err
	}
	shares := w.AppShares()
	order := []string{"PILS", "STREAM", "CoreNeuron", "NEST", "Alya"}
	rows := make([]Table2Row, 0, len(order))
	for _, app := range order {
		rows = append(rows, Table2Row{App: app, SharePct: 100 * shares[app]})
	}
	return rows, nil
}

// AblationRow is one point of a design-choice sweep.
type AblationRow struct {
	Parameter   string
	Value       string
	AvgSlowdown float64 // normalised to static backfill
	AvgResponse float64
	Makespan    float64
}

// ablateExperiment runs one ablation-family descriptor with the list
// parameter that varies per family. The baseline point is canonically
// identical across all ablations of the same workload, so it simulates
// once per engine, not once per sweep.
func (e *Engine) ablateExperiment(ctx context.Context, exp, name string, scale float64, seed uint64, listName string, list any) ([]AblationRow, error) {
	params := reducer.Params{"workload": name, "scale": scale, "seed": seed}
	if listName != "" {
		params[listName] = list
	}
	v, err := e.Experiment(ctx, exp, params)
	if err != nil {
		return nil, err
	}
	return v.([]AblationRow), nil
}

// AblateSharingFactor sweeps the SharingFactor on the Default engine.
func AblateSharingFactor(name string, scale float64, seed uint64, factors []float64) ([]AblationRow, error) {
	return Default().AblateSharingFactor(context.Background(), name, scale, seed, factors)
}

// AblateSharingFactor sweeps the SharingFactor (Section 3.3) on the
// given workload.
func (e *Engine) AblateSharingFactor(ctx context.Context, name string, scale float64, seed uint64, factors []float64) ([]AblationRow, error) {
	return e.ablateExperiment(ctx, "ablate_sharing_factor", name, scale, seed, "factors", factors)
}

// AblateMaxMates sweeps the mate combination bound on the Default engine.
func AblateMaxMates(name string, scale float64, seed uint64, ms []int) ([]AblationRow, error) {
	return Default().AblateMaxMates(context.Background(), name, scale, seed, ms)
}

// AblateMaxMates sweeps m, the mate combination bound (Section 3.2.4:
// "we did not see improvements ... increasing m over two").
func (e *Engine) AblateMaxMates(ctx context.Context, name string, scale float64, seed uint64, ms []int) ([]AblationRow, error) {
	return e.ablateExperiment(ctx, "ablate_max_mates", name, scale, seed, "mates", ms)
}

// AblateMalleableFraction sweeps the malleable share on the Default engine.
func AblateMalleableFraction(name string, scale float64, seed uint64, fracs []float64) ([]AblationRow, error) {
	return Default().AblateMalleableFraction(context.Background(), name, scale, seed, fracs)
}

// AblateMalleableFraction sweeps the malleable share of a mixed
// rigid/malleable workload (Section 1: SD-Policy "supports mixed
// workloads ... ideal for being used in transition").
func (e *Engine) AblateMalleableFraction(ctx context.Context, name string, scale float64, seed uint64, fracs []float64) ([]AblationRow, error) {
	return e.ablateExperiment(ctx, "ablate_malleable_fraction", name, scale, seed, "fractions", fracs)
}

// AblateNodeFeatures sweeps the constrained-job share on the Default
// engine.
func AblateNodeFeatures(name string, scale float64, seed uint64, fracs []float64) ([]AblationRow, error) {
	return Default().AblateNodeFeatures(context.Background(), name, scale, seed, fracs)
}

// AblateNodeFeatures sweeps the share of jobs constrained to a node
// feature on a heterogeneous machine where half the nodes carry it —
// the constraint-filtering behaviour of Section 3.2.4. Each variant is
// a plain campaign point whose derivation chain tags the nodes and
// constrains the jobs, so the whole heterogeneous sweep is expressible
// over /v1/campaign and shares one generated base workload.
func (e *Engine) AblateNodeFeatures(ctx context.Context, name string, scale float64, seed uint64, fracs []float64) ([]AblationRow, error) {
	return e.ablateExperiment(ctx, "ablate_node_features", name, scale, seed, "fractions", fracs)
}

// ComparePolicies compares the three policies on the Default engine.
func ComparePolicies(name string, scale float64, seed uint64) ([]AblationRow, error) {
	return Default().ComparePolicies(context.Background(), name, scale, seed)
}

// ComparePolicies runs static backfill, non-adaptive oversubscription
// and SD-Policy on the same workload — the §1/§5 motivation that
// malleability beats blind resource sharing. Values are normalised to
// static backfill; the static row doubles as the baseline and
// simulates only once thanks to point canonicalisation.
func (e *Engine) ComparePolicies(ctx context.Context, name string, scale float64, seed uint64) ([]AblationRow, error) {
	return e.ablateExperiment(ctx, "compare_policies", name, scale, seed, "", nil)
}

// AblateFreeNodeMixing compares mate selection with and without free
// nodes on the Default engine.
func AblateFreeNodeMixing(name string, scale float64, seed uint64) ([]AblationRow, error) {
	return Default().AblateFreeNodeMixing(context.Background(), name, scale, seed)
}

// AblateFreeNodeMixing compares mate selection with and without the
// IncludeFreeNodes option (Section 3.2.4).
func (e *Engine) AblateFreeNodeMixing(ctx context.Context, name string, scale float64, seed uint64) ([]AblationRow, error) {
	return e.ablateExperiment(ctx, "ablate_free_node_mixing", name, scale, seed, "", nil)
}

func ablation(param, value string, res, base *Result) AblationRow {
	return AblationRow{
		Parameter:   param,
		Value:       value,
		AvgSlowdown: ratio(res.AvgSlowdown, base.AvgSlowdown),
		AvgResponse: ratio(res.AvgResponse, base.AvgResponse),
		Makespan:    ratio(float64(res.Makespan), float64(base.Makespan)),
	}
}

func ratio(v, base float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return v / base
}

// improvement returns the percentage reduction of v relative to base.
func improvement(base, v float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return 100 * (base - v) / base
}
