package sdpolicy

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sdpolicy/internal/workload"
)

// resultsEquivalent asserts two results are byte-identical over the
// wire and carry identical per-job reports (the data behind Daily and
// the heatmaps).
func resultsEquivalent(t *testing.T, label string, a, b *Result) {
	t.Helper()
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("%s: results differ:\n%s\n%s", label, aj, bj)
	}
	if !reflect.DeepEqual(a.report, b.report) {
		t.Fatalf("%s: per-job reports differ", label)
	}
}

// TestDeriveEquivalentToPrivateSpec: for all five workloads, deriving
// from a privately generated spec and from the shared cached base must
// produce byte-identical Results — the cache and the chain change
// where work happens, never what is simulated.
func TestDeriveEquivalentToPrivateSpec(t *testing.T) {
	scales := map[string]float64{"wl1": 0.05, "wl2": 0.05, "wl3": 0.05, "wl4": 0.02, "wl5": 0.2}
	opt := Options{Policy: "sd", MaxSlowdown: 10}
	for _, name := range workload.Names() {
		scale := scales[name]
		// Private pipeline: generate a spec this test owns, derive, and
		// simulate directly.
		spec, err := workload.ByName(name, scale, 11)
		if err != nil {
			t.Fatal(err)
		}
		mixed, err := workload.Derive(&spec, []workload.Derivation{workload.MalleableFraction(0.5)})
		if err != nil {
			t.Fatal(err)
		}
		old, err := Simulate(Workload{spec: mixed}, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Shared pipeline: cached base + derivation chain on the handle.
		w, err := NewWorkload(name, scale, 11)
		if err != nil {
			t.Fatal(err)
		}
		w.SetMalleableFraction(0.5)
		derived, err := Simulate(w, opt)
		if err != nil {
			t.Fatal(err)
		}
		resultsEquivalent(t, name, old, derived)
	}
}

// TestHeterogeneousDeriveEquivalence covers the node-feature ops: the
// derivation chain must reproduce what direct spec surgery did before
// the refactor.
func TestHeterogeneousDeriveEquivalence(t *testing.T) {
	const name, scale = "wl1", 0.05
	var seed uint64 = 5
	// Old pipeline, replicated on a private spec exactly as the
	// pre-derivation TagNodes/RequireFeature methods did it.
	spec, err := workload.ByName(name, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	spec.NodeFeatures = map[int][]string{}
	for nd := 0; nd < spec.Cluster.Nodes; nd++ {
		if float64(nd%100) < 50 {
			spec.NodeFeatures[nd] = append(spec.NodeFeatures[nd], "bigmem")
		}
	}
	for i := range spec.Jobs {
		if float64(i%100) < 30 {
			spec.Jobs[i].Features = append(spec.Jobs[i].Features, "bigmem")
		}
	}
	old, err := Simulate(Workload{spec: &spec}, Options{Policy: "sd"})
	if err != nil {
		t.Fatal(err)
	}

	w, err := NewWorkload(name, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	w.TagNodes("bigmem", 0.5)
	w.RequireFeature("bigmem", 0.3)
	derived, err := Simulate(w, Options{Policy: "sd"})
	if err != nil {
		t.Fatal(err)
	}
	resultsEquivalent(t, "heterogeneous", old, derived)

	// The shared cached base must be untouched by either variant.
	fresh, err := workload.ByName(name, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := workload.Shared.Get(name, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Jobs, cached.Jobs) || cached.NodeFeatures != nil {
		t.Fatal("deriving variants mutated the shared cached base")
	}
}

// TestAblationGeneratesBaseWorkloadOnce is the acceptance criterion of
// the derivation refactor: a k-variant ablation campaign over one
// workload generates that workload exactly once — every variant derives
// from the shared cached base instead of regenerating.
func TestAblationGeneratesBaseWorkloadOnce(t *testing.T) {
	// A seed no other test uses, so the generation-count delta below is
	// exactly this campaign's.
	const seed uint64 = 987654321
	_, before := workload.Shared.Stats()
	engine := NewEngine(4, 64)
	rows, err := engine.AblateMalleableFraction(context.Background(), "wl5", 0.2, seed,
		[]float64{0, 0.25, 0.5, 0.75, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	_, after := workload.Shared.Stats()
	if gens := after - before; gens != 1 {
		t.Fatalf("ablation generated the base workload %d times, want exactly 1", gens)
	}

	// Same property for the heterogeneous node-feature ablation, whose
	// variants stack two derivations per point.
	_, before = workload.Shared.Stats()
	if _, err := engine.AblateNodeFeatures(context.Background(), "wl5", 0.2, seed+1,
		[]float64{0, 0.25, 0.5}); err != nil {
		t.Fatal(err)
	}
	_, after = workload.Shared.Stats()
	if gens := after - before; gens != 1 {
		t.Fatalf("node-feature ablation generated the base %d times, want exactly 1", gens)
	}
}

// TestCanonicalFoldsLegacyFractionIntoChain: the legacy
// MalleableFraction field and the equivalent leading derivation must
// canonicalise to the same cache key — one simulation, two spellings.
func TestCanonicalFoldsLegacyFractionIntoChain(t *testing.T) {
	legacy := NewPoint("wl5", 0.2, 1, Options{Policy: "sd"})
	legacy.MalleableFraction = 0.5
	derived := NewDerivedPoint("wl5", 0.2, 1, Options{Policy: "sd"}, MalleableFractionDerivation(0.5))
	if legacy.canonical() != derived.canonical() {
		t.Fatalf("canonical keys differ:\n%+v\n%+v", legacy.canonical(), derived.canonical())
	}

	engine := NewEngine(2, 16)
	ctx := context.Background()
	if _, err := engine.Run(ctx, []Point{legacy}); err != nil {
		t.Fatal(err)
	}
	_, missesBefore := engine.CacheStats()
	if _, err := engine.Run(ctx, []Point{derived}); err != nil {
		t.Fatal(err)
	}
	hits, misses := engine.CacheStats()
	if misses != missesBefore {
		t.Fatalf("derived spelling simulated again (misses %d -> %d)", missesBefore, misses)
	}
	if hits == 0 {
		t.Fatal("derived spelling missed the cache")
	}
}

func TestPointDerivationsJSONRoundTrip(t *testing.T) {
	p := NewDerivedPoint("wl1", 0.1, 2, Options{Policy: "sd"},
		TagNodesDerivation("bigmem", 0.5),
		RequireFeatureDerivation("bigmem", 0.25))
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Point
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip:\n%+v\n%+v", back, p)
	}
	// The wire form is a valid PointSpec carrying the derivation list.
	var spec PointSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(spec.Derivations) != 2 || spec.Derivations[0].Op != "tag_nodes" {
		t.Fatalf("wire derivations: %+v", spec.Derivations)
	}
	if spec.Point() != p {
		t.Fatalf("spec.Point():\n%+v\n%+v", spec.Point(), p)
	}
}

func TestEngineRejectsInvalidDerivations(t *testing.T) {
	engine := NewEngine(2, 0)
	bad := []Point{
		NewDerivedPoint("wl5", 0.2, 1, Options{}, Derivation{Op: "bogus", Fraction: 0.5}),
		NewDerivedPoint("wl5", 0.2, 1, Options{}, MalleableFractionDerivation(1.5)),
		{Workload: "wl5", Scale: 0.2, Seed: 1, MalleableFraction: -1, Derivations: workload.Chain("{broken")},
	}
	for _, p := range bad {
		if _, err := engine.Run(context.Background(), []Point{p}); err == nil {
			t.Fatalf("invalid point accepted: %+v", p)
		}
	}
	var spec PointSpec
	if err := json.Unmarshal([]byte(`{"workload":"wl5","derivations":[{"op":"tag_nodes","fraction":0.5}]}`), &spec); err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err == nil {
		t.Fatal("tag_nodes without a feature accepted")
	}
}

// TestSaveLoadCacheRoundTrip: the persistent spill must restore results
// that are byte-identical to freshly simulated ones — including the
// per-job report behind Daily and the heatmaps — and serve them as pure
// cache hits.
func TestSaveLoadCacheRoundTrip(t *testing.T) {
	ctx := context.Background()
	points := []Point{
		NewPoint("wl5", 0.2, 1, Options{Policy: "static"}),
		NewPoint("wl5", 0.2, 1, Options{Policy: "sd", MaxSlowdown: 10}),
		NewDerivedPoint("wl5", 0.2, 1, Options{Policy: "sd"},
			TagNodesDerivation("bigmem", 0.5), RequireFeatureDerivation("bigmem", 0.25)),
	}
	warm := NewEngine(2, 32)
	want, err := warm.Run(ctx, points)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spill", "campaign-cache.json")
	if _, err := warm.SaveCache(path); err != nil {
		t.Fatal(err)
	}

	cold := NewEngine(2, 32)
	if err := cold.LoadCache(path); err != nil {
		t.Fatal(err)
	}
	got, err := cold.Run(ctx, points)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := cold.CacheStats(); misses != 0 {
		t.Fatalf("loaded engine simulated %d points, want 0", misses)
	}
	for i := range want {
		resultsEquivalent(t, points[i].Workload, want[i], got[i])
	}
	// The restored report must actually drive the derived artefacts.
	if len(got[0].Daily()) == 0 {
		t.Fatal("restored result lost its daily series")
	}
	if cells := got[0].HeatmapRatio(got[1], HeatSlowdown); len(cells) == 0 {
		t.Fatal("restored result lost its heatmap data")
	}
}

func TestLoadCacheRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	engine := NewEngine(1, 8)
	if err := engine.LoadCache(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	for name, content := range map[string]string{
		"garbage.json":  "{not json",
		"version.json":  `{"version":999,"entries":[]}`,
		"noresult.json": `{"version":1,"entries":[{"point":{"workload":"wl5","scale":0.2,"seed":1,"options":{}}}]}`,
	} {
		path := filepath.Join(dir, name)
		if err := writeFile(path, content); err != nil {
			t.Fatal(err)
		}
		if err := engine.LoadCache(path); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// A non-finite fraction must flow from the constructor to a clean
// ErrBadInput at Run time — not a panic at encode time.
func TestNonFiniteDerivationFractionRejectedNotPanicking(t *testing.T) {
	p := NewDerivedPoint("wl5", 0.2, 1, Options{Policy: "sd"}, MalleableFractionDerivation(math.NaN()))
	_, err := NewEngine(1, 0).Run(context.Background(), []Point{p})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
}
