package sdpolicy

import (
	"fmt"

	"sdpolicy/internal/campaign"
)

// CampaignShard is one self-describing slice of a campaign: the points
// it owns plus their positions in the original point list. A shard
// needs no state beyond itself — its points carry their full derivation
// chains in wire form — so shards can run in separate processes
// (sdexp -shard i/n job arrays) or on separate machines (the sdserve
// coordinator), in any order, and still merge byte-identically to a
// single-process run.
type CampaignShard struct {
	// Index is the shard's 0-based number; Of the plan's shard count.
	Index int `json:"index"`
	Of    int `json:"of"`
	// Positions are the original-list positions this shard owns,
	// ascending; Points[i] is the original point at Positions[i].
	Positions []int   `json:"positions"`
	Points    []Point `json:"points"`
}

// PlanShards deterministically partitions points into n shards such
// that running each shard independently and merging with
// MergeShardResults reproduces Engine.Run over the full list exactly.
// Assignment happens over canonical keys: two spellings of the same
// simulation (e.g. a legacy malleable_fraction field versus the
// equivalent leading derivation) always land in one shard, so no point
// simulates twice across the plan. Every point is validated up front —
// a shard plan over invalid points would fail only on whichever worker
// drew them, which is the wrong place to discover a typo.
func PlanShards(points []Point, n int) ([]CampaignShard, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sdpolicy: planning %d shards: %w", n, ErrBadInput)
	}
	keys := make([]Point, len(points))
	for i, p := range points {
		if err := p.validate(); err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		keys[i] = p.canonical()
	}
	plan := campaign.Plan(keys, n)
	shards := make([]CampaignShard, len(plan))
	for i, s := range plan {
		cs := CampaignShard{Index: s.Index, Of: s.Of, Positions: s.Positions}
		cs.Points = make([]Point, len(s.Positions))
		for j, pos := range s.Positions {
			cs.Points[j] = points[pos]
		}
		shards[i] = cs
	}
	return shards, nil
}

// DefaultShardsPerWorker is the shard-granularity factor PlanFleetShards
// applies when the caller passes perWorker <= 0: four shards per worker
// keeps the hand-out queue deep enough that heterogeneous-speed workers
// and late joiners rebalance by stealing, without planning so many
// shards that per-shard overhead dominates.
const DefaultShardsPerWorker = 4

// PlanFleetShards plans a campaign for a fleet of `fleet` workers at a
// granularity of perWorker shards each (DefaultShardsPerWorker when
// <= 0). Finer-than-fleet shards are what make elastic fleets rebalance:
// handed out work-stealing style, a fast worker simply takes more of
// them, and a worker that joins mid-campaign steals from the remaining
// queue instead of waiting for the next campaign. The merged output is
// byte-identical to a single-process run regardless of fleet size or
// granularity — shard assignment only moves work, never changes it.
func PlanFleetShards(points []Point, fleet, perWorker int) ([]CampaignShard, error) {
	if fleet <= 0 {
		return nil, fmt.Errorf("sdpolicy: planning shards for a fleet of %d workers: %w", fleet, ErrBadInput)
	}
	if perWorker <= 0 {
		perWorker = DefaultShardsPerWorker
	}
	return PlanShards(points, fleet*perWorker)
}

// MergeShardResults reassembles per-shard campaign results into the
// full slice Engine.Run would return over the original total-length
// point list: merged[p] is the result for original position p.
// results[i] must align with shards[i].Positions (the order
// Engine.Run returns when handed shards[i].Points); shard/result pairs
// may arrive in any order. Coverage is verified — an unresolved or
// doubly-resolved position is an error, never a silent nil result.
func MergeShardResults(total int, shards []CampaignShard, results [][]*Result) ([]*Result, error) {
	plan := make([]campaign.Shard[Point], len(shards))
	for i, s := range shards {
		plan[i] = campaign.Shard[Point]{Index: s.Index, Of: s.Of, Positions: s.Positions, Keys: s.Points}
	}
	return campaign.MergeShards(total, plan, results)
}

// PlanResume narrows a campaign to what a checkpoint set has not yet
// resolved: given the original point list and the completed original
// positions (a journal's result records), it returns the remaining
// positions in ascending order and the points at them. Running the
// returned points and writing each result back to remaining[i] — which
// is what the durable campaign plane's resume path does — yields output
// identical to a run that was never interrupted, with zero
// re-simulation of checkpointed positions. An invalid checkpoint set
// (out-of-range or duplicated position) is an error tagged ErrBadInput.
func PlanResume(points []Point, done []int) (remaining []int, pts []Point, err error) {
	remaining, err = campaign.Remaining(len(points), done)
	if err != nil {
		return nil, nil, fmt.Errorf("sdpolicy: %w: %w", err, ErrBadInput)
	}
	pts = make([]Point, len(remaining))
	for i, pos := range remaining {
		pts[i] = points[pos]
	}
	return remaining, pts, nil
}
