package sdpolicy

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sync"

	"sdpolicy/internal/campaign"
	"sdpolicy/internal/workload"
)

// Point is one independent simulation task of a campaign: a workload
// preset at a scale and seed, derived through an optional chain of
// variant operations, simulated under Options. Points are comparable
// values; two Points that canonicalise equally identify the same
// simulation and share one cached result. The base workload itself is
// resolved through the process-wide generation cache, so k variant
// points over one base cost one generation plus k copy-on-write
// derivations.
type Point struct {
	Workload string  `json:"workload"`
	Scale    float64 `json:"scale"`
	Seed     uint64  `json:"seed"`
	// MalleableFraction, when in [0, 1], re-flags that fraction of jobs
	// malleable before simulating (mixed-workload experiments). A
	// negative value keeps the generated mix. NewPoint sets -1. It is
	// the pre-derivation legacy form: canonicalisation folds it into
	// Derivations as a leading malleable_fraction op, so the two
	// spellings share one cache entry.
	MalleableFraction float64 `json:"malleable_fraction"`
	// Derivations is the canonical chain encoding (workload.Chain) of
	// the variant operations applied, in order, to the generated base
	// workload before simulating. Being a comparable string it keeps
	// Point usable directly as the campaign cache key; use
	// NewDerivedPoint or WithDerivations to populate it.
	Derivations workload.Chain `json:"derivations"`
	Options     Options        `json:"options"`
}

// NewPoint builds a Point with the generated malleable mix kept as is.
func NewPoint(workload string, scale float64, seed uint64, opt Options) Point {
	return Point{Workload: workload, Scale: scale, Seed: seed, MalleableFraction: -1, Options: opt}
}

// NewDerivedPoint builds a Point whose base workload is transformed by
// the derivation chain before simulating. Invalid derivations are
// rejected later, by Engine.Run, with ErrBadInput.
func NewDerivedPoint(name string, scale float64, seed uint64, opt Options, derivs ...Derivation) Point {
	p := NewPoint(name, scale, seed, opt)
	p.Derivations = workload.EncodeChain(derivs)
	return p
}

// WithDerivations returns the point with the derivation chain replaced.
func (p Point) WithDerivations(derivs ...Derivation) Point {
	p.Derivations = workload.EncodeChain(derivs)
	return p
}

// MarshalJSON encodes the -1 keep-mix sentinel as an absent
// malleable_fraction and the derivation chain as its JSON list, so a
// streamed point is itself a valid PointSpec: clients can resubmit any
// echoed point verbatim.
func (p Point) MarshalJSON() ([]byte, error) {
	w := PointSpec{Workload: p.Workload, Scale: p.Scale, Seed: p.Seed, Options: p.Options}
	if p.MalleableFraction >= 0 {
		w.MalleableFraction = &p.MalleableFraction
	}
	derivs, err := p.Derivations.Derivations()
	if err != nil {
		return nil, err
	}
	w.Derivations = derivs
	return json.Marshal(w)
}

// UnmarshalJSON is MarshalJSON's inverse: an absent (or null)
// malleable_fraction decodes to the -1 keep-mix sentinel rather than
// to 0, which would silently mean "re-flag zero jobs malleable".
// Scale and Seed are taken verbatim, without PointSpec's defaulting —
// except through a workload_ref, whose materialisation is defined to
// include it.
func (p *Point) UnmarshalJSON(data []byte) error {
	var s PointSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if s.Ref != nil {
		full := s.Ref.PointSpec(s.Options).Point()
		*p = full
		return nil
	}
	p.Workload, p.Scale, p.Seed, p.Options = s.Workload, s.Scale, s.Seed, s.Options
	p.MalleableFraction = -1
	if s.MalleableFraction != nil {
		p.MalleableFraction = *s.MalleableFraction
	}
	p.Derivations = workload.EncodeChain(s.Derivations)
	return nil
}

// validate rejects float fields that would corrupt the campaign's
// map-based bookkeeping: NaN is never a valid map key (NaN != NaN, so
// a NaN-keyed point could simulate yet never deliver its result), and
// infinities are only meaningful for MaxSlowdown. It also rejects
// malformed or invalid derivation chains, so canonicalisation (which
// folds MalleableFraction into the chain) and workers (which apply it)
// operate on known-good chains.
func (p Point) validate() error {
	bad := func(field string, v float64) error {
		return fmt.Errorf("sdpolicy: point %s %v is not a finite number: %w", field, v, ErrBadInput)
	}
	if math.IsNaN(p.Scale) || math.IsInf(p.Scale, 0) {
		return bad("scale", p.Scale)
	}
	if math.IsNaN(p.MalleableFraction) || math.IsInf(p.MalleableFraction, 0) {
		return bad("malleable fraction", p.MalleableFraction)
	}
	if math.IsNaN(p.Options.MaxSlowdown) {
		return bad("max slowdown", p.Options.MaxSlowdown)
	}
	if math.IsNaN(p.Options.SharingFactor) || math.IsInf(p.Options.SharingFactor, 0) {
		return bad("sharing factor", p.Options.SharingFactor)
	}
	if math.IsNaN(p.Options.OversubPenalty) || math.IsInf(p.Options.OversubPenalty, 0) {
		return bad("oversubscription penalty", p.Options.OversubPenalty)
	}
	derivs, err := p.Derivations.Derivations()
	if err != nil {
		return fmt.Errorf("sdpolicy: %w: %w", err, ErrBadInput)
	}
	for i, d := range derivs {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("sdpolicy: derivation %d: %w: %w", i, err, ErrBadInput)
		}
	}
	return nil
}

// canonical normalises the point so that syntactically different but
// semantically identical points (e.g. Policy "" vs "static", or a
// legacy MalleableFraction vs the equivalent leading derivation) share
// one cache entry. The point must have passed validate: canonical
// panics on a malformed chain rather than silently dropping the legacy
// fraction.
func (p Point) canonical() Point {
	if p.MalleableFraction < 0 {
		p.MalleableFraction = -1
	} else {
		chain, err := p.Derivations.Prepend(workload.MalleableFraction(p.MalleableFraction))
		if err != nil {
			panic(fmt.Sprintf("sdpolicy: canonicalising unvalidated point: %v", err))
		}
		p.Derivations = chain
		p.MalleableFraction = -1
	}
	if workload.IsTraceRef(p.Workload) {
		// Trace content is fully determined by the digest; folding the
		// inert generation parameters means differently-spelled trace
		// points share one cache entry.
		p.Scale, p.Seed = 1, 1
	}
	p.Options = p.Options.canonical()
	return p
}

// canonical fills every defaulted Options field with its effective
// value, mirroring toConfig, so Options values are usable as cache keys.
func (o Options) canonical() Options {
	if o.Policy == "" {
		o.Policy = "static"
	}
	if o.MaxSlowdown <= 0 {
		o.MaxSlowdown = math.Inf(1)
	}
	if o.Model == "" {
		o.Model = "ideal"
	}
	if o.SharingFactor <= 0 {
		o.SharingFactor = 0.5
	}
	if o.MaxMates <= 0 {
		o.MaxMates = 2
	}
	if o.CandidateCap <= 0 {
		o.CandidateCap = 64
	}
	if o.BackfillDepth <= 0 {
		o.BackfillDepth = 100
	}
	if o.Backfill == "" {
		o.Backfill = "conservative"
	}
	if o.Policy == "oversubscribe" && o.OversubPenalty <= 0 {
		o.OversubPenalty = 0.15
	}
	return o
}

// PointSpec is the JSON wire form of a Point, shared by the sdserve
// /v1/campaign and /v1/simulate endpoints and cmd/sdexp's -points mode.
// Scale and Seed default to 1 when omitted; a nil MalleableFraction
// keeps the generated malleable mix; Derivations is the ordered variant
// chain ({"op": "tag_nodes", "fraction": 0.5, "feature": "bigmem"},
// ...) applied to the generated base workload before simulating, which
// is how the labelled ablation sweeps — including the heterogeneous
// node-feature ones — are expressed as plain points over HTTP.
type PointSpec struct {
	Workload          string       `json:"workload,omitempty"`
	Scale             float64      `json:"scale,omitempty"`
	Seed              uint64       `json:"seed,omitempty"`
	MalleableFraction *float64     `json:"malleable_fraction,omitempty"`
	Derivations       []Derivation `json:"derivations,omitempty"`
	// Ref is the unified workload address ({name|trace, scale, seed,
	// derivations}); when present it replaces the loose fields above,
	// which must stay empty. Points always echo the loose form, so
	// streamed output is byte-stable regardless of which spelling the
	// request used.
	Ref     *WorkloadRef `json:"workload_ref,omitempty"`
	Options Options      `json:"options"`
}

// Validate rejects spec fields the wire layers must refuse before
// Point() collapses them into the Point sentinel encodings: a missing
// workload, an out-of-range MalleableFraction (a negative value would
// otherwise silently mean "keep the generated mix"), structurally
// invalid derivations, and a workload_ref mixed with the loose legacy
// fields it replaces. Errors are tagged ErrBadInput. Everything else —
// unknown workload, bad policy, NaN floats — is rejected later by
// Engine.Run.
func (s PointSpec) Validate() error {
	if s.Ref != nil {
		if s.Workload != "" || s.Scale != 0 || s.Seed != 0 ||
			s.MalleableFraction != nil || len(s.Derivations) != 0 {
			return fmt.Errorf("sdpolicy: workload_ref cannot be combined with the legacy workload/scale/seed/malleable_fraction/derivations fields: %w", ErrBadInput)
		}
		return s.Ref.Validate()
	}
	if s.Workload == "" {
		return fmt.Errorf("sdpolicy: point workload missing: %w", ErrBadInput)
	}
	if f := s.MalleableFraction; f != nil && !(*f >= 0 && *f <= 1) {
		return fmt.Errorf("sdpolicy: malleable_fraction %v out of [0,1]: %w", *f, ErrBadInput)
	}
	for i, d := range s.Derivations {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("sdpolicy: derivation %d: %w: %w", i, err, ErrBadInput)
		}
	}
	return nil
}

// Point materialises the spec with its defaults applied. It performs no
// validation — call Validate first for the wire-level checks; Engine.Run
// rejects the remaining bad fields with ErrBadInput.
func (s PointSpec) Point() Point {
	if s.Ref != nil {
		s = s.Ref.PointSpec(s.Options)
	}
	scale, seed := s.Scale, s.Seed
	if scale == 0 {
		scale = 1
	}
	if seed == 0 {
		seed = 1
	}
	p := NewPoint(s.Workload, scale, seed, s.Options)
	if s.MalleableFraction != nil {
		p.MalleableFraction = *s.MalleableFraction
	}
	p.Derivations = workload.EncodeChain(s.Derivations)
	return p
}

// PointsFromSpecs runs the wire-level checks (Validate) on every spec
// and materialises the campaign points, labelling errors with the
// offending index. It is the one conversion path shared by the
// /v1/campaign handler and cmd/sdexp -points.
func PointsFromSpecs(specs []PointSpec) ([]Point, error) {
	points := make([]Point, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		points[i] = s.Point()
	}
	return points, nil
}

// DeriveSeed deterministically expands a base seed into independent
// per-replicate seeds; replicate 0 returns the base seed itself so a
// one-replicate campaign matches a direct run.
func DeriveSeed(base uint64, replicate int) uint64 {
	if replicate == 0 {
		return base
	}
	return campaign.DeriveSeed(base, replicate)
}

// Engine runs simulation campaigns across a worker pool with memoised
// results. The zero value is not usable; use NewEngine or Default. An
// Engine is safe for concurrent use — overlapping campaigns share the
// cache and never simulate the same canonical Point twice at once.
type Engine struct {
	runner *campaign.Runner[Point, *Result]
}

// NewEngine builds an Engine with the given worker-pool size
// (<= 0 means GOMAXPROCS) and result-cache capacity in points
// (<= 0 disables cross-campaign memoisation).
func NewEngine(workers, cacheSize int) *Engine {
	e := &Engine{}
	e.runner = campaign.New(func(ctx context.Context, p Point) (*Result, error) {
		res, err := simulatePoint(ctx, p)
		if err != nil {
			return nil, fmt.Errorf("%s (scale %g, seed %d, %s): %w",
				p.Workload, p.Scale, p.Seed, p.Options.Policy, err)
		}
		return res, nil
	}, campaign.Config{Workers: workers, CacheSize: cacheSize})
	return e
}

// simulatePoint resolves one canonical point: the base workload comes
// from the process-wide generation cache (generated at most once per
// (name, scale, seed) no matter how many variants or workers ask), the
// derivation chain is applied copy-on-write, and the variant simulates.
// Its only caller hands it keys produced by canonical(), which folds
// the legacy MalleableFraction field into the chain — a lingering
// fraction here means that invariant broke, so fail loudly instead of
// re-implementing the fold.
func simulatePoint(ctx context.Context, p Point) (*Result, error) {
	if p.MalleableFraction != -1 {
		return nil, fmt.Errorf("sdpolicy: point not canonicalised (malleable fraction %v): %w",
			p.MalleableFraction, ErrBadInput)
	}
	derivs, err := p.Derivations.Derivations()
	if err != nil {
		return nil, fmt.Errorf("sdpolicy: %w: %w", err, ErrBadInput)
	}
	w, err := NewWorkload(p.Workload, p.Scale, p.Seed)
	if err != nil {
		return nil, err
	}
	w.derivs = derivs
	return SimulateContext(ctx, w, p.Options)
}

var (
	defaultEngine     *Engine
	defaultEngineOnce sync.Once
)

// Default returns the process-wide Engine (GOMAXPROCS workers, 512
// cached points) used by the package-level experiment functions.
func Default() *Engine {
	defaultEngineOnce.Do(func() {
		defaultEngine = NewEngine(runtime.GOMAXPROCS(0), 512)
	})
	return defaultEngine
}

// Run resolves every point in parallel and returns results aligned
// with points: results[i] belongs to points[i]. Duplicate points (after
// canonicalisation) simulate once. The first simulation error cancels
// the remaining work; ctx cancellation aborts the campaign — including
// any simulation already in flight, which stops at its next event-loop
// checkpoint.
func (e *Engine) Run(ctx context.Context, points []Point) ([]*Result, error) {
	return e.RunStream(ctx, points, nil)
}

// PointResult is one streamed campaign delivery: the result for
// points[Index] as passed to RunStream, echoed back with the original
// (pre-canonicalisation) point so clients can label rows without
// keeping their own index.
type PointResult struct {
	Index  int     `json:"index"`
	Point  Point   `json:"point"`
	Result *Result `json:"result"`
	// Report carries the point's per-job report encoding when the
	// campaign negotiated report frames (the coordinator's cache-warming
	// path). It is transport metadata, never part of the result line's
	// JSON: a delivery with a nil Result and a non-nil Report is a
	// report-only frame for a previously delivered index.
	Report json.RawMessage `json:"-"`
}

// RunStream resolves points like Run while additionally delivering each
// point's result on updates (when non-nil) the moment it is simulated
// or served from cache, in completion order. The final returned slice
// is byte-identical to Run's for the same input, so streaming costs no
// determinism: consumers render incrementally and merge from the
// returned slice. RunStream closes updates before returning. A consumer
// that stops draining updates must cancel ctx to release the campaign's
// workers.
func (e *Engine) RunStream(ctx context.Context, points []Point, updates chan<- PointResult) ([]*Result, error) {
	keys := make([]Point, len(points))
	for i, p := range points {
		if err := p.validate(); err != nil {
			if updates != nil {
				close(updates)
			}
			return nil, err
		}
		keys[i] = p.canonical()
	}
	if updates == nil {
		return e.runner.Run(ctx, keys)
	}
	// Bridge the runner's generic updates to PointResults carrying the
	// caller's original points. The forwarder owns closing updates;
	// waiting on forwarded guarantees that happens before we return.
	// inner is buffered for the whole campaign so worker sends never
	// block, and the forwarder tries a non-blocking send first: a
	// completed result is only dropped when the consumer's buffer is
	// full AND the context is cancelled, never by the cancellation
	// race alone.
	inner := make(chan campaign.Update[Point, *Result], len(points))
	forwarded := make(chan struct{})
	go func() {
		defer close(forwarded)
		defer close(updates)
		for u := range inner {
			pr := PointResult{Index: u.Index, Point: points[u.Index], Result: u.Value}
			select {
			case updates <- pr:
				continue
			default:
			}
			select {
			case updates <- pr:
			case <-ctx.Done():
				// The consumer is gone; workers blocked on inner also
				// select ctx.Done, so abandoning the drain is safe.
				return
			}
		}
	}()
	results, err := e.runner.RunStream(ctx, keys, inner)
	<-forwarded
	return results, err
}

// SimulatePoint resolves one point through the engine's cache.
func (e *Engine) SimulatePoint(ctx context.Context, p Point) (*Result, error) {
	res, err := e.Run(ctx, []Point{p})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// OnProgress registers a callback invoked after each campaign point
// resolves with (resolved, total) counts for the running campaign.
func (e *Engine) OnProgress(fn func(done, total int)) { e.runner.OnProgress(fn) }

// Workers returns the engine's worker-pool size.
func (e *Engine) Workers() int { return e.runner.Workers() }

// CacheStats returns how many point resolutions were served from the
// memoisation layer versus simulated.
func (e *Engine) CacheStats() (hits, misses uint64) { return e.runner.Stats() }
