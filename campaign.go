package sdpolicy

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"sdpolicy/internal/campaign"
)

// Point is one independent simulation task of a campaign: a workload
// preset at a scale and seed, simulated under Options. Points are
// comparable values; two Points that canonicalise equally identify the
// same simulation and share one cached result.
type Point struct {
	Workload string
	Scale    float64
	Seed     uint64
	// MalleableFraction, when in [0, 1], re-flags that fraction of jobs
	// malleable before simulating (mixed-workload experiments). A
	// negative value keeps the generated mix. NewPoint sets -1.
	MalleableFraction float64
	Options           Options
}

// NewPoint builds a Point with the generated malleable mix kept as is.
func NewPoint(workload string, scale float64, seed uint64, opt Options) Point {
	return Point{Workload: workload, Scale: scale, Seed: seed, MalleableFraction: -1, Options: opt}
}

// validate rejects float fields that would corrupt the campaign's
// map-based bookkeeping: NaN is never a valid map key (NaN != NaN, so
// a NaN-keyed point could simulate yet never deliver its result), and
// infinities are only meaningful for MaxSlowdown.
func (p Point) validate() error {
	bad := func(field string, v float64) error {
		return fmt.Errorf("sdpolicy: point %s %v is not a finite number: %w", field, v, ErrBadInput)
	}
	if math.IsNaN(p.Scale) || math.IsInf(p.Scale, 0) {
		return bad("scale", p.Scale)
	}
	if math.IsNaN(p.MalleableFraction) || math.IsInf(p.MalleableFraction, 0) {
		return bad("malleable fraction", p.MalleableFraction)
	}
	if math.IsNaN(p.Options.MaxSlowdown) {
		return bad("max slowdown", p.Options.MaxSlowdown)
	}
	if math.IsNaN(p.Options.SharingFactor) || math.IsInf(p.Options.SharingFactor, 0) {
		return bad("sharing factor", p.Options.SharingFactor)
	}
	if math.IsNaN(p.Options.OversubPenalty) || math.IsInf(p.Options.OversubPenalty, 0) {
		return bad("oversubscription penalty", p.Options.OversubPenalty)
	}
	return nil
}

// canonical normalises the point so that syntactically different but
// semantically identical points (e.g. Policy "" vs "static") share one
// cache entry.
func (p Point) canonical() Point {
	if p.MalleableFraction < 0 {
		p.MalleableFraction = -1
	}
	p.Options = p.Options.canonical()
	return p
}

// canonical fills every defaulted Options field with its effective
// value, mirroring toConfig, so Options values are usable as cache keys.
func (o Options) canonical() Options {
	if o.Policy == "" {
		o.Policy = "static"
	}
	if o.MaxSlowdown <= 0 {
		o.MaxSlowdown = math.Inf(1)
	}
	if o.Model == "" {
		o.Model = "ideal"
	}
	if o.SharingFactor <= 0 {
		o.SharingFactor = 0.5
	}
	if o.MaxMates <= 0 {
		o.MaxMates = 2
	}
	if o.CandidateCap <= 0 {
		o.CandidateCap = 64
	}
	if o.BackfillDepth <= 0 {
		o.BackfillDepth = 100
	}
	if o.Backfill == "" {
		o.Backfill = "conservative"
	}
	if o.Policy == "oversubscribe" && o.OversubPenalty <= 0 {
		o.OversubPenalty = 0.15
	}
	return o
}

// DeriveSeed deterministically expands a base seed into independent
// per-replicate seeds; replicate 0 returns the base seed itself so a
// one-replicate campaign matches a direct run.
func DeriveSeed(base uint64, replicate int) uint64 {
	if replicate == 0 {
		return base
	}
	return campaign.DeriveSeed(base, replicate)
}

// Engine runs simulation campaigns across a worker pool with memoised
// results. The zero value is not usable; use NewEngine or Default. An
// Engine is safe for concurrent use — overlapping campaigns share the
// cache and never simulate the same canonical Point twice at once.
type Engine struct {
	runner *campaign.Runner[Point, *Result]
}

// NewEngine builds an Engine with the given worker-pool size
// (<= 0 means GOMAXPROCS) and result-cache capacity in points
// (<= 0 disables cross-campaign memoisation).
func NewEngine(workers, cacheSize int) *Engine {
	e := &Engine{}
	e.runner = campaign.New(func(ctx context.Context, p Point) (*Result, error) {
		res, err := simulatePoint(p)
		if err != nil {
			return nil, fmt.Errorf("%s (scale %g, seed %d, %s): %w",
				p.Workload, p.Scale, p.Seed, p.Options.Policy, err)
		}
		return res, nil
	}, campaign.Config{Workers: workers, CacheSize: cacheSize})
	return e
}

func simulatePoint(p Point) (*Result, error) {
	// Reject out-of-range fractions (including NaN) here rather than
	// letting SetMalleableFraction panic inside a worker goroutine.
	// canonical() collapses every negative to the -1 "keep mix" sentinel.
	if !(p.MalleableFraction == -1 || (p.MalleableFraction >= 0 && p.MalleableFraction <= 1)) {
		return nil, fmt.Errorf("sdpolicy: malleable fraction %v out of [0,1]: %w", p.MalleableFraction, ErrBadInput)
	}
	w, err := NewWorkload(p.Workload, p.Scale, p.Seed)
	if err != nil {
		return nil, err
	}
	if p.MalleableFraction >= 0 {
		w.SetMalleableFraction(p.MalleableFraction)
	}
	return Simulate(w, p.Options)
}

var (
	defaultEngine     *Engine
	defaultEngineOnce sync.Once
)

// Default returns the process-wide Engine (GOMAXPROCS workers, 512
// cached points) used by the package-level experiment functions.
func Default() *Engine {
	defaultEngineOnce.Do(func() {
		defaultEngine = NewEngine(runtime.GOMAXPROCS(0), 512)
	})
	return defaultEngine
}

// Run resolves every point in parallel and returns results aligned
// with points: results[i] belongs to points[i]. Duplicate points (after
// canonicalisation) simulate once. The first simulation error cancels
// the remaining work; ctx cancellation aborts the campaign between
// tasks.
func (e *Engine) Run(ctx context.Context, points []Point) ([]*Result, error) {
	keys := make([]Point, len(points))
	for i, p := range points {
		if err := p.validate(); err != nil {
			return nil, err
		}
		keys[i] = p.canonical()
	}
	return e.runner.Run(ctx, keys)
}

// SimulatePoint resolves one point through the engine's cache.
func (e *Engine) SimulatePoint(ctx context.Context, p Point) (*Result, error) {
	res, err := e.Run(ctx, []Point{p})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// OnProgress registers a callback invoked after each campaign point
// resolves with (resolved, total) counts for the running campaign.
func (e *Engine) OnProgress(fn func(done, total int)) { e.runner.OnProgress(fn) }

// Workers returns the engine's worker-pool size.
func (e *Engine) Workers() int { return e.runner.Workers() }

// CacheStats returns how many point resolutions were served from the
// memoisation layer versus simulated.
func (e *Engine) CacheStats() (hits, misses uint64) { return e.runner.Stats() }
