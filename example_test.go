package sdpolicy_test

import (
	"fmt"

	"sdpolicy"
)

// The basic workflow: build a workload, simulate both policies, compare.
func Example() {
	w, err := sdpolicy.NewWorkload("wl5", 0.2, 1)
	if err != nil {
		panic(err)
	}
	static, err := sdpolicy.Simulate(w, sdpolicy.Options{Policy: "static"})
	if err != nil {
		panic(err)
	}
	sd, err := sdpolicy.Simulate(w, sdpolicy.Options{Policy: "sd", MaxSlowdown: 10})
	if err != nil {
		panic(err)
	}
	fmt.Println("SD-Policy improves avg slowdown:", sd.AvgSlowdown < static.AvgSlowdown)
	fmt.Println("jobs co-scheduled malleably:", sd.MalleableStarts > 0)
	// Output:
	// SD-Policy improves avg slowdown: true
	// jobs co-scheduled malleably: true
}

// Sweeping the MAX_SLOWDOWN cut-off reproduces Figures 1-3.
func ExampleSweepMaxSD() {
	rows, err := sdpolicy.SweepMaxSD([]string{"wl5"}, 0.15, 1)
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Printf("%s: slowdown improved = %v\n", r.Variant, r.AvgSlowdown < 1)
	}
	// Output:
	// MAXSD 5: slowdown improved = true
	// MAXSD 10: slowdown improved = true
	// MAXSD 50: slowdown improved = true
	// MAXSD inf: slowdown improved = true
	// DynAVGSD: slowdown improved = true
}

// The real-run experiment reproduces Figure 9's four improvement bars.
func ExampleRealRunExperiment() {
	rep, err := sdpolicy.RealRunExperiment(0.3, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("slowdown improved:", rep.AvgSlowdownPct > 0)
	fmt.Println("energy saved:", rep.EnergyPct > 0)
	// Output:
	// slowdown improved: true
	// energy saved: true
}
