package sdpolicy

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"
)

// shardTestPoints is a small mixed campaign: duplicate points (shared
// static baseline), a legacy malleable_fraction spelling, and a
// derivation chain — everything the canonical-key co-location and the
// wire round trip have to get right.
func shardTestPoints() []Point {
	static := NewPoint("wl5", 0.2, 1, Options{Policy: "static"})
	mf := NewPoint("wl5", 0.2, 1, Options{Policy: "sd"})
	mf.MalleableFraction = 0.5
	return []Point{
		static,
		NewPoint("wl5", 0.2, 1, Options{Policy: "sd", MaxSlowdown: 10}),
		static, // duplicate: must co-locate with position 0
		mf,
		NewDerivedPoint("wl5", 0.2, 1, Options{Policy: "sd"}, MalleableFractionDerivation(0.5)),
		NewPoint("wl5", 0.2, 2, Options{Policy: "oversubscribe"}),
	}
}

// TestShardedRunMatchesSingleProcess: for every shard count, running
// each shard in its own engine (separate process stand-in) and merging
// reproduces the single-engine campaign exactly.
func TestShardedRunMatchesSingleProcess(t *testing.T) {
	ctx := context.Background()
	points := shardTestPoints()
	want, err := NewEngine(2, 64).Run(ctx, points)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= len(points)+1; n++ {
		shards, err := PlanShards(points, n)
		if err != nil {
			t.Fatal(err)
		}
		results := make([][]*Result, len(shards))
		// Merge in reverse completion order to exercise order freedom.
		for i := len(shards) - 1; i >= 0; i-- {
			engine := NewEngine(2, 64)
			res, err := engine.Run(ctx, shards[i].Points)
			if err != nil {
				t.Fatalf("n=%d shard %d: %v", n, i, err)
			}
			results[i] = res
		}
		merged, err := MergeShardResults(len(points), shards, results)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for p := range want {
			gotJSON, _ := json.Marshal(merged[p])
			wantJSON, _ := json.Marshal(want[p])
			if string(gotJSON) != string(wantJSON) {
				t.Fatalf("n=%d point %d: merged %s, want %s", n, p, gotJSON, wantJSON)
			}
		}
	}
}

// TestPlanShardsCoLocatesCanonicalDuplicates: the two spellings of
// "half the jobs malleable" — the legacy field and the derivation op —
// canonicalise equally and must land in the same shard.
func TestPlanShardsCoLocatesCanonicalDuplicates(t *testing.T) {
	points := shardTestPoints()
	for n := 1; n <= 4; n++ {
		shards, err := PlanShards(points, n)
		if err != nil {
			t.Fatal(err)
		}
		owner := make(map[int]int) // original position -> shard
		for _, s := range shards {
			for _, pos := range s.Positions {
				owner[pos] = s.Index
			}
		}
		if owner[0] != owner[2] {
			t.Fatalf("n=%d: duplicate static points split across shards %d and %d", n, owner[0], owner[2])
		}
		if owner[3] != owner[4] {
			t.Fatalf("n=%d: legacy fraction (shard %d) and derivation (shard %d) spellings split", n, owner[3], owner[4])
		}
	}
}

// TestPlanShardsRejectsInvalidPoints: a bad point fails at planning
// time, not on whichever remote worker drew it.
func TestPlanShardsRejectsInvalidPoints(t *testing.T) {
	bad := NewPoint("wl5", math.NaN(), 1, Options{})
	if _, err := PlanShards([]Point{bad}, 2); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
	if _, err := PlanShards(shardTestPoints(), 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("n=0: err = %v, want ErrBadInput", err)
	}
}

// TestCampaignShardWireRoundTrip: a shard is self-describing — its
// JSON round-trips with the derivation chains and legacy sentinel
// intact, so a job-array worker can be handed nothing but the shard.
func TestCampaignShardWireRoundTrip(t *testing.T) {
	shards, err := PlanShards(shardTestPoints(), 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(shards)
	if err != nil {
		t.Fatal(err)
	}
	var back []CampaignShard
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		for j := range shards[i].Points {
			if shards[i].Points[j].canonical() != back[i].Points[j].canonical() {
				t.Fatalf("shard %d point %d changed across the wire: %+v vs %+v",
					i, j, shards[i].Points[j], back[i].Points[j])
			}
		}
	}
}

// TestPlanFleetShards: fleet planning multiplies granularity per
// worker (defaulting when unset), keeps full positional coverage, and
// rejects an empty fleet.
func TestPlanFleetShards(t *testing.T) {
	points := shardTestPoints()
	shards, err := PlanFleetShards(points, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 6 {
		t.Fatalf("%d shards for fleet 3 × 2/worker, want 6", len(shards))
	}
	covered := make([]bool, len(points))
	for _, s := range shards {
		if s.Of != 6 {
			t.Fatalf("shard %d declares plan size %d, want 6", s.Index, s.Of)
		}
		for _, pos := range s.Positions {
			if covered[pos] {
				t.Fatalf("position %d planned twice", pos)
			}
			covered[pos] = true
		}
	}
	for pos, ok := range covered {
		if !ok {
			t.Fatalf("position %d unplanned", pos)
		}
	}

	// perWorker <= 0 falls back to the default granularity.
	shards, err = PlanFleetShards(points, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2*DefaultShardsPerWorker {
		t.Fatalf("%d shards with default granularity, want %d", len(shards), 2*DefaultShardsPerWorker)
	}

	if _, err := PlanFleetShards(points, 0, 4); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty fleet: err %v, want ErrBadInput", err)
	}
}

func TestPlanResume(t *testing.T) {
	points := shardTestPoints()
	remaining, pts, err := PlanResume(points, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(remaining) != len(points)-2 || len(pts) != len(remaining) {
		t.Fatalf("resume plan %v over %d points", remaining, len(points))
	}
	for i, pos := range remaining {
		if pos == 0 || pos == 2 {
			t.Fatalf("checkpointed position %d re-planned", pos)
		}
		if pts[i] != points[pos] {
			t.Fatalf("pts[%d] != points[%d]", i, pos)
		}
	}
	if _, _, err := PlanResume(points, []int{len(points)}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("out-of-range checkpoint: %v, want ErrBadInput", err)
	}
	if _, _, err := PlanResume(points, []int{1, 1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("duplicate checkpoint: %v, want ErrBadInput", err)
	}
	// A fully checkpointed campaign resumes to nothing.
	all := make([]int, len(points))
	for i := range all {
		all[i] = i
	}
	remaining, pts, err = PlanResume(points, all)
	if err != nil || len(remaining) != 0 || len(pts) != 0 {
		t.Fatalf("fully checkpointed: %v, %v, %v", remaining, pts, err)
	}
}
