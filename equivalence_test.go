package sdpolicy

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden equivalence suite pins the simulator's observable output
// across optimization work: every workload preset crossed with every
// policy and cut-off variant, streamed through the campaign engine and
// encoded in the exact NDJSON wire form cmd/sdexp and /v1/campaign
// emit. The golden file was generated from the pre-optimization kernel
// (container/heap event queue, full profile rebuilds), so a passing run
// proves the monomorphic event heap's (at, pri, seq) tie-break and the
// incremental availability profile are semantics-preserving, byte for
// byte. Regenerate with:
//
//	go test -run TestGoldenEquivalence -update-golden .
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_equivalence.ndjson from the current kernel")

// goldenPoints is the full policy × cut-off matrix over every workload
// preset, at a scale small enough for the suite to run in seconds. wl4
// uses a smaller scale: it is ~10x the size of the others.
func goldenPoints() []Point {
	variants := []Options{
		{Policy: "static"},
		{Policy: "sd"},                                  // infinite cut-off
		{Policy: "sd", MaxSlowdown: 10},                 // static cut-off
		{Policy: "sd", DynamicCutoff: "avg"},            // DynAVGSD
		{Policy: "sd", DynamicCutoff: "median"},         // DynPERCSD 50
		{Policy: "sd", DynamicCutoff: "p70"},            // DynPERCSD 70
		{Policy: "sd", MaxSlowdown: 10, Model: "worst"}, // worst-case runtime model
		{Policy: "sd", MaxSlowdown: 10, IncludeFreeNodes: true},
		{Policy: "oversubscribe"},
	}
	var points []Point
	for _, wl := range []string{"wl1", "wl2", "wl3", "wl4", "wl5"} {
		scale := 0.1
		if wl == "wl4" {
			scale = 0.02
		}
		for _, opt := range variants {
			points = append(points, NewPoint(wl, scale, 1, opt))
		}
	}
	return points
}

func TestGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden equivalence suite simulates 45 points; skipped in -short")
	}
	points := goldenPoints()
	engine := NewEngine(0, 0)
	results, err := engine.Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i, res := range results {
		if err := enc.Encode(PointResult{Index: i, Point: points[i], Result: res}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join("testdata", "golden_equivalence.ndjson")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d points to %s", len(points), path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update-golden): %v", err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	// Byte mismatch: find the first diverging line for a usable report.
	gotLines := bytes.Split(buf.Bytes(), []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := range gotLines {
		if i >= len(wantLines) || !bytes.Equal(gotLines[i], wantLines[i]) {
			wantLine := []byte("<missing>")
			if i < len(wantLines) {
				wantLine = wantLines[i]
			}
			t.Fatalf("output diverges from golden at line %d:\n got: %.200s\nwant: %.200s",
				i+1, gotLines[i], wantLine)
		}
	}
	t.Fatalf("golden has %d lines, run produced %d", len(wantLines), len(gotLines))
}
