package sdpolicy

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (DESIGN.md §5 maps each to its experiment). Each
// benchmark regenerates its artefact on a scaled-down workload per
// iteration and reports the headline quantities via b.ReportMetric, so
// `go test -bench . -benchmem` both times the simulator and prints the
// reproduced results. EXPERIMENTS.md records full-scale paper-vs-measured
// numbers produced by cmd/sdexp.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"sdpolicy/internal/sched"
	"sdpolicy/internal/workload"
)

// benchScale keeps a single benchmark iteration in the tens of
// milliseconds; cmd/sdexp runs the same experiments at larger scales.
const benchScale = 0.05

func BenchmarkTable1_Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Table1(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.AvgSlowdown, r.ID+"-slowdown")
			}
		}
	}
}

func BenchmarkTable2_AppMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Table2(1.0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.SharePct, r.App+"-pct")
			}
		}
	}
}

func BenchmarkFig1to3_MaxSDSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := SweepMaxSD([]string{"wl1", "wl2", "wl3", "wl4"}, benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Variant == "MAXSD 10" {
					b.ReportMetric(r.AvgSlowdown, r.Workload+"-sd10-slowdown-norm")
				}
			}
		}
	}
}

func BenchmarkFig4to6_Heatmaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		an, err := AnalyzeBigWorkload(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// headline: overall slowdown improvement of the analysed run
			b.ReportMetric(an.Static.AvgSlowdown/an.SD.AvgSlowdown, "wl4-slowdown-ratio")
		}
	}
}

func BenchmarkFig7_Daily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		an, err := AnalyzeBigWorkload(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(an.SD.MalleableStarts)/float64(an.SD.Jobs)*100, "mall-starts-pct")
			b.ReportMetric(float64(len(an.SDDaily)), "days")
		}
	}
}

func BenchmarkFig8_RuntimeModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := CompareRuntimeModels([]string{"wl1", "wl2", "wl3", "wl4"}, benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.AvgResponse, fmt.Sprintf("%s-%s-resp-norm", r.Workload, r.Model))
			}
		}
	}
}

func BenchmarkFig9_RealRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := RealRunExperiment(0.25, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rep.MakespanPct, "makespan-improv-pct")
			b.ReportMetric(rep.AvgSlowdownPct, "slowdown-improv-pct")
			b.ReportMetric(rep.EnergyPct, "energy-improv-pct")
		}
	}
}

// Ablation benchmarks for the design choices DESIGN.md §7 calls out.

func BenchmarkAblation_SharingFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := AblateSharingFactor("wl1", benchScale, 1, []float64{0.25, 0.5, 0.75})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.AvgSlowdown, "sf"+r.Value+"-slowdown-norm")
			}
		}
	}
}

func BenchmarkAblation_MaxMates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := AblateMaxMates("wl1", benchScale, 1, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.AvgSlowdown, "m"+r.Value+"-slowdown-norm")
			}
		}
	}
}

func BenchmarkAblation_MalleableFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := AblateMalleableFraction("wl1", benchScale, 1, []float64{0.25, 0.5, 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.AvgSlowdown, "frac"+r.Value+"-slowdown-norm")
			}
		}
	}
}

func BenchmarkAblation_FreeNodeMixing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := AblateFreeNodeMixing("wl1", benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.AvgSlowdown, "mix-"+r.Value+"-slowdown-norm")
			}
		}
	}
}

// BenchmarkCampaignParallel measures campaign throughput of the same
// Figures 1-3 sweep on a single worker versus the full worker pool. The
// cache is disabled so every iteration simulates all points: the
// workers=1 case is the sequential baseline, and the ns/op ratio
// between the two sub-benchmarks is the parallel speedup. Each
// sub-benchmark also reports points/s.
func BenchmarkCampaignParallel(b *testing.B) {
	workloads := []string{"wl1", "wl2", "wl3", "wl5"}
	points := len(workloads) * (1 + len(MaxSDVariants()))
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			engine := NewEngine(workers, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.SweepMaxSD(context.Background(), workloads, benchScale, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(points*b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkCampaignCached measures the memoised path: after the first
// iteration warms the cache, every sweep is pure cache hits.
func BenchmarkCampaignCached(b *testing.B) {
	engine := NewEngine(runtime.GOMAXPROCS(0), 128)
	workloads := []string{"wl1", "wl2", "wl3", "wl5"}
	if _, err := engine.SweepMaxSD(context.Background(), workloads, benchScale, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.SweepMaxSD(context.Background(), workloads, benchScale, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadDerive measures the copy-on-write derivation path
// against regenerating the same workload from scratch — the ratio is
// the per-variant saving the generation cache buys every ablation
// point (a k-variant sweep pays one generation plus k derives instead
// of k generations). wl4 at scale 0.25 is ~50k jobs, the largest
// stream the benchmark suite touches.
func BenchmarkWorkloadDerive(b *testing.B) {
	const name, scale, seed = "wl4", 0.25, 1
	base, err := workload.Shared.Get(name, scale, seed)
	if err != nil {
		b.Fatal(err)
	}
	chain := []workload.Derivation{
		workload.MalleableFraction(0.5),
		workload.TagNodes("bigmem", 0.5),
		workload.RequireFeature("bigmem", 0.25),
	}
	b.Run("derive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := workload.Derive(base, chain); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(base.Jobs)), "jobs")
	})
	b.Run("regenerate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := workload.ByName(name, scale, seed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Microbenchmarks of the simulator itself: scheduling throughput.

func BenchmarkSimulator_StaticBackfill(b *testing.B) {
	w, err := NewWorkload("wl4", 0.02, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(w, Options{Policy: "static"})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Jobs)/b.Elapsed().Seconds(), "jobs/s-first-iter")
		}
	}
}

func BenchmarkSimulator_SDPolicy(b *testing.B) {
	w, err := NewWorkload("wl4", 0.02, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(w, Options{Policy: "sd", MaxSlowdown: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimKernel times the discrete-event kernel itself on a
// mid-size workload and reports raw event throughput — the number the
// telemetry plane's sim_events_per_second gauge tracks at runtime.
func BenchmarkSimKernel(b *testing.B) {
	spec, err := workload.Shared.Get("wl4", benchScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sched.Defaults()
	cfg.Policy = sched.SDPolicy
	cfg.MaxSlowdown = 10
	ctx := context.Background()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sched.RunContext(ctx, *spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}
