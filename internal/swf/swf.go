// Package swf reads and writes the Standard Workload Format of the
// Parallel Workloads Archive (Feitelson), the trace format the paper's
// workloads 3 and 4 come from. Synthetic generators emit SWF so real logs
// (RICC-2010, CEA-Curie-2011) can be dropped in unchanged.
//
// An SWF line has 18 whitespace-separated integer fields; lines starting
// with ';' are header comments. Unknown values are -1.
package swf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sdpolicy/internal/job"
)

// Record is one raw SWF line. Field names follow the SWF definition.
type Record struct {
	JobNumber    int64
	SubmitTime   int64
	WaitTime     int64
	RunTime      int64
	AllocProcs   int64
	AvgCPUTime   int64
	UsedMemory   int64
	ReqProcs     int64
	ReqTime      int64
	ReqMemory    int64
	Status       int64
	UserID       int64
	GroupID      int64
	Executable   int64
	QueueNumber  int64
	PartitionNum int64
	PrecedingJob int64
	ThinkTime    int64
}

const numFields = 18

// Header carries the machine-geometry comment fields of an SWF log.
// Zero values mean the trace did not declare the field; the archive
// convention is "; MaxNodes: 1152"-style lines, and sdgen additionally
// emits "Nodes:"/"CoresPerNode:" which parse to the same place.
type Header struct {
	// MaxNodes is the machine's node count (archive "MaxNodes", sdgen
	// "Nodes").
	MaxNodes int
	// MaxProcs is the machine's processor count ("MaxProcs").
	MaxProcs int
	// CoresPerNode is sdgen's explicit geometry; archive traces leave it
	// 0 and readers derive MaxProcs/MaxNodes instead.
	CoresPerNode int
}

// Parse reads all records from r, skipping comments and blank lines.
func Parse(r io.Reader) ([]Record, error) {
	recs, _, err := ParseWithHeader(r)
	return recs, err
}

// ParseWithHeader is Parse, additionally extracting the machine
// geometry declared in "; Key: value" header comments. Unknown header
// keys and malformed values are ignored — headers are advisory in the
// archive, never an error.
func ParseWithHeader(r io.Reader) ([]Record, Header, error) {
	var out []Record
	var hdr Header
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			parseHeaderLine(line, &hdr)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != numFields {
			return nil, Header{}, fmt.Errorf("swf: line %d: %d fields, want %d", lineNo, len(fields), numFields)
		}
		var vals [numFields]int64
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, Header{}, fmt.Errorf("swf: line %d field %d: %v", lineNo, i+1, err)
			}
			vals[i] = v
		}
		out = append(out, Record{
			JobNumber: vals[0], SubmitTime: vals[1], WaitTime: vals[2],
			RunTime: vals[3], AllocProcs: vals[4], AvgCPUTime: vals[5],
			UsedMemory: vals[6], ReqProcs: vals[7], ReqTime: vals[8],
			ReqMemory: vals[9], Status: vals[10], UserID: vals[11],
			GroupID: vals[12], Executable: vals[13], QueueNumber: vals[14],
			PartitionNum: vals[15], PrecedingJob: vals[16], ThinkTime: vals[17],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, Header{}, fmt.Errorf("swf: %v", err)
	}
	return out, hdr, nil
}

// parseHeaderLine extracts a recognised geometry key from one ";"
// comment line into hdr.
func parseHeaderLine(line string, hdr *Header) {
	body := strings.TrimSpace(strings.TrimLeft(line, "; "))
	key, val, ok := strings.Cut(body, ":")
	if !ok {
		return
	}
	// Archive headers put free text after the number ("; MaxNodes: 1152
	// nodes"); take the first field only.
	f := strings.Fields(strings.TrimSpace(val))
	if len(f) == 0 {
		return
	}
	n, err := strconv.Atoi(f[0])
	if err != nil || n <= 0 {
		return
	}
	// First value wins: "MaxNodes" (the archive key) and "Nodes" (the
	// sdgen key) alias the same field, and a later duplicate or alias
	// must not override an earlier explicit value.
	switch strings.TrimSpace(key) {
	case "MaxNodes", "Nodes":
		if hdr.MaxNodes == 0 {
			hdr.MaxNodes = n
		}
	case "MaxProcs":
		if hdr.MaxProcs == 0 {
			hdr.MaxProcs = n
		}
	case "CoresPerNode":
		if hdr.CoresPerNode == 0 {
			hdr.CoresPerNode = n
		}
	}
}

// Write emits records in SWF order with a minimal header.
func Write(w io.Writer, header string, recs []Record) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		for _, line := range strings.Split(strings.TrimRight(header, "\n"), "\n") {
			if _, err := fmt.Fprintf(bw, "; %s\n", line); err != nil {
				return err
			}
		}
	}
	for _, r := range recs {
		_, err := fmt.Fprintf(bw, "%d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d\n",
			r.JobNumber, r.SubmitTime, r.WaitTime, r.RunTime, r.AllocProcs,
			r.AvgCPUTime, r.UsedMemory, r.ReqProcs, r.ReqTime, r.ReqMemory,
			r.Status, r.UserID, r.GroupID, r.Executable, r.QueueNumber,
			r.PartitionNum, r.PrecedingJob, r.ThinkTime)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ToJobs converts records to simulator jobs for a machine with the given
// cores per node. Processor requests round up to whole nodes
// (select/linear). Records without a usable runtime or processor count
// are skipped; actual runtime is clamped to the request. kind is assigned
// to every job.
func ToJobs(recs []Record, coresPerNode int, kind job.Kind) []job.Job {
	if coresPerNode <= 0 {
		panic(fmt.Sprintf("swf: non-positive cores per node %d", coresPerNode))
	}
	jobs := make([]job.Job, 0, len(recs))
	id := job.ID(1)
	for _, r := range recs {
		procs := r.ReqProcs
		if procs <= 0 {
			procs = r.AllocProcs
		}
		if procs <= 0 || r.RunTime <= 0 || r.SubmitTime < 0 {
			continue
		}
		req := r.ReqTime
		if req <= 0 {
			req = r.RunTime
		}
		nodes := int((procs + int64(coresPerNode) - 1) / int64(coresPerNode))
		j := job.Job{
			ID:           id,
			Submit:       r.SubmitTime,
			ReqTime:      req,
			ActualTime:   r.RunTime,
			ReqNodes:     nodes,
			TasksPerNode: 1,
			Kind:         kind,
		}
		j.Clamp()
		if j.Validate() != nil {
			continue
		}
		jobs = append(jobs, j)
		id++
	}
	return jobs
}

// FromJobs converts simulator jobs back to SWF records (whole-node
// processor counts) so generated workloads can be saved and inspected.
func FromJobs(jobs []job.Job, coresPerNode int) []Record {
	recs := make([]Record, len(jobs))
	for i, j := range jobs {
		recs[i] = Record{
			JobNumber:  int64(j.ID),
			SubmitTime: j.Submit,
			WaitTime:   -1,
			RunTime:    j.ActualTime,
			AllocProcs: -1,
			AvgCPUTime: -1, UsedMemory: -1,
			ReqProcs:  int64(j.ReqNodes * coresPerNode),
			ReqTime:   j.ReqTime,
			ReqMemory: -1, Status: 1, UserID: -1, GroupID: -1,
			Executable: int64(j.App), QueueNumber: int64(j.Kind),
			PartitionNum: -1, PrecedingJob: -1, ThinkTime: -1,
		}
	}
	return recs
}
