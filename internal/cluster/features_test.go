package cluster

import "testing"

func TestNodeFeatures(t *testing.T) {
	c := New(cfg48())
	c.SetNodeFeatures(0, "bigmem", "gpu")
	c.SetNodeFeatures(1, "bigmem")

	if !c.NodeHasFeatures(0, []string{"bigmem", "gpu"}) {
		t.Fatal("node 0 should satisfy both features")
	}
	if c.NodeHasFeatures(1, []string{"gpu"}) {
		t.Fatal("node 1 should lack gpu")
	}
	if !c.NodeHasFeatures(2, nil) {
		t.Fatal("empty requirement matches every node")
	}
	got := c.NodeFeatures(0)
	if len(got) != 2 {
		t.Fatalf("features %v", got)
	}
	got[0] = "mutated"
	if c.NodeFeatures(0)[0] == "mutated" {
		t.Fatal("NodeFeatures leaked internal storage")
	}
}

func TestNodesWithAndFreeNodesWith(t *testing.T) {
	c := New(cfg48())
	c.SetNodeFeatures(0, "fast")
	c.SetNodeFeatures(1, "fast")
	c.SetNodeFeatures(2, "fast")
	if got := c.NodesWith([]string{"fast"}); got != 3 {
		t.Fatalf("NodesWith = %d, want 3", got)
	}
	if got := c.NodesWith(nil); got != 8 {
		t.Fatalf("NodesWith(nil) = %d, want 8", got)
	}
	if got := c.FreeNodesWith([]string{"fast"}); got != 3 {
		t.Fatalf("FreeNodesWith = %d, want 3", got)
	}
	// occupy one fast node
	ids, err := c.AllocateFreeWith(1, 1, []string{"fast"})
	if err != nil {
		t.Fatal(err)
	}
	if !c.NodeHasFeatures(ids[0], []string{"fast"}) {
		t.Fatal("allocated node lacks the feature")
	}
	if got := c.FreeNodesWith([]string{"fast"}); got != 2 {
		t.Fatalf("FreeNodesWith after alloc = %d, want 2", got)
	}
	if got := c.NodesWith([]string{"fast"}); got != 3 {
		t.Fatal("NodesWith must count busy nodes too")
	}
}

func TestAllocateFreeWithExhaustion(t *testing.T) {
	c := New(cfg48())
	c.SetNodeFeatures(0, "rare")
	if _, err := c.AllocateFreeWith(1, 2, []string{"rare"}); err == nil {
		t.Fatal("allocated more feature nodes than exist")
	}
	// failure must not leak state
	if c.FreeNodes() != 8 || c.UsedCores() != 0 {
		t.Fatal("failed feature allocation changed state")
	}
	if _, err := c.AllocateFreeWith(1, 1, []string{"rare"}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
