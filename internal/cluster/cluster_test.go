package cluster

import (
	"math/rand"
	"testing"

	"sdpolicy/internal/job"
)

func cfg48() Config { return Config{Nodes: 8, Sockets: 2, CoresPerSocket: 24} }

func TestConfig(t *testing.T) {
	c := cfg48()
	if c.CoresPerNode() != 48 {
		t.Fatalf("cores per node %d", c.CoresPerNode())
	}
	if c.TotalCores() != 8*48 {
		t.Fatalf("total cores %d", c.TotalCores())
	}
	bad := []Config{{0, 2, 24}, {8, 0, 24}, {8, 2, 0}}
	for _, b := range bad {
		if b.Validate() == nil {
			t.Errorf("config %+v should be invalid", b)
		}
	}
}

func TestAllocateFree(t *testing.T) {
	c := New(cfg48())
	ids, err := c.AllocateFree(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("got %d nodes", len(ids))
	}
	if c.FreeNodes() != 5 || c.BusyNodes() != 3 {
		t.Fatalf("free=%d busy=%d", c.FreeNodes(), c.BusyNodes())
	}
	if c.UsedCores() != 3*48 {
		t.Fatalf("used cores %d", c.UsedCores())
	}
	for _, id := range ids {
		if c.CoresOf(id, 1) != 48 {
			t.Fatalf("node %d share %d", id, c.CoresOf(id, 1))
		}
		al := c.Allocs(id)
		if len(al) != 1 || !al[0].Owner {
			t.Fatalf("node %d allocs %+v", id, al)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateFreeInsufficient(t *testing.T) {
	c := New(cfg48())
	if _, err := c.AllocateFree(1, 9); err == nil {
		t.Fatal("expected error for 9 of 8 nodes")
	}
	if _, err := c.AllocateFree(1, 0); err == nil {
		t.Fatal("expected error for zero nodes")
	}
	// failure must not leak state
	if c.FreeNodes() != 8 || c.UsedCores() != 0 {
		t.Fatalf("failed alloc changed state: free=%d used=%d", c.FreeNodes(), c.UsedCores())
	}
}

func TestGuestLifecycle(t *testing.T) {
	c := New(cfg48())
	nodes, _ := c.AllocateFree(1, 2)
	// shrink owner to one socket, place guest on the other
	for _, nd := range nodes {
		c.SetCores(nd, 1, 24)
		c.PlaceGuest(2, nd, 24)
	}
	if c.UsedCores() != 2*48 {
		t.Fatalf("used cores %d", c.UsedCores())
	}
	for _, nd := range nodes {
		if c.JobsOn(nd) != 2 {
			t.Fatalf("node %d jobs %d", nd, c.JobsOn(nd))
		}
	}
	// guest leaves; owner expands back
	for _, nd := range nodes {
		if freed := c.Release(nd, 2); freed {
			t.Fatalf("node %d freed while owner present", nd)
		}
		c.SetCores(nd, 1, 48)
	}
	if c.UsedCores() != 2*48 {
		t.Fatalf("used cores after expand %d", c.UsedCores())
	}
	for _, nd := range nodes {
		if freed := c.Release(nd, 1); !freed {
			t.Fatalf("node %d not freed after last job", nd)
		}
	}
	if c.FreeNodes() != 8 || c.UsedCores() != 0 {
		t.Fatalf("not fully free: free=%d used=%d", c.FreeNodes(), c.UsedCores())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerEndsBeforeGuest(t *testing.T) {
	c := New(cfg48())
	nodes, _ := c.AllocateFree(1, 1)
	nd := nodes[0]
	c.SetCores(nd, 1, 24)
	c.PlaceGuest(2, nd, 24)
	// owner ends first: node stays busy because the guest remains
	if freed := c.Release(nd, 1); freed {
		t.Fatal("node freed while guest running")
	}
	// guest absorbs the freed cores
	c.SetCores(nd, 2, 48)
	if c.CoresOf(nd, 2) != 48 {
		t.Fatalf("guest share %d", c.CoresOf(nd, 2))
	}
	if freed := c.Release(nd, 2); !freed {
		t.Fatal("node not freed after guest end")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOverCommitPanics(t *testing.T) {
	c := New(cfg48())
	nodes, _ := c.AllocateFree(1, 1)
	nd := nodes[0]
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("guest on full node", func() { c.PlaceGuest(2, nd, 1) })
	mustPanic("set cores beyond node", func() { c.SetCores(nd, 1, 49) })
	mustPanic("set cores absent job", func() { c.SetCores(nd, 99, 1) })
	mustPanic("release absent job", func() { c.Release(nd, 99) })
	mustPanic("duplicate guest", func() {
		c.SetCores(nd, 1, 24)
		c.PlaceGuest(1, nd, 24)
	})
	mustPanic("zero-core guest", func() { c.PlaceGuest(3, nd, 0) })
}

// Property test: a random but legal sequence of allocate / guest /
// shrink / expand / release operations never breaks the invariants.
func TestRandomOpsKeepInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		cfg := Config{Nodes: 1 + rng.Intn(20), Sockets: 1 + rng.Intn(3), CoresPerSocket: 1 + rng.Intn(16)}
		c := New(cfg)
		cpn := cfg.CoresPerNode()
		type holding struct {
			nodes []int
			guest bool
		}
		held := map[job.ID]*holding{}
		next := job.ID(1)
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0: // allocate a new owner job
				want := 1 + rng.Intn(4)
				if want <= c.FreeNodes() {
					ids, err := c.AllocateFree(next, want)
					if err != nil {
						t.Fatal(err)
					}
					held[next] = &holding{nodes: ids}
					next++
				}
			case 1: // shrink an owner and add a guest on its nodes
				for id, h := range held {
					if h.guest || len(h.nodes) == 0 || cpn < 2 {
						continue
					}
					if c.CoresOf(h.nodes[0], id) != cpn {
						continue // already shrunk
					}
					g := next
					next++
					for _, nd := range h.nodes {
						c.SetCores(nd, id, cpn/2)
						c.PlaceGuest(g, nd, cpn-cpn/2)
					}
					held[g] = &holding{nodes: append([]int(nil), h.nodes...), guest: true}
					break
				}
			case 2: // release one job entirely
				for id, h := range held {
					for _, nd := range h.nodes {
						c.Release(nd, id)
					}
					delete(held, id)
					break
				}
			case 3: // no-op probe
				if c.BusyNodes()+c.FreeNodes() != cfg.Nodes {
					t.Fatal("node accounting broken")
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
		}
	}
}
