// Package cluster models the machine: a homogeneous set of compute nodes,
// each with a fixed socket × core layout, allocated to jobs at whole-node
// granularity (the SLURM select/linear model the paper uses) but shareable
// between an owner job and guest jobs once malleability shrinks the owner.
package cluster

import (
	"fmt"

	"sdpolicy/internal/job"
)

// Config describes the hardware of a simulated system.
type Config struct {
	Nodes          int // number of compute nodes
	Sockets        int // sockets per node
	CoresPerSocket int // cores per socket
}

// CoresPerNode returns the number of cores of one node.
func (c Config) CoresPerNode() int { return c.Sockets * c.CoresPerSocket }

// TotalCores returns the number of cores of the whole machine.
func (c Config) TotalCores() int { return c.Nodes * c.CoresPerNode() }

// Validate reports the first structural problem of the configuration.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: non-positive node count %d", c.Nodes)
	case c.Sockets <= 0:
		return fmt.Errorf("cluster: non-positive socket count %d", c.Sockets)
	case c.CoresPerSocket <= 0:
		return fmt.Errorf("cluster: non-positive cores per socket %d", c.CoresPerSocket)
	}
	return nil
}

// Alloc is the share of one node held by one job.
type Alloc struct {
	Job   job.ID
	Cores int
	Owner bool // owners were granted the node statically; guests moved in via malleability
}

// node is the per-node allocation state. Nodes typically host one owner
// and at most a few guests, so a small slice beats a map.
type node struct {
	allocs   []Alloc
	features []string
}

func (n *node) hasFeatures(req []string) bool {
	for _, want := range req {
		found := false
		for _, f := range n.features {
			if f == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (n *node) find(id job.ID) int {
	for i := range n.allocs {
		if n.allocs[i].Job == id {
			return i
		}
	}
	return -1
}

func (n *node) usedCores() int {
	total := 0
	for i := range n.allocs {
		total += n.allocs[i].Cores
	}
	return total
}

// Cluster tracks which jobs hold how many cores on which nodes.
// It is purely a bookkeeping structure: placement policy lives in
// package sched and core-to-job distribution in package nodemgr.
type Cluster struct {
	cfg       Config
	nodes     []node
	freeList  []int // free node ids, LIFO
	freePos   []int // node id -> index in freeList, -1 if busy
	usedCores int   // total cores currently assigned
}

// New returns an empty cluster. It panics on an invalid configuration;
// configurations come from code, not user input.
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{
		cfg:      cfg,
		nodes:    make([]node, cfg.Nodes),
		freeList: make([]int, cfg.Nodes),
		freePos:  make([]int, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.freeList[i] = cfg.Nodes - 1 - i // pop low ids first
		c.freePos[cfg.Nodes-1-i] = i
	}
	return c
}

// Config returns the hardware description.
func (c *Cluster) Config() Config { return c.cfg }

// FreeNodes returns how many nodes currently host no job.
func (c *Cluster) FreeNodes() int { return len(c.freeList) }

// UsedCores returns the total number of cores assigned to jobs right now.
func (c *Cluster) UsedCores() int { return c.usedCores }

// BusyNodes returns Nodes - FreeNodes.
func (c *Cluster) BusyNodes() int { return c.cfg.Nodes - len(c.freeList) }

// Allocs returns a copy of the allocations on the given node.
func (c *Cluster) Allocs(nodeID int) []Alloc {
	n := &c.nodes[nodeID]
	out := make([]Alloc, len(n.allocs))
	copy(out, n.allocs)
	return out
}

// AllocsInto appends the node's allocations to buf and returns the
// extended slice — the allocation-free variant of Allocs for hot paths
// that own a reusable scratch buffer.
func (c *Cluster) AllocsInto(buf []Alloc, nodeID int) []Alloc {
	return append(buf, c.nodes[nodeID].allocs...)
}

// JobsOn returns how many jobs share the given node.
func (c *Cluster) JobsOn(nodeID int) int { return len(c.nodes[nodeID].allocs) }

// CoresOf returns how many cores the job holds on the node, 0 if absent.
func (c *Cluster) CoresOf(nodeID int, id job.ID) int {
	n := &c.nodes[nodeID]
	if i := n.find(id); i >= 0 {
		return n.allocs[i].Cores
	}
	return 0
}

// markBusy removes a node from the free list.
func (c *Cluster) markBusy(nodeID int) {
	pos := c.freePos[nodeID]
	if pos < 0 {
		panic(fmt.Sprintf("cluster: node %d already busy", nodeID))
	}
	last := len(c.freeList) - 1
	moved := c.freeList[last]
	c.freeList[pos] = moved
	c.freePos[moved] = pos
	c.freeList = c.freeList[:last]
	c.freePos[nodeID] = -1
	if moved == nodeID && pos != last {
		panic("cluster: free list corrupted")
	}
}

// markFree returns a node to the free list.
func (c *Cluster) markFree(nodeID int) {
	if c.freePos[nodeID] >= 0 {
		panic(fmt.Sprintf("cluster: node %d already free", nodeID))
	}
	c.freePos[nodeID] = len(c.freeList)
	c.freeList = append(c.freeList, nodeID)
}

// SetNodeFeatures tags a node with attribute strings (architecture,
// memory class, interconnect, ...) that jobs may require.
func (c *Cluster) SetNodeFeatures(nodeID int, features ...string) {
	c.nodes[nodeID].features = append([]string(nil), features...)
}

// NodeFeatures returns a copy of the node's feature tags.
func (c *Cluster) NodeFeatures(nodeID int) []string {
	return append([]string(nil), c.nodes[nodeID].features...)
}

// NodeHasFeatures reports whether the node carries every required tag.
func (c *Cluster) NodeHasFeatures(nodeID int, req []string) bool {
	return c.nodes[nodeID].hasFeatures(req)
}

// NodesWith returns how many nodes of the whole machine carry every
// required tag (capacity check for feature-constrained jobs).
func (c *Cluster) NodesWith(req []string) int {
	if len(req) == 0 {
		return c.cfg.Nodes
	}
	n := 0
	for i := range c.nodes {
		if c.nodes[i].hasFeatures(req) {
			n++
		}
	}
	return n
}

// FreeNodesWith returns how many currently free nodes carry every
// required tag.
func (c *Cluster) FreeNodesWith(req []string) int {
	if len(req) == 0 {
		return len(c.freeList)
	}
	n := 0
	for _, id := range c.freeList {
		if c.nodes[id].hasFeatures(req) {
			n++
		}
	}
	return n
}

// AllocateFree grants n free nodes, full cores each, to the job as owner.
// It returns the node ids, or an error if fewer than n nodes are free.
func (c *Cluster) AllocateFree(id job.ID, n int) ([]int, error) {
	return c.AllocateFreeWith(id, n, nil)
}

// AllocateFreeWith is AllocateFree restricted to nodes carrying every
// required feature tag.
func (c *Cluster) AllocateFreeWith(id job.ID, n int, req []string) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: non-positive node request %d", n)
	}
	// Collect matching free nodes first so failure leaks no state.
	var matching []int
	for i := len(c.freeList) - 1; i >= 0 && len(matching) < n; i-- {
		nd := c.freeList[i]
		if len(req) == 0 || c.nodes[nd].hasFeatures(req) {
			matching = append(matching, nd)
		}
	}
	if len(matching) < n {
		return nil, fmt.Errorf("cluster: %d matching free nodes, %d requested", len(matching), n)
	}
	for _, nd := range matching {
		c.markBusy(nd)
		c.nodes[nd].allocs = append(c.nodes[nd].allocs, Alloc{
			Job: id, Cores: c.cfg.CoresPerNode(), Owner: true,
		})
		c.usedCores += c.cfg.CoresPerNode()
	}
	return matching, nil
}

// PlaceGuest adds the job to an already busy node with the given core
// share. The caller (nodemgr) must have shrunk the residents first so the
// node's core budget is respected.
func (c *Cluster) PlaceGuest(id job.ID, nodeID, cores int) {
	n := &c.nodes[nodeID]
	if n.find(id) >= 0 {
		panic(fmt.Sprintf("cluster: job %d already on node %d", id, nodeID))
	}
	if cores <= 0 {
		panic(fmt.Sprintf("cluster: non-positive guest share %d", cores))
	}
	if len(n.allocs) == 0 {
		// A guest may land on a node whose residents all ended; the node
		// must be re-marked busy.
		c.markBusy(nodeID)
	}
	if n.usedCores()+cores > c.cfg.CoresPerNode() {
		panic(fmt.Sprintf("cluster: node %d over-committed: %d used + %d guest > %d",
			nodeID, n.usedCores(), cores, c.cfg.CoresPerNode()))
	}
	n.allocs = append(n.allocs, Alloc{Job: id, Cores: cores})
	c.usedCores += cores
}

// SetCores changes the share of the job on the node (shrink or expand).
// The job must already be present on the node.
func (c *Cluster) SetCores(nodeID int, id job.ID, cores int) {
	n := &c.nodes[nodeID]
	i := n.find(id)
	if i < 0 {
		panic(fmt.Sprintf("cluster: job %d not on node %d", id, nodeID))
	}
	if cores <= 0 {
		panic(fmt.Sprintf("cluster: non-positive share %d", cores))
	}
	delta := cores - n.allocs[i].Cores
	if n.usedCores()+delta > c.cfg.CoresPerNode() {
		panic(fmt.Sprintf("cluster: node %d over-committed on SetCores", nodeID))
	}
	n.allocs[i].Cores = cores
	c.usedCores += delta
}

// Release removes the job from the node. The node returns to the free
// list once no job remains on it. It reports whether the node became free.
func (c *Cluster) Release(nodeID int, id job.ID) bool {
	n := &c.nodes[nodeID]
	i := n.find(id)
	if i < 0 {
		panic(fmt.Sprintf("cluster: job %d not on node %d", id, nodeID))
	}
	c.usedCores -= n.allocs[i].Cores
	n.allocs[i] = n.allocs[len(n.allocs)-1]
	n.allocs = n.allocs[:len(n.allocs)-1]
	if len(n.allocs) == 0 {
		c.markFree(nodeID)
		return true
	}
	return false
}

// CheckInvariants verifies internal consistency; tests call it after
// random operation sequences. It returns the first violation found.
func (c *Cluster) CheckInvariants() error {
	used := 0
	freeSeen := 0
	for id := range c.nodes {
		n := &c.nodes[id]
		u := n.usedCores()
		if u > c.cfg.CoresPerNode() {
			return fmt.Errorf("node %d over-committed: %d > %d", id, u, c.cfg.CoresPerNode())
		}
		for i := range n.allocs {
			if n.allocs[i].Cores <= 0 {
				return fmt.Errorf("node %d: non-positive alloc for job %d", id, n.allocs[i].Job)
			}
		}
		used += u
		free := len(n.allocs) == 0
		if free != (c.freePos[id] >= 0) {
			return fmt.Errorf("node %d: free-list flag mismatch", id)
		}
		if free {
			freeSeen++
			if c.freeList[c.freePos[id]] != id {
				return fmt.Errorf("node %d: free-list position corrupt", id)
			}
		}
	}
	if used != c.usedCores {
		return fmt.Errorf("used cores %d, cached %d", used, c.usedCores)
	}
	if freeSeen != len(c.freeList) {
		return fmt.Errorf("free nodes %d, free list %d", freeSeen, len(c.freeList))
	}
	return nil
}
