package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestAddGetEvict(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used and must be the eviction victim.
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction over less recently used a")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestAddRefreshesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 10) // refresh value and recency
	c.Add("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("Get(a) = %v, %v, want 10, true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache[string, int]
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache non-empty")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(i%100, g)
				c.Get(i % 100)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache over capacity: %d", c.Len())
	}
}

func TestPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[string, string](0)
}

func ExampleCache() {
	c := New[string, string](8)
	c.Add("wl1/static", "baseline")
	v, ok := c.Get("wl1/static")
	fmt.Println(v, ok)
	// Output: baseline true
}

func TestSnapshotOrderAndRestore(t *testing.T) {
	c := New[string, int](4)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("c", 3)
	c.Get("a") // a becomes most recent: LRU order is now b, c, a
	keys, vals := c.Snapshot()
	if len(keys) != 3 || len(vals) != 3 {
		t.Fatalf("snapshot %v %v", keys, vals)
	}
	want := []string{"b", "c", "a"}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("snapshot order %v, want %v", keys, want)
		}
	}
	// Re-adding in snapshot order reproduces the recency order: with
	// capacity 3 and one more insert, "b" (least recent) evicts first.
	r := New[string, int](3)
	for i, k := range keys {
		r.Add(k, vals[i])
	}
	r.Add("d", 4)
	if _, ok := r.Get("b"); ok {
		t.Fatal("restored cache evicted the wrong entry")
	}
	if v, ok := r.Get("a"); !ok || v != 1 {
		t.Fatal("restored cache lost a recent entry")
	}
	var nilCache *Cache[string, int]
	if k, v := nilCache.Snapshot(); k != nil || v != nil {
		t.Fatal("nil cache snapshot not empty")
	}
}
