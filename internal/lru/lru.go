// Package lru provides a small concurrency-safe least-recently-used
// cache, generic over key and value. It backs the campaign runner's
// result memoisation: simulation results are large but immutable, so a
// bounded LRU keeps the hot working set (e.g. the per-workload static
// baselines shared by every sweep variant) without unbounded growth.
package lru

import (
	"container/list"
	"sync"

	"sdpolicy/internal/telemetry"
)

// Cache telemetry, aggregated across every live cache in the process.
// A nil cache counts nothing: a disabled cache has no hit rate worth
// graphing, and the no-op fast path stays allocation- and atomic-free.
var (
	mHits = telemetry.NewCounter("lru_hits_total",
		"LRU lookups that found the key.")
	mMisses = telemetry.NewCounter("lru_misses_total",
		"LRU lookups that missed.")
	mEvictions = telemetry.NewCounter("lru_evictions_total",
		"Entries evicted because a cache exceeded its capacity.")
)

type entry[K comparable, V any] struct {
	key K
	val V
}

// Cache is a fixed-capacity LRU map. A nil *Cache is a valid, always
// empty cache whose Add is a no-op — callers can disable caching by
// passing nil instead of guarding every call site.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[K]*list.Element
}

// New returns a cache holding at most capacity entries. It panics on a
// non-positive capacity; use a nil *Cache to disable caching.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic("lru: non-positive capacity")
	}
	return &Cache[K, V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if c == nil {
		var zero V
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		mMisses.Inc()
		var zero V
		return zero, false
	}
	mHits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Add inserts or refreshes the entry, evicting the least recently used
// entry if the cache is over capacity.
func (c *Cache[K, V]) Add(key K, val V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry[K, V]{key: key, val: val})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
		mEvictions.Inc()
	}
}

// Snapshot returns the cached entries ordered least recently used
// first, so Adding them back in order onto an empty cache reproduces
// both the contents and the recency order. It backs the campaign
// engine's persistent cache spill.
func (c *Cache[K, V]) Snapshot() (keys []K, vals []V) {
	if c == nil {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys = make([]K, 0, c.order.Len())
	vals = make([]V, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry[K, V])
		keys = append(keys, e.key)
		vals = append(vals, e.val)
	}
	return keys, vals
}

// Cap returns the cache capacity; a nil cache has capacity 0.
func (c *Cache[K, V]) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
