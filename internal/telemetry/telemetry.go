// Package telemetry is the dependency-free metrics layer behind the
// sdserve /metrics endpoint: counters, gauges and fixed-bucket
// histograms with atomic updates, exposed in the Prometheus text
// exposition format (text/plain; version=0.0.4).
//
// Every instrumented package declares its metrics as package-level
// variables against the Default registry:
//
//	var points = telemetry.NewCounter("campaign_points_started_total",
//		"Campaign points handed to the simulator.")
//
// and updates them with lock-free atomic operations on the hot path.
// Scrapes (Registry.WritePrometheus, or the http.Handler returned by
// Registry.Handler) walk the registry and render a deterministic
// snapshot: families sorted by name, children sorted by label values,
// so the output is diffable and goldens stay stable.
//
// The package deliberately implements only what the repo needs — no
// summaries, no exemplars, no push — but the exposition it produces is
// accepted verbatim by Prometheus, VictoriaMetrics and promtool.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram buckets, in seconds: the usual
// Prometheus latency ladder stretched to the minutes range, because a
// full-scale campaign point legitimately simulates for that long.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// sample is the common interface of a single child (one label-value
// combination) of a metric family.
type sample interface {
	// write renders the child's exposition lines. name is the family
	// name, labels the pre-rendered `k="v"` pairs (no braces), which a
	// histogram needs to merge with its own le label.
	write(w io.Writer, name, labels string)
	// scalar returns the child's headline value: the count of a
	// counter, the level of a gauge, the observation count of a
	// histogram. It backs Registry.Value.
	scalar() float64
}

// family is one metric name: its metadata plus a child per label-value
// combination (a single, unlabeled child when labels is empty).
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histogram families only

	mu       sync.Mutex
	children map[string]sample // key: rendered label pairs
}

// child returns (creating if needed) the sample for the label values.
func (f *family) child(lvs []string) sample {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d",
			f.name, len(f.labels), len(lvs)))
	}
	key := renderLabels(f.labels, lvs)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.children[key]
	if !ok {
		switch f.kind {
		case counterKind:
			s = &Counter{}
		case gaugeKind:
			s = &Gauge{}
		default:
			s = newHistogram(f.buckets)
		}
		f.children[key] = s
	}
	return s
}

// Registry holds metric families and renders them. The zero value is
// not usable; use NewRegistry, or the package-level Default that every
// NewCounter/NewGauge/NewHistogram convenience registers into.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry: instrumented packages register
// into it at init and sdserve's /metrics exposes it.
var Default = NewRegistry()

// register returns the family, creating it on first use. Re-registering
// an existing name with the same shape returns the existing family —
// registration is idempotent, so tests and packages need not coordinate
// — but a shape mismatch (kind or labels) panics: two meanings for one
// metric name is a programming error no scrape should paper over.
func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64) *family {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s%v, was %s%v",
				name, k, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     k,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]sample),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, counterKind, nil, nil).child(nil).(*Counter)
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, counterKind, labels, nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, gaugeKind, nil, nil).child(nil).(*Gauge)
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, gaugeKind, labels, nil)}
}

// Histogram registers (or fetches) an unlabeled fixed-bucket histogram.
// Bucket bounds must be sorted ascending; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, histogramKind, nil, checkBuckets(buckets)).child(nil).(*Histogram)
}

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, histogramKind, labels, checkBuckets(buckets))}
}

func checkBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic("telemetry: histogram buckets must be sorted strictly ascending")
		}
	}
	return buckets
}

// Package-level conveniences against Default.

// NewCounter registers an unlabeled counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewCounterVec registers a labeled counter family in the Default registry.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return Default.CounterVec(name, help, labels...)
}

// NewGauge registers an unlabeled gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewGaugeVec registers a labeled gauge family in the Default registry.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return Default.GaugeVec(name, help, labels...)
}

// NewHistogram registers an unlabeled histogram in the Default registry.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.Histogram(name, help, buckets)
}

// NewHistogramVec registers a labeled histogram family in the Default registry.
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return Default.HistogramVec(name, help, buckets, labels...)
}

// Counter is a monotonically increasing uint64. All methods are
// lock-free and safe for concurrent use.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

func (c *Counter) scalar() float64 { return float64(c.n.Load()) }

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, braced(labels), c.n.Load())
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns the counter for the label values (created on first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues).(*Counter)
}

// Gauge is a float64 that can go up and down. All methods are lock-free
// (CAS loops) and safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) scalar() float64 { return g.Value() }

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, braced(labels), formatFloat(g.Value()))
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the label values (created on first use).
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues).(*Gauge)
}

// Histogram counts observations into fixed buckets, tracking the total
// sum and count. Observe is lock-free; a concurrent scrape sees a
// near-consistent snapshot (bucket counts may trail the total by the
// handful of observations in flight, which Prometheus tolerates).
type Histogram struct {
	bounds []float64       // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sum    Gauge
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, matching le semantics
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

func (h *Histogram) scalar() float64 { return float64(h.count.Load()) }

func (h *Histogram) write(w io.Writer, name, labels string) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(labels, `le="`+formatFloat(b)+`"`)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(labels, `le="+Inf"`)), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(labels), formatFloat(h.sum.Value()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), h.count.Load())
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the label values (created on first use).
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues).(*Histogram)
}

// Value returns the headline value of the metric child with the given
// label values (the count of a counter or histogram, the level of a
// gauge), and whether that child exists. It lets consumers such as
// sdexp's machine-readable stats line read the same counters the
// exposition reports instead of keeping a parallel tally.
func (r *Registry) Value(name string, labelValues ...string) (float64, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok || len(labelValues) != len(f.labels) {
		return 0, false
	}
	key := renderLabels(f.labels, labelValues)
	f.mu.Lock()
	s, ok := f.children[key]
	f.mu.Unlock()
	if !ok {
		return 0, false
	}
	return s.scalar(), true
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, children
// sorted by rendered label values, so output is deterministic given the
// same metric state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var buf strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if len(keys) > 0 {
			fmt.Fprintf(&buf, "# HELP %s %s\n", f.name, escapeHelp(f.help))
			fmt.Fprintf(&buf, "# TYPE %s %s\n", f.name, f.kind)
			for _, k := range keys {
				f.children[k].write(&buf, f.name, k)
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, buf.String())
	return err
}

// ContentType is the exposition MIME type /metrics responses carry.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns the GET /metrics handler over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if req.Method == http.MethodHead {
			return
		}
		r.WritePrometheus(w)
	})
}

// renderLabels renders `k="v"` pairs (comma-joined, no braces) with
// label values escaped per the exposition format.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// joinLabels appends one more rendered pair to a possibly empty set.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// braced wraps rendered label pairs for a sample line; an empty set
// renders no braces at all.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
