package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden locks the exact exposition bytes for a registry
// exercising every metric type, labels, escaping, and ordering.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("b_total", "Plain counter.")
	c.Add(3)

	cv := r.CounterVec("a_total", "Labeled counter.", "peer", "op")
	cv.With("w2", "steal").Inc()
	cv.With("w1", "run").Add(2)

	g := r.Gauge("c_level", "A gauge.")
	g.Set(1.5)
	g.Add(-0.25)

	h := r.Histogram("d_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(0.5)

	esc := r.CounterVec("e_total", "Help with \\ and\nnewline.", "v")
	esc.With("a\"b\\c\nd").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_total Labeled counter.
# TYPE a_total counter
a_total{peer="w1",op="run"} 2
a_total{peer="w2",op="steal"} 1
# HELP b_total Plain counter.
# TYPE b_total counter
b_total 3
# HELP c_level A gauge.
# TYPE c_level gauge
c_level 1.25
# HELP d_seconds A histogram.
# TYPE d_seconds histogram
d_seconds_bucket{le="0.1"} 1
d_seconds_bucket{le="1"} 3
d_seconds_bucket{le="+Inf"} 4
d_seconds_sum 3.05
d_seconds_count 4
# HELP e_total Help with \\ and\nnewline.
# TYPE e_total counter
e_total{v="a\"b\\c\nd"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExpositionDeterministic checks repeated renders are byte-identical.
func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("x_total", "x", "k")
	for _, v := range []string{"c", "a", "b", "zz", "m"} {
		cv.With(v).Inc()
	}
	var first strings.Builder
	r.WritePrometheus(&first)
	for i := 0; i < 5; i++ {
		var again strings.Builder
		r.WritePrometheus(&again)
		if again.String() != first.String() {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, again.String(), first.String())
		}
	}
}

// TestRegistrationIdempotent verifies same-shape re-registration returns
// the same underlying child, and that Value sees updates from either.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "first")
	b := r.Counter("dup_total", "second help ignored")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Errorf("re-registered counter not shared: %d", got)
	}
	v, ok := r.Value("dup_total")
	if !ok || v != 2 {
		t.Errorf("Value(dup_total) = %v, %v; want 2, true", v, ok)
	}
}

// TestRegistrationConflictPanics verifies a kind or label mismatch on an
// existing name panics rather than silently forking the metric.
func TestRegistrationConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_total", "counter")
	for name, fn := range map[string]func(){
		"kind":   func() { r.Gauge("clash_total", "now a gauge") },
		"labels": func() { r.CounterVec("clash_total", "now labeled", "k") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestValueLookups covers labeled lookups, gauges, histograms and misses.
func TestValueLookups(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("lv_total", "x", "peer").With("w1").Add(7)
	r.Gauge("lg_level", "x").Set(-2.5)
	h := r.Histogram("lh_seconds", "x", []float64{1})
	h.Observe(0.5)
	h.Observe(3)

	if v, ok := r.Value("lv_total", "w1"); !ok || v != 7 {
		t.Errorf("labeled counter value = %v, %v", v, ok)
	}
	if v, ok := r.Value("lg_level"); !ok || v != -2.5 {
		t.Errorf("gauge value = %v, %v", v, ok)
	}
	if v, ok := r.Value("lh_seconds"); !ok || v != 2 {
		t.Errorf("histogram count = %v, %v", v, ok)
	}
	if _, ok := r.Value("missing_total"); ok {
		t.Error("missing family reported present")
	}
	if _, ok := r.Value("lv_total", "nobody"); ok {
		t.Error("missing child reported present")
	}
	if _, ok := r.Value("lv_total"); ok {
		t.Error("label arity mismatch reported present")
	}
}

// TestHandler checks method filtering and the exposition content type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "x").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("content type %q, want %q", ct, ContentType)
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST status %d, want 405", post.StatusCode)
	}
}

// TestConcurrentUpdatesAndScrapes hammers every metric type from many
// goroutines while scraping, so `go test -race` proves the atomics and
// the registry locking hold up, and the final totals must be exact.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "x")
	cv := r.CounterVec("ccv_total", "x", "k")
	g := r.Gauge("cg_level", "x")
	h := r.Histogram("ch_seconds", "x", DefBuckets)

	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				cv.With(lbl).Inc()
				g.Add(1)
				h.Observe(float64(i%10) / 10)
			}
		}(w)
	}
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		lbl := string(rune('a' + w))
		if v, ok := r.Value("ccv_total", lbl); !ok || v != perWorker {
			t.Errorf("ccv_total{k=%q} = %v, %v; want %d", lbl, v, ok, perWorker)
		}
	}
}

// TestHistogramBucketEdges pins the le (less-or-equal) boundary
// semantics: a value exactly on a bound lands in that bound's bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_seconds", "x", []float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	h.Observe(2.0001)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`edge_seconds_bucket{le="1"} 1`,
		`edge_seconds_bucket{le="2"} 2`,
		`edge_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
