package drom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdpolicy/internal/job"
)

func TestMaskBasics(t *testing.T) {
	m := NewMask(96)
	if m.Count() != 0 || m.Width() != 96 {
		t.Fatalf("fresh mask count=%d width=%d", m.Count(), m.Width())
	}
	m.Set(0)
	m.Set(95)
	if !m.Has(0) || !m.Has(95) || m.Has(50) {
		t.Fatal("set/has mismatch")
	}
	if m.Count() != 2 {
		t.Fatalf("count %d, want 2", m.Count())
	}
	if m.Has(-1) || m.Has(96) {
		t.Fatal("out-of-range Has should be false")
	}
}

func TestRangeMask(t *testing.T) {
	m := RangeMask(48, 24, 48)
	if m.Count() != 24 {
		t.Fatalf("count %d, want 24", m.Count())
	}
	if m.Has(23) || !m.Has(24) || !m.Has(47) {
		t.Fatal("range boundaries wrong")
	}
	if got := m.String(); got != "24-47" {
		t.Fatalf("string %q", got)
	}
	if got := NewMask(8).String(); got != "-" {
		t.Fatalf("empty mask string %q", got)
	}
	single := RangeMask(8, 3, 4)
	if got := single.String(); got != "3" {
		t.Fatalf("single-core string %q", got)
	}
}

func TestMaskOverlapsAndClone(t *testing.T) {
	a := RangeMask(48, 0, 24)
	b := RangeMask(48, 24, 48)
	if a.Overlaps(b) {
		t.Fatal("disjoint masks reported overlapping")
	}
	c := RangeMask(48, 20, 30)
	if !a.Overlaps(c) || !b.Overlaps(c) {
		t.Fatal("overlapping masks reported disjoint")
	}
	d := a.Clone()
	d.Set(30)
	if a.Has(30) {
		t.Fatal("clone shares storage with original")
	}
}

func TestMaskPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero width", func() { NewMask(0) })
	mustPanic("set out of range", func() { NewMask(8).Set(8) })
	mustPanic("bad range", func() { RangeMask(8, 5, 3) })
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(48, 0)
	owner := RangeMask(48, 0, 48)
	if err := r.Register(3, 1, owner); err != nil {
		t.Fatal(err)
	}
	// shrink owner to socket 0, register guest on socket 1
	if _, err := r.SetMask(3, 1, RangeMask(48, 0, 24)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(3, 2, RangeMask(48, 24, 48)); err != nil {
		t.Fatal(err)
	}
	ids := r.Procs(3)
	if len(ids) != 2 {
		t.Fatalf("procs %v", ids)
	}
	m, ok := r.GetMask(3, 1)
	if !ok || m.Count() != 24 {
		t.Fatalf("owner mask %v ok=%v", m, ok)
	}
	// guest ends; owner expands
	if err := r.Clean(3, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SetMask(3, 1, RangeMask(48, 0, 48)); err != nil {
		t.Fatal(err)
	}
	if err := r.Clean(3, 1); err != nil {
		t.Fatal(err)
	}
	if len(r.Procs(3)) != 0 {
		t.Fatal("node not empty after cleans")
	}
	s := r.Stats()
	if s.Registered != 2 || s.Cleaned != 2 || s.MaskSets != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestRegistryRejections(t *testing.T) {
	r := NewRegistry(48, 5)
	if r.Overhead() != 5 {
		t.Fatalf("overhead %d", r.Overhead())
	}
	full := RangeMask(48, 0, 48)
	if err := r.Register(0, 1, full); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(0, 1, full); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(0, 2, RangeMask(48, 40, 48)); err == nil {
		t.Fatal("overlapping registration accepted")
	}
	if err := r.Register(0, 2, NewMask(48)); err == nil {
		t.Fatal("empty mask accepted")
	}
	if err := r.Register(0, 2, RangeMask(96, 48, 96)); err == nil {
		t.Fatal("wrong-width mask accepted")
	}
	if _, err := r.SetMask(0, 9, full); err == nil {
		t.Fatal("mask change for unregistered job accepted")
	}
	if _, err := r.SetMask(0, 1, NewMask(48)); err == nil {
		t.Fatal("empty mask change accepted")
	}
	if err := r.Clean(0, 9); err == nil {
		t.Fatal("clean of unregistered job accepted")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSetMaskOverlapRejected(t *testing.T) {
	r := NewRegistry(48, 0)
	if err := r.Register(0, 1, RangeMask(48, 0, 24)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(0, 2, RangeMask(48, 24, 48)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SetMask(0, 1, RangeMask(48, 0, 30)); err == nil {
		t.Fatal("overlapping expansion accepted")
	}
	// the failed change must not have been applied
	m, _ := r.GetMask(0, 1)
	if m.Count() != 24 {
		t.Fatalf("mask changed after rejected SetMask: %v", m)
	}
}

// Property: Count equals the number of set bits for arbitrary range
// constructions, and disjoint ranges never overlap.
func TestPropertyRangeMasks(t *testing.T) {
	f := func(aLo, aHi, bLo, bHi uint8) bool {
		const n = 128
		al, ah := int(aLo)%n, int(aHi)%n
		if al > ah {
			al, ah = ah, al
		}
		bl, bh := int(bLo)%n, int(bHi)%n
		if bl > bh {
			bl, bh = bh, bl
		}
		a := RangeMask(n, al, ah)
		b := RangeMask(n, bl, bh)
		if a.Count() != ah-al || b.Count() != bh-bl {
			return false
		}
		wantOverlap := al < bh && bl < ah && ah > al && bh > bl
		return a.Overlaps(b) == wantOverlap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: random register/set/clean sequences keep node masks disjoint.
func TestPropertyRegistryInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := NewRegistry(16, 0)
	type proc struct {
		node int
		id   job.ID
	}
	var live []proc
	next := job.ID(1)
	for op := 0; op < 2000; op++ {
		switch rng.Intn(3) {
		case 0: // try to register a random range; errors are fine
			node := rng.Intn(4)
			lo := rng.Intn(16)
			hi := lo + 1 + rng.Intn(16-lo)
			if r.Register(node, next, RangeMask(16, lo, hi)) == nil {
				live = append(live, proc{node, next})
			}
			next++
		case 1: // try to move a live proc
			if len(live) == 0 {
				continue
			}
			p := live[rng.Intn(len(live))]
			lo := rng.Intn(16)
			hi := lo + 1 + rng.Intn(16-lo)
			_, _ = r.SetMask(p.node, p.id, RangeMask(16, lo, hi))
		case 2: // clean one
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			p := live[i]
			if err := r.Clean(p.node, p.id); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
	}
}
