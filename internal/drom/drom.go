// Package drom reproduces the DROM (Dynamic Resource Ownership
// Management) interface the paper layers SD-Policy on: a per-node
// registry of processes and their CPU masks, with get/set operations the
// node manager uses to shrink and expand running jobs between
// malleability points.
//
// DROM's measured reconfiguration cost is "negligible" (Section 2.1); the
// registry still exposes a configurable per-operation overhead so its
// effect can be studied, defaulting to zero.
package drom

import (
	"fmt"
	"math/bits"
	"strings"

	"sdpolicy/internal/job"
)

// Mask is a fixed-width CPU set over the cores of one node.
type Mask struct {
	bits []uint64
	n    int
}

// NewMask returns an empty mask over n cores.
func NewMask(n int) Mask {
	if n <= 0 {
		panic(fmt.Sprintf("drom: non-positive mask width %d", n))
	}
	return Mask{bits: make([]uint64, (n+63)/64), n: n}
}

// RangeMask returns a mask over n cores with cores [lo, hi) set.
func RangeMask(n, lo, hi int) Mask {
	m := NewMask(n)
	if lo < 0 || hi > n || lo > hi {
		panic(fmt.Sprintf("drom: core range [%d,%d) out of [0,%d)", lo, hi, n))
	}
	for c := lo; c < hi; c++ {
		m.Set(c)
	}
	return m
}

// Width returns the number of cores the mask covers.
func (m Mask) Width() int { return m.n }

// Set marks core c as owned.
func (m Mask) Set(c int) {
	if c < 0 || c >= m.n {
		panic(fmt.Sprintf("drom: core %d out of [0,%d)", c, m.n))
	}
	m.bits[c/64] |= 1 << (c % 64)
}

// Has reports whether core c is owned.
func (m Mask) Has(c int) bool {
	if c < 0 || c >= m.n {
		return false
	}
	return m.bits[c/64]&(1<<(c%64)) != 0
}

// Count returns the number of owned cores.
func (m Mask) Count() int {
	total := 0
	for _, w := range m.bits {
		total += bits.OnesCount64(w)
	}
	return total
}

// Overlaps reports whether the two masks share any core.
func (m Mask) Overlaps(o Mask) bool {
	for i := range m.bits {
		if i < len(o.bits) && m.bits[i]&o.bits[i] != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of the mask.
func (m Mask) Clone() Mask {
	c := Mask{bits: make([]uint64, len(m.bits)), n: m.n}
	copy(c.bits, m.bits)
	return c
}

// String renders the mask as core ranges, e.g. "0-23,32".
func (m Mask) String() string {
	var b strings.Builder
	first := true
	c := 0
	for c < m.n {
		if !m.Has(c) {
			c++
			continue
		}
		start := c
		for c < m.n && m.Has(c) {
			c++
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		if c-1 == start {
			fmt.Fprintf(&b, "%d", start)
		} else {
			fmt.Fprintf(&b, "%d-%d", start, c-1)
		}
	}
	if first {
		return "-"
	}
	return b.String()
}

// Stats counts DROM traffic so experiments can report reconfiguration
// activity (the shrink/expand operations of Section 3.3).
type Stats struct {
	Registered int64 // processes attached to the DROM space
	Cleaned    int64 // processes detached
	MaskSets   int64 // affinity changes on running processes
}

// Registry is the DROM space of a whole machine: per node, the set of
// registered processes and their disjoint CPU masks.
type Registry struct {
	coresPerNode int
	overhead     int64 // seconds charged per mask change
	nodes        map[int]map[job.ID]Mask
	stats        Stats
}

// NewRegistry returns an empty registry for nodes of the given width.
// overhead is the simulated cost in seconds of one mask change.
func NewRegistry(coresPerNode int, overhead int64) *Registry {
	if coresPerNode <= 0 {
		panic(fmt.Sprintf("drom: non-positive node width %d", coresPerNode))
	}
	if overhead < 0 {
		panic(fmt.Sprintf("drom: negative overhead %d", overhead))
	}
	return &Registry{
		coresPerNode: coresPerNode,
		overhead:     overhead,
		nodes:        make(map[int]map[job.ID]Mask),
	}
}

// Overhead returns the per-operation reconfiguration cost in seconds.
func (r *Registry) Overhead() int64 { return r.overhead }

// Stats returns a snapshot of the traffic counters.
func (r *Registry) Stats() Stats { return r.stats }

// Register attaches a process of the job to the node with the given mask.
// Masks of processes sharing a node must be disjoint.
func (r *Registry) Register(node int, id job.ID, m Mask) error {
	if m.Width() != r.coresPerNode {
		return fmt.Errorf("drom: mask width %d, node width %d", m.Width(), r.coresPerNode)
	}
	if m.Count() == 0 {
		return fmt.Errorf("drom: empty mask for job %d on node %d", id, node)
	}
	procs := r.nodes[node]
	if procs == nil {
		procs = make(map[job.ID]Mask)
		r.nodes[node] = procs
	}
	if _, dup := procs[id]; dup {
		return fmt.Errorf("drom: job %d already registered on node %d", id, node)
	}
	for other, om := range procs {
		if m.Overlaps(om) {
			return fmt.Errorf("drom: job %d mask %s overlaps job %d mask %s on node %d",
				id, m, other, om, node)
		}
	}
	procs[id] = m.Clone()
	r.stats.Registered++
	return nil
}

// Procs returns the jobs registered on the node, unordered.
func (r *Registry) Procs(node int) []job.ID {
	procs := r.nodes[node]
	out := make([]job.ID, 0, len(procs))
	for id := range procs {
		out = append(out, id)
	}
	return out
}

// GetMask returns the current mask of the job on the node.
func (r *Registry) GetMask(node int, id job.ID) (Mask, bool) {
	m, ok := r.nodes[node][id]
	if !ok {
		return Mask{}, false
	}
	return m.Clone(), true
}

// SetMask changes the affinity of a registered process — the shrink or
// expand operation applied at the job's next malleability point. It
// returns the simulated overhead to charge.
func (r *Registry) SetMask(node int, id job.ID, m Mask) (int64, error) {
	procs := r.nodes[node]
	if _, ok := procs[id]; !ok {
		return 0, fmt.Errorf("drom: job %d not registered on node %d", id, node)
	}
	if m.Width() != r.coresPerNode {
		return 0, fmt.Errorf("drom: mask width %d, node width %d", m.Width(), r.coresPerNode)
	}
	if m.Count() == 0 {
		return 0, fmt.Errorf("drom: empty mask for job %d on node %d", id, node)
	}
	for other, om := range procs {
		if other != id && m.Overlaps(om) {
			return 0, fmt.Errorf("drom: job %d mask %s overlaps job %d mask %s on node %d",
				id, m, other, om, node)
		}
	}
	procs[id] = m.Clone()
	r.stats.MaskSets++
	return r.overhead, nil
}

// Clean detaches the job's process from the node (end of job step).
func (r *Registry) Clean(node int, id job.ID) error {
	procs := r.nodes[node]
	if _, ok := procs[id]; !ok {
		return fmt.Errorf("drom: job %d not registered on node %d", id, node)
	}
	delete(procs, id)
	if len(procs) == 0 {
		delete(r.nodes, node)
	}
	r.stats.Cleaned++
	return nil
}

// CheckInvariants verifies that every node's masks are pairwise disjoint
// and non-empty. Tests call it after random operation sequences.
func (r *Registry) CheckInvariants() error {
	for node, procs := range r.nodes {
		ids := make([]job.ID, 0, len(procs))
		for id := range procs {
			ids = append(ids, id)
		}
		for i, a := range ids {
			if procs[a].Count() == 0 {
				return fmt.Errorf("node %d: empty mask for job %d", node, a)
			}
			for _, b := range ids[i+1:] {
				if procs[a].Overlaps(procs[b]) {
					return fmt.Errorf("node %d: jobs %d and %d overlap", node, a, b)
				}
			}
		}
	}
	return nil
}
