package serve

import (
	"io"
	"log/slog"
	"os"
	"testing"
)

// TestMain discards the package's structured campaign logs: `go test`
// merges the test binary's stderr into its stdout, so without this the
// slog lines from every in-process campaign would interleave with
// benchmark output (and CI's bench.out parser reads that stream).
// SDPOLICY_TEST_LOGS=1 restores them when debugging a test.
func TestMain(m *testing.M) {
	if os.Getenv("SDPOLICY_TEST_LOGS") == "" {
		slog.SetDefault(slog.New(slog.NewTextHandler(io.Discard, nil)))
	}
	os.Exit(m.Run())
}
