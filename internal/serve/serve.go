// Package serve implements the sdserve HTTP API: a thin, cache-backed
// front-end over the sdpolicy campaign engine. Handlers are plain
// net/http so cmd/sdserve stays a wiring-only main and tests can drive
// the full API through httptest.
//
// Endpoints:
//
//	POST /v1/simulate  one simulation point  -> the full Result
//	POST /v1/sweep     Figures 1-3 campaign  -> normalised SweepRows
//	POST /v1/campaign  arbitrary point list  -> streamed per-point
//	                   results (SSE or NDJSON) + terminal event
//	GET  /healthz      liveness + in-flight, cache and pool statistics
//
// Every simulation goes through one shared Engine, so concurrent
// requests for the same canonical point coalesce into a single run and
// repeated requests are served from the result cache. A semaphore
// bounds the number of requests simulating at once; excess requests
// queue until a slot frees or the client gives up while still waiting.
// A client disconnect cancels the request's campaign — including the
// simulation point currently in flight, which aborts at its next
// event-loop checkpoint — so the slot frees within milliseconds rather
// than after the point completes. BeginShutdown ends open streams with
// a terminal shutdown event instead of cutting the connection.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"sdpolicy"
)

// Server handles the sdserve API on top of a shared campaign engine.
type Server struct {
	engine *sdpolicy.Engine
	// slots bounds in-flight simulating requests (not connections):
	// acquire to simulate, release when done.
	slots chan struct{}
	// campaigns counts /v1/campaign requests currently streaming,
	// reported by /healthz.
	campaigns atomic.Int64
	// shutdown is closed by BeginShutdown so streaming handlers can
	// finish their response with a terminal event.
	shutdown     chan struct{}
	shutdownOnce sync.Once
	// coord, when non-nil, makes /v1/campaign fan out to a fleet of
	// worker sdserve instances instead of the local engine.
	coord *coordinator
}

// New builds a Server over the engine, allowing at most maxInflight
// requests to simulate concurrently (<= 0 means 16).
func New(engine *sdpolicy.Engine, maxInflight int) *Server {
	if maxInflight <= 0 {
		maxInflight = 16
	}
	return &Server{
		engine:   engine,
		slots:    make(chan struct{}, maxInflight),
		shutdown: make(chan struct{}),
	}
}

// EnableCoordinator switches /v1/campaign to coordinator mode: rather
// than simulating locally, campaigns are planned into one shard per
// worker URL, fanned out over the streaming wire form, and re-merged —
// with a failed worker's unresolved points requeued to the survivors,
// so the merged stream is identical to a single-process run as long as
// one worker survives. The other endpoints (/v1/simulate, /v1/sweep)
// keep using the local engine. client may be nil for a default
// timeout-free client (campaign cancellation flows through request
// contexts, not deadlines). Call before serving requests.
func (s *Server) EnableCoordinator(workers []string, client *http.Client) error {
	coord, err := newCoordinator(workers, client)
	if err != nil {
		return err
	}
	s.coord = coord
	return nil
}

// Handler returns the routed API handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/simulate", s.handleSimulate)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/campaign", s.handleCampaign)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// BeginShutdown tells streaming handlers the server is going away:
// each open /v1/campaign stream cancels its campaign, writes a
// terminal shutdown event and completes its response, so a subsequent
// http.Server.Shutdown drains promptly instead of hanging on
// long-lived streams until the grace period cuts them. Safe to call
// more than once.
func (s *Server) BeginShutdown() {
	s.shutdownOnce.Do(func() { close(s.shutdown) })
}

// SimulateRequest is the /v1/simulate body: one campaign point in the
// shared wire form. Scale and Seed default to 1; Options defaults to
// the static baseline under the ideal model; MalleableFraction, when
// present, re-flags that fraction of jobs malleable before simulating.
type SimulateRequest = sdpolicy.PointSpec

// SweepRequest is the /v1/sweep body: the Figures 1-3 campaign over the
// given workloads. Scale and Seed default to 1.
type SweepRequest struct {
	Workloads []string `json:"workloads"`
	Scale     float64  `json:"scale"`
	Seed      uint64   `json:"seed"`
}

// SweepResponse is the /v1/sweep reply.
type SweepResponse struct {
	Rows []sdpolicy.SweepRow `json:"rows"`
}

// Health is the /healthz reply.
type Health struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
	// InFlight is how many requests currently hold a simulation slot;
	// CampaignsInFlight how many of them are streaming /v1/campaign
	// responses.
	InFlight          int    `json:"in_flight"`
	CampaignsInFlight int64  `json:"campaigns_in_flight"`
	CacheHits         uint64 `json:"cache_hits"`
	CacheMisses       uint64 `json:"cache_misses"`
	// Peers lists the configured worker base URLs when this instance
	// runs as a campaign coordinator; empty otherwise.
	Peers []string `json:"peers,omitempty"`
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.acquire(w, r.Context()) {
		return
	}
	defer s.release()
	res, err := s.engine.SimulatePoint(r.Context(), req.Point())
	if err != nil {
		writeError(w, statusFor(r.Context(), err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Workloads) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing workloads"))
		return
	}
	applyDefaults(&req.Scale, &req.Seed)
	if !s.acquire(w, r.Context()) {
		return
	}
	defer s.release()
	rows, err := s.engine.SweepMaxSD(r.Context(), req.Workloads, req.Scale, req.Seed)
	if err != nil {
		writeError(w, statusFor(r.Context(), err), err)
		return
	}
	writeJSON(w, http.StatusOK, SweepResponse{Rows: rows})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	hits, misses := s.engine.CacheStats()
	h := Health{
		Status:            "ok",
		Workers:           s.engine.Workers(),
		InFlight:          len(s.slots),
		CampaignsInFlight: s.campaigns.Load(),
		CacheHits:         hits,
		CacheMisses:       misses,
	}
	if s.coord != nil {
		h.Peers = s.coord.urls
	}
	writeJSON(w, http.StatusOK, h)
}

// decode enforces POST + JSON and fills dst, replying on failure.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// acquire takes a simulation slot, waiting until one frees, the client
// disconnects, or the server begins shutdown (a request still queueing
// then has not produced any output, so a plain 503 — rather than a
// streamed terminal event — is the right refusal and lets Shutdown
// drain promptly). It replies and returns false on failure.
func (s *Server) acquire(w http.ResponseWriter, ctx context.Context) bool {
	select {
	case s.slots <- struct{}{}:
		return true
	case <-ctx.Done():
		writeError(w, http.StatusServiceUnavailable, errors.New("cancelled while waiting for a simulation slot"))
		return false
	case <-s.shutdown:
		writeError(w, http.StatusServiceUnavailable, errors.New("server shutting down"))
		return false
	}
}

func (s *Server) release() { <-s.slots }

// statusFor maps a campaign error to an HTTP status: client
// cancellation to 503, invalid inputs (unknown workload, policy,
// model, out-of-range parameters — anything tagged ErrBadInput) to
// 400.
func statusFor(ctx context.Context, err error) int {
	if ctx.Err() != nil {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, sdpolicy.ErrBadInput) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func applyDefaults(scale *float64, seed *uint64) {
	if *scale == 0 {
		*scale = 1
	}
	if *seed == 0 {
		*seed = 1
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}
