// Package serve implements the sdserve HTTP API: a thin, cache-backed
// front-end over the sdpolicy campaign engine. Handlers are plain
// net/http so cmd/sdserve stays a wiring-only main and tests can drive
// the full API through httptest.
//
// Endpoints:
//
//	POST /v1/simulate  one simulation point  -> the full Result
//	POST /v1/sweep     deprecated alias of the sweep_maxsd experiment:
//	                   Figures 1-3 campaign -> normalised SweepRows,
//	                   byte-compatible, with Deprecation + Link headers
//	GET  /v1/experiments          list the experiment registry with
//	                              parameter descriptions
//	POST /v1/experiments          create an experiment resource (body
//	                              names the experiment + params) -> 201 +
//	                              Location; backed by a journaled campaign
//	GET  /v1/experiments/{id}     attach to the experiment's reduced
//	                              stream: incremental rows + terminal
//	                              summary (SSE or NDJSON, ?from= cursor)
//	DELETE /v1/experiments/{id}   cancel the experiment's campaign
//	POST /v1/campaigns            create a campaign resource -> 201 +
//	                              Location; runs detached from any client
//	GET  /v1/campaigns/{id}       attach to (or resume, ?from=<seq>) the
//	                              campaign's stream (SSE or NDJSON)
//	GET  /v1/campaigns/{id}/status  compact JSON progress
//	DELETE /v1/campaigns/{id}     cancel the campaign
//	POST /v1/campaign  deprecated request-scoped alias: streamed
//	                   per-point results + terminal event, byte-
//	                   compatible with pre-resource clients;
//	                   ?reports=1 adds per-job report frames
//	POST /v1/workers/register    announce a worker to a coordinator's
//	                             fleet / renew its heartbeat lease
//	POST /v1/workers/deregister  remove a registered worker
//	GET  /healthz      liveness + in-flight, cache and pool statistics;
//	                   on a coordinator, per-peer fleet state too
//
// Error replies on every /v1/* endpoint share the JSON envelope
// {"error":{"code","message","campaign_id"}} (see errors.go).
// With EnableJournal the campaign resources are write-ahead journaled
// (resumable across restarts and coordinator failover — campaigns.go);
// until Activate is called such an instance is a standby and refuses
// campaign work with 503.
//
// Every simulation goes through one shared Engine, so concurrent
// requests for the same canonical point coalesce into a single run and
// repeated requests are served from the result cache. A semaphore
// bounds the number of requests simulating at once; excess requests
// queue until a slot frees or the client gives up while still waiting.
// A client disconnect cancels the request's campaign — including the
// simulation point currently in flight, which aborts at its next
// event-loop checkpoint — so the slot frees within milliseconds rather
// than after the point completes. BeginShutdown ends open streams with
// a terminal shutdown event instead of cutting the connection.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sdpolicy"
	"sdpolicy/internal/journal"
	"sdpolicy/internal/telemetry"
)

// Server handles the sdserve API on top of a shared campaign engine.
type Server struct {
	engine *sdpolicy.Engine
	// slots bounds in-flight simulating requests (not connections):
	// acquire to simulate, release when done.
	slots chan struct{}
	// campaigns counts /v1/campaign requests currently streaming,
	// reported by /healthz.
	campaigns atomic.Int64
	// shutdown is closed by BeginShutdown so streaming handlers can
	// finish their response with a terminal event.
	shutdown     chan struct{}
	shutdownOnce sync.Once
	// coord, when non-nil, makes /v1/campaign fan out to a fleet of
	// worker sdserve instances instead of the local engine.
	coord *coordinator
	// resources is the campaign resource registry behind /v1/campaigns;
	// journal, when non-nil, makes those resources durable. active
	// gates the whole campaign plane: true from construction unless
	// EnableJournal demotes the instance to standby, after which
	// Activate (holding the coordinator lease) re-opens it.
	resources *campaignRegistry
	journal   *journal.Journal
	active    atomic.Bool
}

// New builds a Server over the engine, allowing at most maxInflight
// requests to simulate concurrently (<= 0 means 16).
func New(engine *sdpolicy.Engine, maxInflight int) *Server {
	if maxInflight <= 0 {
		maxInflight = 16
	}
	s := &Server{
		engine:    engine,
		slots:     make(chan struct{}, maxInflight),
		shutdown:  make(chan struct{}),
		resources: newCampaignRegistry(),
	}
	s.active.Store(true)
	return s
}

// CoordinatorConfig shapes a coordinator's fleet behaviour; the zero
// value of every field means its documented default.
type CoordinatorConfig struct {
	// Workers are the statically configured peer base URLs (-peers).
	// May be empty: an elastic fleet can be populated entirely by
	// dynamic registration (/v1/workers/register, sdserve -join).
	Workers []string
	// Client performs fan-out and probe requests; nil means a default
	// timeout-free client (campaign cancellation flows through request
	// contexts, probes bound themselves).
	Client *http.Client
	// ShardsPerWorker is the planning granularity: the campaign is cut
	// into ShardsPerWorker shards per fleet member and handed out
	// work-stealing style. <= 0 means sdpolicy.DefaultShardsPerWorker.
	ShardsPerWorker int
	// ProbeInterval is the background health prober's tick (default
	// 1s); ProbeTimeout bounds each /healthz probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// LeaseTTL is the default heartbeat lease granted to registering
	// workers (default 30s); a worker that stops renewing is dropped
	// once its lease expires.
	LeaseTTL time.Duration
	// WarmCache negotiates per-job report frames from the workers and
	// primes the coordinator's local engine cache with every proxied
	// result, so Engine.SaveCache (sdserve -cache-dir) spills a file
	// that warms later local runs — fig4-9 style analyses included.
	WarmCache bool
}

// EnableCoordinator switches /v1/campaign to coordinator mode: rather
// than simulating locally, campaigns are planned into fine-grained
// shards (ShardsPerWorker per fleet member), handed out work-stealing
// style to the worker fleet over the streaming wire form, and re-merged
// — with a failed worker's unresolved points requeued and the worker
// itself health-probed back into rotation, so a restart is absorbed
// instead of permanent. It also enables the dynamic registration API
// (/v1/workers/register, /v1/workers/deregister) and starts the
// background prober, which runs until BeginShutdown. The other
// endpoints (/v1/simulate, /v1/sweep) keep using the local engine.
// Call before serving requests.
func (s *Server) EnableCoordinator(cfg CoordinatorConfig) error {
	coord, err := newCoordinator(cfg, s.engine)
	if err != nil {
		return err
	}
	s.coord = coord
	if s.journal != nil {
		coord.peers.setPersist(s.persistPeers)
	}
	go coord.probeLoop(s.shutdown)
	return nil
}

// Handler returns the routed API handler. Every route is wrapped in
// the request-count/latency middleware; /metrics exposes the
// process-wide telemetry registry in the Prometheus text format.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/simulate", instrument("/v1/simulate", s.handleSimulate))
	mux.HandleFunc("/v1/sweep", instrument("/v1/sweep", s.handleSweep))
	mux.HandleFunc("/v1/campaign", instrument("/v1/campaign", s.handleCampaign))
	mux.HandleFunc("/v1/experiments", instrument("/v1/experiments", s.handleExperiments))
	mux.HandleFunc("/v1/experiments/{id}", instrument("/v1/experiments/{id}", s.handleExperimentByID))
	mux.HandleFunc("/v1/workloads", instrument("/v1/workloads", s.handleWorkloads))
	mux.HandleFunc("/v1/workloads/{ref}", instrument("/v1/workloads/{ref}", s.handleWorkloadByRef))
	mux.HandleFunc("/v1/campaigns", instrument("/v1/campaigns", s.handleCampaigns))
	mux.HandleFunc("/v1/campaigns/{id}", instrument("/v1/campaigns/{id}", s.handleCampaignByID))
	mux.HandleFunc("/v1/campaigns/{id}/status", instrument("/v1/campaigns/{id}/status", s.handleCampaignStatus))
	mux.HandleFunc("/v1/workers/register", instrument("/v1/workers/register", s.handleRegister))
	mux.HandleFunc("/v1/workers/deregister", instrument("/v1/workers/deregister", s.handleDeregister))
	mux.HandleFunc("/healthz", instrument("/healthz", s.handleHealth))
	mux.Handle("/metrics", telemetry.Default.Handler())
	return mux
}

// BeginShutdown tells streaming handlers the server is going away:
// each open /v1/campaign stream cancels its campaign, writes a
// terminal shutdown event and completes its response, so a subsequent
// http.Server.Shutdown drains promptly instead of hanging on
// long-lived streams until the grace period cuts them. Safe to call
// more than once.
func (s *Server) BeginShutdown() {
	s.shutdownOnce.Do(func() { close(s.shutdown) })
}

// SimulateRequest is the /v1/simulate body: one campaign point in the
// shared wire form. Scale and Seed default to 1; Options defaults to
// the static baseline under the ideal model; MalleableFraction, when
// present, re-flags that fraction of jobs malleable before simulating.
type SimulateRequest = sdpolicy.PointSpec

// SweepRequest is the /v1/sweep body: the Figures 1-3 campaign over the
// given workloads. Scale and Seed default to 1. WorkloadRefs is the
// unified addressing shape: each ref contributes its workload name,
// and a ref-level scale/seed is adopted when the request level leaves
// it defaulted (the sweep is a single campaign, so refs cannot
// disagree about either). Sweep refs take no derivations.
type SweepRequest struct {
	Workloads    []string               `json:"workloads,omitempty"`
	WorkloadRefs []sdpolicy.WorkloadRef `json:"workload_refs,omitempty"`
	Scale        float64                `json:"scale"`
	Seed         uint64                 `json:"seed"`
}

// resolveSweepWorkloads folds WorkloadRefs into the legacy
// workloads/scale/seed triple, erroring on shapes the single-campaign
// sweep cannot express.
func (req *SweepRequest) resolveSweepWorkloads() error {
	for i, ref := range req.WorkloadRefs {
		if err := ref.Validate(); err != nil {
			return fmt.Errorf("workload_refs[%d]: %w", i, err)
		}
		if len(ref.Derivations) != 0 {
			return fmt.Errorf("workload_refs[%d]: the sweep takes no derivations: %w", i, sdpolicy.ErrBadInput)
		}
		if ref.Scale != 0 {
			if req.Scale != 0 && req.Scale != ref.Scale {
				return fmt.Errorf("workload_refs[%d]: scale %v conflicts with the sweep scale %v: %w",
					i, ref.Scale, req.Scale, sdpolicy.ErrBadInput)
			}
			req.Scale = ref.Scale
		}
		if ref.Seed != 0 {
			if req.Seed != 0 && req.Seed != ref.Seed {
				return fmt.Errorf("workload_refs[%d]: seed %d conflicts with the sweep seed %d: %w",
					i, ref.Seed, req.Seed, sdpolicy.ErrBadInput)
			}
			req.Seed = ref.Seed
		}
		req.Workloads = append(req.Workloads, ref.WorkloadName())
	}
	req.WorkloadRefs = nil
	return nil
}

// SweepResponse is the /v1/sweep reply.
type SweepResponse struct {
	Rows []sdpolicy.SweepRow `json:"rows"`
}

// Health is the /healthz reply.
type Health struct {
	Status string `json:"status"`
	// Version, Go, Built and Revision identify the running binary (see
	// BuildInfo), so a fleet rollout is diagnosable from /healthz alone.
	Version  string `json:"version"`
	Go       string `json:"go"`
	Built    string `json:"built,omitempty"`
	Revision string `json:"revision,omitempty"`
	// Role reports failover state on journal-backed instances: "active"
	// once the coordinator lease is held and the campaign plane serves,
	// "standby" while waiting to adopt it. Absent without -journal-dir.
	Role    string `json:"role,omitempty"`
	Workers int    `json:"workers"`
	// InFlight is how many requests currently hold a simulation slot;
	// CampaignsInFlight how many of them are streaming /v1/campaign
	// responses.
	InFlight          int    `json:"in_flight"`
	CampaignsInFlight int64  `json:"campaigns_in_flight"`
	CacheHits         uint64 `json:"cache_hits"`
	CacheMisses       uint64 `json:"cache_misses"`
	// Peers reports per-peer fleet state — static and registered
	// workers alike, with alive|dead|probing state, consecutive failure
	// counts, last error, and remaining heartbeat lease — when this
	// instance runs as a campaign coordinator; empty otherwise.
	Peers []PeerStatus `json:"peers,omitempty"`
}

// apiError is the deprecated /v1/campaign alias's in-band terminal
// error frame ({"error":"..."}), kept byte-compatible; HTTP-level
// errors use the ErrorEnvelope in errors.go instead.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	markLegacyWorkloadShape(w, req)
	if !s.acquire(w, r.Context()) {
		return
	}
	defer s.release()
	res, err := s.engine.SimulatePoint(r.Context(), req.Point())
	if err != nil {
		writeError(w, statusFor(r.Context(), err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	// Frozen as a byte-compatible alias of the sweep_maxsd experiment;
	// new clients should create the experiment resource instead.
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/experiments>; rel="successor-version"`)
	var req SweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := req.resolveSweepWorkloads(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Workloads) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing workloads"))
		return
	}
	applyDefaults(&req.Scale, &req.Seed)
	if !s.acquire(w, r.Context()) {
		return
	}
	defer s.release()
	rows, err := s.engine.SweepMaxSD(r.Context(), req.Workloads, req.Scale, req.Seed)
	if err != nil {
		writeError(w, statusFor(r.Context(), err), err)
		return
	}
	writeJSON(w, http.StatusOK, SweepResponse{Rows: rows})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet, "", errors.New("use GET"))
		return
	}
	hits, misses := s.engine.CacheStats()
	build := BuildInfo()
	h := Health{
		Status:            "ok",
		Version:           build.Version,
		Go:                build.Go,
		Built:             build.Built,
		Revision:          build.Revision,
		Workers:           s.engine.Workers(),
		InFlight:          len(s.slots),
		CampaignsInFlight: s.campaigns.Load(),
		CacheHits:         hits,
		CacheMisses:       misses,
	}
	if s.journal != nil {
		if s.active.Load() {
			h.Role = "active"
		} else {
			h.Role = "standby"
		}
	}
	if s.coord != nil {
		h.Peers = s.coord.peers.snapshot()
	}
	writeJSON(w, http.StatusOK, h)
}

// decode enforces POST + JSON and fills dst, replying on failure. A
// missing Content-Type is tolerated (historical clients omit it); a
// present one must name JSON.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeMethodNotAllowed(w, http.MethodPost, "", errors.New("use POST"))
		return false
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			writeError(w, http.StatusUnsupportedMediaType,
				fmt.Errorf("unsupported Content-Type %q: want application/json", ct))
			return false
		}
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// acquire takes a simulation slot, waiting until one frees, the client
// disconnects, or the server begins shutdown (a request still queueing
// then has not produced any output, so a plain 503 — rather than a
// streamed terminal event — is the right refusal and lets Shutdown
// drain promptly). It replies and returns false on failure.
func (s *Server) acquire(w http.ResponseWriter, ctx context.Context) bool {
	select {
	case s.slots <- struct{}{}:
		return true
	case <-ctx.Done():
		writeError(w, http.StatusServiceUnavailable, errors.New("cancelled while waiting for a simulation slot"))
		return false
	case <-s.shutdown:
		writeError(w, http.StatusServiceUnavailable, errors.New("server shutting down"))
		return false
	}
}

func (s *Server) release() { <-s.slots }

// statusFor maps a campaign error to an HTTP status: client
// cancellation to 503, invalid inputs (unknown workload, policy,
// model, out-of-range parameters — anything tagged ErrBadInput) to
// 400.
func statusFor(ctx context.Context, err error) int {
	if ctx.Err() != nil {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, sdpolicy.ErrBadInput) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func applyDefaults(scale *float64, seed *uint64) {
	if *scale == 0 {
		*scale = 1
	}
	if *seed == 0 {
		*seed = 1
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
