package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"sdpolicy"
)

// This file is the client side of the /v1/campaign wire form — the one
// place the request shape and stream events are defined for consumers.
// Two callers share it: the coordinator's per-shard fan-out (which adds
// worker-fault classification and partial-shard tracking on top) and
// sdexp -server via RunRemoteCampaign.

// postCampaign marshals points in the shared PointSpec wire form and
// opens an NDJSON /v1/campaign stream against base (no trailing
// slash). With reports, the ?reports=1 query param negotiates per-job
// report frames: a worker that understands it follows each result line
// with a report line, and one that doesn't simply ignores the param —
// old and new fleet members interoperate either way. A non-empty
// campaignID rides the X-Campaign-ID header so the worker logs the
// same campaign ID the coordinator does; an old worker ignores the
// header. The caller owns closing the response body and interpreting
// non-200 statuses.
func postCampaign(ctx context.Context, hc *http.Client, base string, points []sdpolicy.Point, reports bool, campaignID string) (*http.Response, error) {
	body, err := json.Marshal(struct {
		Points []sdpolicy.Point `json:"points"`
		Format string           `json:"format"`
	}{Points: points, Format: "ndjson"})
	if err != nil {
		return nil, err
	}
	url := base + "/v1/campaign"
	if reports {
		url += "?reports=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if campaignID != "" {
		req.Header.Set("X-Campaign-ID", campaignID)
	}
	return hc.Do(req)
}

// workerEvent decodes any line of a /v1/campaign NDJSON stream: result
// lines carry Index/Result, negotiated report lines carry
// ReportFor/Report, the terminal line carries Done, Shutdown or Error.
// The echoed point and done-count fields are deliberately not decoded —
// no consumer reads them.
type workerEvent struct {
	Index     *int             `json:"index"`
	Result    *sdpolicy.Result `json:"result"`
	ReportFor *int             `json:"report_for"`
	Report    json.RawMessage  `json:"report"`
	Done      *bool            `json:"done"`
	Shutdown  *bool            `json:"shutdown"`
	Error     *string          `json:"error"`
	// Trace marks a ?trace=1 summary frame. Consumers here never ask
	// for one, but decoding it keeps the loops tolerant of a server
	// that sends it anyway instead of killing the worker for it.
	Trace *bool `json:"trace"`
}

// reportFrame is the negotiated per-job-report stream line (NDJSON
// line / SSE event "report"): the full report for the result already
// streamed at index ReportFor. Only emitted when the request carried
// ?reports=1, so clients that never ask never see it.
type reportFrame struct {
	ReportFor int             `json:"report_for"`
	Report    json.RawMessage `json:"report"`
}

// eventKind classifies a stream line; the discrimination rules live
// here once so the decode loops (RunRemoteCampaign and the
// coordinator's fan-out) cannot drift apart.
type eventKind int

const (
	evResult eventKind = iota
	evReport
	evTrace
	evDone
	evShutdown
	evError
	evUnknown
)

func (ev workerEvent) kind() eventKind {
	switch {
	case ev.Index != nil:
		return evResult
	case ev.ReportFor != nil:
		return evReport
	case ev.Trace != nil && *ev.Trace:
		return evTrace
	case ev.Done != nil && *ev.Done:
		return evDone
	case ev.Shutdown != nil && *ev.Shutdown:
		return evShutdown
	case ev.Error != nil:
		return evError
	default:
		return evUnknown
	}
}

// readError summarises a non-200 campaign response.
func readError(base string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("%s: status %d: %s", base, resp.StatusCode, bytes.TrimSpace(msg))
}

// RunRemoteCampaign executes points on a remote sdserve instance
// (worker or coordinator) at base URL, calling emit for each stream
// delivery in completion order: result deliveries carry a non-nil res
// for points[index], and — when reports is true, negotiating the
// per-job-report frames — report deliveries follow with a nil res and
// the report encoding for an index already delivered (feed it to
// Result.SetReportJSON / Engine.Prime to warm a local cache). Any
// failure — transport, non-200 status, in-band error or shutdown
// terminal, emit's own error — aborts the campaign. It backs sdexp
// -server.
func RunRemoteCampaign(ctx context.Context, client *http.Client, base string, points []sdpolicy.Point, reports bool, emit func(index int, res *sdpolicy.Result, report json.RawMessage) error) error {
	if client == nil {
		client = http.DefaultClient
	}
	base = strings.TrimRight(base, "/")
	resp, err := postCampaign(ctx, client, base, points, reports, "")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readError(base, resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev workerEvent
		if err := dec.Decode(&ev); err != nil {
			return fmt.Errorf("%s: stream ended early: %w", base, err)
		}
		switch ev.kind() {
		case evResult:
			if *ev.Index < 0 || *ev.Index >= len(points) || ev.Result == nil {
				return fmt.Errorf("%s: malformed result line (index %v)", base, *ev.Index)
			}
			if err := emit(*ev.Index, ev.Result, nil); err != nil {
				return err
			}
		case evReport:
			// Best-effort frames: ignore malformed ones rather than
			// aborting a campaign whose results are fine.
			if *ev.ReportFor < 0 || *ev.ReportFor >= len(points) || len(ev.Report) == 0 {
				continue
			}
			if err := emit(*ev.ReportFor, nil, ev.Report); err != nil {
				return err
			}
		case evTrace:
			// Unrequested trace summary: nothing to merge, skip it.
		case evDone:
			return nil
		case evShutdown:
			return fmt.Errorf("%s: server shut down mid-campaign", base)
		case evError:
			return fmt.Errorf("%s: %s", base, *ev.Error)
		default:
			return fmt.Errorf("%s: unrecognised stream line", base)
		}
	}
}
