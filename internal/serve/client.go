package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"sdpolicy"
)

// This file is the client side of the /v1/campaign wire form — the one
// place the request shape and stream events are defined for consumers.
// Two callers share it: the coordinator's per-shard fan-out (which adds
// worker-fault classification and partial-shard tracking on top) and
// sdexp -server via RunRemoteCampaign.

// postCampaign marshals points in the shared PointSpec wire form and
// opens an NDJSON /v1/campaign stream against base (no trailing
// slash). With reports, the ?reports=1 query param negotiates per-job
// report frames: a worker that understands it follows each result line
// with a report line, and one that doesn't simply ignores the param —
// old and new fleet members interoperate either way. A non-empty
// campaignID rides the X-Campaign-ID header so the worker logs the
// same campaign ID the coordinator does; an old worker ignores the
// header. The caller owns closing the response body and interpreting
// non-200 statuses.
func postCampaign(ctx context.Context, hc *http.Client, base string, points []sdpolicy.Point, reports bool, campaignID string) (*http.Response, error) {
	body, err := json.Marshal(struct {
		Points []sdpolicy.Point `json:"points"`
		Format string           `json:"format"`
	}{Points: points, Format: "ndjson"})
	if err != nil {
		return nil, err
	}
	url := base + "/v1/campaign"
	if reports {
		url += "?reports=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if campaignID != "" {
		req.Header.Set("X-Campaign-ID", campaignID)
	}
	return hc.Do(req)
}

// workerEvent decodes any line of a /v1/campaign NDJSON stream: result
// lines carry Index/Result, negotiated report lines carry
// ReportFor/Report, the terminal line carries Done, Shutdown or Error.
// The echoed point and done-count fields are deliberately not decoded —
// no consumer reads them.
type workerEvent struct {
	Index     *int             `json:"index"`
	Result    *sdpolicy.Result `json:"result"`
	ReportFor *int             `json:"report_for"`
	Report    json.RawMessage  `json:"report"`
	Done      *bool            `json:"done"`
	Shutdown  *bool            `json:"shutdown"`
	Error     *string          `json:"error"`
	// Trace marks a ?trace=1 summary frame. Consumers here never ask
	// for one, but decoding it keeps the loops tolerant of a server
	// that sends it anyway instead of killing the worker for it.
	Trace *bool `json:"trace"`
}

// reportFrame is the negotiated per-job-report stream line (NDJSON
// line / SSE event "report"): the full report for the result already
// streamed at index ReportFor. Only emitted when the request carried
// ?reports=1, so clients that never ask never see it.
type reportFrame struct {
	ReportFor int             `json:"report_for"`
	Report    json.RawMessage `json:"report"`
}

// eventKind classifies a stream line; the discrimination rules live
// here once so the decode loops (RunRemoteCampaign and the
// coordinator's fan-out) cannot drift apart.
type eventKind int

const (
	evResult eventKind = iota
	evReport
	evTrace
	evDone
	evShutdown
	evError
	evUnknown
)

func (ev workerEvent) kind() eventKind {
	switch {
	case ev.Index != nil:
		return evResult
	case ev.ReportFor != nil:
		return evReport
	case ev.Trace != nil && *ev.Trace:
		return evTrace
	case ev.Done != nil && *ev.Done:
		return evDone
	case ev.Shutdown != nil && *ev.Shutdown:
		return evShutdown
	case ev.Error != nil:
		return evError
	default:
		return evUnknown
	}
}

// readError summarises a non-200 campaign response.
func readError(base string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("%s: status %d: %s", base, resp.StatusCode, bytes.TrimSpace(msg))
}

// streamFrame decodes any line of a /v1/campaigns/{id} NDJSON stream.
// Unlike the alias's workerEvent, every campaign frame carries a
// monotonic Seq — the reattach cursor — and the terminal error is the
// structured ErrorDetail, not a bare string.
type streamFrame struct {
	Seq       uint64           `json:"seq"`
	Index     *int             `json:"index"`
	Result    *sdpolicy.Result `json:"result"`
	ReportFor *int             `json:"report_for"`
	Report    json.RawMessage  `json:"report"`
	Done      *bool            `json:"done"`
	Cancelled *bool            `json:"cancelled"`
	Shutdown  *bool            `json:"shutdown"`
	Error     *ErrorDetail     `json:"error"`
}

// durable-campaign client retry tuning: transient failures (connection
// refused, 503 from a standby, a mid-stream disconnect) rotate to the
// next base and back off exponentially; any successfully decoded frame
// resets the clock. The cap bounds a total outage to roughly a minute.
const (
	durableBackoffBase = 100 * time.Millisecond
	durableBackoffMax  = 2 * time.Second
	durableMaxFailures = 30
)

// RunDurableCampaign executes points as a /v1/campaigns resource
// against a set of equivalent server bases (the active coordinator and
// its failover standbys), calling emit exactly like RunRemoteCampaign:
// result deliveries in completion order, then — with reports — per-job
// report deliveries.
//
// Where RunRemoteCampaign aborts on any interruption, this client
// rides through them: it creates the campaign once (a 409 means the
// create landed before a previous attempt was cut off — it attaches),
// then streams frames, and on a disconnect, server shutdown frame, or
// coordinator failover reattaches — to any base — with ?from=<last
// seq>, deduplicating by point index so the merged emit sequence is
// identical to an uninterrupted run. It gives up only on deterministic
// failures (bad request, the campaign's own terminal error or
// cancellation) or after durableMaxFailures consecutive transient ones.
func RunDurableCampaign(ctx context.Context, client *http.Client, bases []string, points []sdpolicy.Point, reports bool, emit func(index int, res *sdpolicy.Result, report json.RawMessage) error) error {
	if client == nil {
		client = http.DefaultClient
	}
	if len(bases) == 0 {
		return errors.New("no server bases")
	}
	for i, b := range bases {
		bases[i] = strings.TrimRight(b, "/")
	}
	id := newCampaignID()
	cur, failures := 0, 0
	// transient sleeps out the backoff for one more transient failure,
	// or gives up once the budget is spent.
	transient := func(err error) error {
		failures++
		if failures >= durableMaxFailures {
			return fmt.Errorf("giving up after %d consecutive failures: %w", failures, err)
		}
		cur = (cur + 1) % len(bases)
		delay := durableBackoffBase << (failures - 1)
		if delay > durableBackoffMax || delay <= 0 {
			delay = durableBackoffMax
		}
		select {
		case <-time.After(delay):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	// Create the resource. The ID is client-chosen so a retry against
	// another base (or after an ambiguous failure) is idempotent: 409
	// means some earlier attempt won, which is success.
	body, err := json.Marshal(struct {
		Points  []sdpolicy.Point `json:"points"`
		Reports bool             `json:"reports,omitempty"`
	}{Points: points, Reports: reports})
	if err != nil {
		return err
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			bases[cur]+"/v1/campaigns", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Campaign-ID", id)
		resp, err := client.Do(req)
		if err == nil {
			status := resp.StatusCode
			var ferr error
			if status != http.StatusCreated && status != http.StatusConflict {
				ferr = readError(bases[cur], resp)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if ferr == nil {
				break
			}
			if status == http.StatusBadRequest || status == http.StatusNotFound ||
				status == http.StatusMethodNotAllowed {
				// Deterministic: every retry would fail identically.
				return ferr
			}
			err = ferr
		}
		if terr := transient(err); terr != nil {
			return terr
		}
	}

	// Attach, emitting deduplicated frames; reattach from the cursor on
	// every transient interruption.
	var lastSeq uint64
	seen := make(map[int]bool)
	seenReport := make(map[int]bool)
	for {
		ferr := func() error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet,
				fmt.Sprintf("%s/v1/campaigns/%s?from=%d", bases[cur], id, lastSeq), nil)
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err := readError(bases[cur], resp)
				if resp.StatusCode == http.StatusBadRequest {
					return &fatalStreamError{err}
				}
				return err
			}
			dec := json.NewDecoder(resp.Body)
			for {
				var f streamFrame
				if err := dec.Decode(&f); err != nil {
					return fmt.Errorf("%s: stream ended early: %w", bases[cur], err)
				}
				if f.Seq > 0 {
					lastSeq = f.Seq
					failures = 0
				}
				switch {
				case f.Index != nil:
					if *f.Index < 0 || *f.Index >= len(points) || f.Result == nil {
						return &fatalStreamError{fmt.Errorf("%s: malformed result frame (index %v)", bases[cur], *f.Index)}
					}
					if seen[*f.Index] {
						continue
					}
					seen[*f.Index] = true
					if err := emit(*f.Index, f.Result, nil); err != nil {
						return &fatalStreamError{err}
					}
				case f.ReportFor != nil:
					if *f.ReportFor < 0 || *f.ReportFor >= len(points) || len(f.Report) == 0 || seenReport[*f.ReportFor] {
						continue
					}
					seenReport[*f.ReportFor] = true
					if err := emit(*f.ReportFor, nil, f.Report); err != nil {
						return &fatalStreamError{err}
					}
				case f.Done != nil && *f.Done:
					return nil
				case f.Cancelled != nil && *f.Cancelled:
					return &fatalStreamError{fmt.Errorf("campaign %s was cancelled", id)}
				case f.Error != nil && f.Seq > 0:
					return &fatalStreamError{fmt.Errorf("campaign %s failed: %s: %s", id, f.Error.Code, f.Error.Message)}
				case f.Shutdown != nil && *f.Shutdown:
					return fmt.Errorf("%s shut down mid-stream", bases[cur])
				}
				// Unknown frame kinds are skipped (the cursor already
				// advanced): a newer server may add informational frames.
			}
		}()
		if ferr == nil {
			return nil
		}
		var fatal *fatalStreamError
		if errors.As(ferr, &fatal) {
			return fatal.err
		}
		if terr := transient(ferr); terr != nil {
			return terr
		}
	}
}

// fatalStreamError marks a durable-campaign failure no reattach can
// fix: the campaign itself ended badly or the server rejected the
// request deterministically.
type fatalStreamError struct{ err error }

func (e *fatalStreamError) Error() string { return e.err.Error() }
func (e *fatalStreamError) Unwrap() error { return e.err }

// RunRemoteCampaign executes points on a remote sdserve instance
// (worker or coordinator) at base URL, calling emit for each stream
// delivery in completion order: result deliveries carry a non-nil res
// for points[index], and — when reports is true, negotiating the
// per-job-report frames — report deliveries follow with a nil res and
// the report encoding for an index already delivered (feed it to
// Result.SetReportJSON / Engine.Prime to warm a local cache). Any
// failure — transport, non-200 status, in-band error or shutdown
// terminal, emit's own error — aborts the campaign. It backs sdexp
// -server.
func RunRemoteCampaign(ctx context.Context, client *http.Client, base string, points []sdpolicy.Point, reports bool, emit func(index int, res *sdpolicy.Result, report json.RawMessage) error) error {
	if client == nil {
		client = http.DefaultClient
	}
	base = strings.TrimRight(base, "/")
	resp, err := postCampaign(ctx, client, base, points, reports, "")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readError(base, resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev workerEvent
		if err := dec.Decode(&ev); err != nil {
			return fmt.Errorf("%s: stream ended early: %w", base, err)
		}
		switch ev.kind() {
		case evResult:
			if *ev.Index < 0 || *ev.Index >= len(points) || ev.Result == nil {
				return fmt.Errorf("%s: malformed result line (index %v)", base, *ev.Index)
			}
			if err := emit(*ev.Index, ev.Result, nil); err != nil {
				return err
			}
		case evReport:
			// Best-effort frames: ignore malformed ones rather than
			// aborting a campaign whose results are fine.
			if *ev.ReportFor < 0 || *ev.ReportFor >= len(points) || len(ev.Report) == 0 {
				continue
			}
			if err := emit(*ev.ReportFor, nil, ev.Report); err != nil {
				return err
			}
		case evTrace:
			// Unrequested trace summary: nothing to merge, skip it.
		case evDone:
			return nil
		case evShutdown:
			return fmt.Errorf("%s: server shut down mid-campaign", base)
		case evError:
			return fmt.Errorf("%s: %s", base, *ev.Error)
		default:
			return fmt.Errorf("%s: unrecognised stream line", base)
		}
	}
}
