package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Dynamic worker registration: POST /v1/workers/register announces a
// worker to a coordinator (sdserve -join does this on the worker's
// behalf), granting a TTL'd lease the worker renews by re-registering —
// the heartbeat. An unrenewed lease expires and the peer is dropped;
// POST /v1/workers/deregister removes it immediately on graceful
// shutdown. Registered and static (-peers) workers share the same peer
// set, health prober, and campaign fan-out.

// Lease bounds: a requested TTL is clamped into [minLeaseTTL,
// maxLeaseTTL]; 0 means the coordinator's configured default.
const (
	minLeaseTTL = time.Second
	maxLeaseTTL = 10 * time.Minute
)

// RegisterRequest is the /v1/workers/register (and deregister) body.
type RegisterRequest struct {
	// URL is the worker's own base URL, reachable from the coordinator.
	URL string `json:"url"`
	// TTLSeconds requests a lease duration; 0 means the coordinator's
	// default. The granted value is echoed in the response — workers
	// should heartbeat at a fraction (JoinLoop uses a third) of it.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

// RegisterResponse echoes the normalised worker URL and granted lease.
type RegisterResponse struct {
	URL        string  `json:"url"`
	TTLSeconds float64 `json:"ttl_seconds"`
}

// handleRegister adds the announcing worker to the coordinator's fleet
// or renews its lease. Registration doubles as recovery: a worker that
// was marked dead returns to rotation the moment it re-announces.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRegistration(w, r)
	if !ok {
		return
	}
	ttl := s.coord.leaseTTL
	if req.TTLSeconds != 0 {
		ttl = time.Duration(req.TTLSeconds * float64(time.Second))
	}
	// Clamp whichever source the TTL came from: a misconfigured
	// coordinator default must not grant sub-second leases (expiring
	// between prober ticks) or multi-hour ones (a vanished worker
	// holding fleet membership) any more than an explicit request may.
	if ttl < minLeaseTTL {
		ttl = minLeaseTTL
	}
	if ttl > maxLeaseTTL {
		ttl = maxLeaseTTL
	}
	u, err := s.coord.peers.register(req.URL, ttl)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{URL: u, TTLSeconds: ttl.Seconds()})
}

// handleDeregister removes a registered worker from the fleet.
func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRegistration(w, r)
	if !ok {
		return
	}
	if err := s.coord.peers.deregister(req.URL); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{URL: req.URL})
}

// decodeRegistration shares the register/deregister preamble: the
// instance must be a coordinator (a plain worker has no fleet to join),
// and the body must carry a worker URL.
func (s *Server) decodeRegistration(w http.ResponseWriter, r *http.Request) (RegisterRequest, bool) {
	var req RegisterRequest
	if s.coord == nil {
		writeError(w, http.StatusConflict, errors.New("this instance is not a coordinator; point -join at one"))
		return req, false
	}
	// A journal-backed standby refuses registrations so workers stick
	// with the active coordinator (whose peers.json the standby adopts
	// on failover); a worker's multi-base JoinLoop rotates here — and
	// is accepted — only once this instance holds the lease.
	if s.journal != nil && !s.active.Load() {
		writeError(w, http.StatusServiceUnavailable, errStandby)
		return req, false
	}
	if !s.decode(w, r, &req) {
		return req, false
	}
	if req.URL == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing worker url"))
		return req, false
	}
	return req, true
}

// Register announces the worker at self to the coordinator at base,
// requesting (and returning) a lease TTL. It is one heartbeat; JoinLoop
// wraps it in renewal and deregistration.
func Register(ctx context.Context, client *http.Client, base, self string, ttl time.Duration) (time.Duration, error) {
	var resp RegisterResponse
	if err := postRegistration(ctx, client, base, "/v1/workers/register",
		RegisterRequest{URL: self, TTLSeconds: ttl.Seconds()}, &resp); err != nil {
		return 0, err
	}
	granted := time.Duration(resp.TTLSeconds * float64(time.Second))
	if granted <= 0 {
		return 0, fmt.Errorf("%s granted a non-positive lease (%v seconds)", base, resp.TTLSeconds)
	}
	return granted, nil
}

// Deregister removes the worker at self from the coordinator at base.
func Deregister(ctx context.Context, client *http.Client, base, self string) error {
	return postRegistration(ctx, client, base, "/v1/workers/deregister", RegisterRequest{URL: self}, nil)
}

// postRegistration POSTs one registration-API request and decodes the
// reply into out when non-nil.
func postRegistration(ctx context.Context, client *http.Client, base, path string, req RegisterRequest, out any) error {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(base, "/")+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readError(base, resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// JoinLoop keeps the worker at self registered with a coordinator until
// ctx ends, then deregisters: the client half of elastic fleet
// membership, backing sdserve -join. bases lists equivalent coordinator
// endpoints (typically the active coordinator and its failover
// standbys); each heartbeat sticks with the base that last accepted a
// registration and rotates to the next on failure, so when a standby
// adopts the fleet the worker's very next heartbeat re-registers it
// there — membership survives coordinator failover without waiting for
// the standby's persisted-peer adoption to be complete or fresh.
//
// It registers immediately, heartbeats at a third of the granted lease
// TTL (so two heartbeats can be lost before the lease expires), retries
// failed announcements at the same cadence, and reports state changes
// through logf (which may be nil). JoinLoop returns once the final
// deregistration completes.
func JoinLoop(ctx context.Context, client *http.Client, bases []string, self string, ttl time.Duration, logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(bases) == 0 {
		return
	}
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	interval := ttl / 3
	registered := false
	cur := 0
	heartbeat := func() {
		hbCtx, cancel := context.WithTimeout(ctx, interval)
		defer cancel()
		// One pass over the bases starting at the sticky one: the common
		// case (healthy coordinator) costs one request, and a failover
		// costs one failed request before the standby picks up the lease.
		var firstErr error
		for try := 0; try < len(bases); try++ {
			base := bases[(cur+try)%len(bases)]
			granted, err := Register(hbCtx, client, base, self, ttl)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", base, err)
				}
				continue
			}
			if !registered || try != 0 {
				logf("join: registered with %s (lease %v)", base, granted)
			}
			cur = (cur + try) % len(bases)
			registered = true
			interval = granted / 3
			return
		}
		if ctx.Err() != nil {
			return
		}
		if registered {
			logf("join: lost all coordinators (%v)", firstErr)
		} else {
			logf("join: cannot register (will retry): %v", firstErr)
		}
		registered = false
	}
	heartbeat()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			heartbeat()
			ticker.Reset(interval)
		case <-ctx.Done():
			if registered {
				// ctx is already done; deregister on a fresh deadline so
				// graceful shutdown still removes the lease promptly.
				base := bases[cur]
				dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				if err := Deregister(dctx, client, base, self); err != nil {
					logf("join: deregistering from %s: %v", base, err)
				} else {
					logf("join: deregistered from %s", base)
				}
			}
			return
		}
	}
}
