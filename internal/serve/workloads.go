package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"sdpolicy"
	"sdpolicy/internal/reducer"
)

// WorkloadInfo describes one addressable workload in the GET
// /v1/workloads listing: a named generator preset (Source "generator",
// parameterised by scale and seed) or a registered SWF trace (Source
// "trace", content-addressed by digest). Jobs/Nodes/Cores are filled
// where they are intrinsic — always for traces, and on the detail
// endpoint for generators once scale/seed pin them down.
type WorkloadInfo struct {
	Ref    string `json:"ref"`
	Source string `json:"source"`
	Digest string `json:"digest,omitempty"`
	// File is the registration label of a trace (typically its path).
	File   string              `json:"file,omitempty"`
	Jobs   int                 `json:"jobs,omitempty"`
	Nodes  int                 `json:"nodes,omitempty"`
	Cores  int                 `json:"cores,omitempty"`
	Params []reducer.ParamSpec `json:"params,omitempty"`
}

// WorkloadList is the GET /v1/workloads reply: every addressable
// workload plus the full derivation-op schema accepted in WorkloadRef
// and PointSpec derivation chains.
type WorkloadList struct {
	Workloads   []WorkloadInfo              `json:"workloads"`
	Derivations []sdpolicy.DerivationOpSpec `json:"derivations"`
}

// generatorParams are the parameter specs every generator preset
// accepts; traces take neither (content is pinned by the digest).
func generatorParams() []reducer.ParamSpec {
	return []reducer.ParamSpec{
		{Name: "scale", Type: reducer.TypeFloat, Default: 1.0,
			Description: "machine and job-count scale factor (0,1]"},
		{Name: "seed", Type: reducer.TypeUint, Default: uint64(1),
			Description: "generator seed"},
	}
}

// handleWorkloads serves the GET /v1/workloads listing. Like the
// experiment listing it answers on standbys: the resource is static
// discovery data, useful before failover completes.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet, "", errors.New("use GET to list workloads"))
		return
	}
	names := sdpolicy.WorkloadNames()
	list := WorkloadList{
		Workloads:   make([]WorkloadInfo, 0, len(names)),
		Derivations: sdpolicy.DerivationOps(),
	}
	for _, name := range names {
		list.Workloads = append(list.Workloads, WorkloadInfo{
			Ref:    name,
			Source: "generator",
			Params: generatorParams(),
		})
	}
	for _, tr := range sdpolicy.RegisteredTraces() {
		list.Workloads = append(list.Workloads, WorkloadInfo{
			Ref:    tr.Ref,
			Source: "trace",
			Digest: tr.Digest,
			File:   tr.Source,
			Jobs:   tr.Jobs,
			Nodes:  tr.Nodes,
			Cores:  tr.Cores,
		})
	}
	writeJSON(w, http.StatusOK, list)
}

// handleWorkloadByRef serves GET /v1/workloads/{ref}: one workload's
// resolved metadata. Generators accept ?scale= and ?seed= (defaulting
// to 1) since their shape depends on both; traces ignore them.
func (s *Server) handleWorkloadByRef(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet, "", errors.New("use GET to describe a workload"))
		return
	}
	ref := r.PathValue("ref")
	if sdpolicy.IsTraceRef(ref) {
		tr, ok := sdpolicy.TraceByRef(ref)
		if !ok {
			writeError(w, http.StatusNotFound,
				fmt.Errorf("unknown trace %q; register it with -trace / -trace-dir", ref))
			return
		}
		writeJSON(w, http.StatusOK, WorkloadInfo{
			Ref:    tr.Ref,
			Source: "trace",
			Digest: tr.Digest,
			File:   tr.Source,
			Jobs:   tr.Jobs,
			Nodes:  tr.Nodes,
			Cores:  tr.Cores,
		})
		return
	}
	known := false
	for _, name := range sdpolicy.WorkloadNames() {
		if name == ref {
			known = true
			break
		}
	}
	if !known {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown workload %q; GET /v1/workloads lists the registry", ref))
		return
	}
	scale, seed := 1.0, uint64(1)
	if v := r.URL.Query().Get("scale"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad scale %q: %w", v, err))
			return
		}
		scale = f
	}
	if v := r.URL.Query().Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed %q: %w", v, err))
			return
		}
		seed = n
	}
	wl, err := sdpolicy.NewWorkload(ref, scale, seed)
	if err != nil {
		writeError(w, statusFor(r.Context(), err), err)
		return
	}
	writeJSON(w, http.StatusOK, WorkloadInfo{
		Ref:    ref,
		Source: "generator",
		Jobs:   wl.Jobs(),
		Nodes:  wl.Nodes(),
		Cores:  wl.Cores(),
		Params: generatorParams(),
	})
}

// markLegacyWorkloadShape applies the PR 9 deprecation convention to
// requests still addressing workloads through the loose
// workload/scale/seed fields instead of a workload_ref: success bytes
// stay frozen, the headers advertise the successor shape out-of-band.
// One helper, shared by every endpoint accepting point specs.
func markLegacyWorkloadShape(w http.ResponseWriter, specs ...sdpolicy.PointSpec) {
	for _, spec := range specs {
		if spec.Ref == nil && spec.Workload != "" {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", `</v1/workloads>; rel="successor-version"`)
			return
		}
	}
}
