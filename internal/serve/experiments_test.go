package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sdpolicy"
	"sdpolicy/internal/reducer"
)

// experimentGoldenCases lists every registry experiment with parameters
// small enough for a test run; the golden tests assert that the server
// path reproduces the local Engine helper byte for byte on each.
type experimentGoldenCase struct {
	name   string
	params reducer.Params
}

func experimentGoldenCases() []experimentGoldenCase {
	return []experimentGoldenCase{
		{"table1", reducer.Params{"scale": 0.03}},
		{"table2", reducer.Params{}},
		{"sweep_maxsd", reducer.Params{"workloads": []string{"wl1"}, "scale": 0.05}},
		{"runtime_models", reducer.Params{"workloads": []string{"wl1"}, "scale": 0.05}},
		{"big_workload", reducer.Params{"scale": 0.02}},
		{"real_run", reducer.Params{"scale": 0.05}},
		{"ablate_sharing_factor", reducer.Params{"scale": 0.05, "factors": []float64{0.5}}},
		{"ablate_max_mates", reducer.Params{"scale": 0.05, "mates": []int{2}}},
		{"ablate_malleable_fraction", reducer.Params{"scale": 0.05, "fractions": []float64{0.5}}},
		{"ablate_node_features", reducer.Params{"scale": 0.05, "fractions": []float64{0.5}}},
		{"ablate_free_node_mixing", reducer.Params{"scale": 0.05}},
		{"compare_policies", reducer.Params{"scale": 0.05}},
	}
}

// goldenSummaryBytes memoises the local reference summaries across the
// golden tests (single-server and coordinator assert against the same
// bytes), so each experiment's reference simulates once per binary.
var (
	goldenMu    sync.Mutex
	goldenCache = map[string][]byte{}
)

func goldenSummaryBytes(t *testing.T, engine *sdpolicy.Engine, tc experimentGoldenCase) []byte {
	t.Helper()
	goldenMu.Lock()
	defer goldenMu.Unlock()
	if b, ok := goldenCache[tc.name]; ok {
		return b
	}
	v, err := engine.Experiment(context.Background(), tc.name, tc.params)
	if err != nil {
		t.Fatalf("local %s: %v", tc.name, err)
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("local %s: %v", tc.name, err)
	}
	goldenCache[tc.name] = b
	return b
}

func TestExperimentsGoldenSingleServer(t *testing.T) {
	// The server and the local reference share one engine, so the remote
	// run replays the reference's cached results — the test then isolates
	// the reduction and wire layers rather than simulation determinism
	// (which has its own coverage).
	engine := sdpolicy.NewEngine(4, 256)
	srv := httptest.NewServer(New(engine, 8).Handler())
	defer srv.Close()
	for _, tc := range experimentGoldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			want := goldenSummaryBytes(t, engine, tc)
			rows := 0
			got, err := RunRemoteExperiment(context.Background(), nil, []string{srv.URL},
				tc.name, tc.params, func(json.RawMessage) { rows++ })
			if err != nil {
				t.Fatalf("remote %s: %v", tc.name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("summary differs:\nremote %s\nlocal  %s", got, want)
			}
			// Experiments with an incremental-row fold must stream at
			// least one row before the summary. table2 has no simulation
			// points at all; big_workload and real_run fold points but are
			// summary-only by design (their figures need every point).
			d := sdpolicy.Experiments().Get(tc.name)
			inst, err := d.Instance(tc.params)
			if err != nil {
				t.Fatal(err)
			}
			summaryOnly := tc.name == "big_workload" || tc.name == "real_run"
			if len(inst.Points()) > 0 && !summaryOnly && rows == 0 {
				t.Fatal("no incremental rows streamed")
			}
			if (len(inst.Points()) == 0 || summaryOnly) && rows != 0 {
				t.Fatalf("summary-only experiment streamed %d rows", rows)
			}
		})
	}
}

func TestExperimentsGoldenCoordinator(t *testing.T) {
	workers := startWorkers(t, 2)
	coord := startCoordinator(t, workers)
	reference := sdpolicy.NewEngine(4, 256)
	for _, tc := range experimentGoldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			want := goldenSummaryBytes(t, reference, tc)
			got, err := RunRemoteExperiment(context.Background(), nil, []string{coord.URL},
				tc.name, tc.params, nil)
			if err != nil {
				t.Fatalf("remote %s: %v", tc.name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("summary differs:\ncoordinator %s\nlocal       %s", got, want)
			}
		})
	}
}

// createExperiment POSTs an experiment resource and returns its ID.
func createExperiment(t *testing.T, base, name string, params reducer.Params) string {
	t.Helper()
	body, err := json.Marshal(CreateExperimentRequest{Experiment: name, Params: rawParams(t, params)})
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, base+"/v1/experiments", string(body))
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("create: status %d: %s", resp.StatusCode, b)
	}
	var cr CreateExperimentResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.ID == "" || cr.Experiment != name ||
		resp.Header.Get("Location") != "/v1/experiments/"+cr.ID ||
		resp.Header.Get("X-Campaign-ID") != cr.ID {
		t.Fatalf("create reply inconsistent: %+v, Location %q", cr, resp.Header.Get("Location"))
	}
	return cr.ID
}

func rawParams(t *testing.T, params reducer.Params) map[string]json.RawMessage {
	t.Helper()
	out := make(map[string]json.RawMessage, len(params))
	for k, v := range params {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		out[k] = b
	}
	return out
}

// attachExperimentLines attaches from the row cursor and returns the
// raw NDJSON lines; the stream must end (terminal frame) to return.
func attachExperimentLines(t *testing.T, base, id string, from uint64) []string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/experiments/%s?from=%d", base, id, from))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attach: status %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestExperimentResumeFromCursor(t *testing.T) {
	srv := httptest.NewServer(New(sdpolicy.NewEngine(4, 64), 8).Handler())
	defer srv.Close()
	id := createExperiment(t, srv.URL, "sweep_maxsd",
		reducer.Params{"workloads": []string{"wl1"}, "scale": 0.05})
	full := attachExperimentLines(t, srv.URL, id, 0)
	if len(full) < 2 {
		t.Fatalf("stream too short: %v", full)
	}
	var done struct {
		Done    bool            `json:"done"`
		Summary json.RawMessage `json:"summary"`
	}
	if err := json.Unmarshal([]byte(full[len(full)-1]), &done); err != nil || !done.Done {
		t.Fatalf("last line is not the done frame: %s", full[len(full)-1])
	}
	// Row seqs are 1..N in frame order, so ?from=mid must replay exactly
	// the suffix full[mid:], byte for byte.
	mid := uint64(len(full) / 2)
	suffix := attachExperimentLines(t, srv.URL, id, mid)
	if len(suffix) != len(full)-int(mid) {
		t.Fatalf("?from=%d: %d lines, want %d", mid, len(suffix), len(full)-int(mid))
	}
	for i, line := range suffix {
		if line != full[int(mid)+i] {
			t.Fatalf("?from=%d line %d differs:\n%s\nvs\n%s", mid, i, line, full[int(mid)+i])
		}
	}
	// A cursor past the end still closes the stream with the terminal
	// frame (and nothing else).
	past := attachExperimentLines(t, srv.URL, id, 9999)
	if len(past) != 1 || past[0] != full[len(full)-1] {
		t.Fatalf("?from=9999 = %v, want just the done frame", past)
	}
}

func TestExperimentListEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var list ExperimentList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	descriptors := sdpolicy.Experiments().List()
	if len(list.Experiments) != len(descriptors) {
		t.Fatalf("%d experiments listed, registry has %d", len(list.Experiments), len(descriptors))
	}
	for i, d := range descriptors {
		e := list.Experiments[i]
		if e.Name != d.Name {
			t.Fatalf("position %d: %q, want %q (registration order)", i, e.Name, d.Name)
		}
		if e.Params == nil {
			t.Fatalf("%s: params missing from listing", e.Name)
		}
		if e.Reports != d.NeedsReports {
			t.Fatalf("%s: reports = %v, want %v", e.Name, e.Reports, d.NeedsReports)
		}
	}
}

func TestExperimentCreateErrors(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name, body string
		wantCode   string
	}{
		{"missing experiment", `{}`, "bad_request"},
		{"unknown experiment", `{"experiment":"fig99"}`, "bad_request"},
		{"unknown parameter", `{"experiment":"table1","params":{"bogus":1}}`, "bad_request"},
		{"mistyped parameter", `{"experiment":"table1","params":{"scale":"big"}}`, "bad_request"},
		{"malformed json", `{`, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, srv.URL+"/v1/experiments", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var env ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Message == "" {
				t.Fatalf("error envelope missing: %v (%+v)", err, env)
			}
			if env.Error.Code != tc.wantCode {
				t.Fatalf("code %q, want %q", env.Error.Code, tc.wantCode)
			}
		})
	}
}

func TestExperimentPlaneRejectsPlainCampaigns(t *testing.T) {
	srv := testServer(t)
	// A plain campaign is 404 on the experiments plane (no reducer), and
	// an unknown ID is 404 on both.
	id := createCampaign(t, srv.URL, "", campaignPointsBody)
	resp, err := http.Get(srv.URL + "/v1/experiments/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("plain campaign on experiments plane: status %d, want 404", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.CampaignID != id {
		t.Fatalf("envelope: %v (%+v)", err, env)
	}
	r2, err := http.Get(srv.URL + "/v1/experiments/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment resource: status %d, want 404", r2.StatusCode)
	}
}

func TestExperimentAttachBadCursor(t *testing.T) {
	srv := testServer(t)
	id := createExperiment(t, srv.URL, "table2", nil)
	resp, err := http.Get(srv.URL + "/v1/experiments/" + id + "?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestExperimentCancel(t *testing.T) {
	srv := testServer(t)
	id := createExperiment(t, srv.URL, "table1", reducer.Params{"scale": 0.03})
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/experiments/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	// The stream must close with a terminal frame either way the race
	// lands (cancelled mid-run, or done if the campaign won).
	lines := attachExperimentLines(t, srv.URL, id, 0)
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"cancelled":true`) && !strings.Contains(last, `"done":true`) {
		t.Fatalf("no terminal frame after cancel: %s", last)
	}
}

// TestLegacyEndpointConventions covers the migrated legacy endpoints:
// unified envelope on errors, proper Allow headers on 405, 415 for
// non-JSON bodies, and the sweep deprecation headers.
func TestLegacyEndpointConventions(t *testing.T) {
	srv := testServer(t)
	t.Run("method not allowed", func(t *testing.T) {
		cases := []struct {
			method, path, allow string
		}{
			{http.MethodGet, "/v1/simulate", "POST"},
			{http.MethodGet, "/v1/sweep", "POST"},
			{http.MethodPost, "/healthz", "GET"},
			{http.MethodPut, "/v1/experiments", "GET, POST"},
		}
		for _, tc := range cases {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			var env ErrorEnvelope
			derr := json.NewDecoder(resp.Body).Decode(&env)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
			}
			if got := resp.Header.Get("Allow"); got != tc.allow {
				t.Fatalf("%s %s: Allow %q, want %q", tc.method, tc.path, got, tc.allow)
			}
			if derr != nil || env.Error.Code != "method_not_allowed" {
				t.Fatalf("%s %s: envelope %+v (%v)", tc.method, tc.path, env, derr)
			}
		}
	})
	t.Run("unsupported media type", func(t *testing.T) {
		for _, path := range []string{"/v1/simulate", "/v1/sweep", "/v1/experiments"} {
			resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			var env ErrorEnvelope
			derr := json.NewDecoder(resp.Body).Decode(&env)
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnsupportedMediaType {
				t.Fatalf("%s: status %d, want 415", path, resp.StatusCode)
			}
			if derr != nil || env.Error.Code != "unsupported_media_type" {
				t.Fatalf("%s: envelope %+v (%v)", path, env, derr)
			}
		}
	})
	t.Run("content type omitted still works", func(t *testing.T) {
		// Historical clients omit Content-Type; the check is lenient.
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/simulate",
			strings.NewReader(`{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"static"}}`))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
	})
	t.Run("sweep deprecation headers", func(t *testing.T) {
		resp := postJSON(t, srv.URL+"/v1/sweep", `{"workloads":["wl5"],"scale":0.15,"seed":1}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") == "" {
			t.Fatal("no Deprecation header on /v1/sweep")
		}
		link := resp.Header.Get("Link")
		if !strings.Contains(link, "/v1/experiments") || !strings.Contains(link, "successor-version") {
			t.Fatalf("Link %q does not name the successor", link)
		}
		// Deprecated, but still byte-compatible with the library path.
		var sr SweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		rows, err := sdpolicy.SweepMaxSD([]string{"wl5"}, 0.15, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(sr.Rows) != len(rows) {
			t.Fatalf("%d rows, want %d", len(sr.Rows), len(rows))
		}
		for i := range rows {
			if rows[i] != sr.Rows[i] {
				t.Fatalf("row %d: HTTP %+v != library %+v", i, sr.Rows[i], rows[i])
			}
		}
	})
}
