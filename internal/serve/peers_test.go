package serve

import (
	"errors"
	"testing"
	"time"
)

// TestProbeDelaySchedule pins the probe backoff: doubling from the
// base per consecutive failure, saturating at the cap — so a briefly
// dead worker is re-checked almost immediately while a long-dead one
// costs one probe per cap interval, never a probe per tick.
func TestProbeDelaySchedule(t *testing.T) {
	cases := []struct {
		failures int
		want     time.Duration
	}{
		{0, 500 * time.Millisecond},
		{1, 500 * time.Millisecond},
		{2, time.Second},
		{3, 2 * time.Second},
		{4, 4 * time.Second},
		{5, 8 * time.Second},
		{6, 16 * time.Second},
		{7, 30 * time.Second}, // 32s saturates at the cap
		{8, 30 * time.Second},
		{100, 30 * time.Second},
	}
	for _, c := range cases {
		if got := probeDelay(c.failures); got != c.want {
			t.Fatalf("probeDelay(%d) = %v, want %v", c.failures, got, c.want)
		}
	}
}

// testClock gives peerSet tests a manual clock.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestPeers(t *testing.T, static ...string) (*peerSet, *testClock) {
	t.Helper()
	ps, err := newPeerSet(static)
	if err != nil {
		t.Fatal(err)
	}
	clock := &testClock{t: time.Unix(1000, 0)}
	ps.now = clock.now
	return ps, clock
}

func stateOf(t *testing.T, ps *peerSet, url string) PeerStatus {
	t.Helper()
	for _, st := range ps.snapshot() {
		if st.URL == url {
			return st
		}
	}
	t.Fatalf("peer %s not in snapshot %+v", url, ps.snapshot())
	return PeerStatus{}
}

// TestPeerSetNormalisesAndDeduplicates: static URLs are trimmed and
// duplicate spellings collapse to one peer.
func TestPeerSetNormalisesAndDeduplicates(t *testing.T) {
	ps, _ := newTestPeers(t, " http://w1:9000/ ", "http://w1:9000")
	if n := ps.fleetSize(); n != 1 {
		t.Fatalf("fleet size %d, want 1 (duplicate spelling collapsed)", n)
	}
	if got := ps.alive(); len(got) != 1 || got[0] != "http://w1:9000" {
		t.Fatalf("alive = %v, want the normalised URL", got)
	}
	if _, err := newPeerSet([]string{"not a url"}); err == nil {
		t.Fatal("invalid static URL accepted")
	}
}

// TestPeerSetFaultProbeRecovery walks the full state cycle: alive →
// dead (with backoff) → probing (once the backoff elapses) → alive on
// probe success, with failure counts and last error tracked.
func TestPeerSetFaultProbeRecovery(t *testing.T) {
	ps, clock := newTestPeers(t, "http://w1:9000")
	const u = "http://w1:9000"

	ps.markFault(u, errors.New("connection refused"), false)
	st := stateOf(t, ps, u)
	if st.State != peerDead || st.ConsecutiveFailures != 1 || st.LastError == "" {
		t.Fatalf("after fault: %+v", st)
	}
	if len(ps.alive()) != 0 {
		t.Fatal("faulted peer still in rotation")
	}
	// Backoff not yet elapsed: no probe due.
	if due := ps.probeCandidates(); len(due) != 0 {
		t.Fatalf("probe due immediately despite backoff: %v", due)
	}
	clock.advance(probeDelay(1) + time.Millisecond)
	due := ps.probeCandidates()
	if len(due) != 1 || due[0] != u {
		t.Fatalf("probe candidates %v, want [%s]", due, u)
	}
	if st := stateOf(t, ps, u); st.State != peerProbing {
		t.Fatalf("state %q while probe in flight, want probing", st.State)
	}
	// A failed probe re-arms the backoff with one more failure.
	ps.probeResult(u, errors.New("still down"))
	if st := stateOf(t, ps, u); st.State != peerDead || st.ConsecutiveFailures != 2 {
		t.Fatalf("after failed probe: %+v", st)
	}
	if due := ps.probeCandidates(); len(due) != 0 {
		t.Fatal("probe due before the doubled backoff elapsed")
	}
	clock.advance(probeDelay(2) + time.Millisecond)
	if due := ps.probeCandidates(); len(due) != 1 {
		t.Fatal("probe not due after doubled backoff")
	}
	// Success returns the peer to rotation and clears the fault record.
	ps.probeResult(u, nil)
	st = stateOf(t, ps, u)
	if st.State != peerAlive || st.ConsecutiveFailures != 0 || st.LastError != "" {
		t.Fatalf("after recovery: %+v", st)
	}
	if len(ps.alive()) != 1 {
		t.Fatal("recovered peer not in rotation")
	}
}

// TestPeerSetTransientFaultProbesImmediately: a 429/503-style fault
// skips the backoff — the worker is up, merely refusing work, so it is
// re-probed at the very next tick.
func TestPeerSetTransientFaultProbesImmediately(t *testing.T) {
	ps, _ := newTestPeers(t, "http://w1:9000")
	ps.markFault("http://w1:9000", errors.New("status 503"), true)
	if due := ps.probeCandidates(); len(due) != 1 {
		t.Fatalf("transient fault not probed immediately: %v", due)
	}
}

// TestPeerSetLeases: registration grants a TTL'd lease renewed by
// re-registering (the heartbeat); an unrenewed lease expires and drops
// the peer; static peers never expire and cannot be deregistered.
func TestPeerSetLeases(t *testing.T) {
	ps, clock := newTestPeers(t, "http://static:9000")
	u, err := ps.register("http://joined:9001/", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if u != "http://joined:9001" {
		t.Fatalf("registered URL %q not normalised", u)
	}
	st := stateOf(t, ps, u)
	if st.Source != "registered" || st.State != peerAlive || st.LeaseExpiresInSeconds <= 0 {
		t.Fatalf("registered peer: %+v", st)
	}
	// Heartbeat at half the lease keeps it alive past the original end.
	clock.advance(30 * time.Second)
	if _, err := ps.register(u, time.Minute); err != nil {
		t.Fatal(err)
	}
	clock.advance(45 * time.Second) // 75s after initial, 45s after renewal
	ps.expireLeases()
	if ps.fleetSize() != 2 {
		t.Fatal("renewed lease expired anyway")
	}
	// No further heartbeat: the lease runs out and the peer is dropped.
	clock.advance(16 * time.Second)
	ps.expireLeases()
	if ps.fleetSize() != 1 {
		t.Fatal("unrenewed lease survived expiry")
	}
	if st := stateOf(t, ps, "http://static:9000"); st.Source != "static" {
		t.Fatalf("survivor: %+v", st)
	}
	// Static peers: no lease to expire, no deregistration.
	clock.advance(24 * time.Hour)
	ps.expireLeases()
	if ps.fleetSize() != 1 {
		t.Fatal("static peer expired")
	}
	if err := ps.deregister("http://static:9000"); err == nil {
		t.Fatal("static peer deregistered")
	}
	// Registering an existing static URL revives it without a lease.
	ps.markFault("http://static:9000", errors.New("down"), false)
	if _, err := ps.register("http://static:9000", time.Minute); err != nil {
		t.Fatal(err)
	}
	st = stateOf(t, ps, "http://static:9000")
	if st.Source != "static" || st.State != peerAlive || st.LeaseExpiresInSeconds != 0 {
		t.Fatalf("re-registered static peer: %+v", st)
	}
}

// TestPeerSetDeregister removes a registered worker immediately.
func TestPeerSetDeregister(t *testing.T) {
	ps, _ := newTestPeers(t)
	if _, err := ps.register("http://w:9001", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := ps.deregister("http://w:9001/"); err != nil {
		t.Fatal(err)
	}
	if ps.fleetSize() != 0 {
		t.Fatal("deregistered peer still present")
	}
	if err := ps.deregister("http://w:9001"); err == nil {
		t.Fatal("double deregister accepted")
	}
}

// TestPeerSetNotifiesOnRotationEntry: campaign fan-outs subscribe to
// hear about peers entering rotation — registration and probe recovery
// must ping, repeated heartbeats of an already-alive peer must not.
func TestPeerSetNotifiesOnRotationEntry(t *testing.T) {
	ps, clock := newTestPeers(t, "http://w1:9000")
	ch := make(chan struct{}, 4)
	cancel := ps.subscribe(ch)
	defer cancel()
	drain := func() int {
		n := 0
		for {
			select {
			case <-ch:
				n++
			default:
				return n
			}
		}
	}
	if _, err := ps.register("http://w2:9001", time.Minute); err != nil {
		t.Fatal(err)
	}
	if n := drain(); n != 1 {
		t.Fatalf("registration pinged %d times, want 1", n)
	}
	// Heartbeat of an alive peer: no rotation change, no ping.
	if _, err := ps.register("http://w2:9001", time.Minute); err != nil {
		t.Fatal(err)
	}
	if n := drain(); n != 0 {
		t.Fatalf("heartbeat pinged %d times, want 0", n)
	}
	ps.markFault("http://w1:9000", errors.New("down"), false)
	clock.advance(time.Minute)
	ps.probeCandidates()
	ps.probeResult("http://w1:9000", nil)
	if n := drain(); n != 1 {
		t.Fatalf("probe recovery pinged %d times, want 1", n)
	}
	// A probe result for a peer deregistered mid-probe is ignored.
	if err := ps.deregister("http://w2:9001"); err != nil {
		t.Fatal(err)
	}
	ps.probeResult("http://w2:9001", nil)
	if ps.fleetSize() != 1 {
		t.Fatal("probe result resurrected a deregistered peer")
	}
}
