package serve

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sync"

	"sdpolicy/internal/telemetry"
)

// DebugHandler returns the handler both sdserve and sdexp mount on
// their opt-in -debug-addr listener: the full net/http/pprof suite
// under /debug/pprof/ plus a /metrics exposition of the process-wide
// registry. It is a separate handler — never merged into the public
// API mux — so profiling stays off unless the operator binds it,
// typically to localhost.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", telemetry.Default.Handler())
	return mux
}

// Build identifies the running binary for /healthz and startup logs.
type Build struct {
	// Version is the main module version — a tag for released builds,
	// "(devel)" for source builds.
	Version string `json:"version"`
	// Go is the toolchain that compiled the binary.
	Go string `json:"go"`
	// Built is the VCS commit time when the binary was built from a
	// checkout with stamping enabled; empty otherwise.
	Built string `json:"built,omitempty"`
	// Revision is the VCS commit, "+dirty" suffixed for modified trees.
	Revision string `json:"revision,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo Build
)

// BuildInfo reports the binary's build identity via
// runtime/debug.ReadBuildInfo, degrading gracefully (version "unknown",
// no VCS fields) when the binary was built without module support.
func BuildInfo() Build {
	buildOnce.Do(func() {
		buildInfo = Build{Version: "unknown", Go: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			buildInfo.Go = bi.GoVersion
		}
		var revision, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.time":
				buildInfo.Built = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if revision != "" {
			if modified == "true" {
				revision += "+dirty"
			}
			buildInfo.Revision = revision
		}
	})
	return buildInfo
}
