package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"sdpolicy"
)

// coordinator fans /v1/campaign requests out to a fixed set of worker
// sdserve instances over the existing streaming wire form and re-merges
// their NDJSON streams. The campaign's points are planned into one
// self-describing shard per worker (canonical duplicates co-located, so
// nothing simulates twice across the fleet); each worker streams its
// shard back, and the coordinator relays results to the client as they
// arrive, tagged with their original campaign positions. A worker that
// fails — connection refused, mid-stream cut, shutdown event — is
// marked dead for the rest of the campaign and its shard's unresolved
// points requeue to a surviving worker, so the merged output is
// identical to a single-process run as long as one worker survives.
type coordinator struct {
	urls   []string
	client *http.Client
}

// newCoordinator validates and normalises the worker base URLs.
func newCoordinator(workers []string, client *http.Client) (*coordinator, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("coordinator: no worker URLs")
	}
	urls := make([]string, len(workers))
	for i, w := range workers {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		u, err := url.Parse(w)
		if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
			return nil, fmt.Errorf("coordinator: worker %q is not an http(s) base URL", workers[i])
		}
		urls[i] = w
	}
	if client == nil {
		// No overall timeout: campaigns run for minutes by design, and
		// cancellation flows through the request context instead.
		client = &http.Client{}
	}
	return &coordinator{urls: urls, client: client}, nil
}

// shardJob is one unit of fan-out work: the original-campaign positions
// still unresolved. Shards shrink on retry — positions whose results
// already streamed before a worker died are not re-sent.
type shardJob struct {
	positions []int
}

// fanout is the shared state of one coordinated campaign.
type fanout struct {
	points  []sdpolicy.Point
	updates chan<- sdpolicy.PointResult
	queue   chan shardJob
	cancel  context.CancelFunc

	mu          sync.Mutex
	outstanding int // shards not yet fully resolved
	live        int // workers not yet marked dead
	received    []bool
	firstErr    error
}

// run executes the campaign across the worker fleet, delivering each
// result on updates the moment a worker streams it, and returns once
// every point has resolved or the campaign failed. It mirrors
// Engine.RunStream's contract: updates is closed before returning.
func (c *coordinator) run(ctx context.Context, points []sdpolicy.Point, updates chan<- sdpolicy.PointResult) error {
	defer close(updates)
	shards, err := sdpolicy.PlanShards(points, len(c.urls))
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := &fanout{
		points:  points,
		updates: updates,
		// Buffered for every enqueue that can ever happen: the initial
		// shards plus one requeue per worker death, so a requeueing
		// worker never blocks on its own send.
		queue:    make(chan shardJob, len(shards)+len(c.urls)),
		cancel:   cancel,
		live:     len(c.urls),
		received: make([]bool, len(points)),
	}
	for _, s := range shards {
		if len(s.Positions) == 0 {
			continue
		}
		st.outstanding++
		st.queue <- shardJob{positions: s.Positions}
	}
	if st.outstanding == 0 {
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for _, u := range c.urls {
		wg.Add(1)
		go func(workerURL string) {
			defer wg.Done()
			c.workerLoop(ctx, workerURL, st)
		}(u)
	}
	wg.Wait()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.firstErr != nil {
		return st.firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for pos, ok := range st.received {
		if !ok {
			return fmt.Errorf("coordinator: position %d never resolved", pos)
		}
	}
	return nil
}

// workerLoop drains shards against one worker until the queue closes,
// the campaign ends, or the worker fails (at which point the shard's
// unresolved remainder requeues and this worker retires).
func (c *coordinator) workerLoop(ctx context.Context, workerURL string, st *fanout) {
	for {
		select {
		case job, ok := <-st.queue:
			if !ok {
				return
			}
			remaining, err, workerFault := c.runShard(ctx, workerURL, job, st)
			switch {
			case err == nil:
				st.finishShard()
			case ctx.Err() != nil:
				// The campaign is already over (client gone, first error,
				// all positions resolved): don't blame the worker.
				st.fail(ctx.Err())
				return
			case workerFault:
				if len(remaining.positions) == 0 {
					// The stream broke after delivering every result but
					// before its terminal event: the shard is done.
					st.finishShard()
					continue
				}
				st.requeue(remaining)
				st.workerDown(workerURL, err)
				return
			default:
				st.fail(err)
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// runShard streams one shard through one worker, emitting results as
// they arrive. It returns the job's unresolved remainder, the error
// that ended the attempt, and whether that error indicts the worker
// (retryable elsewhere) rather than the campaign (deterministic, so
// retrying would reproduce it).
func (c *coordinator) runShard(ctx context.Context, workerURL string, job shardJob, st *fanout) (remaining shardJob, err error, workerFault bool) {
	got := make([]bool, len(job.positions))
	missing := func() shardJob {
		var rem shardJob
		for i, pos := range job.positions {
			if !got[i] {
				rem.positions = append(rem.positions, pos)
			}
		}
		return rem
	}
	pts := make([]sdpolicy.Point, len(job.positions))
	for i, pos := range job.positions {
		pts[i] = st.points[pos]
	}
	resp, err := postCampaign(ctx, c.client, workerURL, pts)
	if err != nil {
		return job, fmt.Errorf("worker %s: %w", workerURL, err), true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A 400 is deterministic — every worker would reject the same
		// points — so it fails the campaign; anything else (503 slot
		// exhaustion, shutdown, proxies) is the worker's problem.
		return job, fmt.Errorf("worker %w", readError(workerURL, resp)), resp.StatusCode != http.StatusBadRequest
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev workerEvent
		if derr := dec.Decode(&ev); derr != nil {
			return missing(), fmt.Errorf("worker %s: stream ended early: %w", workerURL, derr), true
		}
		switch ev.kind() {
		case evResult:
			local := *ev.Index
			if local < 0 || local >= len(job.positions) || ev.Result == nil {
				return missing(), fmt.Errorf("worker %s: malformed result line (index %d of %d points)",
					workerURL, local, len(job.positions)), true
			}
			if got[local] {
				continue
			}
			got[local] = true
			st.emit(ctx, job.positions[local], ev.Result)
		case evDone:
			if rem := missing(); len(rem.positions) != 0 {
				return rem, fmt.Errorf("worker %s: done after %d of %d results",
					workerURL, len(job.positions)-len(rem.positions), len(job.positions)), true
			}
			return shardJob{}, nil, false
		case evShutdown:
			return missing(), fmt.Errorf("worker %s: shutting down", workerURL), true
		case evError:
			return missing(), fmt.Errorf("worker %s: %s", workerURL, *ev.Error), false
		default:
			return missing(), fmt.Errorf("worker %s: unrecognised stream line", workerURL), true
		}
	}
}

// emit relays one resolved position to the client stream, deduplicating
// positions that a retried shard could deliver twice.
func (st *fanout) emit(ctx context.Context, pos int, res *sdpolicy.Result) {
	st.mu.Lock()
	if st.received[pos] {
		st.mu.Unlock()
		return
	}
	st.received[pos] = true
	st.mu.Unlock()
	select {
	case st.updates <- sdpolicy.PointResult{Index: pos, Point: st.points[pos], Result: res}:
	case <-ctx.Done():
	}
}

// finishShard retires one fully-resolved shard, closing the queue once
// the last one lands so idle workers return.
func (st *fanout) finishShard() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.outstanding--
	if st.outstanding == 0 {
		close(st.queue)
	}
}

// requeue hands a failed shard's unresolved remainder to the surviving
// workers. The queue's buffer covers every possible requeue, so this
// never blocks.
func (st *fanout) requeue(job shardJob) {
	st.queue <- job
}

// workerDown retires a failed worker; when the last one dies the
// campaign cannot finish and fails with the final worker's error.
func (st *fanout) workerDown(workerURL string, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.live--
	if st.live == 0 {
		if st.firstErr == nil {
			st.firstErr = fmt.Errorf("all campaign workers failed; last: %w", err)
		}
		st.cancel()
	}
}

// fail records the campaign's first fatal error and cancels the rest.
func (st *fanout) fail(err error) {
	if err == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.firstErr == nil {
		st.firstErr = err
	}
	st.cancel()
}
