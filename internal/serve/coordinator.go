package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"sdpolicy"
)

// coordinator fans /v1/campaign requests out to an elastic fleet of
// worker sdserve instances over the streaming wire form and re-merges
// their NDJSON streams. The campaign's points are planned into
// shardsPerWorker shards per fleet member (canonical duplicates
// co-located, so nothing simulates twice across the fleet) and handed
// out work-stealing style from a queue: a fast worker simply takes more
// shards, and a worker that joins mid-campaign — dynamic registration
// or a dead peer probed back to life — steals from the remaining queue.
// A worker that fails mid-shard requeues only its unresolved points, is
// taken out of rotation, and re-enters via the background health prober
// (or by re-registering), so the merged output is identical to a
// single-process run as long as the campaign never runs out of workers
// entirely. With WarmCache the coordinator additionally negotiates
// per-job report frames from the workers and primes its local engine
// cache with the proxied results, so a SaveCache spill can warm later
// local analyses.
type coordinator struct {
	peers           *peerSet
	client          *http.Client
	shardsPerWorker int
	probeInterval   time.Duration
	probeTimeout    time.Duration
	leaseTTL        time.Duration
	warmCache       bool
	engine          *sdpolicy.Engine
}

// newCoordinator builds the fan-out state over the static worker URLs
// (possibly none: registration can populate the fleet later).
func newCoordinator(cfg CoordinatorConfig, engine *sdpolicy.Engine) (*coordinator, error) {
	peers, err := newPeerSet(cfg.Workers)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		// No overall timeout: campaigns run for minutes by design, and
		// cancellation flows through the request context instead. Probes
		// bound themselves with per-request contexts.
		client = &http.Client{}
	}
	c := &coordinator{
		peers:           peers,
		client:          client,
		shardsPerWorker: cfg.ShardsPerWorker,
		probeInterval:   cfg.ProbeInterval,
		probeTimeout:    cfg.ProbeTimeout,
		leaseTTL:        cfg.LeaseTTL,
		warmCache:       cfg.WarmCache,
		engine:          engine,
	}
	if c.shardsPerWorker <= 0 {
		c.shardsPerWorker = sdpolicy.DefaultShardsPerWorker
	}
	if c.probeInterval <= 0 {
		c.probeInterval = time.Second
	}
	if c.probeTimeout <= 0 {
		c.probeTimeout = 2 * time.Second
	}
	if c.leaseTTL <= 0 {
		c.leaseTTL = 30 * time.Second
	}
	return c, nil
}

// probeLoop is the background health prober: every tick it expires
// unrenewed heartbeat leases and probes every out-of-rotation peer
// whose backoff has elapsed, returning responsive ones to rotation —
// which wakes any in-flight campaign so the revived worker starts
// stealing shards immediately. It runs until stop closes (BeginShutdown).
func (c *coordinator) probeLoop(stop <-chan struct{}) {
	ticker := time.NewTicker(c.probeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		c.peers.expireLeases()
		for _, u := range c.peers.probeCandidates() {
			go c.probe(u)
		}
	}
}

// probe checks one peer's /healthz and reports the outcome to the peer
// set. Any 200 counts as alive — the probe asks "is the process up",
// not "is it idle".
func (c *coordinator) probe(u string) {
	ctx, cancel := context.WithTimeout(context.Background(), c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+"/healthz", nil)
	if err != nil {
		c.peers.probeResult(u, err)
		return
	}
	resp, err := c.client.Do(req)
	if err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("healthz status %d", resp.StatusCode)
		}
	}
	c.peers.probeResult(u, err)
}

// shardJob is one unit of fan-out work: the original-campaign positions
// still unresolved. Jobs shrink on retry — positions whose results
// already streamed before a worker died are not re-sent — and carry
// how many times they have been requeued, reported as the steal count
// in trace spans.
type shardJob struct {
	positions []int
	steals    int
}

// shardVerdict classifies how one shard attempt ended.
type shardVerdict int

const (
	verdictOK        shardVerdict = iota
	verdictFatal                  // deterministic error: retrying reproduces it
	verdictDead                   // the worker is unreachable or broke its stream
	verdictTransient              // the worker refused work (429/503) but is up
)

// fanout is the shared state of one coordinated campaign: a queue of
// shard jobs stolen by per-peer worker loops that come and go with
// fleet membership.
type fanout struct {
	points  []sdpolicy.Point
	updates chan<- sdpolicy.PointResult
	cancel  context.CancelFunc
	// campaignID propagates on every worker hop (X-Campaign-ID); trace
	// is the campaign's span recorder, nil unless the client asked.
	campaignID string
	trace      *traceRecorder

	mu          sync.Mutex
	pending     []shardJob
	outstanding int // jobs not yet fully resolved (queued + in flight)
	received    []bool
	reported    []bool
	active      map[string]bool // peers with a live worker loop
	firstErr    error
	// wake is closed and replaced on every enqueue so idle worker loops
	// re-check the queue; done closes exactly once when the campaign
	// resolves (all jobs finished, first fatal error, or stranded).
	wake chan struct{}
	done chan struct{}
	// strandBy bounds how long a stranded campaign waits for a
	// revivable peer (zero = no strand in progress); strandWait marks a
	// deferred re-check already scheduled.
	strandBy   time.Time
	strandWait bool
}

// run executes the campaign across the fleet, delivering each result on
// updates the moment a worker streams it, and returns once every point
// has resolved or the campaign failed. It mirrors Engine.RunStream's
// contract: updates is closed before returning. wantReports relays the
// negotiated per-job report frames to the client's stream as
// report-only PointResults.
func (c *coordinator) run(ctx context.Context, points []sdpolicy.Point, updates chan<- sdpolicy.PointResult, wantReports bool, campaignID string, tr *traceRecorder) error {
	defer close(updates)
	c.peers.expireLeases()
	fleet := c.peers.fleetSize()
	if fleet == 0 {
		return fmt.Errorf("coordinator: no workers in the fleet (none static, none registered)")
	}
	shards, err := sdpolicy.PlanFleetShards(points, fleet, c.shardsPerWorker)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := &fanout{
		points:     points,
		updates:    updates,
		cancel:     cancel,
		campaignID: campaignID,
		trace:      tr,
		received:   make([]bool, len(points)),
		reported:   make([]bool, len(points)),
		active:     make(map[string]bool),
		wake:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for _, s := range shards {
		if len(s.Positions) == 0 {
			continue
		}
		st.outstanding++
		st.pending = append(st.pending, shardJob{positions: s.Positions})
	}
	mShardsQueued.Add(uint64(st.outstanding))
	if st.outstanding == 0 {
		return ctx.Err()
	}

	// Worker loops are spawned for every in-rotation peer now, and for
	// every peer that enters rotation mid-campaign (registration or a
	// successful health probe) — the membership subscription is what
	// makes the fleet elastic within a single campaign.
	notify := make(chan struct{}, 1)
	unsubscribe := c.peers.subscribe(notify)
	defer unsubscribe()
	var wg sync.WaitGroup
	spawn := func() {
		for _, u := range c.peers.alive() {
			st.mu.Lock()
			if st.firstErr == nil && st.outstanding > 0 && !st.active[u] {
				st.active[u] = true
				wg.Add(1)
				go func(workerURL string) {
					defer wg.Done()
					c.workerLoop(ctx, workerURL, st, wantReports)
				}(u)
			}
			st.mu.Unlock()
		}
	}
	spawn()
	c.checkStranded(st, fmt.Errorf("coordinator: no worker in rotation"))
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-notify:
				spawn()
			case <-st.done:
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	select {
	case <-st.done:
	case <-ctx.Done():
		// The caller's cancellation (client disconnect, shutdown)
		// becomes the campaign's first error; fail() cancels the shard
		// contexts so wg.Wait cannot hang on in-flight streams.
		st.fail(ctx.Err())
	}
	wg.Wait()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.firstErr != nil {
		return st.firstErr
	}
	for pos, ok := range st.received {
		if !ok {
			return fmt.Errorf("coordinator: position %d never resolved", pos)
		}
	}
	return nil
}

// workerLoop steals shard jobs for one peer until the campaign resolves
// or the peer faults (at which point the job's unresolved remainder
// requeues, the peer leaves rotation, and the health prober owns
// bringing it back — a revived peer gets a fresh loop).
func (c *coordinator) workerLoop(ctx context.Context, workerURL string, st *fanout, wantReports bool) {
	for {
		job, wait, finished := st.next()
		if finished {
			st.release(workerURL)
			return
		}
		if wait != nil {
			select {
			case <-wait:
				continue
			case <-st.done:
				st.release(workerURL)
				return
			case <-ctx.Done():
				st.release(workerURL)
				return
			}
		}
		mShardsStolen.With(workerURL).Inc()
		mPeerInflight.With(workerURL).Inc()
		begin := time.Now()
		remaining, err, verdict := c.runShard(ctx, workerURL, job, st, wantReports)
		mPeerInflight.With(workerURL).Dec()
		st.trace.record(workerURL, len(job.positions), job.steals, begin, err)
		switch {
		case verdict == verdictOK:
			st.finishShard()
		case ctx.Err() != nil:
			// The campaign is already over (client gone, first error, all
			// positions resolved): don't blame the worker.
			st.release(workerURL)
			st.fail(ctx.Err())
			return
		case verdict == verdictDead || verdict == verdictTransient:
			if len(remaining.positions) == 0 {
				// The stream broke after delivering every result but
				// before its terminal event: the shard is done.
				st.finishShard()
				continue
			}
			remaining.steals = job.steals + 1
			st.requeue(remaining)
			st.release(workerURL)
			c.peers.markFault(workerURL, err, verdict == verdictTransient)
			c.checkStranded(st, err)
			return
		default:
			st.release(workerURL)
			st.fail(err)
			return
		}
	}
}

// runShard streams one shard through one worker, emitting results as
// they arrive. It returns the job's unresolved remainder, the error
// that ended the attempt, and the verdict: whether the error indicts
// the worker (dead or merely refusing work — retryable elsewhere)
// rather than the campaign (deterministic, so retrying would reproduce
// it).
func (c *coordinator) runShard(ctx context.Context, workerURL string, job shardJob, st *fanout, wantReports bool) (remaining shardJob, err error, verdict shardVerdict) {
	got := make([]*sdpolicy.Result, len(job.positions))
	missing := func() shardJob {
		var rem shardJob
		for i, pos := range job.positions {
			if got[i] == nil {
				rem.positions = append(rem.positions, pos)
			}
		}
		return rem
	}
	pts := make([]sdpolicy.Point, len(job.positions))
	for i, pos := range job.positions {
		pts[i] = st.points[pos]
	}
	needFrames := wantReports || (c.warmCache && c.engine != nil)
	resp, err := postCampaign(ctx, c.client, workerURL, pts, needFrames, st.campaignID)
	if err != nil {
		return job, fmt.Errorf("worker %s: %w", workerURL, err), verdictDead
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A 400 is deterministic — every worker would reject the same
		// points — so it fails the campaign. 429/503 mean the worker is
		// up but refusing work (slot exhaustion, shutdown drain): requeue
		// and keep probing, it usually clears in seconds. Anything else
		// (5xx, proxies) retires the worker to the prober.
		err := fmt.Errorf("worker %w", readError(workerURL, resp))
		switch resp.StatusCode {
		case http.StatusBadRequest:
			return job, err, verdictFatal
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return job, err, verdictTransient
		default:
			return job, err, verdictDead
		}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev workerEvent
		if derr := dec.Decode(&ev); derr != nil {
			return missing(), fmt.Errorf("worker %s: stream ended early: %w", workerURL, derr), verdictDead
		}
		switch ev.kind() {
		case evResult:
			local := *ev.Index
			if local < 0 || local >= len(job.positions) || ev.Result == nil {
				return missing(), fmt.Errorf("worker %s: malformed result line (index %d of %d points)",
					workerURL, local, len(job.positions)), verdictDead
			}
			if got[local] != nil {
				continue
			}
			got[local] = ev.Result
			st.emit(ctx, job.positions[local], ev.Result)
		case evReport:
			// Negotiated per-job report frame for an already-delivered
			// result. Warming and relaying are both best-effort: a
			// malformed or orphaned frame is dropped, never fatal — the
			// results themselves are what correctness rides on. The
			// converse loss exists too: a worker that crashes between a
			// result line and its report frame leaves that point
			// delivered-but-unwarmed (it is excluded from requeues), so
			// the spill can lack entries after an abrupt worker death —
			// a later local run just re-simulates those points.
			local := *ev.ReportFor
			if local < 0 || local >= len(job.positions) || got[local] == nil || len(ev.Report) == 0 {
				continue
			}
			pos := job.positions[local]
			if c.warmCache && c.engine != nil {
				c.engine.PrimeProxied(st.points[pos], got[local], ev.Report)
			}
			if wantReports {
				st.emitReport(ctx, pos, ev.Report)
			}
		case evTrace:
			// Unrequested trace summary from the worker: skip, the
			// coordinator assembles its own spans.
		case evDone:
			if rem := missing(); len(rem.positions) != 0 {
				return rem, fmt.Errorf("worker %s: done after %d of %d results",
					workerURL, len(job.positions)-len(rem.positions), len(job.positions)), verdictDead
			}
			return shardJob{}, nil, verdictOK
		case evShutdown:
			return missing(), fmt.Errorf("worker %s: shutting down", workerURL), verdictDead
		case evError:
			return missing(), fmt.Errorf("worker %s: %s", workerURL, *ev.Error), verdictFatal
		default:
			return missing(), fmt.Errorf("worker %s: unrecognised stream line", workerURL), verdictDead
		}
	}
}

// next hands out the queue's front job. When the queue is empty it
// returns a wait channel that closes on the next enqueue (the caller
// must also watch done/ctx); when nothing is outstanding it reports the
// campaign finished. The empty-queue check and the wake-channel grab
// happen under one lock acquisition, so an enqueue can never slip
// between them unseen.
func (st *fanout) next() (job shardJob, wait <-chan struct{}, finished bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.pending) > 0 {
		job = st.pending[0]
		st.pending = st.pending[1:]
		return job, nil, false
	}
	if st.outstanding == 0 || st.firstErr != nil {
		return shardJob{}, nil, true
	}
	return shardJob{}, st.wake, false
}

// requeue returns a failed shard's unresolved remainder to the queue
// and wakes idle worker loops to steal it.
func (st *fanout) requeue(job shardJob) {
	mShardsRequeued.Inc()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.pending = append(st.pending, job)
	close(st.wake)
	st.wake = make(chan struct{})
}

// finishShard retires one fully-resolved job, resolving the campaign
// once the last one lands. Progress also resets the strand clock: a
// fleet that intermittently refuses work but keeps completing shards
// is slow, not stranded.
func (st *fanout) finishShard() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.outstanding--
	st.strandBy = time.Time{}
	if st.outstanding == 0 {
		st.closeDoneLocked()
	}
}

// release drops a worker loop from the active set (before its peer is
// marked faulted, so a probe revival can never race a still-registered
// loop and skip respawning).
func (st *fanout) release(workerURL string) {
	st.mu.Lock()
	delete(st.active, workerURL)
	st.mu.Unlock()
}

// checkStranded fails the campaign when work remains but nobody is
// left to do it: no live worker loop and no peer in rotation. One
// exception keeps the transient-fault promise honest for small fleets:
// if an out-of-rotation peer is revivable within one prober cycle
// (probe in flight, or a 429/503-style fault due for its immediate
// re-probe), the campaign waits — re-checking after a grace of one
// cycle, bounded overall by strandBy so a worker that refuses forever
// still fails the campaign instead of hanging the client. Hard faults
// (connection refused, waiting out a backoff) fail fast as before; a
// completed shard resets the strand clock (see finishShard).
func (c *coordinator) checkStranded(st *fanout, lastErr error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.outstanding == 0 || st.firstErr != nil {
		return
	}
	if len(st.active) > 0 {
		return
	}
	if len(c.peers.alive()) > 0 {
		// A peer is in rotation; the dispatcher will (re)spawn its loop.
		return
	}
	grace := c.probeInterval + c.probeTimeout + probeBackoffBase
	now := time.Now()
	if c.peers.revivable() && (st.strandBy.IsZero() || now.Before(st.strandBy)) {
		if st.strandBy.IsZero() {
			st.strandBy = now.Add(4 * grace)
		}
		if !st.strandWait {
			st.strandWait = true
			go func() {
				select {
				case <-time.After(grace):
				case <-st.done:
					return
				}
				st.mu.Lock()
				st.strandWait = false
				st.mu.Unlock()
				c.checkStranded(st, lastErr)
			}()
		}
		return
	}
	st.firstErr = fmt.Errorf("all campaign workers failed; last: %w", lastErr)
	st.cancel()
	st.closeDoneLocked()
}

// fail records the campaign's first fatal error and cancels the rest.
func (st *fanout) fail(err error) {
	if err == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.firstErr == nil {
		st.firstErr = err
	}
	st.cancel()
	st.closeDoneLocked()
}

// closeDoneLocked resolves the campaign exactly once. Callers hold st.mu.
func (st *fanout) closeDoneLocked() {
	select {
	case <-st.done:
	default:
		close(st.done)
	}
}

// emit relays one resolved position to the client stream, deduplicating
// positions that a retried shard could deliver twice.
func (st *fanout) emit(ctx context.Context, pos int, res *sdpolicy.Result) {
	st.mu.Lock()
	if st.received[pos] {
		st.mu.Unlock()
		return
	}
	st.received[pos] = true
	st.mu.Unlock()
	select {
	case st.updates <- sdpolicy.PointResult{Index: pos, Point: st.points[pos], Result: res}:
	case <-ctx.Done():
	}
}

// emitReport relays one negotiated report frame downstream as a
// report-only PointResult, once per position.
func (st *fanout) emitReport(ctx context.Context, pos int, report json.RawMessage) {
	st.mu.Lock()
	if !st.received[pos] || st.reported[pos] {
		st.mu.Unlock()
		return
	}
	st.reported[pos] = true
	st.mu.Unlock()
	select {
	case st.updates <- sdpolicy.PointResult{Index: pos, Report: report}:
	case <-ctx.Done():
	}
}
