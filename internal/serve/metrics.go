package serve

import (
	"net/http"
	"strconv"
	"time"

	"sdpolicy/internal/telemetry"
)

// Fleet and front-end telemetry. The fleet series carry a peer label
// (the worker base URL) so a Grafana panel over a 3-worker fleet shows
// who actually did the work, who kept dying, and who stole the slack.
var (
	mShardsQueued = telemetry.NewCounter("fleet_shards_queued_total",
		"Shard jobs enqueued for fan-out (initial planning; requeues counted separately).")
	mShardsStolen = telemetry.NewCounterVec("fleet_shards_stolen_total",
		"Shard jobs taken from the queue, by the peer whose loop took them.", "peer")
	mShardsRequeued = telemetry.NewCounter("fleet_shards_requeued_total",
		"Failed shards whose unresolved remainder went back on the queue.")
	mPeerInflight = telemetry.NewGaugeVec("fleet_peer_inflight",
		"Shards currently streaming through each peer.", "peer")
	mPeerTransitions = telemetry.NewCounterVec("fleet_peer_transitions_total",
		"Peer state machine transitions (new/alive/dead/probing).", "peer", "from", "to")
	mProbeFailures = telemetry.NewCounterVec("fleet_probe_failures_total",
		"Health probes that failed, per peer.", "peer")
	mProbeBackoff = telemetry.NewGaugeVec("fleet_probe_backoff_seconds",
		"Current re-probe backoff per out-of-rotation peer (0 = in rotation).", "peer")
	mLeaseRenewals = telemetry.NewCounter("fleet_lease_renewals_total",
		"Heartbeat lease renewals by registered workers.")
	mLeaseExpiries = telemetry.NewCounter("fleet_lease_expiries_total",
		"Registered workers dropped because their lease expired unrenewed.")

	mCampaignsCreated = telemetry.NewCounter("campaigns_created_total",
		"Campaign resources created via POST /v1/campaigns.")
	mCampaignAttaches = telemetry.NewCounter("campaign_attaches_total",
		"Stream attaches to campaign resources (GET /v1/campaigns/{id}), including reattaches.")
	mCampaignsResumed = telemetry.NewCounter("campaigns_resumed_total",
		"Incomplete journaled campaigns restarted by Activate (server restart or failover adoption).")
	mResumeSkipped = telemetry.NewCounter("campaign_resume_points_skipped_total",
		"Points NOT re-dispatched on campaign resume because their result was already journaled.")
	mJournalRecords = telemetry.NewCounter("journal_records_total",
		"Records appended to campaign journals (create records included).")
	mAdoptions = telemetry.NewCounter("failover_adoptions_total",
		"Times this instance activated the campaign plane (lease acquisitions, incl. startup).")
	mLeaseHeld = telemetry.NewGauge("coordinator_lease_held",
		"1 while this instance holds the coordinator lease (active), 0 on standby.")

	mExperimentsStarted = telemetry.NewCounterVec("experiments_started_total",
		"Experiment resources created via POST /v1/experiments, by experiment name.", "experiment")
	mExperimentsCompleted = telemetry.NewCounterVec("experiments_completed_total",
		"Experiment-backed campaigns that reached a terminal state, by experiment and outcome.",
		"experiment", "outcome")
	mExperimentAttaches = telemetry.NewCounter("experiment_attaches_total",
		"Stream attaches to experiment resources (GET /v1/experiments/{id}), including reattaches.")
	mExperimentSeconds = telemetry.NewHistogramVec("experiment_seconds",
		"Wall time from experiment campaign start to its terminal frame, by experiment.",
		telemetry.DefBuckets, "experiment")

	mHTTPRequests = telemetry.NewCounterVec("http_requests_total",
		"API requests served, by route and status code.", "route", "code")
	mHTTPSeconds = telemetry.NewHistogramVec("http_request_seconds",
		"API request latency by route (streaming routes measure the full stream).",
		telemetry.DefBuckets, "route")
)

// statusWriter captures the response status for the request counter. It
// forwards Flush so streaming handlers behind the middleware still
// reach the client incrementally — newStreamWriter type-asserts
// http.Flusher on whatever ResponseWriter it is handed.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps one route with request counting and latency
// observation. The route label is the registered pattern, not the raw
// URL, so cardinality stays bounded no matter what clients request.
func instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		mHTTPRequests.With(route, strconv.Itoa(sw.code)).Inc()
		mHTTPSeconds.With(route).Observe(time.Since(begin).Seconds())
	}
}
