package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sdpolicy"
	"sdpolicy/internal/telemetry"
)

// scrape fetches url and returns the body, asserting a 200.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestMetricsEndpoint runs a campaign through the API, then checks the
// /metrics exposition carries the expected content type and series from
// every instrumented layer: sim kernel, campaign engine, LRU, HTTP.
func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	resp := postJSON(t, srv.URL+"/v1/campaign",
		`{"points":[{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"static"}}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign status %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)

	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if ct := mr.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("content type %q, want %q", ct, telemetry.ContentType)
	}
	body, _ := io.ReadAll(mr.Body)
	out := string(body)
	for _, series := range []string{
		"sim_events_processed_total",
		"sim_runs_total",
		"campaign_points_completed_total",
		"campaign_cache_misses_total",
		"campaign_point_seconds_bucket",
		"lru_misses_total",
		`http_requests_total{route="/v1/campaign",code="200"}`,
		`http_request_seconds_bucket{route="/v1/campaign",le="+Inf"}`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
	// Spot-check the format: every non-comment line is `name{...} value`
	// with a numeric value field.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 1 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

// TestMetricsConcurrentScrape scrapes /metrics repeatedly while a
// campaign is in flight; with -race this proves scrapes never tear the
// atomics or race the handlers.
func TestMetricsConcurrentScrape(t *testing.T) {
	srv := testServer(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		body := `{"points":[
			{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"static"}},
			{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"sd","max_slowdown":10}},
			{"workload":"wl5","scale":0.15,"seed":2,"options":{"policy":"sd"}}
		]}`
		resp, err := http.Post(srv.URL+"/v1/campaign", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
	}()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					resp, err := http.Get(srv.URL + "/metrics")
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	<-done
	wg.Wait()
}

// traceLine decodes any /v1/campaign NDJSON line including the ?trace=1
// summary frame.
type traceLine struct {
	Index      *int        `json:"index"`
	Done       bool        `json:"done"`
	Error      string      `json:"error"`
	Trace      bool        `json:"trace"`
	CampaignID string      `json:"campaign_id"`
	DurationMS float64     `json:"duration_ms"`
	Points     int         `json:"points"`
	Shards     []ShardSpan `json:"shards"`
	Peers      []PeerTrace `json:"peers"`
}

// postCampaignWithID posts body to url with the given X-Campaign-ID
// header (omitted when empty) and ?trace=1, returning the response.
func postCampaignWithID(t *testing.T, url, body, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/campaign?trace=1", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set("X-Campaign-ID", id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeTraceLines(t *testing.T, body io.Reader) []traceLine {
	t.Helper()
	var lines []traceLine
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l traceLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestCampaignIDPropagation drives a traced campaign through a
// coordinator whose workers record the X-Campaign-ID they receive: the
// client's ID must be echoed on the response, observed verbatim by
// every worker that ran a shard, and stamped into the terminal trace
// frame along with per-shard spans naming those workers.
func TestCampaignIDPropagation(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string]int)
	urls := make([]string, 2)
	for i := range urls {
		inner := New(sdpolicy.NewEngine(2, 64), 4).Handler()
		w := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/campaign" {
				mu.Lock()
				seen[r.Header.Get("X-Campaign-ID")]++
				mu.Unlock()
			}
			inner.ServeHTTP(rw, r)
		}))
		t.Cleanup(w.Close)
		urls[i] = w.URL
	}
	coord := startCoordinator(t, urls)

	const id = "ci-trace-42"
	resp := postCampaignWithID(t, coord.URL, coordCampaignBody, id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Campaign-ID"); got != id {
		t.Errorf("response X-Campaign-ID %q, want %q", got, id)
	}
	lines := decodeTraceLines(t, resp.Body)
	if len(lines) < 2 {
		t.Fatalf("stream too short: %+v", lines)
	}
	last, trace := lines[len(lines)-1], lines[len(lines)-2]
	if !last.Done {
		t.Fatalf("terminal line %+v, want done", last)
	}
	if !trace.Trace || trace.CampaignID != id {
		t.Fatalf("trace frame %+v, want trace with campaign_id %q", trace, id)
	}
	if len(trace.Shards) == 0 || len(trace.Peers) == 0 {
		t.Fatalf("trace frame has no spans: %+v", trace)
	}
	workerSet := map[string]bool{urls[0]: true, urls[1]: true}
	for _, span := range trace.Shards {
		if !workerSet[span.Peer] {
			t.Errorf("span names unknown peer %q", span.Peer)
		}
		if span.EndMS < span.StartMS {
			t.Errorf("span ends before it starts: %+v", span)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[id] == 0 {
		t.Errorf("workers observed campaign IDs %v, want only %q", seen, id)
	}
}

// TestCampaignIDGenerated: without a client-supplied ID the server
// generates one; an unusable ID (bad characters) is replaced, not
// echoed back.
func TestCampaignIDGenerated(t *testing.T) {
	srv := testServer(t)
	body := `{"points":[{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"static"}}]}`

	resp := postCampaignWithID(t, srv.URL, body, "")
	gen := resp.Header.Get("X-Campaign-ID")
	if len(gen) != 16 {
		t.Errorf("generated ID %q, want 16 hex chars", gen)
	}
	io.Copy(io.Discard, resp.Body)

	resp = postCampaignWithID(t, srv.URL, body, "bad id with spaces")
	if got := resp.Header.Get("X-Campaign-ID"); got == "" || strings.ContainsAny(got, " \n") {
		t.Errorf("unusable client ID echoed as %q, want a regenerated one", got)
	}
	io.Copy(io.Discard, resp.Body)
}

// TestTraceFrameLocal: a ?trace=1 campaign on a non-coordinator server
// still gets a trace frame, with the whole batch attributed to the
// pseudo-peer "local".
func TestTraceFrameLocal(t *testing.T) {
	srv := testServer(t)
	resp := postCampaignWithID(t, srv.URL,
		`{"points":[{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"static"}}]}`, "local-trace-1")
	lines := decodeTraceLines(t, resp.Body)
	if len(lines) < 3 {
		t.Fatalf("stream %+v, want result + trace + done", lines)
	}
	trace := lines[len(lines)-2]
	if !trace.Trace || trace.CampaignID != "local-trace-1" || trace.Points != 1 {
		t.Fatalf("trace frame %+v", trace)
	}
	if len(trace.Shards) != 1 || trace.Shards[0].Peer != "local" {
		t.Fatalf("local trace spans %+v, want one span on peer local", trace.Shards)
	}
}

// TestDebugHandlerSmoke: the -debug-addr handler serves the pprof index,
// a pprof profile endpoint, and the /metrics exposition.
func TestDebugHandlerSmoke(t *testing.T) {
	srv := httptest.NewServer(DebugHandler())
	t.Cleanup(srv.Close)
	if out := scrape(t, srv.URL+"/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Errorf("pprof index lacks profile links:\n%.200s", out)
	}
	if out := scrape(t, srv.URL+"/debug/pprof/cmdline"); out == "" {
		t.Error("pprof cmdline empty")
	}
	if out := scrape(t, srv.URL+"/metrics"); !strings.Contains(out, "# TYPE") {
		t.Errorf("debug /metrics not an exposition:\n%.200s", out)
	}
}

// TestHealthBuildInfo: /healthz carries the binary's build identity.
func TestHealthBuildInfo(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Version == "" || h.Go == "" {
		t.Errorf("healthz build info %+v, want version and go set", h)
	}
	if !strings.HasPrefix(h.Go, "go") {
		t.Errorf("healthz go %q, want a go version string", h.Go)
	}
}

// TestCanonicalCampaignID pins the accept/replace rules.
func TestCanonicalCampaignID(t *testing.T) {
	for _, ok := range []string{"a", "ci-trace-42", "A.b_C-9", strings.Repeat("x", 64)} {
		if got := canonicalCampaignID(ok); got != ok {
			t.Errorf("canonicalCampaignID(%q) = %q, want unchanged", ok, got)
		}
	}
	for _, bad := range []string{"", "has space", "new\nline", `quo"te`, strings.Repeat("x", 65), "ünïcode"} {
		got := canonicalCampaignID(bad)
		if got == bad || len(got) != 16 {
			t.Errorf("canonicalCampaignID(%q) = %q, want a fresh 16-char ID", bad, got)
		}
	}
}

// TestTraceRecorderNil: a nil recorder must be inert — untraced
// campaigns call record on it for every shard.
func TestTraceRecorderNil(t *testing.T) {
	var tr *traceRecorder
	tr.record("w", 3, 0, time.Now(), nil)
	f := tr.frame("id", 3)
	if !f.Trace || f.CampaignID != "id" || len(f.Shards) != 0 {
		t.Errorf("nil recorder frame %+v", f)
	}
}
