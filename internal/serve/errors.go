package serve

import "net/http"

// The unified /v1/* error envelope. Every HTTP-level error reply is
//
//	{"error":{"code":"...","message":"...","campaign_id":"..."}}
//
// with a machine-readable code derived from the status: deterministic
// client mistakes are 400 bad_request, an unknown campaign resource is
// 404 not_found, re-creating an existing campaign is 409 conflict, and
// transient refusals (slot exhaustion, shutdown, a standby whose
// campaign plane has not activated) are 429/503 so clients know to
// retry. campaign_id is set on campaign-scoped errors so a client
// juggling several campaigns can attribute the failure without parsing
// the message.
//
// In-band stream frames are a different layer: the deprecated
// /v1/campaign alias keeps its historical {"error":"..."} terminal
// line byte-for-byte, while /v1/campaigns/{id} streams carry the
// ErrorDetail object inside their terminal error frame.

// ErrorDetail is the envelope payload.
type ErrorDetail struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	CampaignID string `json:"campaign_id,omitempty"`
}

// ErrorEnvelope is the HTTP error reply body for every /v1/* endpoint.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// errorCode maps an HTTP status to the envelope's stable code string.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusUnsupportedMediaType:
		return "unsupported_media_type"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusTooManyRequests:
		return "too_many_requests"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusInternalServerError:
		return "internal"
	}
	return "error"
}

// writeError replies with the unified envelope (no campaign scope).
func writeError(w http.ResponseWriter, status int, err error) {
	writeCampaignError(w, status, "", err)
}

// writeCampaignError replies with the unified envelope, attributing the
// failure to a campaign ID when one is in scope.
func writeCampaignError(w http.ResponseWriter, status int, campaignID string, err error) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorDetail{
		Code:       errorCode(status),
		Message:    err.Error(),
		CampaignID: campaignID,
	}})
}

// writeMethodNotAllowed replies 405 with the envelope and the Allow
// header RFC 9110 requires (a comma-separated method list).
func writeMethodNotAllowed(w http.ResponseWriter, allow, campaignID string, err error) {
	w.Header().Set("Allow", allow)
	writeCampaignError(w, http.StatusMethodNotAllowed, campaignID, err)
}
