package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sdpolicy"
)

// Integration coverage for the elastic-fleet behaviours: health-probed
// rotation, dynamic registration (including mid-campaign joiners
// stealing queued shards), transient-status requeues, heartbeat-lease
// lifecycle, and coordinator-side cache warming over the negotiated
// per-job report frames. The PR 4 static-fleet semantics keep their
// own tests in coordinator_test.go (probing effectively disabled
// there); here probe intervals are tens of milliseconds.

const shortProbe = 20 * time.Millisecond

// doorWorker is a worker whose reachability can be toggled: closed, it
// aborts every connection (campaign posts and health probes alike) the
// way a killed process does; open, it serves a real worker API. The
// inner engine's stats reveal whether it simulated anything.
type doorWorker struct {
	srv    *httptest.Server
	engine *sdpolicy.Engine

	mu   sync.Mutex
	open bool
}

func newDoorWorker(t *testing.T, open bool) *doorWorker {
	t.Helper()
	d := &doorWorker{engine: sdpolicy.NewEngine(2, 64), open: open}
	inner := New(d.engine, 8).Handler()
	d.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		open := d.open
		d.mu.Unlock()
		if !open {
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(d.srv.Close)
	return d
}

func (d *doorWorker) setOpen(open bool) {
	d.mu.Lock()
	d.open = open
	d.mu.Unlock()
}

func (d *doorWorker) misses() uint64 {
	_, misses := d.engine.CacheStats()
	return misses
}

// fetchHealth decodes a /healthz reply.
func fetchHealth(t *testing.T, base string) Health {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// waitPeerState polls the coordinator's /healthz until the peer at url
// reports the wanted state (or the predicate times out).
func waitPeerState(t *testing.T, coordURL, peerURL, want string) {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		for _, p := range fetchHealth(t, coordURL).Peers {
			if p.URL == peerURL && p.State == want {
				return
			}
		}
		select {
		case <-deadline:
			t.Fatalf("peer %s never reached state %q; healthz: %+v",
				peerURL, want, fetchHealth(t, coordURL).Peers)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// waitPeerCount polls until the coordinator reports exactly n peers.
func waitPeerCount(t *testing.T, coordURL string, n int) {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		if peers := fetchHealth(t, coordURL).Peers; len(peers) == n {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("peer count never reached %d; healthz: %+v",
				n, fetchHealth(t, coordURL).Peers)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// registerWorker registers url with the coordinator over HTTP.
func registerWorker(t *testing.T, coordURL, url string, ttlSeconds float64) {
	t.Helper()
	body, _ := json.Marshal(RegisterRequest{URL: url, TTLSeconds: ttlSeconds})
	resp := postJSON(t, coordURL+"/v1/workers/register", string(body))
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("register: status %d: %s", resp.StatusCode, msg)
	}
}

// TestRegistrationEndpointLifecycle: a worker registers into an
// initially empty fleet, serves campaigns, and deregisters away.
func TestRegistrationEndpointLifecycle(t *testing.T) {
	worker := startWorkers(t, 1)[0]
	coord, _ := startCoordinatorCfg(t, CoordinatorConfig{ProbeInterval: shortProbe})

	registerWorker(t, coord.URL, worker, 0)
	h := fetchHealth(t, coord.URL)
	if len(h.Peers) != 1 {
		t.Fatalf("peers after register: %+v", h.Peers)
	}
	p := h.Peers[0]
	if p.Source != "registered" || p.State != "alive" || p.LeaseExpiresInSeconds <= 0 {
		t.Fatalf("registered peer: %+v", p)
	}
	// The registered-only fleet runs a full campaign.
	assertResultsMatch(t, runCoordinatorCampaign(t, coord.URL), coordReferenceResults(t))

	body, _ := json.Marshal(RegisterRequest{URL: worker})
	resp := postJSON(t, coord.URL+"/v1/workers/deregister", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: status %d", resp.StatusCode)
	}
	if h := fetchHealth(t, coord.URL); len(h.Peers) != 0 {
		t.Fatalf("peers after deregister: %+v", h.Peers)
	}
}

// TestRegistrationRejections: bad worker URLs are a 400, and a plain
// worker (no fleet) refuses the registration API outright.
func TestRegistrationRejections(t *testing.T) {
	coord, _ := startCoordinatorCfg(t, CoordinatorConfig{ProbeInterval: time.Hour})
	for name, body := range map[string]string{
		"missing url": `{}`,
		"bad url":     `{"url":"not a url"}`,
		"bad scheme":  `{"url":"ftp://w:1"}`,
	} {
		if resp := postJSON(t, coord.URL+"/v1/workers/register", body); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	plain := testServer(t)
	resp := postJSON(t, plain.URL+"/v1/workers/register", `{"url":"http://w:1"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("register on a non-coordinator: status %d, want 409", resp.StatusCode)
	}
}

// TestDeadWorkerProbedBackIntoRotation is the elasticity acceptance
// test at the package level: a worker that dies mid-fleet is marked
// dead, health-probed with backoff, returned to rotation when it comes
// back, and then actually simulates again — all visible in /healthz.
func TestDeadWorkerProbedBackIntoRotation(t *testing.T) {
	healthy := startWorkers(t, 1)[0]
	door := newDoorWorker(t, false) // down from the start
	coord, _ := startCoordinatorCfg(t, CoordinatorConfig{
		Workers:       []string{healthy, door.srv.URL},
		ProbeInterval: shortProbe,
	})

	// Campaign 1: the dead worker faults, its shards requeue, output is
	// still byte-identical.
	assertResultsMatch(t, runCoordinatorCampaign(t, coord.URL), coordReferenceResults(t))
	waitPeerState(t, coord.URL, door.srv.URL, "dead")
	for _, p := range fetchHealth(t, coord.URL).Peers {
		if p.URL == door.srv.URL && (p.ConsecutiveFailures == 0 || p.LastError == "") {
			t.Fatalf("dead peer carries no fault record: %+v", p)
		}
	}

	// The worker restarts: the prober notices and returns it to
	// rotation without any registration or coordinator restart.
	door.setOpen(true)
	waitPeerState(t, coord.URL, door.srv.URL, "alive")

	// Campaign 2: the revived worker steals shards and simulates.
	assertResultsMatch(t, runCoordinatorCampaign(t, coord.URL), coordReferenceResults(t))
	if door.misses() == 0 {
		t.Fatal("revived worker never simulated after returning to rotation")
	}
}

// slowCampaignBody builds a campaign of n distinct multi-hundred-ms
// points so mid-campaign fleet changes land while work remains queued.
func slowCampaignBody(n int) string {
	specs := make([]string, n)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{"workload":"wl1","scale":0.25,"seed":%d,"options":{"policy":"sd","max_slowdown":10}}`, i+1)
	}
	return `{"points":[` + strings.Join(specs, ",") + `]}`
}

// TestJoinerAfterPlanningStealsQueuedShards: a worker that registers
// after the campaign was planned (fine-grained shards, one static
// worker) picks up queued shards mid-flight — the work-stealing half
// of elasticity. Also covers register-while-campaign-in-flight.
func TestJoinerAfterPlanningStealsQueuedShards(t *testing.T) {
	slowEngine := sdpolicy.NewEngine(1, 0) // sequential: one point at a time
	slow := httptest.NewServer(New(slowEngine, 8).Handler())
	t.Cleanup(slow.Close)
	joiner := newDoorWorker(t, true)
	coord, _ := startCoordinatorCfg(t, CoordinatorConfig{
		Workers:       []string{slow.URL},
		ProbeInterval: shortProbe,
	})

	const points = 10
	resp := postJSON(t, coord.URL+"/v1/campaign", slowCampaignBody(points))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first result: %v", sc.Err())
	}
	// Campaign is in flight with shards still queued (10 sequential
	// slow points, first one just landed): the joiner announces itself
	// and must start stealing immediately.
	registerWorker(t, coord.URL, joiner.srv.URL, 0)
	lines := decodeLines(t, sc)
	last := lines[len(lines)-1]
	if !last.Done || last.Points != points {
		t.Fatalf("terminal line %+v, want done with %d points", last, points)
	}
	if joiner.misses() == 0 {
		t.Fatal("mid-campaign joiner never stole a shard")
	}
}

// TestTransientStatusRequeuesWithoutRetiring: 429/503 from a worker —
// up, merely refusing work — requeues the shard and keeps probing; the
// worker rejoins as soon as it accepts again, rather than being
// written off as dead for good.
func TestTransientStatusRequeuesWithoutRetiring(t *testing.T) {
	healthy := startWorkers(t, 1)[0]
	// busy serves /healthz but replies 503 to campaigns until relieved.
	busyEngine := sdpolicy.NewEngine(2, 64)
	busyInner := New(busyEngine, 8).Handler()
	var busyMu sync.Mutex
	busy := true
	busySrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		busyMu.Lock()
		b := busy
		busyMu.Unlock()
		if b && r.URL.Path == "/v1/campaign" {
			http.Error(w, "no free slots", http.StatusServiceUnavailable)
			return
		}
		busyInner.ServeHTTP(w, r)
	}))
	t.Cleanup(busySrv.Close)
	coord, _ := startCoordinatorCfg(t, CoordinatorConfig{
		Workers:       []string{healthy, busySrv.URL},
		ProbeInterval: shortProbe,
	})

	// The 503s must not fail the campaign (they are not deterministic
	// errors) and must not lose points: everything lands via the
	// healthy worker.
	assertResultsMatch(t, runCoordinatorCampaign(t, coord.URL), coordReferenceResults(t))
	// The busy worker's healthz kept answering, so the prober returns
	// it to rotation even while it still refuses campaigns.
	waitPeerState(t, coord.URL, busySrv.URL, "alive")
	// Relieved, it serves the next campaign's shards.
	busyMu.Lock()
	busy = false
	busyMu.Unlock()
	assertResultsMatch(t, runCoordinatorCampaign(t, coord.URL), coordReferenceResults(t))
	if _, misses := busyEngine.CacheStats(); misses == 0 {
		t.Fatal("previously busy worker never simulated after relief")
	}
}

// TestSingleWorkerTransient503Recovers pins the small-fleet half of
// the transient-status promise: when the ONLY worker answers 503, the
// campaign must not abort with "all workers failed" — it waits out a
// bounded revival window while the prober (healthz still answers)
// returns the worker to rotation, and completes once the refusal
// clears.
func TestSingleWorkerTransient503Recovers(t *testing.T) {
	busyEngine := sdpolicy.NewEngine(2, 64)
	busyInner := New(busyEngine, 8).Handler()
	var busyMu sync.Mutex
	busy := true
	busySrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		busyMu.Lock()
		b := busy
		busyMu.Unlock()
		if b && r.URL.Path == "/v1/campaign" {
			http.Error(w, "no free slots", http.StatusServiceUnavailable)
			return
		}
		busyInner.ServeHTTP(w, r)
	}))
	t.Cleanup(busySrv.Close)
	coord, _ := startCoordinatorCfg(t, CoordinatorConfig{
		Workers:       []string{busySrv.URL},
		ProbeInterval: shortProbe,
	})
	go func() {
		time.Sleep(300 * time.Millisecond)
		busyMu.Lock()
		busy = false
		busyMu.Unlock()
	}()
	assertResultsMatch(t, runCoordinatorCampaign(t, coord.URL), coordReferenceResults(t))
}

// TestJoinLoopRegistersHeartbeatsAndDeregisters drives the worker-side
// client: JoinLoop announces the worker, keeps the lease renewed well
// past its TTL, and deregisters on context cancellation.
func TestJoinLoopRegistersHeartbeatsAndDeregisters(t *testing.T) {
	worker := startWorkers(t, 1)[0]
	coord, _ := startCoordinatorCfg(t, CoordinatorConfig{ProbeInterval: shortProbe})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		JoinLoop(ctx, nil, []string{coord.URL}, worker, time.Second, t.Logf)
	}()
	waitPeerCount(t, coord.URL, 1)
	// Outlive the initial 1s lease: heartbeats must keep renewing it.
	time.Sleep(1500 * time.Millisecond)
	if h := fetchHealth(t, coord.URL); len(h.Peers) != 1 || h.Peers[0].State != "alive" {
		t.Fatalf("peer lapsed despite heartbeats: %+v", h.Peers)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("JoinLoop never returned after cancellation")
	}
	if h := fetchHealth(t, coord.URL); len(h.Peers) != 0 {
		t.Fatalf("peer still present after JoinLoop deregistration: %+v", h.Peers)
	}
}

// TestHeartbeatLeaseExpiryDropsWorker: a worker that registers once
// and then goes silent is dropped when its lease runs out — the fleet
// shrinks by itself, no operator in the loop.
func TestHeartbeatLeaseExpiryDropsWorker(t *testing.T) {
	worker := startWorkers(t, 1)[0]
	coord, _ := startCoordinatorCfg(t, CoordinatorConfig{ProbeInterval: shortProbe})
	registerWorker(t, coord.URL, worker, 1) // minimum lease, never renewed
	waitPeerCount(t, coord.URL, 1)
	waitPeerCount(t, coord.URL, 0)
}

// TestWorkerReportFrames: ?reports=1 negotiates one report frame per
// result on a plain worker stream, and its payload restores a Result
// whose per-job report works (Daily has rows); without the param the
// stream is unchanged.
func TestWorkerReportFrames(t *testing.T) {
	srv := testServer(t)
	body := `{"points":[
		{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"static"}},
		{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"sd","max_slowdown":10}}
	]}`
	resp := postJSON(t, srv.URL+"/v1/campaign?reports=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lines := decodeLines(t, bufio.NewScanner(resp.Body))
	var results, reports int
	for _, l := range lines {
		switch {
		case l.Index != nil:
			results++
		case l.ReportFor != nil:
			reports++
			if len(l.Report) == 0 {
				t.Fatalf("empty report frame: %+v", l)
			}
			var res sdpolicy.Result
			if err := res.SetReportJSON(l.Report); err != nil {
				t.Fatalf("report frame does not decode: %v", err)
			}
			if len(res.Daily()) == 0 {
				t.Fatal("restored report has no daily rows")
			}
		}
	}
	if results != 2 || reports != 2 {
		t.Fatalf("%d results, %d report frames; want 2 and 2", results, reports)
	}
	if last := lines[len(lines)-1]; !last.Done || last.Points != 2 {
		t.Fatalf("terminal line %+v", last)
	}

	resp2 := postJSON(t, srv.URL+"/v1/campaign", body)
	for _, l := range decodeLines(t, bufio.NewScanner(resp2.Body)) {
		if l.ReportFor != nil {
			t.Fatalf("unsolicited report frame: %+v", l)
		}
	}
}

// TestCoordinatorWarmCacheSpill is the cache-warming acceptance test:
// a WarmCache coordinator primes its local engine with every result
// proxied from the workers — reports included, via the negotiated wire
// frame — so its SaveCache spill warms a fresh local engine to zero
// misses with byte-identical results.
func TestCoordinatorWarmCacheSpill(t *testing.T) {
	coord, s := startCoordinatorCfg(t, CoordinatorConfig{
		Workers:       startWorkers(t, 2),
		ProbeInterval: time.Hour,
		WarmCache:     true,
	})
	want := coordReferenceResults(t)
	assertResultsMatch(t, runCoordinatorCampaign(t, coord.URL), want)

	spill := filepath.Join(t.TempDir(), sdpolicy.CacheFileName)
	stats, err := s.engine.SaveCache(spill)
	if err != nil {
		t.Fatal(err)
	}
	// 6 campaign points, one canonical duplicate (the repeated static
	// baseline): 5 distinct entries.
	if stats.Entries != 5 {
		t.Fatalf("spilled %d entries, want 5", stats.Entries)
	}

	local := sdpolicy.NewEngine(2, 64)
	if err := local.LoadCache(spill); err != nil {
		t.Fatal(err)
	}
	var req CampaignRequest
	if err := json.Unmarshal([]byte(coordCampaignBody), &req); err != nil {
		t.Fatal(err)
	}
	points, err := sdpolicy.PointsFromSpecs(req.Points)
	if err != nil {
		t.Fatal(err)
	}
	got, err := local.Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := local.CacheStats(); misses != 0 {
		t.Fatalf("%d misses replaying a warmed campaign, want 0", misses)
	}
	assertResultsMatch(t, got, want)
	// The proxied reports survived the round trip: per-day analysis
	// works on a result that was never simulated in this process.
	if len(got[1].Daily()) == 0 {
		t.Fatal("warmed result has no per-job report")
	}
}

// TestRemoteCampaignWarmsLocalCache drives the sdexp -server
// -cache-dir path through a coordinator: RunRemoteCampaign with report
// negotiation, Engine.Prime per frame, then a local replay with zero
// misses — proving the frames relay through the coordinator, not just
// off a single worker.
func TestRemoteCampaignWarmsLocalCache(t *testing.T) {
	coord, _ := startCoordinatorCfg(t, CoordinatorConfig{
		Workers:       startWorkers(t, 2),
		ProbeInterval: time.Hour,
	})
	var req CampaignRequest
	if err := json.Unmarshal([]byte(coordCampaignBody), &req); err != nil {
		t.Fatal(err)
	}
	points, err := sdpolicy.PointsFromSpecs(req.Points)
	if err != nil {
		t.Fatal(err)
	}
	local := sdpolicy.NewEngine(2, 64)
	got := make(map[int]*sdpolicy.Result, len(points))
	err = RunRemoteCampaign(context.Background(), nil, coord.URL, points, true,
		func(index int, res *sdpolicy.Result, report json.RawMessage) error {
			if res != nil {
				got[index] = res
				return nil
			}
			prev := got[index]
			if prev == nil {
				t.Fatalf("report frame for undelivered index %d", index)
			}
			return local.PrimeProxied(points[index], prev, report)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(points) {
		t.Fatalf("%d results, want %d", len(got), len(points))
	}
	res, err := local.Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := local.CacheStats(); misses != 0 {
		t.Fatalf("%d misses after remote warming, want 0", misses)
	}
	assertResultsMatch(t, res, coordReferenceResults(t))
}

// BenchmarkCoordinatorFanout is the CI fan-out smoke: a three-worker
// fleet re-merging the fixed campaign. After the first iteration every
// worker serves from cache, so steady-state iterations measure the
// coordination overhead (planning, queueing, streaming, re-merge), not
// simulation.
func BenchmarkCoordinatorFanout(b *testing.B) {
	workers := make([]string, 3)
	for i := range workers {
		srv := httptest.NewServer(New(sdpolicy.NewEngine(2, 64), 8).Handler())
		b.Cleanup(srv.Close)
		workers[i] = srv.URL
	}
	s := New(sdpolicy.NewEngine(1, 64), 8)
	if err := s.EnableCoordinator(CoordinatorConfig{Workers: workers, ProbeInterval: time.Hour}); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.BeginShutdown)
	coord := httptest.NewServer(s.Handler())
	b.Cleanup(coord.Close)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(coord.URL+"/v1/campaign", "application/json",
			strings.NewReader(coordCampaignBody))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
