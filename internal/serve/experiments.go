package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"sdpolicy"
	"sdpolicy/internal/journal"
	"sdpolicy/internal/reducer"
)

// The experiments plane: every figure- and table-level experiment of
// the registry (sdpolicy.Experiments) as a resource mirroring
// /v1/campaigns. POST /v1/experiments names an experiment and its
// parameters; the server expands it into a campaign (journaled,
// coordinator-fanned-out, cancellable — everything a plain campaign
// gets) and streams the *reduced* view on GET /v1/experiments/{id}:
// incremental rows as the reducer folds result frames, then one
// terminal summary frame. At fleet scale a Table 1 ships ~rows to the
// client instead of ~50k point frames.
//
// The row stream is a derived view of the campaign's journaled frames:
// every attach re-folds them from the beginning in their (fixed) append
// order, so row seqs are stable across attaches and the ?from= cursor
// resumes a row stream exactly like the campaign cursor resumes a
// frame stream.
//
// Stream frames (SSE event name / NDJSON line):
//
//	row       {"seq":N,"row":{...}}                    incremental
//	done      {"seq":N,"done":true,"experiment":...,
//	           "summary":<typed result>}               terminal
//	error     {"seq":N,"error":{code,message,campaign_id}}  terminal
//	cancelled {"seq":N,"cancelled":true}               terminal
//	shutdown  {"shutdown":true,...}  transport-level, no seq
//
// The terminal frame is always emitted, even for a cursor past the end
// of the row stream, so a stream always closes explicitly.

// ExperimentInfo describes one registry experiment in the GET
// /v1/experiments listing.
type ExperimentInfo struct {
	Name        string `json:"name"`
	Title       string `json:"title,omitempty"`
	Description string `json:"description,omitempty"`
	// Reports marks experiments whose reduction needs per-job reports;
	// their campaigns negotiate report frames from the worker fleet.
	Reports bool                `json:"reports,omitempty"`
	Params  []reducer.ParamSpec `json:"params"`
}

// ExperimentList is the GET /v1/experiments reply.
type ExperimentList struct {
	Experiments []ExperimentInfo `json:"experiments"`
}

// CreateExperimentRequest is the POST /v1/experiments body. Params are
// decoded per the experiment's declared parameter specs; omitted
// parameters take their defaults, unknown ones are a 400.
type CreateExperimentRequest struct {
	Experiment string                     `json:"experiment"`
	Params     map[string]json.RawMessage `json:"params,omitempty"`
}

// CreateExperimentResponse is the 201 body; the Location header carries
// the resource path.
type CreateExperimentResponse struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	// Points is the size of the backing campaign (0 for generation-only
	// experiments, whose summary needs no simulation).
	Points int `json:"points"`
}

// experimentCreateRecord is the journaled create record of an
// experiment-backed campaign: a CreateCampaignRequest-compatible core
// (Points marshal in the PointSpec wire form) plus the experiment
// binding, so recovery rebuilds both the campaign and the reducer.
type experimentCreateRecord struct {
	Points     []sdpolicy.Point           `json:"points"`
	Reports    bool                       `json:"reports,omitempty"`
	Experiment string                     `json:"experiment"`
	Params     map[string]json.RawMessage `json:"params,omitempty"`
}

// handleExperiments is the collection endpoint: GET lists the registry,
// POST creates an experiment resource.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleExperimentList(w)
	case http.MethodPost:
		s.handleExperimentCreate(w, r)
	default:
		writeMethodNotAllowed(w, "GET, POST", "",
			errors.New("use GET to list experiments or POST to create one"))
	}
}

// handleExperimentList describes the registry. It answers on standbys
// too: the listing is static and useful for discovering the API before
// failover completes.
func (s *Server) handleExperimentList(w http.ResponseWriter) {
	descriptors := sdpolicy.Experiments().List()
	list := ExperimentList{Experiments: make([]ExperimentInfo, 0, len(descriptors))}
	for _, d := range descriptors {
		params := d.Params
		if params == nil {
			params = []reducer.ParamSpec{}
		}
		list.Experiments = append(list.Experiments, ExperimentInfo{
			Name:        d.Name,
			Title:       d.Title,
			Description: d.Description,
			Reports:     d.NeedsReports,
			Params:      params,
		})
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleExperimentCreate(w http.ResponseWriter, r *http.Request) {
	if !s.active.Load() {
		writeError(w, http.StatusServiceUnavailable, errStandby)
		return
	}
	var req CreateExperimentRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Experiment == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing experiment"))
		return
	}
	d := sdpolicy.Experiments().Get(req.Experiment)
	if d == nil {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown experiment %q; GET /v1/experiments lists the registry", req.Experiment))
		return
	}
	params, err := reducer.ResolveJSON(d.Params, req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("experiment %s: %w", d.Name, err))
		return
	}
	inst, err := d.New(params)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("experiment %s: %w", d.Name, err))
		return
	}
	rawParams, err := marshalParams(params)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	id := canonicalCampaignID(r.Header.Get("X-Campaign-ID"))
	cs := newCampaignState(id, inst.Points(), d.NeedsReports)
	cs.experiment = d.Name
	cs.expParams = params
	if !s.resources.add(cs) {
		writeCampaignError(w, http.StatusConflict, id,
			fmt.Errorf("campaign %s already exists; attach with GET /v1/experiments/%s", id, id))
		return
	}
	if !s.journalCreate(w, cs, experimentCreateRecord{
		Points:     cs.points,
		Reports:    cs.reports,
		Experiment: d.Name,
		Params:     rawParams,
	}) {
		return
	}
	mCampaignsCreated.Inc()
	mExperimentsStarted.With(d.Name).Inc()
	s.startCampaign(cs, nil)
	w.Header().Set("X-Campaign-ID", id)
	w.Header().Set("Location", "/v1/experiments/"+id)
	writeJSON(w, http.StatusCreated, CreateExperimentResponse{
		ID: id, Experiment: d.Name, Points: len(cs.points),
	})
}

// marshalParams re-encodes a resolved parameter set for the journal, so
// recovery re-resolves exactly the values this run used even if the
// registry's defaults change between restarts.
func marshalParams(p reducer.Params) (map[string]json.RawMessage, error) {
	out := make(map[string]json.RawMessage, len(p))
	for name, v := range p {
		b, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %w", name, err)
		}
		out[name] = b
	}
	return out, nil
}

// lookupExperiment resolves {id} like lookupCampaign and additionally
// requires the campaign to be experiment-backed: a plain campaign is
// 404 on the experiments plane (it has no reducer to stream).
func (s *Server) lookupExperiment(w http.ResponseWriter, id string) *campaignState {
	cs := s.lookupCampaign(w, id)
	if cs == nil {
		return nil
	}
	if cs.experiment == "" {
		writeCampaignError(w, http.StatusNotFound, id,
			fmt.Errorf("campaign %s is not an experiment; attach with GET /v1/campaigns/%s", id, id))
		return nil
	}
	return cs
}

// handleExperimentByID dispatches GET (attach to the reduced stream)
// and DELETE (cancel the backing campaign).
func (s *Server) handleExperimentByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		s.handleExperimentAttach(w, r, id)
	case http.MethodDelete:
		if s.lookupExperiment(w, id) == nil {
			return
		}
		s.handleCampaignCancel(w, r, id)
	default:
		writeMethodNotAllowed(w, "GET, DELETE", id,
			errors.New("use GET to attach or DELETE to cancel"))
	}
}

// expStream folds one attach's view of an experiment campaign: a fresh
// reducer instance consuming the campaign's frames in append order,
// emitting derived row frames with their own seq sequence. Because the
// frame order is fixed once appended (and journaled), every attach
// assigns identical seqs to identical rows — which is what makes the
// ?from= cursor sound across reattaches and server restarts.
type expStream struct {
	cs   *campaignState
	inst reducer.Instance[sdpolicy.Point, *sdpolicy.Result]
	st   *streamWriter
	seq  uint64 // last row/terminal seq assigned
	from uint64 // cursor: emit only frames with seq > from
}

// emit assigns the next seq and writes the frame unless the cursor
// already covers it. force bypasses the cursor for terminal frames.
func (es *expStream) emit(event string, payload func(seq uint64) any, force bool) {
	es.seq++
	if es.seq > es.from || force {
		es.st.event(event, payload(es.seq))
	}
}

// fail ends the stream with an in-band error frame (the reducer itself
// failed — a registry bug or a frame the fold cannot digest).
func (es *expStream) fail(err error) {
	es.emit("error", func(seq uint64) any {
		return struct {
			Seq   uint64      `json:"seq"`
			Error ErrorDetail `json:"error"`
		}{seq, ErrorDetail{
			Code:       errorCode(http.StatusInternalServerError),
			Message:    err.Error(),
			CampaignID: es.cs.id,
		}}
	}, true)
}

// fold consumes one campaign frame, returning true when the stream is
// complete (a terminal frame was emitted).
func (es *expStream) fold(f frame) bool {
	switch f.event {
	case journal.KindResult:
		var v struct {
			Index  int              `json:"index"`
			Result *sdpolicy.Result `json:"result"`
		}
		if err := json.Unmarshal(f.data, &v); err != nil {
			es.fail(fmt.Errorf("result frame %d: %w", f.seq, err))
			return true
		}
		rows, err := es.inst.Fold(v.Index, v.Result)
		if err != nil {
			es.fail(err)
			return true
		}
		for _, row := range rows {
			r := row
			es.emit("row", func(seq uint64) any {
				return struct {
					Seq uint64 `json:"seq"`
					Row any    `json:"row"`
				}{seq, r}
			}, false)
		}
	case journal.KindReport:
		rf, ok := es.inst.(reducer.ReportFolder)
		if !ok {
			return false
		}
		var v struct {
			ReportFor int             `json:"report_for"`
			Report    json.RawMessage `json:"report"`
		}
		if err := json.Unmarshal(f.data, &v); err != nil {
			es.fail(fmt.Errorf("report frame %d: %w", f.seq, err))
			return true
		}
		if err := rf.FoldReport(v.ReportFor, v.Report); err != nil {
			es.fail(err)
			return true
		}
	case journal.KindDone:
		summary, err := es.inst.Summary()
		if err != nil {
			es.fail(err)
			return true
		}
		es.emit("done", func(seq uint64) any {
			return struct {
				Seq        uint64 `json:"seq"`
				Done       bool   `json:"done"`
				Experiment string `json:"experiment"`
				Summary    any    `json:"summary"`
			}{seq, true, es.cs.experiment, summary}
		}, true)
		return true
	case journal.KindCancelled:
		es.emit("cancelled", func(seq uint64) any {
			return struct {
				Seq       uint64 `json:"seq"`
				Cancelled bool   `json:"cancelled"`
			}{seq, true}
		}, true)
		return true
	case journal.KindError:
		var v struct {
			Error ErrorDetail `json:"error"`
		}
		detail := ErrorDetail{Code: errorCode(http.StatusInternalServerError), CampaignID: es.cs.id}
		if json.Unmarshal(f.data, &v) == nil && v.Error.Message != "" {
			detail = v.Error
		}
		es.emit("error", func(seq uint64) any {
			return struct {
				Seq   uint64      `json:"seq"`
				Error ErrorDetail `json:"error"`
			}{seq, detail}
		}, true)
		return true
	}
	return false
}

// handleExperimentAttach streams the reduced view: rows after the
// ?from= cursor as the campaign's frames fold, then the terminal frame.
// Unlike the campaign attach it always consumes the underlying frames
// from the beginning — the reducer needs every result — and applies the
// cursor to the derived row stream it produces.
func (s *Server) handleExperimentAttach(w http.ResponseWriter, r *http.Request, id string) {
	q := r.URL.Query()
	var from uint64
	if v := q.Get("from"); v != "" {
		var err error
		if from, err = strconv.ParseUint(v, 10, 32); err != nil {
			writeCampaignError(w, http.StatusBadRequest, id,
				fmt.Errorf("bad ?from=%q: want a row sequence number", v))
			return
		}
	}
	sse, err := wantsSSE(r, q.Get("format"))
	if err != nil {
		writeCampaignError(w, http.StatusBadRequest, id, err)
		return
	}
	cs := s.lookupExperiment(w, id)
	if cs == nil {
		return
	}
	d := sdpolicy.Experiments().Get(cs.experiment)
	if d == nil {
		writeCampaignError(w, http.StatusInternalServerError, id,
			fmt.Errorf("experiment %q vanished from the registry", cs.experiment))
		return
	}
	inst, err := d.New(cs.expParams)
	if err != nil {
		writeCampaignError(w, http.StatusInternalServerError, id, err)
		return
	}
	mExperimentAttaches.Inc()
	mCampaignAttaches.Inc()
	w.Header().Set("X-Campaign-ID", id)
	es := &expStream{cs: cs, inst: inst, st: newStreamWriter(w, sse), from: from}
	i := 0
	for {
		cs.mu.Lock()
		for i < len(cs.frames) {
			f := cs.frames[i]
			i++
			cs.mu.Unlock()
			if es.fold(f) {
				return
			}
			cs.mu.Lock()
		}
		if cs.state != campaignRunning {
			// Terminal state without having seen a terminal frame can only
			// mean the loop started past it; the fold above otherwise
			// returns on the terminal frame itself.
			cs.mu.Unlock()
			return
		}
		wake := cs.wake
		cs.mu.Unlock()
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			// Fold whatever appended concurrently, then tell the client
			// this stream (not the experiment) is over.
			cs.mu.Lock()
			avail := cs.frames[i:len(cs.frames):len(cs.frames)]
			i = len(cs.frames)
			cs.mu.Unlock()
			for _, f := range avail {
				if es.fold(f) {
					return
				}
			}
			es.st.event("shutdown", CampaignShutdown{Shutdown: true, Error: "server shutting down"})
			return
		}
	}
}
