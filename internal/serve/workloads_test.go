package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"sdpolicy"
)

// serveTestTrace is the serve-layer fixture trace: a 4-node machine of
// 4-core nodes and three jobs. The process-wide registry backs every
// httptest instance in this binary, mirroring a fleet whose tiers all
// loaded the same -trace-dir.
const serveTestTrace = `; MaxNodes: 4
; MaxProcs: 16
1 0 5 100 -1 -1 -1 8 200 -1 1 -1 -1 -1 1 1 -1 -1
2 30 -1 60 -1 -1 -1 4 90 -1 1 -1 -1 -1 1 1 -1 -1
3 80 -1 40 -1 -1 -1 4 40 -1 1 -1 -1 -1 1 1 -1 -1
`

func registerServeTrace(t *testing.T) sdpolicy.TraceInfo {
	t.Helper()
	info, err := sdpolicy.RegisterTrace([]byte(serveTestTrace), "serve_test.swf")
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

func TestWorkloadsList(t *testing.T) {
	info := registerServeTrace(t)
	srv := testServer(t)
	var list WorkloadList
	if resp := getJSON(t, srv.URL+"/v1/workloads", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	byRef := map[string]WorkloadInfo{}
	for _, w := range list.Workloads {
		byRef[w.Ref] = w
	}
	for _, name := range sdpolicy.WorkloadNames() {
		g, ok := byRef[name]
		if !ok || g.Source != "generator" || len(g.Params) == 0 {
			t.Fatalf("generator %s: %+v", name, g)
		}
	}
	tr, ok := byRef[info.Ref]
	if !ok || tr.Source != "trace" || tr.Digest != info.Digest || tr.Jobs != info.Jobs {
		t.Fatalf("trace listing: %+v", tr)
	}
	ops := map[string]bool{}
	for _, op := range list.Derivations {
		ops[op.Op] = len(op.Fields) > 0 || op.Op == "" // record presence
	}
	for _, want := range []string{"malleable_fraction", "tag_nodes", "require_feature",
		"scale_load", "shift_arrivals", "assign_qos"} {
		if !ops[want] {
			t.Fatalf("derivation schema missing %s: %+v", want, list.Derivations)
		}
	}

	// Write methods are rejected with the listing convention.
	resp := postJSON(t, srv.URL+"/v1/workloads", `{}`)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		t.Fatalf("Allow %q", allow)
	}
}

func TestWorkloadDetail(t *testing.T) {
	info := registerServeTrace(t)
	srv := testServer(t)

	var gen WorkloadInfo
	if resp := getJSON(t, srv.URL+"/v1/workloads/wl1?scale=0.1&seed=1", &gen); resp.StatusCode != http.StatusOK {
		t.Fatalf("generator status %d", resp.StatusCode)
	}
	if gen.Source != "generator" || gen.Jobs == 0 || gen.Nodes == 0 {
		t.Fatalf("generator detail: %+v", gen)
	}

	var tr WorkloadInfo
	if resp := getJSON(t, srv.URL+"/v1/workloads/"+info.Ref, &tr); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if tr.Digest != info.Digest || tr.Jobs != info.Jobs || tr.Nodes != info.Nodes {
		t.Fatalf("trace detail: %+v", tr)
	}

	for path, want := range map[string]int{
		"/v1/workloads/wl99":                   http.StatusNotFound,
		"/v1/workloads/trace:0000000000000000": http.StatusNotFound,
		"/v1/workloads/wl1?scale=abc":          http.StatusBadRequest,
		"/v1/workloads/wl1?scale=7":            http.StatusBadRequest,
	} {
		var env ErrorEnvelope
		if resp := getJSON(t, srv.URL+path, &env); resp.StatusCode != want {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
		if env.Error.Message == "" {
			t.Fatalf("%s: no error envelope", path)
		}
	}
}

// TestSimulateWorkloadRef: the unified ref shape must produce the
// legacy shape's bytes exactly, with the deprecation headers marking
// only the legacy spelling.
func TestSimulateWorkloadRef(t *testing.T) {
	srv := testServer(t)
	legacy := postJSON(t, srv.URL+"/v1/simulate",
		`{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"sd","max_slowdown":10}}`)
	if legacy.StatusCode != http.StatusOK {
		t.Fatalf("legacy status %d", legacy.StatusCode)
	}
	if legacy.Header.Get("Deprecation") != "true" ||
		legacy.Header.Get("Link") != `</v1/workloads>; rel="successor-version"` {
		t.Fatalf("legacy shape not marked deprecated: %v", legacy.Header)
	}
	ref := postJSON(t, srv.URL+"/v1/simulate",
		`{"workload_ref":{"name":"wl5","scale":0.15,"seed":1},"options":{"policy":"sd","max_slowdown":10}}`)
	if ref.StatusCode != http.StatusOK {
		t.Fatalf("ref status %d", ref.StatusCode)
	}
	if ref.Header.Get("Deprecation") != "" {
		t.Fatal("ref shape marked deprecated")
	}
	var legacyBody, refBody json.RawMessage
	if err := json.NewDecoder(legacy.Body).Decode(&legacyBody); err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(ref.Body).Decode(&refBody); err != nil {
		t.Fatal(err)
	}
	if string(legacyBody) != string(refBody) {
		t.Fatalf("shapes answer differently:\n%s\nvs\n%s", legacyBody, refBody)
	}

	// Mixing the shapes is ambiguous and rejected.
	mixed := postJSON(t, srv.URL+"/v1/simulate",
		`{"workload":"wl5","workload_ref":{"name":"wl5"},"options":{}}`)
	if mixed.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed shapes status %d", mixed.StatusCode)
	}
}

func TestSweepWorkloadRefs(t *testing.T) {
	srv := testServer(t)
	read := func(body string) (int, string) {
		resp := postJSON(t, srv.URL+"/v1/sweep", body)
		var raw json.RawMessage
		json.NewDecoder(resp.Body).Decode(&raw)
		return resp.StatusCode, string(raw)
	}
	legacyCode, legacyBody := read(`{"workloads":["wl5"],"scale":0.15,"seed":1}`)
	refCode, refBody := read(`{"workload_refs":[{"name":"wl5","scale":0.15,"seed":1}]}`)
	if legacyCode != http.StatusOK || refCode != http.StatusOK {
		t.Fatalf("status %d / %d", legacyCode, refCode)
	}
	if legacyBody != refBody {
		t.Fatalf("sweep shapes answer differently:\n%s\nvs\n%s", legacyBody, refBody)
	}
	// Conflicting per-ref scales cannot collapse into the sweep's single
	// scale; derivations are not part of the sweep contract.
	for _, body := range []string{
		`{"workload_refs":[{"name":"wl1","scale":0.1},{"name":"wl2","scale":0.2}]}`,
		`{"workload_refs":[{"name":"wl1","scale":0.1}],"scale":0.2}`,
		`{"workload_refs":[{"name":"wl1","derivations":[{"op":"malleable_fraction","fraction":0.5}]}]}`,
		`{"workload_refs":[{"name":"wl1","trace":"trace:00"}]}`,
	} {
		if code, _ := read(body); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", body, code)
		}
	}
}

// TestTraceCampaignLocalVsCoordinator is the acceptance scenario: the
// registered trace at 1.5x load with 30% malleable jobs, static vs SD,
// addressed through workload_ref, must produce identical results from
// a local engine, a single worker, and a 2-worker coordinator fleet.
func TestTraceCampaignLocalVsCoordinator(t *testing.T) {
	info := registerServeTrace(t)
	body := fmt.Sprintf(`{"points":[
		{"workload_ref":{"trace":%q,"derivations":[
			{"op":"scale_load","fraction":0,"factor":1.5},
			{"op":"malleable_fraction","fraction":0.3}]},
		 "options":{"policy":"static"}},
		{"workload_ref":{"trace":%q,"derivations":[
			{"op":"scale_load","fraction":0,"factor":1.5},
			{"op":"malleable_fraction","fraction":0.3}]},
		 "options":{"policy":"sd","max_slowdown":10}}
	]}`, info.Ref, info.Ref)

	var req CampaignRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	points, err := sdpolicy.PointsFromSpecs(req.Points)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sdpolicy.NewEngine(2, 16).Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}

	check := func(label, url string) {
		t.Helper()
		got := runCampaign(t, url, body, len(points))
		assertResultsMatch(t, got, want)
		_ = label
	}
	workers := startWorkers(t, 2)
	check("worker", workers[0])
	check("coordinator", startCoordinator(t, workers).URL)
}

// TestUnknownTraceDigestRejected: a tier that was never given the
// trace must fail the request with the unified 400 envelope instead of
// guessing at content.
func TestUnknownTraceDigestRejected(t *testing.T) {
	srv := testServer(t)
	resp := postJSON(t, srv.URL+"/v1/simulate",
		`{"workload_ref":{"trace":"trace:ffffffffffffffff"},"options":{}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != "bad_request" {
		t.Fatalf("envelope: %v %+v", err, env)
	}
}

// runCampaign posts an arbitrary one-shot campaign and collects the
// per-position results (runCoordinatorCampaign is fixed to the shared
// coordinator fixture body).
func runCampaign(t *testing.T, url, body string, n int) []*sdpolicy.Result {
	t.Helper()
	resp := postJSON(t, url+"/v1/campaign", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	results := make([]*sdpolicy.Result, n)
	dec := json.NewDecoder(resp.Body)
	for {
		var line campaignLine
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("stream: %v", err)
		}
		if line.Done {
			if line.Error != "" {
				t.Fatalf("campaign error: %s", line.Error)
			}
			break
		}
		if line.Index == nil || line.Result == nil {
			continue
		}
		results[*line.Index] = line.Result
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("index %d never streamed", i)
		}
	}
	return results
}
