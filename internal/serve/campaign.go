package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"sdpolicy"
)

// CampaignRequest is the /v1/campaign body: an arbitrary list of
// simulation points — optionally carrying derivation chains, which is
// how the labelled ablation sweeps (malleable fraction, heterogeneous
// node features) run over HTTP — streamed back one result per point as
// each completes. Variant points over one base workload share a single
// cached generation.
type CampaignRequest struct {
	Points []sdpolicy.PointSpec `json:"points"`
	// Format forces the stream encoding: "sse" or "ndjson". Empty
	// means NDJSON unless the request's Accept header asks for
	// text/event-stream.
	Format string `json:"format,omitempty"`
}

// CampaignDone is the terminal success payload of a /v1/campaign
// stream (SSE event "done" / final NDJSON line).
type CampaignDone struct {
	Done bool `json:"done"`
	// Points is how many per-point results were streamed before the
	// terminal event; on success it equals the request's point count.
	Points int `json:"points"`
}

// CampaignShutdown is the terminal payload when the server begins
// shutdown while the stream is open (SSE event "shutdown").
type CampaignShutdown struct {
	Shutdown bool   `json:"shutdown"`
	Error    string `json:"error"`
}

// handleCampaign validates the point list, then streams one event per
// completed point followed by exactly one terminal event: done, error,
// or shutdown. A client disconnect cancels the campaign mid-simulation
// and frees the request's slot. The ?reports=1 query param negotiates
// per-job report frames: each result is followed by a report line
// (NDJSON) / "report" event (SSE) carrying the full per-job report, so
// a coordinator or sdexp -server run can warm a result cache with
// entries equivalent to locally simulated ones. Clients that don't ask
// see an unchanged stream.
//
// Every campaign gets a campaign ID — X-Campaign-ID from the client,
// else generated — echoed on the response header, stamped into the log
// lines here and on every worker the coordinator fans out to, and,
// with ?trace=1, reported in a terminal "trace" frame summarizing
// per-shard and per-peer timings (see TraceFrame).
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if !s.active.Load() {
		writeError(w, http.StatusServiceUnavailable, errStandby)
		return
	}
	// The resource API supersedes this endpoint; keep the body and the
	// stream byte-compatible, advertise the successor out-of-band.
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/campaigns>; rel="successor-version"`)
	var req CampaignRequest
	if !s.decode(w, r, &req) {
		return
	}
	reports := r.URL.Query().Get("reports") == "1"
	wantTrace := r.URL.Query().Get("trace") == "1"
	campaignID := canonicalCampaignID(r.Header.Get("X-Campaign-ID"))
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing points"))
		return
	}
	points, err := sdpolicy.PointsFromSpecs(req.Points)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sse, err := wantsSSE(r, req.Format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.acquire(w, r.Context()) {
		return
	}
	defer s.release()
	s.campaigns.Add(1)
	defer s.campaigns.Add(-1)

	// The campaign context ends with the client connection (disconnect
	// detection) or explicitly on server shutdown.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	mode := "local"
	if s.coord != nil {
		mode = "coordinator"
	}
	begin := time.Now()
	slog.Info("campaign start",
		"campaign_id", campaignID, "points", len(points), "mode", mode, "trace", wantTrace)
	defer func() {
		slog.Info("campaign end",
			"campaign_id", campaignID, "points", len(points), "mode", mode,
			"duration_ms", time.Since(begin).Milliseconds())
	}()

	// The trace recorder exists for every campaign that asked for it;
	// a nil recorder records nothing, so untraced campaigns pay only
	// nil checks. The ID header must land before newStreamWriter, which
	// writes the response header block at construction.
	var tr *traceRecorder
	if wantTrace {
		tr = newTraceRecorder()
	}
	w.Header().Set("X-Campaign-ID", campaignID)
	st := newStreamWriter(w, sse)
	// Buffered for the whole campaign: results completed by shutdown
	// time are guaranteed to still be deliverable by the drain below.
	// With report frames negotiated each position can deliver twice
	// (result + report), so the buffer doubles.
	bufSize := len(points)
	if reports {
		bufSize *= 2
	}
	updates := make(chan sdpolicy.PointResult, bufSize)
	errc := make(chan error, 1)
	// In coordinator mode the campaign fans out to the worker fleet
	// (relaying negotiated report frames as report-only deliveries);
	// otherwise it runs on the local engine, whose results carry their
	// reports inline. Both close updates before returning and deliver
	// results in completion order.
	run := func(ctx context.Context, pts []sdpolicy.Point, updates chan<- sdpolicy.PointResult) error {
		runBegin := time.Now()
		_, err := s.engine.RunStream(ctx, pts, updates)
		tr.record("local", len(pts), 0, runBegin, err)
		return err
	}
	if s.coord != nil {
		run = func(ctx context.Context, pts []sdpolicy.Point, updates chan<- sdpolicy.PointResult) error {
			return s.coord.run(ctx, pts, updates, reports, campaignID, tr)
		}
	}
	// relay writes one update to the stream: a result line (optionally
	// followed by its report frame, computed locally outside coordinator
	// mode) or a coordinator-proxied report-only frame. Returns how many
	// result lines were written (0 or 1).
	relay := func(u sdpolicy.PointResult) int {
		if u.Result == nil {
			if reports && u.Report != nil {
				st.event("report", reportFrame{ReportFor: u.Index, Report: u.Report})
			}
			return 0
		}
		st.event("result", u)
		if reports && s.coord == nil {
			if raw, err := u.Result.ReportJSON(); err == nil {
				st.event("report", reportFrame{ReportFor: u.Index, Report: raw})
			}
		}
		return 1
	}
	go func() { errc <- run(ctx, points, updates) }()
	sent := 0
	// emitTrace writes the ?trace=1 summary frame; it must precede the
	// terminal event so clients can rely on done/error/shutdown staying
	// the stream's last line.
	emitTrace := func() {
		if tr != nil {
			st.event("trace", tr.frame(campaignID, sent))
		}
	}
	for {
		select {
		case u, ok := <-updates:
			if !ok {
				err := <-errc
				emitTrace()
				if err != nil {
					st.event("error", apiError{Error: err.Error()})
				} else {
					st.event("done", CampaignDone{Done: true, Points: sent})
				}
				return
			}
			sent += relay(u)
		case <-s.shutdown:
			cancel()
			// Deliver whatever already simulated before closing out:
			// completed results are parked in the channel buffer, and
			// the drain terminates promptly because any remaining
			// engine sends also select on the now-cancelled ctx.
			for u := range updates {
				sent += relay(u)
			}
			// Report the campaign's real terminal state: it may have
			// completed (or failed) in the same instant shutdown began,
			// and only a shutdown-induced cancellation should be
			// masked by the shutdown event.
			err := <-errc
			emitTrace()
			switch {
			case err == nil:
				st.event("done", CampaignDone{Done: true, Points: sent})
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				st.event("shutdown", CampaignShutdown{Shutdown: true, Error: "server shutting down"})
			default:
				st.event("error", apiError{Error: err.Error()})
			}
			return
		}
	}
}

// wantsSSE resolves the stream encoding from the explicit format field
// or the Accept header.
func wantsSSE(r *http.Request, format string) (bool, error) {
	switch format {
	case "sse":
		return true, nil
	case "ndjson", "":
	default:
		return false, fmt.Errorf("unknown format %q (want sse or ndjson)", format)
	}
	if format == "" && strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		return true, nil
	}
	return false, nil
}

// streamWriter encodes one event at a time as SSE or NDJSON, flushing
// after each so clients observe results as they complete.
type streamWriter struct {
	w   http.ResponseWriter
	fl  http.Flusher
	sse bool
}

func newStreamWriter(w http.ResponseWriter, sse bool) *streamWriter {
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	// Tell buffering reverse proxies (nginx) not to hold the stream.
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	sw := &streamWriter{w: w, fl: fl, sse: sse}
	sw.flush()
	return sw
}

// event writes one payload. Write errors are deliberately ignored: they
// mean the client is gone, and the campaign context (derived from the
// request) is what actually stops the work.
func (sw *streamWriter) event(name string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
		name = "error"
	}
	if sw.sse {
		fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", name, b)
	} else {
		fmt.Fprintf(sw.w, "%s\n", b)
	}
	sw.flush()
}

// rawEvent writes one pre-marshalled payload — the campaign resource
// plane's path, where the frame bytes are fixed at append time (and in
// the journal) and every attach must replay them identically.
func (sw *streamWriter) rawEvent(name string, data []byte) {
	if sw.sse {
		fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", name, data)
	} else {
		fmt.Fprintf(sw.w, "%s\n", data)
	}
	sw.flush()
}

func (sw *streamWriter) flush() {
	if sw.fl != nil {
		sw.fl.Flush()
	}
}
