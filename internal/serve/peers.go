package serve

import (
	"fmt"
	"net/url"
	"strings"
	"sync"
	"time"
)

// This file is the coordinator's peer-set abstraction: one fleet
// membership table shared by statically configured workers (-peers) and
// dynamically registered ones (-join via POST /v1/workers/register).
// Campaign fan-out, the background health prober, lease expiry, and
// /healthz all read and write the same table, so "a worker" means the
// same thing no matter how it arrived.
//
// Lifecycle of a peer:
//
//	alive ──campaign/probe failure──▶ dead ──backoff elapses──▶ probing
//	  ▲                                                            │
//	  └──────────────── /healthz probe succeeds ◀──────────────────┘
//
// Static peers cycle through those states forever; registered peers
// additionally carry a TTL'd lease that the worker renews by
// re-registering (its heartbeat), and are dropped entirely once the
// lease expires unrenewed. A re-register at any time short-circuits the
// backoff and returns the peer to rotation immediately — the worker
// itself is the best health probe there is.

// Peer states, reported verbatim in /healthz.
const (
	peerAlive   = "alive"   // in rotation for campaign fan-out
	peerDead    = "dead"    // out of rotation, waiting out its probe backoff
	peerProbing = "probing" // out of rotation, health probe in flight
)

// probe backoff tuning. probeDelay doubles from probeBackoffBase per
// consecutive failure and saturates at probeBackoffMax, so a worker
// that is down for an hour costs a probe every ~30s, not a probe per
// tick, while a freshly failed worker is re-checked almost immediately.
const (
	probeBackoffBase = 500 * time.Millisecond
	probeBackoffMax  = 30 * time.Second
)

// probeDelay is the wait before re-probing a peer that has failed
// `failures` consecutive times (campaign faults and failed probes both
// count). Exposed as a pure function so the schedule is testable.
func probeDelay(failures int) time.Duration {
	if failures <= 1 {
		return probeBackoffBase
	}
	d := probeBackoffBase
	for i := 1; i < failures; i++ {
		d *= 2
		if d >= probeBackoffMax {
			return probeBackoffMax
		}
	}
	return d
}

// PeerStatus is one fleet member's state as reported by /healthz.
type PeerStatus struct {
	URL    string `json:"url"`
	Source string `json:"source"` // "static" | "registered"
	State  string `json:"state"`  // "alive" | "dead" | "probing"
	// ConsecutiveFailures counts campaign faults and failed health
	// probes since the peer last responded; reset on recovery.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// LastError is the most recent fault, kept while the peer is out of
	// rotation; cleared on recovery.
	LastError string `json:"last_error,omitempty"`
	// LeaseExpiresInSeconds is how long the registered peer's heartbeat
	// lease has left; absent for static peers, which never expire.
	LeaseExpiresInSeconds float64 `json:"lease_expires_in_seconds,omitempty"`
}

// peer is one fleet member.
type peer struct {
	url       string
	static    bool
	state     string
	failures  int
	lastErr   string
	nextProbe time.Time
	leaseEnd  time.Time // registered peers only
}

// setState moves the peer through its state machine, counting the
// transition (from "new" on first entry) so /metrics shows each peer's
// alive↔dead↔probing history. Entering rotation zeroes the backoff
// gauge. Callers hold the peerSet lock.
func (p *peer) setState(to string) {
	from := p.state
	if from == to {
		return
	}
	if from == "" {
		from = "new"
	}
	mPeerTransitions.With(p.url, from, to).Inc()
	p.state = to
	if to == peerAlive {
		mProbeBackoff.With(p.url).Set(0)
	}
}

// peerSet is the mutable fleet membership table. All methods are safe
// for concurrent use. Subscribers (in-flight campaign fan-outs) get a
// non-blocking ping whenever a peer enters rotation, so they can spawn
// a worker loop for it mid-campaign.
type peerSet struct {
	mu    sync.Mutex
	peers map[string]*peer
	// order preserves first-appearance order (static config order, then
	// registration order) for deterministic /healthz output.
	order []string
	now   func() time.Time
	subs  map[chan struct{}]struct{}
	// persist, when set, is called (outside the lock) with the full
	// registered-worker URL list after every membership change, so a
	// journal-backed coordinator can spill the fleet for failover
	// adoption. Static peers are configuration and are not included.
	persist func([]string)
}

// setPersist installs the membership spill hook.
func (ps *peerSet) setPersist(fn func([]string)) {
	ps.mu.Lock()
	ps.persist = fn
	ps.mu.Unlock()
}

// persistFlushLocked snapshots the registered (non-static) URLs and
// returns a closure that hands them to the persist hook. Callers hold
// ps.mu and must run the closure after unlocking — the hook does file
// I/O and must not stall the table. Returns nil when no hook is set.
func (ps *peerSet) persistFlushLocked() func() {
	if ps.persist == nil {
		return nil
	}
	urls := make([]string, 0, len(ps.order))
	for _, u := range ps.order {
		if !ps.peers[u].static {
			urls = append(urls, u)
		}
	}
	fn := ps.persist
	return func() { fn(urls) }
}

// normalizeWorkerURL validates and normalises a worker base URL.
func normalizeWorkerURL(raw string) (string, error) {
	w := strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(w)
	if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
		return "", fmt.Errorf("worker %q is not an http(s) base URL", raw)
	}
	return w, nil
}

// newPeerSet builds the table over the static worker URLs (which may be
// empty: an elastic fleet can be populated entirely by registration).
func newPeerSet(static []string) (*peerSet, error) {
	ps := &peerSet{
		peers: make(map[string]*peer),
		now:   time.Now,
		subs:  make(map[chan struct{}]struct{}),
	}
	for _, raw := range static {
		u, err := normalizeWorkerURL(raw)
		if err != nil {
			return nil, fmt.Errorf("coordinator: %w", err)
		}
		if _, dup := ps.peers[u]; dup {
			continue
		}
		p := &peer{url: u, static: true}
		p.setState(peerAlive)
		ps.peers[u] = p
		ps.order = append(ps.order, u)
	}
	return ps, nil
}

// subscribe registers a notification channel pinged (non-blocking)
// whenever a peer enters rotation. The returned cancel must be called
// before the channel is abandoned.
func (ps *peerSet) subscribe(ch chan struct{}) (cancel func()) {
	ps.mu.Lock()
	ps.subs[ch] = struct{}{}
	ps.mu.Unlock()
	return func() {
		ps.mu.Lock()
		delete(ps.subs, ch)
		ps.mu.Unlock()
	}
}

// notifyLocked pings every subscriber. Callers hold ps.mu.
func (ps *peerSet) notifyLocked() {
	for ch := range ps.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// register adds the worker to the fleet (or renews its lease — the
// heartbeat) and returns it to rotation immediately: the announcement
// itself proves liveness. Registering a URL that is already a static
// peer just revives it; the peer stays static and never expires.
func (ps *peerSet) register(raw string, ttl time.Duration) (string, error) {
	u, err := normalizeWorkerURL(raw)
	if err != nil {
		return "", err
	}
	// Deferred in this order so flush (set only on membership change)
	// runs after the unlock: LIFO puts the Unlock first.
	var flush func()
	defer func() {
		if flush != nil {
			flush()
		}
	}()
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.peers[u]
	if !ok {
		p = &peer{url: u}
		ps.peers[u] = p
		ps.order = append(ps.order, u)
		flush = ps.persistFlushLocked()
	}
	if !p.static {
		if ok {
			mLeaseRenewals.Inc()
		}
		p.leaseEnd = ps.now().Add(ttl)
	}
	wasAlive := p.state == peerAlive
	p.setState(peerAlive)
	p.failures = 0
	p.lastErr = ""
	if !wasAlive {
		ps.notifyLocked()
	}
	return u, nil
}

// deregister removes a registered worker from the fleet. Static peers
// cannot be deregistered (they are configuration, not announcements).
func (ps *peerSet) deregister(raw string) error {
	u, err := normalizeWorkerURL(raw)
	if err != nil {
		return err
	}
	var flush func()
	defer func() {
		if flush != nil {
			flush()
		}
	}()
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.peers[u]
	if !ok {
		return fmt.Errorf("worker %s is not registered", u)
	}
	if p.static {
		return fmt.Errorf("worker %s is a static peer; remove it from -peers instead", u)
	}
	ps.removeLocked(u)
	flush = ps.persistFlushLocked()
	return nil
}

// removeLocked drops a peer from the table and the order slice.
func (ps *peerSet) removeLocked(u string) {
	delete(ps.peers, u)
	for i, o := range ps.order {
		if o == u {
			ps.order = append(ps.order[:i], ps.order[i+1:]...)
			break
		}
	}
}

// expireLeases drops registered peers whose heartbeat lease ran out —
// the worker stopped renewing, so it is gone, not merely unhealthy, and
// probing it forever would leak table entries.
func (ps *peerSet) expireLeases() {
	var flush func()
	defer func() {
		if flush != nil {
			flush()
		}
	}()
	ps.mu.Lock()
	defer ps.mu.Unlock()
	now := ps.now()
	for _, u := range append([]string(nil), ps.order...) {
		p := ps.peers[u]
		if !p.static && now.After(p.leaseEnd) {
			mLeaseExpiries.Inc()
			ps.removeLocked(u)
			flush = ps.persistFlushLocked()
		}
	}
}

// markFault takes a peer out of rotation after a campaign fault.
// transient faults (429/503 — the worker is up but refusing work) are
// re-probed at the next prober tick instead of waiting out the backoff,
// since the refusal usually clears as soon as a slot frees.
func (ps *peerSet) markFault(u string, err error, transient bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.peers[u]
	if !ok {
		return
	}
	p.setState(peerDead)
	p.failures++
	if err != nil {
		p.lastErr = err.Error()
	}
	if transient {
		p.nextProbe = ps.now()
		mProbeBackoff.With(u).Set(0)
	} else {
		delay := probeDelay(p.failures)
		p.nextProbe = ps.now().Add(delay)
		mProbeBackoff.With(u).Set(delay.Seconds())
	}
}

// probeCandidates flips every out-of-rotation peer whose backoff has
// elapsed to probing and returns their URLs; the prober owns them until
// it reports back through probeResult.
func (ps *peerSet) probeCandidates() []string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	now := ps.now()
	var due []string
	for _, u := range ps.order {
		p := ps.peers[u]
		if p.state == peerDead && !p.nextProbe.After(now) {
			p.setState(peerProbing)
			due = append(due, u)
		}
	}
	return due
}

// probeResult records a health probe's outcome: success returns the
// peer to rotation (and wakes in-flight campaigns); failure re-arms the
// backoff with one more consecutive failure on the clock.
func (ps *peerSet) probeResult(u string, err error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.peers[u]
	if !ok || p.state != peerProbing {
		// Deregistered, expired, or revived by a re-register while the
		// probe was in flight: nothing to record.
		return
	}
	if err == nil {
		p.setState(peerAlive)
		p.failures = 0
		p.lastErr = ""
		ps.notifyLocked()
		return
	}
	mProbeFailures.With(u).Inc()
	p.setState(peerDead)
	p.failures++
	p.lastErr = err.Error()
	delay := probeDelay(p.failures)
	p.nextProbe = ps.now().Add(delay)
	mProbeBackoff.With(u).Set(delay.Seconds())
}

// alive returns the URLs currently in rotation, in table order.
func (ps *peerSet) alive() []string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	var out []string
	for _, u := range ps.order {
		if ps.peers[u].state == peerAlive {
			out = append(out, u)
		}
	}
	return out
}

// revivable reports whether any out-of-rotation peer could plausibly
// return within one prober cycle: a probe already in flight, or a
// transiently faulted peer whose re-probe is due now. Peers still
// waiting out a backoff (a hard fault like connection refused) do NOT
// count — for those, failing a stranded campaign fast beats making the
// client wait out an arbitrary backoff ladder.
func (ps *peerSet) revivable() bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	now := ps.now()
	for _, u := range ps.order {
		p := ps.peers[u]
		if p.state == peerProbing || (p.state == peerDead && !p.nextProbe.After(now)) {
			return true
		}
	}
	return false
}

// fleetSize returns the number of known peers regardless of state —
// the planning granularity input: a momentarily dead worker still
// deserves shards to steal once it is probed back.
func (ps *peerSet) fleetSize() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.peers)
}

// snapshot reports every peer's state for /healthz in table order:
// static peers first (only newPeerSet inserts them, in configuration
// order), then registered peers in registration order.
func (ps *peerSet) snapshot() []PeerStatus {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	now := ps.now()
	out := make([]PeerStatus, 0, len(ps.order))
	for _, u := range ps.order {
		p := ps.peers[u]
		st := PeerStatus{
			URL:                 p.url,
			Source:              "registered",
			State:               p.state,
			ConsecutiveFailures: p.failures,
			LastError:           p.lastErr,
		}
		if p.static {
			st.Source = "static"
		} else if left := p.leaseEnd.Sub(now).Seconds(); left > 0 {
			st.LeaseExpiresInSeconds = left
		}
		out = append(out, st)
	}
	return out
}
