package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sdpolicy"
	"sdpolicy/internal/journal"
)

// campaignPoints are four distinct canonical points (different seeds),
// so cache-hit accounting maps one miss to one simulated point.
const campaignPointsBody = `{"points":[
	{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"sd","max_slowdown":10}},
	{"workload":"wl5","scale":0.15,"seed":2,"options":{"policy":"sd","max_slowdown":10}},
	{"workload":"wl5","scale":0.15,"seed":3,"options":{"policy":"static"}},
	{"workload":"wl5","scale":0.15,"seed":4,"options":{"policy":"oversubscribe"}}
]}`

const campaignPointCount = 4

func campaignTestPoints(t *testing.T) []sdpolicy.Point {
	t.Helper()
	var req CreateCampaignRequest
	if err := json.Unmarshal([]byte(campaignPointsBody), &req); err != nil {
		t.Fatal(err)
	}
	points, err := sdpolicy.PointsFromSpecs(req.Points)
	if err != nil {
		t.Fatal(err)
	}
	return points
}

// createCampaign POSTs a campaign resource and returns its ID.
func createCampaign(t *testing.T, base, id, body string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/campaigns", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set("X-Campaign-ID", id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	var cr CreateCampaignResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.ID == "" || resp.Header.Get("Location") != "/v1/campaigns/"+cr.ID ||
		resp.Header.Get("X-Campaign-ID") != cr.ID {
		t.Fatalf("create reply inconsistent: id %q, Location %q", cr.ID, resp.Header.Get("Location"))
	}
	return cr.ID
}

// attachLines attaches from the cursor and returns the raw NDJSON
// lines; the stream must end (terminal frame) for this to return.
func attachLines(t *testing.T, base, id string, from uint64) []string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/campaigns/%s?from=%d", base, id, from))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attach: status %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func campaignStatus(t *testing.T, base, id string) CampaignStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/campaigns/" + id + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	var st CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitCampaignState(t *testing.T, base, id, state string) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := campaignStatus(t, base, id)
		if st.State == state {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %q (want %q): %+v", id, st.State, state, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// resultsByIndex decodes every result frame of an NDJSON attach into a
// per-position Result JSON map, asserting no index streams twice.
func resultsByIndex(t *testing.T, lines []string) map[int]string {
	t.Helper()
	out := make(map[int]string)
	for _, l := range lines {
		var f streamFrame
		if err := json.Unmarshal([]byte(l), &f); err != nil {
			t.Fatalf("bad frame %q: %v", l, err)
		}
		if f.Index == nil {
			continue
		}
		if _, dup := out[*f.Index]; dup {
			t.Fatalf("index %d streamed twice", *f.Index)
		}
		b, _ := json.Marshal(f.Result)
		out[*f.Index] = string(b)
	}
	return out
}

func TestCampaignResourceLifecycle(t *testing.T) {
	srv := testServer(t)
	id := createCampaign(t, srv.URL, "life", campaignPointsBody)
	if id != "life" {
		t.Fatalf("client-chosen ID not honoured: %q", id)
	}
	st := waitCampaignState(t, srv.URL, id, campaignDone)
	if st.Points != campaignPointCount || st.Completed != campaignPointCount ||
		st.Seq != campaignPointCount+1 {
		t.Fatalf("terminal status %+v", st)
	}

	lines := attachLines(t, srv.URL, id, 0)
	if len(lines) != campaignPointCount+1 {
		t.Fatalf("%d frames, want %d", len(lines), campaignPointCount+1)
	}
	// Frames carry contiguous seqs from 1, and the terminal is done.
	for i, l := range lines {
		var f streamFrame
		if err := json.Unmarshal([]byte(l), &f); err != nil {
			t.Fatal(err)
		}
		if f.Seq != uint64(i+1) {
			t.Fatalf("frame %d has seq %d", i, f.Seq)
		}
	}
	var last streamFrame
	json.Unmarshal([]byte(lines[len(lines)-1]), &last)
	if last.Done == nil || !*last.Done {
		t.Fatalf("terminal frame %q not done", lines[len(lines)-1])
	}
	// Results match an uninterrupted local run, index for index.
	points := campaignTestPoints(t)
	want, err := sdpolicy.NewEngine(4, 64).Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	got := resultsByIndex(t, lines)
	for i, w := range want {
		wj, _ := json.Marshal(w)
		if got[i] != string(wj) {
			t.Fatalf("index %d: resource %s, local %s", i, got[i], wj)
		}
	}

	// Reattach is byte-identical replay; a ?from= cursor is an exact
	// suffix of the full stream.
	again := attachLines(t, srv.URL, id, 0)
	if strings.Join(again, "\n") != strings.Join(lines, "\n") {
		t.Fatal("reattach replay differs from first attach")
	}
	for from := 1; from <= campaignPointCount; from++ {
		suffix := attachLines(t, srv.URL, id, uint64(from))
		if strings.Join(suffix, "\n") != strings.Join(lines[from:], "\n") {
			t.Fatalf("?from=%d not an exact suffix", from)
		}
	}
	// A cursor at/past the terminal frame re-emits it, never hangs.
	end := attachLines(t, srv.URL, id, campaignPointCount+1)
	if len(end) != 1 || end[0] != lines[len(lines)-1] {
		t.Fatalf("past-the-end attach got %v", end)
	}

	// The SSE encoding carries the same frame bytes in its data lines.
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + id + "?format=sse")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var data []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if l := sc.Text(); strings.HasPrefix(l, "data: ") {
			data = append(data, strings.TrimPrefix(l, "data: "))
		}
	}
	if strings.Join(data, "\n") != strings.Join(lines, "\n") {
		t.Fatal("SSE data lines differ from NDJSON lines")
	}

	// Cancelling a finished campaign is a 200 no-op.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/campaigns/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE after done: status %d", dresp.StatusCode)
	}
}

func TestCampaignResourceErrors(t *testing.T) {
	srv := testServer(t)
	id := createCampaign(t, srv.URL, "errs", campaignPointsBody)
	waitCampaignState(t, srv.URL, id, campaignDone)

	expectEnvelope := func(resp *http.Response, status int, code, campaignID string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != status {
			t.Fatalf("status %d, want %d", resp.StatusCode, status)
		}
		var env ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("not an error envelope: %v", err)
		}
		if env.Error.Code != code || env.Error.Message == "" || env.Error.CampaignID != campaignID {
			t.Fatalf("envelope %+v, want code %q campaign %q", env.Error, code, campaignID)
		}
	}

	// Duplicate create: 409 conflict naming the campaign.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/campaigns", strings.NewReader(campaignPointsBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Campaign-ID", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	expectEnvelope(resp, http.StatusConflict, "conflict", id)

	// Unknown campaign: 404 not_found with the requested ID.
	resp, err = http.Get(srv.URL + "/v1/campaigns/nope/status")
	if err != nil {
		t.Fatal(err)
	}
	expectEnvelope(resp, http.StatusNotFound, "not_found", "nope")

	// Bad cursor: 400 bad_request.
	resp, err = http.Get(srv.URL + "/v1/campaigns/" + id + "?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	expectEnvelope(resp, http.StatusBadRequest, "bad_request", id)

	// Empty point list: 400.
	resp = postJSON(t, srv.URL+"/v1/campaigns", `{"points":[]}`)
	var env ErrorEnvelope
	if resp.StatusCode != http.StatusBadRequest ||
		json.NewDecoder(resp.Body).Decode(&env) != nil || env.Error.Code != "bad_request" {
		t.Fatalf("empty points: status %d, envelope %+v", resp.StatusCode, env)
	}

	// Wrong method on the collection: 405 with the envelope.
	resp, err = http.Get(srv.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	expectEnvelope(resp, http.StatusMethodNotAllowed, "method_not_allowed", "")
}

// TestCampaignCancel parks the campaign behind an occupied simulation
// slot so DELETE races nothing: the cancel lands while the campaign is
// deterministically queued, and the stream ends with a cancelled frame.
func TestCampaignCancel(t *testing.T) {
	s := New(sdpolicy.NewEngine(2, 64), 1)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	s.slots <- struct{}{} // occupy the only slot
	defer func() { <-s.slots }()

	id := createCampaign(t, srv.URL, "cxl", campaignPointsBody)
	if st := campaignStatus(t, srv.URL, id); st.State != campaignRunning {
		t.Fatalf("queued campaign state %q", st.State)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/campaigns/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	st := waitCampaignState(t, srv.URL, id, campaignCancelled)
	if st.Completed != 0 {
		t.Fatalf("cancelled-while-queued campaign completed %d points", st.Completed)
	}
	lines := attachLines(t, srv.URL, id, 0)
	if len(lines) != 1 {
		t.Fatalf("%d frames, want just the cancelled terminal", len(lines))
	}
	var f streamFrame
	json.Unmarshal([]byte(lines[0]), &f)
	if f.Cancelled == nil || !*f.Cancelled || f.Seq != 1 {
		t.Fatalf("terminal frame %q, want cancelled seq 1", lines[0])
	}
}

func TestAliasDeprecationHeaders(t *testing.T) {
	srv := testServer(t)
	resp := postJSON(t, srv.URL+"/v1/campaign", campaignPointsBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alias status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" ||
		!strings.Contains(resp.Header.Get("Link"), "/v1/campaigns") {
		t.Fatalf("alias missing deprecation headers: Deprecation=%q Link=%q",
			resp.Header.Get("Deprecation"), resp.Header.Get("Link"))
	}
}

// TestStandbyGatesCampaignPlane: a journal-backed instance refuses all
// campaign work with 503 until Activate, then serves normally.
func TestStandbyGatesCampaignPlane(t *testing.T) {
	j, err := journal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(sdpolicy.NewEngine(2, 64), 4)
	s.EnableJournal(j)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	expect503 := func(resp *http.Response, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("standby status %d, want 503", resp.StatusCode)
		}
		var env ErrorEnvelope
		if json.NewDecoder(resp.Body).Decode(&env) != nil || env.Error.Code != "unavailable" {
			t.Fatalf("standby envelope %+v", env)
		}
	}
	expect503(http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(campaignPointsBody)))
	expect503(http.Get(srv.URL + "/v1/campaigns/whatever"))
	expect503(http.Post(srv.URL+"/v1/campaign", "application/json", strings.NewReader(campaignPointsBody)))
	if h := fetchHealth(t, srv.URL); h.Role != "standby" {
		t.Fatalf("standby role %q", h.Role)
	}

	s.Activate()
	if h := fetchHealth(t, srv.URL); h.Role != "active" {
		t.Fatalf("activated role %q", h.Role)
	}
	id := createCampaign(t, srv.URL, "post-activate", campaignPointsBody)
	waitCampaignState(t, srv.URL, id, campaignDone)
}

// TestJournalCrashResume is the durability contract end to end: a
// journaled campaign killed mid-flight (simulated by truncating the
// journal to a prefix plus a torn tail, exactly what kill -9 leaves)
// is resumed by a fresh server — replayed frames byte-identical,
// completed points NOT re-simulated, resumed results identical to the
// uninterrupted run's.
func TestJournalCrashResume(t *testing.T) {
	dir := t.TempDir()
	j1, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(sdpolicy.NewEngine(2, 64), 4)
	s1.EnableJournal(j1)
	s1.Activate()
	srv1 := httptest.NewServer(s1.Handler())
	id := createCampaign(t, srv1.URL, "crashme", campaignPointsBody)
	waitCampaignState(t, srv1.URL, id, campaignDone)
	full := attachLines(t, srv1.URL, id, 0)
	reference := resultsByIndex(t, full)
	srv1.Close()

	// Keep the create record and the first two results; drop the rest
	// and tear the tail, as a kill -9 mid-append would.
	path := filepath.Join(dir, id+".journal")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	jlines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(jlines) != campaignPointCount+2 {
		t.Fatalf("journal has %d lines, want %d", len(jlines), campaignPointCount+2)
	}
	const keepResults = 2
	truncated := strings.Join(jlines[:1+keepResults], "\n") + "\n" + `{"seq":` // torn tail
	if err := os.WriteFile(path, []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh server (fresh engine: no cache carry-over) adopts the
	// journal and finishes the campaign.
	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	engine2 := sdpolicy.NewEngine(2, 64)
	s2 := New(engine2, 4)
	s2.EnableJournal(j2)
	stats := s2.Activate()
	if stats.Resumed != 1 || stats.SkippedPoints != keepResults || stats.Completed != 0 {
		t.Fatalf("activation stats %+v, want 1 resumed / %d skipped", stats, keepResults)
	}
	srv2 := httptest.NewServer(s2.Handler())
	t.Cleanup(srv2.Close)

	resumedFull := attachLines(t, srv2.URL, id, 0)
	if len(resumedFull) != campaignPointCount+1 {
		t.Fatalf("resumed stream has %d frames, want %d", len(resumedFull), campaignPointCount+1)
	}
	// The journaled prefix replays byte-identically.
	for i := 0; i < keepResults; i++ {
		if resumedFull[i] != full[i] {
			t.Fatalf("replayed frame %d differs:\n%s\nvs\n%s", i, resumedFull[i], full[i])
		}
	}
	// Every result — replayed or re-run — matches the uninterrupted run.
	resumed := resultsByIndex(t, resumedFull)
	for i := 0; i < campaignPointCount; i++ {
		if resumed[i] != reference[i] {
			t.Fatalf("index %d after resume: %s, want %s", i, resumed[i], reference[i])
		}
	}
	// Zero re-simulation of checkpointed points: the fresh engine saw
	// exactly the remaining points, nothing more.
	if _, misses := engine2.CacheStats(); misses != campaignPointCount-keepResults {
		t.Fatalf("resumed engine simulated %d points, want %d", misses, campaignPointCount-keepResults)
	}
	// The finished journal is terminal: a third activation just loads it.
	j3, _ := journal.Open(dir)
	s3 := New(sdpolicy.NewEngine(2, 64), 4)
	s3.EnableJournal(j3)
	if stats := s3.Activate(); stats.Resumed != 0 || stats.Completed != 1 {
		t.Fatalf("post-resume activation stats %+v, want 1 completed", stats)
	}
}

// cutConn aborts the response after a byte budget, standing in for a
// dropped connection mid-stream.
type cutWriter struct {
	http.ResponseWriter
	remaining *atomic.Int64
}

func (c *cutWriter) Write(p []byte) (int, error) {
	if c.remaining.Add(-int64(len(p))) < 0 {
		panic(http.ErrAbortHandler)
	}
	return c.ResponseWriter.Write(p)
}

func (c *cutWriter) Flush() {
	if fl, ok := c.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// TestDurableClientRidesThroughDisconnect cuts the first attach stream
// after ~one frame; RunDurableCampaign must reattach with its cursor
// and deliver every result exactly once.
func TestDurableClientRidesThroughDisconnect(t *testing.T) {
	s := New(sdpolicy.NewEngine(2, 64), 4)
	inner := s.Handler()
	var attaches atomic.Int64
	var budget atomic.Int64
	budget.Store(300) // roughly one result frame
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/campaigns/") {
			if attaches.Add(1) == 1 {
				inner.ServeHTTP(&cutWriter{ResponseWriter: w, remaining: &budget}, r)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	points := campaignTestPoints(t)
	got := make(map[int]*sdpolicy.Result)
	err := RunDurableCampaign(context.Background(), nil, []string{srv.URL}, points, false,
		func(index int, res *sdpolicy.Result, report json.RawMessage) error {
			if _, dup := got[index]; dup {
				t.Fatalf("index %d emitted twice", index)
			}
			got[index] = res
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != campaignPointCount {
		t.Fatalf("delivered %d results, want %d", len(got), campaignPointCount)
	}
	if attaches.Load() < 2 {
		t.Fatalf("stream was cut but only %d attach(es) happened", attaches.Load())
	}
	want, err := sdpolicy.NewEngine(4, 64).Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		gj, _ := json.Marshal(got[i])
		wj, _ := json.Marshal(w)
		if string(gj) != string(wj) {
			t.Fatalf("index %d: %s, want %s", i, gj, wj)
		}
	}
}

// TestPeerTableFailoverAdoption: a journal-backed coordinator persists
// registered workers; a fresh instance sharing the journal directory
// adopts them on activation.
func TestPeerTableFailoverAdoption(t *testing.T) {
	dir := t.TempDir()
	j1, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(sdpolicy.NewEngine(1, 64), 4)
	s1.EnableJournal(j1)
	if err := s1.EnableCoordinator(CoordinatorConfig{ProbeInterval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s1.BeginShutdown)
	s1.Activate()
	srv1 := httptest.NewServer(s1.Handler())
	t.Cleanup(srv1.Close)
	registerWorker(t, srv1.URL, "http://127.0.0.1:59999", 600)
	if _, err := os.Stat(filepath.Join(dir, "peers.json")); err != nil {
		t.Fatalf("peer table not persisted: %v", err)
	}

	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(sdpolicy.NewEngine(1, 64), 4)
	s2.EnableJournal(j2)
	if err := s2.EnableCoordinator(CoordinatorConfig{ProbeInterval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.BeginShutdown)
	if stats := s2.Activate(); stats.AdoptedPeers != 1 {
		t.Fatalf("activation stats %+v, want 1 adopted peer", stats)
	}
	snap := s2.coord.peers.snapshot()
	if len(snap) != 1 || snap[0].URL != "http://127.0.0.1:59999" || snap[0].Source != "registered" {
		t.Fatalf("adopted peer table %+v", snap)
	}
}
