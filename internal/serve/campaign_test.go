package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdpolicy"
)

// campaignLine is one NDJSON line of a /v1/campaign stream: a result
// line carries Index/Point/Result, a negotiated report line carries
// ReportFor/Report, the single terminal line carries Done or Shutdown
// or Error.
type campaignLine struct {
	Index     *int             `json:"index"`
	Point     *sdpolicy.Point  `json:"point"`
	Result    *sdpolicy.Result `json:"result"`
	ReportFor *int             `json:"report_for"`
	Report    json.RawMessage  `json:"report"`
	Done      bool             `json:"done"`
	Points    int              `json:"points"`
	Shutdown  bool             `json:"shutdown"`
	Error     string           `json:"error"`
}

func decodeLines(t *testing.T, r *bufio.Scanner) []campaignLine {
	t.Helper()
	var lines []campaignLine
	for r.Scan() {
		var l campaignLine
		if err := json.Unmarshal(r.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", r.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestCampaignEndpointNDJSON(t *testing.T) {
	srv := testServer(t)
	body := `{"points":[
		{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"static"}},
		{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"sd","max_slowdown":10}},
		{"workload":"wl1","scale":0.1,"seed":2,"malleable_fraction":0.5,"options":{"policy":"sd"}}
	]}`
	resp := postJSON(t, srv.URL+"/v1/campaign", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := decodeLines(t, bufio.NewScanner(resp.Body))
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 3 results + 1 terminal", len(lines))
	}
	seen := map[int]bool{}
	for _, l := range lines[:3] {
		if l.Index == nil || l.Result == nil || l.Point == nil {
			t.Fatalf("malformed result line: %+v", l)
		}
		if seen[*l.Index] {
			t.Fatalf("index %d streamed twice", *l.Index)
		}
		seen[*l.Index] = true
		if l.Result.Jobs == 0 || l.Result.Makespan == 0 {
			t.Fatalf("implausible result for index %d: %+v", *l.Index, l.Result)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("indices covered: %v", seen)
	}
	last := lines[3]
	if !last.Done || last.Points != 3 || last.Index != nil {
		t.Fatalf("terminal line: %+v", last)
	}
}

func TestCampaignEndpointSSE(t *testing.T) {
	srv := testServer(t)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/campaign", strings.NewReader(
		`{"points":[{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"sd","max_slowdown":10}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	events := strings.Split(strings.TrimSpace(buf.String()), "\n\n")
	if len(events) != 2 {
		t.Fatalf("%d SSE events, want result + done:\n%s", len(events), buf.String())
	}
	if !strings.HasPrefix(events[0], "event: result\ndata: ") {
		t.Fatalf("first event:\n%s", events[0])
	}
	if !strings.HasPrefix(events[1], "event: done\ndata: ") {
		t.Fatalf("terminal event:\n%s", events[1])
	}
	var res sdpolicy.PointResult
	if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.SplitN(events[0], "\ndata: ", 2)[1], "data: ")), &res); err != nil {
		t.Fatal(err)
	}
	if res.Result == nil || res.Result.MalleableStarts == 0 {
		t.Fatalf("implausible SSE result: %+v", res.Result)
	}
}

func TestCampaignStreamsErrorAsTerminalEvent(t *testing.T) {
	srv := testServer(t)
	resp := postJSON(t, srv.URL+"/v1/campaign",
		`{"points":[{"workload":"wl-nope","options":{}}]}`)
	// The stream starts before the point fails, so the HTTP status is
	// 200 and the error arrives in-band.
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lines := decodeLines(t, bufio.NewScanner(resp.Body))
	if len(lines) != 1 || lines[0].Error == "" || lines[0].Done {
		t.Fatalf("terminal error line missing: %+v", lines)
	}
}

func TestCampaignBadRequests(t *testing.T) {
	srv := testServer(t)
	for name, body := range map[string]string{
		"no points":     `{"points":[]}`,
		"no workload":   `{"points":[{"options":{}}]}`,
		"bad fraction":  `{"points":[{"workload":"wl1","malleable_fraction":2,"options":{}}]}`,
		"bad format":    `{"points":[{"workload":"wl1","options":{}}],"format":"xml"}`,
		"unknown field": `{"points":[{"workload":"wl1","options":{}}],"bogus":1}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp := postJSON(t, srv.URL+"/v1/campaign", body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
}

// TestCampaignClientDisconnectCancelsInFlight is the acceptance test
// for prompt mid-simulation cancellation over HTTP: a client that
// reads the first streamed result and disconnects must abort the
// campaign — including the point simulating at that moment — and free
// the request's slot in a small fraction of the campaign's remaining
// runtime.
func TestCampaignClientDisconnectCancelsInFlight(t *testing.T) {
	const points = 12
	engine := sdpolicy.NewEngine(1, 0) // sequential: ~points × point-runtime total
	s := New(engine, 2)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	specs := make([]string, points)
	for i := range specs {
		// Distinct seeds defeat the in-flight coalescing and the cache:
		// every point is a fresh multi-hundred-millisecond simulation.
		specs[i] = fmt.Sprintf(`{"workload":"wl1","scale":0.25,"seed":%d,"options":{"policy":"sd","max_slowdown":10}}`, i+1)
	}
	body := `{"points":[` + strings.Join(specs, ",") + `]}`

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/campaign", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Streaming, not batching: the first result arrives while most of
	// the campaign still hasn't simulated.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first result: %v", sc.Err())
	}
	var first campaignLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil || first.Index == nil {
		t.Fatalf("first line %q: %v", sc.Text(), err)
	}
	if s.campaigns.Load() != 1 || len(s.slots) != 1 {
		t.Fatalf("mid-stream state: campaigns=%d slots=%d", s.campaigns.Load(), len(s.slots))
	}

	cancel() // client disconnects mid-campaign, mid-simulation
	start := time.Now()
	deadline := time.After(10 * time.Second)
	for s.campaigns.Load() != 0 || len(s.slots) != 0 {
		select {
		case <-deadline:
			t.Fatalf("slot not released %v after disconnect: campaigns=%d slots=%d",
				time.Since(start), s.campaigns.Load(), len(s.slots))
		case <-time.After(5 * time.Millisecond):
		}
	}
	// The campaign must have aborted well short of completion: with one
	// worker, at most the finished first point plus the point in flight
	// (and a scheduling-race straggler) may have simulated.
	if _, misses := engine.CacheStats(); misses >= points/2 {
		t.Fatalf("%d of %d points simulated despite disconnect after the first result", misses, points)
	}
}

// TestBeginShutdownEndsStreamWithTerminalEvent: an open campaign
// stream must be completed with an explicit shutdown event — not a cut
// connection — when the server begins shutdown.
func TestBeginShutdownEndsStreamWithTerminalEvent(t *testing.T) {
	engine := sdpolicy.NewEngine(1, 0)
	s := New(engine, 2)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	specs := make([]string, 8)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{"workload":"wl1","scale":0.25,"seed":%d,"options":{"policy":"sd"}}`, i+100)
	}
	resp := postJSON(t, srv.URL+"/v1/campaign", `{"points":[`+strings.Join(specs, ",")+`]}`)
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first result: %v", sc.Err())
	}
	s.BeginShutdown()
	lines := decodeLines(t, sc) // reads to EOF: the response completes
	if len(lines) == 0 {
		t.Fatal("stream ended without a terminal event")
	}
	last := lines[len(lines)-1]
	if !last.Shutdown || last.Error == "" {
		t.Fatalf("terminal line %+v, want shutdown event", last)
	}
}

// TestBeginShutdownRejectsQueuedRequests: a request still waiting for
// a slot when shutdown begins has produced no output yet, so it gets a
// plain 503 instead of blocking Shutdown for the grace period.
func TestBeginShutdownRejectsQueuedRequests(t *testing.T) {
	s := New(sdpolicy.NewEngine(1, 0), 1)
	s.slots <- struct{}{} // the only slot is taken
	s.BeginShutdown()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate",
		strings.NewReader(`{"workload":"wl1","scale":0.1}`))
	s.handleSimulate(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued request during shutdown: status %d, want 503", rec.Code)
	}
}

func TestHealthReportsInFlightCampaigns(t *testing.T) {
	engine := sdpolicy.NewEngine(1, 0)
	s := New(engine, 2)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Enough distinct points that the campaign is reliably observable
	// in flight: a single small sim can finish between two health polls.
	var points []string
	for seed := 1; seed <= 32; seed++ {
		points = append(points,
			fmt.Sprintf(`{"workload":"wl1","scale":1.0,"seed":%d,"options":{"policy":"sd"}}`, seed))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/campaign",
		strings.NewReader(`{"points":[`+strings.Join(points, ",")+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	health := func() Health {
		hr, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		var h Health
		if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	// The campaign holds its slot until its single point finishes or
	// the client goes away; observe it in /healthz while it runs.
	deadline := time.After(10 * time.Second)
	for {
		h := health()
		if h.CampaignsInFlight == 1 && h.InFlight == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("campaign never visible in /healthz: %+v", h)
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()
	deadline = time.After(10 * time.Second)
	for {
		h := health()
		if h.CampaignsInFlight == 0 && h.InFlight == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("in-flight counts stuck after disconnect: %+v", h)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestCampaignDerivationsMatchGoAPIAblation is the HTTP half of the
// derivation refactor's acceptance criterion: a /v1/campaign request
// whose points carry derivation chains must reproduce the Go-API
// ablation helper's rows exactly — the labelled sweeps need nothing
// beyond plain points on the wire.
func TestCampaignDerivationsMatchGoAPIAblation(t *testing.T) {
	const workload, scale = "wl5", 0.2
	const seed = 31
	fracs := []float64{0, 0.5}

	goEngine := sdpolicy.NewEngine(2, 32)
	want, err := goEngine.AblateNodeFeatures(context.Background(), workload, scale, seed, fracs)
	if err != nil {
		t.Fatal(err)
	}

	// The same campaign as plain wire points: the static baseline plus
	// one derived point per variant, exactly as AblateNodeFeatures
	// shapes them.
	points := []sdpolicy.PointSpec{
		{Workload: workload, Scale: scale, Seed: seed, Options: sdpolicy.Options{Policy: "static"}},
	}
	for _, f := range fracs {
		points = append(points, sdpolicy.PointSpec{
			Workload: workload, Scale: scale, Seed: seed,
			Options: sdpolicy.Options{Policy: "sd"},
			Derivations: []sdpolicy.Derivation{
				sdpolicy.TagNodesDerivation("bigmem", 0.5),
				sdpolicy.RequireFeatureDerivation("bigmem", f),
			},
		})
	}
	body, err := json.Marshal(CampaignRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	srv := testServer(t)
	resp := postJSON(t, srv.URL+"/v1/campaign", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lines := decodeLines(t, bufio.NewScanner(resp.Body))
	if len(lines) != len(points)+1 {
		t.Fatalf("%d lines, want %d results + terminal", len(lines), len(points))
	}
	results := make([]*sdpolicy.Result, len(points))
	for _, l := range lines[:len(points)] {
		if l.Index == nil || l.Result == nil {
			t.Fatalf("malformed line %+v", l)
		}
		results[*l.Index] = l.Result
	}
	base := results[0]
	for i, f := range fracs {
		res := results[i+1]
		row := want[i]
		if row.Value != fmt.Sprintf("%.2f", f) {
			t.Fatalf("row %d labels %q, want %.2f", i, row.Value, f)
		}
		if got := res.AvgSlowdown / base.AvgSlowdown; got != row.AvgSlowdown {
			t.Fatalf("frac %v: slowdown %v over HTTP, %v via Go API", f, got, row.AvgSlowdown)
		}
		if got := res.AvgResponse / base.AvgResponse; got != row.AvgResponse {
			t.Fatalf("frac %v: response %v over HTTP, %v via Go API", f, got, row.AvgResponse)
		}
		if got := float64(res.Makespan) / float64(base.Makespan); got != row.Makespan {
			t.Fatalf("frac %v: makespan %v over HTTP, %v via Go API", f, got, row.Makespan)
		}
	}

	// Echoed points must round-trip: resubmitting the streamed point
	// reproduces its result from cache.
	echoed, err := json.Marshal(CampaignRequest{Points: []sdpolicy.PointSpec{points[1]}})
	if err != nil {
		t.Fatal(err)
	}
	resp2 := postJSON(t, srv.URL+"/v1/campaign", string(echoed))
	lines2 := decodeLines(t, bufio.NewScanner(resp2.Body))
	if len(lines2) != 2 || lines2[0].Result == nil {
		t.Fatalf("resubmit lines: %+v", lines2)
	}
	if lines2[0].Result.AvgSlowdown != results[1].AvgSlowdown {
		t.Fatal("resubmitted derived point diverged")
	}

	// Invalid derivations are a 400, not a stream.
	bad := postJSON(t, srv.URL+"/v1/campaign",
		`{"points":[{"workload":"wl5","derivations":[{"op":"warp","fraction":0.5}],"options":{}}]}`)
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid derivation: status %d", bad.StatusCode)
	}
}
