package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sdpolicy"
)

// testServer shares one engine per test binary: endpoints hit the same
// cache, which is exactly the production topology.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(sdpolicy.NewEngine(4, 64), 4).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestSimulateEndpoint(t *testing.T) {
	srv := testServer(t)
	resp := postJSON(t, srv.URL+"/v1/simulate",
		`{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"sd","max_slowdown":10}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res sdpolicy.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Workload == "" || res.Jobs == 0 || res.Makespan == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Policy != "sd-policy" {
		t.Fatalf("policy %q, want sd-policy", res.Policy)
	}
	if res.MalleableStarts == 0 {
		t.Fatal("SD run reported no malleable starts")
	}
}

func TestSimulateIsCachedAndDeterministic(t *testing.T) {
	srv := testServer(t)
	body := `{"workload":"wl1","scale":0.1,"seed":7,"options":{"policy":"sd"}}`
	read := func() string {
		resp := postJSON(t, srv.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.String()
	}
	first, second := read(), read()
	if first != second {
		t.Fatalf("repeated request differs:\n%s\nvs\n%s", first, second)
	}
	// The repeat must be a cache hit, visible in /healthz.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 4 {
		t.Fatalf("health: %+v", h)
	}
	if h.CacheHits == 0 {
		t.Fatalf("no cache hit recorded after identical request: %+v", h)
	}
}

func TestSimulateMalleableFraction(t *testing.T) {
	srv := testServer(t)
	resp := postJSON(t, srv.URL+"/v1/simulate",
		`{"workload":"wl1","scale":0.1,"seed":1,"malleable_fraction":0,"options":{"policy":"sd"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res sdpolicy.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	// With zero malleable jobs SD-Policy cannot co-schedule anything.
	if res.MalleableStarts != 0 {
		t.Fatalf("all-rigid workload had %d malleable starts", res.MalleableStarts)
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv := testServer(t)
	resp := postJSON(t, srv.URL+"/v1/sweep", `{"workloads":["wl5"],"scale":0.15,"seed":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	want := len(sdpolicy.MaxSDVariants())
	if len(sr.Rows) != want {
		t.Fatalf("%d rows, want %d", len(sr.Rows), want)
	}
	for _, row := range sr.Rows {
		if row.Workload != "wl5" || row.AvgSlowdown <= 0 {
			t.Fatalf("bad row: %+v", row)
		}
	}
	// Cross-check against the library path: must agree exactly.
	rows, err := sdpolicy.SweepMaxSD([]string{"wl5"}, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != sr.Rows[i] {
			t.Fatalf("row %d: HTTP %+v != library %+v", i, sr.Rows[i], rows[i])
		}
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"missing workload", "/v1/simulate", `{"scale":0.1}`, http.StatusBadRequest},
		{"unknown workload", "/v1/simulate", `{"workload":"wl99","scale":0.1}`, http.StatusBadRequest},
		{"bad scale", "/v1/simulate", `{"workload":"wl1","scale":2}`, http.StatusBadRequest},
		{"bad policy", "/v1/simulate", `{"workload":"wl1","scale":0.1,"options":{"policy":"nope"}}`, http.StatusBadRequest},
		{"malformed json", "/v1/simulate", `{`, http.StatusBadRequest},
		{"unknown field", "/v1/simulate", `{"workload":"wl1","bogus":1}`, http.StatusBadRequest},
		{"fraction above 1", "/v1/simulate", `{"workload":"wl1","scale":0.1,"malleable_fraction":2}`, http.StatusBadRequest},
		{"negative fraction", "/v1/simulate", `{"workload":"wl1","scale":0.1,"malleable_fraction":-0.5}`, http.StatusBadRequest},
		{"missing workloads", "/v1/sweep", `{"scale":0.1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, srv.URL+tc.path, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			var env ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Message == "" {
				t.Fatalf("error envelope missing: %v (%+v)", err, env)
			}
			if env.Error.Code != "bad_request" {
				t.Fatalf("error code %q, want bad_request", env.Error.Code)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET simulate: status %d", resp.StatusCode)
	}
	r2 := postJSON(t, srv.URL+"/healthz", `{}`)
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST healthz: status %d", r2.StatusCode)
	}
}

func TestConcurrentIdenticalRequestsSimulateOnce(t *testing.T) {
	engine := sdpolicy.NewEngine(4, 64)
	srv := httptest.NewServer(New(engine, 8).Handler())
	defer srv.Close()
	body := `{"workload":"wl1","scale":0.08,"seed":3,"options":{"policy":"sd","max_slowdown":10}}`
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(srv.URL+"/v1/simulate", "application/json",
				strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = &http.ProtocolError{ErrorString: resp.Status}
				}
			}
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	_, misses := engine.CacheStats()
	if misses != 1 {
		t.Fatalf("%d simulations for %d identical requests, want 1", misses, n)
	}
}
