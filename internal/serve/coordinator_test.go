package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sdpolicy"
)

// coordCampaignBody is a fixed-seed campaign exercising everything the
// fan-out must preserve: duplicate points (the shared static baseline),
// a legacy malleable_fraction spelling, a derivation chain, and a
// distinct seed.
const coordCampaignBody = `{"points":[
	{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"static"}},
	{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"sd","max_slowdown":10}},
	{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"static"}},
	{"workload":"wl5","scale":0.15,"seed":1,"malleable_fraction":0.5,"options":{"policy":"sd"}},
	{"workload":"wl5","scale":0.15,"seed":1,"options":{"policy":"sd"},
	 "derivations":[{"op":"tag_nodes","fraction":0.5,"feature":"bigmem"},
	                {"op":"require_feature","fraction":0.3,"feature":"bigmem"}]},
	{"workload":"wl5","scale":0.15,"seed":2,"options":{"policy":"oversubscribe"}}
]}`

// coordReferenceResults runs the same campaign on a local engine.
func coordReferenceResults(t *testing.T) []*sdpolicy.Result {
	t.Helper()
	var req CampaignRequest
	if err := json.Unmarshal([]byte(coordCampaignBody), &req); err != nil {
		t.Fatal(err)
	}
	points, err := sdpolicy.PointsFromSpecs(req.Points)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sdpolicy.NewEngine(4, 64).Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// startWorkers launches n worker sdserve instances, each with its own
// engine (separate-process stand-ins), returning their base URLs.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv := httptest.NewServer(New(sdpolicy.NewEngine(2, 64), 4).Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// startCoordinator launches a coordinator sdserve over the workers.
// The probe interval is an hour — effectively disabling the health
// prober — so these tests exercise the PR 4 fan-out semantics (a dead
// worker stays dead for the campaign); the elastic behaviours get
// their own coverage with short intervals in elastic_test.go.
func startCoordinator(t *testing.T, workerURLs []string) *httptest.Server {
	t.Helper()
	srv, _ := startCoordinatorCfg(t, CoordinatorConfig{
		Workers:       workerURLs,
		ProbeInterval: time.Hour,
	})
	return srv
}

// startCoordinatorCfg launches a coordinator with full config control,
// returning the underlying Server too. BeginShutdown is registered as
// cleanup so the background prober never outlives the test.
func startCoordinatorCfg(t *testing.T, cfg CoordinatorConfig) (*httptest.Server, *Server) {
	t.Helper()
	s := New(sdpolicy.NewEngine(1, 64), 4)
	if err := s.EnableCoordinator(cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.BeginShutdown)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, s
}

// runCoordinatorCampaign posts the fixed campaign and returns the
// per-position results, asserting stream shape: each index exactly
// once, then one done terminal.
func runCoordinatorCampaign(t *testing.T, url string) []*sdpolicy.Result {
	t.Helper()
	resp := postJSON(t, url+"/v1/campaign", coordCampaignBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lines := decodeLines(t, bufio.NewScanner(resp.Body))
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	last := lines[len(lines)-1]
	if !last.Done || last.Error != "" {
		t.Fatalf("terminal line %+v, want done", last)
	}
	const points = 6
	if last.Points != points {
		t.Fatalf("terminal counts %d points, want %d", last.Points, points)
	}
	results := make([]*sdpolicy.Result, points)
	for _, l := range lines[:len(lines)-1] {
		if l.Index == nil || l.Result == nil {
			t.Fatalf("malformed result line %+v", l)
		}
		if results[*l.Index] != nil {
			t.Fatalf("index %d streamed twice", *l.Index)
		}
		results[*l.Index] = l.Result
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("index %d never streamed", i)
		}
	}
	return results
}

func assertResultsMatch(t *testing.T, got, want []*sdpolicy.Result) {
	t.Helper()
	for i := range want {
		gotJSON, _ := json.Marshal(got[i])
		wantJSON, _ := json.Marshal(want[i])
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("point %d: coordinator %s, local %s", i, gotJSON, wantJSON)
		}
	}
}

// TestCoordinatorMatchesLocalRun: a campaign fanned out across three
// workers re-merges into exactly the single-process results.
func TestCoordinatorMatchesLocalRun(t *testing.T) {
	coord := startCoordinator(t, startWorkers(t, 3))
	assertResultsMatch(t, runCoordinatorCampaign(t, coord.URL), coordReferenceResults(t))
}

// TestCoordinatorSurvivesDeadWorker: one worker is down before the
// campaign starts; its shard requeues to the survivors and the merged
// output is unchanged.
func TestCoordinatorSurvivesDeadWorker(t *testing.T) {
	urls := startWorkers(t, 2)
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close() // connection refused from the first dial
	coord := startCoordinator(t, append(urls, dead.URL))
	assertResultsMatch(t, runCoordinatorCampaign(t, coord.URL), coordReferenceResults(t))
}

// cutAfterFirstResult wraps a worker's ResponseWriter and kills the
// connection right after the first streamed result line — the
// mid-campaign worker crash.
type cutAfterFirstResult struct {
	http.ResponseWriter
	lines int
}

func (c *cutAfterFirstResult) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	for _, b := range p[:n] {
		if b == '\n' {
			c.lines++
		}
	}
	if c.lines >= 1 {
		panic(http.ErrAbortHandler)
	}
	return n, err
}

func (c *cutAfterFirstResult) Flush() {
	if fl, ok := c.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// TestCoordinatorSurvivesMidStreamWorkerCrash: a worker that dies after
// delivering part of its shard is retired, the already-delivered
// results are not duplicated, and the unresolved remainder completes on
// the survivors — output still identical to a local run.
func TestCoordinatorSurvivesMidStreamWorkerCrash(t *testing.T) {
	urls := startWorkers(t, 2)
	flakyInner := New(sdpolicy.NewEngine(2, 64), 4).Handler()
	var flakyHits atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		flakyHits.Add(1)
		flakyInner.ServeHTTP(&cutAfterFirstResult{ResponseWriter: w}, r)
	}))
	t.Cleanup(flaky.Close)
	coord := startCoordinator(t, append(urls, flaky.URL))
	assertResultsMatch(t, runCoordinatorCampaign(t, coord.URL), coordReferenceResults(t))
	if flakyHits.Load() != 1 {
		t.Fatalf("crashed worker was contacted %d times, want exactly 1 (marked dead after the crash)", flakyHits.Load())
	}
}

// TestCoordinatorAllWorkersDead: with no survivors the stream ends in a
// terminal error event, not a hang.
func TestCoordinatorAllWorkersDead(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close()
	coord := startCoordinator(t, []string{dead.URL})
	resp := postJSON(t, coord.URL+"/v1/campaign", coordCampaignBody)
	lines := decodeLines(t, bufio.NewScanner(resp.Body))
	if len(lines) != 1 || lines[0].Error == "" {
		t.Fatalf("lines %+v, want a single terminal error", lines)
	}
}

// TestCoordinatorPropagatesDeterministicErrors: a failure every worker
// would reproduce (unknown workload) aborts the campaign instead of
// burning through the fleet with retries.
func TestCoordinatorPropagatesDeterministicErrors(t *testing.T) {
	urls := startWorkers(t, 2)
	coord := startCoordinator(t, urls)
	resp := postJSON(t, coord.URL+"/v1/campaign",
		`{"points":[{"workload":"wl-nope","options":{}}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (error should arrive in-band)", resp.StatusCode)
	}
	lines := decodeLines(t, bufio.NewScanner(resp.Body))
	if len(lines) != 1 || lines[0].Error == "" {
		t.Fatalf("lines %+v, want a single terminal error", lines)
	}
}

// TestCoordinatorHealthListsPeers: /healthz advertises the fleet with
// per-peer state.
func TestCoordinatorHealthListsPeers(t *testing.T) {
	urls := startWorkers(t, 2)
	coord := startCoordinator(t, urls)
	resp, err := http.Get(coord.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if len(h.Peers) != 2 {
		t.Fatalf("healthz peers %v, want the 2 workers", h.Peers)
	}
	for _, p := range h.Peers {
		if p.Source != "static" || p.State != "alive" {
			t.Fatalf("static configured peer reported %+v, want alive static", p)
		}
	}
}

// TestEnableCoordinatorRejectsBadURLs: misconfiguration fails at
// startup, not on the first campaign. An empty static list is NOT a
// misconfiguration any more — the fleet can be populated entirely by
// registration — but a campaign against the still-empty fleet fails
// in-band.
func TestEnableCoordinatorRejectsBadURLs(t *testing.T) {
	for _, urls := range [][]string{
		{"not a url"},
		{"ftp://example.com"},
		{"http://"},
	} {
		s := New(sdpolicy.NewEngine(1, 0), 1)
		if err := s.EnableCoordinator(CoordinatorConfig{Workers: urls, ProbeInterval: time.Hour}); err == nil {
			t.Fatalf("EnableCoordinator(%v) accepted", urls)
		}
	}
	coord, _ := startCoordinatorCfg(t, CoordinatorConfig{ProbeInterval: time.Hour})
	resp := postJSON(t, coord.URL+"/v1/campaign", coordCampaignBody)
	lines := decodeLines(t, bufio.NewScanner(resp.Body))
	if len(lines) != 1 || lines[0].Error == "" {
		t.Fatalf("campaign on an empty fleet: lines %+v, want a single terminal error", lines)
	}
}
