package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client side of the /v1/experiments wire form, backing sdexp
// -experiment -server. It follows the RunDurableCampaign discipline:
// create once with a client-chosen campaign ID (a 409 means an earlier
// cut-off attempt already won), then attach with ?from=<last seq> and
// ride through disconnects, shutdown frames and failovers by rotating
// across the given bases.

// expFrame decodes any line of a /v1/experiments/{id} NDJSON stream.
type expFrame struct {
	Seq       uint64          `json:"seq"`
	Row       json.RawMessage `json:"row"`
	Done      *bool           `json:"done"`
	Summary   json.RawMessage `json:"summary"`
	Cancelled *bool           `json:"cancelled"`
	Shutdown  *bool           `json:"shutdown"`
	Error     *ErrorDetail    `json:"error"`
}

// RunRemoteExperiment creates the named experiment (params marshals as
// the request's params object; nil means all defaults) on one of the
// equivalent server bases and streams its reduced view, calling onRow
// (when non-nil) for each incremental row in stream order and returning
// the terminal summary's raw JSON — byte-identical to
// json.Marshal of the local Engine helper's return value, which is what
// lets sdexp render remote runs through the same code paths as local
// ones. Transient interruptions reattach from the row cursor, so rows
// are delivered exactly once; deterministic failures (unknown
// experiment, bad params, cancellation, the experiment's own terminal
// error) abort.
func RunRemoteExperiment(ctx context.Context, client *http.Client, bases []string, experiment string, params any, onRow func(row json.RawMessage)) (json.RawMessage, error) {
	if client == nil {
		client = http.DefaultClient
	}
	if len(bases) == 0 {
		return nil, errors.New("no server bases")
	}
	for i, b := range bases {
		bases[i] = strings.TrimRight(b, "/")
	}
	id := newCampaignID()
	cur, failures := 0, 0
	transient := func(err error) error {
		failures++
		if failures >= durableMaxFailures {
			return fmt.Errorf("giving up after %d consecutive failures: %w", failures, err)
		}
		cur = (cur + 1) % len(bases)
		delay := durableBackoffBase << (failures - 1)
		if delay > durableBackoffMax || delay <= 0 {
			delay = durableBackoffMax
		}
		select {
		case <-time.After(delay):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	body, err := json.Marshal(struct {
		Experiment string `json:"experiment"`
		Params     any    `json:"params,omitempty"`
	}{Experiment: experiment, Params: params})
	if err != nil {
		return nil, err
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			bases[cur]+"/v1/experiments", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Campaign-ID", id)
		resp, err := client.Do(req)
		if err == nil {
			status := resp.StatusCode
			var ferr error
			if status != http.StatusCreated && status != http.StatusConflict {
				ferr = readError(bases[cur], resp)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if ferr == nil {
				break
			}
			if status == http.StatusBadRequest || status == http.StatusNotFound ||
				status == http.StatusMethodNotAllowed || status == http.StatusUnsupportedMediaType {
				return nil, ferr
			}
			err = ferr
		}
		if terr := transient(err); terr != nil {
			return nil, terr
		}
	}

	var lastSeq uint64
	for {
		summary, ferr := func() (json.RawMessage, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet,
				fmt.Sprintf("%s/v1/experiments/%s?from=%d", bases[cur], id, lastSeq), nil)
			if err != nil {
				return nil, err
			}
			resp, err := client.Do(req)
			if err != nil {
				return nil, err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err := readError(bases[cur], resp)
				if resp.StatusCode == http.StatusBadRequest {
					return nil, &fatalStreamError{err}
				}
				return nil, err
			}
			dec := json.NewDecoder(resp.Body)
			for {
				var f expFrame
				if err := dec.Decode(&f); err != nil {
					return nil, fmt.Errorf("%s: stream ended early: %w", bases[cur], err)
				}
				if f.Seq > 0 {
					lastSeq = f.Seq
					failures = 0
				}
				switch {
				case len(f.Row) > 0:
					// The ?from= cursor already deduplicates rows across
					// reattaches: the server only emits seqs past it.
					if onRow != nil {
						onRow(f.Row)
					}
				case f.Done != nil && *f.Done:
					return f.Summary, nil
				case f.Cancelled != nil && *f.Cancelled:
					return nil, &fatalStreamError{fmt.Errorf("experiment %s was cancelled", id)}
				case f.Error != nil && f.Seq > 0:
					return nil, &fatalStreamError{fmt.Errorf("experiment %s failed: %s: %s", id, f.Error.Code, f.Error.Message)}
				case f.Shutdown != nil && *f.Shutdown:
					return nil, fmt.Errorf("%s shut down mid-stream", bases[cur])
				}
			}
		}()
		if ferr == nil {
			return summary, nil
		}
		var fatal *fatalStreamError
		if errors.As(ferr, &fatal) {
			return nil, fatal.err
		}
		if terr := transient(ferr); terr != nil {
			return nil, terr
		}
	}
}
