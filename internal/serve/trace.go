package serve

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// Campaign-scoped tracing. Every /v1/campaign request gets a campaign
// ID — client-supplied via the X-Campaign-ID header, else generated —
// that is echoed on the response, propagated on coordinator→worker
// hops, and stamped into the structured log lines on every node that
// touches the campaign. With ?trace=1 the stream additionally ends
// with a "trace" frame, emitted just before the terminal event,
// summarizing where the campaign's wall-clock went: one span per shard
// attempt (which peer, how many points, start/end offsets, how many
// times the shard had been requeued before this attempt) plus a
// per-peer rollup.

// maxCampaignIDLen bounds client-supplied IDs so log lines and metric
// payloads stay sane.
const maxCampaignIDLen = 64

// newCampaignID returns a fresh random campaign ID (16 hex chars).
func newCampaignID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; here a
		// time-derived fallback keeps campaigns traceable regardless.
		return "c" + hex.EncodeToString([]byte(time.Now().Format("150405.000")))
	}
	return hex.EncodeToString(b[:])
}

// canonicalCampaignID validates a client-supplied ID, falling back to a
// generated one when the header is absent or unusable. Accepted IDs are
// 1..64 chars drawn from [A-Za-z0-9._-]: enough for UUIDs, ULIDs and
// CI job names, and safe to embed in logs, headers and label values.
func canonicalCampaignID(supplied string) string {
	if supplied == "" || len(supplied) > maxCampaignIDLen {
		return newCampaignID()
	}
	for i := 0; i < len(supplied); i++ {
		c := supplied[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return newCampaignID()
		}
	}
	return supplied
}

// ShardSpan is one shard attempt in a campaign trace: which peer ran
// it, how many points it carried, when it started and ended relative to
// the campaign, and how many times the shard had been requeued before
// this attempt (its steal count). A failed attempt carries the error.
type ShardSpan struct {
	Peer    string  `json:"peer"`
	Points  int     `json:"points"`
	StartMS float64 `json:"start_ms"`
	EndMS   float64 `json:"end_ms"`
	Steals  int     `json:"steals,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// PeerTrace is the per-peer rollup of a campaign trace.
type PeerTrace struct {
	Peer   string  `json:"peer"`
	Shards int     `json:"shards"`
	Points int     `json:"points"`
	BusyMS float64 `json:"busy_ms"`
	Errors int     `json:"errors"`
}

// TraceFrame is the terminal ?trace=1 stream frame (SSE event "trace" /
// NDJSON line with "trace":true), written immediately before the
// done/error/shutdown event.
type TraceFrame struct {
	Trace      bool        `json:"trace"`
	CampaignID string      `json:"campaign_id"`
	DurationMS float64     `json:"duration_ms"`
	Points     int         `json:"points"`
	Shards     []ShardSpan `json:"shards,omitempty"`
	Peers      []PeerTrace `json:"peers,omitempty"`
}

// traceRecorder accumulates shard spans for one campaign. A nil
// recorder is valid and records nothing, so untraced campaigns pay a
// single nil check per shard.
type traceRecorder struct {
	start time.Time
	mu    sync.Mutex
	spans []ShardSpan
}

func newTraceRecorder() *traceRecorder { return &traceRecorder{start: time.Now()} }

// record adds one shard attempt. begin is the attempt's own start time;
// offsets are computed against the campaign start.
func (tr *traceRecorder) record(peer string, points, steals int, begin time.Time, err error) {
	if tr == nil {
		return
	}
	span := ShardSpan{
		Peer:    peer,
		Points:  points,
		StartMS: float64(begin.Sub(tr.start).Microseconds()) / 1000,
		EndMS:   float64(time.Since(tr.start).Microseconds()) / 1000,
		Steals:  steals,
	}
	if err != nil {
		span.Error = err.Error()
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, span)
	tr.mu.Unlock()
}

// frame snapshots the recorder into the terminal trace frame: spans
// sorted by start offset, peers rolled up and sorted by name.
func (tr *traceRecorder) frame(campaignID string, points int) TraceFrame {
	f := TraceFrame{Trace: true, CampaignID: campaignID, Points: points}
	if tr == nil {
		return f
	}
	f.DurationMS = float64(time.Since(tr.start).Microseconds()) / 1000
	tr.mu.Lock()
	f.Shards = append([]ShardSpan(nil), tr.spans...)
	tr.mu.Unlock()
	sort.SliceStable(f.Shards, func(i, j int) bool { return f.Shards[i].StartMS < f.Shards[j].StartMS })
	byPeer := make(map[string]*PeerTrace)
	for _, s := range f.Shards {
		pt := byPeer[s.Peer]
		if pt == nil {
			pt = &PeerTrace{Peer: s.Peer}
			byPeer[s.Peer] = pt
		}
		pt.Shards++
		pt.Points += s.Points
		pt.BusyMS += s.EndMS - s.StartMS
		if s.Error != "" {
			pt.Errors++
		}
	}
	names := make([]string, 0, len(byPeer))
	for n := range byPeer {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f.Peers = append(f.Peers, *byPeer[n])
	}
	return f
}
