package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sdpolicy"
	"sdpolicy/internal/journal"
	"sdpolicy/internal/reducer"
)

// Resource-oriented campaigns: POST /v1/campaigns creates a campaign
// that runs detached from any client connection, GET /v1/campaigns/{id}
// attaches to its stream — resumable from any frame via the ?from=<seq>
// cursor, since every frame carries a monotonic seq — and DELETE
// cancels it. Frames are buffered for the campaign's lifetime (and,
// with EnableJournal, write-ahead journaled), so a client that
// disconnects mid-stream reattaches with ?from= and misses nothing,
// and a journal-backed server that restarts — or a standby that adopts
// the journal after coordinator failover — replays the exact frames
// already emitted and finishes only the positions without a journaled
// result. The replayed prefix is byte-identical to the original
// stream; resumed frames continue its seq sequence.
//
// Stream frames (SSE event name / NDJSON line):
//
//	result    {"seq":N,"index":i,"point":...,"result":...}
//	report    {"seq":N,"report_for":i,"report":...}   (Reports: true)
//	done      {"seq":N,"done":true,"points":K}        terminal
//	error     {"seq":N,"error":{code,message,campaign_id}}  terminal
//	cancelled {"seq":N,"cancelled":true}              terminal
//	shutdown  {"shutdown":true,...}  transport-level, no seq: the
//	          serving process is going away; reattach (elsewhere) to
//	          continue from your cursor.

// Campaign resource states, as reported by GET /v1/campaigns/{id}/status.
const (
	campaignRunning   = "running"
	campaignDone      = "done"
	campaignFailed    = "failed"
	campaignCancelled = "cancelled"
)

// CreateCampaignRequest is the POST /v1/campaigns body. Unlike the
// deprecated alias it has no Format field: the encoding is chosen per
// attach, not per campaign.
type CreateCampaignRequest struct {
	Points []sdpolicy.PointSpec `json:"points"`
	// Reports adds a per-job report frame after each result, so an
	// attaching client can warm a local result cache (Engine.Prime)
	// with entries equivalent to locally simulated ones.
	Reports bool `json:"reports,omitempty"`
}

// CreateCampaignResponse is the 201 body; the Location header carries
// the same resource path.
type CreateCampaignResponse struct {
	ID string `json:"id"`
}

// CampaignStatus is the GET /v1/campaigns/{id}/status reply.
type CampaignStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // running | done | failed | cancelled
	// Points is the campaign's size; Completed how many have a result
	// frame; Seq the last emitted frame's sequence number (an attach
	// cursor of Seq skips everything already seen).
	Points    int    `json:"points"`
	Completed int    `json:"completed"`
	Seq       uint64 `json:"seq"`
	// CancelRequested is set between DELETE and the cancellation
	// actually landing (typically milliseconds later).
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Error carries the terminal failure message when State is failed.
	Error string `json:"error,omitempty"`
}

// frame is one emitted stream frame: the exact bytes every attacher
// (and the journal) sees. frames[i].seq == i+1 always, so the ?from=
// cursor is an index into the slice.
type frame struct {
	seq   uint64
	event string
	data  json.RawMessage
}

// terminalEvent mirrors journal.TerminalKind for frame event names.
func terminalEvent(event string) bool { return journal.TerminalKind(event) }

// campaignState is one campaign resource. The mutex guards frames,
// state, completed, cancelRequested and errMsg; frames are appended by
// exactly one goroutine (the campaign runner), while any number of
// attached streams read them.
type campaignState struct {
	id      string
	points  []sdpolicy.Point
	reports bool
	// experiment, when non-empty, names the registry experiment this
	// campaign backs; expParams is its resolved parameter set, used to
	// build a fresh fold instance per /v1/experiments/{id} attach.
	experiment string
	expParams  reducer.Params
	// begin is when the (most recent) runner started, for the
	// experiment duration histogram.
	begin time.Time

	mu        sync.Mutex
	frames    []frame
	state     string
	completed int
	errMsg    string
	// wake is closed and replaced on every append; attachers wait on it.
	wake chan struct{}
	// cancel aborts the running campaign (nil once recovered terminal).
	cancel          context.CancelFunc
	cancelRequested bool
	// w journals every appended frame; nil without EnableJournal.
	w *journal.Writer
}

func newCampaignState(id string, points []sdpolicy.Point, reports bool) *campaignState {
	return &campaignState{
		id:      id,
		points:  points,
		reports: reports,
		state:   campaignRunning,
		wake:    make(chan struct{}),
	}
}

func (cs *campaignState) statusLocked() CampaignStatus {
	st := CampaignStatus{
		ID:              cs.id,
		State:           cs.state,
		Points:          len(cs.points),
		Completed:       cs.completed,
		CancelRequested: cs.cancelRequested,
		Error:           cs.errMsg,
	}
	if n := len(cs.frames); n > 0 {
		st.Seq = cs.frames[n-1].seq
	}
	return st
}

func (cs *campaignState) status() CampaignStatus {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.statusLocked()
}

// campaignRegistry maps campaign IDs to their states.
type campaignRegistry struct {
	mu   sync.Mutex
	byID map[string]*campaignState
}

func newCampaignRegistry() *campaignRegistry {
	return &campaignRegistry{byID: make(map[string]*campaignState)}
}

// add inserts cs unless the ID is taken; reports whether it won.
func (cr *campaignRegistry) add(cs *campaignState) bool {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	if _, dup := cr.byID[cs.id]; dup {
		return false
	}
	cr.byID[cs.id] = cs
	return true
}

func (cr *campaignRegistry) get(id string) *campaignState {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return cr.byID[id]
}

func (cr *campaignRegistry) remove(id string) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	delete(cr.byID, id)
}

// EnableJournal makes every /v1/campaigns resource write-ahead
// journaled in j and demotes the instance to standby: the campaign
// plane (resources and the deprecated alias) answers 503 until
// Activate is called — by cmd/sdserve, once it holds the journal
// directory's coordinator lease. Call before EnableCoordinator and
// before serving requests.
func (s *Server) EnableJournal(j *journal.Journal) {
	s.journal = j
	s.active.Store(false)
	mLeaseHeld.Set(0)
	if s.coord != nil {
		s.coord.peers.setPersist(s.persistPeers)
	}
}

// persistPeers is the peer set's membership hook: it spills the
// registered-worker table into the journal directory so a standby
// adopts the fleet along with the campaigns. Standbys don't persist —
// only the lease holder owns peers.json.
func (s *Server) persistPeers(urls []string) {
	if !s.active.Load() {
		return
	}
	if err := s.journal.SavePeers(urls); err != nil {
		slog.Error("journal: persisting peer table", "err", err)
	}
}

// ActivationStats summarises what Activate adopted.
type ActivationStats struct {
	// AdoptedPeers is how many persisted workers re-entered the fleet.
	AdoptedPeers int
	// Resumed counts incomplete journaled campaigns restarted;
	// SkippedPoints their already-journaled results not re-dispatched.
	// Completed counts terminal journaled campaigns loaded read-only
	// (attachable and replayable, nothing to run).
	Resumed       int
	SkippedPoints int
	Completed     int
}

// Activate opens the campaign plane on a journal-backed instance: it
// adopts the persisted peer table into the coordinator's fleet,
// recovers every journaled campaign (terminal ones become attachable
// replays; incomplete ones resume, dispatching only positions without
// a journaled result), and starts answering campaign requests. The
// caller must hold the journal directory's coordinator lease — that is
// what makes exactly one instance active. Safe to call on an instance
// without EnableJournal (it just marks the plane active).
func (s *Server) Activate() ActivationStats {
	var stats ActivationStats
	if s.journal == nil {
		s.active.Store(true)
		return stats
	}
	if s.coord != nil {
		urls, err := s.journal.LoadPeers()
		if err != nil {
			slog.Error("journal: loading persisted peer table", "err", err)
		}
		for _, u := range urls {
			if _, err := s.coord.peers.register(u, s.coord.leaseTTL); err != nil {
				slog.Warn("journal: adopted peer rejected", "peer", u, "err", err)
				continue
			}
			stats.AdoptedPeers++
		}
	}
	s.recover(&stats)
	s.active.Store(true)
	mAdoptions.Inc()
	mLeaseHeld.Set(1)
	slog.Info("journal: campaign plane active",
		"adopted_peers", stats.AdoptedPeers, "resumed", stats.Resumed,
		"skipped_points", stats.SkippedPoints, "completed", stats.Completed)
	return stats
}

// recover loads every journaled campaign into the registry, restarting
// incomplete ones from their checkpoint sets. A journal that cannot be
// recovered is logged and skipped — one corrupt campaign must not keep
// a failover standby from adopting the rest.
func (s *Server) recover(stats *ActivationStats) {
	ids, err := s.journal.List()
	if err != nil {
		slog.Error("journal: listing campaigns", "err", err)
		return
	}
	for _, id := range ids {
		if s.resources.get(id) != nil {
			continue
		}
		cs, remaining, resume, err := s.recoverCampaign(id)
		if err != nil {
			slog.Error("journal: skipping unrecoverable campaign", "campaign_id", id, "err", err)
			continue
		}
		if !s.resources.add(cs) {
			continue
		}
		if !resume {
			stats.Completed++
			continue
		}
		skipped := len(cs.points) - len(remaining)
		stats.Resumed++
		stats.SkippedPoints += skipped
		mCampaignsResumed.Inc()
		mResumeSkipped.Add(uint64(skipped))
		slog.Info("journal: resuming campaign",
			"campaign_id", id, "points", len(cs.points), "remaining", len(remaining))
		s.startCampaign(cs, remaining)
	}
}

// recoverCampaign rebuilds one campaign from its journal: the create
// record restores the point list, every later record becomes a
// replayable frame, and the result records form the checkpoint set.
// resume is false for terminal campaigns (remaining is nil); otherwise
// remaining holds the positions the restarted run must dispatch.
func (s *Server) recoverCampaign(id string) (cs *campaignState, remaining []int, resume bool, err error) {
	recs, err := s.journal.Read(id)
	if err != nil {
		return nil, nil, false, err
	}
	var req struct {
		CreateCampaignRequest
		// Experiment-backed campaigns journal two extra fields (see
		// experimentCreateRecord); plain campaigns leave them empty.
		Experiment string                     `json:"experiment"`
		Params     map[string]json.RawMessage `json:"params"`
	}
	if err := json.Unmarshal(recs[0].Data, &req); err != nil {
		return nil, nil, false, fmt.Errorf("create record: %w", err)
	}
	points, err := sdpolicy.PointsFromSpecs(req.Points)
	if err != nil {
		return nil, nil, false, fmt.Errorf("create record: %w", err)
	}
	cs = newCampaignState(id, points, req.Reports)
	if req.Experiment != "" {
		// Re-resolve the journaled parameters so attaches can rebuild the
		// fold. A registry drift (renamed experiment, changed parameter)
		// degrades the resource to a plain campaign rather than losing it.
		if d := sdpolicy.Experiments().Get(req.Experiment); d == nil {
			slog.Warn("journal: recovered campaign names unknown experiment; serving as plain campaign",
				"campaign_id", id, "experiment", req.Experiment)
		} else if params, err := reducer.ResolveJSON(d.Params, req.Params); err != nil {
			slog.Warn("journal: recovered experiment parameters no longer resolve; serving as plain campaign",
				"campaign_id", id, "experiment", req.Experiment, "err", err)
		} else {
			cs.experiment = req.Experiment
			cs.expParams = params
		}
	}
	var done []int
	for _, rec := range recs[1:] {
		cs.frames = append(cs.frames, frame{seq: rec.Seq, event: rec.Kind, data: rec.Data})
		switch rec.Kind {
		case journal.KindResult:
			var v struct {
				Index int `json:"index"`
			}
			if err := json.Unmarshal(rec.Data, &v); err != nil {
				return nil, nil, false, fmt.Errorf("result record %d: %w", rec.Seq, err)
			}
			done = append(done, v.Index)
		case journal.KindDone:
			cs.state = campaignDone
		case journal.KindCancelled:
			cs.state = campaignCancelled
		case journal.KindError:
			cs.state = campaignFailed
			var v struct {
				Error ErrorDetail `json:"error"`
			}
			if json.Unmarshal(rec.Data, &v) == nil {
				cs.errMsg = v.Error.Message
			}
		}
	}
	cs.completed = len(done)
	if cs.state != campaignRunning {
		// Terminal: attachable replay, nothing to run or append.
		return cs, nil, false, nil
	}
	remaining, _, err = sdpolicy.PlanResume(points, done)
	if err != nil {
		return nil, nil, false, err
	}
	w, _, err := s.journal.Reopen(id)
	if err != nil {
		return nil, nil, false, err
	}
	cs.w = w
	return cs, remaining, true, nil
}

// handleCampaigns is the collection endpoint: POST creates a campaign
// resource and starts it detached from the request.
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeMethodNotAllowed(w, http.MethodPost, "", errors.New("use POST to create a campaign"))
		return
	}
	if !s.active.Load() {
		writeError(w, http.StatusServiceUnavailable, errStandby)
		return
	}
	var req CreateCampaignRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing points"))
		return
	}
	points, err := sdpolicy.PointsFromSpecs(req.Points)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	markLegacyWorkloadShape(w, req.Points...)
	id := canonicalCampaignID(r.Header.Get("X-Campaign-ID"))
	cs := newCampaignState(id, points, req.Reports)
	if !s.resources.add(cs) {
		writeCampaignError(w, http.StatusConflict, id,
			fmt.Errorf("campaign %s already exists; attach with GET /v1/campaigns/%s", id, id))
		return
	}
	if !s.journalCreate(w, cs, req) {
		return
	}
	mCampaignsCreated.Inc()
	s.startCampaign(cs, nil)
	w.Header().Set("X-Campaign-ID", id)
	w.Header().Set("Location", "/v1/campaigns/"+id)
	writeJSON(w, http.StatusCreated, CreateCampaignResponse{ID: id})
}

// journalCreate write-ahead journals the create record for a freshly
// registered campaign: the record (the campaign's full point list, plus
// the experiment binding when there is one) lands before any work is
// dispatched, so a crash at any later instant leaves a resumable
// journal. On failure it unregisters the campaign, replies with the
// envelope, and returns false. A no-op without EnableJournal.
func (s *Server) journalCreate(w http.ResponseWriter, cs *campaignState, record any) bool {
	if s.journal == nil {
		return true
	}
	create, err := json.Marshal(record)
	if err == nil {
		cs.w, err = s.journal.Create(cs.id, create)
	}
	if err != nil {
		s.resources.remove(cs.id)
		status := http.StatusInternalServerError
		if errors.Is(err, journal.ErrExists) {
			status = http.StatusConflict
		}
		writeCampaignError(w, status, cs.id, err)
		return false
	}
	mJournalRecords.Inc()
	return true
}

// errStandby is the transient refusal while the lease is not held.
var errStandby = errors.New("standby: campaign plane inactive until the coordinator lease is acquired; retry (or try the active coordinator)")

// lookupCampaign resolves {id} for the resource endpoints, replying
// with the envelope on standby (503, transient) or unknown ID (404).
func (s *Server) lookupCampaign(w http.ResponseWriter, id string) *campaignState {
	if !s.active.Load() {
		writeCampaignError(w, http.StatusServiceUnavailable, id, errStandby)
		return nil
	}
	cs := s.resources.get(id)
	if cs == nil {
		writeCampaignError(w, http.StatusNotFound, id, fmt.Errorf("unknown campaign %s", id))
		return nil
	}
	return cs
}

// handleCampaignByID dispatches GET (attach) and DELETE (cancel).
func (s *Server) handleCampaignByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		s.handleCampaignAttach(w, r, id)
	case http.MethodDelete:
		s.handleCampaignCancel(w, r, id)
	default:
		writeMethodNotAllowed(w, "GET, DELETE", id,
			errors.New("use GET to attach or DELETE to cancel"))
	}
}

// handleCampaignStatus reports compact progress.
func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet, id, errors.New("use GET"))
		return
	}
	cs := s.lookupCampaign(w, id)
	if cs == nil {
		return
	}
	writeJSON(w, http.StatusOK, cs.status())
}

// handleCampaignCancel requests cancellation and returns the status
// snapshot: 202 while the abort is landing, 200 if already terminal
// (cancelling a finished campaign is a no-op, not an error).
func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request, id string) {
	cs := s.lookupCampaign(w, id)
	if cs == nil {
		return
	}
	cs.mu.Lock()
	if cs.state != campaignRunning {
		st := cs.statusLocked()
		cs.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}
	cs.cancelRequested = true
	cancel := cs.cancel
	st := cs.statusLocked()
	cs.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleCampaignAttach streams the campaign's frames from the ?from=
// cursor (0 = from the beginning; pass the last seq you saw to resume
// exactly after it): first everything already buffered — for recovered
// campaigns, byte-identical journal replay — then live frames as they
// append, ending with the terminal frame. Attaching to a campaign
// whose cursor is already past the terminal frame re-emits that frame,
// so a stream always closes explicitly.
func (s *Server) handleCampaignAttach(w http.ResponseWriter, r *http.Request, id string) {
	q := r.URL.Query()
	var from uint64
	if v := q.Get("from"); v != "" {
		var err error
		if from, err = strconv.ParseUint(v, 10, 32); err != nil {
			writeCampaignError(w, http.StatusBadRequest, id,
				fmt.Errorf("bad ?from=%q: want a frame sequence number", v))
			return
		}
	}
	sse, err := wantsSSE(r, q.Get("format"))
	if err != nil {
		writeCampaignError(w, http.StatusBadRequest, id, err)
		return
	}
	cs := s.lookupCampaign(w, id)
	if cs == nil {
		return
	}
	mCampaignAttaches.Inc()
	w.Header().Set("X-Campaign-ID", id)
	st := newStreamWriter(w, sse)
	i := int(from)
	for {
		cs.mu.Lock()
		for i < len(cs.frames) {
			f := cs.frames[i]
			i++
			cs.mu.Unlock()
			st.rawEvent(f.event, f.data)
			if terminalEvent(f.event) {
				return
			}
			cs.mu.Lock()
		}
		if cs.state != campaignRunning {
			// Cursor at or past the end of a terminal stream: re-emit
			// the terminal frame rather than hanging or ending silently.
			var last frame
			if n := len(cs.frames); n > 0 {
				last = cs.frames[n-1]
			}
			cs.mu.Unlock()
			if terminalEvent(last.event) {
				st.rawEvent(last.event, last.data)
			}
			return
		}
		wake := cs.wake
		cs.mu.Unlock()
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			// Flush whatever appended concurrently, then tell the client
			// this stream (not the campaign) is over; the journal keeps
			// the campaign resumable wherever it lands next.
			cs.mu.Lock()
			avail := cs.frames[i:len(cs.frames):len(cs.frames)]
			i = len(cs.frames)
			cs.mu.Unlock()
			for _, f := range avail {
				st.rawEvent(f.event, f.data)
				if terminalEvent(f.event) {
					return
				}
			}
			st.event("shutdown", CampaignShutdown{Shutdown: true, Error: "server shutting down"})
			return
		}
	}
}

// startCampaign launches the detached runner for the positions in
// remaining (nil = the whole campaign — a fresh create).
func (s *Server) startCampaign(cs *campaignState, remaining []int) {
	if remaining == nil {
		remaining = make([]int, len(cs.points))
		for i := range remaining {
			remaining[i] = i
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cs.mu.Lock()
	cs.cancel = cancel
	cs.begin = time.Now()
	cs.mu.Unlock()
	go s.runCampaign(ctx, cancel, cs, remaining)
}

// runCampaign executes the campaign detached from any request: it
// waits for a simulation slot, streams the remaining positions through
// the local engine or the coordinator fleet, appends every completion
// as a frame (journaled first), and closes with a terminal frame. On
// server shutdown it stops silently instead — no terminal frame is the
// journal's mark of an in-flight campaign, which is exactly what makes
// it resumable by the next activation.
func (s *Server) runCampaign(ctx context.Context, cancel context.CancelFunc, cs *campaignState, remaining []int) {
	defer cancel()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-s.shutdown:
			cancel()
		case <-stop:
		case <-ctx.Done():
		}
	}()
	if len(remaining) == 0 {
		// Every position is already journaled (the crash landed between
		// the last result and the done record): just close out.
		s.finishCampaign(cs, nil)
		return
	}
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.finishCampaign(cs, ctx.Err())
		return
	}
	defer s.release()
	s.campaigns.Add(1)
	defer s.campaigns.Add(-1)

	pts := make([]sdpolicy.Point, len(remaining))
	for i, pos := range remaining {
		pts[i] = cs.points[pos]
	}
	mode := "local"
	if s.coord != nil {
		mode = "coordinator"
	}
	begin := time.Now()
	slog.Info("campaign start", "campaign_id", cs.id, "api", "campaigns",
		"points", len(cs.points), "dispatched", len(pts), "mode", mode)
	defer func() {
		slog.Info("campaign end", "campaign_id", cs.id, "api", "campaigns",
			"mode", mode, "duration_ms", time.Since(begin).Milliseconds())
	}()

	bufSize := len(pts)
	if cs.reports {
		bufSize *= 2
	}
	updates := make(chan sdpolicy.PointResult, bufSize)
	errc := make(chan error, 1)
	run := func(ctx context.Context, pts []sdpolicy.Point, updates chan<- sdpolicy.PointResult) error {
		_, err := s.engine.RunStream(ctx, pts, updates)
		return err
	}
	if s.coord != nil {
		run = func(ctx context.Context, pts []sdpolicy.Point, updates chan<- sdpolicy.PointResult) error {
			return s.coord.run(ctx, pts, updates, cs.reports, cs.id, nil)
		}
	}
	go func() { errc <- run(ctx, pts, updates) }()
	for u := range updates {
		// u.Index is a position within pts; remaining maps it back to
		// the campaign's original position, so resumed frames carry the
		// same indices an uninterrupted run would have.
		pos := remaining[u.Index]
		if u.Result == nil {
			if cs.reports && u.Report != nil {
				s.appendReport(cs, pos, u.Report)
			}
			continue
		}
		s.appendResult(cs, pos, u)
		if cs.reports && s.coord == nil {
			if raw, err := u.Result.ReportJSON(); err == nil {
				s.appendReport(cs, pos, raw)
			}
		}
	}
	s.finishCampaign(cs, <-errc)
}

// finishCampaign writes the terminal frame for the campaign's real
// outcome — or, when the run was cut by server shutdown, writes
// nothing, leaving the journal open for resumption.
func (s *Server) finishCampaign(cs *campaignState, err error) {
	cs.mu.Lock()
	cancelled := cs.cancelRequested
	cs.mu.Unlock()
	switch {
	case err == nil:
		s.appendTerminal(cs, journal.KindDone, campaignDone, func(seq uint64) any {
			return struct {
				Seq    uint64 `json:"seq"`
				Done   bool   `json:"done"`
				Points int    `json:"points"`
			}{seq, true, len(cs.points)}
		})
		observeExperiment(cs, campaignDone)
	case cancelled:
		s.appendTerminal(cs, journal.KindCancelled, campaignCancelled, func(seq uint64) any {
			return struct {
				Seq       uint64 `json:"seq"`
				Cancelled bool   `json:"cancelled"`
			}{seq, true}
		})
		observeExperiment(cs, campaignCancelled)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		select {
		case <-s.shutdown:
			// Shutdown, not failure: stay "running" with no terminal
			// frame so the next activation resumes the campaign.
			return
		default:
			// A cancellation that is neither DELETE nor shutdown can only
			// be the runner's own teardown racing a late error; report it.
			s.appendErrorTerminal(cs, err)
		}
	default:
		s.appendErrorTerminal(cs, err)
	}
}

// observeExperiment records the terminal outcome of an experiment-backed
// campaign; a no-op for plain campaigns.
func observeExperiment(cs *campaignState, outcome string) {
	if cs.experiment == "" {
		return
	}
	mExperimentsCompleted.With(cs.experiment, outcome).Inc()
	cs.mu.Lock()
	begin := cs.begin
	cs.mu.Unlock()
	if !begin.IsZero() {
		mExperimentSeconds.With(cs.experiment).Observe(time.Since(begin).Seconds())
	}
}

func (s *Server) appendErrorTerminal(cs *campaignState, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, sdpolicy.ErrBadInput) {
		status = http.StatusBadRequest
	}
	s.appendTerminal(cs, journal.KindError, campaignFailed, func(seq uint64) any {
		return struct {
			Seq   uint64      `json:"seq"`
			Error ErrorDetail `json:"error"`
		}{seq, ErrorDetail{Code: errorCode(status), Message: err.Error(), CampaignID: cs.id}}
	})
	cs.mu.Lock()
	cs.errMsg = err.Error()
	cs.mu.Unlock()
	observeExperiment(cs, campaignFailed)
}

// appendResult journals and buffers one result frame. The frame embeds
// its seq, so journal replay reproduces the bytes exactly.
func (s *Server) appendResult(cs *campaignState, pos int, u sdpolicy.PointResult) {
	s.appendFrame(cs, journal.KindResult, func(seq uint64) any {
		return struct {
			Seq    uint64           `json:"seq"`
			Index  int              `json:"index"`
			Point  sdpolicy.Point   `json:"point"`
			Result *sdpolicy.Result `json:"result"`
		}{seq, pos, cs.points[pos], u.Result}
	}, func(cs *campaignState) { cs.completed++ })
}

func (s *Server) appendReport(cs *campaignState, pos int, report json.RawMessage) {
	s.appendFrame(cs, journal.KindReport, func(seq uint64) any {
		return struct {
			Seq       uint64          `json:"seq"`
			ReportFor int             `json:"report_for"`
			Report    json.RawMessage `json:"report"`
		}{seq, pos, report}
	}, nil)
}

func (s *Server) appendTerminal(cs *campaignState, kind, state string, payload func(seq uint64) any) {
	s.appendFrame(cs, kind, payload, func(cs *campaignState) { cs.state = state })
}

// appendFrame assigns the next seq, marshals the frame, journals it
// (write-ahead: the journal sees the frame before any attacher can),
// then publishes it and wakes attached streams. apply, when non-nil,
// runs under the same lock as the publish so state and frames move
// together. Exactly one goroutine appends per campaign, which is what
// makes the lock-free seq read sound.
func (s *Server) appendFrame(cs *campaignState, kind string, payload func(seq uint64) any, apply func(*campaignState)) {
	cs.mu.Lock()
	seq := uint64(len(cs.frames)) + 1
	cs.mu.Unlock()
	data, err := json.Marshal(payload(seq))
	if err != nil {
		slog.Error("campaign frame marshal failed", "campaign_id", cs.id, "kind", kind, "err", err)
		return
	}
	if cs.w != nil {
		if err := cs.w.Append(seq, kind, data); err != nil {
			// Degrade to in-memory: the stream stays correct for attached
			// clients, durability is what's lost — and loudly.
			slog.Error("journal append failed", "campaign_id", cs.id, "err", err)
		} else {
			mJournalRecords.Inc()
		}
	}
	cs.mu.Lock()
	cs.frames = append(cs.frames, frame{seq: seq, event: kind, data: data})
	if apply != nil {
		apply(cs)
	}
	close(cs.wake)
	cs.wake = make(chan struct{})
	cs.mu.Unlock()
}
