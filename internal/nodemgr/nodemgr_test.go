package nodemgr

import (
	"testing"

	"sdpolicy/internal/cluster"
	"sdpolicy/internal/drom"
	"sdpolicy/internal/job"
)

func mn4() cluster.Config { return cluster.Config{Nodes: 8, Sockets: 2, CoresPerSocket: 24} }

func newMgr(t *testing.T, cfg cluster.Config, sf float64) (*Manager, *cluster.Cluster, *drom.Registry) {
	t.Helper()
	cl := cluster.New(cfg)
	reg := drom.NewRegistry(cfg.CoresPerNode(), 0)
	return New(cl, reg, sf), cl, reg
}

func TestSplitSocketAligned(t *testing.T) {
	m, _, _ := newMgr(t, mn4(), 0.5)
	// MareNostrum4: two sockets, SF 0.5 => one socket each (24/24).
	if m.OwnerKeepCores() != 24 || m.GuestCores() != 24 {
		t.Fatalf("split %d/%d, want 24/24", m.OwnerKeepCores(), m.GuestCores())
	}
	if m.SharingFactor() != 0.5 {
		t.Fatalf("sharing factor %v", m.SharingFactor())
	}
}

func TestSplitFourSockets(t *testing.T) {
	cfg := cluster.Config{Nodes: 2, Sockets: 4, CoresPerSocket: 8}
	m, _, _ := newMgr(t, cfg, 0.25)
	// owner keeps round(4*0.25)=1 socket = 8 cores, guest 24
	if m.OwnerKeepCores() != 8 || m.GuestCores() != 24 {
		t.Fatalf("split %d/%d, want 8/24", m.OwnerKeepCores(), m.GuestCores())
	}
}

func TestSplitSingleSocketFallsBackToCores(t *testing.T) {
	cfg := cluster.Config{Nodes: 2, Sockets: 1, CoresPerSocket: 8}
	m, _, _ := newMgr(t, cfg, 0.5)
	if m.OwnerKeepCores() != 4 || m.GuestCores() != 4 {
		t.Fatalf("split %d/%d, want 4/4", m.OwnerKeepCores(), m.GuestCores())
	}
	// extreme factors stay within [1, total-1]
	lo, _, _ := newMgr(t, cfg, 0.01)
	if lo.OwnerKeepCores() != 1 {
		t.Fatalf("low factor keep %d, want 1", lo.OwnerKeepCores())
	}
	hi, _, _ := newMgr(t, cfg, 0.99)
	if hi.OwnerKeepCores() != 7 {
		t.Fatalf("high factor keep %d, want 7", hi.OwnerKeepCores())
	}
}

func TestBadSharingFactorPanics(t *testing.T) {
	for _, sf := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("sharing factor %v accepted", sf)
				}
			}()
			newMgr(t, mn4(), sf)
		}()
	}
}

func TestPlaceOwner(t *testing.T) {
	m, cl, reg := newMgr(t, mn4(), 0.5)
	nodes, err := m.PlaceOwner(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		mask, ok := reg.GetMask(nd, 1)
		if !ok || mask.Count() != 48 {
			t.Fatalf("node %d owner mask %v", nd, mask)
		}
	}
	if got := m.Shares(1, nodes); len(got) != 3 || got[0] != 48 {
		t.Fatalf("shares %v", got)
	}
	if _, err := m.PlaceOwner(2, 100); err == nil {
		t.Fatal("oversized placement accepted")
	}
	_ = cl
}

func TestGuestRoundTrip(t *testing.T) {
	m, cl, reg := newMgr(t, mn4(), 0.5)
	nodes, _ := m.PlaceOwner(1, 2)
	m.StartGuest(2, []Mate{{ID: 1, Nodes: nodes}})
	// owner on socket 0, guest on socket 1, disjoint
	for _, nd := range nodes {
		om, _ := reg.GetMask(nd, 1)
		gm, _ := reg.GetMask(nd, 2)
		if om.Count() != 24 || gm.Count() != 24 {
			t.Fatalf("node %d masks owner=%v guest=%v", nd, om, gm)
		}
		if om.Overlaps(gm) {
			t.Fatalf("node %d masks overlap", nd)
		}
		if !om.Has(0) || !gm.Has(24) {
			t.Fatalf("socket isolation broken: owner=%v guest=%v", om, gm)
		}
	}
	// guest ends: owner absorbs the whole node again
	affected, _ := m.Finish(2, nodes, func(job.ID) bool { return true })
	if len(affected) != 1 || affected[0] != 1 {
		t.Fatalf("affected %v, want [1]", affected)
	}
	for _, nd := range nodes {
		if cl.CoresOf(nd, 1) != 48 {
			t.Fatalf("owner not expanded on node %d", nd)
		}
		om, _ := reg.GetMask(nd, 1)
		if om.Count() != 48 {
			t.Fatalf("owner mask not expanded: %v", om)
		}
	}
	if err := reg.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerEndsGuestAbsorbs(t *testing.T) {
	m, cl, _ := newMgr(t, mn4(), 0.5)
	nodes, _ := m.PlaceOwner(1, 2)
	m.StartGuest(2, []Mate{{ID: 1, Nodes: nodes}})
	affected, _ := m.Finish(1, nodes, func(job.ID) bool { return true })
	if len(affected) != 1 || affected[0] != 2 {
		t.Fatalf("affected %v, want [2]", affected)
	}
	for _, nd := range nodes {
		if cl.CoresOf(nd, 2) != 48 {
			t.Fatalf("guest share on node %d = %d, want 48", nd, cl.CoresOf(nd, 2))
		}
	}
	// node frees only when the guest also ends
	if cl.FreeNodes() != 6 {
		t.Fatalf("free nodes %d, want 6", cl.FreeNodes())
	}
	m.Finish(2, nodes, func(job.ID) bool { return true })
	if cl.FreeNodes() != 8 {
		t.Fatalf("free nodes %d, want 8", cl.FreeNodes())
	}
}

func TestMoldableGuestDoesNotAbsorb(t *testing.T) {
	m, cl, _ := newMgr(t, mn4(), 0.5)
	nodes, _ := m.PlaceOwner(1, 1)
	m.StartGuest(2, []Mate{{ID: 1, Nodes: nodes}})
	// guest is moldable: canExpand says no
	affected, _ := m.Finish(1, nodes, func(job.ID) bool { return false })
	if len(affected) != 0 {
		t.Fatalf("affected %v, want none", affected)
	}
	if cl.CoresOf(nodes[0], 2) != 24 {
		t.Fatalf("moldable guest expanded to %d cores", cl.CoresOf(nodes[0], 2))
	}
}

func TestExpandToFull(t *testing.T) {
	m, cl, reg := newMgr(t, mn4(), 0.5)
	nodes, _ := m.PlaceOwner(1, 1)
	m.StartGuest(2, []Mate{{ID: 1, Nodes: nodes}})
	m.Finish(2, nodes, func(job.ID) bool { return false }) // owner stays shrunk
	if cl.CoresOf(nodes[0], 1) != 24 {
		t.Fatalf("owner share %d", cl.CoresOf(nodes[0], 1))
	}
	m.ExpandToFull(1, nodes)
	if cl.CoresOf(nodes[0], 1) != 48 {
		t.Fatalf("owner share after expand %d", cl.CoresOf(nodes[0], 1))
	}
	mask, _ := reg.GetMask(nodes[0], 1)
	if mask.Count() != 48 {
		t.Fatalf("owner mask after expand %v", mask)
	}
}

func TestMultiMateGuest(t *testing.T) {
	m, cl, reg := newMgr(t, mn4(), 0.5)
	n1, _ := m.PlaceOwner(1, 2)
	n2, _ := m.PlaceOwner(2, 1)
	guestNodes := append(append([]int{}, n1...), n2...)
	m.StartGuest(3, []Mate{{ID: 1, Nodes: n1}, {ID: 2, Nodes: n2}})
	shares := m.Shares(3, guestNodes)
	for i, s := range shares {
		if s != 24 {
			t.Fatalf("guest share[%d] = %d, want 24", i, s)
		}
	}
	// first mate ends: guest expands only on that mate's nodes
	m.Finish(1, n1, func(job.ID) bool { return true })
	shares = m.Shares(3, guestNodes)
	if shares[0] != 48 || shares[1] != 48 || shares[2] != 24 {
		t.Fatalf("guest shares after first mate end: %v", shares)
	}
	if err := reg.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDROMOverheadAccounted(t *testing.T) {
	cfg := mn4()
	cl := cluster.New(cfg)
	reg := drom.NewRegistry(cfg.CoresPerNode(), 3)
	m := New(cl, reg, 0.5)
	nodes, _ := m.PlaceOwner(1, 2)
	oh := m.StartGuest(2, []Mate{{ID: 1, Nodes: nodes}})
	if oh != 2*3 { // one shrink per node
		t.Fatalf("start overhead %d, want 6", oh)
	}
	_, oh2 := m.Finish(2, nodes, func(job.ID) bool { return true })
	if oh2 != 2*3 { // one relayout per node
		t.Fatalf("finish overhead %d, want 6", oh2)
	}
}
