// Package nodemgr implements the node management algorithm of the paper
// (Listing 3, Section 3.3): the slurmd/task-affinity layer that decides
// which cores of a shared node each job's tasks run on.
//
// Its policy follows the paper's findings: jobs sharing a node are
// isolated on separate sockets (best overall performance on MareNostrum4),
// the SharingFactor bounds how many resources a shrunk owner cedes, cores
// return to their owner when a guest ends, and a surviving job absorbs the
// cores of a finished co-resident to raise node utilisation.
package nodemgr

import (
	"fmt"
	"slices"

	"sdpolicy/internal/cluster"
	"sdpolicy/internal/drom"
	"sdpolicy/internal/job"
)

// Manager drives core distribution on every node, mutating the cluster
// bookkeeping and the DROM registry together.
type Manager struct {
	cl  *cluster.Cluster
	reg *drom.Registry
	sf  float64
	// precomputed split for the default owner+guest sharing
	ownerKeep int
	guestGet  int
	// scratch reused across Finish calls (a Manager is single-threaded,
	// driven by one event loop)
	restBuf []cluster.Alloc
	expBuf  []int
	affBuf  []job.ID
}

// New returns a manager applying the given SharingFactor, the fraction of
// a node's cores a shrunk owner keeps (0.5 in the paper: one of two
// sockets). The factor must be in (0, 1).
func New(cl *cluster.Cluster, reg *drom.Registry, sharingFactor float64) *Manager {
	if sharingFactor <= 0 || sharingFactor >= 1 {
		panic(fmt.Sprintf("nodemgr: sharing factor %v out of (0,1)", sharingFactor))
	}
	cfg := cl.Config()
	keep, give := splitCores(cfg, sharingFactor)
	return &Manager{cl: cl, reg: reg, sf: sharingFactor, ownerKeep: keep, guestGet: give}
}

// splitCores computes how a node divides between a shrunk owner and a
// guest: socket-aligned when the node has more than one socket (the
// paper's isolation result), core-aligned otherwise.
func splitCores(cfg cluster.Config, sf float64) (keep, give int) {
	total := cfg.CoresPerNode()
	if cfg.Sockets > 1 {
		ks := int(float64(cfg.Sockets)*sf + 0.5)
		if ks < 1 {
			ks = 1
		}
		if ks > cfg.Sockets-1 {
			ks = cfg.Sockets - 1
		}
		keep = ks * cfg.CoresPerSocket
	} else {
		keep = int(float64(total)*sf + 0.5)
		if keep < 1 {
			keep = 1
		}
		if keep > total-1 {
			keep = total - 1
		}
	}
	return keep, total - keep
}

// SharingFactor returns the configured factor.
func (m *Manager) SharingFactor() float64 { return m.sf }

// OwnerKeepCores returns the per-node cores a shrunk owner keeps.
func (m *Manager) OwnerKeepCores() int { return m.ownerKeep }

// GuestCores returns the per-node cores a guest receives at start.
func (m *Manager) GuestCores() int { return m.guestGet }

// PlaceOwner allocates n free nodes to the job with full-node masks,
// registering one DROM process per node.
func (m *Manager) PlaceOwner(id job.ID, n int) ([]int, error) {
	return m.PlaceOwnerWith(id, n, nil)
}

// PlaceOwnerWith is PlaceOwner restricted to nodes carrying every
// required feature tag (SLURM-style constraints).
func (m *Manager) PlaceOwnerWith(id job.ID, n int, features []string) ([]int, error) {
	nodes, err := m.cl.AllocateFreeWith(id, n, features)
	if err != nil {
		return nil, err
	}
	full := m.cl.Config().CoresPerNode()
	for _, nd := range nodes {
		if err := m.reg.Register(nd, id, drom.RangeMask(full, 0, full)); err != nil {
			panic(fmt.Sprintf("nodemgr: register owner: %v", err))
		}
	}
	return nodes, nil
}

// Mate names one running job that shrinks to host a guest, with the nodes
// it contributes.
type Mate struct {
	ID    job.ID
	Nodes []int
}

// StartGuest shrinks every mate to OwnerKeepCores on each contributed
// node and registers the guest on the complementary cores. It returns the
// accumulated DROM overhead in seconds.
//
// Preconditions (the scheduler's mate selection guarantees them): each
// mate currently holds its full nodes exclusively.
func (m *Manager) StartGuest(guest job.ID, mates []Mate) int64 {
	full := m.cl.Config().CoresPerNode()
	var overhead int64
	for _, mate := range mates {
		for _, nd := range mate.Nodes {
			if got := m.cl.CoresOf(nd, mate.ID); got != full {
				panic(fmt.Sprintf("nodemgr: mate %d holds %d cores on node %d, want full %d",
					mate.ID, got, nd, full))
			}
			m.cl.SetCores(nd, mate.ID, m.ownerKeep)
			oh, err := m.reg.SetMask(nd, mate.ID, drom.RangeMask(full, 0, m.ownerKeep))
			if err != nil {
				panic(fmt.Sprintf("nodemgr: shrink mate: %v", err))
			}
			overhead += oh
			m.cl.PlaceGuest(guest, nd, m.guestGet)
			if err := m.reg.Register(nd, guest, drom.RangeMask(full, m.ownerKeep, full)); err != nil {
				panic(fmt.Sprintf("nodemgr: register guest: %v", err))
			}
		}
	}
	return overhead
}

// Finish removes the job from every listed node and redistributes the
// freed cores (Listing 3): on each node, remaining jobs for which
// canExpand reports true divide the newly freed cores (whole node when
// one job remains — the owner expanding after its guest, or the guest
// absorbing a finished owner). Jobs whose shares changed are returned,
// sorted and deduplicated, so the caller can refresh their progress
// rates. The DROM overhead in seconds is returned alongside.
// The returned slice is scratch owned by the Manager: it is only valid
// until the next Finish call.
func (m *Manager) Finish(id job.ID, nodes []int, canExpand func(job.ID) bool) (affected []job.ID, overhead int64) {
	full := m.cl.Config().CoresPerNode()
	m.affBuf = m.affBuf[:0]
	for _, nd := range nodes {
		if err := m.reg.Clean(nd, id); err != nil {
			panic(fmt.Sprintf("nodemgr: clean: %v", err))
		}
		m.cl.Release(nd, id)
		rest := m.cl.AllocsInto(m.restBuf[:0], nd)
		m.restBuf = rest[:0]
		if len(rest) == 0 {
			continue
		}
		// Sort residents owner-first then by id for a deterministic layout.
		slices.SortFunc(rest, func(a, b cluster.Alloc) int {
			if a.Owner != b.Owner {
				if a.Owner {
					return -1
				}
				return 1
			}
			return int(a.Job) - int(b.Job)
		})
		used := 0
		for _, a := range rest {
			used += a.Cores
		}
		free := full - used
		if free > 0 {
			expandable := m.expBuf[:0]
			for i, a := range rest {
				if canExpand(a.Job) {
					expandable = append(expandable, i)
				}
			}
			m.expBuf = expandable[:0]
			for k, i := range expandable {
				share := free / len(expandable)
				if k < free%len(expandable) {
					share++
				}
				if share == 0 {
					continue
				}
				rest[i].Cores += share
				m.cl.SetCores(nd, rest[i].Job, rest[i].Cores)
				m.affBuf = append(m.affBuf, rest[i].Job)
			}
		}
		// Reassign contiguous masks in the deterministic order.
		at := 0
		for _, a := range rest {
			oh, err := m.reg.SetMask(nd, a.Job, drom.RangeMask(full, at, at+a.Cores))
			if err != nil {
				panic(fmt.Sprintf("nodemgr: relayout: %v", err))
			}
			overhead += oh
			at += a.Cores
		}
	}
	// Sort + dedup replaces the old map: same set, same order, no
	// per-call allocation.
	slices.Sort(m.affBuf)
	m.affBuf = slices.Compact(m.affBuf)
	return m.affBuf, overhead
}

// ExpandToFull restores the job to full cores on each listed node —
// used when a guest ends and the owner expands back (Listing 3's
// expand_job). The nodes must host only this job afterwards.
func (m *Manager) ExpandToFull(id job.ID, nodes []int) int64 {
	full := m.cl.Config().CoresPerNode()
	var overhead int64
	for _, nd := range nodes {
		m.cl.SetCores(nd, id, full)
		oh, err := m.reg.SetMask(nd, id, drom.RangeMask(full, 0, full))
		if err != nil {
			panic(fmt.Sprintf("nodemgr: expand: %v", err))
		}
		overhead += oh
	}
	return overhead
}

// Shares returns the job's current core count on each of the given nodes,
// in node order — the input of the runtime model's Rate function.
func (m *Manager) Shares(id job.ID, nodes []int) []int {
	return m.SharesInto(make([]int, 0, len(nodes)), id, nodes)
}

// SharesInto is Shares appending into a caller-owned buffer, for hot
// paths that query shares once per scheduling pass.
func (m *Manager) SharesInto(buf []int, id job.ID, nodes []int) []int {
	for _, nd := range nodes {
		buf = append(buf, m.cl.CoresOf(nd, id))
	}
	return buf
}
