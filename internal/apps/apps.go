// Package apps models the applications of the paper's real-run workload
// (Table 2) for the simulated replacement of the MareNostrum4 experiment:
// per-class scalability curves that drive the runtime model when a job's
// per-node core count changes.
//
// The curves encode the two effects the paper identifies as the source of
// the real-run gains (Section 4.4):
//
//  1. memory-bound codes (STREAM) saturate a socket's memory bandwidth
//     with a few cores, so ceding cores barely slows them;
//  2. imperfectly scaling codes lose little when partitioned, so two jobs
//     sharing a node can outperform exclusive execution in aggregate.
//
// Each curve is an Amdahl-style speedup s(c) = 1 / ((1-f) + f/c) scaled
// with a hard bandwidth saturation cap where appropriate.
package apps

import (
	"fmt"
	"math"

	"sdpolicy/internal/job"
	"sdpolicy/internal/model"
)

// Profile characterises one application class.
type Profile struct {
	Name string
	// ParallelFrac is the Amdahl parallel fraction of the code.
	ParallelFrac float64
	// SaturationCores caps useful parallelism per node (memory-bandwidth
	// bound codes saturate early); 0 means no cap.
	SaturationCores int
	// CPUUtil and MemUtil describe the utilisation columns of Table 2;
	// they are reported by the workload characterisation tooling.
	CPUUtil float64
	MemUtil float64
}

// profiles follow the qualitative Table 2 characterisation. PILS is a
// synthetic perfectly-parallel CPU burner; STREAM saturates the memory
// system with a handful of cores per node; the simulators and the solver
// scale well but not perfectly.
var profiles = map[job.AppClass]Profile{
	job.AppGeneric:    {Name: "generic", ParallelFrac: 1.0, CPUUtil: 1.0, MemUtil: 0.5},
	job.AppPILS:       {Name: "PILS", ParallelFrac: 0.999, CPUUtil: 0.95, MemUtil: 0.1},
	job.AppSTREAM:     {Name: "STREAM", ParallelFrac: 0.999, SaturationCores: 12, CPUUtil: 0.3, MemUtil: 0.95},
	job.AppCoreNeuron: {Name: "CoreNeuron", ParallelFrac: 0.98, CPUUtil: 0.9, MemUtil: 0.6},
	job.AppNEST:       {Name: "NEST", ParallelFrac: 0.97, CPUUtil: 0.9, MemUtil: 0.6},
	job.AppAlya:       {Name: "Alya", ParallelFrac: 0.985, CPUUtil: 0.9, MemUtil: 0.6},
}

// ProfileOf returns the profile of an application class.
func ProfileOf(a job.AppClass) Profile {
	p, ok := profiles[a]
	if !ok {
		panic(fmt.Sprintf("apps: unknown application class %d", a))
	}
	return p
}

// Speedup returns the per-node speedup function of the class, suitable
// for model.Rate with model.App: s(1) == 1, non-decreasing, and capped at
// the saturation point when the class is bandwidth bound.
func Speedup(a job.AppClass) model.SpeedupFn {
	p := ProfileOf(a)
	return func(cores int) float64 {
		if cores <= 0 {
			return 0
		}
		c := float64(cores)
		if p.SaturationCores > 0 {
			c = math.Min(c, float64(p.SaturationCores))
		}
		f := p.ParallelFrac
		return 1 / ((1 - f) + f/c)
	}
}

// SpeedupProvider adapts Speedup to the scheduler's per-job hook.
func SpeedupProvider(a job.AppClass) model.SpeedupFn { return Speedup(a) }

// Mix is the Table 2 workload composition: application class and its
// share of the job count.
type Mix struct {
	App   job.AppClass
	Share float64
}

// Table2Mix returns the paper's real-run composition.
func Table2Mix() []Mix {
	return []Mix{
		{job.AppPILS, 0.305},
		{job.AppSTREAM, 0.308},
		{job.AppCoreNeuron, 0.355},
		{job.AppNEST, 0.026},
		{job.AppAlya, 0.006},
	}
}
