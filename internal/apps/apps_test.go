package apps

import (
	"math"
	"testing"

	"sdpolicy/internal/job"
)

func TestProfilesExist(t *testing.T) {
	for _, a := range []job.AppClass{job.AppGeneric, job.AppPILS, job.AppSTREAM,
		job.AppCoreNeuron, job.AppNEST, job.AppAlya} {
		p := ProfileOf(a)
		if p.Name == "" || p.ParallelFrac <= 0 || p.ParallelFrac > 1 {
			t.Errorf("%v: bad profile %+v", a, p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown class accepted")
		}
	}()
	ProfileOf(job.AppClass(99))
}

func TestSpeedupProperties(t *testing.T) {
	for _, a := range []job.AppClass{job.AppGeneric, job.AppPILS, job.AppSTREAM,
		job.AppCoreNeuron, job.AppNEST, job.AppAlya} {
		s := Speedup(a)
		if got := s(1); math.Abs(got-1) > 1e-9 {
			t.Errorf("%v: s(1) = %v, want 1", a, got)
		}
		if s(0) != 0 {
			t.Errorf("%v: s(0) should be 0", a)
		}
		prev := 0.0
		for c := 1; c <= 48; c++ {
			v := s(c)
			if v < prev-1e-12 {
				t.Errorf("%v: speedup decreasing at %d cores", a, c)
			}
			if v > float64(c)+1e-9 {
				t.Errorf("%v: super-linear speedup at %d cores", a, c)
			}
			prev = v
		}
	}
}

func TestSTREAMSaturates(t *testing.T) {
	s := Speedup(job.AppSTREAM)
	// Memory-bound: beyond the saturation point extra cores add nothing.
	if s(48) > s(12)+1e-9 {
		t.Fatalf("STREAM kept scaling past saturation: s(48)=%v s(12)=%v", s(48), s(12))
	}
	// Shrinking from 48 to 24 cores costs nothing.
	if rate := s(24) / s(48); rate < 0.999 {
		t.Fatalf("STREAM shrink 48->24 rate %v, want ~1", rate)
	}
}

func TestPILSScalesAlmostLinearly(t *testing.T) {
	s := Speedup(job.AppPILS)
	if rate := s(24) / s(48); rate > 0.55 {
		t.Fatalf("PILS shrink 48->24 rate %v, want ~0.5 (compute bound)", rate)
	}
}

func TestSolversInBetween(t *testing.T) {
	pils := Speedup(job.AppPILS)(24) / Speedup(job.AppPILS)(48)
	stream := Speedup(job.AppSTREAM)(24) / Speedup(job.AppSTREAM)(48)
	for _, a := range []job.AppClass{job.AppCoreNeuron, job.AppNEST, job.AppAlya} {
		r := Speedup(a)(24) / Speedup(a)(48)
		if r <= pils || r >= stream {
			t.Errorf("%v shrink rate %v not between PILS %v and STREAM %v", a, r, pils, stream)
		}
	}
}

func TestTable2Mix(t *testing.T) {
	mix := Table2Mix()
	var total float64
	for _, m := range mix {
		if m.Share <= 0 {
			t.Errorf("%v: non-positive share", m.App)
		}
		total += m.Share
	}
	if math.Abs(total-1.0) > 0.001 {
		t.Fatalf("mix shares sum to %v, want 1.0", total)
	}
	if mix[0].App != job.AppPILS || math.Abs(mix[0].Share-0.305) > 1e-9 {
		t.Fatalf("PILS share wrong: %+v", mix[0])
	}
}
