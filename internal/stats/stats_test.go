package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7, 13)
	b := NewRNG(7, 13)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed streams diverged at sample %d", i)
		}
	}
	c := NewRNG(7, 14)
	same := true
	a2 := NewRNG(7, 13)
	for i := 0; i < 16; i++ {
		if a2.Float64() != c.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical prefix")
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(1, 2)
	for i := 0; i < 10000; i++ {
		x := g.Uniform(5, 9)
		if x < 5 || x >= 9 {
			t.Fatalf("uniform sample %v out of [5,9)", x)
		}
	}
}

func TestLogNormalMoments(t *testing.T) {
	g := NewRNG(3, 4)
	const mu, sigma = 1.0, 0.5
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(g.LogNormal(mu, sigma))
	}
	want := math.Exp(mu + sigma*sigma/2)
	if rel := math.Abs(s.Mean()-want) / want; rel > 0.02 {
		t.Fatalf("lognormal mean %v, want %v (rel err %v)", s.Mean(), want, rel)
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(5, 6)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(g.Exponential(42))
	}
	if rel := math.Abs(s.Mean()-42) / 42; rel > 0.02 {
		t.Fatalf("exponential mean %v, want 42", s.Mean())
	}
}

func TestWeibullPositive(t *testing.T) {
	g := NewRNG(9, 9)
	for i := 0; i < 10000; i++ {
		if x := g.Weibull(0.7, 100); x <= 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("weibull sample %v invalid", x)
		}
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	g := NewRNG(11, 12)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(g.Weibull(1, 50))
	}
	if rel := math.Abs(s.Mean()-50) / 50; rel > 0.02 {
		t.Fatalf("weibull(1,50) mean %v, want 50", s.Mean())
	}
}

func TestParetoBounds(t *testing.T) {
	g := NewRNG(13, 14)
	for i := 0; i < 10000; i++ {
		x := g.Pareto(1.2, 2, 4096)
		if x < 2 || x > 4096 {
			t.Fatalf("bounded pareto sample %v out of [2,4096]", x)
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	g := NewRNG(15, 16)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("bernoulli(0.3) frequency %v", p)
	}
}

func TestCategorical(t *testing.T) {
	g := NewRNG(17, 18)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[1])
	}
	if r := float64(counts[2]) / float64(counts[0]); math.Abs(r-3) > 0.15 {
		t.Fatalf("weight ratio %v, want ~3", r)
	}
}

func TestCategoricalPanics(t *testing.T) {
	g := NewRNG(1, 1)
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for weights %v", w)
				}
			}()
			g.Categorical(w)
		}()
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 {
		t.Fatal("empty summary should report zeros")
	}
	for _, x := range []float64{4, 2, 8, 6} {
		s.Add(x)
	}
	if s.N() != 4 || s.Sum() != 20 || s.Mean() != 5 || s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("summary: n=%d sum=%v mean=%v min=%v max=%v",
			s.N(), s.Sum(), s.Mean(), s.Min(), s.Max())
	}
	if want := math.Sqrt(5); math.Abs(s.Stddev()-want) > 1e-12 {
		t.Fatalf("stddev %v, want %v", s.Stddev(), want)
	}
}

func TestSummaryPropertyMinLeqMeanLeqMax(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			// keep magnitudes sane for the float comparisons
			if math.Abs(x) > 1e12 {
				x = math.Mod(x, 1e12)
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		return s.Min() <= s.Mean()+1e-6 && s.Mean() <= s.Max()+1e-6 && s.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Median([]float64{7}); got != 7 {
		t.Fatalf("median single = %v", got)
	}
	// input must not be reordered
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
}

func TestPanics(t *testing.T) {
	g := NewRNG(1, 1)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("exponential", func() { g.Exponential(0) })
	mustPanic("weibull", func() { g.Weibull(0, 1) })
	mustPanic("pareto", func() { g.Pareto(1, 5, 4) })
	mustPanic("percentile empty", func() { Percentile(nil, 50) })
	mustPanic("percentile range", func() { Percentile([]float64{1}, 101) })
}
