// Package stats provides the seeded random number generation,
// distribution samplers and summary statistics used by the workload
// generators and the evaluation harness.
//
// Every experiment in the repository is deterministic: all randomness
// flows from an RNG constructed with an explicit seed.
package stats

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source with the distribution samplers the
// Cirne-style workload models need. It wraps a PCG generator from
// math/rand/v2 so streams are reproducible across platforms.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with the two given words. The same
// seeds always produce the same stream.
func NewRNG(seed1, seed2 uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed1, seed2))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform sample in [0, n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Int64N returns a uniform sample in [0, n). It panics if n <= 0.
func (g *RNG) Int64N(n int64) int64 { return g.r.Int64N(n) }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// LogNormal returns exp(N(mu, sigma^2)): the log-normal distribution the
// Cirne-Berman model uses for job runtimes and inter-arrival gaps.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Exponential returns a sample of an exponential distribution with the
// given mean. It panics if mean <= 0.
func (g *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("stats: non-positive exponential mean")
	}
	return g.r.ExpFloat64() * mean
}

// Weibull returns a sample of a Weibull distribution with the given shape
// k and scale lambda, a common fit for heavy-tailed inter-arrival bursts.
func (g *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: non-positive Weibull parameter")
	}
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// Pareto returns a bounded Pareto sample in [lo, hi] with tail index
// alpha, used for heavy-tailed job size distributions (Curie-like traces).
func (g *RNG) Pareto(alpha, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		panic("stats: invalid bounded Pareto parameters")
	}
	u := g.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice.
func (g *RNG) Pick(xs []int) int { return xs[g.r.IntN(len(xs))] }

// Categorical returns an index sampled according to the (unnormalised)
// non-negative weights. It panics if the weights sum to zero or less.
func (g *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative categorical weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: categorical weights sum to zero")
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
