package stats

import (
	"math"
	"sort"
)

// Summary accumulates streaming count/mean/min/max statistics without
// retaining individual samples.
type Summary struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sumSq += x * x
}

// N returns the number of samples recorded.
func (s *Summary) N() int64 { return s.n }

// Sum returns the sum of all samples.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Var returns the population variance, or 0 with fewer than two samples.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 { // numeric noise
		return 0
	}
	return v
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It does not modify xs.
// It panics on an empty slice or a p outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	return PercentileInPlace(sorted, p)
}

// PercentileInPlace is Percentile without the defensive copy: it sorts
// xs in place, so callers that own a reusable scratch buffer (the
// scheduler's dynamic-cutoff path) pay zero allocations per call. The
// interpolation is identical to Percentile's.
func PercentileInPlace(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	sort.Float64s(xs)
	if len(xs) == 1 {
		return xs[0]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return xs[lo]
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
