package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntegration(t *testing.T) {
	m := NewMeter(2, 100, 5)
	m.Update(0, 0)
	m.Update(10, 8) // 10s at idle only: 2 nodes * 100W
	m.Update(20, 0) // 10s at 8 cores: 200W + 40W
	m.Update(30, 0) // 10s idle again
	want := 10*200.0 + 10*240.0 + 10*200.0
	if math.Abs(m.Joules()-want) > 1e-9 {
		t.Fatalf("joules %v, want %v", m.Joules(), want)
	}
	if math.Abs(m.KWh()-want/3.6e6) > 1e-12 {
		t.Fatalf("kwh %v", m.KWh())
	}
}

func TestFirstUpdateStartsClock(t *testing.T) {
	m := NewMeter(1, 100, 1)
	m.Update(500, 4)
	if m.Joules() != 0 {
		t.Fatal("energy accumulated before the clock started")
	}
	m.Update(600, 0)
	want := 100 * (100.0 + 4.0)
	if math.Abs(m.Joules()-want) > 1e-9 {
		t.Fatalf("joules %v, want %v", m.Joules(), want)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero nodes", func() { NewMeter(0, 1, 1) })
	mustPanic("negative power", func() { NewMeter(1, -1, 1) })
	mustPanic("negative cores", func() {
		m := NewMeter(1, 1, 1)
		m.Update(0, -1)
	})
	mustPanic("time backwards", func() {
		m := NewMeter(1, 1, 1)
		m.Update(10, 0)
		m.Update(5, 0)
	})
}

// Property: energy is monotonically non-decreasing and bounded by
// full-power integration.
func TestPropertyBounds(t *testing.T) {
	f := func(steps []uint8) bool {
		m := NewMeter(4, 50, 2)
		const coresPerNode = 8
		now := int64(0)
		m.Update(0, 0)
		prev := 0.0
		for _, s := range steps {
			now += int64(s%100) + 1
			cores := int(s) % (4*coresPerNode + 1)
			m.Update(now, cores)
			if m.Joules() < prev {
				return false
			}
			prev = m.Joules()
		}
		maxPower := 50*4.0 + 2*float64(4*coresPerNode)
		return m.Joules() <= maxPower*float64(now)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
