// Package energy integrates a simple node power model over simulated
// time, producing the energy-consumption comparison of the paper's
// Figure 9. The model captures the mechanism the paper credits for the
// 6% saving: every powered node draws idle power for the whole makespan,
// so finishing the same work sooner and packing cores more densely
// reduces the idle integral.
package energy

import "fmt"

// Default power figures loosely calibrated to the paper's MareNostrum4
// nodes (2× Intel Xeon Platinum 8160): what matters for the reproduction
// is the idle-to-active ratio, not the absolute wattage.
const (
	DefaultIdleNodeW = 100.0 // W drawn by a powered node with no job
	DefaultCoreW     = 5.0   // additional W per allocated core
)

// Meter integrates power over time. Times are simulation seconds.
type Meter struct {
	nodes     int
	idleNodeW float64
	coreW     float64
	lastT     int64
	usedCores int
	joules    float64
	started   bool
}

// NewMeter returns a meter for a machine with the given node count.
func NewMeter(nodes int, idleNodeW, coreW float64) *Meter {
	if nodes <= 0 {
		panic(fmt.Sprintf("energy: non-positive node count %d", nodes))
	}
	if idleNodeW < 0 || coreW < 0 {
		panic("energy: negative power figure")
	}
	return &Meter{nodes: nodes, idleNodeW: idleNodeW, coreW: coreW}
}

// Update accounts the interval since the previous update at the previous
// core usage, then records the new usage. The first call starts the
// integration clock.
func (m *Meter) Update(now int64, usedCores int) {
	if usedCores < 0 {
		panic(fmt.Sprintf("energy: negative core usage %d", usedCores))
	}
	if !m.started {
		m.started = true
		m.lastT = now
		m.usedCores = usedCores
		return
	}
	if now < m.lastT {
		panic(fmt.Sprintf("energy: time moved backwards: %d < %d", now, m.lastT))
	}
	dt := float64(now - m.lastT)
	m.joules += dt * (m.idleNodeW*float64(m.nodes) + m.coreW*float64(m.usedCores))
	m.lastT = now
	m.usedCores = usedCores
}

// Joules returns the energy integrated so far.
func (m *Meter) Joules() float64 { return m.joules }

// KWh returns the energy in kilowatt hours.
func (m *Meter) KWh() float64 { return m.joules / 3.6e6 }
