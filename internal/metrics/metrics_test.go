package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"sdpolicy/internal/job"
)

func res(id job.ID, submit, start, end, actual int64, nodes int) JobResult {
	return JobResult{ID: id, Submit: submit, Start: start, End: end,
		ReqTime: actual, ActualTime: actual, ReqNodes: nodes}
}

func TestBasicAggregates(t *testing.T) {
	rp := Report{Results: []JobResult{
		res(1, 0, 0, 100, 100, 1),    // slowdown 1
		res(2, 50, 150, 250, 100, 2), // wait 100, slowdown 2
	}}
	if err := rp.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := rp.Makespan(); got != 250 {
		t.Fatalf("makespan %d, want 250", got)
	}
	if got := rp.AvgResponse(); got != 150 {
		t.Fatalf("avg response %v, want 150", got)
	}
	if got := rp.AvgSlowdown(); got != 1.5 {
		t.Fatalf("avg slowdown %v, want 1.5", got)
	}
	if got := rp.AvgWait(); got != 50 {
		t.Fatalf("avg wait %v, want 50", got)
	}
}

func TestEmptyReport(t *testing.T) {
	var rp Report
	if rp.Makespan() != 0 || rp.AvgResponse() != 0 || rp.AvgSlowdown() != 0 ||
		rp.AvgWait() != 0 || rp.Daily() != nil {
		t.Fatal("empty report should be all zeros")
	}
}

func TestValidateCatches(t *testing.T) {
	bad := []JobResult{
		{ID: 1, Submit: 10, Start: 5, End: 20, ActualTime: 5}, // start before submit
		{ID: 1, Submit: 0, Start: 10, End: 5, ActualTime: 5},  // end before start
		{ID: 1, Submit: 0, Start: 0, End: 10, ActualTime: 0},  // no static time
		{ID: 1, Submit: 0, Start: 0, End: 10, ActualTime: 50}, // ran shorter than static
	}
	for i, r := range bad {
		rp := Report{Results: []JobResult{r}}
		if rp.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, r)
		}
	}
}

func TestBoundedSlowdown(t *testing.T) {
	// 10s job waiting 590s: raw slowdown 60; bounded with tau=600 -> 1.
	r := res(1, 0, 590, 600, 10, 1)
	if got := r.Slowdown(); got != 60 {
		t.Fatalf("raw slowdown %v, want 60", got)
	}
	if got := r.BoundedSlowdown(600); got != 1 {
		t.Fatalf("bounded slowdown %v, want 1", got)
	}
	// a long job is unaffected by the bound
	long := res(2, 0, 0, 7200, 7200, 1)
	if got := long.BoundedSlowdown(600); got != 1 {
		t.Fatalf("long job bounded slowdown %v, want 1", got)
	}
	waited := res(3, 0, 7200, 14400, 7200, 1)
	if got := waited.BoundedSlowdown(600); got != 2 {
		t.Fatalf("waited job bounded slowdown %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive bound")
		}
	}()
	r.BoundedSlowdown(0)
}

func TestReportBoundedAndPercentiles(t *testing.T) {
	rp := Report{Results: []JobResult{
		res(1, 0, 0, 100, 100, 1),    // slowdown 1
		res(2, 0, 100, 200, 100, 1),  // slowdown 2
		res(3, 0, 900, 1000, 100, 1), // slowdown 10
	}}
	if got := rp.AvgBoundedSlowdown(600); math.Abs(got-(1+1+10.0/6)/3) > 1e-9 {
		t.Fatalf("avg bounded slowdown %v", got)
	}
	if got := rp.SlowdownPercentile(50); got != 2 {
		t.Fatalf("p50 slowdown %v, want 2", got)
	}
	if got := rp.SlowdownPercentile(100); got != 10 {
		t.Fatalf("p100 slowdown %v, want 10", got)
	}
	var empty Report
	if empty.AvgBoundedSlowdown(600) != 0 || empty.SlowdownPercentile(50) != 0 {
		t.Fatal("empty report should report zeros")
	}
}

func TestCounters(t *testing.T) {
	a := res(1, 0, 0, 10, 10, 1)
	a.MalleableStart = true
	b := res(2, 0, 0, 10, 10, 1)
	b.WasMate = true
	rp := Report{Results: []JobResult{a, b, res(3, 0, 0, 10, 10, 1)}}
	if rp.MalleableStarts() != 1 || rp.Mates() != 1 {
		t.Fatalf("starts=%d mates=%d", rp.MalleableStarts(), rp.Mates())
	}
}

func TestDaily(t *testing.T) {
	day := int64(86400)
	a := res(1, 0, 0, 100, 100, 1)                 // day 0, slowdown 1
	b := res(2, 10, 10, 310, 100, 1)               // day 0, slowdown 3
	c := res(3, 2*day+5, 2*day+5, 2*day+55, 50, 1) // day 2, slowdown 1
	c.MalleableStart = true
	rp := Report{Results: []JobResult{a, b, c}}
	days := rp.Daily()
	if len(days) != 2 {
		t.Fatalf("got %d days, want 2 (day 1 empty)", len(days))
	}
	if days[0].Day != 0 || days[0].Jobs != 2 || days[0].AvgSlowdown != 2 {
		t.Fatalf("day 0: %+v", days[0])
	}
	if days[1].Day != 2 || days[1].MalleableStarts != 1 {
		t.Fatalf("day 2: %+v", days[1])
	}
}

func TestHeatmapBuckets(t *testing.T) {
	rp := Report{Results: []JobResult{
		res(1, 0, 0, 100, 100, 1),         // 1 node, <=5m
		res(2, 0, 0, 7200, 7200, 3),       // 3-4 nodes, <=4h
		res(3, 0, 0, 500000, 400000, 600), // 513-1024 nodes, >4d
	}}
	h := rp.NewHeatmap(MetricSlowdown)
	if h.Cells[0][0].Jobs != 1 {
		t.Fatalf("cell (1 node, <=5m) jobs %d", h.Cells[0][0].Jobs)
	}
	if h.Cells[2][2].Jobs != 1 {
		t.Fatalf("cell (3-4 nodes, <=4h) jobs %d", h.Cells[2][2].Jobs)
	}
	if h.Cells[10][6].Jobs != 1 {
		t.Fatalf("cell (513-1024, >4d) jobs %d", h.Cells[10][6].Jobs)
	}
	total := 0
	for i := range h.Cells {
		for j := range h.Cells[i] {
			total += h.Cells[i][j].Jobs
		}
	}
	if total != 3 {
		t.Fatalf("heatmap lost jobs: %d", total)
	}
}

func TestHeatmapMetricsAndRatio(t *testing.T) {
	// static run: slowdown 10; sd run: slowdown 2 => ratio 5 (improvement)
	static := Report{Results: []JobResult{res(1, 0, 900, 1000, 100, 1)}}
	sd := Report{Results: []JobResult{res(1, 0, 100, 200, 100, 1)}}
	hs := static.NewHeatmap(MetricSlowdown)
	hd := sd.NewHeatmap(MetricSlowdown)
	ratio := hs.Ratio(hd)
	if got := ratio[0][0]; math.Abs(got-5) > 1e-9 {
		t.Fatalf("ratio %v, want 5", got)
	}
	// empty cells are NaN
	if !math.IsNaN(ratio[1][1]) {
		t.Fatal("empty cell ratio should be NaN")
	}
	// wait ratio: static wait 900, sd wait 100 => 9
	rw := static.NewHeatmap(MetricWait).Ratio(sd.NewHeatmap(MetricWait))
	if got := rw[0][0]; math.Abs(got-9) > 1e-9 {
		t.Fatalf("wait ratio %v, want 9", got)
	}
	// runtime ratio: both ran 100s => 1
	rr := static.NewHeatmap(MetricRunTime).Ratio(sd.NewHeatmap(MetricRunTime))
	if got := rr[0][0]; math.Abs(got-1) > 1e-9 {
		t.Fatalf("runtime ratio %v, want 1", got)
	}
}

func TestRatioPanicsOnMetricMismatch(t *testing.T) {
	rp := Report{Results: []JobResult{res(1, 0, 0, 10, 10, 1)}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rp.NewHeatmap(MetricSlowdown).Ratio(rp.NewHeatmap(MetricWait))
}

func TestBucketLabels(t *testing.T) {
	if NodeBucketLabel(0) != "1 nodes" && NodeBucketLabel(0) != "1 node" {
		// label text just needs to be stable and non-empty
		if NodeBucketLabel(0) == "" {
			t.Fatal("empty node label")
		}
	}
	for i := range NodeEdges {
		if NodeBucketLabel(i) == "" {
			t.Fatalf("empty node label %d", i)
		}
	}
	for i := range TimeEdges {
		if TimeBucketLabel(i) == "" {
			t.Fatalf("empty time label %d", i)
		}
	}
}

// Property: every job lands in exactly one heatmap cell and the overall
// mean of cell means weighted by counts equals the report mean.
func TestPropertyHeatmapPartition(t *testing.T) {
	f := func(waits []uint16, sizes []uint8) bool {
		n := len(waits)
		if len(sizes) < n {
			n = len(sizes)
		}
		if n == 0 {
			return true
		}
		var rs []JobResult
		for i := 0; i < n; i++ {
			w := int64(waits[i])
			nodes := int(sizes[i]%64) + 1
			rs = append(rs, res(job.ID(i+1), 0, w, w+100, 100, nodes))
		}
		rp := Report{Results: rs}
		h := rp.NewHeatmap(MetricSlowdown)
		total := 0
		var weighted float64
		for i := range h.Cells {
			for j := range h.Cells[i] {
				total += h.Cells[i][j].Jobs
				weighted += h.Cells[i][j].Mean * float64(h.Cells[i][j].Jobs)
			}
		}
		if total != n {
			return false
		}
		return math.Abs(weighted/float64(n)-rp.AvgSlowdown()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
