// Package metrics computes the evaluation metrics of the paper
// (Section 4): makespan, average response time, average slowdown, the
// per-day slowdown series of Figure 7 and the (nodes × runtime) category
// heatmaps of Figures 4–6.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"sdpolicy/internal/job"
	"sdpolicy/internal/stats"
)

// JobResult is the completion record of one job.
type JobResult struct {
	ID         job.ID
	Submit     int64
	Start      int64
	End        int64
	ReqTime    int64
	ActualTime int64 // static execution time: the slowdown denominator
	ReqNodes   int
	Kind       job.Kind
	App        job.AppClass
	// MalleableStart marks jobs co-scheduled by SD-Policy as guests.
	MalleableStart bool
	// WasMate marks jobs that were shrunk at least once to host a guest.
	WasMate bool
}

// Wait returns start − submit.
func (r *JobResult) Wait() int64 { return r.Start - r.Submit }

// Response returns end − submit.
func (r *JobResult) Response() int64 { return r.End - r.Submit }

// RunTime returns end − start (stretched by malleability if any).
func (r *JobResult) RunTime() int64 { return r.End - r.Start }

// Slowdown returns response time divided by the static execution time,
// the paper's definition (Section 4).
func (r *JobResult) Slowdown() float64 {
	if r.ActualTime <= 0 {
		panic(fmt.Sprintf("metrics: job %d has non-positive static time", r.ID))
	}
	return float64(r.Response()) / float64(r.ActualTime)
}

// BoundedSlowdown returns the bounded slowdown of Feitelson's metrics
// work (cited by the paper in Section 3.2.1): response / max(actual,
// tau), clamped below at 1, so sub-tau jobs cannot dominate the average.
func (r *JobResult) BoundedSlowdown(tau int64) float64 {
	if tau <= 0 {
		panic(fmt.Sprintf("metrics: non-positive bound %d", tau))
	}
	denom := r.ActualTime
	if denom < tau {
		denom = tau
	}
	sd := float64(r.Response()) / float64(denom)
	if sd < 1 {
		return 1
	}
	return sd
}

// Report aggregates the completions of one simulation run.
type Report struct {
	Results []JobResult
}

// Validate reports the first inconsistent result record, or nil.
func (rp *Report) Validate() error {
	for i := range rp.Results {
		r := &rp.Results[i]
		switch {
		case r.Start < r.Submit:
			return fmt.Errorf("job %d started before submit", r.ID)
		case r.End < r.Start:
			return fmt.Errorf("job %d ended before start", r.ID)
		case r.ActualTime <= 0:
			return fmt.Errorf("job %d has non-positive static time", r.ID)
		case r.RunTime() < r.ActualTime:
			return fmt.Errorf("job %d ran %ds, shorter than its static time %ds",
				r.ID, r.RunTime(), r.ActualTime)
		}
	}
	return nil
}

// Makespan returns last end − first submit, the paper's definition.
func (rp *Report) Makespan() int64 {
	if len(rp.Results) == 0 {
		return 0
	}
	firstSubmit := rp.Results[0].Submit
	var lastEnd int64
	for i := range rp.Results {
		if rp.Results[i].Submit < firstSubmit {
			firstSubmit = rp.Results[i].Submit
		}
		if rp.Results[i].End > lastEnd {
			lastEnd = rp.Results[i].End
		}
	}
	return lastEnd - firstSubmit
}

// AvgResponse returns the mean response time in seconds.
func (rp *Report) AvgResponse() float64 {
	if len(rp.Results) == 0 {
		return 0
	}
	var sum float64
	for i := range rp.Results {
		sum += float64(rp.Results[i].Response())
	}
	return sum / float64(len(rp.Results))
}

// AvgSlowdown returns the mean slowdown.
func (rp *Report) AvgSlowdown() float64 {
	if len(rp.Results) == 0 {
		return 0
	}
	var sum float64
	for i := range rp.Results {
		sum += rp.Results[i].Slowdown()
	}
	return sum / float64(len(rp.Results))
}

// AvgBoundedSlowdown returns the mean bounded slowdown with bound tau
// (10 minutes is the customary value in the scheduling literature).
func (rp *Report) AvgBoundedSlowdown(tau int64) float64 {
	if len(rp.Results) == 0 {
		return 0
	}
	var sum float64
	for i := range rp.Results {
		sum += rp.Results[i].BoundedSlowdown(tau)
	}
	return sum / float64(len(rp.Results))
}

// SlowdownPercentile returns the p-th percentile of per-job slowdowns.
func (rp *Report) SlowdownPercentile(p float64) float64 {
	if len(rp.Results) == 0 {
		return 0
	}
	xs := make([]float64, len(rp.Results))
	for i := range rp.Results {
		xs[i] = rp.Results[i].Slowdown()
	}
	return stats.Percentile(xs, p)
}

// AvgWait returns the mean queue wait in seconds.
func (rp *Report) AvgWait() float64 {
	if len(rp.Results) == 0 {
		return 0
	}
	var sum float64
	for i := range rp.Results {
		sum += float64(rp.Results[i].Wait())
	}
	return sum / float64(len(rp.Results))
}

// MalleableStarts returns how many jobs were co-scheduled as guests.
func (rp *Report) MalleableStarts() int {
	n := 0
	for i := range rp.Results {
		if rp.Results[i].MalleableStart {
			n++
		}
	}
	return n
}

// Mates returns how many jobs served as mates at least once.
func (rp *Report) Mates() int {
	n := 0
	for i := range rp.Results {
		if rp.Results[i].WasMate {
			n++
		}
	}
	return n
}

// DayStats is one point of the Figure 7 series.
type DayStats struct {
	Day             int // day index from the first submit
	Jobs            int
	AvgSlowdown     float64
	MalleableStarts int
}

// Daily buckets jobs by submit day and returns per-day average slowdown
// and malleable-start counts, ordered by day. Empty days are omitted.
func (rp *Report) Daily() []DayStats {
	if len(rp.Results) == 0 {
		return nil
	}
	first := rp.Results[0].Submit
	for i := range rp.Results {
		if rp.Results[i].Submit < first {
			first = rp.Results[i].Submit
		}
	}
	type acc struct {
		n, mall int
		sum     float64
	}
	days := map[int]*acc{}
	for i := range rp.Results {
		r := &rp.Results[i]
		d := int((r.Submit - first) / 86400)
		a := days[d]
		if a == nil {
			a = &acc{}
			days[d] = a
		}
		a.n++
		a.sum += r.Slowdown()
		if r.MalleableStart {
			a.mall++
		}
	}
	out := make([]DayStats, 0, len(days))
	for d, a := range days {
		out = append(out, DayStats{Day: d, Jobs: a.n, AvgSlowdown: a.sum / float64(a.n), MalleableStarts: a.mall})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Day < out[j].Day })
	return out
}

// Metric selects which per-job quantity a heatmap aggregates.
type Metric uint8

const (
	// MetricSlowdown aggregates job slowdowns (Figure 4).
	MetricSlowdown Metric = iota
	// MetricRunTime aggregates stretched runtimes (Figure 5).
	MetricRunTime
	// MetricWait aggregates queue waits (Figure 6).
	MetricWait
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case MetricSlowdown:
		return "slowdown"
	case MetricRunTime:
		return "runtime"
	case MetricWait:
		return "wait"
	}
	return fmt.Sprintf("Metric(%d)", uint8(m))
}

// Heatmap bucket edges follow the paper's Figure 4 axes: requested nodes
// in powers of two and runtime in operator-meaningful spans.
var (
	// NodeEdges are upper bounds (inclusive) of the node-count buckets.
	NodeEdges = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, math.MaxInt}
	// TimeEdges are upper bounds (inclusive, seconds) of the runtime
	// buckets: 5m, 1h, 4h, 12h, 1d, 4d, rest.
	TimeEdges = []int64{300, 3600, 4 * 3600, 12 * 3600, 86400, 4 * 86400, math.MaxInt64}
)

// NodeBucketLabel names node bucket i.
func NodeBucketLabel(i int) string {
	lo := 1
	if i > 0 {
		lo = NodeEdges[i-1] + 1
	}
	if NodeEdges[i] == math.MaxInt {
		return fmt.Sprintf(">%d nodes", NodeEdges[i-1])
	}
	if lo == NodeEdges[i] {
		return fmt.Sprintf("%d nodes", lo)
	}
	return fmt.Sprintf("%d-%d nodes", lo, NodeEdges[i])
}

// TimeBucketLabel names runtime bucket i.
func TimeBucketLabel(i int) string {
	labels := []string{"<=5m", "<=1h", "<=4h", "<=12h", "<=1d", "<=4d", ">4d"}
	return labels[i]
}

// Cell is one heatmap cell aggregate.
type Cell struct {
	Jobs int
	Mean float64
}

// Heatmap is a (node bucket × time bucket) aggregation of one metric.
type Heatmap struct {
	Metric Metric
	Cells  [][]Cell // [node bucket][time bucket]
}

// NewHeatmap aggregates the report into category means. Job categories
// use the requested node count and the *static* runtime, so the same job
// lands in the same cell under both policies and cells stay comparable.
func (rp *Report) NewHeatmap(m Metric) *Heatmap {
	h := &Heatmap{Metric: m, Cells: make([][]Cell, len(NodeEdges))}
	sums := make([][]float64, len(NodeEdges))
	for i := range h.Cells {
		h.Cells[i] = make([]Cell, len(TimeEdges))
		sums[i] = make([]float64, len(TimeEdges))
	}
	for i := range rp.Results {
		r := &rp.Results[i]
		nb := bucketOfInt(r.ReqNodes, NodeEdges)
		tb := bucketOfInt64(r.ActualTime, TimeEdges)
		var v float64
		switch m {
		case MetricSlowdown:
			v = r.Slowdown()
		case MetricRunTime:
			v = float64(r.RunTime())
		case MetricWait:
			v = float64(r.Wait())
		default:
			panic(fmt.Sprintf("metrics: unknown metric %d", m))
		}
		h.Cells[nb][tb].Jobs++
		sums[nb][tb] += v
	}
	for i := range h.Cells {
		for j := range h.Cells[i] {
			if h.Cells[i][j].Jobs > 0 {
				h.Cells[i][j].Mean = sums[i][j] / float64(h.Cells[i][j].Jobs)
			}
		}
	}
	return h
}

// Ratio returns base mean / other mean per cell (the Figures 4–6
// convention: >1 means the SD run improved over static). Cells empty in
// either map yield NaN. Panics if the metrics differ.
func (h *Heatmap) Ratio(other *Heatmap) [][]float64 {
	if h.Metric != other.Metric {
		panic("metrics: ratio of different metrics")
	}
	out := make([][]float64, len(h.Cells))
	for i := range h.Cells {
		out[i] = make([]float64, len(h.Cells[i]))
		for j := range h.Cells[i] {
			a, b := h.Cells[i][j], other.Cells[i][j]
			if a.Jobs == 0 || b.Jobs == 0 || b.Mean == 0 {
				out[i][j] = math.NaN()
				continue
			}
			out[i][j] = a.Mean / b.Mean
		}
	}
	return out
}

func bucketOfInt(v int, edges []int) int {
	for i, e := range edges {
		if v <= e {
			return i
		}
	}
	return len(edges) - 1
}

func bucketOfInt64(v int64, edges []int64) int {
	for i, e := range edges {
		if v <= e {
			return i
		}
	}
	return len(edges) - 1
}
