package trace

import (
	"strings"
	"testing"

	"sdpolicy/internal/job"
)

func recordSample() *Recorder {
	r := NewRecorder()
	r.JobSubmitted(0, 1)
	r.JobStarted(0, 1, 2, false)
	r.Usage(0, 96)
	r.JobSubmitted(10, 2)
	r.JobStarted(10, 2, 2, true)
	r.JobReconfigured(10, 1, 48)
	r.Usage(10, 96)
	r.JobFinished(210, 2)
	r.JobReconfigured(210, 1, 96)
	r.Usage(210, 96)
	r.JobFinished(1100, 1)
	r.Usage(1100, 0)
	return r
}

func TestEventRecording(t *testing.T) {
	r := recordSample()
	if got := r.Count(Submitted); got != 2 {
		t.Fatalf("submitted %d, want 2", got)
	}
	if got := r.Count(Started); got != 1 {
		t.Fatalf("static starts %d, want 1", got)
	}
	if got := r.Count(StartedMall); got != 1 {
		t.Fatalf("malleable starts %d, want 1", got)
	}
	if got := r.Count(Reconfigured); got != 2 {
		t.Fatalf("reconfigurations %d, want 2", got)
	}
	if got := r.Count(Finished); got != 2 {
		t.Fatalf("finishes %d, want 2", got)
	}
	evs := r.Events()
	if evs[0].Job != job.ID(1) || evs[0].Kind != Submitted {
		t.Fatalf("first event %+v", evs[0])
	}
}

func TestUsageCoalescesSameTime(t *testing.T) {
	r := NewRecorder()
	r.Usage(5, 10)
	r.Usage(5, 20) // same timestamp: overwrite
	r.Usage(6, 30)
	tl := r.Timeline()
	if len(tl) != 2 || tl[0].UsedCores != 20 || tl[1].UsedCores != 30 {
		t.Fatalf("timeline %+v", tl)
	}
}

func TestWriteCSV(t *testing.T) {
	r := recordSample()
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "time,event,job,value\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "10,started-malleable,2,2") {
		t.Fatalf("malleable start row missing: %q", out)
	}
	if got := strings.Count(out, "\n"); got != len(r.Events())+1 {
		t.Fatalf("row count %d, want %d", got, len(r.Events())+1)
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	r := recordSample()
	var b strings.Builder
	if err := r.WriteTimelineCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "time,used_cores") ||
		!strings.Contains(b.String(), "1100,0") {
		t.Fatalf("timeline csv: %q", b.String())
	}
}

func TestMeanUtilization(t *testing.T) {
	r := NewRecorder()
	r.Usage(0, 100)
	r.Usage(50, 0)
	r.Usage(100, 0)
	// 50s at 100 cores + 50s at 0 over 100s on a 200-core machine
	want := (50.0 * 100) / (100 * 200)
	if got := r.MeanUtilization(200); got != want {
		t.Fatalf("utilization %v, want %v", got, want)
	}
	if NewRecorder().MeanUtilization(10) != 0 {
		t.Fatal("empty recorder should report 0 utilization")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero cores")
		}
	}()
	r.MeanUtilization(0)
}
