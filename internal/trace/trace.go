// Package trace records the scheduling events of a simulation run —
// submissions, static and malleable starts, shrink/expand
// reconfigurations and completions — and derives analysis artefacts from
// them: a CSV event log and the machine utilisation timeline. It backs
// sdsim's -trace flag.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"sdpolicy/internal/job"
)

// Kind is an event type.
type Kind string

// Event kinds, in lifecycle order.
const (
	Submitted    Kind = "submitted"
	Started      Kind = "started"
	StartedMall  Kind = "started-malleable"
	Reconfigured Kind = "reconfigured"
	Finished     Kind = "finished"
)

// Event is one recorded scheduling event.
type Event struct {
	Time int64
	Kind Kind
	Job  job.ID
	// Value is kind-specific: nodes for starts, total cores for
	// reconfigurations, 0 otherwise.
	Value int
}

// UsagePoint is one step of the utilisation timeline.
type UsagePoint struct {
	Time      int64
	UsedCores int
}

// Recorder implements sched.Observer, accumulating events and the
// core-usage timeline.
type Recorder struct {
	events []Event
	usage  []UsagePoint
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// JobSubmitted implements sched.Observer.
func (r *Recorder) JobSubmitted(now int64, id job.ID) {
	r.events = append(r.events, Event{Time: now, Kind: Submitted, Job: id})
}

// JobStarted implements sched.Observer.
func (r *Recorder) JobStarted(now int64, id job.ID, nodes int, malleable bool) {
	kind := Started
	if malleable {
		kind = StartedMall
	}
	r.events = append(r.events, Event{Time: now, Kind: kind, Job: id, Value: nodes})
}

// JobReconfigured implements sched.Observer.
func (r *Recorder) JobReconfigured(now int64, id job.ID, totalCores int) {
	r.events = append(r.events, Event{Time: now, Kind: Reconfigured, Job: id, Value: totalCores})
}

// JobFinished implements sched.Observer.
func (r *Recorder) JobFinished(now int64, id job.ID) {
	r.events = append(r.events, Event{Time: now, Kind: Finished, Job: id})
}

// Usage implements sched.Observer.
func (r *Recorder) Usage(now int64, usedCores int) {
	n := len(r.usage)
	if n > 0 && r.usage[n-1].Time == now {
		r.usage[n-1].UsedCores = usedCores
		return
	}
	r.usage = append(r.usage, UsagePoint{Time: now, UsedCores: usedCores})
}

// Events returns the recorded events in order.
func (r *Recorder) Events() []Event { return r.events }

// Timeline returns the core-usage steps in time order.
func (r *Recorder) Timeline() []UsagePoint { return r.usage }

// Count returns how many events of the kind were recorded.
func (r *Recorder) Count(k Kind) int {
	n := 0
	for i := range r.events {
		if r.events[i].Kind == k {
			n++
		}
	}
	return n
}

// WriteCSV emits the event log with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "event", "job", "value"}); err != nil {
		return err
	}
	for _, e := range r.events {
		rec := []string{
			strconv.FormatInt(e.Time, 10),
			string(e.Kind),
			strconv.FormatInt(int64(e.Job), 10),
			strconv.Itoa(e.Value),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTimelineCSV emits the utilisation timeline with a header row.
func (r *Recorder) WriteTimelineCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "used_cores"}); err != nil {
		return err
	}
	for _, p := range r.usage {
		if err := cw.Write([]string{
			strconv.FormatInt(p.Time, 10), strconv.Itoa(p.UsedCores),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// MeanUtilization integrates the timeline against the machine's core
// count, returning the average fraction of allocated cores over
// [first event, last event]. It returns 0 for fewer than two points.
func (r *Recorder) MeanUtilization(totalCores int) float64 {
	if totalCores <= 0 {
		panic(fmt.Sprintf("trace: non-positive core count %d", totalCores))
	}
	if len(r.usage) < 2 {
		return 0
	}
	var coreSeconds float64
	for i := 1; i < len(r.usage); i++ {
		dt := float64(r.usage[i].Time - r.usage[i-1].Time)
		coreSeconds += dt * float64(r.usage[i-1].UsedCores)
	}
	span := float64(r.usage[len(r.usage)-1].Time - r.usage[0].Time)
	if span <= 0 {
		return 0
	}
	return coreSeconds / (span * float64(totalCores))
}
