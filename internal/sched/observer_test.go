package sched

import (
	"testing"

	"sdpolicy/internal/job"
	"sdpolicy/internal/trace"
	"sdpolicy/internal/workload"
)

// The trace recorder must satisfy the observer contract.
var _ Observer = (*trace.Recorder)(nil)

func TestObserverReceivesLifecycle(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := sdConfig()
	cfg.Observer = rec
	spec := tiny(2, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Malleable),
		mj(2, 10, 100, 100, 2, job.Malleable),
	})
	res := runOrFail(t, spec, cfg)
	if rec.Count(trace.Submitted) != 2 {
		t.Fatalf("submitted events %d, want 2", rec.Count(trace.Submitted))
	}
	if rec.Count(trace.Started) != 1 || rec.Count(trace.StartedMall) != 1 {
		t.Fatalf("start events: static=%d malleable=%d",
			rec.Count(trace.Started), rec.Count(trace.StartedMall))
	}
	if rec.Count(trace.Finished) != 2 {
		t.Fatalf("finished events %d, want 2", rec.Count(trace.Finished))
	}
	// the mate shrank at guest start and expanded at guest end
	if rec.Count(trace.Reconfigured) < 2 {
		t.Fatalf("reconfiguration events %d, want >= 2", rec.Count(trace.Reconfigured))
	}
	if len(rec.Timeline()) == 0 {
		t.Fatal("no usage timeline recorded")
	}
	_ = res
}

func TestObserverUtilizationMatchesMeter(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := Defaults()
	cfg.Observer = rec
	spec := workload.WL5(0.15, 2)
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	util := rec.MeanUtilization(spec.Cluster.TotalCores())
	if util <= 0 || util > 1 {
		t.Fatalf("mean utilization %v out of (0,1]", util)
	}
	_ = res
}
