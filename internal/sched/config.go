// Package sched implements the paper's scheduling layer: the static
// conservative-backfill baseline and SD-Policy on top of it (Listings
// 1-3), driven by the discrete-event engine over the cluster, node
// manager and runtime model substrates.
package sched

import (
	"fmt"
	"math"

	"sdpolicy/internal/job"
	"sdpolicy/internal/model"
)

// PolicyKind selects the scheduling policy.
type PolicyKind uint8

const (
	// StaticBackfill is the baseline: conservative backfill with
	// reservations, no malleability.
	StaticBackfill PolicyKind = iota
	// SDPolicy is the paper's contribution: static trial first, then the
	// malleable co-scheduling trial of Listing 1.
	SDPolicy
	// Oversubscribe is the static resource-sharing family the paper
	// positions SD-Policy against (§1, §5: gang scheduling /
	// co-scheduling with oversubscription): jobs share nodes without
	// adapting, so every co-resident pays a context-switching and
	// contention penalty on top of the halved resources. Works on any
	// job kind; uses no DROM adaptation.
	Oversubscribe
)

// String returns the policy name.
func (p PolicyKind) String() string {
	switch p {
	case StaticBackfill:
		return "static-backfill"
	case SDPolicy:
		return "sd-policy"
	case Oversubscribe:
		return "oversubscribe"
	}
	return fmt.Sprintf("PolicyKind(%d)", uint8(p))
}

// CutoffKind selects how MAX_SLOWDOWN is determined (Section 3.2.2).
type CutoffKind uint8

const (
	// CutoffStatic uses the fixed MaxSlowdown value.
	CutoffStatic CutoffKind = iota
	// CutoffDynAvg recomputes the cut-off as the mean predicted slowdown
	// of running jobs at every pass (DynAVGSD).
	CutoffDynAvg
	// CutoffDynMedian uses the median instead (analysed in the paper,
	// "did not report improvement overall").
	CutoffDynMedian
	// CutoffDynP70 uses the 70th percentile (also analysed).
	CutoffDynP70
)

// String returns the cut-off strategy name.
func (c CutoffKind) String() string {
	switch c {
	case CutoffStatic:
		return "static"
	case CutoffDynAvg:
		return "dyn-avg"
	case CutoffDynMedian:
		return "dyn-median"
	case CutoffDynP70:
		return "dyn-p70"
	}
	return fmt.Sprintf("CutoffKind(%d)", uint8(c))
}

// Config parameterises one simulation run.
type Config struct {
	// Policy is the scheduling policy; default StaticBackfill.
	Policy PolicyKind
	// MaxSlowdown is the static MAX_SLOWDOWN cut-off P of Eq. 2.
	// +Inf (the default via Defaults) disables the cut-off ("MAXSD
	// infinite").
	MaxSlowdown float64
	// Cutoff selects static or feedback-driven MAX_SLOWDOWN.
	Cutoff CutoffKind
	// QueueMaxSlowdown overrides MaxSlowdown per submission queue (QoS
	// policies, §4.1). Jobs whose queue is absent use MaxSlowdown. The
	// override applies to the cut-off used while scheduling that job as
	// a guest; it has no effect with a dynamic Cutoff.
	QueueMaxSlowdown map[string]float64
	// SharingFactor bounds what a shrunk mate cedes (Section 3.3);
	// the paper's value for two-socket nodes is 0.5.
	SharingFactor float64
	// MaxMates is m, the largest mate combination searched; the paper
	// found no benefit beyond 2.
	MaxMates int
	// CandidateCap is nm, the maximum number of lowest-penalty mates the
	// heuristic considers.
	CandidateCap int
	// RuntimeModel is the model jobs actually follow in simulation
	// (Figure 8 compares Ideal and WorstCase; App for the real-run
	// emulation).
	RuntimeModel model.Kind
	// BackfillDepth caps how many queued jobs one pass examines
	// (SLURM bf_max_job_test).
	BackfillDepth int
	// ReservationDepth caps how many waiting jobs hold a future
	// reservation. BackfillDepth (the default, set by Defaults) gives
	// conservative backfill; 1 gives the EASY variant where only the
	// queue head is protected from starvation.
	ReservationDepth int
	// IncludeFreeNodes lets mate combinations mix in currently free
	// nodes (Section 3.2.4 option).
	IncludeFreeNodes bool
	// OversubPenalty is the fractional throughput loss each job suffers
	// while sharing a node under the Oversubscribe policy (context
	// switching, cache thrashing). Ignored by the other policies.
	OversubPenalty float64
	// DROMOverhead is the simulated seconds per mask reconfiguration.
	DROMOverhead int64
	// Speedups provides per-application speedup curves for the App
	// runtime model; nil selects a linear curve.
	Speedups func(job.AppClass) model.SpeedupFn
	// CheckpointEvents is how many simulation events RunContext
	// processes between context-cancellation checks; 0 selects
	// sim.DefaultCheckpoint. Smaller values tighten cancellation
	// latency at a (tiny) per-event cost.
	CheckpointEvents uint64
	// Observer, when non-nil, receives scheduling events as they happen
	// (job starts, reconfigurations, completions, usage changes) for
	// trace recording and live analysis.
	Observer Observer
	// EnergyIdleNodeW and EnergyCoreW parameterise the power model.
	EnergyIdleNodeW float64
	EnergyCoreW     float64
}

// Defaults returns the configuration used throughout the paper's
// simulations: static backfill baseline, SharingFactor 0.5, m=2,
// worst-case predictions, no cut-off.
func Defaults() Config {
	return Config{
		Policy:           StaticBackfill,
		MaxSlowdown:      math.Inf(1),
		Cutoff:           CutoffStatic,
		SharingFactor:    0.5,
		MaxMates:         2,
		CandidateCap:     64,
		RuntimeModel:     model.Ideal,
		BackfillDepth:    100,
		ReservationDepth: 100,
		EnergyIdleNodeW:  0, // filled by Run from energy defaults
		EnergyCoreW:      0,
	}
}

// Validate reports the first invalid field.
func (c *Config) Validate() error {
	switch {
	case c.SharingFactor <= 0 || c.SharingFactor >= 1:
		return fmt.Errorf("sched: sharing factor %v out of (0,1)", c.SharingFactor)
	case c.MaxMates < 1:
		return fmt.Errorf("sched: max mates %d < 1", c.MaxMates)
	case c.CandidateCap < 1:
		return fmt.Errorf("sched: candidate cap %d < 1", c.CandidateCap)
	case c.BackfillDepth < 1:
		return fmt.Errorf("sched: backfill depth %d < 1", c.BackfillDepth)
	case c.ReservationDepth < 1:
		return fmt.Errorf("sched: reservation depth %d < 1", c.ReservationDepth)
	case c.MaxSlowdown <= 0:
		return fmt.Errorf("sched: max slowdown %v <= 0", c.MaxSlowdown)
	case c.DROMOverhead < 0:
		return fmt.Errorf("sched: negative DROM overhead %d", c.DROMOverhead)
	case c.OversubPenalty < 0 || c.OversubPenalty >= 1:
		return fmt.Errorf("sched: oversubscription penalty %v out of [0,1)", c.OversubPenalty)
	}
	return nil
}
