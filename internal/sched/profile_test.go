package sched

import "testing"

func TestProfileEmptyMachine(t *testing.T) {
	p := newProfile(100, 8, 8, nil)
	if got := p.earliestStart(8, 1000); got != 100 {
		t.Fatalf("earliest start %d, want 100", got)
	}
}

func TestProfileWaitsForRelease(t *testing.T) {
	// 4 nodes: 2 free now, 2 release at t=500
	p := newProfile(0, 4, 2, []int64{500, 500})
	if got := p.earliestStart(2, 100); got != 0 {
		t.Fatalf("small job start %d, want 0", got)
	}
	if got := p.earliestStart(4, 100); got != 500 {
		t.Fatalf("large job start %d, want 500", got)
	}
	if got := p.earliestStart(3, 100); got != 500 {
		t.Fatalf("3-node job start %d, want 500", got)
	}
}

func TestProfileReservationBlocksWindow(t *testing.T) {
	// 4 nodes free; a reservation takes all 4 during [1000, 1500).
	p := newProfile(0, 4, 4, nil)
	p.reserve(1000, 1500, 4)
	// A job ending before 1000 fits now.
	if got := p.earliestStart(2, 900); got != 0 {
		t.Fatalf("short backfill start %d, want 0", got)
	}
	// A job overlapping the reservation must wait until it ends.
	if got := p.earliestStart(2, 1100); got != 1500 {
		t.Fatalf("long job start %d, want 1500", got)
	}
}

func TestProfileDipAndRecover(t *testing.T) {
	// 4 nodes: all free; reservation of 3 during [100, 200).
	p := newProfile(0, 4, 4, nil)
	p.reserve(100, 200, 3)
	// 2-node job of duration 150 cannot span the dip; starts at 200.
	if got := p.earliestStart(2, 150); got != 200 {
		t.Fatalf("start %d, want 200", got)
	}
	// 1-node job fits through the dip.
	if got := p.earliestStart(1, 150); got != 0 {
		t.Fatalf("1-node start %d, want 0", got)
	}
}

func TestProfileReserveNow(t *testing.T) {
	p := newProfile(0, 4, 4, nil)
	p.reserve(0, 100, 3)
	if p.availNow != 1 {
		t.Fatalf("availNow %d, want 1", p.availNow)
	}
	if got := p.earliestStart(2, 50); got != 100 {
		t.Fatalf("start %d, want 100", got)
	}
}

func TestProfilePastReleaseClamped(t *testing.T) {
	// A release predicted in the past (overrun) is treated as imminent.
	p := newProfile(1000, 2, 1, []int64{500})
	if got := p.earliestStart(2, 100); got != 1001 {
		t.Fatalf("start %d, want 1001", got)
	}
}

func TestProfilePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	p := newProfile(0, 4, 4, nil)
	mustPanic("too many nodes", func() { p.earliestStart(5, 10) })
	mustPanic("zero duration", func() { p.earliestStart(1, 0) })
	mustPanic("bad reservation", func() { p.reserve(10, 10, 1) })
	mustPanic("reservation in the past", func() {
		q := newProfile(100, 4, 4, nil)
		q.reserve(50, 60, 1)
	})
	mustPanic("over-reserve now", func() {
		q := newProfile(0, 4, 2, []int64{10, 10})
		q.reserve(0, 5, 3)
	})
}
