package sched

import (
	"math/rand"
	"testing"
)

// refAvail computes availability at time t by brute force from the
// profile's breakpoints.
func refAvail(p *profile, t int64) int {
	avail := p.availNow
	for i, bt := range p.times {
		if bt <= t {
			avail += p.deltas[i]
		}
	}
	return avail
}

// refEarliest finds the earliest feasible start by scanning candidate
// times (now plus every breakpoint) and checking the full window.
func refEarliest(p *profile, nodes int, dur int64) int64 {
	candidates := append([]int64{p.now}, p.times...)
	for _, start := range candidates {
		if start < p.now {
			continue
		}
		ok := true
		// check at start and at every breakpoint inside the window
		if refAvail(p, start) < nodes {
			ok = false
		}
		for _, bt := range p.times {
			if bt > start && bt < start+dur && refAvail(p, bt) < nodes {
				ok = false
				break
			}
		}
		if ok {
			return start
		}
	}
	panic("refEarliest: no feasible start")
}

// Property: the incremental sweep in earliestStart agrees with the
// brute-force reference on random profiles with random reservations.
func TestPropertyEarliestStartMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 500; trial++ {
		total := 4 + rng.Intn(28)
		busy := rng.Intn(total + 1)
		releases := make([]int64, busy)
		for i := range releases {
			releases[i] = int64(1 + rng.Intn(1000))
		}
		p := newProfile(0, total, total-busy, releases)
		// sprinkle reservations that respect availability
		for k := 0; k < rng.Intn(6); k++ {
			nodes := 1 + rng.Intn(total)
			dur := int64(1 + rng.Intn(500))
			est := p.earliestStart(nodes, dur)
			p.reserve(est, est+dur, nodes)
		}
		nodes := 1 + rng.Intn(total)
		dur := int64(1 + rng.Intn(800))
		got := p.earliestStart(nodes, dur)
		want := refEarliest(p, nodes, dur)
		if got != want {
			t.Fatalf("trial %d: earliestStart(%d,%d) = %d, brute force %d\n"+
				"availNow=%d times=%v deltas=%v",
				trial, nodes, dur, got, want, p.availNow, p.times, p.deltas)
		}
		// the result must itself be feasible
		if refAvail(p, got) < nodes {
			t.Fatalf("trial %d: infeasible start", trial)
		}
	}
}

// Property: reservations are conserved — after any mix of reservations,
// availability far in the future returns to the full machine.
func TestPropertyReservationsConserveNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	for trial := 0; trial < 200; trial++ {
		total := 2 + rng.Intn(30)
		busy := rng.Intn(total + 1)
		releases := make([]int64, busy)
		for i := range releases {
			releases[i] = int64(1 + rng.Intn(400))
		}
		p := newProfile(0, total, total-busy, releases)
		for k := 0; k < rng.Intn(8); k++ {
			nodes := 1 + rng.Intn(total)
			dur := int64(1 + rng.Intn(300))
			est := p.earliestStart(nodes, dur)
			p.reserve(est, est+dur, nodes)
		}
		if got := refAvail(p, 1<<40); got != total {
			t.Fatalf("trial %d: availability at infinity %d, want %d", trial, got, total)
		}
	}
}
