package sched

import (
	"math"
	"math/rand"
	"testing"

	"sdpolicy/internal/cluster"
	"sdpolicy/internal/job"
	"sdpolicy/internal/model"
	"sdpolicy/internal/trace"
	"sdpolicy/internal/workload"
)

// randomSpec builds an adversarial workload: arbitrary job shapes, burst
// arrivals, mixed kinds, some exact and some wildly wrong estimates.
func randomSpec(rng *rand.Rand) workload.Spec {
	nodes := 2 + rng.Intn(12)
	cfg := cluster.Config{Nodes: nodes, Sockets: 1 + rng.Intn(2), CoresPerSocket: 1 + rng.Intn(8)}
	n := 20 + rng.Intn(120)
	jobs := make([]job.Job, n)
	t := int64(0)
	for i := range jobs {
		t += int64(rng.Intn(200))
		actual := int64(1 + rng.Intn(2000))
		req := actual
		if rng.Intn(3) > 0 {
			req = actual + int64(rng.Intn(5000))
		}
		kind := job.Kind(rng.Intn(3))
		jobs[i] = job.Job{
			ID: job.ID(i + 1), Submit: t,
			ReqTime: req, ActualTime: actual,
			ReqNodes:     1 + rng.Intn(nodes),
			TasksPerNode: 1 + rng.Intn(2),
			Kind:         kind,
		}
	}
	return workload.Spec{Name: "stress", Cluster: cfg, Jobs: jobs}
}

// TestStressRandomWorkloads drives every policy combination over random
// adversarial workloads and verifies global invariants: every job
// completes exactly once, never before its work is done, and the cluster
// ends empty.
func TestStressRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 40; trial++ {
		spec := randomSpec(rng)
		cfgs := []Config{Defaults(), sdConfig()}
		dyn := sdConfig()
		dyn.Cutoff = CutoffDynAvg
		cfgs = append(cfgs, dyn)
		ideal := sdConfig()
		ideal.RuntimeModel = model.Ideal
		cfgs = append(cfgs, ideal)
		free := sdConfig()
		free.IncludeFreeNodes = true
		cfgs = append(cfgs, free)
		easy := sdConfig()
		easy.ReservationDepth = 1
		cfgs = append(cfgs, easy)
		three := sdConfig()
		three.MaxMates = 3
		cfgs = append(cfgs, three)
		tight := sdConfig()
		tight.BackfillDepth = 3
		cfgs = append(cfgs, tight)

		for ci, cfg := range cfgs {
			res, err := Run(spec, cfg)
			if err != nil {
				t.Fatalf("trial %d cfg %d: %v", trial, ci, err)
			}
			if err := res.Report.Validate(); err != nil {
				t.Fatalf("trial %d cfg %d: %v", trial, ci, err)
			}
			seen := map[job.ID]bool{}
			for i := range res.Report.Results {
				r := &res.Report.Results[i]
				if seen[r.ID] {
					t.Fatalf("trial %d cfg %d: job %d completed twice", trial, ci, r.ID)
				}
				seen[r.ID] = true
				if r.Kind == job.Rigid && (r.MalleableStart || r.WasMate) {
					t.Fatalf("trial %d cfg %d: rigid job %d malleable", trial, ci, r.ID)
				}
				if r.Kind == job.Moldable && r.WasMate {
					t.Fatalf("trial %d cfg %d: moldable job %d was a mate", trial, ci, r.ID)
				}
			}
		}
	}
}

// TestStressDROMOverhead exercises the reconfiguration-cost path.
func TestStressDROMOverhead(t *testing.T) {
	spec := workload.WL5(0.15, 5)
	cfg := sdConfig()
	cfg.DROMOverhead = 2
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DROM.MaskSets == 0 {
		t.Fatal("no mask operations recorded")
	}
}

// TestStressObservedCoreAccounting replays a run through the observer
// and checks the usage timeline never exceeds the machine or goes
// negative, and ends at zero.
func TestStressObservedCoreAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		spec := randomSpec(rng)
		rec := trace.NewRecorder()
		cfg := sdConfig()
		cfg.Observer = rec
		if _, err := Run(spec, cfg); err != nil {
			t.Fatal(err)
		}
		total := spec.Cluster.TotalCores()
		tl := rec.Timeline()
		if len(tl) == 0 {
			t.Fatal("no timeline")
		}
		for _, p := range tl {
			if p.UsedCores < 0 || p.UsedCores > total {
				t.Fatalf("trial %d: usage %d out of [0,%d]", trial, p.UsedCores, total)
			}
		}
		if tl[len(tl)-1].UsedCores != 0 {
			t.Fatalf("trial %d: machine not empty at end", trial)
		}
	}
}

// TestSlowdownLowerBound: no policy may record a slowdown below 1.
func TestSlowdownLowerBound(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		spec := workload.WL5(0.1, seed)
		for _, cfg := range []Config{Defaults(), sdConfig()} {
			res, err := Run(spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range res.Report.Results {
				if sd := res.Report.Results[i].Slowdown(); sd < 1 || math.IsNaN(sd) {
					t.Fatalf("job %d slowdown %v below 1", res.Report.Results[i].ID, sd)
				}
			}
		}
	}
}

// TestMassiveBurst: every job arrives at t=0; the queue is as deep as it
// can get and the backfill window continuously refills.
func TestMassiveBurst(t *testing.T) {
	var jobs []job.Job
	for i := 0; i < 200; i++ {
		jobs = append(jobs, mj(job.ID(i+1), 0, int64(100+i), int64(50+i), 1+i%4, job.Malleable))
	}
	spec := tiny(4, jobs)
	for _, cfg := range []Config{Defaults(), sdConfig()} {
		res, err := Run(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Report.Results) != len(jobs) {
			t.Fatalf("%d of %d jobs completed", len(res.Report.Results), len(jobs))
		}
	}
}

// TestZeroWaitWorkload: arrivals far apart — nobody ever queues, SD
// must behave exactly like static backfill.
func TestZeroWaitWorkload(t *testing.T) {
	var jobs []job.Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, mj(job.ID(i+1), int64(i)*10000, 500, 400, 2, job.Malleable))
	}
	spec := tiny(4, jobs)
	static, _ := Run(spec, Defaults())
	sd, _ := Run(spec, sdConfig())
	if sd.MalleableStarts != 0 {
		t.Fatal("malleability applied on an idle machine")
	}
	if static.Report.AvgSlowdown() != sd.Report.AvgSlowdown() {
		t.Fatal("SD diverged from static on an uncontended workload")
	}
}
