package sched

import "sdpolicy/internal/job"

// Observer receives scheduling events during a simulation. All methods
// are called synchronously from the event loop; implementations must not
// call back into the scheduler.
type Observer interface {
	// JobSubmitted fires when a job enters the queue.
	JobSubmitted(now int64, id job.ID)
	// JobStarted fires when a job is placed, statically or malleably.
	JobStarted(now int64, id job.ID, nodes int, malleable bool)
	// JobReconfigured fires when a running job's total core share
	// changes (shrink, expand, absorb).
	JobReconfigured(now int64, id job.ID, totalCores int)
	// JobFinished fires at completion.
	JobFinished(now int64, id job.ID)
	// Usage fires whenever the machine's allocated core total changes.
	Usage(now int64, usedCores int)
}

// notify helpers keep call sites clean when no observer is configured.

func (s *Scheduler) obsSubmitted(id job.ID) {
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobSubmitted(s.eng.Now(), id)
	}
}

func (s *Scheduler) obsStarted(r *rjob, malleable bool) {
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobStarted(s.eng.Now(), r.j.ID, len(r.nodes), malleable)
		s.cfg.Observer.Usage(s.eng.Now(), s.cl.UsedCores())
	}
}

func (s *Scheduler) obsReconfigured(r *rjob) {
	if s.cfg.Observer != nil {
		total := 0
		for _, nd := range r.nodes {
			total += s.cl.CoresOf(nd, r.j.ID)
		}
		s.cfg.Observer.JobReconfigured(s.eng.Now(), r.j.ID, total)
	}
}

func (s *Scheduler) obsFinished(id job.ID) {
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobFinished(s.eng.Now(), id)
		s.cfg.Observer.Usage(s.eng.Now(), s.cl.UsedCores())
	}
}
