package sched

import (
	"testing"

	"sdpolicy/internal/sim"
	"sdpolicy/internal/workload"
)

// midSim builds a scheduler frozen mid-simulation: WL4 is driven up to
// the horizon, leaving a populated running set and a backlog in the
// queue — the state every per-pass component operates on. The returned
// scheduler must not be mutated by the benchmark body (the component
// benchmarks below only exercise read/scratch paths).
func midSim(b *testing.B, cfg Config) *Scheduler {
	b.Helper()
	spec := workload.WL4(0.05, 1)
	eng := sim.NewEngine()
	s := NewScheduler(eng, cfg, spec.Cluster)
	for i := range spec.Jobs {
		if err := s.Submit(&spec.Jobs[i]); err != nil {
			b.Fatal(err)
		}
	}
	// Stop roughly mid-trace: far enough in that the machine is busy,
	// early enough that a deep queue remains.
	eng.SetHorizon(spec.Jobs[len(spec.Jobs)/2].Submit)
	eng.Run()
	if len(s.runList) == 0 || len(s.queue) == 0 {
		b.Fatalf("mid-state degenerate: %d running, %d queued", len(s.runList), len(s.queue))
	}
	return s
}

// invalidate expires the per-timestamp memos so every iteration pays
// the full rebuild, as a pass at a fresh timestamp would.
func invalidate(s *Scheduler) {
	s.relDirty = true
	for _, r := range s.runList {
		r.peAt = peInvalid
	}
}

// BenchmarkBuildProfile measures one availability-profile rebuild from
// the running set (the head of every scheduling pass). Target: zero
// allocations amortised — the release and breakpoint arrays are
// scheduler-owned scratch.
func BenchmarkBuildProfile(b *testing.B) {
	s := midSim(b, sdConfig())
	now := s.eng.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		invalidate(s)
		s.buildProfile(now)
	}
}

// BenchmarkDynamicCutoff measures the feedback cut-off computation
// (predicted slowdown of every running job + percentile).
func BenchmarkDynamicCutoff(b *testing.B) {
	cfg := sdConfig()
	cfg.Cutoff = CutoffDynP70
	s := midSim(b, cfg)
	now := s.eng.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		invalidate(s)
		s.dynamicCutoff(now)
	}
}

// BenchmarkSchedulerPass measures a full scheduling pass — cut-off,
// profile build, backfill walk with malleable trials — over the frozen
// mid-trace state. The machine is saturated at the horizon, so the pass
// only estimates and reserves: it leaves the queue and running set
// unchanged and is safe to repeat.
func BenchmarkSchedulerPass(b *testing.B) {
	cfg := sdConfig()
	cfg.Cutoff = CutoffDynAvg
	s := midSim(b, cfg)
	queued, running := len(s.queue), len(s.runList)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		invalidate(s)
		s.pass()
	}
	b.StopTimer()
	if len(s.queue) != queued || len(s.runList) != running {
		b.Fatalf("pass mutated state: queue %d->%d, running %d->%d",
			queued, len(s.queue), running, len(s.runList))
	}
}
