package sched

import (
	"math"
	"testing"

	"sdpolicy/internal/cluster"
	"sdpolicy/internal/job"
	"sdpolicy/internal/metrics"
	"sdpolicy/internal/model"
	"sdpolicy/internal/workload"
)

// tiny builds a workload on a small two-socket machine.
func tiny(nodes int, jobs []job.Job) workload.Spec {
	return workload.Spec{
		Name:    "test",
		Cluster: cluster.Config{Nodes: nodes, Sockets: 2, CoresPerSocket: 2},
		Jobs:    jobs,
	}
}

func mj(id job.ID, submit, req, actual int64, nodes int, kind job.Kind) job.Job {
	return job.Job{ID: id, Submit: submit, ReqTime: req, ActualTime: actual,
		ReqNodes: nodes, TasksPerNode: 1, Kind: kind}
}

func runOrFail(t *testing.T, spec workload.Spec, cfg Config) *Result {
	t.Helper()
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func byID(t *testing.T, res *Result, id job.ID) *metrics.JobResult {
	t.Helper()
	for i := range res.Report.Results {
		if res.Report.Results[i].ID == id {
			return &res.Report.Results[i]
		}
	}
	t.Fatalf("job %d missing from results", id)
	return nil
}

func TestSingleJobStatic(t *testing.T) {
	spec := tiny(2, []job.Job{mj(1, 0, 1000, 700, 2, job.Malleable)})
	res := runOrFail(t, spec, Defaults())
	r := byID(t, res, 1)
	if r.Start != 0 || r.End != 700 {
		t.Fatalf("start=%d end=%d, want 0/700", r.Start, r.End)
	}
	if r.Slowdown() != 1 {
		t.Fatalf("slowdown %v, want 1", r.Slowdown())
	}
}

func TestFIFOAndBackfill(t *testing.T) {
	// 4 nodes. A(2n,1000) runs; B(4n,500) must wait; C(2n,500) backfills
	// in front of B without delaying it; D(2n,2000) would delay B, waits.
	spec := tiny(4, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Rigid),
		mj(2, 10, 500, 500, 4, job.Rigid),
		mj(3, 20, 500, 500, 2, job.Rigid),
		mj(4, 30, 2000, 2000, 2, job.Rigid),
	})
	res := runOrFail(t, spec, Defaults())
	a, b, c, d := byID(t, res, 1), byID(t, res, 2), byID(t, res, 3), byID(t, res, 4)
	if a.Start != 0 {
		t.Fatalf("A start %d", a.Start)
	}
	if c.Start != 20 {
		t.Fatalf("C should backfill at 20, started %d", c.Start)
	}
	if b.Start != 1000 {
		t.Fatalf("B should start at A's end 1000, started %d", b.Start)
	}
	if d.Start != 1500 {
		t.Fatalf("D should start after B at 1500, started %d", d.Start)
	}
}

func TestBackfillRespectsReservation(t *testing.T) {
	// Conservative: a job that would push back the head reservation may
	// not backfill even though nodes are free now.
	spec := tiny(4, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Rigid),
		mj(2, 10, 500, 500, 4, job.Rigid),
		mj(3, 20, 1500, 1500, 2, job.Rigid), // would overlap B's window
	})
	res := runOrFail(t, spec, Defaults())
	b, c := byID(t, res, 2), byID(t, res, 3)
	if b.Start != 1000 {
		t.Fatalf("B start %d, want 1000", b.Start)
	}
	if c.Start != 1500 {
		t.Fatalf("C start %d, want 1500 (after B)", c.Start)
	}
}

func sdConfig() Config {
	cfg := Defaults()
	cfg.Policy = SDPolicy
	cfg.RuntimeModel = model.WorstCase
	return cfg
}

func TestMalleableCoSchedule(t *testing.T) {
	// 2 nodes. A(2n, req 1000) running; B(2n, req/actual 100) arrives at
	// t=10. Static wait would be 990s; malleable doubles B to 200s, so
	// SD-Policy shrinks A and starts B immediately.
	spec := tiny(2, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Malleable),
		mj(2, 10, 100, 100, 2, job.Malleable),
	})
	res := runOrFail(t, spec, sdConfig())
	a, b := byID(t, res, 1), byID(t, res, 2)
	if !b.MalleableStart {
		t.Fatal("B was not malleably scheduled")
	}
	if !a.WasMate {
		t.Fatal("A was not marked as mate")
	}
	if b.Start != 10 || b.End != 210 {
		t.Fatalf("B start=%d end=%d, want 10/210", b.Start, b.End)
	}
	// A: full rate for 10s, half rate for 200s (100 work), full for the
	// remaining 890 => end at 10+200+890 = 1100.
	if a.End != 1100 {
		t.Fatalf("A end=%d, want 1100", a.End)
	}
	if res.MalleableStarts != 1 || res.Mates != 1 {
		t.Fatalf("counters: starts=%d mates=%d", res.MalleableStarts, res.Mates)
	}
	// The same workload under static backfill: B waits for A.
	stat := runOrFail(t, spec, Defaults())
	bs := byID(t, stat, 2)
	if bs.Start != 1000 {
		t.Fatalf("static B start %d, want 1000", bs.Start)
	}
	if !(res.Report.AvgSlowdown() < stat.Report.AvgSlowdown()) {
		t.Fatalf("SD slowdown %v not better than static %v",
			res.Report.AvgSlowdown(), stat.Report.AvgSlowdown())
	}
}

func TestMalleableNotAppliedWhenStaticBetter(t *testing.T) {
	// B's static wait (90s) is far below its malleable stretch (+100s):
	// Listing 1's estimate keeps it static.
	spec := tiny(2, []job.Job{
		mj(1, 0, 100, 100, 2, job.Malleable),
		mj(2, 10, 100, 100, 2, job.Malleable),
	})
	res := runOrFail(t, spec, sdConfig())
	b := byID(t, res, 2)
	if b.MalleableStart {
		t.Fatal("B should not be malleably scheduled")
	}
	if b.Start != 100 {
		t.Fatalf("B start %d, want 100", b.Start)
	}
}

func TestMaxSlowdownCutoffBlocks(t *testing.T) {
	spec := tiny(2, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Malleable),
		mj(2, 10, 100, 100, 2, job.Malleable),
	})
	cfg := sdConfig()
	cfg.MaxSlowdown = 1.05 // A's penalty would be 1.1
	res := runOrFail(t, spec, cfg)
	b := byID(t, res, 2)
	if b.MalleableStart {
		t.Fatal("cut-off failed to block the mate")
	}
	cfg.MaxSlowdown = 1.2 // now permissive
	res = runOrFail(t, spec, cfg)
	if !byID(t, res, 2).MalleableStart {
		t.Fatal("permissive cut-off still blocked the mate")
	}
}

func TestDynamicCutoffBlocksHighPenaltyMate(t *testing.T) {
	// Average predicted slowdown of the single running job is 1.0; the
	// mate penalty 1.1 exceeds it, so DynAVGSD blocks malleability.
	spec := tiny(2, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Malleable),
		mj(2, 10, 100, 100, 2, job.Malleable),
	})
	cfg := sdConfig()
	cfg.Cutoff = CutoffDynAvg
	res := runOrFail(t, spec, cfg)
	if byID(t, res, 2).MalleableStart {
		t.Fatal("DynAVGSD should have blocked the mate")
	}
}

func TestWeightConstraintExactSum(t *testing.T) {
	// A holds 2 nodes; B requests 1. No combination of whole mates sums
	// to 1, so no malleable start (constraint 3).
	spec := tiny(2, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Malleable),
		mj(2, 10, 50, 50, 1, job.Malleable),
	})
	res := runOrFail(t, spec, sdConfig())
	if byID(t, res, 2).MalleableStart {
		t.Fatal("weight constraint violated: 2-node mate hosted 1-node job")
	}
}

func TestTwoMatesCombine(t *testing.T) {
	// Two 1-node mates host a 2-node guest.
	spec := tiny(2, []job.Job{
		mj(1, 0, 1000, 1000, 1, job.Malleable),
		mj(2, 0, 1000, 1000, 1, job.Malleable),
		mj(3, 10, 100, 100, 2, job.Malleable),
	})
	res := runOrFail(t, spec, sdConfig())
	g := byID(t, res, 3)
	if !g.MalleableStart {
		t.Fatal("guest not malleably scheduled over two mates")
	}
	if !byID(t, res, 1).WasMate || !byID(t, res, 2).WasMate {
		t.Fatal("both mates should be marked")
	}
	// MaxMates=1 must prevent the combination.
	cfg := sdConfig()
	cfg.MaxMates = 1
	res = runOrFail(t, spec, cfg)
	if byID(t, res, 3).MalleableStart {
		t.Fatal("MaxMates=1 still combined two mates")
	}
}

func TestGuestMustFinishInsideMateAllocation(t *testing.T) {
	// Mate's remaining requested time (100s) is shorter than the guest's
	// malleable runtime (200s): the mate is ineligible (Section 3.2.4).
	spec := tiny(2, []job.Job{
		mj(1, 0, 150, 150, 2, job.Malleable),
		mj(2, 10, 100, 100, 2, job.Malleable),
	})
	res := runOrFail(t, spec, sdConfig())
	if byID(t, res, 2).MalleableStart {
		t.Fatal("guest scheduled over a mate that ends first")
	}
}

func TestRigidJobsNeverMalleable(t *testing.T) {
	spec := tiny(2, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Rigid),
		mj(2, 10, 100, 100, 2, job.Rigid),
	})
	res := runOrFail(t, spec, sdConfig())
	if res.MalleableStarts != 0 || res.Mates != 0 {
		t.Fatal("rigid workload used malleability")
	}
	// Rigid guest candidate with malleable running job: still blocked,
	// because the guest itself cannot shrink.
	spec2 := tiny(2, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Malleable),
		mj(2, 10, 100, 100, 2, job.Rigid),
	})
	res2 := runOrFail(t, spec2, sdConfig())
	if res2.MalleableStarts != 0 {
		t.Fatal("rigid job was malleably scheduled")
	}
}

func TestMateEndsEarlyGuestAbsorbs(t *testing.T) {
	// Two 1-node mates; mate 1 really ends at t=90 (before the guest).
	// Under the worst-case model the guest gains nothing from absorbing
	// one node; under the ideal model it accelerates (Section 4.3).
	jobs := []job.Job{
		mj(1, 0, 1000, 50, 1, job.Malleable), // ends early
		mj(2, 0, 1000, 1000, 1, job.Malleable),
		mj(3, 10, 100, 100, 2, job.Malleable),
	}
	worst := runOrFail(t, tiny(2, jobs), sdConfig())
	gw := byID(t, worst, 3)
	if !gw.MalleableStart {
		t.Fatal("guest not malleably scheduled")
	}
	if gw.End != 210 {
		t.Fatalf("worst-case guest end %d, want 210", gw.End)
	}
	cfgIdeal := sdConfig()
	cfgIdeal.RuntimeModel = model.Ideal
	ideal := runOrFail(t, tiny(2, jobs), cfgIdeal)
	gi := byID(t, ideal, 3)
	if gi.End != 170 {
		t.Fatalf("ideal guest end %d, want 170", gi.End)
	}
	if !(gi.End < gw.End) {
		t.Fatal("ideal model should finish the unbalanced guest earlier")
	}
}

func TestMoldableGuestDoesNotAbsorb(t *testing.T) {
	// A moldable guest can start shrunk but cannot expand when its mate
	// ends early, so it keeps the worst-case pace even under Ideal truth.
	jobs := []job.Job{
		mj(1, 0, 1000, 50, 2, job.Malleable),
		mj(2, 10, 100, 100, 2, job.Moldable),
	}
	cfg := sdConfig()
	cfg.RuntimeModel = model.Ideal
	res := runOrFail(t, tiny(2, jobs), cfg)
	g := byID(t, res, 2)
	if !g.MalleableStart {
		t.Fatal("moldable guest not co-scheduled")
	}
	// start 10 at rate 0.5; mate ends at 35 (50 work: 10 full + 80*0.5);
	// guest keeps rate 0.5 throughout: 200s run.
	if g.RunTime() != 200 {
		t.Fatalf("moldable guest runtime %d, want 200", g.RunTime())
	}
}

func TestShrinkFloorOneCorePerTask(t *testing.T) {
	// Mate has 3 tasks per node but a shrunk owner keeps only 2 cores:
	// it cannot shrink, so no malleable start.
	mate := mj(1, 0, 1000, 1000, 2, job.Malleable)
	mate.TasksPerNode = 3
	spec := tiny(2, []job.Job{mate, mj(2, 10, 100, 100, 2, job.Malleable)})
	res := runOrFail(t, spec, sdConfig())
	if byID(t, res, 2).MalleableStart {
		t.Fatal("mate shrank below one core per task")
	}
	// Guest with too many tasks per node is equally blocked.
	guest := mj(2, 10, 100, 100, 2, job.Malleable)
	guest.TasksPerNode = 3
	spec2 := tiny(2, []job.Job{mj(1, 0, 1000, 1000, 2, job.Malleable), guest})
	res2 := runOrFail(t, spec2, sdConfig())
	if byID(t, res2, 2).MalleableStart {
		t.Fatal("guest placed with fewer cores than tasks")
	}
}

func TestMateExpandsAfterGuest(t *testing.T) {
	// After the guest ends the mate must run at full rate again: its end
	// time reflects only the hosting window's lost progress.
	spec := tiny(2, []job.Job{
		mj(1, 0, 2000, 2000, 2, job.Malleable),
		mj(2, 10, 100, 100, 2, job.Malleable),
	})
	res := runOrFail(t, spec, sdConfig())
	a := byID(t, res, 1)
	// hosting [10,210] at rate 0.5 loses 100s of work: 2000+100 = 2100.
	if a.End != 2100 {
		t.Fatalf("mate end %d, want 2100", a.End)
	}
}

// Under the analytic worst-case model core-seconds are conserved, so SD
// keeps the makespan constant (the paper notes exactly this for WL4).
func TestWorstCaseModelKeepsMakespan(t *testing.T) {
	spec := tiny(2, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Malleable),
		mj(2, 10, 100, 100, 2, job.Malleable),
	})
	stat := runOrFail(t, spec, Defaults())
	sd := runOrFail(t, spec, sdConfig())
	if stat.EnergyJoules <= 0 || sd.EnergyJoules <= 0 {
		t.Fatal("energy not accounted")
	}
	if sd.Report.Makespan() != stat.Report.Makespan() {
		t.Fatalf("makespan changed: sd=%d static=%d",
			sd.Report.Makespan(), stat.Report.Makespan())
	}
}

// With the application model a bandwidth-saturated mate cedes cores for
// free, so SD finishes the same work sooner and saves energy — the
// Figure 9 mechanism.
func TestEnergySavedWithAppModel(t *testing.T) {
	a := mj(1, 0, 1000, 1000, 2, job.Malleable)
	a.App = job.AppSTREAM
	b := mj(2, 10, 100, 100, 2, job.Malleable)
	b.App = job.AppPILS
	spec := tiny(2, []job.Job{a, b})

	speedups := func(app job.AppClass) model.SpeedupFn {
		if app == job.AppSTREAM {
			// saturates at 2 of the 4 cores per node
			return func(c int) float64 { return math.Min(float64(c), 2) }
		}
		return func(c int) float64 { return float64(c) }
	}
	cfg := sdConfig()
	cfg.RuntimeModel = model.App
	cfg.Speedups = speedups
	sd := runOrFail(t, spec, cfg)

	stat := Defaults()
	stat.RuntimeModel = model.App
	stat.Speedups = speedups
	base := runOrFail(t, spec, stat)

	// Static: A ends 1000, B runs 1000-1100. SD: B co-runs 10-210 while
	// the STREAM mate keeps full speed and still ends at 1000.
	aRes, bRes := byID(t, sd, 1), byID(t, sd, 2)
	if aRes.End != 1000 {
		t.Fatalf("saturated mate end %d, want 1000", aRes.End)
	}
	if bRes.End != 210 {
		t.Fatalf("guest end %d, want 210", bRes.End)
	}
	if sd.Report.Makespan() >= base.Report.Makespan() {
		t.Fatalf("SD makespan %d not below static %d",
			sd.Report.Makespan(), base.Report.Makespan())
	}
	if sd.EnergyJoules >= base.EnergyJoules {
		t.Fatalf("SD energy %v not below static %v", sd.EnergyJoules, base.EnergyJoules)
	}
}

func TestIncludeFreeNodesMixes(t *testing.T) {
	// 3 nodes: mate holds 2, 1 node free but blocked by the head
	// reservation. Guest requests 3 => 2 mate nodes + 1 free node, only
	// with IncludeFreeNodes.
	jobs := []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Malleable),
		mj(2, 5, 1000, 1000, 3, job.Rigid),    // head: reserves all 3 at t=1000
		mj(3, 10, 100, 100, 3, job.Malleable), // wants 3 nodes now
	}
	base := sdConfig()
	res := runOrFail(t, tiny(3, jobs), base)
	if byID(t, res, 3).MalleableStart {
		t.Fatal("free-node mixing should be off by default")
	}
	base.IncludeFreeNodes = true
	res = runOrFail(t, tiny(3, jobs), base)
	g := byID(t, res, 3)
	if !g.MalleableStart {
		t.Fatal("IncludeFreeNodes did not enable the mixed allocation")
	}
	if g.Start != 10 {
		t.Fatalf("guest start %d, want 10", g.Start)
	}
}

func TestDeterminism(t *testing.T) {
	spec := workload.WL5(0.2, 42)
	cfg := sdConfig()
	cfg.Cutoff = CutoffDynAvg
	a := runOrFail(t, spec, cfg)
	b := runOrFail(t, spec, cfg)
	if len(a.Report.Results) != len(b.Report.Results) {
		t.Fatal("result counts differ between identical runs")
	}
	for i := range a.Report.Results {
		if a.Report.Results[i] != b.Report.Results[i] {
			t.Fatalf("result %d differs: %+v vs %+v",
				i, a.Report.Results[i], b.Report.Results[i])
		}
	}
	if a.EnergyJoules != b.EnergyJoules {
		t.Fatal("energy differs between identical runs")
	}
}

func TestAllPoliciesCompleteGeneratedWorkloads(t *testing.T) {
	cfgs := map[string]Config{}
	cfgs["static"] = Defaults()
	cfgs["sd-inf"] = sdConfig()
	dyn := sdConfig()
	dyn.Cutoff = CutoffDynAvg
	cfgs["sd-dyn"] = dyn
	ten := sdConfig()
	ten.MaxSlowdown = 10
	cfgs["sd-10"] = ten
	free := sdConfig()
	free.IncludeFreeNodes = true
	cfgs["sd-free"] = free

	for _, seed := range []uint64{1, 2} {
		spec := workload.WL5(0.15, seed)
		for name, cfg := range cfgs {
			res, err := Run(spec, cfg)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if err := res.Report.Validate(); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

func TestMixedKindWorkloadCompletes(t *testing.T) {
	base := workload.WL5(0.15, 7)
	mixed, err := workload.Derive(&base, []workload.Derivation{workload.MalleableFraction(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	res := runOrFail(t, *mixed, sdConfig())
	if res.MalleableStarts == 0 {
		t.Log("note: no malleable starts in mixed workload (load dependent)")
	}
	for i := range res.Report.Results {
		r := &res.Report.Results[i]
		if r.Kind == job.Rigid && (r.MalleableStart || r.WasMate) {
			t.Fatalf("rigid job %d participated in malleability", r.ID)
		}
	}
}

func TestSubmitRejectsOversizedJob(t *testing.T) {
	spec := tiny(2, []job.Job{mj(1, 0, 100, 100, 3, job.Rigid)})
	if _, err := Run(spec, Defaults()); err == nil {
		t.Fatal("oversized job accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.SharingFactor = 0 },
		func(c *Config) { c.SharingFactor = 1 },
		func(c *Config) { c.MaxMates = 0 },
		func(c *Config) { c.CandidateCap = 0 },
		func(c *Config) { c.BackfillDepth = 0 },
		func(c *Config) { c.MaxSlowdown = 0 },
		func(c *Config) { c.DROMOverhead = -1 },
	}
	for i, mut := range bad {
		c := Defaults()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if math.IsInf(Defaults().MaxSlowdown, 1) != true {
		t.Error("default cut-off should be infinite")
	}
}

func TestEASYAllowsDeeperBackfill(t *testing.T) {
	// Under EASY only the head (B) is protected: C may start even though
	// it overlaps D's conservative reservation window.
	jobs := []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Rigid),
		mj(2, 10, 500, 500, 4, job.Rigid),   // head, reserved in both modes
		mj(3, 20, 2000, 2000, 2, job.Rigid), // waits for B in both modes
		mj(4, 30, 2000, 2000, 2, job.Rigid), // conservative: reserved after C
		mj(5, 40, 400, 400, 2, job.Rigid),   // EASY: may slide ahead of D
	}
	cons := runOrFail(t, tiny(4, jobs), Defaults())
	easy := Defaults()
	easy.ReservationDepth = 1
	ez := runOrFail(t, tiny(4, jobs), easy)
	// Job 5 must start no later under EASY than under conservative.
	if byID(t, ez, 5).Start > byID(t, cons, 5).Start {
		t.Fatalf("EASY start %d later than conservative %d",
			byID(t, ez, 5).Start, byID(t, cons, 5).Start)
	}
	// The head job B keeps its place under both disciplines.
	if byID(t, ez, 2).Start != byID(t, cons, 2).Start {
		t.Fatalf("head job start differs: easy=%d cons=%d",
			byID(t, ez, 2).Start, byID(t, cons, 2).Start)
	}
}

func TestBackfillDepthLimits(t *testing.T) {
	// With depth 1 only the head job is examined per pass; later arrivals
	// cannot backfill ahead of it.
	spec := tiny(4, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Rigid),
		mj(2, 10, 500, 500, 4, job.Rigid),
		mj(3, 20, 100, 100, 2, job.Rigid), // would backfill with depth>=2
	})
	cfg := Defaults()
	cfg.BackfillDepth = 1
	res := runOrFail(t, spec, cfg)
	c := byID(t, res, 3)
	if c.Start == 20 {
		t.Fatal("depth 1 should prevent backfill of job 3")
	}
}
