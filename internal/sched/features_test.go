package sched

import (
	"testing"

	"sdpolicy/internal/job"
	"sdpolicy/internal/workload"
)

// featureSpec builds a 4-node machine where nodes 0-1 carry "bigmem".
func featureSpec(jobs []job.Job) workload.Spec {
	spec := tiny(4, jobs)
	spec.NodeFeatures = map[int][]string{
		0: {"bigmem"},
		1: {"bigmem"},
	}
	return spec
}

func withFeatures(j job.Job, feats ...string) job.Job {
	j.Features = feats
	return j
}

func TestFeatureJobLandsOnMatchingNodes(t *testing.T) {
	spec := featureSpec([]job.Job{
		withFeatures(mj(1, 0, 100, 100, 2, job.Rigid), "bigmem"),
	})
	res := runOrFail(t, spec, Defaults())
	if byID(t, res, 1).Start != 0 {
		t.Fatal("feature job should start immediately on matching nodes")
	}
}

func TestFeatureJobWaitsForMatchingNodes(t *testing.T) {
	// Job 1 (plain) grabs whatever nodes the allocator picks; to pin the
	// bigmem nodes we make it require them. Job 2 also needs bigmem and
	// must wait for job 1 even though two plain nodes are free.
	spec := featureSpec([]job.Job{
		withFeatures(mj(1, 0, 500, 500, 2, job.Rigid), "bigmem"),
		withFeatures(mj(2, 10, 100, 100, 2, job.Rigid), "bigmem"),
		mj(3, 20, 100, 100, 2, job.Rigid), // plain: backfills on free nodes
	})
	res := runOrFail(t, spec, Defaults())
	if got := byID(t, res, 2).Start; got != 500 {
		t.Fatalf("bigmem job started at %d, want 500 (after the bigmem holder)", got)
	}
	if got := byID(t, res, 3).Start; got != 20 {
		t.Fatalf("plain job started at %d, want 20 (free plain nodes)", got)
	}
}

func TestOversizedFeatureRequestRejected(t *testing.T) {
	spec := featureSpec([]job.Job{
		withFeatures(mj(1, 0, 100, 100, 3, job.Rigid), "bigmem"), // only 2 bigmem nodes
	})
	if _, err := Run(spec, Defaults()); err == nil {
		t.Fatal("job requiring more feature nodes than exist was accepted")
	}
}

func TestMateMustSatisfyGuestFeatures(t *testing.T) {
	// The running mate holds plain nodes; a bigmem guest cannot use it
	// even though the weights match.
	spec := featureSpec([]job.Job{
		withFeatures(mj(1, 0, 2000, 2000, 2, job.Malleable), "bigmem"),
		mj(2, 0, 2000, 2000, 2, job.Malleable), // plain mate on nodes 2-3
		withFeatures(mj(3, 10, 100, 100, 2, job.Malleable), "bigmem"),
	})
	cfg := sdConfig()
	res := runOrFail(t, spec, cfg)
	g := byID(t, res, 3)
	if !g.MalleableStart {
		t.Fatal("guest should co-schedule with the bigmem mate")
	}
	// the plain job must never have been shrunk for this guest
	if byID(t, res, 2).WasMate {
		t.Fatal("plain-node mate hosted a bigmem guest")
	}
	if !byID(t, res, 1).WasMate {
		t.Fatal("bigmem mate not used")
	}
}

func TestFeatureJobsCompleteMixedWorkload(t *testing.T) {
	spec := workload.WL5(0.2, 3)
	spec.NodeFeatures = map[int][]string{}
	for nd := 0; nd < spec.Cluster.Nodes/2; nd++ {
		spec.NodeFeatures[nd] = []string{"fast"}
	}
	for i := range spec.Jobs {
		if i%5 == 0 && spec.Jobs[i].ReqNodes <= spec.Cluster.Nodes/2 {
			spec.Jobs[i].Features = []string{"fast"}
		}
	}
	for _, cfg := range []Config{Defaults(), sdConfig()} {
		res, err := Run(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Report.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
