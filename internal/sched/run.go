package sched

import (
	"fmt"

	"sdpolicy/internal/drom"
	"sdpolicy/internal/metrics"
	"sdpolicy/internal/sim"
	"sdpolicy/internal/workload"
)

// Result is the outcome of one simulation run.
type Result struct {
	Workload        string
	Policy          PolicyKind
	Report          metrics.Report
	EnergyJoules    float64
	DROM            drom.Stats
	MalleableStarts int
	Mates           int
	Passes          uint64
	Events          uint64
}

// Run simulates the workload under the configuration and returns the
// completion report. It errors on invalid inputs or if any job fails to
// complete (which would indicate a scheduler bug).
func Run(spec workload.Spec, cfg Config) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	s := NewScheduler(eng, cfg, spec.Cluster)
	for nd, feats := range spec.NodeFeatures {
		s.cl.SetNodeFeatures(nd, feats...)
	}
	for i := range spec.Jobs {
		if err := s.Submit(&spec.Jobs[i]); err != nil {
			return nil, err
		}
	}
	eng.Run()
	if len(s.results) != len(spec.Jobs) {
		return nil, fmt.Errorf("sched: %d of %d jobs completed — scheduler deadlock",
			len(s.results), len(spec.Jobs))
	}
	if len(s.queue) != 0 || len(s.running) != 0 {
		return nil, fmt.Errorf("sched: residual state: %d queued, %d running",
			len(s.queue), len(s.running))
	}
	if err := s.cl.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("sched: cluster state corrupt after run: %v", err)
	}
	rep := metrics.Report{Results: s.results}
	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("sched: inconsistent results: %v", err)
	}
	return &Result{
		Workload:        spec.Name,
		Policy:          cfg.Policy,
		Report:          rep,
		EnergyJoules:    s.meter.Joules(),
		DROM:            s.reg.Stats(),
		MalleableStarts: rep.MalleableStarts(),
		Mates:           rep.Mates(),
		Passes:          s.passes,
		Events:          eng.Processed(),
	}, nil
}
