package sched

import (
	"context"
	"fmt"
	"sync"

	"sdpolicy/internal/drom"
	"sdpolicy/internal/metrics"
	"sdpolicy/internal/sim"
	"sdpolicy/internal/workload"
)

// enginePool recycles event engines across runs: a campaign sweep runs
// thousands of simulations back to back, and the engine's slab, heap and
// free-list arrays are sized by the workload's peak pending events —
// reusing them removes the dominant per-point warm-up allocations.
// Engines are Reset before going back so pooled entries pin no scheduler
// memory through event callbacks.
var enginePool = sync.Pool{New: func() any { return sim.NewEngine() }}

// Result is the outcome of one simulation run.
type Result struct {
	Workload        string
	Policy          PolicyKind
	Report          metrics.Report
	EnergyJoules    float64
	DROM            drom.Stats
	MalleableStarts int
	Mates           int
	Passes          uint64
	Events          uint64
}

// Run simulates the workload under the configuration and returns the
// completion report. It errors on invalid inputs or if any job fails to
// complete (which would indicate a scheduler bug). Run is not
// cancellable; use RunContext when the caller may abandon the
// simulation mid-flight.
func Run(spec workload.Spec, cfg Config) (*Result, error) {
	return RunContext(context.Background(), spec, cfg)
}

// RunContext is Run with mid-simulation cancellation: the event loop
// checkpoints ctx every cfg.CheckpointEvents events (0 selects
// sim.DefaultCheckpoint) and, once the context is cancelled, abandons
// the partial simulation and returns an error wrapping ctx.Err().
// Cancellation latency is bounded by the time to process one
// checkpoint interval — milliseconds even on the full-scale workloads
// — rather than by the remaining runtime of the whole simulation.
func RunContext(ctx context.Context, spec workload.Spec, cfg Config) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := enginePool.Get().(*sim.Engine)
	defer func() {
		eng.Reset()
		enginePool.Put(eng)
	}()
	s := NewScheduler(eng, cfg, spec.Cluster)
	for nd, feats := range spec.NodeFeatures {
		s.cl.SetNodeFeatures(nd, feats...)
	}
	for i := range spec.Jobs {
		if err := s.Submit(&spec.Jobs[i]); err != nil {
			return nil, err
		}
	}
	if err := eng.RunCtx(ctx, cfg.CheckpointEvents); err != nil {
		return nil, fmt.Errorf("sched: simulation aborted after %d events at t=%d: %w",
			eng.Processed(), eng.Now(), err)
	}
	if len(s.results) != len(spec.Jobs) {
		return nil, fmt.Errorf("sched: %d of %d jobs completed — scheduler deadlock",
			len(s.results), len(spec.Jobs))
	}
	if len(s.queue) != 0 || len(s.running) != 0 {
		return nil, fmt.Errorf("sched: residual state: %d queued, %d running",
			len(s.queue), len(s.running))
	}
	if err := s.cl.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("sched: cluster state corrupt after run: %v", err)
	}
	rep := metrics.Report{Results: s.results}
	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("sched: inconsistent results: %v", err)
	}
	return &Result{
		Workload:        spec.Name,
		Policy:          cfg.Policy,
		Report:          rep,
		EnergyJoules:    s.meter.Joules(),
		DROM:            s.reg.Stats(),
		MalleableStarts: rep.MalleableStarts(),
		Mates:           rep.Mates(),
		Passes:          s.passes,
		Events:          eng.Processed(),
	}, nil
}
