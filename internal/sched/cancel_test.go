package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"sdpolicy/internal/workload"
)

// cancelSpec regenerates the test workload fresh per run: Submit hands
// the scheduler pointers into spec.Jobs, so a spec must not be reused
// across simulations.
func cancelSpec() workload.Spec { return workload.WL1(0.3, 1) }

func cancelCfg() Config {
	cfg := Defaults()
	cfg.Policy = SDPolicy
	cfg.MaxSlowdown = 10
	return cfg
}

// TestRunContextCancelsPromptly verifies the acceptance criterion that
// abort latency is far below point runtime: a run cancelled shortly
// after starting must return well before the full simulation would
// have finished. Bounds are ratios of the measured full runtime, so
// the test holds under -race and on slow machines.
func TestRunContextCancelsPromptly(t *testing.T) {
	start := time.Now()
	if _, err := Run(cancelSpec(), cancelCfg()); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(full/20, cancel)
	start = time.Now()
	res, err := RunContext(ctx, cancelSpec(), cancelCfg())
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res %+v), want context.Canceled", err, res)
	}
	if elapsed > full/2 {
		t.Fatalf("cancelled run returned after %v; full run takes %v — abort not prompt", elapsed, full)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, workload.WL5(0.1, 1), Defaults()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextBackgroundMatchesRun checks that threading a context
// did not perturb the simulation: RunContext with a background context
// produces the same report as Run.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	a, err := Run(cancelSpec(), cancelCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cancelSpec(), cancelCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.Passes != b.Passes ||
		a.Report.Makespan() != b.Report.Makespan() ||
		a.Report.AvgSlowdown() != b.Report.AvgSlowdown() {
		t.Fatalf("Run and RunContext diverged:\n%+v\nvs\n%+v", a, b)
	}
}
