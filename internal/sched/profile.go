package sched

import (
	"fmt"
	"slices"
	"sort"
)

// profile is the availability map of Listing 1's get_wait_time: a step
// function of how many whole nodes are free at each future instant,
// built from the predicted ends of running jobs and extended with the
// reservations the pass creates (conservative backfill).
type profile struct {
	totalNodes int
	now        int64
	availNow   int
	// breakpoints, sorted by time: at each time the availability changes
	// by delta.
	times  []int64
	deltas []int
}

// newProfile builds the step function. releases holds, for every busy
// node, the time it is predicted to become free (one entry per node;
// shared nodes already collapsed to their max by the caller).
func newProfile(now int64, totalNodes, freeNodes int, releases []int64) *profile {
	p := &profile{}
	sorted := make([]int64, len(releases))
	copy(sorted, releases)
	p.init(now, totalNodes, freeNodes, sorted)
	return p
}

// init (re)builds the profile in place, reusing the breakpoint arrays —
// the scheduler keeps two profile values alive for the whole run and
// re-inits them every pass instead of allocating. releases is sorted in
// place: the caller passes scratch it owns.
func (p *profile) init(now int64, totalNodes, freeNodes int, releases []int64) {
	p.totalNodes, p.now, p.availNow = totalNodes, now, freeNodes
	p.times, p.deltas = p.times[:0], p.deltas[:0]
	if len(releases) == 0 {
		return
	}
	slices.Sort(releases)
	for _, t := range releases {
		if t <= now {
			// A predicted end in the past (job overran its request and
			// prediction): treat as releasing immediately after now.
			t = now + 1
		}
		n := len(p.times)
		if n > 0 && p.times[n-1] == t {
			p.deltas[n-1]++
		} else {
			p.times = append(p.times, t)
			p.deltas = append(p.deltas, 1)
		}
	}
}

// earliestStart returns the first time >= now at which `nodes` nodes are
// continuously available for `dur` seconds.
func (p *profile) earliestStart(nodes int, dur int64) int64 {
	if nodes > p.totalNodes {
		panic(fmt.Sprintf("sched: request %d of %d nodes", nodes, p.totalNodes))
	}
	if dur <= 0 {
		panic(fmt.Sprintf("sched: non-positive duration %d", dur))
	}
	start := p.now
	avail := p.availNow
	i := 0
	if avail < nodes {
		// advance to the first instant with enough nodes
		for i < len(p.times) {
			avail += p.deltas[i]
			if avail >= nodes {
				start = p.times[i]
				i++
				break
			}
			i++
		}
		if avail < nodes {
			panic("sched: availability never reaches the request; profile inconsistent")
		}
	}
	// check the window [start, start+dur); restart after any dip
	for i < len(p.times) && p.times[i] < start+dur {
		avail += p.deltas[i]
		if avail < nodes {
			// dip below: find the next recovery point
			i++
			for i < len(p.times) {
				avail += p.deltas[i]
				if avail >= nodes {
					start = p.times[i]
					i++
					break
				}
				i++
			}
			if avail < nodes {
				panic("sched: availability never recovers; profile inconsistent")
			}
			continue
		}
		i++
	}
	return start
}

// reserve subtracts `nodes` nodes during [from, to) — a conservative
// backfill reservation, or the footprint of a job started by this pass.
func (p *profile) reserve(from, to int64, nodes int) {
	if from < p.now || to <= from {
		panic(fmt.Sprintf("sched: bad reservation [%d,%d) at now=%d", from, to, p.now))
	}
	if from == p.now {
		p.availNow -= nodes
		if p.availNow < 0 {
			panic("sched: reservation exceeds current availability")
		}
	} else {
		p.insert(from, -nodes)
	}
	p.insert(to, nodes)
}

// insert adds a delta at time t, keeping the breakpoint list sorted.
func (p *profile) insert(t int64, delta int) {
	i := sort.Search(len(p.times), func(k int) bool { return p.times[k] >= t })
	if i < len(p.times) && p.times[i] == t {
		p.deltas[i] += delta
		return
	}
	p.times = append(p.times, 0)
	p.deltas = append(p.deltas, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.deltas[i+1:], p.deltas[i:])
	p.times[i] = t
	p.deltas[i] = delta
}
