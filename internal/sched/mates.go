package sched

import (
	"math"
	"sort"

	"sdpolicy/internal/job"
	"sdpolicy/internal/model"
)

// mateSelection is the solution of the resource selection problem
// (Section 3.2): the mates that shrink, how many free nodes are mixed in
// (IncludeFreeNodes option), and the total Performance Impact.
type mateSelection struct {
	mates     []*rjob
	freeNodes int
	penalty   float64 // PI = sum of mate penalties (Eq. 1)
}

// candidate is a mate with its Eq. 4 penalty.
type candidate struct {
	m *rjob
	p float64
}

// penalty evaluates Eq. 4 for a prospective mate: the predicted slowdown
// (wait + increase + req_time)/req_time after committing to host the
// guest until guestEnd.
func (s *Scheduler) penalty(m *rjob, now, guestEnd int64) float64 {
	keepRate := float64(s.mgr.OwnerKeepCores()) / float64(s.cl.Config().CoresPerNode())
	if s.cfg.Policy == Oversubscribe {
		keepRate *= 1 - s.cfg.OversubPenalty
	}
	newInc := model.MateIncrease(guestEnd-now, keepRate)
	wait := float64(m.start - m.j.Submit)
	req := float64(m.j.ReqTime)
	return (wait + m.increase + newInc + req) / req
}

// eligibleMate reports whether m can shrink for the guest g ending at
// guestEnd: malleable, not hosting, not hosted, holding all its nodes at
// full cores, shrink floor respected, long enough that the guest
// finishes inside its allocation (Section 3.2.4 constraint), and on
// nodes satisfying the guest's feature constraints.
func (s *Scheduler) eligibleMate(m, g *rjob, now, guestEnd int64) bool {
	if s.cfg.Policy == SDPolicy && m.j.Kind != job.Malleable {
		return false // only malleable jobs can shrink; oversubscription shares blindly
	}
	if m.guest != nil || len(m.hosts) > 0 {
		return false
	}
	if s.mgr.OwnerKeepCores() < m.j.TasksPerNode {
		return false
	}
	if m.predEnd(now) < guestEnd {
		return false
	}
	full := s.cl.Config().CoresPerNode()
	for _, share := range s.mgr.Shares(m.j.ID, m.nodes) {
		if share != full {
			return false
		}
	}
	if len(g.j.Features) > 0 {
		for _, nd := range m.nodes {
			if !s.cl.NodeHasFeatures(nd, g.j.Features) {
				return false
			}
		}
	}
	return true
}

// selectMates implements Listing 2's pick_mates: filter and sort the
// running jobs by penalty, then search combinations of at most MaxMates
// mates whose node counts sum to the request (constraint 3), each below
// the MAX_SLOWDOWN cut-off (constraint 2), minimising the Performance
// Impact (Eq. 1). Returns nil when no feasible combination exists.
func (s *Scheduler) selectMates(r *rjob, now, guestEnd int64) *mateSelection {
	W := r.j.ReqNodes
	maxSD := s.maxSD
	if s.cfg.Cutoff == CutoffStatic {
		if qsd, ok := s.cfg.QueueMaxSlowdown[r.j.Queue]; ok {
			maxSD = qsd // per-queue QoS cut-off (§4.1)
		}
	}
	var cands []candidate
	for _, m := range s.running {
		if !s.eligibleMate(m, r, now, guestEnd) {
			continue
		}
		if len(m.nodes) > W {
			continue // a mate shrinks on all its nodes; larger mates overshoot
		}
		p := s.penalty(m, now, guestEnd)
		if p >= maxSD {
			continue // Eq. 2 cut-off
		}
		cands = append(cands, candidate{m: m, p: p})
	}
	if len(cands) == 0 {
		return nil
	}
	// Deterministic order: penalty ascending, job id as tie-break (the
	// running set is a map).
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].p != cands[j].p {
			return cands[i].p < cands[j].p
		}
		return cands[i].m.j.ID < cands[j].m.j.ID
	})
	if len(cands) > s.cfg.CandidateCap {
		cands = cands[:s.cfg.CandidateCap]
	}

	freeAvail := 0
	if s.cfg.IncludeFreeNodes {
		freeAvail = s.cl.FreeNodesWith(r.j.Features)
	}

	best := mateSelection{penalty: math.Inf(1)}
	cur := make([]*rjob, 0, s.cfg.MaxMates)
	var dfs func(start, needed int, pen float64)
	dfs = func(start, needed int, pen float64) {
		if pen >= best.penalty {
			return
		}
		if len(cur) > 0 && (needed == 0 || needed <= freeAvail) {
			best.mates = append(best.mates[:0], cur...)
			best.freeNodes = needed
			best.penalty = pen
			if needed == 0 {
				return
			}
			// A free-node completion found; adding mates only raises the
			// penalty, but an exact mate fit deeper may still use fewer
			// free nodes at equal penalty — the paper minimises PI, so
			// stop here.
			return
		}
		if len(cur) == s.cfg.MaxMates {
			return
		}
		for i := start; i < len(cands); i++ {
			w := len(cands[i].m.nodes)
			if w > needed {
				continue
			}
			cur = append(cur, cands[i].m)
			dfs(i+1, needed-w, pen+cands[i].p)
			cur = cur[:len(cur)-1]
		}
	}
	dfs(0, W, 0)
	if math.IsInf(best.penalty, 1) {
		return nil
	}
	return &best
}
