package sched

import (
	"math"

	"sdpolicy/internal/job"
	"sdpolicy/internal/model"
)

// mateSelection is the solution of the resource selection problem
// (Section 3.2): the mates that shrink, how many free nodes are mixed in
// (IncludeFreeNodes option), and the total Performance Impact.
type mateSelection struct {
	mates     []*rjob
	freeNodes int
	penalty   float64 // PI = sum of mate penalties (Eq. 1)
}

// candidate is a mate with its Eq. 4 penalty.
type candidate struct {
	m *rjob
	p float64
}

// candLess is the deterministic candidate order: penalty ascending with
// the (unique) job id as tie-break — a strict total order, so the
// lowest-CandidateCap set and its sorted layout are unambiguous.
func candLess(a, b candidate) bool {
	if a.p != b.p {
		return a.p < b.p
	}
	return a.m.j.ID < b.m.j.ID
}

// penalty evaluates Eq. 4 for a prospective mate: the predicted slowdown
// (wait + increase + req_time)/req_time after committing to host the
// guest until guestEnd. keepRate is the shrunk owner's rate, hoisted by
// the caller (it is constant across candidates of one selection).
func penalty(m *rjob, now, guestEnd int64, keepRate float64) float64 {
	newInc := model.MateIncrease(guestEnd-now, keepRate)
	wait := float64(m.start - m.j.Submit)
	req := float64(m.j.ReqTime)
	return (wait + m.increase + newInc + req) / req
}

// eligibleMate reports whether m can shrink for the guest g ending at
// guestEnd: malleable, not hosting, not hosted, holding all its nodes at
// full cores, shrink floor respected, long enough that the guest
// finishes inside its allocation (Section 3.2.4 constraint), and on
// nodes satisfying the guest's feature constraints.
func (s *Scheduler) eligibleMate(m, g *rjob, now, guestEnd int64) bool {
	if s.cfg.Policy == SDPolicy && m.j.Kind != job.Malleable {
		return false // only malleable jobs can shrink; oversubscription shares blindly
	}
	if m.guest != nil || len(m.hosts) > 0 {
		return false
	}
	if s.mgr.OwnerKeepCores() < m.j.TasksPerNode {
		return false
	}
	if !m.allFull {
		return false
	}
	if s.predEndOf(m, now) < guestEnd {
		return false
	}
	if len(g.j.Features) > 0 {
		for _, nd := range m.nodes {
			if !s.cl.NodeHasFeatures(nd, g.j.Features) {
				return false
			}
		}
	}
	return true
}

// mateSearch carries the state of the combination search so the
// recursion needs no closure and its slices survive across passes as
// scheduler-owned scratch.
type mateSearch struct {
	cands     []candidate
	sufWidth  []int // sufWidth[i] = max node count among cands[i:]
	freeAvail int
	maxMates  int
	cur       []*rjob
	bestMates []*rjob
	bestFree  int
	bestPen   float64
}

// dfs enumerates mate combinations in penalty order with two exact
// prunes. Both preserve the search result bit-for-bit: a solution is
// recorded only on strict penalty improvement, so subtrees whose
// cheapest possible extension already reaches bestPen cannot change the
// outcome.
func (ms *mateSearch) dfs(start, needed int, pen float64) {
	if pen >= ms.bestPen {
		return
	}
	if len(ms.cur) > 0 && (needed == 0 || needed <= ms.freeAvail) {
		ms.bestMates = append(ms.bestMates[:0], ms.cur...)
		ms.bestFree = needed
		ms.bestPen = pen
		if needed == 0 {
			return
		}
		// A free-node completion found; adding mates only raises the
		// penalty, but an exact mate fit deeper may still use fewer
		// free nodes at equal penalty — the paper minimises PI, so
		// stop here.
		return
	}
	slots := ms.maxMates - len(ms.cur)
	if slots == 0 {
		return
	}
	for i := start; i < len(ms.cands); i++ {
		// Candidates are sorted by penalty ascending: once the cheapest
		// remaining one cannot beat the incumbent, none can.
		if pen+ms.cands[i].p >= ms.bestPen {
			break
		}
		// Width bound: even taking the widest remaining candidates in
		// every open slot cannot reach the requested node count.
		if needed > ms.freeAvail+slots*ms.sufWidth[i] {
			break
		}
		w := len(ms.cands[i].m.nodes)
		if w > needed {
			continue
		}
		ms.cur = append(ms.cur, ms.cands[i].m)
		ms.dfs(i+1, needed-w, pen+ms.cands[i].p)
		ms.cur = ms.cur[:len(ms.cur)-1]
	}
}

// selectMates implements Listing 2's pick_mates: filter and sort the
// running jobs by penalty, then search combinations of at most MaxMates
// mates whose node counts sum to the request (constraint 3), each below
// the MAX_SLOWDOWN cut-off (constraint 2), minimising the Performance
// Impact (Eq. 1). Returns nil when no feasible combination exists. The
// returned selection is scheduler-owned scratch, valid until the next
// call.
func (s *Scheduler) selectMates(r *rjob, now, guestEnd int64) *mateSelection {
	W := r.j.ReqNodes
	maxSD := s.maxSD
	if s.cfg.Cutoff == CutoffStatic {
		if qsd, ok := s.cfg.QueueMaxSlowdown[r.j.Queue]; ok {
			maxSD = qsd // per-queue QoS cut-off (§4.1)
		}
	}
	keepRate := float64(s.mgr.OwnerKeepCores()) / float64(s.cl.Config().CoresPerNode())
	if s.cfg.Policy == Oversubscribe {
		keepRate *= 1 - s.cfg.OversubPenalty
	}
	// Stream the eligible mates straight into a bounded, sorted
	// candidate list: only the CandidateCap lowest penalties matter, so
	// a running job worse than the current cut costs one comparison
	// instead of a slot in a full sort.
	nm := s.cfg.CandidateCap
	cands := s.search.cands[:0]
	for _, m := range s.runList {
		if len(m.nodes) > W {
			continue // a mate shrinks on all its nodes; larger mates overshoot
		}
		if !s.eligibleMate(m, r, now, guestEnd) {
			continue
		}
		p := penalty(m, now, guestEnd, keepRate)
		if p >= maxSD {
			continue // Eq. 2 cut-off
		}
		c := candidate{m: m, p: p}
		if len(cands) == nm && !candLess(c, cands[nm-1]) {
			continue
		}
		lo, hi := 0, len(cands)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if candLess(c, cands[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if len(cands) < nm {
			cands = append(cands, candidate{})
		}
		copy(cands[lo+1:], cands[lo:])
		cands[lo] = c
	}
	s.search.cands = cands
	if len(cands) == 0 {
		return nil
	}

	freeAvail := 0
	if s.cfg.IncludeFreeNodes {
		freeAvail = s.cl.FreeNodesWith(r.j.Features)
	}

	ms := &s.search
	ms.cands = cands
	if cap(ms.sufWidth) < len(cands) {
		ms.sufWidth = make([]int, len(cands))
	}
	ms.sufWidth = ms.sufWidth[:len(cands)]
	for i := len(cands) - 1; i >= 0; i-- {
		w := len(cands[i].m.nodes)
		if i+1 < len(cands) && ms.sufWidth[i+1] > w {
			w = ms.sufWidth[i+1]
		}
		ms.sufWidth[i] = w
	}
	ms.freeAvail = freeAvail
	ms.maxMates = s.cfg.MaxMates
	ms.cur = ms.cur[:0]
	ms.bestMates = ms.bestMates[:0]
	ms.bestFree = 0
	ms.bestPen = math.Inf(1)
	ms.dfs(0, W, 0)
	if math.IsInf(ms.bestPen, 1) {
		return nil
	}
	s.selBuf = mateSelection{mates: ms.bestMates, freeNodes: ms.bestFree, penalty: ms.bestPen}
	return &s.selBuf
}
