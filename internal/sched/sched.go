package sched

import (
	"fmt"
	"math"

	"sdpolicy/internal/cluster"
	"sdpolicy/internal/drom"
	"sdpolicy/internal/energy"
	"sdpolicy/internal/job"
	"sdpolicy/internal/metrics"
	"sdpolicy/internal/model"
	"sdpolicy/internal/nodemgr"
	"sdpolicy/internal/sim"
	"sdpolicy/internal/stats"
)

// peInvalid marks an rjob's predicted-end memo as stale.
const peInvalid = math.MinInt64

// rjob is the scheduler's live view of one job.
type rjob struct {
	j     *job.Job
	nodes []int
	start int64
	// prog tracks true progress (ActualTime of work) under the
	// configured runtime model: it drives the real completion event.
	prog *model.Progress
	// pred tracks requested-time progress under the worst-case model:
	// it drives every scheduler prediction (Section 3.4: "in the
	// SD-Policy case, we use the worst case model").
	pred   *model.Progress
	endEv  sim.Event
	runIdx int // position in Scheduler.runList
	// predicted-end memo: predEnd is pure in (pred state, now), so one
	// computation per timestamp serves the profile build, the cut-off
	// and every mate-eligibility check of a pass. peAt is the timestamp
	// the memo was taken at; SetRate invalidates it.
	peAt  int64
	peVal int64
	// allFull mirrors "every node share equals the full core count",
	// refreshed by setRates — shares never change without a rate
	// refresh, so the flag is exact. It replaces the per-candidate
	// share scan of the mate-eligibility check.
	allFull bool
	// malleability roles
	guest     *rjob   // guest currently hosted (this job is its mate)
	hosts     []*rjob // mates hosting this job (this job is a guest)
	mallStart bool
	everMate  bool
	// committed predicted extra runtime, the "increase" history feeding
	// Eq. 4 penalties.
	increase float64
	speedup  model.SpeedupFn // per-app curve, only under model.App
}

// predEnd returns the predicted completion time at `now`.
func (r *rjob) predEnd(now int64) int64 {
	rem := r.pred.RemainingWall(now)
	if rem == math.MaxInt64 {
		return math.MaxInt64
	}
	return now + rem
}

// predEndOf is the memoised predEnd: exact, because the prediction only
// changes when the clock moves or SetRate runs (which resets peAt).
func (s *Scheduler) predEndOf(r *rjob, now int64) int64 {
	if r.peAt != now {
		r.peAt = now
		r.peVal = r.predEnd(now)
	}
	return r.peVal
}

// Scheduler runs one policy over one workload.
type Scheduler struct {
	cfg Config
	eng *sim.Engine
	cl  *cluster.Cluster
	reg *drom.Registry
	mgr *nodemgr.Manager

	queue   []*rjob
	running map[job.ID]*rjob
	// runList mirrors `running` as a slice so the per-pass iterations
	// (profile build, cut-off, mate filter) avoid map-range overhead.
	// Order is begin-order with swap-removal on finish; every consumer
	// is order-independent (max/sort/total-order reductions).
	runList []*rjob
	results []metrics.JobResult
	meter   *energy.Meter

	passPending bool
	passFn      func()  // cached method value, scheduled by requestPass
	maxSD       float64 // effective cut-off for the current pass

	// counters
	mallStarts int
	passes     uint64

	// Scratch reused across passes. relBuf holds the per-node latest
	// predicted release time; relAt/relDirty implement its incremental
	// maintenance: it is recomputed only when the clock moved or an
	// allocation/rate changed since it was last built, so the feature
	// profile of the same pass reuses it for free.
	relBuf   []int64
	relAt    int64
	relDirty bool

	relsBuf   []int64   // compacted releases for the pass profile
	frelsBuf  []int64   // feature-filtered releases
	sdsBuf    []float64 // dynamic-cutoff slowdown samples
	sharesBuf []int     // per-node shares for rate refreshes
	matesBuf  []nodemgr.Mate
	prof      profile // pass profile backing store
	fprof     profile // feature profile backing store
	search    mateSearch
	selBuf    mateSelection
}

// NewScheduler wires a scheduler over fresh substrate instances.
func NewScheduler(eng *sim.Engine, cfg Config, machine cluster.Config) *Scheduler {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cl := cluster.New(machine)
	reg := drom.NewRegistry(machine.CoresPerNode(), cfg.DROMOverhead)
	idleW, coreW := cfg.EnergyIdleNodeW, cfg.EnergyCoreW
	if idleW == 0 && coreW == 0 {
		idleW, coreW = energy.DefaultIdleNodeW, energy.DefaultCoreW
	}
	s := &Scheduler{
		cfg:      cfg,
		eng:      eng,
		cl:       cl,
		reg:      reg,
		mgr:      nodemgr.New(cl, reg, cfg.SharingFactor),
		running:  make(map[job.ID]*rjob),
		meter:    energy.NewMeter(machine.Nodes, idleW, coreW),
		maxSD:    cfg.MaxSlowdown,
		relDirty: true,
	}
	s.passFn = s.pass
	return s
}

// Cluster exposes the cluster for inspection in tests.
func (s *Scheduler) Cluster() *cluster.Cluster { return s.cl }

// DROMStats returns the registry traffic counters.
func (s *Scheduler) DROMStats() drom.Stats { return s.reg.Stats() }

// Passes returns how many scheduling passes ran.
func (s *Scheduler) Passes() uint64 { return s.passes }

// Submit schedules the arrival of a job at its submit time.
func (s *Scheduler) Submit(j *job.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if j.ReqNodes > s.cl.Config().Nodes {
		return fmt.Errorf("sched: job %d requests %d of %d nodes",
			j.ID, j.ReqNodes, s.cl.Config().Nodes)
	}
	if n := s.cl.NodesWith(j.Features); j.ReqNodes > n {
		return fmt.Errorf("sched: job %d requires features %v on %d nodes, machine has %d",
			j.ID, j.Features, j.ReqNodes, n)
	}
	s.eng.Schedule(j.Submit, sim.PriSubmit, func() {
		r := &rjob{j: j}
		if s.cfg.RuntimeModel == model.App {
			if s.cfg.Speedups != nil {
				r.speedup = s.cfg.Speedups(j.App)
			} else {
				r.speedup = func(c int) float64 { return float64(c) }
			}
		}
		s.queue = append(s.queue, r)
		s.obsSubmitted(j.ID)
		s.requestPass()
	})
	return nil
}

// requestPass coalesces scheduling passes: at most one per timestamp,
// after all same-time submit/end events.
func (s *Scheduler) requestPass() {
	if s.passPending {
		return
	}
	s.passPending = true
	s.eng.Schedule(s.eng.Now(), sim.PriSched, s.passFn)
}

// shareFactor returns the extra throughput multiplier of the job: under
// the Oversubscribe policy, jobs on shared nodes pay the contention
// penalty because they do not adapt to the reduced resources.
func (s *Scheduler) shareFactor(r *rjob) float64 {
	if s.cfg.Policy != Oversubscribe || s.cfg.OversubPenalty == 0 {
		return 1
	}
	for _, nd := range r.nodes {
		if s.cl.JobsOn(nd) > 1 {
			return 1 - s.cfg.OversubPenalty
		}
	}
	return 1
}

// setRates derives both progress rates from the job's current per-node
// shares (queried once) and returns the true remaining wall time.
// trueRate uses the configured runtime model; the prediction always uses
// the worst-case model, so the scheduler can guarantee completion inside
// predictions.
func (s *Scheduler) setRates(r *rjob, now int64) int64 {
	s.sharesBuf = s.mgr.SharesInto(s.sharesBuf[:0], r.j.ID, r.nodes)
	full := s.cl.Config().CoresPerNode()
	r.allFull = true
	for _, c := range s.sharesBuf {
		if c != full {
			r.allFull = false
			break
		}
	}
	sf := s.shareFactor(r)
	r.prog.SetRate(now, model.Rate(s.cfg.RuntimeModel, s.sharesBuf, full, r.speedup)*sf)
	r.pred.SetRate(now, model.Rate(model.WorstCase, s.sharesBuf, full, nil)*sf)
	r.peAt = peInvalid
	s.relDirty = true
	return r.prog.RemainingWall(now)
}

// refreshRates re-derives both rates after an allocation change and
// reschedules the completion event.
func (s *Scheduler) refreshRates(r *rjob) {
	now := s.eng.Now()
	rem := s.setRates(r, now)
	if rem == math.MaxInt64 {
		panic(fmt.Sprintf("sched: job %d starved to rate 0", r.j.ID))
	}
	r.endEv = s.eng.Reschedule(r.endEv, now+rem)
}

// begin starts tracking a job that has just been placed on its nodes.
func (s *Scheduler) begin(r *rjob, malleable bool) {
	now := s.eng.Now()
	r.start = now
	r.mallStart = malleable
	r.prog = model.NewProgress(now, float64(r.j.ActualTime))
	r.pred = model.NewProgress(now, float64(r.j.ReqTime))
	rem := s.setRates(r, now)
	if rem == math.MaxInt64 {
		panic(fmt.Sprintf("sched: job %d starts starved", r.j.ID))
	}
	r.endEv = s.eng.Schedule(now+rem, sim.PriEnd, func() { s.finish(r) })
	s.running[r.j.ID] = r
	r.runIdx = len(s.runList)
	s.runList = append(s.runList, r)
	if malleable {
		s.mallStarts++
	}
	s.meter.Update(now, s.cl.UsedCores())
	s.obsStarted(r, malleable)
}

// finish handles the completion event of a job.
func (s *Scheduler) finish(r *rjob) {
	now := s.eng.Now()
	if !r.prog.Finished(now) {
		panic(fmt.Sprintf("sched: job %d completion fired with work left", r.j.ID))
	}
	delete(s.running, r.j.ID)
	last := len(s.runList) - 1
	moved := s.runList[last]
	s.runList[r.runIdx] = moved
	moved.runIdx = r.runIdx
	s.runList[last] = nil
	s.runList = s.runList[:last]
	s.relDirty = true

	// Listing 3's end path: clean DROM state, release the nodes, let the
	// per-node survivor (owner expanding back, or malleable guest
	// absorbing a finished owner) take the freed cores.
	affected, _ := s.mgr.Finish(r.j.ID, r.nodes, func(id job.ID) bool {
		other, ok := s.running[id]
		if !ok {
			return false
		}
		// Oversubscribed jobs always reclaim cores their co-runner
		// frees (they never gave them up logically); malleable jobs
		// expand/absorb; moldable and rigid jobs cannot.
		return s.cfg.Policy == Oversubscribe || other.j.Kind == job.Malleable
	})
	// Untangle role bookkeeping.
	if r.guest != nil { // r was a mate; its guest survives on r's nodes
		g := r.guest
		g.hosts = removeRjob(g.hosts, r)
		r.guest = nil
	}
	for _, m := range r.hosts { // r was a guest; its mates expand
		if m.guest == r {
			m.guest = nil
		}
	}
	r.hosts = nil
	for _, id := range affected {
		s.refreshRates(s.running[id])
		s.obsReconfigured(s.running[id])
	}

	s.results = append(s.results, metrics.JobResult{
		ID: r.j.ID, Submit: r.j.Submit, Start: r.start, End: now,
		ReqTime: r.j.ReqTime, ActualTime: r.j.ActualTime,
		ReqNodes: r.j.ReqNodes, Kind: r.j.Kind, App: r.j.App,
		MalleableStart: r.mallStart, WasMate: r.everMate,
	})
	s.meter.Update(now, s.cl.UsedCores())
	s.obsFinished(r.j.ID)
	s.requestPass()
}

// pass is one scheduling pass: the static conservative-backfill loop
// with, under SDPolicy, the malleable trial of Listing 1 after each
// failed static trial.
func (s *Scheduler) pass() {
	s.passPending = false
	s.passes++
	if len(s.queue) == 0 {
		return
	}
	now := s.eng.Now()
	if s.cfg.Cutoff != CutoffStatic {
		s.maxSD = s.dynamicCutoff(now)
	}
	prof := s.buildProfile(now)

	kept := s.queue[:0]
	examined, reserved := 0, 0
	for qi, r := range s.queue {
		if examined >= s.cfg.BackfillDepth {
			kept = append(kept, s.queue[qi:]...)
			break
		}
		examined++
		est := prof.earliestStart(r.j.ReqNodes, r.j.ReqTime)
		// Feature-constrained jobs additionally wait for matching nodes:
		// their start estimate is the later of the aggregate profile and
		// a profile restricted to nodes carrying the features.
		if len(r.j.Features) > 0 {
			if fest := s.featureEarliestStart(r, now); fest > est {
				est = fest
			}
		}
		if est == now && s.cl.FreeNodesWith(r.j.Features) >= r.j.ReqNodes {
			s.startStatic(r, prof)
			continue
		}
		coSchedulable := (s.cfg.Policy == SDPolicy && r.j.Kind != job.Rigid) ||
			s.cfg.Policy == Oversubscribe
		if coSchedulable {
			if s.tryMalleable(r, est, prof) {
				continue
			}
		}
		// Conservative backfill reserves for every examined job; with
		// ReservationDepth 1 only the head holds a reservation (EASY).
		if reserved < s.cfg.ReservationDepth {
			prof.reserve(est, est+r.j.ReqTime, r.j.ReqNodes)
			reserved++
		}
		kept = append(kept, r)
	}
	// zero the tail so removed jobs do not leak
	for i := len(kept); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = kept
}

// startStatic places the job on free nodes now and charges the profile.
func (s *Scheduler) startStatic(r *rjob, prof *profile) {
	nodes, err := s.mgr.PlaceOwnerWith(r.j.ID, r.j.ReqNodes, r.j.Features)
	if err != nil {
		panic(fmt.Sprintf("sched: static start of job %d: %v", r.j.ID, err))
	}
	r.nodes = nodes
	s.begin(r, false)
	prof.reserve(s.eng.Now(), s.eng.Now()+r.j.ReqTime, r.j.ReqNodes)
}

// tryMalleable is the malleable branch of Listing 1. est is the
// predicted static start from the reservation map. It reports whether
// the job was started.
func (s *Scheduler) tryMalleable(r *rjob, est int64, prof *profile) bool {
	now := s.eng.Now()
	staticEnd := est + r.j.ReqTime

	full := s.cl.Config().CoresPerNode()
	guestCores := s.mgr.GuestCores()
	if guestCores < r.j.TasksPerNode {
		return false // cannot satisfy one core per task
	}
	guestRate := model.UniformRate(model.WorstCase, guestCores, full, nil)
	if s.cfg.Policy == Oversubscribe {
		guestRate *= 1 - s.cfg.OversubPenalty
	}
	inc := model.Increase(r.j.ReqTime, guestRate)
	if math.IsInf(inc, 1) {
		return false
	}
	mallRun := r.j.ReqTime + int64(math.Ceil(inc))
	mallEnd := now + mallRun
	if staticEnd <= mallEnd {
		return false // waiting for a static start is predicted better
	}
	sel := s.selectMates(r, now, mallEnd)
	if sel == nil {
		return false
	}
	s.startMalleable(r, sel, mallRun)
	if sel.freeNodes > 0 {
		// free nodes mixed into the guest's allocation are busy until
		// the guest's predicted end
		prof.reserve(now, mallEnd, sel.freeNodes)
	}
	return true
}

// startMalleable shrinks the selected mates and starts the guest on
// their ceded cores (plus any free nodes mixed in).
func (s *Scheduler) startMalleable(r *rjob, sel *mateSelection, mallRun int64) {
	mates := s.matesBuf[:0]
	for _, m := range sel.mates {
		mates = append(mates, nodemgr.Mate{ID: m.j.ID, Nodes: m.nodes})
	}
	s.matesBuf = mates[:0]
	s.mgr.StartGuest(r.j.ID, mates)
	r.nodes = r.nodes[:0]
	for _, m := range sel.mates {
		r.nodes = append(r.nodes, m.nodes...)
	}
	// Free nodes mixed in are owned outright (full cores).
	if sel.freeNodes > 0 {
		freeNodes, err := s.mgr.PlaceOwnerWith(r.j.ID, sel.freeNodes, r.j.Features)
		if err != nil {
			panic(fmt.Sprintf("sched: free-node mix for job %d: %v", r.j.ID, err))
		}
		r.nodes = append(r.nodes, freeNodes...)
	}
	if len(r.nodes) != r.j.ReqNodes {
		panic(fmt.Sprintf("sched: job %d placed on %d nodes, requested %d",
			r.j.ID, len(r.nodes), r.j.ReqNodes))
	}

	// update_stats of Listing 1: commit the mates' predicted increases
	// and link roles.
	keepRate := float64(s.mgr.OwnerKeepCores()) / float64(s.cl.Config().CoresPerNode())
	if s.cfg.Policy == Oversubscribe {
		keepRate *= 1 - s.cfg.OversubPenalty
	}
	for _, m := range sel.mates {
		m.guest = r
		m.everMate = true
		m.increase += model.MateIncrease(mallRun, keepRate)
		r.hosts = append(r.hosts, m)
	}
	s.begin(r, true)
	// The mates' rates changed: refresh their progress and end events.
	for _, m := range sel.mates {
		s.refreshRates(m)
		s.obsReconfigured(m)
	}
}

// nodeReleases returns the per-node latest predicted release time
// (shared nodes collapse to their latest resident). The array is
// rebuilt only when the dirty flag says a rate or allocation changed,
// or the clock moved, since the last build — so the feature profiles
// of a pass reuse the build done for the aggregate profile.
func (s *Scheduler) nodeReleases(now int64) []int64 {
	nodes := s.cl.Config().Nodes
	if cap(s.relBuf) < nodes {
		s.relBuf = make([]int64, nodes)
	}
	rel := s.relBuf[:nodes]
	if !s.relDirty && s.relAt == now {
		return rel
	}
	for i := range rel {
		rel[i] = 0
	}
	for _, r := range s.runList {
		end := s.predEndOf(r, now)
		for _, nd := range r.nodes {
			if end > rel[nd] {
				rel[nd] = end
			}
		}
	}
	s.relAt, s.relDirty = now, false
	return rel
}

// featureEarliestStart estimates when enough nodes carrying the job's
// required features become free, from the running jobs' predicted ends.
// Reservations of other waiting feature jobs are not feature-tracked;
// the aggregate profile covers them approximately.
func (s *Scheduler) featureEarliestStart(r *rjob, now int64) int64 {
	matching := s.cl.NodesWith(r.j.Features)
	rel := s.nodeReleases(now)
	frels := s.frelsBuf[:0]
	for nd, end := range rel {
		if end > 0 && s.cl.NodeHasFeatures(nd, r.j.Features) {
			frels = append(frels, end)
		}
	}
	s.frelsBuf = frels
	s.fprof.init(now, matching, s.cl.FreeNodesWith(r.j.Features), frels)
	return s.fprof.earliestStart(r.j.ReqNodes, r.j.ReqTime)
}

// buildProfile constructs the availability step function from per-node
// predicted release times (shared nodes release at the latest resident's
// predicted end).
func (s *Scheduler) buildProfile(now int64) *profile {
	nodes := s.cl.Config().Nodes
	rel := s.nodeReleases(now)
	rels := s.relsBuf[:0]
	for _, t := range rel {
		if t > 0 {
			rels = append(rels, t)
		}
	}
	s.relsBuf = rels
	s.prof.init(now, nodes, s.cl.FreeNodes(), rels)
	return &s.prof
}

// dynamicCutoff computes the feedback cut-off from the predicted
// slowdowns of running jobs (Section 3.2.2, case 2).
func (s *Scheduler) dynamicCutoff(now int64) float64 {
	if len(s.runList) == 0 {
		return math.Inf(1)
	}
	sds := s.sdsBuf[:0]
	for _, r := range s.runList {
		wait := float64(r.start - r.j.Submit)
		end := s.predEndOf(r, now)
		if end == math.MaxInt64 {
			continue
		}
		run := float64(end - r.start)
		sds = append(sds, (wait+run)/float64(r.j.ReqTime))
	}
	s.sdsBuf = sds
	if len(sds) == 0 {
		return math.Inf(1)
	}
	switch s.cfg.Cutoff {
	case CutoffDynAvg:
		var sum float64
		for _, v := range sds {
			sum += v
		}
		return sum / float64(len(sds))
	case CutoffDynMedian:
		return stats.PercentileInPlace(sds, 50)
	case CutoffDynP70:
		return stats.PercentileInPlace(sds, 70)
	}
	panic(fmt.Sprintf("sched: unexpected cutoff %v", s.cfg.Cutoff))
}

func removeRjob(xs []*rjob, x *rjob) []*rjob {
	for i, v := range xs {
		if v == x {
			xs[i] = xs[len(xs)-1]
			return xs[:len(xs)-1]
		}
	}
	return xs
}
