package sched

import (
	"testing"

	"sdpolicy/internal/job"
	"sdpolicy/internal/model"
	"sdpolicy/internal/workload"
)

func oversubConfig(penalty float64) Config {
	cfg := Defaults()
	cfg.Policy = Oversubscribe
	cfg.OversubPenalty = penalty
	cfg.RuntimeModel = model.WorstCase
	return cfg
}

func TestOversubscribeSharesWithRigidJobs(t *testing.T) {
	// Both jobs rigid: SD-Policy cannot touch them, oversubscription can.
	spec := tiny(2, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Rigid),
		mj(2, 10, 100, 100, 2, job.Rigid),
	})
	sd := runOrFail(t, spec, sdConfig())
	if sd.MalleableStarts != 0 {
		t.Fatal("SD-Policy co-scheduled rigid jobs")
	}
	over := runOrFail(t, spec, oversubConfig(0))
	if over.MalleableStarts != 1 {
		t.Fatal("oversubscription did not co-schedule")
	}
	// with no penalty, timing matches SD arithmetic: B ends at 210
	if got := byID(t, over, 2).End; got != 210 {
		t.Fatalf("co-scheduled job end %d, want 210", got)
	}
}

func TestOversubscribePenaltySlowsBoth(t *testing.T) {
	spec := tiny(2, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Rigid),
		mj(2, 10, 100, 100, 2, job.Rigid),
	})
	over := runOrFail(t, spec, oversubConfig(0.5))
	b := byID(t, over, 2)
	if !b.MalleableStart {
		t.Fatal("not co-scheduled")
	}
	// guest rate = 0.5 * (1-0.5) = 0.25 => runtime 400, end 410
	if b.End != 410 {
		t.Fatalf("guest end %d, want 410", b.End)
	}
	// mate also thrashes at rate 0.25 while sharing [10,410]:
	// progress 10 + 400*0.25 = 110; remaining 890 => ends 1300.
	a := byID(t, over, 1)
	if a.End != 1300 {
		t.Fatalf("mate end %d, want 1300", a.End)
	}
}

func TestOversubscribeSelfGates(t *testing.T) {
	// With a huge penalty the predicted shared end exceeds the static
	// wait, so the policy declines to share (Listing 1's estimate).
	spec := tiny(2, []job.Job{
		mj(1, 0, 250, 250, 2, job.Rigid),
		mj(2, 10, 100, 100, 2, job.Rigid),
	})
	over := runOrFail(t, spec, oversubConfig(0.9))
	if byID(t, over, 2).MalleableStart {
		t.Fatal("shared despite a worse prediction")
	}
}

func TestSDBeatsOversubscription(t *testing.T) {
	// The paper's motivation (§1): malleability outperforms blind
	// resource sharing because adapted jobs avoid contention. Same
	// workload, fully malleable; identical sharing opportunities, but
	// oversubscription pays the penalty on both sides.
	spec := workload.WL5(0.25, 3)
	sd := runOrFail(t, spec, sdConfig())
	over := runOrFail(t, spec, oversubConfig(0.25))
	if !(sd.Report.AvgSlowdown() < over.Report.AvgSlowdown()) {
		t.Fatalf("SD slowdown %.1f not better than oversubscription %.1f",
			sd.Report.AvgSlowdown(), over.Report.AvgSlowdown())
	}
	static := runOrFail(t, spec, Defaults())
	if !(over.Report.AvgSlowdown() < static.Report.AvgSlowdown()) {
		t.Fatalf("oversubscription %.1f should still beat static %.1f here",
			over.Report.AvgSlowdown(), static.Report.AvgSlowdown())
	}
}

func TestQueueQoSCutoffs(t *testing.T) {
	// Two identical guests in different queues: the "restricted" queue's
	// cut-off blocks malleability, the default allows it (§4.1's QoS
	// suggestion).
	guestA := mj(2, 10, 100, 100, 2, job.Malleable)
	guestA.Queue = "restricted"
	spec := tiny(2, []job.Job{
		mj(1, 0, 1000, 1000, 2, job.Malleable),
		guestA,
	})
	cfg := sdConfig()
	cfg.QueueMaxSlowdown = map[string]float64{"restricted": 1.01}
	res := runOrFail(t, spec, cfg)
	if byID(t, res, 2).MalleableStart {
		t.Fatal("restricted queue cut-off ignored")
	}
	// same job in the default queue co-schedules
	spec.Jobs[1].Queue = ""
	res = runOrFail(t, spec, cfg)
	if !byID(t, res, 2).MalleableStart {
		t.Fatal("default queue should allow malleability")
	}
	// a permissive named queue also allows it
	spec.Jobs[1].Queue = "fast"
	cfg.QueueMaxSlowdown["fast"] = 100
	res = runOrFail(t, spec, cfg)
	if !byID(t, res, 2).MalleableStart {
		t.Fatal("permissive queue blocked malleability")
	}
}

func TestOversubConfigValidation(t *testing.T) {
	cfg := Defaults()
	cfg.OversubPenalty = 1.0
	if cfg.Validate() == nil {
		t.Fatal("penalty 1.0 accepted")
	}
	cfg.OversubPenalty = -0.1
	if cfg.Validate() == nil {
		t.Fatal("negative penalty accepted")
	}
}
