package sim

import (
	"context"
	"errors"
	"testing"
)

func TestRunCtxDrainsNormally(t *testing.T) {
	eng := NewEngine()
	fired := 0
	for i := 0; i < 100; i++ {
		eng.Schedule(Time(i), PriStats, func() { fired++ })
	}
	if err := eng.RunCtx(context.Background(), 0); err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if fired != 100 || eng.Processed() != 100 {
		t.Fatalf("fired %d, processed %d, want 100", fired, eng.Processed())
	}
}

func TestRunCtxPreCancelledFiresNothing(t *testing.T) {
	eng := NewEngine()
	eng.Schedule(0, PriStats, func() { t.Fatal("event fired under pre-cancelled context") })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.RunCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if eng.Processed() != 0 {
		t.Fatalf("%d events fired", eng.Processed())
	}
}

// TestRunCtxStopsWithinOneCheckpoint drives a self-perpetuating event
// stream — without cancellation it would never drain — and checks the
// loop stops within one checkpoint interval of the cancellation.
func TestRunCtxStopsWithinOneCheckpoint(t *testing.T) {
	const every = 32
	eng := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	var tick func()
	n := 0
	tick = func() {
		n++
		if n == 1000 {
			cancel()
		}
		eng.Schedule(eng.Now()+1, PriStats, tick)
	}
	eng.Schedule(0, PriStats, tick)
	if err := eng.RunCtx(ctx, every); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n < 1000 {
		t.Fatalf("stopped after %d events, before the cancellation at 1000", n)
	}
	if overrun := n - 1000; overrun > every {
		t.Fatalf("ran %d events past the cancellation, checkpoint interval is %d", overrun, every)
	}
}
