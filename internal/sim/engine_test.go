package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, PriSched, func() { got = append(got, 3) })
	e.Schedule(5, PriSubmit, func() { got = append(got, 1) })
	e.Schedule(10, PriEnd, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("clock %d, want 10", e.Now())
	}
	if e.Processed() != 3 {
		t.Fatalf("processed %d, want 3", e.Processed())
	}
}

func TestSameTimeSamePriorityFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(7, PriSched, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("not FIFO at %d: %v", i, got[i])
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(5, PriSched, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(Event{})
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after run", e.Pending())
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	evs := make([]Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(Time(i), PriSched, func() { got = append(got, i) })
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Run()
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8", len(got))
	}
}

func TestReschedule(t *testing.T) {
	e := NewEngine()
	var at Time
	ev := e.Schedule(5, PriSched, func() { at = e.Now() })
	ev = e.Reschedule(ev, 20)
	e.Run()
	if at != 20 {
		t.Fatalf("fired at %d, want 20", at)
	}
	_ = ev
}

func TestScheduleFromCallback(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.Schedule(1, PriSched, func() {
		got = append(got, e.Now())
		e.Schedule(4, PriSched, func() { got = append(got, e.Now()) })
	})
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, PriSched, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on scheduling in the past")
			}
		}()
		e.Schedule(5, PriSched, func() {})
	})
	e.Run()
}

func TestNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on nil callback")
		}
	}()
	e.Schedule(1, PriSched, nil)
}

func TestHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(5, PriSched, func() { fired++ })
	e.Schedule(10, PriSched, func() { fired++ })
	e.Schedule(11, PriSched, func() { fired++ })
	e.SetHorizon(10)
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d events inside horizon, want 2", fired)
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order, with random cancellations mixed in.
func TestPropertyTimeOrdered(t *testing.T) {
	f := func(times []uint16, cancelMask []bool) bool {
		e := NewEngine()
		var fired []Time
		var evs []Event
		for _, tm := range times {
			at := Time(tm)
			evs = append(evs, e.Schedule(at, PriSched, func() {
				fired = append(fired, at)
			}))
		}
		for i, ev := range evs {
			if i < len(cancelMask) && cancelMask[i] {
				e.Cancel(ev)
			}
		}
		e.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: exactly the non-cancelled events fire, once each.
func TestPropertyExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		const n = 500
		counts := make([]int, n)
		evs := make([]Event, n)
		for i := 0; i < n; i++ {
			i := i
			evs[i] = e.Schedule(Time(rng.Intn(100)), Priority(rng.Intn(3)), func() { counts[i]++ })
		}
		cancelled := map[int]bool{}
		for i := 0; i < n/4; i++ {
			k := rng.Intn(n)
			e.Cancel(evs[k])
			cancelled[k] = true
		}
		e.Run()
		for i, c := range counts {
			want := 1
			if cancelled[i] {
				want = 0
			}
			if c != want {
				t.Fatalf("trial %d: event %d fired %d times, want %d", trial, i, c, want)
			}
		}
	}
}

// TestRescheduleFiredPanics pins the other half of Reschedule's
// contract: a fired event's callback is gone and its storage recycled,
// so rescheduling it is a logic error, not a silent fresh schedule.
func TestRescheduleFiredPanics(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(5, PriSched, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on rescheduling a fired event")
		}
	}()
	e.Reschedule(ev, 10)
}

func TestRescheduleCancelledPanics(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(5, PriSched, func() {})
	e.Cancel(ev)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on rescheduling a cancelled event")
		}
	}()
	e.Reschedule(ev, 10)
}

// TestStaleHandleAfterRecycle pins the free-list safety property: a
// handle kept past its event's firing must stay dead even after the
// slot is recycled by a new Schedule — Cancel through it must not
// touch the new occupant.
func TestStaleHandleAfterRecycle(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(1, PriSched, func() {})
	if !e.Step() {
		t.Fatal("no event fired")
	}
	fired := false
	fresh := e.Schedule(2, PriSched, func() { fired = true })
	if fresh.slot != stale.slot {
		t.Fatalf("expected slot reuse (stale %d, fresh %d)", stale.slot, fresh.slot)
	}
	e.Cancel(stale) // must be a no-op: generations differ
	e.Run()
	if !fired {
		t.Fatal("stale Cancel killed a recycled slot's fresh event")
	}
}

// TestReset pins engine pooling behaviour: a Reset engine behaves like
// a fresh one while old handles stay dead.
func TestReset(t *testing.T) {
	e := NewEngine()
	old := e.Schedule(5, PriSched, func() {})
	e.Schedule(7, PriSched, func() {})
	e.Run()
	leftover := e.Schedule(9, PriSched, func() { t.Error("pre-Reset pending event fired") })
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Processed() != 0 {
		t.Fatalf("Reset left state: now=%d pending=%d processed=%d", e.Now(), e.Pending(), e.Processed())
	}
	fired := 0
	e.Schedule(3, PriSched, func() { fired++ })
	e.Cancel(old)      // dead handle from before Reset: no-op
	e.Cancel(leftover) // pending-at-Reset handle: also dead
	e.Run()
	if fired != 1 || e.Processed() != 1 {
		t.Fatalf("post-Reset run fired %d events (processed %d), want 1", fired, e.Processed())
	}
}
