// Package sim implements the discrete-event simulation engine that drives
// every experiment: a virtual clock and a priority queue of timed,
// cancellable events.
//
// It plays the role the simulation driver plays in the BSC SLURM
// simulator: job submissions, job completions and scheduler passes are all
// events; simulated time jumps from event to event.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"sdpolicy/internal/telemetry"
)

// Kernel telemetry. RunCtx accumulates locally and publishes once per
// run, so the event loop itself stays free of shared-memory traffic.
var (
	mEvents = telemetry.NewCounter("sim_events_processed_total",
		"Discrete events fired across all simulation runs.")
	mCheckpoints = telemetry.NewCounter("sim_checkpoints_total",
		"Context-cancellation checkpoints polled by RunCtx.")
	mRuns = telemetry.NewCounter("sim_runs_total",
		"Completed RunCtx invocations (including cancelled ones).")
	mEventRate = telemetry.NewGauge("sim_events_per_second",
		"Event throughput of the most recent RunCtx invocation.")
)

// Time is simulated time in seconds since the start of the experiment.
type Time = int64

// Priority orders events that share a timestamp. Lower runs first.
// The ordering mirrors the order slurmctld processes its agenda:
// completions free resources before new submissions are looked at, and the
// scheduler pass runs after the state changes that triggered it.
type Priority int

const (
	// PriEnd is for job completion events.
	PriEnd Priority = iota
	// PriSubmit is for job arrival events.
	PriSubmit
	// PriSched is for scheduler passes.
	PriSched
	// PriStats is for periodic bookkeeping (daily samples, probes).
	PriStats
)

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel or reschedule it.
type Event struct {
	at    Time
	pri   Priority
	seq   uint64
	index int // heap index, -1 once popped or cancelled
	fn    func()
}

// Time returns the simulated time the event fires at.
func (e *Event) Time() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation loop. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	ran    uint64
	maxT   Time // optional horizon, 0 = none
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.ran }

// Pending returns how many events are scheduled and not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// SetHorizon stops Run once the clock would pass t (events at exactly t
// still fire). Zero means no horizon.
func (e *Engine) SetHorizon(t Time) { e.maxT = t }

// Schedule registers fn to run at time at with the given same-time
// priority. Scheduling in the past panics: that is always a logic error in
// a discrete-event model.
func (e *Engine) Schedule(at Time, pri Priority, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", at, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := &Event{at: at, pri: pri, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.events, ev.index)
	ev.index = -1
	ev.fn = nil
}

// Reschedule moves a pending event to a new time, keeping its priority.
// If the event already fired it is scheduled afresh with the given
// callback retained.
func (e *Engine) Reschedule(ev *Event, at Time) *Event {
	if ev == nil {
		panic("sim: reschedule of nil event")
	}
	fn := ev.fn
	e.Cancel(ev)
	if fn == nil {
		panic("sim: reschedule of fired event without callback")
	}
	return e.Schedule(at, ev.pri, fn)
}

// Step fires the single earliest event. It reports whether an event fired.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.fn == nil { // defensively skip cancelled residue
			continue
		}
		if e.maxT != 0 && ev.at > e.maxT {
			return false
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.ran++
		fn()
		return true
	}
	return false
}

// Run fires events until none remain (or the horizon is reached).
func (e *Engine) Run() {
	for e.Step() {
	}
}

// DefaultCheckpoint is the event interval at which RunCtx polls the
// context when the caller passes 0. Events are coarse — a completion,
// a submission or an entire scheduler pass, tens of microseconds each
// — so 64 bounds cancellation latency to single-digit milliseconds
// while keeping the poll cost (one atomic load in ctx.Err) far below
// a thousandth of the work between polls.
const DefaultCheckpoint = 64

// RunCtx fires events like Run but checkpoints ctx every `every`
// events (0 means DefaultCheckpoint): once the context is cancelled
// the loop stops at the next checkpoint and returns the context's
// error, leaving the partially simulated state behind. A nil return
// means the event queue drained (or the horizon was reached) normally.
func (e *Engine) RunCtx(ctx context.Context, every uint64) error {
	if every == 0 {
		every = DefaultCheckpoint
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	start := time.Now()
	startRan := e.ran
	checkpoints := uint64(0)
	defer func() {
		fired := e.ran - startRan
		mEvents.Add(fired)
		mCheckpoints.Add(checkpoints)
		mRuns.Inc()
		if elapsed := time.Since(start).Seconds(); elapsed > 0 && fired > 0 {
			mEventRate.Set(float64(fired) / elapsed)
		}
	}()
	next := e.ran + every
	for e.Step() {
		if e.ran >= next {
			checkpoints++
			if err := ctx.Err(); err != nil {
				return err
			}
			next = e.ran + every
		}
	}
	return nil
}
