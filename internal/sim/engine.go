// Package sim implements the discrete-event simulation engine that drives
// every experiment: a virtual clock and a priority queue of timed,
// cancellable events.
//
// It plays the role the simulation driver plays in the BSC SLURM
// simulator: job submissions, job completions and scheduler passes are all
// events; simulated time jumps from event to event.
package sim

import (
	"context"
	"fmt"
	"time"

	"sdpolicy/internal/telemetry"
)

// Kernel telemetry. RunCtx accumulates locally and publishes once per
// run, so the event loop itself stays free of shared-memory traffic.
var (
	mEvents = telemetry.NewCounter("sim_events_processed_total",
		"Discrete events fired across all simulation runs.")
	mCheckpoints = telemetry.NewCounter("sim_checkpoints_total",
		"Context-cancellation checkpoints polled by RunCtx.")
	mRuns = telemetry.NewCounter("sim_runs_total",
		"Completed RunCtx invocations (including cancelled ones).")
	mEventRate = telemetry.NewGauge("sim_events_per_second",
		"Event throughput of the most recent RunCtx invocation.")
)

// Time is simulated time in seconds since the start of the experiment.
type Time = int64

// Priority orders events that share a timestamp. Lower runs first.
// The ordering mirrors the order slurmctld processes its agenda:
// completions free resources before new submissions are looked at, and the
// scheduler pass runs after the state changes that triggered it.
type Priority int

const (
	// PriEnd is for job completion events.
	PriEnd Priority = iota
	// PriSubmit is for job arrival events.
	PriSubmit
	// PriSched is for scheduler passes.
	PriSched
	// PriStats is for periodic bookkeeping (daily samples, probes).
	PriStats
)

// Event is a handle to a scheduled callback, returned by Schedule so
// callers can cancel or reschedule it. It is a small value (not a
// pointer): event storage lives in an engine-owned slab and is recycled
// through a free list once the event fires or is cancelled, so scheduling
// allocates nothing in steady state. The generation stamp makes stale
// handles detectable: a handle kept past its event's firing never aliases
// a recycled slot. The zero Event is a dead handle.
type Event struct {
	slot int32
	gen  uint32
}

// slot is the slab storage of one scheduled event. `heap` is the event's
// position in the heap, -1 once fired or cancelled. `gen` increments every
// time the slot is released, invalidating outstanding handles.
type slot struct {
	at   Time
	seq  uint64
	fn   func()
	pri  Priority
	heap int32
	gen  uint32
}

// entry is one monomorphic heap element. The ordering keys are stored
// inline so sift comparisons never chase into the slab; only the
// slot-position backlink is updated on moves.
type entry struct {
	at   Time
	seq  uint64
	pri  Priority
	slot int32
}

// before is the total event order: (at, pri, seq). seq is unique, so the
// order is strict and the heap's pop sequence is independent of its
// shape — the 4-ary layout cannot change observable behaviour.
func (a entry) before(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulation loop. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now   Time
	seq   uint64
	ran   uint64
	maxT  Time // optional horizon, 0 = none
	heap  []entry
	slots []slot
	free  []int32 // recycled slot indices, LIFO
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Reset rewinds the engine to its initial state while retaining the
// event slab, heap array and free list, so a pooled engine reruns
// without reallocating its queue storage. Any pending callbacks are
// dropped (and their closures released for collection).
func (e *Engine) Reset() {
	for i := range e.slots {
		e.slots[i].fn = nil
		e.slots[i].heap = -1
		e.slots[i].gen++ // invalidate handles that leaked across runs
	}
	e.free = e.free[:0]
	for i := len(e.slots) - 1; i >= 0; i-- {
		e.free = append(e.free, int32(i))
	}
	e.heap = e.heap[:0]
	e.now, e.seq, e.ran, e.maxT = 0, 0, 0, 0
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.ran }

// Pending returns how many events are scheduled and not yet fired.
func (e *Engine) Pending() int { return len(e.heap) }

// SetHorizon stops Run once the clock would pass t (events at exactly t
// still fire). Zero means no horizon.
func (e *Engine) SetHorizon(t Time) { e.maxT = t }

// Schedule registers fn to run at time at with the given same-time
// priority. Scheduling in the past panics: that is always a logic error in
// a discrete-event model.
func (e *Engine) Schedule(at Time, pri Priority, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", at, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slot{gen: 1})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.at, s.pri, s.seq, s.fn = at, pri, e.seq, fn
	e.seq++
	e.push(entry{at: s.at, pri: s.pri, seq: s.seq, slot: idx})
	return Event{slot: idx, gen: s.gen}
}

// release returns a slot to the free list, invalidating all outstanding
// handles to it.
func (e *Engine) release(idx int32) {
	s := &e.slots[idx]
	s.fn = nil
	s.heap = -1
	s.gen++
	e.free = append(e.free, idx)
}

// lookup resolves a handle to its live slot, or nil if the event already
// fired, was cancelled, or the handle is zero.
func (e *Engine) lookup(ev Event) *slot {
	if ev.gen == 0 || int(ev.slot) >= len(e.slots) {
		return nil
	}
	s := &e.slots[ev.slot]
	if s.gen != ev.gen || s.heap < 0 {
		return nil
	}
	return s
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event — or the zero Event — is a no-op: the
// generation stamp in the handle detects dead events even after their
// storage has been recycled.
func (e *Engine) Cancel(ev Event) {
	s := e.lookup(ev)
	if s == nil {
		return
	}
	e.remove(s.heap)
	e.release(ev.slot)
}

// Reschedule moves a pending event to a new time, keeping its priority
// and callback. Rescheduling an event that already fired or was
// cancelled panics: its callback is gone (the storage is recycled), so
// there is nothing to move — schedule a fresh event instead.
func (e *Engine) Reschedule(ev Event, at Time) Event {
	s := e.lookup(ev)
	if s == nil {
		panic("sim: reschedule of fired, cancelled or zero event")
	}
	fn, pri := s.fn, s.pri
	e.remove(s.heap)
	e.release(ev.slot)
	return e.Schedule(at, pri, fn)
}

// Step fires the single earliest event. It reports whether an event fired.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	top := e.heap[0]
	if e.maxT != 0 && top.at > e.maxT {
		return false
	}
	e.pop()
	e.now = top.at
	fn := e.slots[top.slot].fn
	e.release(top.slot)
	e.ran++
	fn()
	return true
}

// Run fires events until none remain (or the horizon is reached).
func (e *Engine) Run() {
	for e.Step() {
	}
}

// push inserts an entry into the 4-ary min-heap.
func (e *Engine) push(it entry) {
	e.heap = append(e.heap, it)
	e.siftUp(len(e.heap) - 1)
}

// pop removes the minimum entry (heap[0]).
func (e *Engine) pop() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown(0)
	}
}

// remove deletes the entry at heap position i.
func (e *Engine) remove(i int32) {
	n := len(e.heap) - 1
	if int(i) == n {
		e.heap = e.heap[:n]
		return
	}
	e.heap[i] = e.heap[n]
	e.heap = e.heap[:n]
	// The moved entry may need to go either way relative to position i.
	if !e.siftDown(int(i)) {
		e.siftUp(int(i))
	}
}

func (e *Engine) siftUp(i int) {
	it := e.heap[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !it.before(e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		e.slots[e.heap[i].slot].heap = int32(i)
		i = parent
	}
	e.heap[i] = it
	e.slots[it.slot].heap = int32(i)
}

// siftDown moves heap[i] down to its place; it reports whether the entry
// moved.
func (e *Engine) siftDown(i int) bool {
	it := e.heap[i]
	n := len(e.heap)
	start := i
	for {
		first := i<<2 + 1 // leftmost child
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.heap[c].before(e.heap[min]) {
				min = c
			}
		}
		if !e.heap[min].before(it) {
			break
		}
		e.heap[i] = e.heap[min]
		e.slots[e.heap[i].slot].heap = int32(i)
		i = min
	}
	e.heap[i] = it
	e.slots[it.slot].heap = int32(i)
	return i != start
}

// DefaultCheckpoint is the event interval at which RunCtx first polls
// the context when the caller passes 0. With adaptive cadence the
// interval then adjusts itself toward checkpointTarget wall-clock time
// between polls, so cancellation latency stays bounded in real time no
// matter how cheap or expensive individual events are.
const DefaultCheckpoint = 64

// Adaptive cadence bounds: the interval doubles while checkpoints
// arrive faster than checkpointTarget/2 and halves when they lag past
// 2*checkpointTarget, clamped to [DefaultCheckpoint, maxCheckpoint].
// The cadence only affects when ctx is polled — never simulation state —
// so adapting it cannot change simulation output.
const (
	checkpointTarget = time.Millisecond
	maxCheckpoint    = 8192
)

// RunCtx fires events like Run but checkpoints ctx periodically: once
// the context is cancelled the loop stops at the next checkpoint and
// returns the context's error, leaving the partially simulated state
// behind. A nil return means the event queue drained (or the horizon
// was reached) normally.
//
// every fixes the checkpoint interval in events; 0 selects an adaptive
// cadence that starts at DefaultCheckpoint and adjusts toward roughly
// one context poll per millisecond of wall-clock time.
func (e *Engine) RunCtx(ctx context.Context, every uint64) error {
	adaptive := every == 0
	if adaptive {
		every = DefaultCheckpoint
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	start := time.Now()
	startRan := e.ran
	checkpoints := uint64(0)
	defer func() {
		fired := e.ran - startRan
		mEvents.Add(fired)
		mCheckpoints.Add(checkpoints)
		mRuns.Inc()
		if elapsed := time.Since(start).Seconds(); elapsed > 0 && fired > 0 {
			mEventRate.Set(float64(fired) / elapsed)
		}
	}()
	last := start
	next := e.ran + every
	for e.Step() {
		if e.ran >= next {
			checkpoints++
			if err := ctx.Err(); err != nil {
				return err
			}
			if adaptive {
				nowT := time.Now()
				took := nowT.Sub(last)
				last = nowT
				if took < checkpointTarget/2 && every < maxCheckpoint {
					every *= 2
				} else if took > 2*checkpointTarget && every > DefaultCheckpoint {
					every /= 2
				}
			}
			next = e.ran + every
		}
	}
	return nil
}
