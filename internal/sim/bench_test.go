package sim

import "testing"

// BenchmarkEventHeap exercises the event queue alone — schedule, fire,
// cancel and reschedule churn over a standing population of pending
// events — so a regression in the kernel's per-event constant is
// attributable to this layer rather than to the scheduler built on top.
// Run with -benchmem: the steady-state target is zero allocations per
// event (slab + free list reuse).
func BenchmarkEventHeap(b *testing.B) {
	const standing = 4096
	b.Run("schedule-fire", func(b *testing.B) {
		e := NewEngine()
		var evs [standing]Event
		for i := range evs {
			evs[i] = e.Schedule(Time(i%97), PriSched, func() {})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !e.Step() {
				b.Fatal("queue drained")
			}
			e.Schedule(e.Now()+Time(i%193), PriSched, func() {})
		}
	})
	b.Run("cancel-reschedule", func(b *testing.B) {
		e := NewEngine()
		var evs [standing]Event
		for i := range evs {
			evs[i] = e.Schedule(Time(i%97)+1, PriSched, func() {})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := i % standing
			if i%3 == 0 {
				e.Cancel(evs[k])
				evs[k] = e.Schedule(Time(i%151)+1, PriSched, func() {})
			} else {
				evs[k] = e.Reschedule(evs[k], Time(i%151)+1)
			}
		}
	})
}
