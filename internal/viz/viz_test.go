package viz

import (
	"math"
	"strings"
	"testing"
)

func TestHBar(t *testing.T) {
	var b strings.Builder
	HBar(&b, "test chart", []Bar{
		{"static", 1.0},
		{"sd", 0.5},
	}, HBarConfig{Width: 20, Reference: 1.0})
	out := b.String()
	if !strings.Contains(out, "test chart") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "static") || !strings.Contains(out, "sd") {
		t.Fatal("missing labels")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d: %q", len(lines), out)
	}
	full := strings.Count(lines[1], "#")
	half := strings.Count(lines[2], "#")
	if full != 20 || half != 10 {
		t.Fatalf("bar widths: full=%d half=%d, want 20/10", full, half)
	}
}

func TestHBarReferenceTick(t *testing.T) {
	var b strings.Builder
	HBar(&b, "", []Bar{{"a", 0.25}}, HBarConfig{Width: 20, Reference: 1.0})
	if !strings.Contains(b.String(), "|") {
		t.Fatal("reference tick missing")
	}
}

func TestHBarPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var b strings.Builder
	HBar(&b, "", []Bar{{"a", -1}}, HBarConfig{})
}

func TestHeat(t *testing.T) {
	var b strings.Builder
	cells := [][]float64{
		{1, 2},
		{math.NaN(), math.NaN()}, // empty row: skipped
		{4, math.NaN()},
	}
	Heat(&b, "heat", []string{"r1", "r2", "r3"}, []string{"c1", "c2"}, cells)
	out := b.String()
	if !strings.Contains(out, "r1") || !strings.Contains(out, "r3") {
		t.Fatal("row labels missing")
	}
	if strings.Contains(out, "r2") {
		t.Fatal("empty row not skipped")
	}
	if !strings.Contains(out, "max 4.00") {
		t.Fatalf("max annotation missing: %q", out)
	}
}

func TestHeatPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var b strings.Builder
	Heat(&b, "", []string{"one"}, nil, [][]float64{{1}, {2}})
}

func TestPlot(t *testing.T) {
	var b strings.Builder
	Plot(&b, "trend", 5, []Series{
		{Name: "static", Points: []float64{1, 2, 3, 4}},
		{Name: "sd", Points: []float64{1, 1, 1, 1}},
	})
	out := b.String()
	if !strings.Contains(out, "trend") || !strings.Contains(out, "* static") || !strings.Contains(out, "o sd") {
		t.Fatalf("plot output incomplete: %q", out)
	}
	if strings.Count(out, "\n") < 6 {
		t.Fatal("plot too short")
	}
	// the max value (4) must sit on the top row
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("max point not on top row: %q", lines[1])
	}
}

func TestPlotEmpty(t *testing.T) {
	var b strings.Builder
	Plot(&b, "empty", 5, nil)
	if !strings.Contains(b.String(), "no data") {
		t.Fatal("empty plot not flagged")
	}
}
