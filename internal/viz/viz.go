// Package viz renders the paper's figures as ASCII charts: horizontal
// bar charts for the normalised-metric figures (1-3, 8, 9), shaded
// matrices for the category heatmaps (4-6) and multi-series line plots
// for the per-day slowdown trends (7). Everything writes plain text so
// the experiment harness works in any terminal and its output can be
// archived next to the paper's plots.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one labelled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// HBarConfig tunes HBar rendering.
type HBarConfig struct {
	Width     int     // bar area width in characters (default 40)
	Reference float64 // draw a reference tick at this value (0 = none)
	Format    string  // value format (default "%.3f")
}

// HBar renders a horizontal bar chart. Values must be non-negative;
// the bar area is scaled to the largest value (or the reference,
// whichever is larger).
func HBar(w io.Writer, title string, bars []Bar, cfg HBarConfig) {
	if cfg.Width <= 0 {
		cfg.Width = 40
	}
	if cfg.Format == "" {
		cfg.Format = "%.3f"
	}
	maxVal := cfg.Reference
	labelW := 0
	for _, b := range bars {
		if b.Value > maxVal {
			maxVal = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	refCol := -1
	if cfg.Reference > 0 {
		refCol = int(cfg.Reference / maxVal * float64(cfg.Width))
		if refCol >= cfg.Width {
			refCol = cfg.Width - 1
		}
	}
	for _, b := range bars {
		if b.Value < 0 {
			panic(fmt.Sprintf("viz: negative bar value %v", b.Value))
		}
		n := int(math.Round(b.Value / maxVal * float64(cfg.Width)))
		if n > cfg.Width {
			n = cfg.Width
		}
		cells := make([]byte, cfg.Width)
		for i := range cells {
			switch {
			case i < n:
				cells[i] = '#'
			case i == refCol:
				cells[i] = '|'
			default:
				cells[i] = ' '
			}
		}
		fmt.Fprintf(w, "  %-*s %s "+cfg.Format+"\n", labelW, b.Label, string(cells), b.Value)
	}
}

// shades maps a value in [0, 1] to a density character.
var shades = []byte(" .:-=+*#%@")

// Heat renders a matrix with row and column labels. NaN cells render as
// blanks. Values are normalised to the finite maximum.
func Heat(w io.Writer, title string, rowLabels, colLabels []string, cells [][]float64) {
	if len(cells) != len(rowLabels) {
		panic(fmt.Sprintf("viz: %d rows, %d labels", len(cells), len(rowLabels)))
	}
	maxVal := 0.0
	for _, row := range cells {
		for _, v := range row {
			if !math.IsNaN(v) && v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	labelW := 0
	for _, l := range rowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	fmt.Fprintf(w, "  %-*s ", labelW, "")
	for _, cl := range colLabels {
		fmt.Fprintf(w, "%7s", cl)
	}
	fmt.Fprintln(w)
	for i, row := range cells {
		empty := true
		for _, v := range row {
			if !math.IsNaN(v) {
				empty = false
				break
			}
		}
		if empty {
			continue
		}
		fmt.Fprintf(w, "  %-*s ", labelW, rowLabels[i])
		for _, v := range row {
			if math.IsNaN(v) {
				fmt.Fprintf(w, "%7s", "-")
				continue
			}
			shade := shades[int(math.Min(v/maxVal, 1)*float64(len(shades)-1))]
			fmt.Fprintf(w, "  %c%4.1f", shade, v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  shading: ' %s' low to high, max %.2f\n", string(shades[1:]), maxVal)
}

// Series is one named line of a time-series plot.
type Series struct {
	Name   string
	Points []float64
}

// Plot renders one or more series over a shared x axis as an ASCII line
// plot of the given height. Series are distinguished by marker
// characters in legend order. The x axis is the point index.
func Plot(w io.Writer, title string, height int, series []Series) {
	if height <= 1 {
		height = 10
	}
	maxLen, maxVal := 0, 0.0
	for _, s := range series {
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
		for _, v := range s.Points {
			if !math.IsNaN(v) && v > maxVal {
				maxVal = v
			}
		}
	}
	if maxLen == 0 {
		fmt.Fprintln(w, title+" (no data)")
		return
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	markers := []byte("*o+x@")
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", maxLen))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for x, v := range s.Points {
			if math.IsNaN(v) {
				continue
			}
			r := height - 1 - int(v/maxVal*float64(height-1))
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			grid[r][x] = m
		}
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	for r, row := range grid {
		yVal := maxVal * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(w, "  %10.1f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(w, "  %10s +%s\n", "", strings.Repeat("-", maxLen))
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "  x: index 0..%d, legend: %s\n", maxLen-1, strings.Join(legend, ", "))
}
