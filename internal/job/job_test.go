package job

import (
	"testing"
	"testing/quick"
)

func validJob() Job {
	return Job{
		ID: 1, Submit: 0, ReqTime: 3600, ActualTime: 1800,
		ReqNodes: 4, TasksPerNode: 2, Kind: Malleable,
	}
}

func TestValidateOK(t *testing.T) {
	j := validJob()
	if err := j.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Job)
	}{
		{"zero id", func(j *Job) { j.ID = 0 }},
		{"negative id", func(j *Job) { j.ID = -3 }},
		{"negative submit", func(j *Job) { j.Submit = -1 }},
		{"zero req time", func(j *Job) { j.ReqTime = 0 }},
		{"zero actual time", func(j *Job) { j.ActualTime = 0 }},
		{"actual exceeds request", func(j *Job) { j.ActualTime = j.ReqTime + 1 }},
		{"zero nodes", func(j *Job) { j.ReqNodes = 0 }},
		{"zero tasks per node", func(j *Job) { j.TasksPerNode = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := validJob()
			tc.mutate(&j)
			if err := j.Validate(); err == nil {
				t.Fatalf("expected validation error")
			}
		})
	}
}

func TestClamp(t *testing.T) {
	j := validJob()
	j.ActualTime = j.ReqTime + 500
	j.Clamp()
	if j.ActualTime != j.ReqTime {
		t.Fatalf("clamp: actual=%d want %d", j.ActualTime, j.ReqTime)
	}
	before := j.ActualTime
	j.Clamp() // idempotent
	if j.ActualTime != before {
		t.Fatalf("clamp not idempotent")
	}
}

func TestClampPropertyNeverExceedsRequest(t *testing.T) {
	f := func(req, actual int64) bool {
		if req <= 0 {
			req = -req + 1
		}
		if actual <= 0 {
			actual = -actual + 1
		}
		j := validJob()
		j.ReqTime, j.ActualTime = req, actual
		j.Clamp()
		return j.ActualTime <= j.ReqTime && j.ActualTime > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReqCPUs(t *testing.T) {
	j := validJob()
	if got := j.ReqCPUs(48); got != 4*48 {
		t.Fatalf("ReqCPUs = %d, want %d", got, 4*48)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Rigid: "rigid", Moldable: "moldable", Malleable: "malleable"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Errorf("unknown kind should still stringify")
	}
}

func TestAppClassString(t *testing.T) {
	for a, want := range map[AppClass]string{
		AppGeneric: "generic", AppPILS: "PILS", AppSTREAM: "STREAM",
		AppCoreNeuron: "CoreNeuron", AppNEST: "NEST", AppAlya: "Alya",
	} {
		if a.String() != want {
			t.Errorf("AppClass(%d).String() = %q, want %q", a, a.String(), want)
		}
	}
	if AppClass(99).String() == "" {
		t.Errorf("unknown app class should still stringify")
	}
}
