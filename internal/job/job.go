// Package job defines the batch job model shared by the workload
// generators, the schedulers and the metrics engine.
//
// A job is described the way a Standard Workload Format (SWF) record
// describes it — submit time, requested wall time, requested node count,
// actual runtime — extended with the malleability attributes SD-Policy
// needs: the job kind (rigid, moldable or malleable), the number of tasks
// per node (the shrink floor: one core per task), and an application class
// used by the real-run contention model.
package job

import "fmt"

// ID identifies a job within one workload. IDs are dense, starting at 1,
// in submission order.
type ID int64

// Kind classifies how flexible a job's allocation is, following
// Feitelson's taxonomy as used in the paper (Section 1 and 5).
type Kind uint8

const (
	// Rigid jobs run only on exactly the requested allocation.
	Rigid Kind = iota
	// Moldable jobs may start on a reduced allocation but cannot change
	// it afterwards: they can be SD-Policy guests, but never absorb freed
	// cores nor act as mates.
	Moldable
	// Malleable jobs can shrink and expand at runtime: they can be both
	// guests and mates.
	Malleable
)

// String returns the lower-case kind name.
func (k Kind) String() string {
	switch k {
	case Rigid:
		return "rigid"
	case Moldable:
		return "moldable"
	case Malleable:
		return "malleable"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// AppClass selects an application model for the real-run emulation
// (Table 2 of the paper). AppGeneric means "no application model": the job
// follows the ideal/worst-case analytic runtime models only.
type AppClass uint8

const (
	AppGeneric    AppClass = iota
	AppPILS                // compute bound, low memory traffic
	AppSTREAM              // memory-bandwidth bound, low CPU efficiency
	AppCoreNeuron          // compute+memory intensive simulation
	AppNEST                // compute+memory intensive simulation
	AppAlya                // multi-physics solver, compute intensive
)

// String returns the application name used in Table 2.
func (a AppClass) String() string {
	switch a {
	case AppGeneric:
		return "generic"
	case AppPILS:
		return "PILS"
	case AppSTREAM:
		return "STREAM"
	case AppCoreNeuron:
		return "CoreNeuron"
	case AppNEST:
		return "NEST"
	case AppAlya:
		return "Alya"
	}
	return fmt.Sprintf("AppClass(%d)", uint8(a))
}

// Job is one batch job of a workload. Times are in seconds. Submit is an
// offset from the workload start; ReqTime is the user's wall-time request
// (the only duration the scheduler may use for predictions); ActualTime is
// the real duration the job would have when running on its full static
// allocation (only the simulator's completion engine may read it).
type Job struct {
	ID           ID
	Submit       int64
	ReqTime      int64
	ActualTime   int64
	ReqNodes     int
	TasksPerNode int // shrink floor: one core per task and node
	Kind         Kind
	App          AppClass
	// Features are node attributes the job requires on every allocated
	// node (SLURM-style constraints: architecture, memory class,
	// interconnect, ...). Empty means any node.
	Features []string
	// Queue is the submission queue name; queues can carry their own
	// QoS MAX_SLOWDOWN cut-off (paper §4.1: "implement different queues
	// with different QoS policies using different MAXSD
	// configurations"). Empty means the default queue.
	Queue string
}

// Validate reports the first structural problem of the job record, or nil.
func (j *Job) Validate() error {
	switch {
	case j.ID <= 0:
		return fmt.Errorf("job %d: non-positive id", j.ID)
	case j.Submit < 0:
		return fmt.Errorf("job %d: negative submit time %d", j.ID, j.Submit)
	case j.ReqTime <= 0:
		return fmt.Errorf("job %d: non-positive requested time %d", j.ID, j.ReqTime)
	case j.ActualTime <= 0:
		return fmt.Errorf("job %d: non-positive actual time %d", j.ID, j.ActualTime)
	case j.ActualTime > j.ReqTime:
		return fmt.Errorf("job %d: actual time %d exceeds request %d", j.ID, j.ActualTime, j.ReqTime)
	case j.ReqNodes <= 0:
		return fmt.Errorf("job %d: non-positive node request %d", j.ID, j.ReqNodes)
	case j.TasksPerNode <= 0:
		return fmt.Errorf("job %d: non-positive tasks per node %d", j.ID, j.TasksPerNode)
	}
	return nil
}

// ReqCPUs returns the total core request on a machine with the given
// cores per node; jobs always request whole nodes (select/linear).
func (j *Job) ReqCPUs(coresPerNode int) int { return j.ReqNodes * coresPerNode }

// Clamp enforces ActualTime <= ReqTime, modelling the resource manager
// killing jobs that exceed their wall-time limit.
func (j *Job) Clamp() {
	if j.ActualTime > j.ReqTime {
		j.ActualTime = j.ReqTime
	}
}
