// Package journal is the durable half of the campaign control plane: a
// write-ahead, append-only journal that makes campaigns first-class
// resources — created once, addressable forever, resumable after a
// client disconnect, a server restart, or a coordinator failover.
//
// Each campaign is one NDJSON file of Records in a journal directory:
// record 0 is the campaign's creation payload (its point list and
// stream options), every later record is one stream frame (result,
// report, or the terminal done/error/cancelled event) stored as the
// exact bytes that were put on the wire. Replaying a journal therefore
// reproduces the stream byte-for-byte, and the set of journaled result
// records is the campaign's checkpoint set: a resumed run dispatches
// only the positions missing from it.
//
// Durability model: records are appended with a single write(2) each,
// so a crash — even kill -9 — can at worst tear the final line. Read
// discards a torn or otherwise invalid tail instead of failing, and
// Reopen truncates it away before appending, so the journal is always
// a valid prefix of the campaign's history. Appends are not fsynced:
// the failure domain is the process, not the machine, and a torn tail
// merely re-runs one point.
//
// The directory also holds the coordinator's failover state: the
// persisted peer table (SavePeers/LoadPeers) and the TTL'd coordinator
// lease (AcquireLease), which a standby watches and — once stale —
// breaks, adopting the journal and the peer table.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Record kinds. KindCreate is always record 0; the others mirror the
// stream frame events they journal verbatim.
const (
	KindCreate    = "create"
	KindResult    = "result"
	KindReport    = "report"
	KindDone      = "done"
	KindError     = "error"
	KindCancelled = "cancelled"
)

// TerminalKind reports whether a record kind ends its campaign. A
// journal without a terminal record is an in-flight campaign: whoever
// owns the journal next (the restarted server, or a standby that
// adopted it) must resume it.
func TerminalKind(kind string) bool {
	switch kind {
	case KindDone, KindError, KindCancelled:
		return true
	}
	return false
}

// Record is one journal line. Seq is the record's position (the create
// record is 0, stream frames count from 1 — matching the seq embedded
// in the frame bytes themselves); Data is the exact frame payload.
type Record struct {
	Seq  uint64          `json:"seq"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data,omitempty"`
}

// ErrExists reports a Create for a campaign ID that already has a
// journal — the caller should treat the campaign as existing (HTTP
// 409) rather than clobber history.
var ErrExists = errors.New("campaign journal already exists")

const journalExt = ".journal"

// Journal is a directory of campaign journals plus the coordinator's
// failover state. All methods are safe for concurrent use; appends to
// one campaign are serialised by its Writer.
type Journal struct {
	dir string
}

// Open ensures dir exists and returns the journal over it.
func Open(dir string) (*Journal, error) {
	if dir == "" {
		return nil, errors.New("journal: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// ValidateID rejects campaign IDs that cannot safely name a journal
// file: 1..64 chars drawn from [A-Za-z0-9._-], the same alphabet the
// serving layer accepts for X-Campaign-ID.
func ValidateID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("journal: campaign ID %q must be 1..64 characters", id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("journal: campaign ID %q contains %q (want [A-Za-z0-9._-])", id, c)
		}
	}
	return nil
}

func (j *Journal) path(id string) string { return filepath.Join(j.dir, id+journalExt) }

// List returns the campaign IDs with a journal file, sorted.
func (j *Journal) List() ([]string, error) {
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var ids []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), journalExt) {
			continue
		}
		ids = append(ids, strings.TrimSuffix(e.Name(), journalExt))
	}
	sort.Strings(ids)
	return ids, nil
}

// Create starts a new campaign journal, writing its create record
// (seq 0) with the given payload. It fails with ErrExists if the
// campaign already has a journal — creation is the duplicate check.
func (j *Journal) Create(id string, create json.RawMessage) (*Writer, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(j.path(id), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("journal: campaign %s: %w", id, ErrExists)
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{f: f, id: id}
	if err := w.write(Record{Seq: 0, Kind: KindCreate, Data: create}); err != nil {
		f.Close()
		os.Remove(j.path(id))
		return nil, err
	}
	return w, nil
}

// Read parses a campaign journal, discarding a torn or invalid final
// line (the signature of a crash mid-append) rather than failing:
// kill -9 can at worst cost the last record. Corruption anywhere but
// the tail is an error. The create record is always records[0].
func (j *Journal) Read(id string) ([]Record, error) {
	recs, _, err := j.readValid(id)
	return recs, err
}

// readValid additionally returns the byte length of the valid record
// prefix, which Reopen truncates the file to before appending.
func (j *Journal) readValid(id string) ([]Record, int64, error) {
	if err := ValidateID(id); err != nil {
		return nil, 0, err
	}
	data, err := os.ReadFile(j.path(id))
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	var recs []Record
	var valid int64
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No newline: the final append was torn mid-line.
			break
		}
		line := data[off : off+nl]
		last := off+nl+1 >= len(data)
		rec, perr := parseRecord(line, uint64(len(recs)))
		if perr != nil {
			if last {
				// An invalid final line is a torn append too (e.g. the
				// newline of a partially written record landed but its
				// JSON did not): discard it, keep the valid prefix.
				break
			}
			return nil, 0, fmt.Errorf("journal: %s record %d: %w", id, len(recs), perr)
		}
		recs = append(recs, rec)
		off += nl + 1
		valid = int64(off)
	}
	if len(recs) == 0 {
		return nil, 0, fmt.Errorf("journal: %s has no valid create record", id)
	}
	return recs, valid, nil
}

// parseRecord decodes and validates one journal line at position want.
func parseRecord(line []byte, want uint64) (Record, error) {
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return rec, err
	}
	if rec.Kind == "" {
		return rec, errors.New("missing kind")
	}
	if rec.Seq != want {
		return rec, fmt.Errorf("seq %d, want %d", rec.Seq, want)
	}
	if want == 0 && rec.Kind != KindCreate {
		return rec, fmt.Errorf("first record is %q, want %q", rec.Kind, KindCreate)
	}
	if want > 0 && rec.Kind == KindCreate {
		return rec, fmt.Errorf("record %d is a second create", want)
	}
	return rec, nil
}

// Reopen resumes appending to an existing campaign journal: the torn
// tail (if any) is truncated away, and the returned Writer continues
// the sequence from the last valid record. The parsed records are
// returned so the caller can rebuild the campaign's state — replayable
// frames plus the completed-position checkpoint set — in one pass.
func (j *Journal) Reopen(id string) (*Writer, []Record, error) {
	recs, valid, err := j.readValid(id)
	if err != nil {
		return nil, nil, err
	}
	path := j.path(id)
	if err := os.Truncate(path, valid); err != nil {
		return nil, nil, fmt.Errorf("journal: truncating torn tail of %s: %w", id, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &Writer{f: f, id: id, seq: recs[len(recs)-1].Seq}, recs, nil
}

// Writer appends records to one campaign journal. Safe for concurrent
// use, though campaigns have a single appender in practice.
type Writer struct {
	mu  sync.Mutex
	f   *os.File
	id  string
	seq uint64
}

// Seq returns the last written record's sequence number.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Append journals one stream frame. The caller assigns seq (it is
// embedded in the frame bytes, which must replay exactly); Append
// enforces that the sequence stays contiguous.
func (w *Writer) Append(seq uint64, kind string, data json.RawMessage) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq != w.seq+1 {
		return fmt.Errorf("journal: %s: appending seq %d after %d", w.id, seq, w.seq)
	}
	return w.writeLocked(Record{Seq: seq, Kind: kind, Data: data})
}

func (w *Writer) write(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeLocked(rec)
}

func (w *Writer) writeLocked(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %s: %w", w.id, err)
	}
	// One write call per record: a crash tears at most the final line,
	// which Read/Reopen discard.
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal: %s: %w", w.id, err)
	}
	w.seq = rec.Seq
	return nil
}

// Close releases the journal file handle.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// peersFileName holds the persisted peer table next to the journals.
const peersFileName = "peers.json"

// peersFile is the persisted peer-table encoding.
type peersFile struct {
	Workers []string `json:"workers"`
}

// SavePeers atomically persists the registered-worker URLs, so a
// standby that adopts the journal directory also adopts the fleet.
func (j *Journal) SavePeers(urls []string) error {
	data, err := json.MarshalIndent(peersFile{Workers: urls}, "", "  ")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(j.dir, peersFileName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// LoadPeers returns the persisted peer table; a journal directory that
// never saw a registration yields nil, nil.
func (j *Journal) LoadPeers() ([]string, error) {
	data, err := os.ReadFile(filepath.Join(j.dir, peersFileName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var pf peersFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, fmt.Errorf("journal: %s: %w", peersFileName, err)
	}
	return pf.Workers, nil
}
