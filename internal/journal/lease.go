package journal

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The coordinator lease: the same stale-breaking lock-file discipline
// the cache spill uses (persist.go's lockCacheFile), promoted from
// guarding one write cycle to electing the active coordinator. Exactly
// one process holds the lease file; while held, its mtime is refreshed
// at a third of the TTL, so only a lease whose owner actually died
// goes a full TTL without a touch. A standby blocks in AwaitLease,
// polling the file's age, and breaks a stale lease by renaming it to a
// name it owns — rename is atomic, so exactly one contender wins the
// steal and adopts the journal directory.

// leaseFileName is the coordinator lease file inside the journal dir.
const leaseFileName = "coordinator.lease"

// Lease is a held coordinator lease. Release it on shutdown so a
// standby can take over immediately instead of waiting out the TTL.
type Lease struct {
	path  string
	token string
	ttl   time.Duration
	stop  chan struct{}
	once  sync.Once
}

// AcquireLease blocks until this process holds the coordinator lease
// for the journal directory or ctx ends. ttl <= 0 means 15s. A lease
// untouched for a full TTL is considered abandoned and broken.
func (j *Journal) AcquireLease(ctx context.Context, ttl time.Duration) (*Lease, error) {
	return j.acquireLease(ctx, ttl, false)
}

// AwaitLease is the standby variant of AcquireLease: it refuses to
// create a lease from nothing and instead waits for an active
// coordinator's lease to appear, taking over only once that lease goes
// stale (the active died) or is released (graceful shutdown). This
// keeps a standby that boots faster than its active from winning the
// initial election — without it, role assignment on a fresh journal
// directory would be a startup race.
func (j *Journal) AwaitLease(ctx context.Context, ttl time.Duration) (*Lease, error) {
	return j.acquireLease(ctx, ttl, true)
}

func (j *Journal) acquireLease(ctx context.Context, ttl time.Duration, standby bool) (*Lease, error) {
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	path := filepath.Join(j.dir, leaseFileName)
	token := fmt.Sprintf("%d-%d", os.Getpid(), time.Now().UnixNano())
	poll := ttl / 8
	if poll < 20*time.Millisecond {
		poll = 20 * time.Millisecond
	}
	if poll > time.Second {
		poll = time.Second
	}
	// A standby may only create the lease file after observing an
	// active's lease at least once; until then it just watches.
	seen := !standby
	for {
		if seen {
			f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
			if err == nil {
				_, werr := f.WriteString(token)
				cerr := f.Close()
				if werr != nil || cerr != nil {
					os.Remove(path)
					if werr == nil {
						werr = cerr
					}
					return nil, fmt.Errorf("journal: writing coordinator lease: %w", werr)
				}
				l := &Lease{path: path, token: token, ttl: ttl, stop: make(chan struct{})}
				go l.refresh()
				return l, nil
			}
			if !errors.Is(err, fs.ErrExist) {
				return nil, fmt.Errorf("journal: acquiring coordinator lease: %w", err)
			}
		}
		if fi, serr := os.Stat(path); serr == nil {
			seen = true
			if time.Since(fi.ModTime()) > ttl {
				// Break the abandoned lease by renaming it to a name we own:
				// rename is atomic, so exactly one contender wins and the
				// losers retry against whatever lease exists next. A plain
				// Remove could delete a fresh lease created by a faster
				// contender between the Stat and the Remove.
				stolen := fmt.Sprintf("%s.stale-%d-%d", path, os.Getpid(), time.Now().UnixNano())
				if os.Rename(path, stolen) == nil {
					os.Remove(stolen)
				}
				continue
			}
		} else if seen && errors.Is(serr, fs.ErrNotExist) {
			// The lease we were watching was released; contend for it now.
			continue
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// refresh keeps the held lease fresh: an mtime touch every ttl/3, so
// two touches can be lost (scheduling stalls, slow disk) before a
// standby sees a full TTL of staleness and breaks the lease.
func (l *Lease) refresh() {
	ticker := time.NewTicker(l.ttl / 3)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			now := time.Now()
			os.Chtimes(l.path, now, now)
		case <-l.stop:
			return
		}
	}
}

// Release drops the lease. The file is removed only while it still
// carries this holder's token: a holder whose lease was stolen (it
// stalled past the TTL) must not delete the thief's fresh lease.
// Safe to call more than once.
func (l *Lease) Release() {
	l.once.Do(func() {
		close(l.stop)
		if data, err := os.ReadFile(l.path); err == nil && string(data) == l.token {
			os.Remove(l.path)
		}
	})
}
