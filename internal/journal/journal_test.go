package journal

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustCreate(t *testing.T, j *Journal, id string) *Writer {
	t.Helper()
	w, err := j.Create(id, json.RawMessage(`{"points":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCreateAppendReadRoundTrip(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := mustCreate(t, j, "c1")
	frames := []struct {
		kind string
		data string
	}{
		{KindResult, `{"seq":1,"index":0}`},
		{KindReport, `{"seq":2,"report_for":0}`},
		{KindResult, `{"seq":3,"index":2}`},
		{KindDone, `{"seq":4,"done":true}`},
	}
	for i, f := range frames {
		if err := w.Append(uint64(i+1), f.kind, json.RawMessage(f.data)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Seq() != 4 {
		t.Fatalf("writer seq %d, want 4", w.Seq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := j.Read("c1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("%d records, want 5", len(recs))
	}
	if recs[0].Kind != KindCreate || recs[0].Seq != 0 {
		t.Fatalf("record 0 = %+v, want create seq 0", recs[0])
	}
	for i, f := range frames {
		r := recs[i+1]
		if r.Kind != f.kind || r.Seq != uint64(i+1) || string(r.Data) != f.data {
			t.Fatalf("record %d = %+v, want kind %s data %s", i+1, r, f.kind, f.data)
		}
	}
	if !TerminalKind(recs[4].Kind) {
		t.Fatal("done record not terminal")
	}
	ids, err := j.List()
	if err != nil || len(ids) != 1 || ids[0] != "c1" {
		t.Fatalf("List = %v, %v", ids, err)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	j, _ := Open(t.TempDir())
	w := mustCreate(t, j, "dup")
	defer w.Close()
	if _, err := j.Create("dup", nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v, want ErrExists", err)
	}
}

func TestBadIDsRejected(t *testing.T) {
	j, _ := Open(t.TempDir())
	for _, id := range []string{"", "a/b", "a b", strings.Repeat("x", 65), "évil"} {
		if _, err := j.Create(id, nil); err == nil {
			t.Fatalf("ID %q accepted", id)
		}
	}
}

// TestTornTailDiscarded is the crash-recovery contract: a final line
// torn by kill -9 (no newline, or a newline with malformed JSON) is
// discarded, not fatal, and Reopen truncates it so later appends
// continue a clean journal.
func TestTornTailDiscarded(t *testing.T) {
	for _, tail := range []string{
		`{"seq":3,"kind":"res`,                // torn mid-line, no newline
		`{"seq":3,"kind":"result","da` + "\n", // newline landed, JSON did not
		"\n",                                  // bare newline
		`{"seq":7,"kind":"result"}` + "\n",    // complete JSON, impossible seq
	} {
		j, _ := Open(t.TempDir())
		w := mustCreate(t, j, "c")
		for i := 1; i <= 2; i++ {
			if err := w.Append(uint64(i), KindResult, json.RawMessage(`{"i":1}`)); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		path := filepath.Join(j.Dir(), "c.journal")
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString(tail)
		f.Close()

		recs, err := j.Read("c")
		if err != nil {
			t.Fatalf("tail %q: %v", tail, err)
		}
		if len(recs) != 3 {
			t.Fatalf("tail %q: %d records, want 3", tail, len(recs))
		}
		w2, recs2, err := j.Reopen("c")
		if err != nil {
			t.Fatalf("tail %q: reopen: %v", tail, err)
		}
		if len(recs2) != 3 || w2.Seq() != 2 {
			t.Fatalf("tail %q: reopen %d records seq %d", tail, len(recs2), w2.Seq())
		}
		if err := w2.Append(3, KindDone, json.RawMessage(`{"done":true}`)); err != nil {
			t.Fatal(err)
		}
		w2.Close()
		recs, err = j.Read("c")
		if err != nil || len(recs) != 4 || recs[3].Kind != KindDone {
			t.Fatalf("tail %q: after reopen-append: %d records, %v", tail, len(recs), err)
		}
	}
}

func TestMidFileCorruptionFatal(t *testing.T) {
	j, _ := Open(t.TempDir())
	w := mustCreate(t, j, "c")
	w.Append(1, KindResult, json.RawMessage(`{"i":1}`))
	w.Close()
	path := filepath.Join(j.Dir(), "c.journal")
	data, _ := os.ReadFile(path)
	// Corrupt the create record: the damage is not at the tail, so the
	// journal is genuinely broken and must not be silently truncated.
	data[0] = 'X'
	os.WriteFile(path, data, 0o644)
	if _, err := j.Read("c"); err == nil {
		t.Fatal("mid-file corruption not detected")
	}
}

func TestAppendSeqMustBeContiguous(t *testing.T) {
	j, _ := Open(t.TempDir())
	w := mustCreate(t, j, "c")
	defer w.Close()
	if err := w.Append(2, KindResult, nil); err == nil {
		t.Fatal("gap in seq accepted")
	}
	if err := w.Append(1, KindResult, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, KindResult, nil); err == nil {
		t.Fatal("duplicate seq accepted")
	}
}

func TestPeersRoundTrip(t *testing.T) {
	j, _ := Open(t.TempDir())
	if urls, err := j.LoadPeers(); err != nil || urls != nil {
		t.Fatalf("fresh dir: %v, %v", urls, err)
	}
	want := []string{"http://w1:8080", "http://w2:8080"}
	if err := j.SavePeers(want); err != nil {
		t.Fatal(err)
	}
	got, err := j.LoadPeers()
	if err != nil || len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("LoadPeers = %v, %v", got, err)
	}
}

func TestLeaseExclusionReleaseAndSteal(t *testing.T) {
	j, _ := Open(t.TempDir())
	l1, err := j.AcquireLease(context.Background(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// A contender cannot acquire a fresh lease.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if _, err := j.AcquireLease(ctx, time.Minute); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second acquire: %v, want deadline exceeded", err)
	}
	// Release hands it over immediately.
	l1.Release()
	l2, err := j.AcquireLease(context.Background(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	l2.Release()
	l2.Release() // idempotent

	// A stale lease (owner died; mtime a full TTL old) is broken.
	path := filepath.Join(j.Dir(), leaseFileName)
	if err := os.WriteFile(path, []byte("dead-owner"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	os.Chtimes(path, old, old)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	l3, err := j.AcquireLease(ctx2, time.Second)
	if err != nil {
		t.Fatalf("stale lease not broken: %v", err)
	}
	l3.Release()
}

// TestAwaitLeaseDefersToActive: a standby must never win the initial
// election on a fresh journal directory — AwaitLease creates nothing
// until it has observed an active's lease, then takes over on release
// (and, via the shared stale-breaking path, on expiry).
func TestAwaitLeaseDefersToActive(t *testing.T) {
	j, _ := Open(t.TempDir())

	// Empty directory: the standby waits instead of electing itself.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if _, err := j.AwaitLease(ctx, time.Minute); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("standby acquired a lease on an empty dir: %v", err)
	}

	// Once an active holds the lease and releases it, the standby —
	// having observed the lease — takes over promptly.
	active, err := j.AcquireLease(context.Background(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Lease, 1)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	go func() {
		l, err := j.AwaitLease(ctx2, time.Minute)
		if err != nil {
			t.Errorf("standby takeover: %v", err)
		}
		done <- l
	}()
	time.Sleep(100 * time.Millisecond) // let the standby observe the active's lease
	active.Release()
	select {
	case l := <-done:
		if l != nil {
			l.Release()
		}
	case <-ctx2.Done():
		t.Fatal("standby never adopted a released lease")
	}
}

// TestLeaseRefreshPreventsSteal holds a short-TTL lease across several
// TTLs: the refresher's mtime touches must keep a contender from ever
// seeing it stale.
func TestLeaseRefreshPreventsSteal(t *testing.T) {
	j, _ := Open(t.TempDir())
	l, err := j.AcquireLease(context.Background(), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 1200*time.Millisecond)
	defer cancel()
	if _, err := j.AcquireLease(ctx, 300*time.Millisecond); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("contender stole a refreshed lease: %v", err)
	}
}
