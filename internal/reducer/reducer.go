// Package reducer turns experiments into declarative descriptors: a
// named, parameterised point-set generator plus an incremental reducer
// that folds per-point results into rows as they stream in and a
// terminal summary once the set is complete. One registry of
// descriptors drives both the local experiment helpers (fold a slice
// of results in order) and a streaming server (fold journaled result
// frames and ship rows + summary instead of raw points), so the two
// can never disagree about what an experiment computes.
//
// The package is generic over the point type P and the result type R —
// it deliberately knows nothing about simulations — which is what lets
// the root package register descriptors without an import cycle.
package reducer

import (
	"encoding/json"
	"fmt"
	"math"
)

// Parameter type names used by ParamSpec.Type. They double as the
// JSON-schema-ish vocabulary of the experiment listing endpoint.
const (
	TypeString  = "string"
	TypeFloat   = "float"
	TypeUint    = "uint"
	TypeBool    = "bool"
	TypeStrings = "[]string"
	TypeFloats  = "[]float"
	TypeInts    = "[]int"
)

// ParamSpec describes one experiment parameter: its wire name, type
// (one of the Type* constants) and the default applied when a caller
// omits it. Defaults must already hold the canonical Go value for the
// type (float64, uint64, []string, []float64, []int, string, bool).
type ParamSpec struct {
	Name        string `json:"name"`
	Type        string `json:"type"`
	Default     any    `json:"default,omitempty"`
	Description string `json:"description,omitempty"`
}

// Params is a resolved parameter set: every declared name present,
// every value in its canonical Go type. Build one with Resolve or
// ResolveJSON; the typed getters assume that invariant and return the
// zero value on a missing or mistyped key rather than panicking.
type Params map[string]any

func (p Params) String(name string) string { v, _ := p[name].(string); return v }
func (p Params) Float(name string) float64 { v, _ := p[name].(float64); return v }
func (p Params) Uint(name string) uint64   { v, _ := p[name].(uint64); return v }
func (p Params) Bool(name string) bool     { v, _ := p[name].(bool); return v }

func (p Params) Strings(name string) []string { v, _ := p[name].([]string); return v }
func (p Params) Floats(name string) []float64 { v, _ := p[name].([]float64); return v }
func (p Params) Ints(name string) []int       { v, _ := p[name].([]int); return v }

// Resolve applies the specs' defaults to the given values and
// canonicalises the result: unknown names and values that cannot be
// coerced to the declared type are errors, so a typo fails loudly
// instead of silently running the default experiment.
func Resolve(specs []ParamSpec, given Params) (Params, error) {
	out := make(Params, len(specs))
	for _, ps := range specs {
		out[ps.Name] = ps.Default
	}
	for name, v := range given {
		ps := findSpec(specs, name)
		if ps == nil {
			return nil, fmt.Errorf("unknown parameter %q", name)
		}
		cv, err := coerce(ps.Type, v)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %w", name, err)
		}
		out[name] = cv
	}
	return out, nil
}

// ResolveJSON is Resolve for wire input: each provided value is decoded
// from its raw JSON encoding according to the declared type.
func ResolveJSON(specs []ParamSpec, raw map[string]json.RawMessage) (Params, error) {
	given := make(Params, len(raw))
	for name, data := range raw {
		ps := findSpec(specs, name)
		if ps == nil {
			return nil, fmt.Errorf("unknown parameter %q", name)
		}
		v, err := decodeParam(ps.Type, data)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %w", name, err)
		}
		given[name] = v
	}
	return Resolve(specs, given)
}

func findSpec(specs []ParamSpec, name string) *ParamSpec {
	for i := range specs {
		if specs[i].Name == name {
			return &specs[i]
		}
	}
	return nil
}

// coerce normalises an in-process value to the canonical Go type of a
// parameter type name. It accepts the obvious widening conversions
// (int where a float or uint is declared) so local callers can pass
// literals without casts.
func coerce(typ string, v any) (any, error) {
	switch typ {
	case TypeString:
		if s, ok := v.(string); ok {
			return s, nil
		}
	case TypeBool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	case TypeFloat:
		switch n := v.(type) {
		case float64:
			return n, nil
		case int:
			return float64(n), nil
		}
	case TypeUint:
		switch n := v.(type) {
		case uint64:
			return n, nil
		case int:
			if n >= 0 {
				return uint64(n), nil
			}
		case float64:
			if n >= 0 && n == math.Trunc(n) {
				return uint64(n), nil
			}
		}
	case TypeStrings:
		if s, ok := v.([]string); ok {
			return s, nil
		}
	case TypeFloats:
		if s, ok := v.([]float64); ok {
			return s, nil
		}
	case TypeInts:
		if s, ok := v.([]int); ok {
			return s, nil
		}
	default:
		return nil, fmt.Errorf("descriptor declares unknown type %q", typ)
	}
	return nil, fmt.Errorf("want %s, got %T", typ, v)
}

func decodeParam(typ string, data json.RawMessage) (any, error) {
	var err error
	switch typ {
	case TypeString:
		var v string
		if err = json.Unmarshal(data, &v); err == nil {
			return v, nil
		}
	case TypeBool:
		var v bool
		if err = json.Unmarshal(data, &v); err == nil {
			return v, nil
		}
	case TypeFloat:
		var v float64
		if err = json.Unmarshal(data, &v); err == nil {
			return v, nil
		}
	case TypeUint:
		var v uint64
		if err = json.Unmarshal(data, &v); err == nil {
			return v, nil
		}
	case TypeStrings:
		var v []string
		if err = json.Unmarshal(data, &v); err == nil {
			return v, nil
		}
	case TypeFloats:
		var v []float64
		if err = json.Unmarshal(data, &v); err == nil {
			return v, nil
		}
	case TypeInts:
		var v []int
		if err = json.Unmarshal(data, &v); err == nil {
			return v, nil
		}
	default:
		return nil, fmt.Errorf("descriptor declares unknown type %q", typ)
	}
	return nil, fmt.Errorf("want %s: %w", typ, err)
}

// Instance is one parameterised run of an experiment: a fixed point
// set plus the fold state accumulating its results. Instances are not
// safe for concurrent use; every consumer (a local helper, one stream
// attach) builds its own from the descriptor.
type Instance[P, R any] interface {
	// Points returns the campaign point set, fixed for the instance's
	// lifetime. It may be empty for generation-only experiments whose
	// Summary needs no simulation.
	Points() []P
	// Fold consumes the result for Points()[index] and returns the rows
	// that became computable with it. Indices arrive in any order, at
	// most once each; given the same delivery order the emitted rows
	// must be identical, which is what makes a replayed stream
	// byte-stable.
	Fold(index int, result R) ([]any, error)
	// Summary returns the experiment's complete typed result. It must
	// only be called after every index has been folded.
	Summary() (any, error)
}

// ReportFolder is implemented by instances of descriptors with
// NeedsReports set: FoldReport attaches the per-point report encoding
// that streams after the point's result, restoring whatever the result
// wire form strips (the inputs of heatmap and daily analyses).
type ReportFolder interface {
	FoldReport(index int, report []byte) error
}

// Descriptor declares one experiment: its registry name, the
// parameters it accepts, and the constructor turning resolved
// parameters into a fold instance.
type Descriptor[P, R any] struct {
	Name        string
	Title       string
	Description string
	Params      []ParamSpec
	// NeedsReports marks experiments whose Summary consumes per-point
	// reports beyond the result wire form; a server backing the
	// experiment with a campaign must negotiate report frames.
	NeedsReports bool
	// New builds a fold instance from a fully resolved parameter set
	// (see Resolve); it must not assume defaults were applied by anyone
	// else.
	New func(Params) (Instance[P, R], error)
}

// Instance resolves the given parameters against the descriptor's
// specs and builds a fold instance.
func (d *Descriptor[P, R]) Instance(given Params) (Instance[P, R], error) {
	p, err := Resolve(d.Params, given)
	if err != nil {
		return nil, err
	}
	return d.New(p)
}

// Registry is an ordered collection of descriptors. Registration
// happens at package init time; lookups after that need no locking.
type Registry[P, R any] struct {
	byName map[string]*Descriptor[P, R]
	order  []*Descriptor[P, R]
}

func NewRegistry[P, R any]() *Registry[P, R] {
	return &Registry[P, R]{byName: make(map[string]*Descriptor[P, R])}
}

// Register adds d, panicking on an empty or duplicate name — both are
// programming errors in the registering package, not runtime input.
func (r *Registry[P, R]) Register(d *Descriptor[P, R]) {
	if d.Name == "" {
		panic("reducer: registering a descriptor without a name")
	}
	if _, dup := r.byName[d.Name]; dup {
		panic(fmt.Sprintf("reducer: duplicate descriptor %q", d.Name))
	}
	r.byName[d.Name] = d
	r.order = append(r.order, d)
}

// Get returns the descriptor named name, or nil.
func (r *Registry[P, R]) Get(name string) *Descriptor[P, R] { return r.byName[name] }

// List returns the descriptors in registration order.
func (r *Registry[P, R]) List() []*Descriptor[P, R] {
	out := make([]*Descriptor[P, R], len(r.order))
	copy(out, r.order)
	return out
}
