package reducer

import (
	"encoding/json"
	"strings"
	"testing"
)

var testSpecs = []ParamSpec{
	{Name: "workload", Type: TypeString, Default: "wl1"},
	{Name: "scale", Type: TypeFloat, Default: 0.1},
	{Name: "seed", Type: TypeUint, Default: uint64(1)},
	{Name: "verbose", Type: TypeBool, Default: false},
	{Name: "workloads", Type: TypeStrings, Default: []string{"wl1", "wl2"}},
	{Name: "factors", Type: TypeFloats, Default: []float64{0.25, 0.5}},
	{Name: "mates", Type: TypeInts, Default: []int{1, 2}},
}

func TestResolveDefaults(t *testing.T) {
	p, err := Resolve(testSpecs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String("workload"); got != "wl1" {
		t.Errorf("workload = %q, want wl1", got)
	}
	if got := p.Float("scale"); got != 0.1 {
		t.Errorf("scale = %v, want 0.1", got)
	}
	if got := p.Uint("seed"); got != 1 {
		t.Errorf("seed = %v, want 1", got)
	}
	if p.Bool("verbose") {
		t.Error("verbose = true, want false")
	}
	if got := p.Strings("workloads"); len(got) != 2 || got[0] != "wl1" {
		t.Errorf("workloads = %v", got)
	}
	if got := p.Floats("factors"); len(got) != 2 || got[1] != 0.5 {
		t.Errorf("factors = %v", got)
	}
	if got := p.Ints("mates"); len(got) != 2 || got[1] != 2 {
		t.Errorf("mates = %v", got)
	}
}

func TestResolveOverridesAndCoercion(t *testing.T) {
	p, err := Resolve(testSpecs, Params{
		"scale": 1,         // int widens to float64
		"seed":  7,         // int widens to uint64
		"mates": []int{42}, // exact type passes through
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Float("scale"); got != 1.0 {
		t.Errorf("scale = %v, want 1", got)
	}
	if got := p.Uint("seed"); got != 7 {
		t.Errorf("seed = %v, want 7", got)
	}
	if got := p.Ints("mates"); len(got) != 1 || got[0] != 42 {
		t.Errorf("mates = %v, want [42]", got)
	}
	// float64 with an integral value coerces to uint; a fractional or
	// negative one does not.
	if _, err := Resolve(testSpecs, Params{"seed": 3.0}); err != nil {
		t.Errorf("seed=3.0: %v", err)
	}
	if _, err := Resolve(testSpecs, Params{"seed": 3.5}); err == nil {
		t.Error("seed=3.5 resolved; want error")
	}
	if _, err := Resolve(testSpecs, Params{"seed": -1}); err == nil {
		t.Error("seed=-1 resolved; want error")
	}
}

func TestResolveErrors(t *testing.T) {
	if _, err := Resolve(testSpecs, Params{"nope": 1}); err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Errorf("unknown name: err = %v", err)
	}
	if _, err := Resolve(testSpecs, Params{"workload": 3}); err == nil || !strings.Contains(err.Error(), `"workload"`) {
		t.Errorf("mistyped value: err = %v", err)
	}
}

func TestResolveJSON(t *testing.T) {
	raw := map[string]json.RawMessage{
		"scale":     json.RawMessage(`0.5`),
		"seed":      json.RawMessage(`9`),
		"workloads": json.RawMessage(`["wl4"]`),
		"mates":     json.RawMessage(`[3,4]`),
	}
	p, err := ResolveJSON(testSpecs, raw)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Float("scale"); got != 0.5 {
		t.Errorf("scale = %v", got)
	}
	if got := p.Uint("seed"); got != 9 {
		t.Errorf("seed = %v", got)
	}
	if got := p.Strings("workloads"); len(got) != 1 || got[0] != "wl4" {
		t.Errorf("workloads = %v", got)
	}
	if got := p.Ints("mates"); len(got) != 2 || got[0] != 3 {
		t.Errorf("mates = %v", got)
	}
	// Defaults still fill the unmentioned names.
	if got := p.String("workload"); got != "wl1" {
		t.Errorf("workload = %q", got)
	}

	if _, err := ResolveJSON(testSpecs, map[string]json.RawMessage{"scale": json.RawMessage(`"big"`)}); err == nil {
		t.Error("scale=\"big\" resolved; want error")
	}
	if _, err := ResolveJSON(testSpecs, map[string]json.RawMessage{"bogus": json.RawMessage(`1`)}); err == nil {
		t.Error("unknown name resolved; want error")
	}
}

func TestParamsZeroValues(t *testing.T) {
	var p Params
	if p.String("x") != "" || p.Float("x") != 0 || p.Uint("x") != 0 || p.Bool("x") {
		t.Error("missing keys should yield zero values")
	}
	if p.Strings("x") != nil || p.Floats("x") != nil || p.Ints("x") != nil {
		t.Error("missing slice keys should yield nil")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry[int, string]()
	a := &Descriptor[int, string]{Name: "a"}
	b := &Descriptor[int, string]{Name: "b"}
	r.Register(a)
	r.Register(b)
	if r.Get("a") != a || r.Get("b") != b {
		t.Error("Get did not return the registered descriptor")
	}
	if r.Get("c") != nil {
		t.Error("Get of an unregistered name should be nil")
	}
	list := r.List()
	if len(list) != 2 || list[0] != a || list[1] != b {
		t.Errorf("List = %v, want registration order [a b]", list)
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate", func() { r.Register(&Descriptor[int, string]{Name: "a"}) })
	mustPanic("empty name", func() { r.Register(&Descriptor[int, string]{}) })
}

func TestDescriptorInstance(t *testing.T) {
	d := &Descriptor[int, string]{
		Name:   "echo",
		Params: []ParamSpec{{Name: "n", Type: TypeUint, Default: uint64(2)}},
		New: func(p Params) (Instance[int, string], error) {
			n := int(p.Uint("n"))
			return &echoInstance{points: make([]int, n), results: make([]string, n)}, nil
		},
	}
	inst, err := d.Instance(Params{"n": 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(inst.Points()); got != 3 {
		t.Fatalf("len(Points) = %d, want 3", got)
	}
	if _, err := d.Instance(Params{"bogus": 1}); err == nil {
		t.Error("bogus parameter accepted; want error")
	}
}

type echoInstance struct {
	points  []int
	results []string
	folded  int
}

func (e *echoInstance) Points() []int { return e.points }

func (e *echoInstance) Fold(index int, result string) ([]any, error) {
	e.results[index] = result
	e.folded++
	return []any{result}, nil
}

func (e *echoInstance) Summary() (any, error) { return e.results, nil }
