package workload

import (
	"reflect"
	"strings"
	"testing"
)

// traceSample is a small SWF log exercising the normalisation paths:
// an explicit machine header, a dependent submit (job 3 arrives 50s of
// think time after job 1 completes), an out-of-range status, and an
// unusable record (zero runtime) that must be dropped.
const traceSample = `; MaxNodes: 4
; MaxProcs: 16
; Computer: test
1 0 5 100 -1 -1 -1 8 200 -1 1 -1 -1 -1 1 1 -1 -1
2 30 -1 60 -1 -1 -1 4 90 -1 99 -1 -1 -1 1 1 -1 -1
3 -1 -1 40 -1 -1 -1 4 40 -1 1 -1 -1 -1 1 1 1 50
4 10 -1 0 -1 -1 -1 4 10 -1 1 -1 -1 -1 1 1 -1 -1
`

func TestFromTraceCompiles(t *testing.T) {
	spec, digest, err := FromTrace([]byte(traceSample), TraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != TracePrefix+digest {
		t.Fatalf("spec name %q does not carry digest %q", spec.Name, digest)
	}
	if !IsTraceRef(spec.Name) || TraceDigest(spec.Name) != digest {
		t.Fatalf("ref helpers disagree: %q / %q", spec.Name, digest)
	}
	// MaxProcs 16 over MaxNodes 4 = 4 cores/node.
	if spec.Cluster.Nodes != 4 || spec.Cluster.TotalCores() != 16 {
		t.Fatalf("geometry: %+v", spec.Cluster)
	}
	// Job 4 (zero runtime) is dropped; 3 jobs survive.
	if len(spec.Jobs) != 3 {
		t.Fatalf("jobs %d, want 3: %+v", len(spec.Jobs), spec.Jobs)
	}
	// Job 3's dependent submit resolves to job 1's completion (submit 0 +
	// wait 5 + run 100) plus 50s think time = 155; the stream is already
	// anchored at 0 so no shift applies.
	if spec.Jobs[0].Submit != 0 || spec.Jobs[1].Submit != 30 || spec.Jobs[2].Submit != 155 {
		t.Fatalf("submits: %d %d %d", spec.Jobs[0].Submit, spec.Jobs[1].Submit, spec.Jobs[2].Submit)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromTraceDeterministic(t *testing.T) {
	a, da, err := FromTrace([]byte(traceSample), TraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, db, err := FromTrace([]byte(traceSample), TraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatalf("digest not deterministic: %q vs %q", da, db)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("compiled specs differ across identical compilations")
	}
	// A geometry override changes observable content, so it must change
	// the digest: the ref is a content address, not a file address.
	c, dc, err := FromTrace([]byte(traceSample), TraceConfig{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dc == da {
		t.Fatal("geometry override did not change the digest")
	}
	if c.Cluster.Nodes != 8 {
		t.Fatalf("override ignored: %+v", c.Cluster)
	}
}

func TestFromTraceShiftsSubmitsToZero(t *testing.T) {
	shifted := strings.ReplaceAll(traceSample, "1 0 5 100", "1 1000 5 100")
	shifted = strings.ReplaceAll(shifted, "2 30 -1 60", "2 1030 -1 60")
	shifted = strings.ReplaceAll(shifted, "4 10 -1 0", "4 1010 -1 0")
	spec, _, err := FromTrace([]byte(shifted), TraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Jobs[0].Submit != 0 {
		t.Fatalf("stream not anchored at 0: first submit %d", spec.Jobs[0].Submit)
	}
}

func TestFromTraceRejectsEmpty(t *testing.T) {
	if _, _, err := FromTrace([]byte("; header only\n"), TraceConfig{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	// Records exist but none are usable.
	unusable := "1 0 -1 0 -1 -1 -1 4 10 -1 1 -1 -1 -1 1 1 -1 -1\n"
	if _, _, err := FromTrace([]byte(unusable), TraceConfig{}); err == nil {
		t.Fatal("trace with no usable records accepted")
	}
}

func TestTraceRegistry(t *testing.T) {
	reg := &TraceRegistry{}
	info, err := reg.Register([]byte(traceSample), TraceConfig{}, "first.swf")
	if err != nil {
		t.Fatal(err)
	}
	if info.Ref != TracePrefix+info.Digest || info.Jobs != 3 {
		t.Fatalf("info: %+v", info)
	}
	// Idempotent by content: a second registration under another label
	// returns the first record.
	again, err := reg.Register([]byte(traceSample), TraceConfig{}, "second.swf")
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != "first.swf" {
		t.Fatalf("re-registration rewrote the source: %+v", again)
	}
	if got := reg.List(); len(got) != 1 || got[0].Digest != info.Digest {
		t.Fatalf("list: %+v", got)
	}
	if _, err := reg.Get(info.Digest); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("deadbeefdeadbeef"); err == nil {
		t.Fatal("unknown digest resolved")
	}
}

func TestCacheResolvesTraceRefs(t *testing.T) {
	info, err := Traces.Register([]byte(traceSample), TraceConfig{}, "cache-test.swf")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(4)
	spec, err := c.Get(info.Ref, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Trace content ignores the generation parameters entirely.
	if spec.Name != info.Ref || len(spec.Jobs) != info.Jobs {
		t.Fatalf("resolved spec: %q %d jobs", spec.Name, len(spec.Jobs))
	}
	if hits, gens := c.Stats(); hits != 1 || gens != 0 {
		t.Fatalf("trace resolution should count as a hit: hits %d gens %d", hits, gens)
	}
	if _, err := c.Get(TracePrefix+"0000000000000000", 1, 1); err == nil {
		t.Fatal("unknown trace digest resolved through the cache")
	}
}
