package workload

import (
	"encoding/json"
	"fmt"
	"math"

	"sdpolicy/internal/job"
)

// Derivation ops. A derivation is a declarative, JSON-serialisable
// variant operation over a generated base Spec: instead of mutating a
// Spec in place, experiments describe how their variant differs from
// the base and apply the description copy-on-write with Derive. This is
// what lets one generated workload back an entire ablation sweep — the
// base is immutable and shareable (and therefore cacheable), while each
// variant is a cheap derived copy.
const (
	// OpMalleableFraction re-flags jobs so Fraction of them (striped
	// deterministically by submit order) is malleable and the rest
	// rigid — the mixed-workload experiments of the ablation suite.
	OpMalleableFraction = "malleable_fraction"
	// OpTagNodes attaches Feature to Fraction of the machine's nodes
	// (striped deterministically), making the machine heterogeneous.
	OpTagNodes = "tag_nodes"
	// OpRequireFeature makes Fraction of the jobs (striped
	// deterministically) require Feature on every allocated node — the
	// constraint-filtering behaviour of Section 3.2.4.
	OpRequireFeature = "require_feature"
)

// Derivation is one variant operation. The zero value is invalid; build
// derivations with MalleableFraction, TagNodes and RequireFeature, or
// decode them from their JSON wire form.
type Derivation struct {
	Op       string  `json:"op"`
	Fraction float64 `json:"fraction"`
	Feature  string  `json:"feature,omitempty"`
}

// MalleableFraction returns the derivation re-flagging frac of the jobs
// malleable and the rest rigid.
func MalleableFraction(frac float64) Derivation {
	return Derivation{Op: OpMalleableFraction, Fraction: frac}
}

// TagNodes returns the derivation attaching feature to frac of the
// machine's nodes.
func TagNodes(feature string, frac float64) Derivation {
	return Derivation{Op: OpTagNodes, Fraction: frac, Feature: feature}
}

// RequireFeature returns the derivation making frac of the jobs require
// feature on every allocated node.
func RequireFeature(feature string, frac float64) Derivation {
	return Derivation{Op: OpRequireFeature, Fraction: frac, Feature: feature}
}

// Validate reports the first structural problem: an unknown op, a
// fraction outside [0,1] (including NaN), or a missing/forbidden
// feature string for the op.
func (d Derivation) Validate() error {
	if !(d.Fraction >= 0 && d.Fraction <= 1) {
		return fmt.Errorf("workload: derivation %s fraction %v out of [0,1]", d.Op, d.Fraction)
	}
	switch d.Op {
	case OpMalleableFraction:
		if d.Feature != "" {
			return fmt.Errorf("workload: derivation %s takes no feature (got %q)", d.Op, d.Feature)
		}
	case OpTagNodes, OpRequireFeature:
		if d.Feature == "" {
			return fmt.Errorf("workload: derivation %s requires a feature", d.Op)
		}
	default:
		return fmt.Errorf("workload: unknown derivation op %q", d.Op)
	}
	return nil
}

// apply executes the derivation on a spec that Derive has already made
// private: the Jobs slice and NodeFeatures map are copies, so only
// per-job Features slices still alias the base and are re-cloned on
// write.
func (d Derivation) apply(s *Spec) {
	switch d.Op {
	case OpMalleableFraction:
		for i := range s.Jobs {
			if float64(i%100) < d.Fraction*100 {
				s.Jobs[i].Kind = job.Malleable
			} else {
				s.Jobs[i].Kind = job.Rigid
			}
		}
	case OpTagNodes:
		if s.NodeFeatures == nil {
			s.NodeFeatures = map[int][]string{}
		}
		for nd := 0; nd < s.Cluster.Nodes; nd++ {
			if float64(nd%100) < d.Fraction*100 {
				s.NodeFeatures[nd] = append(s.NodeFeatures[nd], d.Feature)
			}
		}
	case OpRequireFeature:
		for i := range s.Jobs {
			if float64(i%100) < d.Fraction*100 {
				feats := make([]string, 0, len(s.Jobs[i].Features)+1)
				feats = append(feats, s.Jobs[i].Features...)
				s.Jobs[i].Features = append(feats, d.Feature)
			}
		}
	}
}

// Derive returns a Spec with the derivations applied in order,
// copy-on-write: the base — which may be shared process-wide through
// the generation cache — is never modified, and neither are any slices
// or maps it owns. An empty chain returns the base itself; callers must
// treat every Spec obtained from Derive or Cache.Get as immutable.
func Derive(base *Spec, derivs []Derivation) (*Spec, error) {
	for i, d := range derivs {
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("derivation %d: %w", i, err)
		}
	}
	if len(derivs) == 0 {
		return base, nil
	}
	s := *base
	s.Jobs = append([]job.Job(nil), base.Jobs...)
	if base.NodeFeatures != nil {
		nf := make(map[int][]string, len(base.NodeFeatures))
		for nd, feats := range base.NodeFeatures {
			nf[nd] = append([]string(nil), feats...)
		}
		s.NodeFeatures = nf
	}
	for i := range derivs {
		derivs[i].apply(&s)
	}
	return &s, nil
}

// Chain is the canonical string encoding of a derivation list: the
// compact JSON of its derivations, or "" for the empty chain. Being a
// plain comparable string, a Chain can sit directly inside cache keys
// (e.g. the campaign engine's Point) while still round-tripping loss-
// lessly to the wire form. Order is semantic: chains that apply the
// same derivations in a different order are different chains.
type Chain string

// NewChain validates the derivations and encodes them canonically.
func NewChain(derivs ...Derivation) (Chain, error) {
	for i, d := range derivs {
		if err := d.Validate(); err != nil {
			return "", fmt.Errorf("derivation %d: %w", i, err)
		}
	}
	return EncodeChain(derivs), nil
}

// EncodeChain encodes without validating — the encoding itself never
// fails, so wire layers can carry an invalid chain to the layer that
// reports errors (Chain.Derivations / Derive validate on use). JSON
// cannot represent non-finite numbers, so a NaN or Inf fraction —
// which no valid derivation carries — is encoded as the equally
// invalid -1: the chain still round-trips to a derivation that
// Validate rejects instead of failing to encode.
func EncodeChain(derivs []Derivation) Chain {
	if len(derivs) == 0 {
		return ""
	}
	for i := range derivs {
		if math.IsNaN(derivs[i].Fraction) || math.IsInf(derivs[i].Fraction, 0) {
			sane := append([]Derivation(nil), derivs...)
			for j := range sane {
				if math.IsNaN(sane[j].Fraction) || math.IsInf(sane[j].Fraction, 0) {
					sane[j].Fraction = -1
				}
			}
			derivs = sane
			break
		}
	}
	b, err := json.Marshal(derivs)
	if err != nil {
		// Derivation now holds only finite floats and strings.
		panic(fmt.Sprintf("workload: encoding chain: %v", err))
	}
	return Chain(b)
}

// Derivations decodes the chain back into its derivation list; the
// empty chain decodes to nil.
func (c Chain) Derivations() ([]Derivation, error) {
	if c == "" {
		return nil, nil
	}
	var derivs []Derivation
	if err := json.Unmarshal([]byte(c), &derivs); err != nil {
		return nil, fmt.Errorf("workload: bad derivation chain %q: %w", string(c), err)
	}
	return derivs, nil
}

// Prepend returns the chain with d applied before every existing
// derivation.
func (c Chain) Prepend(d Derivation) (Chain, error) {
	rest, err := c.Derivations()
	if err != nil {
		return "", err
	}
	return EncodeChain(append([]Derivation{d}, rest...)), nil
}

// Empty reports whether the chain has no derivations.
func (c Chain) Empty() bool { return c == "" }
