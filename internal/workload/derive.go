package workload

import (
	"encoding/json"
	"fmt"
	"math"

	"sdpolicy/internal/job"
)

// Derivation ops. A derivation is a declarative, JSON-serialisable
// variant operation over a generated base Spec: instead of mutating a
// Spec in place, experiments describe how their variant differs from
// the base and apply the description copy-on-write with Derive. This is
// what lets one generated workload back an entire ablation sweep — the
// base is immutable and shareable (and therefore cacheable), while each
// variant is a cheap derived copy.
const (
	// OpMalleableFraction re-flags jobs so Fraction of them (striped
	// deterministically by submit order) is malleable and the rest
	// rigid — the mixed-workload experiments of the ablation suite.
	OpMalleableFraction = "malleable_fraction"
	// OpTagNodes attaches Feature to Fraction of the machine's nodes
	// (striped deterministically), making the machine heterogeneous.
	OpTagNodes = "tag_nodes"
	// OpRequireFeature makes Fraction of the jobs (striped
	// deterministically) require Feature on every allocated node — the
	// constraint-filtering behaviour of Section 3.2.4.
	OpRequireFeature = "require_feature"
	// OpScaleLoad compresses (Factor > 1) or stretches (Factor < 1) the
	// arrival process: every submit time is divided by Factor, so a
	// trace replayed with Factor 1.5 offers 1.5x its recorded load —
	// the controlled-perturbation replay of the real-trace studies.
	OpScaleLoad = "scale_load"
	// OpShiftArrivals remaps the diurnal pattern: each submit's
	// time-of-day rotates forward by Shift seconds (mod 24h, the day
	// index is kept), and a positive Burst additionally quantises
	// submits onto Burst-second boundaries, injecting synchronous
	// arrival bursts. The stream is re-sorted afterwards.
	OpShiftArrivals = "shift_arrivals"
	// OpAssignQoS tags Fraction of the jobs (striped deterministically)
	// with the Class queue name; queues map to per-queue MAXSD QoS
	// cut-offs (paper §4.1) via Options.
	OpAssignQoS = "assign_qos"
)

// Derivation is one variant operation. The zero value is invalid; build
// derivations with the constructors (MalleableFraction, TagNodes,
// RequireFeature, ScaleLoad, ShiftArrivals, AssignQoS) or decode them
// from their JSON wire form. Fields unused by an op must hold their
// zero value — Validate enforces it, which is what keeps the canonical
// chain encoding of a given operation unique. (Fraction deliberately
// lacks omitempty: dropping the zero would re-encode every existing
// chain and orphan their cache entries.)
type Derivation struct {
	Op       string  `json:"op"`
	Fraction float64 `json:"fraction"`
	Feature  string  `json:"feature,omitempty"`
	// Factor is scale_load's arrival compression ratio (> 0).
	Factor float64 `json:"factor,omitempty"`
	// Shift is shift_arrivals' time-of-day rotation in seconds,
	// |Shift| < 86400.
	Shift int64 `json:"shift,omitempty"`
	// Burst is shift_arrivals' arrival quantum in seconds (0 = none).
	Burst int64 `json:"burst,omitempty"`
	// Class is assign_qos's queue/QoS class name.
	Class string `json:"class,omitempty"`
}

// MalleableFraction returns the derivation re-flagging frac of the jobs
// malleable and the rest rigid.
func MalleableFraction(frac float64) Derivation {
	return Derivation{Op: OpMalleableFraction, Fraction: frac}
}

// TagNodes returns the derivation attaching feature to frac of the
// machine's nodes.
func TagNodes(feature string, frac float64) Derivation {
	return Derivation{Op: OpTagNodes, Fraction: frac, Feature: feature}
}

// RequireFeature returns the derivation making frac of the jobs require
// feature on every allocated node.
func RequireFeature(feature string, frac float64) Derivation {
	return Derivation{Op: OpRequireFeature, Fraction: frac, Feature: feature}
}

// ScaleLoad returns the derivation compressing (factor > 1) or
// stretching (factor < 1) the arrival process by dividing every submit
// time by factor.
func ScaleLoad(factor float64) Derivation {
	return Derivation{Op: OpScaleLoad, Factor: factor}
}

// ShiftArrivals returns the derivation rotating each submit's
// time-of-day forward by shift seconds and, when burst > 0, quantising
// submits onto burst-second boundaries.
func ShiftArrivals(shift, burst int64) Derivation {
	return Derivation{Op: OpShiftArrivals, Shift: shift, Burst: burst}
}

// AssignQoS returns the derivation tagging frac of the jobs with the
// class queue name.
func AssignQoS(class string, frac float64) Derivation {
	return Derivation{Op: OpAssignQoS, Fraction: frac, Class: class}
}

// Validate reports the first structural problem: an unknown op, an
// out-of-range parameter, or a field the op does not take holding a
// non-zero value. The strictness is deliberate: one operation has
// exactly one valid Derivation value, so its canonical JSON encoding —
// and therefore every cache key carrying it — is unique.
func (d Derivation) Validate() error {
	if !(d.Fraction >= 0 && d.Fraction <= 1) {
		return fmt.Errorf("workload: derivation %s fraction %v out of [0,1]", d.Op, d.Fraction)
	}
	forbid := func(ok bool, field string) error {
		if ok {
			return nil
		}
		return fmt.Errorf("workload: derivation %s takes no %s", d.Op, field)
	}
	noScenario := func() error {
		if err := forbid(d.Factor == 0, "factor"); err != nil {
			return err
		}
		if err := forbid(d.Shift == 0, "shift"); err != nil {
			return err
		}
		if err := forbid(d.Burst == 0, "burst"); err != nil {
			return err
		}
		return forbid(d.Class == "", "class")
	}
	switch d.Op {
	case OpMalleableFraction:
		if d.Feature != "" {
			return fmt.Errorf("workload: derivation %s takes no feature (got %q)", d.Op, d.Feature)
		}
		return noScenario()
	case OpTagNodes, OpRequireFeature:
		if d.Feature == "" {
			return fmt.Errorf("workload: derivation %s requires a feature", d.Op)
		}
		return noScenario()
	case OpScaleLoad:
		if !(d.Factor > 0) || math.IsInf(d.Factor, 0) {
			return fmt.Errorf("workload: derivation %s factor %v out of (0,+Inf)", d.Op, d.Factor)
		}
		if d.Fraction != 0 {
			return fmt.Errorf("workload: derivation %s takes no fraction", d.Op)
		}
		if err := forbid(d.Feature == "", "feature"); err != nil {
			return err
		}
		if err := forbid(d.Shift == 0, "shift"); err != nil {
			return err
		}
		if err := forbid(d.Burst == 0, "burst"); err != nil {
			return err
		}
		return forbid(d.Class == "", "class")
	case OpShiftArrivals:
		if d.Shift <= -86400 || d.Shift >= 86400 {
			return fmt.Errorf("workload: derivation %s shift %d out of (-86400,86400)", d.Op, d.Shift)
		}
		if d.Burst < 0 {
			return fmt.Errorf("workload: derivation %s burst %d negative", d.Op, d.Burst)
		}
		if d.Shift == 0 && d.Burst == 0 {
			return fmt.Errorf("workload: derivation %s is a no-op (zero shift and burst)", d.Op)
		}
		if d.Fraction != 0 {
			return fmt.Errorf("workload: derivation %s takes no fraction", d.Op)
		}
		if err := forbid(d.Feature == "", "feature"); err != nil {
			return err
		}
		if err := forbid(d.Factor == 0, "factor"); err != nil {
			return err
		}
		return forbid(d.Class == "", "class")
	case OpAssignQoS:
		if d.Class == "" {
			return fmt.Errorf("workload: derivation %s requires a class", d.Op)
		}
		if err := forbid(d.Feature == "", "feature"); err != nil {
			return err
		}
		if err := forbid(d.Factor == 0, "factor"); err != nil {
			return err
		}
		if err := forbid(d.Shift == 0, "shift"); err != nil {
			return err
		}
		return forbid(d.Burst == 0, "burst")
	default:
		return fmt.Errorf("workload: unknown derivation op %q", d.Op)
	}
}

// apply executes the derivation on a spec that Derive has already made
// private: the Jobs slice and NodeFeatures map are copies, so only
// per-job Features slices still alias the base and are re-cloned on
// write.
func (d Derivation) apply(s *Spec) {
	switch d.Op {
	case OpMalleableFraction:
		for i := range s.Jobs {
			if float64(i%100) < d.Fraction*100 {
				s.Jobs[i].Kind = job.Malleable
			} else {
				s.Jobs[i].Kind = job.Rigid
			}
		}
	case OpTagNodes:
		if s.NodeFeatures == nil {
			s.NodeFeatures = map[int][]string{}
		}
		for nd := 0; nd < s.Cluster.Nodes; nd++ {
			if float64(nd%100) < d.Fraction*100 {
				s.NodeFeatures[nd] = append(s.NodeFeatures[nd], d.Feature)
			}
		}
	case OpRequireFeature:
		for i := range s.Jobs {
			if float64(i%100) < d.Fraction*100 {
				feats := make([]string, 0, len(s.Jobs[i].Features)+1)
				feats = append(feats, s.Jobs[i].Features...)
				s.Jobs[i].Features = append(feats, d.Feature)
			}
		}
	case OpScaleLoad:
		// Division by a positive factor preserves submit order, so the
		// stream stays monotonic and ids keep their submit-order density.
		for i := range s.Jobs {
			s.Jobs[i].Submit = int64(float64(s.Jobs[i].Submit) / d.Factor)
		}
	case OpShiftArrivals:
		for i := range s.Jobs {
			t := s.Jobs[i].Submit
			day, tod := t/86400, t%86400
			tod = ((tod+d.Shift)%86400 + 86400) % 86400
			t = day*86400 + tod
			if d.Burst > 0 {
				t = t / d.Burst * d.Burst
			}
			s.Jobs[i].Submit = t
		}
		// Rotation wraps submits across day boundaries; restore the
		// monotonic order (and dense ids) every Spec consumer assumes.
		SortBySubmit(s.Jobs)
	case OpAssignQoS:
		for i := range s.Jobs {
			if float64(i%100) < d.Fraction*100 {
				s.Jobs[i].Queue = d.Class
			}
		}
	}
}

// Derive returns a Spec with the derivations applied in order,
// copy-on-write: the base — which may be shared process-wide through
// the generation cache — is never modified, and neither are any slices
// or maps it owns. An empty chain returns the base itself; callers must
// treat every Spec obtained from Derive or Cache.Get as immutable.
func Derive(base *Spec, derivs []Derivation) (*Spec, error) {
	for i, d := range derivs {
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("derivation %d: %w", i, err)
		}
	}
	if len(derivs) == 0 {
		return base, nil
	}
	s := *base
	s.Jobs = append([]job.Job(nil), base.Jobs...)
	if base.NodeFeatures != nil {
		nf := make(map[int][]string, len(base.NodeFeatures))
		for nd, feats := range base.NodeFeatures {
			nf[nd] = append([]string(nil), feats...)
		}
		s.NodeFeatures = nf
	}
	for i := range derivs {
		derivs[i].apply(&s)
	}
	return &s, nil
}

// Chain is the canonical string encoding of a derivation list: the
// compact JSON of its derivations, or "" for the empty chain. Being a
// plain comparable string, a Chain can sit directly inside cache keys
// (e.g. the campaign engine's Point) while still round-tripping loss-
// lessly to the wire form. Order is semantic: chains that apply the
// same derivations in a different order are different chains.
type Chain string

// NewChain validates the derivations and encodes them canonically.
func NewChain(derivs ...Derivation) (Chain, error) {
	for i, d := range derivs {
		if err := d.Validate(); err != nil {
			return "", fmt.Errorf("derivation %d: %w", i, err)
		}
	}
	return EncodeChain(derivs), nil
}

// EncodeChain encodes without validating — the encoding itself never
// fails, so wire layers can carry an invalid chain to the layer that
// reports errors (Chain.Derivations / Derive validate on use). JSON
// cannot represent non-finite numbers, so a NaN or Inf fraction —
// which no valid derivation carries — is encoded as the equally
// invalid -1: the chain still round-trips to a derivation that
// Validate rejects instead of failing to encode.
func EncodeChain(derivs []Derivation) Chain {
	if len(derivs) == 0 {
		return ""
	}
	nonFinite := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	for i := range derivs {
		if nonFinite(derivs[i].Fraction) || nonFinite(derivs[i].Factor) {
			sane := append([]Derivation(nil), derivs...)
			for j := range sane {
				if nonFinite(sane[j].Fraction) {
					sane[j].Fraction = -1
				}
				if nonFinite(sane[j].Factor) {
					sane[j].Factor = -1
				}
			}
			derivs = sane
			break
		}
	}
	b, err := json.Marshal(derivs)
	if err != nil {
		// Derivation now holds only finite floats and strings.
		panic(fmt.Sprintf("workload: encoding chain: %v", err))
	}
	return Chain(b)
}

// Derivations decodes the chain back into its derivation list; the
// empty chain decodes to nil.
func (c Chain) Derivations() ([]Derivation, error) {
	if c == "" {
		return nil, nil
	}
	var derivs []Derivation
	if err := json.Unmarshal([]byte(c), &derivs); err != nil {
		return nil, fmt.Errorf("workload: bad derivation chain %q: %w", string(c), err)
	}
	return derivs, nil
}

// Prepend returns the chain with d applied before every existing
// derivation.
func (c Chain) Prepend(d Derivation) (Chain, error) {
	rest, err := c.Derivations()
	if err != nil {
		return "", err
	}
	return EncodeChain(append([]Derivation{d}, rest...)), nil
}

// Empty reports whether the chain has no derivations.
func (c Chain) Empty() bool { return c == "" }

// DerivationField describes one parameter of a derivation op for the
// /v1/workloads schema listing.
type DerivationField struct {
	Name        string `json:"name"`
	Type        string `json:"type"`
	Range       string `json:"range,omitempty"`
	Description string `json:"description,omitempty"`
}

// DerivationOpSpec describes one derivation op: its wire name and the
// fields it takes. Fields not listed must be omitted (Validate rejects
// them).
type DerivationOpSpec struct {
	Op          string            `json:"op"`
	Description string            `json:"description"`
	Fields      []DerivationField `json:"fields"`
}

// DerivationOps returns the full derivation-op schema in a fixed
// order: the machine/kind ops first, then the trace-scenario ops.
func DerivationOps() []DerivationOpSpec {
	return []DerivationOpSpec{
		{
			Op:          OpMalleableFraction,
			Description: "re-flag a fraction of the jobs malleable and the rest rigid (striped by submit order)",
			Fields: []DerivationField{
				{Name: "fraction", Type: "float", Range: "[0,1]", Description: "fraction of jobs made malleable"},
			},
		},
		{
			Op:          OpTagNodes,
			Description: "attach a feature string to a fraction of the machine's nodes",
			Fields: []DerivationField{
				{Name: "fraction", Type: "float", Range: "[0,1]", Description: "fraction of nodes tagged"},
				{Name: "feature", Type: "string", Description: "feature name attached to the nodes"},
			},
		},
		{
			Op:          OpRequireFeature,
			Description: "make a fraction of the jobs require a feature on every allocated node",
			Fields: []DerivationField{
				{Name: "fraction", Type: "float", Range: "[0,1]", Description: "fraction of jobs constrained"},
				{Name: "feature", Type: "string", Description: "feature the jobs require"},
			},
		},
		{
			Op:          OpScaleLoad,
			Description: "compress (factor > 1) or stretch (factor < 1) the arrival process by dividing submit times",
			Fields: []DerivationField{
				{Name: "factor", Type: "float", Range: "(0,+Inf)", Description: "arrival compression ratio; 1.5 offers 1.5x the recorded load"},
			},
		},
		{
			Op:          OpShiftArrivals,
			Description: "rotate each submit's time-of-day and optionally quantise arrivals into bursts",
			Fields: []DerivationField{
				{Name: "shift", Type: "int", Range: "(-86400,86400)", Description: "time-of-day rotation in seconds"},
				{Name: "burst", Type: "int", Range: "[0,+Inf)", Description: "arrival quantum in seconds; 0 disables burst injection"},
			},
		},
		{
			Op:          OpAssignQoS,
			Description: "tag a fraction of the jobs with a queue/QoS class name (striped by submit order)",
			Fields: []DerivationField{
				{Name: "fraction", Type: "float", Range: "[0,1]", Description: "fraction of jobs tagged"},
				{Name: "class", Type: "string", Description: "queue/QoS class name"},
			},
		},
	}
}
