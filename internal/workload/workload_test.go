package workload

import (
	"math"
	"reflect"
	"testing"

	"sdpolicy/internal/job"
)

func TestPresetsValidateAndScale(t *testing.T) {
	for _, name := range Names() {
		spec, err := ByName(name, 0.1, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(spec.Jobs) == 0 {
			t.Fatalf("%s: empty workload", name)
		}
		if spec.TotalWork() <= 0 {
			t.Fatalf("%s: no work", name)
		}
	}
	if _, err := ByName("wl9", 1, 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestTable1Shapes(t *testing.T) {
	// Full-scale workloads must match the Table 1 inventory.
	cases := []struct {
		name     string
		jobs     int
		nodes    int
		cores    int
		maxNodes int
	}{
		{"wl1", 5000, 1024, 49152, 128},
		{"wl2", 5000, 1024, 49152, 128},
		{"wl3", 10000, 1024, 8192, 72},
		{"wl4", 198509, 5040, 80640, 4988},
		{"wl5", 2000, 49, 2352, 16},
	}
	for _, c := range cases {
		spec, err := ByName(c.name, 1.0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(spec.Jobs) != c.jobs {
			t.Errorf("%s: %d jobs, want %d", c.name, len(spec.Jobs), c.jobs)
		}
		if spec.Cluster.Nodes != c.nodes {
			t.Errorf("%s: %d nodes, want %d", c.name, spec.Cluster.Nodes, c.nodes)
		}
		if got := spec.Cluster.TotalCores(); got != c.cores {
			t.Errorf("%s: %d cores, want %d", c.name, got, c.cores)
		}
		maxSeen := 0
		for i := range spec.Jobs {
			if spec.Jobs[i].ReqNodes > maxSeen {
				maxSeen = spec.Jobs[i].ReqNodes
			}
		}
		if maxSeen > c.maxNodes {
			t.Errorf("%s: job of %d nodes exceeds Table 1 max %d", c.name, maxSeen, c.maxNodes)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := WL1(0.1, 7)
	b := WL1(0.1, 7)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("job counts differ")
	}
	for i := range a.Jobs {
		if !reflect.DeepEqual(a.Jobs[i], b.Jobs[i]) {
			t.Fatalf("job %d differs", i)
		}
	}
	c := WL1(0.1, 8)
	same := true
	for i := range a.Jobs {
		if !reflect.DeepEqual(a.Jobs[i], c.Jobs[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestWL2ExactRequests(t *testing.T) {
	spec := WL2(0.1, 5)
	for i := range spec.Jobs {
		if spec.Jobs[i].ReqTime != spec.Jobs[i].ActualTime {
			t.Fatalf("job %d: req %d != actual %d (WL2 must be exact)",
				i, spec.Jobs[i].ReqTime, spec.Jobs[i].ActualTime)
		}
	}
}

func TestWL1RequestsOverestimate(t *testing.T) {
	spec := WL1(0.1, 5)
	over := 0
	for i := range spec.Jobs {
		j := &spec.Jobs[i]
		if j.ActualTime > j.ReqTime {
			t.Fatalf("job %d: actual exceeds request", i)
		}
		if j.ReqTime > j.ActualTime {
			over++
		}
	}
	if frac := float64(over) / float64(len(spec.Jobs)); frac < 0.5 {
		t.Fatalf("only %.0f%% of requests overestimate; users should overestimate mostly", frac*100)
	}
}

func TestOfferedLoadIsRealised(t *testing.T) {
	spec := WL1(0.25, 9)
	span := spec.Jobs[len(spec.Jobs)-1].Submit
	load := spec.TotalWork() / (float64(spec.Cluster.Nodes) * float64(span))
	if math.Abs(load-2.2) > 0.12 {
		t.Fatalf("realised load %.2f, configured 2.2", load)
	}
}

func TestWL5AppMix(t *testing.T) {
	spec := WL5(1.0, 11)
	counts := AppCounts(&spec)
	total := len(spec.Jobs)
	// Table 2 shares within generous sampling tolerance.
	want := map[job.AppClass]float64{
		job.AppPILS: 0.305, job.AppSTREAM: 0.308, job.AppCoreNeuron: 0.355,
		job.AppNEST: 0.026, job.AppAlya: 0.006,
	}
	for app, share := range want {
		got := float64(counts[app]) / float64(total)
		if math.Abs(got-share) > 0.04 {
			t.Errorf("%v share %.3f, want %.3f", app, got, share)
		}
	}
	if counts[job.AppGeneric] != 0 {
		t.Error("WL5 left generic jobs")
	}
}

func TestMalleableFractionDerivation(t *testing.T) {
	base := WL1(0.1, 1)
	spec, err := Derive(&base, []Derivation{MalleableFraction(0.25)})
	if err != nil {
		t.Fatal(err)
	}
	mall := 0
	for i := range spec.Jobs {
		if spec.Jobs[i].Kind == job.Malleable {
			mall++
		}
	}
	frac := float64(mall) / float64(len(spec.Jobs))
	if math.Abs(frac-0.25) > 0.05 {
		t.Fatalf("malleable fraction %.2f, want 0.25", frac)
	}
	if _, err := Derive(&base, []Derivation{MalleableFraction(1.5)}); err == nil {
		t.Error("bad fraction accepted")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	spec := WL5(0.2, 1)
	spec.Jobs[3].Submit = spec.Jobs[2].Submit - 100 // out of order
	if spec.Validate() == nil {
		t.Fatal("out-of-order submissions accepted")
	}
	spec = WL5(0.2, 1)
	spec.Jobs[0].ReqNodes = spec.Cluster.Nodes + 1
	if spec.Validate() == nil {
		t.Fatal("oversized job accepted")
	}
}

func TestSortBySubmit(t *testing.T) {
	jobs := []job.Job{
		{ID: 9, Submit: 50, ReqTime: 10, ActualTime: 10, ReqNodes: 1, TasksPerNode: 1},
		{ID: 8, Submit: 10, ReqTime: 10, ActualTime: 10, ReqNodes: 1, TasksPerNode: 1},
	}
	SortBySubmit(jobs)
	if jobs[0].Submit != 10 || jobs[0].ID != 1 || jobs[1].ID != 2 {
		t.Fatalf("sorted: %+v", jobs)
	}
}

func TestGenerateParamValidation(t *testing.T) {
	spec := WL5(0.2, 1)
	bad := []Params{
		{Jobs: 0, MaxNodes: 1, Load: 1, MinRuntime: 1, MaxRuntime: 2},
		{Jobs: 1, MaxNodes: 0, Load: 1, MinRuntime: 1, MaxRuntime: 2},
		{Jobs: 1, MaxNodes: 1, Load: 0, MinRuntime: 1, MaxRuntime: 2},
		{Jobs: 1, MaxNodes: 1, Load: 1, MinRuntime: 0, MaxRuntime: 2},
		{Jobs: 1, MaxNodes: 1, Load: 1, MinRuntime: 3, MaxRuntime: 2},
		{Jobs: 1, MaxNodes: 1, Load: 1, MinRuntime: 1, MaxRuntime: 2, MalleableFrac: 2},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid params accepted", i)
				}
			}()
			Generate(spec.Cluster, p)
		}()
	}
}
