package workload

import (
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"

	"sdpolicy/internal/job"
)

func TestDerivationValidate(t *testing.T) {
	valid := []Derivation{
		MalleableFraction(0),
		MalleableFraction(1),
		TagNodes("bigmem", 0.5),
		RequireFeature("bigmem", 0.25),
	}
	for _, d := range valid {
		if err := d.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", d, err)
		}
	}
	invalid := []Derivation{
		{},
		{Op: "shrink_jobs", Fraction: 0.5},
		MalleableFraction(-0.1),
		MalleableFraction(1.5),
		MalleableFraction(math.NaN()),
		TagNodes("", 0.5),
		RequireFeature("", 0.5),
		{Op: OpMalleableFraction, Fraction: 0.5, Feature: "bigmem"},
	}
	for _, d := range invalid {
		if err := d.Validate(); err == nil {
			t.Errorf("%+v accepted", d)
		}
	}
}

// TestDeriveDoesNotMutateBase is the copy-on-write contract: deriving a
// variant must leave the shared base — including every slice and map it
// owns — bit-identical, or the generation cache would leak one
// variant's edits into every later consumer of the base.
func TestDeriveDoesNotMutateBase(t *testing.T) {
	// wl1 at this scale has a 102-node machine, so the %100 striping
	// actually distinguishes tagged from untagged nodes.
	base := WL1(0.1, 1)
	// Give the base pre-existing features so aliasing on the inner
	// slices is exercised, not just on the containers.
	base.NodeFeatures = map[int][]string{0: {"gpu"}}
	base.Jobs[0].Features = []string{"gpu"}
	snapshot, err := json.Marshal(&base)
	if err != nil {
		t.Fatal(err)
	}

	derived, err := Derive(&base, []Derivation{
		MalleableFraction(0.5),
		TagNodes("bigmem", 0.5),
		RequireFeature("bigmem", 0.3),
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := json.Marshal(&base)
	if err != nil {
		t.Fatal(err)
	}
	if string(snapshot) != string(after) {
		t.Fatal("Derive mutated the base spec")
	}
	if derived == &base {
		t.Fatal("non-empty chain returned the base itself")
	}
	if err := derived.Validate(); err != nil {
		t.Fatalf("derived spec invalid: %v", err)
	}

	// The variant must actually differ in the derived direction.
	mall := 0
	constrained := 0
	for i := range derived.Jobs {
		if derived.Jobs[i].Kind == job.Malleable {
			mall++
		}
		for _, f := range derived.Jobs[i].Features {
			if f == "bigmem" {
				constrained++
				break
			}
		}
	}
	frac := float64(mall) / float64(len(derived.Jobs))
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("derived malleable fraction %.2f, want 0.5", frac)
	}
	if cfrac := float64(constrained) / float64(len(derived.Jobs)); math.Abs(cfrac-0.3) > 0.05 {
		t.Fatalf("constrained fraction %.2f, want 0.3", cfrac)
	}
	tagged := 0
	for _, feats := range derived.NodeFeatures {
		for _, f := range feats {
			if f == "bigmem" {
				tagged++
				break
			}
		}
	}
	if tfrac := float64(tagged) / float64(derived.Cluster.Nodes); math.Abs(tfrac-0.5) > 0.06 {
		t.Fatalf("tagged node fraction %.2f, want 0.5", tfrac)
	}
	// Pre-existing node features must survive on the derived copy.
	if got := derived.NodeFeatures[0]; len(got) == 0 || got[0] != "gpu" {
		t.Fatalf("derived lost pre-existing node features: %v", got)
	}
}

func TestDeriveEmptyChainSharesBase(t *testing.T) {
	base := WL1(0.05, 1)
	derived, err := Derive(&base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if derived != &base {
		t.Fatal("empty chain should return the base spec unchanged")
	}
}

func TestDeriveRejectsInvalidDerivations(t *testing.T) {
	base := WL1(0.05, 1)
	if _, err := Derive(&base, []Derivation{MalleableFraction(2)}); err == nil {
		t.Fatal("out-of-range fraction accepted")
	}
	if _, err := Derive(&base, []Derivation{{Op: "bogus"}}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// TestDeriveMatchesInPlaceMutation: the derivation pipeline and the
// deprecated in-place mutator must flag exactly the same jobs.
func TestDeriveMatchesInPlaceMutation(t *testing.T) {
	for _, name := range Names() {
		base, err := ByName(name, 0.05, 3)
		if err != nil {
			t.Fatal(err)
		}
		derived, err := Derive(&base, []Derivation{MalleableFraction(0.37)})
		if err != nil {
			t.Fatal(err)
		}
		mutated, err := ByName(name, 0.05, 3)
		if err != nil {
			t.Fatal(err)
		}
		SetMalleableFraction(&mutated, 0.37)
		if !reflect.DeepEqual(derived.Jobs, mutated.Jobs) {
			t.Fatalf("%s: derived jobs differ from in-place mutation", name)
		}
	}
}

func TestChainRoundTrip(t *testing.T) {
	derivs := []Derivation{
		MalleableFraction(0.5),
		TagNodes("bigmem", 0.5),
		RequireFeature("bigmem", 0.25),
	}
	chain, err := NewChain(derivs...)
	if err != nil {
		t.Fatal(err)
	}
	back, err := chain.Derivations()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(derivs, back) {
		t.Fatalf("round trip: %+v != %+v", back, derivs)
	}
	// Canonical: re-encoding the decoded list reproduces the chain.
	if re := EncodeChain(back); re != chain {
		t.Fatalf("re-encode %q != %q", re, chain)
	}
	empty, err := NewChain()
	if err != nil || !empty.Empty() {
		t.Fatalf("empty chain: %q, %v", empty, err)
	}
	if ds, err := empty.Derivations(); err != nil || ds != nil {
		t.Fatalf("empty chain decode: %v, %v", ds, err)
	}
	if _, err := NewChain(MalleableFraction(7)); err == nil {
		t.Fatal("invalid derivation encoded")
	}
	if _, err := Chain("{not json").Derivations(); err == nil {
		t.Fatal("malformed chain decoded")
	}
	pre, err := chain.Prepend(MalleableFraction(1))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := pre.Derivations()
	if err != nil || len(ds) != 4 || ds[0].Fraction != 1 {
		t.Fatalf("prepend: %+v, %v", ds, err)
	}
}

func TestCacheGeneratesOnceAndShares(t *testing.T) {
	c := NewCache(8)
	a, err := c.Get("wl5", 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get("wl5", 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("repeated Get returned distinct specs")
	}
	if hits, gens := c.Stats(); hits != 1 || gens != 1 {
		t.Fatalf("stats hits=%d gens=%d, want 1/1", hits, gens)
	}
	// A different key generates again.
	if _, err := c.Get("wl5", 0.1, 43); err != nil {
		t.Fatal(err)
	}
	if _, gens := c.Stats(); gens != 2 {
		t.Fatalf("generations %d, want 2", gens)
	}
	if _, err := c.Get("nope", 0.1, 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, gens := c.Stats(); gens != 2 {
		t.Fatal("failed Get counted as a generation")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(4)
	const goroutines = 16
	var wg sync.WaitGroup
	specs := make([]*Spec, goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			s, err := c.Get("wl3", 0.05, 7)
			if err != nil {
				t.Error(err)
				return
			}
			specs[g] = s
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if specs[g] != specs[0] {
			t.Fatal("concurrent Gets returned distinct specs")
		}
	}
	if _, gens := c.Stats(); gens != 1 {
		t.Fatalf("%d generations for one key under contention, want 1", gens)
	}
}

func TestCacheUncappedRetention(t *testing.T) {
	c := NewCache(0) // retention disabled
	if _, err := c.Get("wl5", 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("wl5", 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if _, gens := c.Stats(); gens != 2 {
		t.Fatalf("retention-free cache generated %d times, want 2", gens)
	}
	if c.Len() != 0 {
		t.Fatalf("retention-free cache holds %d entries", c.Len())
	}
}

// EncodeChain must survive non-finite fractions (JSON cannot carry
// them): the chain round-trips to an invalid derivation that Validate
// rejects, instead of panicking inside a constructor.
func TestEncodeChainNonFiniteFraction(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		chain := EncodeChain([]Derivation{MalleableFraction(f), TagNodes("bigmem", 0.5)})
		derivs, err := chain.Derivations()
		if err != nil {
			t.Fatalf("fraction %v: chain undecodable: %v", f, err)
		}
		if len(derivs) != 2 {
			t.Fatalf("fraction %v: %d derivations", f, len(derivs))
		}
		if derivs[0].Validate() == nil {
			t.Fatalf("fraction %v encoded to a valid derivation %+v", f, derivs[0])
		}
		if derivs[1] != TagNodes("bigmem", 0.5) {
			t.Fatalf("fraction %v: finite sibling rewritten: %+v", f, derivs[1])
		}
	}
}
