package workload

import (
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"

	"sdpolicy/internal/job"
)

func TestDerivationValidate(t *testing.T) {
	valid := []Derivation{
		MalleableFraction(0),
		MalleableFraction(1),
		TagNodes("bigmem", 0.5),
		RequireFeature("bigmem", 0.25),
	}
	for _, d := range valid {
		if err := d.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", d, err)
		}
	}
	invalid := []Derivation{
		{},
		{Op: "shrink_jobs", Fraction: 0.5},
		MalleableFraction(-0.1),
		MalleableFraction(1.5),
		MalleableFraction(math.NaN()),
		TagNodes("", 0.5),
		RequireFeature("", 0.5),
		{Op: OpMalleableFraction, Fraction: 0.5, Feature: "bigmem"},
	}
	for _, d := range invalid {
		if err := d.Validate(); err == nil {
			t.Errorf("%+v accepted", d)
		}
	}
}

// TestDeriveDoesNotMutateBase is the copy-on-write contract: deriving a
// variant must leave the shared base — including every slice and map it
// owns — bit-identical, or the generation cache would leak one
// variant's edits into every later consumer of the base.
func TestDeriveDoesNotMutateBase(t *testing.T) {
	// wl1 at this scale has a 102-node machine, so the %100 striping
	// actually distinguishes tagged from untagged nodes.
	base := WL1(0.1, 1)
	// Give the base pre-existing features so aliasing on the inner
	// slices is exercised, not just on the containers.
	base.NodeFeatures = map[int][]string{0: {"gpu"}}
	base.Jobs[0].Features = []string{"gpu"}
	snapshot, err := json.Marshal(&base)
	if err != nil {
		t.Fatal(err)
	}

	derived, err := Derive(&base, []Derivation{
		MalleableFraction(0.5),
		TagNodes("bigmem", 0.5),
		RequireFeature("bigmem", 0.3),
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := json.Marshal(&base)
	if err != nil {
		t.Fatal(err)
	}
	if string(snapshot) != string(after) {
		t.Fatal("Derive mutated the base spec")
	}
	if derived == &base {
		t.Fatal("non-empty chain returned the base itself")
	}
	if err := derived.Validate(); err != nil {
		t.Fatalf("derived spec invalid: %v", err)
	}

	// The variant must actually differ in the derived direction.
	mall := 0
	constrained := 0
	for i := range derived.Jobs {
		if derived.Jobs[i].Kind == job.Malleable {
			mall++
		}
		for _, f := range derived.Jobs[i].Features {
			if f == "bigmem" {
				constrained++
				break
			}
		}
	}
	frac := float64(mall) / float64(len(derived.Jobs))
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("derived malleable fraction %.2f, want 0.5", frac)
	}
	if cfrac := float64(constrained) / float64(len(derived.Jobs)); math.Abs(cfrac-0.3) > 0.05 {
		t.Fatalf("constrained fraction %.2f, want 0.3", cfrac)
	}
	tagged := 0
	for _, feats := range derived.NodeFeatures {
		for _, f := range feats {
			if f == "bigmem" {
				tagged++
				break
			}
		}
	}
	if tfrac := float64(tagged) / float64(derived.Cluster.Nodes); math.Abs(tfrac-0.5) > 0.06 {
		t.Fatalf("tagged node fraction %.2f, want 0.5", tfrac)
	}
	// Pre-existing node features must survive on the derived copy.
	if got := derived.NodeFeatures[0]; len(got) == 0 || got[0] != "gpu" {
		t.Fatalf("derived lost pre-existing node features: %v", got)
	}
}

func TestDeriveEmptyChainSharesBase(t *testing.T) {
	base := WL1(0.05, 1)
	derived, err := Derive(&base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if derived != &base {
		t.Fatal("empty chain should return the base spec unchanged")
	}
}

func TestDeriveRejectsInvalidDerivations(t *testing.T) {
	base := WL1(0.05, 1)
	if _, err := Derive(&base, []Derivation{MalleableFraction(2)}); err == nil {
		t.Fatal("out-of-range fraction accepted")
	}
	if _, err := Derive(&base, []Derivation{{Op: "bogus"}}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// TestDeriveIsStable: deriving the same chain from a regenerated base
// flags exactly the same jobs — the property campaign memoisation
// relies on.
func TestDeriveIsStable(t *testing.T) {
	for _, name := range Names() {
		base, err := ByName(name, 0.05, 3)
		if err != nil {
			t.Fatal(err)
		}
		derived, err := Derive(&base, []Derivation{MalleableFraction(0.37)})
		if err != nil {
			t.Fatal(err)
		}
		again, err := ByName(name, 0.05, 3)
		if err != nil {
			t.Fatal(err)
		}
		rederived, err := Derive(&again, []Derivation{MalleableFraction(0.37)})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(derived.Jobs, rederived.Jobs) {
			t.Fatalf("%s: derived jobs differ between regenerated bases", name)
		}
	}
}

func TestChainRoundTrip(t *testing.T) {
	derivs := []Derivation{
		MalleableFraction(0.5),
		TagNodes("bigmem", 0.5),
		RequireFeature("bigmem", 0.25),
	}
	chain, err := NewChain(derivs...)
	if err != nil {
		t.Fatal(err)
	}
	back, err := chain.Derivations()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(derivs, back) {
		t.Fatalf("round trip: %+v != %+v", back, derivs)
	}
	// Canonical: re-encoding the decoded list reproduces the chain.
	if re := EncodeChain(back); re != chain {
		t.Fatalf("re-encode %q != %q", re, chain)
	}
	empty, err := NewChain()
	if err != nil || !empty.Empty() {
		t.Fatalf("empty chain: %q, %v", empty, err)
	}
	if ds, err := empty.Derivations(); err != nil || ds != nil {
		t.Fatalf("empty chain decode: %v, %v", ds, err)
	}
	if _, err := NewChain(MalleableFraction(7)); err == nil {
		t.Fatal("invalid derivation encoded")
	}
	if _, err := Chain("{not json").Derivations(); err == nil {
		t.Fatal("malformed chain decoded")
	}
	pre, err := chain.Prepend(MalleableFraction(1))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := pre.Derivations()
	if err != nil || len(ds) != 4 || ds[0].Fraction != 1 {
		t.Fatalf("prepend: %+v, %v", ds, err)
	}
}

func TestCacheGeneratesOnceAndShares(t *testing.T) {
	c := NewCache(8)
	a, err := c.Get("wl5", 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get("wl5", 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("repeated Get returned distinct specs")
	}
	if hits, gens := c.Stats(); hits != 1 || gens != 1 {
		t.Fatalf("stats hits=%d gens=%d, want 1/1", hits, gens)
	}
	// A different key generates again.
	if _, err := c.Get("wl5", 0.1, 43); err != nil {
		t.Fatal(err)
	}
	if _, gens := c.Stats(); gens != 2 {
		t.Fatalf("generations %d, want 2", gens)
	}
	if _, err := c.Get("nope", 0.1, 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, gens := c.Stats(); gens != 2 {
		t.Fatal("failed Get counted as a generation")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(4)
	const goroutines = 16
	var wg sync.WaitGroup
	specs := make([]*Spec, goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			s, err := c.Get("wl3", 0.05, 7)
			if err != nil {
				t.Error(err)
				return
			}
			specs[g] = s
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if specs[g] != specs[0] {
			t.Fatal("concurrent Gets returned distinct specs")
		}
	}
	if _, gens := c.Stats(); gens != 1 {
		t.Fatalf("%d generations for one key under contention, want 1", gens)
	}
}

func TestCacheUncappedRetention(t *testing.T) {
	c := NewCache(0) // retention disabled
	if _, err := c.Get("wl5", 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("wl5", 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if _, gens := c.Stats(); gens != 2 {
		t.Fatalf("retention-free cache generated %d times, want 2", gens)
	}
	if c.Len() != 0 {
		t.Fatalf("retention-free cache holds %d entries", c.Len())
	}
}

// EncodeChain must survive non-finite fractions (JSON cannot carry
// them): the chain round-trips to an invalid derivation that Validate
// rejects, instead of panicking inside a constructor.
func TestEncodeChainNonFiniteFraction(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		chain := EncodeChain([]Derivation{MalleableFraction(f), TagNodes("bigmem", 0.5)})
		derivs, err := chain.Derivations()
		if err != nil {
			t.Fatalf("fraction %v: chain undecodable: %v", f, err)
		}
		if len(derivs) != 2 {
			t.Fatalf("fraction %v: %d derivations", f, len(derivs))
		}
		if derivs[0].Validate() == nil {
			t.Fatalf("fraction %v encoded to a valid derivation %+v", f, derivs[0])
		}
		if derivs[1] != TagNodes("bigmem", 0.5) {
			t.Fatalf("fraction %v: finite sibling rewritten: %+v", f, derivs[1])
		}
	}
}

func TestScenarioDerivationValidate(t *testing.T) {
	valid := []Derivation{
		ScaleLoad(1.5),
		ScaleLoad(0.25),
		ShiftArrivals(3600, 0),
		ShiftArrivals(-3600, 0),
		ShiftArrivals(0, 60),
		ShiftArrivals(43200, 300),
		AssignQoS("gold", 0.5),
		AssignQoS("gold", 0),
	}
	for _, d := range valid {
		if err := d.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", d, err)
		}
	}
	invalid := []Derivation{
		ScaleLoad(0),
		ScaleLoad(-1),
		ScaleLoad(math.Inf(1)),
		ScaleLoad(math.NaN()),
		ShiftArrivals(0, 0), // no-op
		ShiftArrivals(86400, 0),
		ShiftArrivals(-86400, 0),
		ShiftArrivals(60, -1),
		AssignQoS("", 0.5),
		AssignQoS("gold", 1.5),
		// One op, one shape: fields another op owns must stay zero, or
		// one operation would have several canonical encodings (and
		// therefore several cache keys).
		{Op: OpScaleLoad, Factor: 2, Fraction: 0.5},
		{Op: OpScaleLoad, Factor: 2, Class: "gold"},
		{Op: OpShiftArrivals, Shift: 60, Factor: 2},
		{Op: OpShiftArrivals, Shift: 60, Feature: "bigmem"},
		{Op: OpAssignQoS, Class: "gold", Fraction: 0.5, Shift: 60},
		{Op: OpMalleableFraction, Fraction: 0.5, Factor: 2},
		{Op: OpTagNodes, Fraction: 0.5, Feature: "bigmem", Burst: 60},
	}
	for _, d := range invalid {
		if err := d.Validate(); err == nil {
			t.Errorf("%+v accepted", d)
		}
	}
}

func TestScaleLoadCompressesArrivals(t *testing.T) {
	base := WL1(0.1, 1)
	derived, err := Derive(&base, []Derivation{ScaleLoad(2)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range derived.Jobs {
		want := int64(float64(base.Jobs[i].Submit) / 2)
		if derived.Jobs[i].Submit != want {
			t.Fatalf("job %d submit %d, want %d", i, derived.Jobs[i].Submit, want)
		}
	}
	if err := derived.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShiftArrivalsRotatesAndBursts(t *testing.T) {
	base := WL1(0.1, 1)
	derived, err := Derive(&base, []Derivation{ShiftArrivals(3600, 300)})
	if err != nil {
		t.Fatal(err)
	}
	// The stream must come back monotonic with dense submit-order ids —
	// rotation wraps some submits across day boundaries.
	if err := derived.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, j := range derived.Jobs {
		if j.Submit%300 != 0 {
			t.Fatalf("job %d submit %d not on the 300s burst quantum", i, j.Submit)
		}
	}
	// Every derived submit is some base submit rotated then quantised.
	want := map[int64]int{}
	for _, j := range base.Jobs {
		day, tod := j.Submit/86400, (j.Submit%86400+3600)%86400
		want[(day*86400+tod)/300*300]++
	}
	got := map[int64]int{}
	for _, j := range derived.Jobs {
		got[j.Submit]++
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("derived submits are not the rotated+quantised base submits")
	}
}

func TestAssignQoSStripes(t *testing.T) {
	base := WL1(0.1, 1)
	derived, err := Derive(&base, []Derivation{AssignQoS("gold", 0.3)})
	if err != nil {
		t.Fatal(err)
	}
	tagged := 0
	for i, j := range derived.Jobs {
		if j.Queue == "gold" {
			tagged++
		} else if j.Queue != base.Jobs[i].Queue {
			t.Fatalf("job %d queue %q neither tagged nor untouched", i, j.Queue)
		}
	}
	want := 0
	for i := range derived.Jobs {
		if float64(i%100) < 30 {
			want++
		}
	}
	if tagged != want {
		t.Fatalf("tagged %d jobs, want %d", tagged, want)
	}
}

// TestScenarioChainOrderCanonical: the chain encoding is byte-stable
// for a given op order and distinct across orders — order is semantic,
// so reordering must produce a different cache identity.
func TestScenarioChainOrderCanonical(t *testing.T) {
	a, err := NewChain(ScaleLoad(1.5), MalleableFraction(0.3), AssignQoS("gold", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChain(ScaleLoad(1.5), MalleableFraction(0.3), AssignQoS("gold", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same chain encoded differently: %q vs %q", a, b)
	}
	c, err := NewChain(MalleableFraction(0.3), ScaleLoad(1.5), AssignQoS("gold", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("reordered chain shares an encoding")
	}
	derivs, err := a.Derivations()
	if err != nil {
		t.Fatal(err)
	}
	if again := EncodeChain(derivs); again != a {
		t.Fatalf("chain not a round-trip fixpoint: %q vs %q", again, a)
	}
}

// TestScenarioDeriveVsRecompile: deriving a scenario twice — from two
// independently regenerated bases — must yield identical job streams,
// byte for byte once encoded. This is what lets a derived trace
// scenario shard and memoise across processes.
func TestScenarioDeriveVsRecompile(t *testing.T) {
	derivs := []Derivation{ScaleLoad(1.5), MalleableFraction(0.3), AssignQoS("gold", 0.5)}
	b1 := WL1(0.1, 1)
	b2 := WL1(0.1, 1)
	d1, err := Derive(&b1, derivs)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Derive(&b2, derivs)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(d1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j1, j2) {
		t.Fatal("derive is not reproducible across regenerated bases")
	}
}
