package workload

import (
	"sync"
	"sync/atomic"

	"sdpolicy/internal/lru"
)

// Key identifies one generated preset workload: the inputs that fully
// determine its Spec (generators are deterministic in them).
type Key struct {
	Name  string
	Scale float64
	Seed  uint64
}

// genCall is one in-flight generation that duplicate requests join.
type genCall struct {
	done chan struct{}
	spec *Spec
	err  error
}

// Cache memoises generated workload Specs keyed by (name, scale, seed).
// Specs returned by Get are shared across callers and must be treated
// as immutable — variants are expressed as Derivations applied via
// Derive, which copies on write. Concurrent Gets of the same key join a
// single generation (singleflight), so a k-variant ablation campaign
// generates its base workload exactly once no matter how many workers
// request it simultaneously.
type Cache struct {
	lru *lru.Cache[Key, *Spec]

	mu       sync.Mutex
	inflight map[Key]*genCall

	hits atomic.Uint64
	gens atomic.Uint64
}

// NewCache returns a cache holding at most capacity generated specs.
// capacity <= 0 disables retention: every Get still coalesces
// concurrent duplicates but regenerates once they drain.
func NewCache(capacity int) *Cache {
	var l *lru.Cache[Key, *Spec]
	if capacity > 0 {
		l = lru.New[Key, *Spec](capacity)
	}
	return &Cache{lru: l, inflight: make(map[Key]*genCall)}
}

// Shared is the process-wide generation cache backing sdpolicy's
// NewWorkload and every campaign point. Its capacity bounds resident
// generated workloads, not derived variants (those are per-simulation
// copies that die with the run).
var Shared = NewCache(16)

// Get returns the generated Spec for the preset, serving repeats from
// the cache and coalescing concurrent generations of the same key. The
// returned Spec is shared: callers must not mutate it (use Derive).
// Trace refs ("trace:<digest>") resolve through the process-wide trace
// registry instead of a generator: the Spec was compiled once at
// registration, so every lookup is a hit and scale/seed are ignored
// (trace content is fully determined by the digest).
func (c *Cache) Get(name string, scale float64, seed uint64) (*Spec, error) {
	if IsTraceRef(name) {
		s, err := Traces.Get(TraceDigest(name))
		if err != nil {
			return nil, err
		}
		c.hits.Add(1)
		return s, nil
	}
	k := Key{Name: name, Scale: scale, Seed: seed}
	if s, ok := c.lru.Get(k); ok {
		c.hits.Add(1)
		return s, nil
	}
	c.mu.Lock()
	// Re-check under the lock: a generation that completed between the
	// miss above and acquiring mu has already left inflight, and only
	// the LRU knows about it.
	if s, ok := c.lru.Get(k); ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return s, nil
	}
	if call, ok := c.inflight[k]; ok {
		c.mu.Unlock()
		<-call.done
		if call.err == nil {
			c.hits.Add(1)
		}
		return call.spec, call.err
	}
	call := &genCall{done: make(chan struct{})}
	c.inflight[k] = call
	c.mu.Unlock()

	spec, err := ByName(name, scale, seed)
	if err == nil {
		c.gens.Add(1)
		call.spec = &spec
		c.lru.Add(k, call.spec)
	}
	call.err = err
	c.mu.Lock()
	delete(c.inflight, k)
	c.mu.Unlock()
	close(call.done)
	return call.spec, call.err
}

// Stats returns how many Gets were served from the cache (or joined an
// in-flight generation) versus how many invoked a generator. The
// generation count is what derivation-based campaigns drive to one per
// base workload; tests assert on its deltas.
func (c *Cache) Stats() (hits, generations uint64) {
	return c.hits.Load(), c.gens.Load()
}

// Len returns the number of retained specs.
func (c *Cache) Len() int { return c.lru.Len() }
