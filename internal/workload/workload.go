// Package workload builds the five evaluation workloads of the paper
// (Table 1): synthetic re-implementations of the Cirne-Berman
// supercomputer workload model with the ANL daily arrival pattern, plus
// RICC-like and CEA-Curie-like trace generators matching the published
// characterisation of those logs, and the real-run application workload
// of Table 2.
//
// The real RICC and CEA-Curie SWF logs are proprietary downloads; these
// generators are the documented substitution (see DESIGN.md §4). All
// generators are fully deterministic given their seed.
package workload

import (
	"fmt"
	"math"
	"sort"

	"sdpolicy/internal/apps"
	"sdpolicy/internal/cluster"
	"sdpolicy/internal/job"
	"sdpolicy/internal/stats"
)

// Spec is a complete simulation input: a machine and its job stream.
type Spec struct {
	Name    string
	Cluster cluster.Config
	Jobs    []job.Job
	// NodeFeatures optionally tags nodes with attribute strings
	// (heterogeneous machines); the simulator applies them before
	// scheduling starts.
	NodeFeatures map[int][]string
}

// Validate reports the first structural problem: invalid job records,
// submissions out of order, or jobs larger than the machine.
func (s *Spec) Validate() error {
	if err := s.Cluster.Validate(); err != nil {
		return err
	}
	var prev int64
	for i := range s.Jobs {
		j := &s.Jobs[i]
		if err := j.Validate(); err != nil {
			return err
		}
		if j.Submit < prev {
			return fmt.Errorf("workload %s: job %d submitted before its predecessor", s.Name, j.ID)
		}
		prev = j.Submit
		if j.ReqNodes > s.Cluster.Nodes {
			return fmt.Errorf("workload %s: job %d requests %d of %d nodes",
				s.Name, j.ID, j.ReqNodes, s.Cluster.Nodes)
		}
	}
	for nd := range s.NodeFeatures {
		if nd < 0 || nd >= s.Cluster.Nodes {
			return fmt.Errorf("workload %s: features on unknown node %d", s.Name, nd)
		}
	}
	return nil
}

// TotalWork returns the node-seconds of static work in the stream.
func (s *Spec) TotalWork() float64 {
	var w float64
	for i := range s.Jobs {
		w += float64(s.Jobs[i].ReqNodes) * float64(s.Jobs[i].ActualTime)
	}
	return w
}

// anlHourWeights is the two-peak working-hours arrival modulation of the
// ANL pattern the paper configures the Cirne model with: quiet nights,
// a morning ramp, lunchtime dip and afternoon peak. Mean is ~1.
var anlHourWeights = [24]float64{
	0.38, 0.32, 0.30, 0.30, 0.32, 0.40,
	0.60, 0.95, 1.40, 1.70, 1.80, 1.65,
	1.45, 1.60, 1.80, 1.80, 1.70, 1.50,
	1.15, 0.95, 0.80, 0.70, 0.58, 0.45,
}

// Params drives the generic synthetic generator underlying all Table 1
// workloads.
type Params struct {
	Name  string
	Jobs  int
	Seed  uint64
	Nodes int // machine size
	// Size distribution.
	MaxNodes   int     // largest request
	SerialProb float64 // probability of a single-node job
	Power2Prob float64 // probability a multi-node size snaps to a power of two
	SizeAlpha  float64 // bounded-Pareto tail index for multi-node sizes
	// Runtime distribution: lognormal, clamped to [MinRuntime, MaxRuntime].
	RunMu, RunSigma        float64
	MinRuntime, MaxRuntime int64
	// Request accuracy: probability the user request is exact, and the
	// range of actual/requested ratios otherwise.
	ExactReqProb  float64
	MinAccuracy   float64
	ExactRequests bool // WL2: every request equals the runtime
	MaxRequest    int64
	// Load is the offered utilisation (work / capacity·span) the arrival
	// rate is tuned to.
	Load float64
	// MalleableFrac is the fraction of jobs flagged malleable; the rest
	// are rigid.
	MalleableFrac float64
}

func (p Params) validate() error {
	switch {
	case p.Jobs <= 0:
		return fmt.Errorf("workload: non-positive job count %d", p.Jobs)
	case p.MaxNodes <= 0 || p.MaxNodes > p.Nodes:
		return fmt.Errorf("workload: max job size %d out of (0,%d]", p.MaxNodes, p.Nodes)
	case p.Load <= 0:
		return fmt.Errorf("workload: non-positive load %v", p.Load)
	case p.MinRuntime <= 0 || p.MaxRuntime < p.MinRuntime:
		return fmt.Errorf("workload: bad runtime clamp [%d,%d]", p.MinRuntime, p.MaxRuntime)
	case p.MalleableFrac < 0 || p.MalleableFrac > 1:
		return fmt.Errorf("workload: malleable fraction %v out of [0,1]", p.MalleableFrac)
	}
	return nil
}

// Generate builds a workload from the parameters on the given machine
// configuration.
func Generate(cfg cluster.Config, p Params) Spec {
	if p.Nodes == 0 {
		p.Nodes = cfg.Nodes
	}
	if err := p.validate(); err != nil {
		panic(err)
	}
	rng := stats.NewRNG(p.Seed, 0x5d0) // second word fixed: one stream per seed
	jobs := make([]job.Job, p.Jobs)

	// Draw sizes and runtimes first so the arrival rate can be tuned to
	// the requested offered load.
	var work float64
	for i := range jobs {
		nodes := drawSize(rng, p)
		actual := drawRuntime(rng, p)
		req := actual
		if !p.ExactRequests && !rng.Bernoulli(p.ExactReqProb) {
			// Users overestimate: actual = req * u with u in
			// [MinAccuracy, 1).
			u := rng.Uniform(p.MinAccuracy, 1)
			req = int64(math.Ceil(float64(actual) / u))
		}
		if p.MaxRequest > 0 && req > p.MaxRequest {
			req = p.MaxRequest
			if actual > req {
				actual = req
			}
		}
		kind := job.Rigid
		if rng.Bernoulli(p.MalleableFrac) {
			kind = job.Malleable
		}
		jobs[i] = job.Job{
			ID: job.ID(i + 1), ReqTime: req, ActualTime: actual,
			ReqNodes: nodes, TasksPerNode: 1, Kind: kind,
		}
		work += float64(nodes) * float64(actual)
	}

	// Arrival process: exponential gaps modulated by the ANL daily
	// cycle, with the base rate set so offered work fills Load of the
	// machine over the submission span. Because long night gaps make the
	// process spend disproportionate wall time in low-rate hours, the raw
	// series is rescaled onto the intended span so the offered load is
	// met exactly.
	span := work / (float64(cfg.Nodes) * p.Load)
	meanGap := span / float64(p.Jobs)
	raw := make([]float64, p.Jobs)
	var t float64
	for i := range raw {
		hour := int(t/3600) % 24
		gap := rng.Exponential(meanGap) / anlHourWeights[hour]
		t += gap
		raw[i] = t
	}
	factor := 1.0
	if t > 0 {
		factor = span / t
	}
	for i := range jobs {
		jobs[i].Submit = int64(raw[i] * factor)
	}

	spec := Spec{Name: p.Name, Cluster: cfg, Jobs: jobs}
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return spec
}

func drawSize(rng *stats.RNG, p Params) int {
	if rng.Bernoulli(p.SerialProb) || p.MaxNodes == 1 {
		return 1
	}
	if p.MaxNodes <= 2 {
		return p.MaxNodes
	}
	alpha := p.SizeAlpha
	if alpha <= 0 {
		alpha = 1.0
	}
	n := int(rng.Pareto(alpha, 2, float64(p.MaxNodes)))
	if rng.Bernoulli(p.Power2Prob) {
		// snap to the nearest power of two within bounds
		exp := math.Round(math.Log2(float64(n)))
		n = int(math.Pow(2, exp))
	}
	if n < 2 {
		n = 2
	}
	if n > p.MaxNodes {
		n = p.MaxNodes
	}
	return n
}

func drawRuntime(rng *stats.RNG, p Params) int64 {
	r := int64(rng.LogNormal(p.RunMu, p.RunSigma))
	if r < p.MinRuntime {
		r = p.MinRuntime
	}
	if r > p.MaxRuntime {
		r = p.MaxRuntime
	}
	return r
}

func scaleCount(n int, scale float64) int {
	s := int(float64(n) * scale)
	if s < 1 {
		s = 1
	}
	return s
}

// WL1 is workload 1 of Table 1: the Cirne model scaled to a 1024-node,
// 48-core machine, 5000 jobs, largest job 128 nodes. scale in (0,1]
// shrinks both the machine and the job count for faster experiments.
func WL1(scale float64, seed uint64) Spec {
	cfg := cluster.Config{Nodes: scaleCount(1024, scale), Sockets: 2, CoresPerSocket: 24}
	return Generate(cfg, Params{
		Name: "wl1-cirne", Jobs: scaleCount(5000, scale), Seed: seed,
		Nodes:    cfg.Nodes,
		MaxNodes: minInt(scaleCount(128, scale), cfg.Nodes), SerialProb: 0.30,
		Power2Prob: 0.75, SizeAlpha: 0.9,
		RunMu: 6.4, RunSigma: 2.5, MinRuntime: 15, MaxRuntime: 2 * 86400,
		ExactReqProb: 0.15, MinAccuracy: 0.08, MaxRequest: 3 * 86400,
		Load: 2.2, MalleableFrac: 1.0,
	})
}

// WL2 is workload 2: identical distributions to WL1 but with exact user
// requests (Cirne_ideal).
func WL2(scale float64, seed uint64) Spec {
	cfg := cluster.Config{Nodes: scaleCount(1024, scale), Sockets: 2, CoresPerSocket: 24}
	s := Generate(cfg, Params{
		Name: "wl2-cirne-ideal", Jobs: scaleCount(5000, scale), Seed: seed,
		Nodes:    cfg.Nodes,
		MaxNodes: minInt(scaleCount(128, scale), cfg.Nodes), SerialProb: 0.30,
		Power2Prob: 0.75, SizeAlpha: 0.9,
		RunMu: 6.4, RunSigma: 2.5, MinRuntime: 15, MaxRuntime: 2 * 86400,
		ExactRequests: true,
		Load:          2.2, MalleableFrac: 1.0,
	})
	return s
}

// WL3 is workload 3: a RICC-like trace — a 1024-node, 8-core machine
// dominated by small jobs (≤72 nodes) with runtimes from minutes up to
// four days.
func WL3(scale float64, seed uint64) Spec {
	cfg := cluster.Config{Nodes: scaleCount(1024, scale), Sockets: 2, CoresPerSocket: 4}
	return Generate(cfg, Params{
		Name: "wl3-ricc", Jobs: scaleCount(10000, scale), Seed: seed,
		Nodes:    cfg.Nodes,
		MaxNodes: minInt(scaleCount(72, scale), cfg.Nodes), SerialProb: 0.50,
		Power2Prob: 0.40, SizeAlpha: 1.2,
		RunMu: 6.2, RunSigma: 2.5, MinRuntime: 10, MaxRuntime: 4 * 86400,
		ExactReqProb: 0.10, MinAccuracy: 0.05, MaxRequest: 4 * 86400,
		Load: 1.8, MalleableFrac: 1.0,
	})
}

// WL4 is workload 4: a CEA-Curie-like trace — a 5040-node, 16-core
// machine with 198509 jobs over roughly eight months, heavy-tailed sizes
// up to nearly the full machine.
func WL4(scale float64, seed uint64) Spec {
	cfg := cluster.Config{Nodes: scaleCount(5040, scale), Sockets: 2, CoresPerSocket: 8}
	return Generate(cfg, Params{
		Name: "wl4-curie", Jobs: scaleCount(198509, scale), Seed: seed,
		Nodes:    cfg.Nodes,
		MaxNodes: minInt(scaleCount(4988, scale), cfg.Nodes), SerialProb: 0.45,
		Power2Prob: 0.55, SizeAlpha: 1.4,
		RunMu: 5.6, RunSigma: 2.5, MinRuntime: 10, MaxRuntime: 3 * 86400,
		ExactReqProb: 0.12, MinAccuracy: 0.05, MaxRequest: 3 * 86400,
		Load: 1.1, MalleableFrac: 1.0,
	})
}

// WL5 is workload 5: the real-run workload — the Cirne model converted
// to submissions of the Table 2 applications on the 49-node MareNostrum4
// partition (one controller node excluded from computing in the paper;
// here all 49 nodes compute, matching the 2352-core figure).
func WL5(scale float64, seed uint64) Spec {
	cfg := cluster.Config{Nodes: scaleCount(49, scale), Sockets: 2, CoresPerSocket: 24}
	s := Generate(cfg, Params{
		Name: "wl5-realrun", Jobs: scaleCount(2000, scale), Seed: seed,
		Nodes:    cfg.Nodes,
		MaxNodes: minInt(scaleCount(16, scale), cfg.Nodes), SerialProb: 0.35,
		Power2Prob: 0.70, SizeAlpha: 1.0,
		RunMu: 5.2, RunSigma: 2.2, MinRuntime: 15, MaxRuntime: 12 * 3600,
		ExactReqProb: 0.20, MinAccuracy: 0.15, MaxRequest: 24 * 3600,
		Load: 2.2, MalleableFrac: 1.0,
	})
	assignApps(&s, seed)
	return s
}

// assignApps distributes the Table 2 application classes over the jobs.
func assignApps(s *Spec, seed uint64) {
	rng := stats.NewRNG(seed, 0xA995)
	mix := apps.Table2Mix()
	weights := make([]float64, len(mix))
	for i, m := range mix {
		weights[i] = m.Share
	}
	for i := range s.Jobs {
		s.Jobs[i].App = mix[rng.Categorical(weights)].App
	}
}

// ByName returns the preset workload with the given Table 1 id
// ("wl1".."wl5").
func ByName(name string, scale float64, seed uint64) (Spec, error) {
	switch name {
	case "wl1":
		return WL1(scale, seed), nil
	case "wl2":
		return WL2(scale, seed), nil
	case "wl3":
		return WL3(scale, seed), nil
	case "wl4":
		return WL4(scale, seed), nil
	case "wl5":
		return WL5(scale, seed), nil
	}
	return Spec{}, fmt.Errorf("workload: unknown preset %q", name)
}

// Names lists the preset ids in Table 1 order.
func Names() []string { return []string{"wl1", "wl2", "wl3", "wl4", "wl5"} }

// AppCounts tallies jobs per application class, for the Table 2 report.
func AppCounts(s *Spec) map[job.AppClass]int {
	out := map[job.AppClass]int{}
	for i := range s.Jobs {
		out[s.Jobs[i].App]++
	}
	return out
}

// SortBySubmit orders jobs by submission time (stable), reassigning
// dense ids; generators already emit sorted streams, this is for jobs
// loaded from SWF files.
func SortBySubmit(jobs []job.Job) {
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit })
	for i := range jobs {
		jobs[i].ID = job.ID(i + 1)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
