package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"sdpolicy/internal/cluster"
	"sdpolicy/internal/job"
	"sdpolicy/internal/swf"
)

// TracePrefix marks trace-backed workload names: a registered SWF
// trace is addressable everywhere a generator preset is — point wire
// forms, cache keys, the /v1/workloads API — as "trace:<digest>".
const TracePrefix = "trace:"

// IsTraceRef reports whether name addresses a registered trace rather
// than a named generator.
func IsTraceRef(name string) bool {
	return len(name) > len(TracePrefix) && name[:len(TracePrefix)] == TracePrefix
}

// TraceDigest extracts the digest from a trace ref; "" if name is not
// one.
func TraceDigest(name string) string {
	if !IsTraceRef(name) {
		return ""
	}
	return name[len(TracePrefix):]
}

// TraceConfig overrides the machine geometry inferred from an SWF
// header. Zero fields defer to the header (MaxNodes / MaxProcs /
// CoresPerNode comments); a trace declaring neither gets a single-core
// node per processor.
type TraceConfig struct {
	Nodes          int
	Sockets        int
	CoresPerSocket int
}

// traceDigestVersion versions the digest preimage: bump it whenever
// FromTrace's normalisation changes observable job streams, so stale
// refs miss instead of silently resolving to different content.
const traceDigestVersion = "sdpolicy-trace-v1"

// FromTrace compiles an SWF log into an immutable validated Spec named
// by its deterministic content digest. Normalisation: statuses are
// irrelevant to the simulator and ignored beyond record filtering;
// negative submits with a preceding-job/think-time dependency resolve
// to the predecessor's completion plus the think time; remaining
// unusable records are dropped; submits are stably sorted and shifted
// so the stream starts at 0. The digest covers the normalised machine
// and job stream — not the raw bytes — so the same logical trace
// reached through different headers or field orderings is one cache
// entry, while any content difference is a different ref.
func FromTrace(data []byte, cfg TraceConfig) (*Spec, string, error) {
	recs, hdr, err := swf.ParseWithHeader(bytes.NewReader(data))
	if err != nil {
		return nil, "", err
	}
	if len(recs) == 0 {
		return nil, "", fmt.Errorf("workload: trace has no job records")
	}

	// Machine geometry: explicit override, then header, then the
	// 1-core-per-proc fallback.
	cpn := 0
	sockets := cfg.Sockets
	if sockets <= 0 {
		sockets = 1
	}
	if cfg.Sockets > 0 && cfg.CoresPerSocket > 0 {
		cpn = cfg.Sockets * cfg.CoresPerSocket
	} else if hdr.CoresPerNode > 0 {
		cpn = hdr.CoresPerNode
	} else if hdr.MaxNodes > 0 && hdr.MaxProcs >= hdr.MaxNodes {
		cpn = hdr.MaxProcs / hdr.MaxNodes
	}
	if cpn <= 0 {
		cpn = 1
	}
	cps := cpn / sockets
	if cps <= 0 {
		sockets, cps = 1, cpn
	}

	// Dependent submits: a negative SubmitTime with PrecedingJob +
	// ThinkTime set means "this much after the predecessor finished"
	// (SWF definition). Resolve against the predecessor's record; an
	// unresolvable dependency leaves the record unusable and ToJobs
	// drops it.
	byNumber := make(map[int64]*swf.Record, len(recs))
	for i := range recs {
		byNumber[recs[i].JobNumber] = &recs[i]
	}
	for i := range recs {
		r := &recs[i]
		if r.Status < -1 || r.Status > 5 {
			r.Status = -1
		}
		if r.SubmitTime >= 0 || r.PrecedingJob <= 0 || r.ThinkTime < 0 {
			continue
		}
		if prev, ok := byNumber[r.PrecedingJob]; ok && prev.SubmitTime >= 0 {
			end := prev.SubmitTime + r.ThinkTime
			if prev.WaitTime > 0 {
				end += prev.WaitTime
			}
			if prev.RunTime > 0 {
				end += prev.RunTime
			}
			r.SubmitTime = end
		}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].SubmitTime < recs[j].SubmitTime })

	jobs := swf.ToJobs(recs, cpn, job.Malleable)
	if len(jobs) == 0 {
		return nil, "", fmt.Errorf("workload: trace has no usable job records")
	}
	// Monotonic submits starting at 0, dense ids.
	base := jobs[0].Submit
	for i := range jobs {
		jobs[i].Submit -= base
	}

	nodes := cfg.Nodes
	if nodes <= 0 {
		nodes = hdr.MaxNodes
	}
	if nodes <= 0 && hdr.MaxProcs > 0 {
		nodes = (hdr.MaxProcs + cpn - 1) / cpn
	}
	for i := range jobs {
		if jobs[i].ReqNodes > nodes {
			nodes = jobs[i].ReqNodes
		}
	}

	spec := &Spec{
		Cluster: cluster.Config{Nodes: nodes, Sockets: sockets, CoresPerSocket: cps},
		Jobs:    jobs,
	}
	spec.Name = TracePrefix + digestSpec(spec)
	if err := spec.Validate(); err != nil {
		return nil, "", fmt.Errorf("workload: compiled trace invalid: %w", err)
	}
	return spec, TraceDigest(spec.Name), nil
}

// digestSpec hashes the normalised content that determines simulation
// behaviour. The Name is excluded (it is derived from this digest).
func digestSpec(s *Spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", traceDigestVersion)
	fmt.Fprintf(h, "cluster %d %d %d\n", s.Cluster.Nodes, s.Cluster.Sockets, s.Cluster.CoresPerSocket)
	for i := range s.Jobs {
		j := &s.Jobs[i]
		fmt.Fprintf(h, "%d %d %d %d %d %d %d\n",
			j.ID, j.Submit, j.ReqTime, j.ActualTime, int64(j.ReqNodes),
			int64(j.TasksPerNode), int64(j.Kind))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// TraceInfo describes one registered trace for listings.
type TraceInfo struct {
	Digest string `json:"digest"`
	Ref    string `json:"ref"`
	Source string `json:"source,omitempty"`
	Jobs   int    `json:"jobs"`
	Nodes  int    `json:"nodes"`
	Cores  int    `json:"cores"`
}

// TraceRegistry maps content digests to compiled trace Specs. Both
// tiers hold one: sdexp/sdserve register traces at startup (-trace,
// -trace-dir), and campaign fan-out resolves trace points by digest —
// a worker that was not given the trace fails the point with an
// unknown-digest error instead of guessing.
type TraceRegistry struct {
	mu    sync.RWMutex
	specs map[string]*Spec
	infos map[string]TraceInfo
}

// Traces is the process-wide trace registry backing the Shared
// generation cache's trace refs.
var Traces = &TraceRegistry{}

// Register compiles the SWF bytes and registers the Spec under its
// digest, returning the info record. Registration is idempotent: the
// same content registers once regardless of source label (the first
// source wins).
func (t *TraceRegistry) Register(data []byte, cfg TraceConfig, source string) (TraceInfo, error) {
	spec, digest, err := FromTrace(data, cfg)
	if err != nil {
		return TraceInfo{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if info, ok := t.infos[digest]; ok {
		return info, nil
	}
	if t.specs == nil {
		t.specs = make(map[string]*Spec)
		t.infos = make(map[string]TraceInfo)
	}
	info := TraceInfo{
		Digest: digest,
		Ref:    TracePrefix + digest,
		Source: source,
		Jobs:   len(spec.Jobs),
		Nodes:  spec.Cluster.Nodes,
		Cores:  spec.Cluster.TotalCores(),
	}
	t.specs[digest] = spec
	t.infos[digest] = info
	return info, nil
}

// Get returns the registered Spec for the digest.
func (t *TraceRegistry) Get(digest string) (*Spec, error) {
	t.mu.RLock()
	spec := t.specs[digest]
	t.mu.RUnlock()
	if spec == nil {
		return nil, fmt.Errorf("workload: unknown trace digest %q (register the SWF with -trace / -trace-dir on every tier)", digest)
	}
	return spec, nil
}

// List returns the registered traces sorted by digest.
func (t *TraceRegistry) List() []TraceInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]TraceInfo, 0, len(t.infos))
	for _, info := range t.infos {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// Info returns the info record for the digest.
func (t *TraceRegistry) Info(digest string) (TraceInfo, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	info, ok := t.infos[digest]
	return info, ok
}
