package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRateIdeal(t *testing.T) {
	// Eq. 5: aggregate fraction. One node full, one node half => 0.75.
	if r := Rate(Ideal, []int{48, 24}, 48, nil); math.Abs(r-0.75) > 1e-12 {
		t.Fatalf("ideal rate %v, want 0.75", r)
	}
	if r := Rate(Ideal, []int{48, 48}, 48, nil); r != 1 {
		t.Fatalf("full allocation rate %v, want 1", r)
	}
	if r := Rate(Ideal, []int{0, 0}, 48, nil); r != 0 {
		t.Fatalf("zero allocation rate %v, want 0", r)
	}
}

func TestRateWorstCase(t *testing.T) {
	// Eq. 6: limited by the most shrunk node.
	if r := Rate(WorstCase, []int{48, 24}, 48, nil); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("worst-case rate %v, want 0.5", r)
	}
	if r := Rate(WorstCase, []int{48, 48, 48}, 48, nil); r != 1 {
		t.Fatalf("full allocation rate %v, want 1", r)
	}
	if r := Rate(WorstCase, []int{48, 0}, 48, nil); r != 0 {
		t.Fatalf("one empty node rate %v, want 0", r)
	}
}

func TestRateApp(t *testing.T) {
	// Speedup saturating at 8 cores: shrinking from 48 to 24 is free.
	sat := func(c int) float64 { return math.Min(float64(c), 8) }
	if r := Rate(App, []int{24}, 48, sat); r != 1 {
		t.Fatalf("saturated app rate %v, want 1", r)
	}
	lin := func(c int) float64 { return float64(c) }
	if r := Rate(App, []int{24}, 48, lin); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("linear app rate %v, want 0.5", r)
	}
	if r := Rate(App, []int{0, 24}, 48, lin); r != 0 {
		t.Fatalf("zero-share app rate %v, want 0", r)
	}
}

func TestRatePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero full", func() { Rate(Ideal, []int{1}, 0, nil) })
	mustPanic("empty shares", func() { Rate(Ideal, nil, 48, nil) })
	mustPanic("app without speedup", func() { Rate(App, []int{1}, 48, nil) })
	mustPanic("unknown kind", func() { Rate(Kind(9), []int{1}, 48, nil) })
}

// Property: worst-case rate never exceeds ideal rate (Eq. 6 is the lower
// bound of Eq. 5), and both stay within [0, 1].
func TestPropertyWorstLeqIdeal(t *testing.T) {
	f := func(raw []uint8, fullRaw uint8) bool {
		full := int(fullRaw%63) + 1
		if len(raw) == 0 {
			return true
		}
		shares := make([]int, len(raw))
		for i, v := range raw {
			shares[i] = int(v) % (full + 1)
		}
		wi := Rate(Ideal, shares, full, nil)
		ww := Rate(WorstCase, shares, full, nil)
		return ww <= wi+1e-12 && wi >= 0 && wi <= 1 && ww >= 0 && ww <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIncrease(t *testing.T) {
	// Half the cores for the whole life doubles the runtime: the increase
	// equals the original duration (worst-case Eq. 6 with SF 0.5).
	if inc := Increase(3600, 0.5); math.Abs(inc-3600) > 1e-9 {
		t.Fatalf("increase %v, want 3600", inc)
	}
	if inc := Increase(3600, 1); inc != 0 {
		t.Fatalf("full-rate increase %v, want 0", inc)
	}
	if inc := Increase(3600, 0); !math.IsInf(inc, 1) {
		t.Fatalf("zero-rate increase %v, want +Inf", inc)
	}
	if inc := Increase(3600, 2); inc != 0 { // rates above 1 clamp
		t.Fatalf("overclocked increase %v, want 0", inc)
	}
}

func TestMateIncrease(t *testing.T) {
	// A mate at rate 0.5 hosting a guest for 7200s loses 3600s of work.
	if inc := MateIncrease(7200, 0.5); math.Abs(inc-3600) > 1e-9 {
		t.Fatalf("mate increase %v, want 3600", inc)
	}
	if inc := MateIncrease(7200, 1); inc != 0 {
		t.Fatalf("unshrunk mate increase %v, want 0", inc)
	}
}

func TestProgressStaticRun(t *testing.T) {
	p := NewProgress(100, 1000)
	if p.RemainingWall(100) != 1000 {
		t.Fatalf("remaining %d, want 1000", p.RemainingWall(100))
	}
	if !p.Finished(1100) {
		t.Fatal("not finished at end time")
	}
}

func TestProgressShrinkExpand(t *testing.T) {
	// 1000s of work; shrink to rate 0.5 during [200, 600): completes
	// 200 + 400*0.5 = 400 of work by t=600; remaining 600 at rate 1.
	p := NewProgress(0, 1000)
	p.SetRate(200, 0.5)
	p.SetRate(600, 1)
	if got := p.RemainingWall(600); got != 600 {
		t.Fatalf("remaining %d, want 600", got)
	}
	if !p.Finished(1200) {
		t.Fatal("should finish at t=1200")
	}
	if p.Finished(1199) {
		t.Fatal("finished too early")
	}
}

func TestProgressMatchesEq5SlotSum(t *testing.T) {
	// Reproduce Eq. 5 slot arithmetic: job of 600s, slots of 100s at
	// shares {24,48,12} of 48 => work done = 100*(0.5+1+0.25) = 175.
	p := NewProgress(0, 600)
	p.SetRate(0, Rate(Ideal, []int{24}, 48, nil))
	p.SetRate(100, Rate(Ideal, []int{48}, 48, nil))
	p.SetRate(200, Rate(Ideal, []int{12}, 48, nil))
	if got := p.Done(300); math.Abs(got-175) > 1e-9 {
		t.Fatalf("done %v, want 175", got)
	}
}

func TestProgressZeroRate(t *testing.T) {
	p := NewProgress(0, 100)
	p.SetRate(10, 0)
	if got := p.RemainingWall(50); got != math.MaxInt64 {
		t.Fatalf("remaining at rate 0 = %d, want MaxInt64", got)
	}
	if p.Finished(1_000_000) {
		t.Fatal("job finished while starved")
	}
	p.SetRate(1_000_000, 1)
	if got := p.RemainingWall(1_000_000); got != 90 {
		t.Fatalf("remaining %d, want 90", got)
	}
}

func TestProgressPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero work", func() { NewProgress(0, 0) })
	mustPanic("backwards time", func() {
		p := NewProgress(100, 10)
		p.Done(50)
	})
	mustPanic("bad rate", func() {
		p := NewProgress(0, 10)
		p.SetRate(1, 1.5)
	})
}

// Property: the progress engine agrees with the paper's slot-sum
// formulation (Eqs. 5-6): for any piecewise-constant configuration
// sequence, work done equals sum over slots of rate x slot length.
func TestPropertyEngineMatchesSlotSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		kind := Ideal
		if trial%2 == 1 {
			kind = WorstCase
		}
		full := 1 + rng.Intn(48)
		nodes := 1 + rng.Intn(4)
		work := float64(1 + rng.Intn(100000))
		p := NewProgress(0, work)
		now := int64(0)
		var slotSum float64
		for s := 0; s < 10; s++ {
			shares := make([]int, nodes)
			for i := range shares {
				shares[i] = rng.Intn(full + 1)
			}
			r := Rate(kind, shares, full, nil)
			slot := int64(1 + rng.Intn(400))
			p.SetRate(now, r)
			slotSum += r * float64(slot)
			now += slot
			if slotSum >= work {
				break
			}
		}
		if slotSum > work {
			slotSum = work
		}
		if got := p.Done(now); math.Abs(got-slotSum) > 1e-6 {
			t.Fatalf("trial %d: engine done %v, slot sum %v", trial, got, slotSum)
		}
	}
}

// Property: under any sequence of rate changes, total completion wall time
// is never shorter than the work amount, and RemainingWall answers are
// consistent: advancing by the reported remaining always finishes the job.
func TestPropertyProgressConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		work := float64(1 + rng.Intn(10000))
		p := NewProgress(0, work)
		now := int64(0)
		for i := 0; i < 20; i++ {
			now += int64(rng.Intn(500))
			r := float64(rng.Intn(10)+1) / 10 // avoid rate 0 so it terminates
			p.SetRate(now, r)
			if p.Finished(now) {
				break
			}
		}
		rem := p.RemainingWall(now)
		if rem < 0 {
			t.Fatalf("negative remaining %d", rem)
		}
		if rem == 0 {
			if !p.Finished(now) {
				t.Fatal("zero remaining but unfinished")
			}
			continue
		}
		if p.Finished(now + rem - 1) {
			// allowed only due to ceil rounding within one second
			if rem > 1 && p.Finished(now+rem-2) {
				t.Fatalf("finished %ds early", 2)
			}
		}
		if !p.Finished(now + rem) {
			t.Fatalf("not finished after remaining elapsed (trial %d)", trial)
		}
		if now+rem < int64(work) {
			t.Fatalf("completion faster than the work: %d < %v", now+rem, work)
		}
	}
}
