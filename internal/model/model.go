// Package model implements the malleable runtime models of the paper
// (Section 3.4): how a job's duration stretches when it runs on fewer
// cores than it statically requested.
//
// The paper expresses the models as sums over time slots of constant
// configuration (Eqs. 5 and 6). Here the same models are implemented as a
// progress/rate engine: a job carries `ActualTime` seconds of work that
// advance at a rate r(t) in [0, 1] derived from its current per-node core
// shares. For piecewise-constant configurations the two formulations are
// identical; the engine additionally handles arbitrary shrink/expand
// sequences (mates ending early, guests absorbing cores on part of their
// nodes) without special cases.
package model

import (
	"fmt"
	"math"
)

// Kind selects the runtime model.
type Kind uint8

const (
	// Ideal (Eq. 5): rate is the aggregate core fraction. Applications
	// rebalance their load perfectly across unequal per-node shares.
	Ideal Kind = iota
	// WorstCase (Eq. 6): rate is the smallest per-node core fraction.
	// Statically balanced applications advance at the pace of the most
	// shrunk node.
	WorstCase
	// App: rate follows a per-application speedup curve evaluated on the
	// smallest per-node share (statically balanced, like WorstCase, but
	// with sub-linear scalability so shrinking can be nearly free).
	// Used by the real-run emulation.
	App
)

// String returns the model name.
func (k Kind) String() string {
	switch k {
	case Ideal:
		return "ideal"
	case WorstCase:
		return "worstcase"
	case App:
		return "app"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// SpeedupFn maps a per-node core count to relative application throughput.
// It must be non-decreasing and positive for cores >= 1.
type SpeedupFn func(cores int) float64

// Rate returns the progress rate of a job that statically uses `full`
// cores on each of its nodes and currently holds shares[i] cores on node
// i. speedup is required for Kind App and ignored otherwise.
//
// Rate(k, ...) == 1 whenever every share equals full (any model), and 0
// if any share is 0 under WorstCase/App or all shares are 0 under Ideal.
func Rate(kind Kind, shares []int, full int, speedup SpeedupFn) float64 {
	if full <= 0 {
		panic(fmt.Sprintf("model: non-positive full share %d", full))
	}
	if len(shares) == 0 {
		panic("model: empty share list")
	}
	switch kind {
	case Ideal:
		total := 0
		for _, s := range shares {
			total += s
		}
		return clampRate(float64(total) / float64(len(shares)*full))
	case WorstCase:
		m := shares[0]
		for _, s := range shares[1:] {
			if s < m {
				m = s
			}
		}
		return clampRate(float64(m) / float64(full))
	case App:
		if speedup == nil {
			panic("model: App kind requires a speedup function")
		}
		m := shares[0]
		for _, s := range shares[1:] {
			if s < m {
				m = s
			}
		}
		if m <= 0 {
			return 0
		}
		return clampRate(speedup(m) / speedup(full))
	}
	panic(fmt.Sprintf("model: unknown kind %d", kind))
}

func clampRate(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// UniformRate returns the rate for a job holding the same share on every
// node — the common SD-Policy configuration right after a malleable start.
func UniformRate(kind Kind, share, full int, speedup SpeedupFn) float64 {
	return Rate(kind, []int{share}, full, speedup)
}

// Increase returns the extra wall-clock seconds ("increase" in Listing 1
// and Eq. 4) a job of duration dur suffers when running at constant rate
// r for its whole life: dur/r - dur. It returns +Inf for r == 0.
func Increase(dur int64, r float64) float64 {
	if dur < 0 {
		panic(fmt.Sprintf("model: negative duration %d", dur))
	}
	if r <= 0 {
		return math.Inf(1)
	}
	if r > 1 {
		r = 1
	}
	return float64(dur)/r - float64(dur)
}

// MateIncrease returns the extra wall-clock seconds a mate suffers when
// it runs at rate r for the `hosting` seconds it spends shrunk: the
// progress lost is hosting*(1-r), recovered at full rate after expansion.
func MateIncrease(hosting int64, r float64) float64 {
	if hosting < 0 {
		panic(fmt.Sprintf("model: negative hosting time %d", hosting))
	}
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	return float64(hosting) * (1 - r)
}

// Progress tracks how much of a job's work is done under a time-varying
// rate. All times are simulation seconds.
type Progress struct {
	total float64 // seconds of work at rate 1
	done  float64
	rate  float64
	since int64
}

// NewProgress returns a tracker for `total` seconds of work starting at
// time now with rate 1.
func NewProgress(now int64, total float64) *Progress {
	if total <= 0 {
		panic(fmt.Sprintf("model: non-positive work %v", total))
	}
	return &Progress{total: total, rate: 1, since: now}
}

// doneAt returns the completed work as of time now without mutating the
// tracker, so queries may arrive in any order at or after the last
// SetRate.
func (p *Progress) doneAt(now int64) float64 {
	if now < p.since {
		panic(fmt.Sprintf("model: progress queried before last update: %d < %d", now, p.since))
	}
	d := p.done + p.rate*float64(now-p.since)
	if d > p.total {
		d = p.total
	}
	return d
}

// advance accumulates work up to time now.
func (p *Progress) advance(now int64) {
	p.done = p.doneAt(now)
	p.since = now
}

// SetRate changes the progress rate from time now on.
func (p *Progress) SetRate(now int64, r float64) {
	if r < 0 || r > 1 || math.IsNaN(r) {
		panic(fmt.Sprintf("model: rate %v out of [0,1]", r))
	}
	p.advance(now)
	p.rate = r
}

// Rate returns the current rate.
func (p *Progress) Rate() float64 { return p.rate }

// Done returns the completed work in rate-1 seconds as of time now.
func (p *Progress) Done(now int64) float64 {
	return p.doneAt(now)
}

// RemainingWall returns the wall-clock seconds left at the current rate,
// rounded up to whole seconds. It returns math.MaxInt64 when the rate is
// zero and work remains.
func (p *Progress) RemainingWall(now int64) int64 {
	left := p.total - p.doneAt(now)
	if left <= 1e-9 {
		return 0
	}
	if p.rate <= 0 {
		return math.MaxInt64
	}
	w := math.Ceil(left / p.rate)
	if w < 1 {
		w = 1
	}
	if w >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(w)
}

// Finished reports whether all work is done as of time now.
func (p *Progress) Finished(now int64) bool {
	return p.total-p.doneAt(now) <= 1e-9
}
