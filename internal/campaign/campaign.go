// Package campaign runs experiment campaigns — batches of independent,
// deterministic tasks such as (workload, variant, seed, scale)
// simulation points — across a pool of workers.
//
// The runner is generic over a comparable task key K and a result R so
// the root sdpolicy package can drive it without an import cycle. Three
// properties matter to callers:
//
//   - Determinism: Run returns results positionally aligned with its
//     input keys, so a parallel campaign is byte-identical to a
//     sequential one as long as the task function itself is
//     deterministic. Unique keys are sharded statically across workers
//     (worker w takes unique tasks w, w+W, w+2W, ...).
//
//   - Memoisation: results are cached in a bounded LRU keyed by the
//     task key, and duplicate keys — within one Run, across Runs, or
//     concurrently in-flight from different Runs — execute the task
//     function exactly once (singleflight).
//
//   - Cancellation: Run honours context cancellation between tasks and
//     propagates the first task error, cancelling the remaining work.
//     The task function receives the batch context, so a task that
//     checkpoints it (sched.RunContext) also aborts mid-execution.
//
//   - Streaming: RunStream additionally delivers each position's result
//     on a channel the moment its key resolves, in completion order,
//     while the returned slice keeps the deterministic input alignment.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sdpolicy/internal/lru"
	"sdpolicy/internal/telemetry"
)

// Campaign-engine telemetry, aggregated across every Runner in the
// process. The per-runner hits/misses atomics stay authoritative for
// Stats(); these mirror them globally (hits = cache hits + in-flight
// joins, matching Stats) so /metrics and sdexp's machine-readable
// stats line read the same tallies.
var (
	mStarted = telemetry.NewCounter("campaign_points_started_total",
		"Campaign task executions started (cache misses handed to the task function).")
	mCompleted = telemetry.NewCounter("campaign_points_completed_total",
		"Campaign task executions that returned a result.")
	mFailed = telemetry.NewCounter("campaign_points_failed_total",
		"Campaign task executions that returned an error (including cancellations).")
	mPointSeconds = telemetry.NewHistogram("campaign_point_seconds",
		"Wall-clock latency of campaign task executions.", telemetry.DefBuckets)
	mCacheHits = telemetry.NewCounter("campaign_cache_hits_total",
		"Task resolutions served without executing: memoised results plus in-flight joins.")
	mCacheMisses = telemetry.NewCounter("campaign_cache_misses_total",
		"Task resolutions that executed the task function.")
	mDedup = telemetry.NewCounter("campaign_singleflight_dedup_total",
		"Task resolutions that joined an already in-flight execution of the same key.")
)

// Func computes the result for one task key. It must be deterministic
// in key for the runner's ordering and memoisation guarantees to mean
// anything, and should return promptly once ctx is cancelled.
type Func[K comparable, R any] func(ctx context.Context, key K) (R, error)

// Config sizes a Runner.
type Config struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// CacheSize bounds the result LRU; <= 0 disables cross-Run
	// memoisation (duplicates within one Run still execute once).
	CacheSize int
}

// call is one in-flight task execution that duplicate requests join.
type call[R any] struct {
	done chan struct{}
	val  R
	err  error
}

// Runner executes task batches over a shared worker pool, cache, and
// in-flight table. It is safe for concurrent use; overlapping Run calls
// share memoised and in-flight results, and a semaphore shared across
// Runs caps concurrent task executions at Workers regardless of how
// many Runs are active at once.
type Runner[K comparable, R any] struct {
	fn      Func[K, R]
	workers int
	// sem holds one slot per worker: acquired around each fn
	// execution so concurrent Runs cannot multiply the pool size.
	sem   chan struct{}
	cache *lru.Cache[K, R]

	mu       sync.Mutex
	inflight map[K]*call[R]

	progressMu sync.Mutex
	progress   func(done, total int)

	hits   atomic.Uint64
	misses atomic.Uint64
}

// New builds a Runner executing fn.
func New[K comparable, R any](fn Func[K, R], cfg Config) *Runner[K, R] {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	var cache *lru.Cache[K, R]
	if cfg.CacheSize > 0 {
		cache = lru.New[K, R](cfg.CacheSize)
	}
	return &Runner[K, R]{
		fn:       fn,
		workers:  w,
		sem:      make(chan struct{}, w),
		cache:    cache,
		inflight: make(map[K]*call[R]),
	}
}

// Workers returns the pool size.
func (r *Runner[K, R]) Workers() int { return r.workers }

// OnProgress registers a callback invoked after each input key
// resolves, with the number of resolved keys and the batch total. It
// may be called from any worker goroutine, but never concurrently with
// itself.
func (r *Runner[K, R]) OnProgress(fn func(done, total int)) {
	r.progressMu.Lock()
	r.progress = fn
	r.progressMu.Unlock()
}

// Stats returns how many task resolutions were served from the cache
// (or joined an in-flight execution) versus executed.
func (r *Runner[K, R]) Stats() (hits, misses uint64) {
	return r.hits.Load(), r.misses.Load()
}

// CacheCap returns the result cache's capacity in entries (0 when
// caching is disabled), letting callers detect prime sets that would
// overflow it.
func (r *Runner[K, R]) CacheCap() int {
	return r.cache.Cap()
}

// CacheSnapshot returns the memoised results, least recently used
// first, for persistence across processes. With caching disabled it
// returns empty slices.
func (r *Runner[K, R]) CacheSnapshot() ([]K, []R) {
	return r.cache.Snapshot()
}

// CachePrime inserts precomputed results — typically a CacheSnapshot
// persisted by an earlier process — into the cache without executing
// the task function. Entries are added in input order, so passing a
// snapshot preserves its recency order. Extra values beyond len(keys)
// are ignored; with caching disabled CachePrime is a no-op.
func (r *Runner[K, R]) CachePrime(keys []K, vals []R) {
	for i, k := range keys {
		if i >= len(vals) {
			return
		}
		r.cache.Add(k, vals[i])
	}
}

// Update is one incremental result delivery from RunStream: the result
// for input position Index, whose key was Key (keys[Index] == Key).
// Duplicate positions of one key are delivered together, in ascending
// index order.
type Update[K comparable, R any] struct {
	Index int
	Key   K
	Value R
}

// Run resolves every key and returns results aligned with keys:
// results[i] is the result for keys[i]. Duplicate keys share one
// execution. On the first task error or on ctx cancellation the
// remaining tasks are abandoned and Run returns the error.
func (r *Runner[K, R]) Run(ctx context.Context, keys []K) ([]R, error) {
	return r.RunStream(ctx, keys, nil)
}

// RunStream is Run with incremental delivery: as each input key
// resolves, an Update for every position holding that key is sent on
// updates (when non-nil) long before the batch completes. Updates
// arrive in completion order — nondeterministic across keys — so
// streaming consumers trade ordering for latency, while the returned
// slice keeps Run's deterministic input alignment and is bytewise
// identical to a sequential run's. RunStream closes updates before
// returning. A consumer that stops draining updates must cancel ctx:
// sends block (applying backpressure to the workers) until either the
// consumer receives or the context ends.
func (r *Runner[K, R]) RunStream(ctx context.Context, keys []K, updates chan<- Update[K, R]) ([]R, error) {
	if updates != nil {
		defer close(updates)
	}
	if len(keys) == 0 {
		return nil, ctx.Err()
	}
	results := make([]R, len(keys))
	unique := make([]K, 0, len(keys))
	where := make(map[K][]int, len(keys))
	for i, k := range keys {
		if _, seen := where[k]; !seen {
			unique = append(unique, k)
		}
		where[k] = append(where[k], i)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := r.workers
	if workers > len(unique) {
		workers = len(unique)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	total := len(keys)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for t := shard; t < len(unique); t += workers {
				if ctx.Err() != nil {
					return
				}
				k := unique[t]
				val, err := r.resolve(ctx, k)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					return
				}
				for _, i := range where[k] {
					results[i] = val
				}
				done += len(where[k])
				// Notify before releasing mu so the done counter the
				// callback sees never goes backwards.
				r.notify(done, total)
				mu.Unlock()
				// Stream outside mu so one slow consumer stalls only
				// this worker, not the whole pool. The non-blocking
				// attempt first means a completed result is never
				// raced out by a simultaneously-cancelled ctx as long
				// as the channel has buffer room — consumers that
				// drain after cancelling (serve shutdown) rely on it.
				if updates != nil {
					for _, i := range where[k] {
						u := Update[K, R]{Index: i, Key: k, Value: val}
						select {
						case updates <- u:
						default:
							select {
							case updates <- u:
							case <-ctx.Done():
								return
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// Our own cancel only fires after this check (deferred) or on the
	// error path above, so a non-nil ctx.Err() here is the caller's.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Backstop: a key that is not equal to itself (NaN in a float
	// field) stores into the where map but can never be looked up, so
	// its result slots would silently stay zero. Fail loudly instead.
	if done != total {
		return nil, fmt.Errorf("campaign: only %d of %d keys resolved — non-self-equal key (NaN float field)?", done, total)
	}
	return results, nil
}

// resolve returns the result for one key: from the cache, by joining an
// in-flight execution, or by executing fn and publishing the result.
func (r *Runner[K, R]) resolve(ctx context.Context, k K) (R, error) {
	for {
		if v, ok := r.cache.Get(k); ok {
			r.hits.Add(1)
			mCacheHits.Inc()
			return v, nil
		}
		r.mu.Lock()
		if c, ok := r.inflight[k]; ok {
			r.mu.Unlock()
			select {
			case <-c.done:
				if isCancellation(c.err) && ctx.Err() == nil {
					// The owning Run was cancelled, not ours: the key
					// is unresolved, so retry rather than inheriting
					// someone else's cancellation.
					continue
				}
				r.hits.Add(1)
				mCacheHits.Inc()
				mDedup.Inc()
				return c.val, c.err
			case <-ctx.Done():
				var zero R
				return zero, ctx.Err()
			}
		}
		c := &call[R]{done: make(chan struct{})}
		r.inflight[k] = c
		r.mu.Unlock()

		// Acquire an execution slot; the semaphore is shared across
		// concurrent Runs so fn concurrency never exceeds Workers.
		select {
		case r.sem <- struct{}{}:
		case <-ctx.Done():
			c.err = ctx.Err()
		}
		if c.err == nil {
			r.misses.Add(1)
			mCacheMisses.Inc()
			mStarted.Inc()
			begin := time.Now()
			c.val, c.err = r.fn(ctx, k)
			mPointSeconds.Observe(time.Since(begin).Seconds())
			<-r.sem
			if c.err == nil {
				mCompleted.Inc()
				r.cache.Add(k, c.val)
			} else {
				mFailed.Inc()
			}
		}
		r.mu.Lock()
		delete(r.inflight, k)
		r.mu.Unlock()
		close(c.done)
		return c.val, c.err
	}
}

// isCancellation reports whether err came from a cancelled or expired
// context rather than from the task itself failing.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (r *Runner[K, R]) notify(done, total int) {
	r.progressMu.Lock()
	defer r.progressMu.Unlock()
	if r.progress != nil {
		r.progress(done, total)
	}
}

// DeriveSeed deterministically expands one base seed into per-task
// seeds (splitmix64 finaliser over the task index), so a campaign
// declared with a single seed can still give every replicate an
// independent, reproducible RNG stream.
func DeriveSeed(base uint64, task int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(task+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
