package campaign

import (
	"fmt"
	"sort"
)

// Shard is one self-describing partition of a campaign key list: the
// keys it owns plus their positions in the original list. Shards carry
// everything a remote worker needs — no shared state beyond the plan —
// and everything the merge needs to reassemble results positionally,
// so shard results can arrive in any order (job arrays, coordinator
// fan-out, retries) without affecting the merged output.
type Shard[K comparable] struct {
	// Index is this shard's 0-based number within the plan; Of is the
	// plan's total shard count.
	Index int `json:"index"`
	Of    int `json:"of"`
	// Positions are the original-list positions this shard owns, in
	// ascending order. Keys is aligned with it: Keys[i] is the key at
	// original position Positions[i].
	Positions []int `json:"positions"`
	Keys      []K   `json:"keys"`
}

// Plan partitions keys into n shards such that running each shard
// independently and merging with MergeShards reproduces a
// single-process run exactly. Assignment is deterministic: unique keys
// are dealt round-robin in first-appearance order, and every
// occurrence of a key lands in the same shard, so a duplicated key
// (e.g. a shared static baseline) is never simulated by two shards.
// Shards may be empty when n exceeds the number of unique keys.
// Plan panics if n <= 0.
func Plan[K comparable](keys []K, n int) []Shard[K] {
	if n <= 0 {
		panic(fmt.Sprintf("campaign: planning %d shards", n))
	}
	shards := make([]Shard[K], n)
	for i := range shards {
		shards[i].Index = i
		shards[i].Of = n
	}
	owner := make(map[K]int, len(keys))
	unique := 0
	for pos, k := range keys {
		s, seen := owner[k]
		if !seen {
			s = unique % n
			owner[k] = s
			unique++
		}
		shards[s].Positions = append(shards[s].Positions, pos)
		shards[s].Keys = append(shards[s].Keys, k)
	}
	return shards
}

// MergeShards reassembles per-shard results into the full result slice
// a single-process run over the original total-length key list would
// return: merged[p] is the result for original position p. results[i]
// must be aligned with shards[i].Positions — the pairs may be given in
// any order and from any subset-free covering of the plan, so a
// coordinator can merge shards in completion order. Coverage is
// verified: a position left unresolved, resolved twice, or out of
// range is an error rather than a silently zero (or clobbered) result.
func MergeShards[K comparable, R any](total int, shards []Shard[K], results [][]R) ([]R, error) {
	if len(shards) != len(results) {
		return nil, fmt.Errorf("campaign: merging %d shards with %d result sets", len(shards), len(results))
	}
	merged := make([]R, total)
	seen := make([]bool, total)
	filled := 0
	for i, s := range shards {
		if len(results[i]) != len(s.Positions) {
			return nil, fmt.Errorf("campaign: shard %d/%d carries %d results for %d positions",
				s.Index+1, s.Of, len(results[i]), len(s.Positions))
		}
		for j, pos := range s.Positions {
			if pos < 0 || pos >= total {
				return nil, fmt.Errorf("campaign: shard %d/%d position %d out of range [0,%d)",
					s.Index+1, s.Of, pos, total)
			}
			if seen[pos] {
				return nil, fmt.Errorf("campaign: position %d resolved by two shards", pos)
			}
			seen[pos] = true
			merged[pos] = results[i][j]
			filled++
		}
	}
	if filled != total {
		missing := make([]int, 0, total-filled)
		for p, ok := range seen {
			if !ok {
				missing = append(missing, p)
			}
		}
		sort.Ints(missing)
		return nil, fmt.Errorf("campaign: %d of %d positions unresolved (first missing: %d)",
			total-filled, total, missing[0])
	}
	return merged, nil
}

// Remaining computes the resume set of a checkpointed campaign: the
// positions in [0, total) not covered by done, ascending. It is the
// merge-side complement of a journal's completion checkpoints — a
// resumed campaign runs exactly the remaining positions, and together
// with the journaled results they re-cover every position exactly
// once, which MergeShards then verifies. A checkpoint position out of
// range or recorded twice is corrupt state and an error, never
// silently dropped.
func Remaining(total int, done []int) ([]int, error) {
	if total < 0 {
		return nil, fmt.Errorf("campaign: resuming a campaign of %d positions", total)
	}
	seen := make([]bool, total)
	for _, p := range done {
		if p < 0 || p >= total {
			return nil, fmt.Errorf("campaign: checkpoint position %d out of range [0,%d)", p, total)
		}
		if seen[p] {
			return nil, fmt.Errorf("campaign: checkpoint position %d recorded twice", p)
		}
		seen[p] = true
	}
	rest := make([]int, 0, total-len(done))
	for p, ok := range seen {
		if !ok {
			rest = append(rest, p)
		}
	}
	return rest, nil
}
