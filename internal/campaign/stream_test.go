package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRunStreamDeliversEveryIndexOnce(t *testing.T) {
	r := New(func(ctx context.Context, k int) (int, error) { return k * k, nil },
		Config{Workers: 4})
	keys := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3} // duplicates on purpose
	updates := make(chan Update[int, int], len(keys))
	results, err := r.RunStream(context.Background(), keys, updates)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]Update[int, int])
	for u := range updates {
		if _, dup := seen[u.Index]; dup {
			t.Fatalf("index %d delivered twice", u.Index)
		}
		seen[u.Index] = u
	}
	if len(seen) != len(keys) {
		t.Fatalf("%d updates for %d keys", len(seen), len(keys))
	}
	for i, k := range keys {
		if results[i] != k*k {
			t.Fatalf("results[%d] = %d, want %d", i, results[i], k*k)
		}
		u := seen[i]
		if u.Key != k || u.Value != k*k {
			t.Fatalf("update %d = %+v, want key %d value %d", i, u, k, k*k)
		}
	}
}

func TestRunStreamClosesUpdatesOnEmptyAndErrorBatches(t *testing.T) {
	boom := errors.New("boom")
	r := New(func(ctx context.Context, k int) (int, error) {
		if k < 0 {
			return 0, boom
		}
		return k, nil
	}, Config{Workers: 2})

	updates := make(chan Update[int, int])
	if _, err := r.RunStream(context.Background(), nil, updates); err != nil {
		t.Fatal(err)
	}
	if _, open := <-updates; open {
		t.Fatal("updates not closed for an empty batch")
	}

	updates = make(chan Update[int, int], 8)
	if _, err := r.RunStream(context.Background(), []int{1, -1, 2}, updates); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	for range updates { // must terminate: channel closed despite the error
	}
}

// TestRunStreamEarlyDelivery proves streaming actually streams: with a
// task function that blocks until released, the first key's update must
// arrive while later keys are still executing.
func TestRunStreamEarlyDelivery(t *testing.T) {
	release := make(chan struct{})
	r := New(func(ctx context.Context, k int) (int, error) {
		if k != 0 {
			select {
			case <-release:
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		return k, nil
	}, Config{Workers: 2})
	updates := make(chan Update[int, int], 4)
	done := make(chan error, 1)
	go func() {
		_, err := r.RunStream(context.Background(), []int{0, 1, 2, 3}, updates)
		done <- err
	}()
	select {
	case u := <-updates:
		if u.Key != 0 {
			t.Fatalf("first update for key %d, want the unblocked key 0", u.Key)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no update while the batch was still running")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRunStreamAbandonedConsumerCancels verifies the documented
// contract: a consumer that stops draining blocks the workers until the
// context is cancelled, at which point RunStream returns instead of
// deadlocking.
func TestRunStreamAbandonedConsumerCancels(t *testing.T) {
	r := New(func(ctx context.Context, k int) (int, error) { return k, nil },
		Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	updates := make(chan Update[int, int]) // unbuffered, never read
	done := make(chan error, 1)
	go func() {
		_, err := r.RunStream(ctx, []int{1, 2, 3, 4}, updates)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let a worker block on the send
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunStream deadlocked on an abandoned consumer")
	}
}

// TestRunStreamMatchesRun checks the determinism guarantee end to end:
// the slice returned by a streamed, parallel run equals the slice from
// a sequential Run.
func TestRunStreamMatchesRun(t *testing.T) {
	fn := func(ctx context.Context, k int) (string, error) {
		return fmt.Sprintf("v%d", k), nil
	}
	seq := New(fn, Config{Workers: 1})
	par := New(fn, Config{Workers: 8})
	keys := make([]int, 50)
	for i := range keys {
		keys[i] = i % 17
	}
	want, err := seq.Run(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	updates := make(chan Update[int, string])
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // drain concurrently so unbuffered sends make progress
		defer wg.Done()
		for range updates {
		}
	}()
	got, err := par.RunStream(context.Background(), keys, updates)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("results[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
