package campaign

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestPlanCoversEveryPositionOnce: for arbitrary key lists (duplicates
// included) and shard counts, the plan partitions positions exactly.
func TestPlanCoversEveryPositionOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nkeys := rng.Intn(40)
		keys := make([]int, nkeys)
		for i := range keys {
			keys[i] = rng.Intn(10) // heavy duplication
		}
		n := 1 + rng.Intn(8)
		shards := Plan(keys, n)
		if len(shards) != n {
			t.Fatalf("Plan(%d keys, %d) returned %d shards", nkeys, n, len(shards))
		}
		seen := make(map[int]int)
		for _, s := range shards {
			if s.Of != n {
				t.Fatalf("shard %d has Of=%d, want %d", s.Index, s.Of, n)
			}
			if len(s.Keys) != len(s.Positions) {
				t.Fatalf("shard %d: %d keys vs %d positions", s.Index, len(s.Keys), len(s.Positions))
			}
			for j, pos := range s.Positions {
				seen[pos]++
				if keys[pos] != s.Keys[j] {
					t.Fatalf("shard %d: Keys[%d]=%d but keys[%d]=%d", s.Index, j, s.Keys[j], pos, keys[pos])
				}
				if j > 0 && s.Positions[j-1] >= pos {
					t.Fatalf("shard %d positions not ascending: %v", s.Index, s.Positions)
				}
			}
		}
		for pos := 0; pos < nkeys; pos++ {
			if seen[pos] != 1 {
				t.Fatalf("position %d covered %d times", pos, seen[pos])
			}
		}
	}
}

// TestPlanCoLocatesDuplicates: every occurrence of one key lands in one
// shard, so a duplicated point never simulates in two processes.
func TestPlanCoLocatesDuplicates(t *testing.T) {
	keys := []string{"base", "a", "base", "b", "base", "c", "a"}
	for _, n := range []int{1, 2, 3, 5, 10} {
		owner := make(map[string]int)
		for _, s := range Plan(keys, n) {
			for _, k := range s.Keys {
				if prev, ok := owner[k]; ok && prev != s.Index {
					t.Fatalf("n=%d: key %q in shards %d and %d", n, k, prev, s.Index)
				}
				owner[k] = s.Index
			}
		}
	}
}

// TestPlanDeterministic: the same inputs always give the same plan.
func TestPlanDeterministic(t *testing.T) {
	keys := []string{"a", "b", "a", "c", "d", "b", "e"}
	if !reflect.DeepEqual(Plan(keys, 3), Plan(keys, 3)) {
		t.Fatal("two plans over identical inputs differ")
	}
}

// TestMergeShardsOrderIndependent: merging shard results in any order
// reproduces the positional result slice a single run would return.
func TestMergeShardsOrderIndependent(t *testing.T) {
	keys := []string{"a", "b", "a", "c", "d", "b", "e", "f"}
	shards := Plan(keys, 3)
	results := make([][]string, len(shards))
	for i, s := range shards {
		for _, k := range s.Keys {
			results[i] = append(results[i], "res:"+k)
		}
	}
	want := make([]string, len(keys))
	for i, k := range keys {
		want[i] = "res:" + k
	}
	perms := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}}
	for _, perm := range perms {
		ps := make([]Shard[string], len(perm))
		pr := make([][]string, len(perm))
		for i, p := range perm {
			ps[i], pr[i] = shards[p], results[p]
		}
		got, err := MergeShards(len(keys), ps, pr)
		if err != nil {
			t.Fatalf("perm %v: %v", perm, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("perm %v: merged %v, want %v", perm, got, want)
		}
	}
}

// TestMergeShardsRejectsBadCoverage: missing, duplicated and
// out-of-range positions are loud errors, not zero results.
func TestMergeShardsRejectsBadCoverage(t *testing.T) {
	keys := []string{"a", "b", "c", "d"}
	shards := Plan(keys, 2)
	full := make([][]string, len(shards))
	for i, s := range shards {
		full[i] = make([]string, len(s.Keys))
	}
	if _, err := MergeShards(len(keys), shards[:1], full[:1]); err == nil {
		t.Fatal("missing shard accepted")
	}
	if _, err := MergeShards(len(keys), []Shard[string]{shards[0], shards[0]}, [][]string{full[0], full[0]}); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	if _, err := MergeShards(len(keys), shards, [][]string{full[0], full[1][:1]}); err == nil {
		t.Fatal("short result set accepted")
	}
	bad := shards
	bad[1].Positions = append([]int(nil), bad[1].Positions...)
	bad[1].Positions[0] = len(keys) + 3
	if _, err := MergeShards(len(keys), bad, full); err == nil {
		t.Fatal("out-of-range position accepted")
	}
}

// TestPlanEmptyAndOversized: empty key lists and n > unique keys give
// empty shards that merge cleanly.
func TestPlanEmptyAndOversized(t *testing.T) {
	shards := Plan([]string{"a"}, 4)
	results := [][]string{{"r"}, {}, {}, {}}
	got, err := MergeShards(1, shards, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "r" {
		t.Fatalf("merged %v", got)
	}
	if merged, err := MergeShards(0, Plan([]string{}, 3), [][]string{{}, {}, {}}); err != nil || len(merged) != 0 {
		t.Fatalf("empty plan merge: %v, %v", merged, err)
	}
}

func TestRemaining(t *testing.T) {
	rest, err := Remaining(5, []int{1, 3})
	if err != nil || len(rest) != 3 || rest[0] != 0 || rest[1] != 2 || rest[2] != 4 {
		t.Fatalf("Remaining = %v, %v", rest, err)
	}
	if rest, err = Remaining(3, nil); err != nil || len(rest) != 3 {
		t.Fatalf("empty checkpoint set: %v, %v", rest, err)
	}
	if rest, err = Remaining(2, []int{0, 1}); err != nil || len(rest) != 0 {
		t.Fatalf("fully checkpointed: %v, %v", rest, err)
	}
	if _, err = Remaining(2, []int{2}); err == nil {
		t.Fatal("out-of-range checkpoint accepted")
	}
	if _, err = Remaining(2, []int{-1}); err == nil {
		t.Fatal("negative checkpoint accepted")
	}
	if _, err = Remaining(3, []int{1, 1}); err == nil {
		t.Fatal("duplicate checkpoint accepted")
	}
}
