package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// square is a deterministic task function counting its executions.
func square(execs *atomic.Int64) Func[int, int] {
	return func(ctx context.Context, k int) (int, error) {
		execs.Add(1)
		return k * k, nil
	}
}

func TestRunOrderedAndParallelMatchesSequential(t *testing.T) {
	keys := make([]int, 100)
	for i := range keys {
		keys[i] = i
	}
	var seqExecs, parExecs atomic.Int64
	seq := New(square(&seqExecs), Config{Workers: 1, CacheSize: 256})
	par := New(square(&parExecs), Config{Workers: 8, CacheSize: 256})
	want, err := seq.Run(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Run(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if want[i] != got[i] || want[i] != i*i {
			t.Fatalf("results[%d]: seq %d, par %d, want %d", i, want[i], got[i], i*i)
		}
	}
}

func TestDuplicateKeysExecuteOnce(t *testing.T) {
	var execs atomic.Int64
	r := New(square(&execs), Config{Workers: 8, CacheSize: 16})
	keys := []int{7, 3, 7, 7, 3, 5}
	res, err := r.Run(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if res[i] != k*k {
			t.Fatalf("res[%d] = %d, want %d", i, res[i], k*k)
		}
	}
	if n := execs.Load(); n != 3 {
		t.Fatalf("executed %d tasks for 3 unique keys", n)
	}
}

func TestCacheHitsAcrossRuns(t *testing.T) {
	var execs atomic.Int64
	r := New(square(&execs), Config{Workers: 4, CacheSize: 16})
	if _, err := r.Run(context.Background(), []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background(), []int{3, 2, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 9 || res[3] != 16 {
		t.Fatalf("bad results: %v", res)
	}
	if n := execs.Load(); n != 4 {
		t.Fatalf("executed %d tasks, want 4 (three served from cache)", n)
	}
	hits, misses := r.Stats()
	if hits != 3 || misses != 4 {
		t.Fatalf("stats hits=%d misses=%d, want 3/4", hits, misses)
	}
}

func TestNoCacheStillDedupesWithinRun(t *testing.T) {
	var execs atomic.Int64
	r := New(square(&execs), Config{Workers: 4}) // CacheSize 0: no memoisation
	if _, err := r.Run(context.Background(), []int{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), []int{5}); err != nil {
		t.Fatal(err)
	}
	if n := execs.Load(); n != 2 {
		t.Fatalf("executed %d tasks, want 2 (dedupe within run, no cache across)", n)
	}
}

func TestFirstErrorCancelsRemainingWork(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int64
	fn := func(ctx context.Context, k int) (int, error) {
		if k == 0 {
			return 0, boom
		}
		// Tasks sharded after the failure should observe cancellation.
		select {
		case <-ctx.Done():
		case <-time.After(5 * time.Millisecond):
			after.Add(1)
		}
		return k, nil
	}
	keys := make([]int, 64)
	for i := range keys {
		keys[i] = i
	}
	r := New(fn, Config{Workers: 4, CacheSize: 16})
	if _, err := r.Run(context.Background(), keys); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := after.Load(); n >= 60 {
		t.Fatalf("%d tasks ran to completion after the failure", n)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	fn := func(ctx context.Context, k int) (int, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return 0, ctx.Err()
	}
	r := New(fn, Config{Workers: 2, CacheSize: 4})
	errc := make(chan error, 1)
	go func() {
		_, err := r.Run(ctx, []int{1, 2, 3, 4})
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

func TestConcurrentRunsSingleflightSameKey(t *testing.T) {
	var execs atomic.Int64
	block := make(chan struct{})
	fn := func(ctx context.Context, k int) (int, error) {
		execs.Add(1)
		<-block
		return k * 10, nil
	}
	r := New(fn, Config{Workers: 4, CacheSize: 16})
	var wg sync.WaitGroup
	results := make([][]int, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := r.Run(context.Background(), []int{42})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = res
		}(g)
	}
	// Let all four Runs reach the in-flight table, then release.
	time.Sleep(20 * time.Millisecond)
	close(block)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("key executed %d times across concurrent runs", n)
	}
	for g, res := range results {
		if len(res) != 1 || res[0] != 420 {
			t.Fatalf("run %d got %v", g, res)
		}
	}
}

// TestConcurrentRunsShareExecutionSlots proves the Workers bound holds
// across overlapping Run calls: 4 concurrent Runs on a workers=2
// runner never execute more than 2 tasks at once.
func TestConcurrentRunsShareExecutionSlots(t *testing.T) {
	var cur, peak atomic.Int64
	fn := func(ctx context.Context, k int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		cur.Add(-1)
		return k, nil
	}
	r := New(fn, Config{Workers: 2, CacheSize: 64})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Distinct keys per Run so nothing coalesces.
			keys := []int{g * 10, g*10 + 1, g*10 + 2}
			if _, err := r.Run(context.Background(), keys); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("%d tasks executed concurrently on a 2-worker runner", p)
	}
}

// TestJoinerRetriesAfterOwnerCancelled: when the Run owning an
// in-flight execution is cancelled, a joiner with a live context must
// re-execute the task instead of inheriting context.Canceled.
func TestJoinerRetriesAfterOwnerCancelled(t *testing.T) {
	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerStarted := make(chan struct{})
	var calls atomic.Int64
	fn := func(ctx context.Context, k int) (int, error) {
		if calls.Add(1) == 1 {
			close(ownerStarted)
			<-ctx.Done() // the owner's cancellable execution
			return 0, ctx.Err()
		}
		return k * 2, nil
	}
	r := New(fn, Config{Workers: 2, CacheSize: 4})
	ownerErr := make(chan error, 1)
	go func() {
		_, err := r.Run(ownerCtx, []int{21})
		ownerErr <- err
	}()
	<-ownerStarted
	joinerRes := make(chan int, 1)
	joinerErr := make(chan error, 1)
	go func() {
		res, err := r.Run(context.Background(), []int{21})
		if err != nil {
			joinerErr <- err
			return
		}
		joinerRes <- res[0]
	}()
	// Give the joiner time to reach the in-flight table, then cancel
	// the owner out from under it.
	time.Sleep(20 * time.Millisecond)
	cancelOwner()
	if err := <-ownerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err = %v, want context.Canceled", err)
	}
	select {
	case err := <-joinerErr:
		t.Fatalf("joiner inherited the owner's failure: %v", err)
	case v := <-joinerRes:
		if v != 42 {
			t.Fatalf("joiner result %d, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joiner never completed")
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("fn called %d times, want 2 (owner + retry)", n)
	}
}

// TestWorkersRunConcurrently proves the pool overlaps task execution
// regardless of core count: 8 tasks sleeping 20ms each must finish far
// sooner than the 160ms a sequential runner would need.
func TestWorkersRunConcurrently(t *testing.T) {
	fn := func(ctx context.Context, k int) (int, error) {
		time.Sleep(20 * time.Millisecond)
		return k, nil
	}
	r := New(fn, Config{Workers: 8, CacheSize: 16})
	keys := []int{0, 1, 2, 3, 4, 5, 6, 7}
	start := time.Now()
	if _, err := r.Run(context.Background(), keys); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 120*time.Millisecond {
		t.Fatalf("8 x 20ms tasks on 8 workers took %v — pool not concurrent", elapsed)
	}
}

func TestProgressCallback(t *testing.T) {
	var execs atomic.Int64
	r := New(square(&execs), Config{Workers: 4, CacheSize: 16})
	var mu sync.Mutex
	var dones []int
	lastTotal := 0
	r.OnProgress(func(done, total int) {
		mu.Lock()
		dones = append(dones, done)
		lastTotal = total
		mu.Unlock()
	})
	keys := []int{1, 2, 3, 2, 1} // 3 unique, 5 inputs
	if _, err := r.Run(context.Background(), keys); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if lastTotal != 5 {
		t.Fatalf("total = %d, want 5", lastTotal)
	}
	max := 0
	for _, d := range dones {
		if d > max {
			max = d
		}
	}
	if max != 5 {
		t.Fatalf("final done = %d, want 5 (calls: %v)", max, dones)
	}
}

func TestEmptyRun(t *testing.T) {
	r := New(square(new(atomic.Int64)), Config{Workers: 4})
	res, err := r.Run(context.Background(), nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run: %v, %v", res, err)
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(1, i)
		if seen[s] {
			t.Fatalf("seed collision at task %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("base seed ignored")
	}
}

func ExampleRunner_Run() {
	r := New(func(ctx context.Context, k string) (string, error) {
		return "simulated " + k, nil
	}, Config{Workers: 4, CacheSize: 8})
	res, _ := r.Run(context.Background(), []string{"wl1/static", "wl1/sd10"})
	fmt.Println(res[0])
	fmt.Println(res[1])
	// Output:
	// simulated wl1/static
	// simulated wl1/sd10
}

func TestCacheSnapshotAndPrime(t *testing.T) {
	var execs atomic.Int64
	fn := func(ctx context.Context, k string) (string, error) {
		execs.Add(1)
		return "simulated " + k, nil
	}
	r := New(fn, Config{Workers: 2, CacheSize: 8})
	if _, err := r.Run(context.Background(), []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	keys, vals := r.CacheSnapshot()
	if len(keys) != 2 || len(vals) != 2 {
		t.Fatalf("snapshot %v %v", keys, vals)
	}

	// A fresh runner primed with the snapshot serves the keys without
	// executing the task function.
	fresh := New(fn, Config{Workers: 2, CacheSize: 8})
	fresh.CachePrime(keys, vals)
	execs.Store(0)
	res, err := fresh.Run(context.Background(), []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "simulated a" || res[1] != "simulated b" {
		t.Fatalf("primed results %v", res)
	}
	if n := execs.Load(); n != 0 {
		t.Fatalf("%d executions after priming, want 0", n)
	}

	// Caching disabled: snapshot is empty, priming is a no-op.
	off := New(fn, Config{Workers: 2, CacheSize: 0})
	off.CachePrime(keys, vals)
	if k, v := off.CacheSnapshot(); len(k) != 0 || len(v) != 0 {
		t.Fatalf("cache-off snapshot %v %v", k, v)
	}
	// Mismatched lengths must not panic.
	fresh.CachePrime([]string{"x", "y"}, []string{"only one"})
}
