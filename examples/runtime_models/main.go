// Runtime model comparison (Figure 8 of the paper): the ideal model
// (Eq. 5, perfect load rebalancing) against the worst-case model (Eq. 6,
// progress limited by the most-shrunk node) under SD-Policy DynAVGSD.
//
//	go run ./examples/runtime_models
package main

import (
	"fmt"
	"log"

	"sdpolicy"
)

func main() {
	rows, err := sdpolicy.CompareRuntimeModels([]string{"wl1", "wl2"}, 0.15, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SD-Policy DynAVGSD normalised to static backfill (lower is better)")
	fmt.Printf("%-5s %-7s %10s %10s %10s\n", "WL", "model", "makespan", "response", "slowdown")
	for _, r := range rows {
		fmt.Printf("%-5s %-7s %10.3f %10.3f %10.3f\n",
			r.Workload, r.Model, r.Makespan, r.AvgResponse, r.AvgSlowdown)
	}
	fmt.Println("\nExpected shape (paper §4.3): the worst-case model costs extra")
	fmt.Println("response time on wl1 where user estimates are loose, and nothing")
	fmt.Println("on wl2 where requested times are exact, because precise requests")
	fmt.Println("let the policy avoid creating imbalance.")
}
