// Real-run emulation (Section 4.4, Figure 9 of the paper): the Table 2
// application mix — PILS, STREAM, CoreNeuron, NEST, Alya — on the
// 49-node MareNostrum4 partition, simulated with per-application
// scalability curves and the node power model.
//
//	go run ./examples/realrun
package main

import (
	"fmt"
	"log"
	"sort"

	"sdpolicy"
)

func main() {
	w, err := sdpolicy.NewWorkload("wl5", 1.0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d jobs on %d nodes (%d cores)\n",
		w.Name(), w.Jobs(), w.Nodes(), w.Cores())
	fmt.Println("\napplication mix (Table 2):")
	shares := w.AppShares()
	apps := make([]string, 0, len(shares))
	for app := range shares {
		apps = append(apps, app)
	}
	sort.Slice(apps, func(i, j int) bool { return shares[apps[i]] > shares[apps[j]] })
	for _, app := range apps {
		fmt.Printf("  %-12s %5.1f%%\n", app, 100*shares[app])
	}

	rep, err := sdpolicy.RealRunExperiment(1.0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSD-Policy improvement over static backfill (Figure 9):")
	fmt.Printf("  %-14s %7.1f%%   (paper: 7%%)\n", "makespan", rep.MakespanPct)
	fmt.Printf("  %-14s %7.1f%%   (paper: ~16%%)\n", "avg response", rep.AvgResponsePct)
	fmt.Printf("  %-14s %7.1f%%   (paper: ~16%%)\n", "avg slowdown", rep.AvgSlowdownPct)
	fmt.Printf("  %-14s %7.1f%%   (paper: 6%%)\n", "energy", rep.EnergyPct)
	fmt.Printf("\n%d of %d jobs were scheduled with malleability\n",
		rep.SD.MalleableStarts, rep.SD.Jobs)
}
