// Heterogeneous machine: half the nodes carry a "bigmem" feature tag and
// a slice of the jobs requires it (the constraint filtering of paper
// §3.2.4). SD-Policy must respect constraints both for static placement
// and when choosing mates.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"sdpolicy"
)

func main() {
	w, err := sdpolicy.NewWorkload("wl5", 0.5, 1)
	if err != nil {
		log.Fatal(err)
	}
	w.TagNodes("bigmem", 0.5)       // half the machine has the feature
	w.RequireFeature("bigmem", 0.3) // 30% of jobs demand it

	static, err := sdpolicy.Simulate(w, sdpolicy.Options{Policy: "static"})
	if err != nil {
		log.Fatal(err)
	}
	sd, err := sdpolicy.Simulate(w, sdpolicy.Options{Policy: "sd", DynamicCutoff: "avg"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heterogeneous %s: %d jobs, %d nodes (50%% bigmem)\n\n",
		w.Name(), w.Jobs(), w.Nodes())
	fmt.Printf("%-22s %14s %14s\n", "metric", "static", "sd-policy")
	fmt.Printf("%-22s %14.1f %14.1f\n", "avg slowdown", static.AvgSlowdown, sd.AvgSlowdown)
	fmt.Printf("%-22s %14.1f %14.1f\n", "avg response (s)", static.AvgResponse, sd.AvgResponse)
	fmt.Printf("%-22s %14d %14d\n", "malleable starts", static.MalleableStarts, sd.MalleableStarts)
	fmt.Println("\nConstrained jobs wait for matching nodes; SD-Policy only")
	fmt.Println("shrinks mates whose nodes satisfy the guest's constraints.")
}
