// Category heatmap analysis (Section 4.2, Figures 4-6 of the paper):
// which (requested nodes × runtime) job categories gain most from
// SD-Policy on the large Curie-like workload.
//
//	go run ./examples/heatmap
package main

import (
	"fmt"
	"log"
	"math"

	"sdpolicy"
)

func main() {
	an, err := sdpolicy.AnalyzeBigWorkload(0.05, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wl4: avg slowdown static %.1f vs SD(MAXSD 10) %.1f (%.1f%% better)\n\n",
		an.Static.AvgSlowdown, an.SD.AvgSlowdown,
		100*(an.Static.AvgSlowdown-an.SD.AvgSlowdown)/an.Static.AvgSlowdown)

	print2D("slowdown ratio static/SD (>1 = SD better):", an.SlowdownRatio)
	print2D("wait-time ratio static/SD:", an.WaitRatio)

	fmt.Println("Expected shape (paper §4.2): small, short job categories show")
	fmt.Println("the largest gains; large long jobs move least.")
}

func print2D(title string, cells [][]float64) {
	nodeLabels, timeLabels := sdpolicy.HeatmapLabels()
	fmt.Println(title)
	fmt.Printf("%-16s", "")
	for _, tl := range timeLabels {
		fmt.Printf("%8s", tl)
	}
	fmt.Println()
	for i, row := range cells {
		hasData := false
		for _, v := range row {
			if !math.IsNaN(v) {
				hasData = true
			}
		}
		if !hasData {
			continue
		}
		fmt.Printf("%-16s", nodeLabels[i])
		for _, v := range row {
			if math.IsNaN(v) {
				fmt.Printf("%8s", "-")
			} else {
				fmt.Printf("%8.2f", v)
			}
		}
		fmt.Println()
	}
	fmt.Println()
}
