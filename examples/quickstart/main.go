// Quickstart: simulate one workload under static backfill and under
// SD-Policy, and compare the headline metrics of the paper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sdpolicy"
)

func main() {
	// The real-run workload of Table 1 (49 nodes, 2352 cores), scaled to
	// half size so the example finishes in about a second.
	w, err := sdpolicy.NewWorkload("wl5", 0.5, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d jobs on %d nodes (%d cores)\n\n",
		w.Name(), w.Jobs(), w.Nodes(), w.Cores())

	static, err := sdpolicy.Simulate(w, sdpolicy.Options{Policy: "static"})
	if err != nil {
		log.Fatal(err)
	}
	sd, err := sdpolicy.Simulate(w, sdpolicy.Options{Policy: "sd", MaxSlowdown: 10})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %14s %14s\n", "metric", "static", "sd-policy")
	fmt.Printf("%-22s %14d %14d\n", "makespan (s)", static.Makespan, sd.Makespan)
	fmt.Printf("%-22s %14.1f %14.1f\n", "avg response (s)", static.AvgResponse, sd.AvgResponse)
	fmt.Printf("%-22s %14.1f %14.1f\n", "avg slowdown", static.AvgSlowdown, sd.AvgSlowdown)
	fmt.Printf("%-22s %14.1f %14.1f\n", "energy (kWh)", static.EnergyKWh, sd.EnergyKWh)
	fmt.Printf("\nSD-Policy co-scheduled %d jobs (%.1f%%) using %d mates\n",
		sd.MalleableStarts, 100*float64(sd.MalleableStarts)/float64(sd.Jobs), sd.Mates)
	fmt.Printf("slowdown reduction: %.1f%%\n",
		100*(static.AvgSlowdown-sd.AvgSlowdown)/static.AvgSlowdown)
}
