// MAX_SLOWDOWN sweep (Figures 1-3 of the paper): how the mate cut-off
// parameter changes makespan, response time and slowdown relative to
// static backfill, on the Cirne workload.
//
//	go run ./examples/maxsd_sweep
package main

import (
	"fmt"
	"log"

	"sdpolicy"
)

func main() {
	// Figures 1-3 sweep wl1-wl4; one workload keeps the example quick.
	rows, err := sdpolicy.SweepMaxSD([]string{"wl1"}, 0.15, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wl1 (Cirne model), normalised to static backfill — lower is better")
	fmt.Printf("%-10s %10s %10s %10s %12s\n",
		"variant", "makespan", "response", "slowdown", "mall-starts")
	for _, r := range rows {
		fmt.Printf("%-10s %10.3f %10.3f %10.3f %12d\n",
			r.Variant, r.Makespan, r.AvgResponse, r.AvgSlowdown, r.MalleableStarts)
	}
	fmt.Println("\nExpected shape (paper §4.1): slowdown improves as the cut-off")
	fmt.Println("rises, and even MAXSD infinite never loses to static because the")
	fmt.Println("policy only applies malleability when the prediction improves.")
}
