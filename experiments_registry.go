package sdpolicy

import (
	"context"
	"fmt"

	"sdpolicy/internal/reducer"
)

// The experiment registry: every figure- and table-level experiment of
// the paper as a declarative reducer descriptor — a parameterised
// point-set generator plus an incremental fold turning streamed
// PointResults into rows and a terminal summary. One registry drives
// both the typed Engine helpers below (Engine.Experiment folds a local
// campaign) and the sdserve /v1/experiments plane (the server folds
// journaled result frames and ships rows + summary instead of raw
// points), so the two can never drift apart.

// ExperimentDescriptor is the registry's concrete descriptor type.
type ExperimentDescriptor = reducer.Descriptor[Point, *Result]

// ExperimentInstance is one parameterised fold of an experiment.
type ExperimentInstance = reducer.Instance[Point, *Result]

// Experiments returns the process-wide experiment registry.
func Experiments() *reducer.Registry[Point, *Result] { return experimentRegistry }

var experimentRegistry = newExperimentRegistry()

// Experiment runs one registry experiment by name on the engine:
// resolve parameters, simulate the instance's point set as a campaign,
// fold every result in input order, and return the typed summary
// ([]SweepRow, *BigAnalysis, ... depending on the experiment). It is
// the single execution path behind every typed Engine helper.
func (e *Engine) Experiment(ctx context.Context, name string, params reducer.Params) (any, error) {
	d := experimentRegistry.Get(name)
	if d == nil {
		return nil, fmt.Errorf("sdpolicy: unknown experiment %q: %w", name, ErrBadInput)
	}
	inst, err := d.Instance(params)
	if err != nil {
		return nil, fmt.Errorf("sdpolicy: experiment %s: %w: %w", name, err, ErrBadInput)
	}
	// Generation-only experiments (table2) never enter the campaign
	// engine, so honour cancellation explicitly before the work.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	points := inst.Points()
	if len(points) > 0 {
		results, err := e.Run(ctx, points)
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			if _, err := inst.Fold(i, res); err != nil {
				return nil, err
			}
		}
	}
	return inst.Summary()
}

// Shared parameter specs. Scale and seed default to the sdexp
// conventions (0.1 keeps the full suite in the minutes range; -scale 1
// reproduces the paper's workload sizes).
func scaleParam() reducer.ParamSpec {
	return reducer.ParamSpec{Name: "scale", Type: reducer.TypeFloat, Default: 0.1,
		Description: "workload scale factor (0,1]"}
}

func seedParam() reducer.ParamSpec {
	return reducer.ParamSpec{Name: "seed", Type: reducer.TypeUint, Default: uint64(1),
		Description: "generator seed"}
}

func workloadParam() reducer.ParamSpec {
	return reducer.ParamSpec{Name: "workload", Type: reducer.TypeString, Default: "wl1",
		Description: "workload preset (wl1..wl5)"}
}

func workloadsParam() reducer.ParamSpec {
	return reducer.ParamSpec{Name: "workloads", Type: reducer.TypeStrings,
		Default:     []string{"wl1", "wl2", "wl3", "wl4"},
		Description: "workload presets swept, in output order"}
}

func newExperimentRegistry() *reducer.Registry[Point, *Result] {
	r := reducer.NewRegistry[Point, *Result]()
	r.Register(&ExperimentDescriptor{
		Name:   "table1",
		Title:  "Table 1: workload inventory + static baseline aggregates",
		Params: []reducer.ParamSpec{scaleParam(), seedParam()},
		New: func(p reducer.Params) (ExperimentInstance, error) {
			return table1Instance(p.Float("scale"), p.Uint("seed")), nil
		},
	})
	r.Register(&ExperimentDescriptor{
		Name:        "table2",
		Title:       "Table 2: real-run application mix",
		Description: "generation only — no simulation points",
		Params:      []reducer.ParamSpec{scaleParam(), seedParam()},
		New: func(p reducer.Params) (ExperimentInstance, error) {
			return table2Instance(p.Float("scale"), p.Uint("seed")), nil
		},
	})
	r.Register(&ExperimentDescriptor{
		Name:   "sweep_maxsd",
		Title:  "Figures 1-3: makespan/response/slowdown vs MAX_SLOWDOWN",
		Params: []reducer.ParamSpec{workloadsParam(), scaleParam(), seedParam()},
		New: func(p reducer.Params) (ExperimentInstance, error) {
			return sweepInstance(p.Strings("workloads"), p.Float("scale"), p.Uint("seed")), nil
		},
	})
	r.Register(&ExperimentDescriptor{
		Name:   "runtime_models",
		Title:  "Figure 8: DynAVGSD under the ideal vs worst-case runtime model",
		Params: []reducer.ParamSpec{workloadsParam(), scaleParam(), seedParam()},
		New: func(p reducer.Params) (ExperimentInstance, error) {
			return modelsInstance(p.Strings("workloads"), p.Float("scale"), p.Uint("seed")), nil
		},
	})
	r.Register(&ExperimentDescriptor{
		Name:         "big_workload",
		Title:        "Figures 4-7: static vs SD(MAXSD 10) on the Curie-like workload",
		Description:  "category heatmaps and per-day series; needs per-job reports",
		Params:       []reducer.ParamSpec{scaleParam(), seedParam()},
		NeedsReports: true,
		New: func(p reducer.Params) (ExperimentInstance, error) {
			return bigWorkloadInstance(p.Float("scale"), p.Uint("seed")), nil
		},
	})
	r.Register(&ExperimentDescriptor{
		Name:   "real_run",
		Title:  "Figure 9: real-run emulation (application model + energy)",
		Params: []reducer.ParamSpec{scaleParam(), seedParam()},
		New: func(p reducer.Params) (ExperimentInstance, error) {
			return realRunInstance(p.Float("scale"), p.Uint("seed")), nil
		},
	})
	r.Register(&ExperimentDescriptor{
		Name:        "real_trace",
		Title:       "Real-trace replay: static vs SD on a registered SWF trace scenario",
		Description: "replays a registered trace (see -trace / -trace-dir) under scenario derivations: arrival-rate scaling, malleable share, optional QoS striping",
		Params: []reducer.ParamSpec{
			{Name: "trace", Type: reducer.TypeString, Default: "",
				Description: "registered trace ref (trace:<digest>, prefix optional)"},
			{Name: "load_factor", Type: reducer.TypeFloat, Default: 1.5,
				Description: "arrival compression ratio (scale_load); 1 replays the recorded load"},
			{Name: "malleable_fraction", Type: reducer.TypeFloat, Default: 0.3,
				Description: "fraction of jobs re-flagged malleable"},
			{Name: "qos_class", Type: reducer.TypeString, Default: "",
				Description: "queue/QoS class striped onto jobs (assign_qos); empty disables"},
			{Name: "qos_fraction", Type: reducer.TypeFloat, Default: 0.5,
				Description: "fraction of jobs tagged with qos_class"},
			{Name: "max_slowdown", Type: reducer.TypeFloat, Default: 10.0,
				Description: "SD variant's MAX_SLOWDOWN cut-off"},
		},
		New: func(p reducer.Params) (ExperimentInstance, error) {
			return realTraceInstance(p)
		},
	})
	r.Register(&ExperimentDescriptor{
		Name:  "ablate_sharing_factor",
		Title: "Ablation: SharingFactor sweep",
		Params: []reducer.ParamSpec{workloadParam(), scaleParam(), seedParam(),
			{Name: "factors", Type: reducer.TypeFloats, Default: []float64{0.25, 0.5, 0.75},
				Description: "SharingFactor values swept"}},
		New: func(p reducer.Params) (ExperimentInstance, error) {
			name, scale, seed := p.String("workload"), p.Float("scale"), p.Uint("seed")
			factors := p.Floats("factors")
			return ablateInstance("sharing-factor", name, scale, seed,
				floatValues("%.2f", factors), func(i int) Point {
					return NewPoint(name, scale, seed, Options{Policy: "sd", SharingFactor: factors[i]})
				}), nil
		},
	})
	r.Register(&ExperimentDescriptor{
		Name:  "ablate_max_mates",
		Title: "Ablation: mate combination bound sweep",
		Params: []reducer.ParamSpec{workloadParam(), scaleParam(), seedParam(),
			{Name: "mates", Type: reducer.TypeInts, Default: []int{1, 2, 3, 4},
				Description: "m, the mate combination bound values swept"}},
		New: func(p reducer.Params) (ExperimentInstance, error) {
			name, scale, seed := p.String("workload"), p.Float("scale"), p.Uint("seed")
			ms := p.Ints("mates")
			values := make([]string, len(ms))
			for i, m := range ms {
				values[i] = fmt.Sprintf("%d", m)
			}
			return ablateInstance("max-mates", name, scale, seed, values, func(i int) Point {
				return NewPoint(name, scale, seed, Options{Policy: "sd", MaxMates: ms[i]})
			}), nil
		},
	})
	r.Register(&ExperimentDescriptor{
		Name:  "ablate_malleable_fraction",
		Title: "Ablation: malleable share of a mixed rigid/malleable workload",
		Params: []reducer.ParamSpec{workloadParam(), scaleParam(), seedParam(),
			{Name: "fractions", Type: reducer.TypeFloats, Default: []float64{0, 0.25, 0.5, 0.75, 1},
				Description: "malleable job fractions swept"}},
		New: func(p reducer.Params) (ExperimentInstance, error) {
			name, scale, seed := p.String("workload"), p.Float("scale"), p.Uint("seed")
			fracs := p.Floats("fractions")
			return ablateInstance("malleable-fraction", name, scale, seed,
				floatValues("%.2f", fracs), func(i int) Point {
					pt := NewPoint(name, scale, seed, Options{Policy: "sd"})
					pt.MalleableFraction = fracs[i]
					return pt
				}), nil
		},
	})
	r.Register(&ExperimentDescriptor{
		Name:        "ablate_node_features",
		Title:       "Ablation: constrained-job share on a heterogeneous machine",
		Description: "half the nodes carry the feature; the swept fraction of jobs requires it",
		Params: []reducer.ParamSpec{workloadParam(), scaleParam(), seedParam(),
			{Name: "fractions", Type: reducer.TypeFloats, Default: []float64{0, 0.25, 0.5},
				Description: "constrained job fractions swept"}},
		New: func(p reducer.Params) (ExperimentInstance, error) {
			const feature = "bigmem"
			name, scale, seed := p.String("workload"), p.Float("scale"), p.Uint("seed")
			fracs := p.Floats("fractions")
			return ablateInstance("node-features", name, scale, seed,
				floatValues("%.2f", fracs), func(i int) Point {
					return NewDerivedPoint(name, scale, seed, Options{Policy: "sd"},
						TagNodesDerivation(feature, 0.5),
						RequireFeatureDerivation(feature, fracs[i]))
				}), nil
		},
	})
	r.Register(&ExperimentDescriptor{
		Name:   "ablate_free_node_mixing",
		Title:  "Ablation: mate selection with and without free nodes",
		Params: []reducer.ParamSpec{workloadParam(), scaleParam(), seedParam()},
		New: func(p reducer.Params) (ExperimentInstance, error) {
			name, scale, seed := p.String("workload"), p.Float("scale"), p.Uint("seed")
			mixes := []bool{false, true}
			values := make([]string, len(mixes))
			for i, mix := range mixes {
				values[i] = fmt.Sprintf("%v", mix)
			}
			return ablateInstance("free-node-mixing", name, scale, seed, values, func(i int) Point {
				return NewPoint(name, scale, seed, Options{Policy: "sd", IncludeFreeNodes: mixes[i]})
			}), nil
		},
	})
	r.Register(&ExperimentDescriptor{
		Name:   "compare_policies",
		Title:  "Policy comparison: static backfill vs oversubscription vs SD-Policy",
		Params: []reducer.ParamSpec{workloadParam(), scaleParam(), seedParam()},
		New: func(p reducer.Params) (ExperimentInstance, error) {
			name, scale, seed := p.String("workload"), p.Float("scale"), p.Uint("seed")
			policies := []string{"static", "oversubscribe", "sd"}
			return ablateInstance("policy", name, scale, seed, policies, func(i int) Point {
				return NewPoint(name, scale, seed, Options{Policy: policies[i]})
			}), nil
		},
	})
	return r
}

func floatValues(format string, vals []float64) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf(format, v)
	}
	return out
}

// expInstance is the shared fold shape: a fixed point set, results
// collected by position, and per-experiment emit/summary hooks reading
// the collected results. emit returns the rows that became computable
// when position i landed; summary the complete ordered result.
type expInstance struct {
	points  []Point
	results []*Result
	emit    func(i int) ([]any, error)
	summary func() (any, error)
}

func (x *expInstance) Points() []Point { return x.points }

func (x *expInstance) Fold(i int, res *Result) ([]any, error) {
	if i < 0 || i >= len(x.results) {
		return nil, fmt.Errorf("sdpolicy: fold index %d out of range [0,%d)", i, len(x.results))
	}
	if res == nil {
		return nil, fmt.Errorf("sdpolicy: fold index %d: nil result", i)
	}
	if x.results[i] != nil {
		// A duplicate delivery (replayed frame): the first fold already
		// emitted whatever this index unlocks.
		return nil, nil
	}
	x.results[i] = res
	if x.emit == nil {
		return nil, nil
	}
	return x.emit(i)
}

func (x *expInstance) Summary() (any, error) {
	for i, res := range x.results {
		if res == nil {
			return nil, fmt.Errorf("sdpolicy: summary before point %d folded", i)
		}
	}
	return x.summary()
}

// reportedInstance adds report folding for NeedsReports experiments:
// the per-point report encoding is attached to a clone of the stored
// result (the streamed pointer may be shared with other consumers),
// restoring what the result wire form strips.
type reportedInstance struct {
	*expInstance
}

func (x *reportedInstance) FoldReport(i int, report []byte) error {
	if i < 0 || i >= len(x.results) || x.results[i] == nil {
		return fmt.Errorf("sdpolicy: report for unfolded index %d", i)
	}
	clone := *x.results[i]
	if err := clone.SetReportJSON(report); err != nil {
		return fmt.Errorf("sdpolicy: report for index %d: %w", i, err)
	}
	x.results[i] = &clone
	return nil
}

// hasReport reports whether the result still carries its per-job
// report (stripped by the result wire form, restored by SetReportJSON).
func (r *Result) hasReport() bool { return len(r.report.Results) > 0 }

func table1Instance(scale float64, seed uint64) *expInstance {
	names := []string{"wl1", "wl2", "wl3", "wl4", "wl5"}
	points := make([]Point, len(names))
	for i, name := range names {
		points[i] = NewPoint(name, scale, seed, Options{Policy: "static"})
	}
	x := &expInstance{points: points, results: make([]*Result, len(points))}
	row := func(i int) (Table1Row, error) {
		w, err := NewWorkload(names[i], scale, seed)
		if err != nil {
			return Table1Row{}, err
		}
		res := x.results[i]
		return Table1Row{
			ID: names[i], Name: w.Name(), Jobs: w.Jobs(),
			Nodes: w.Nodes(), Cores: w.Cores(), MaxJobNodes: w.MaxJobNodes(),
			AvgResponse: res.AvgResponse, AvgSlowdown: res.AvgSlowdown,
			Makespan: res.Makespan,
		}, nil
	}
	x.emit = func(i int) ([]any, error) {
		t, err := row(i)
		if err != nil {
			return nil, err
		}
		return []any{t}, nil
	}
	x.summary = func() (any, error) {
		rows := make([]Table1Row, 0, len(names))
		for i := range names {
			t, err := row(i)
			if err != nil {
				return nil, err
			}
			rows = append(rows, t)
		}
		return rows, nil
	}
	return x
}

func table2Instance(scale float64, seed uint64) *expInstance {
	x := &expInstance{}
	x.summary = func() (any, error) { return table2Rows(scale, seed) }
	return x
}

func sweepInstance(workloads []string, scale float64, seed uint64) *expInstance {
	variants := MaxSDVariants()
	stride := 1 + len(variants) // baseline + variants per workload
	var points []Point
	for _, name := range workloads {
		points = append(points, NewPoint(name, scale, seed, Options{Policy: "static"}))
		for _, v := range variants {
			points = append(points, NewPoint(name, scale, seed, v.Options))
		}
	}
	x := &expInstance{points: points, results: make([]*Result, len(points))}
	row := func(wi, vi int) SweepRow {
		base, res := x.results[wi*stride], x.results[wi*stride+1+vi]
		return SweepRow{
			Workload:        workloads[wi],
			Variant:         variants[vi].Label,
			Makespan:        ratio(float64(res.Makespan), float64(base.Makespan)),
			AvgResponse:     ratio(res.AvgResponse, base.AvgResponse),
			AvgSlowdown:     ratio(res.AvgSlowdown, base.AvgSlowdown),
			MalleableStarts: res.MalleableStarts,
		}
	}
	x.emit = func(i int) ([]any, error) {
		wi, pos := i/stride, i%stride
		var rows []any
		if pos == 0 {
			for vi := range variants {
				if x.results[wi*stride+1+vi] != nil {
					rows = append(rows, row(wi, vi))
				}
			}
		} else if x.results[wi*stride] != nil {
			rows = append(rows, row(wi, pos-1))
		}
		return rows, nil
	}
	x.summary = func() (any, error) {
		var rows []SweepRow
		for wi := range workloads {
			for vi := range variants {
				rows = append(rows, row(wi, vi))
			}
		}
		return rows, nil
	}
	return x
}

func modelsInstance(workloads []string, scale float64, seed uint64) *expInstance {
	models := []string{"ideal", "worst"}
	var points []Point
	for _, name := range workloads {
		for _, mdl := range models {
			points = append(points, NewPoint(name, scale, seed, Options{Policy: "static", Model: mdl}))
			points = append(points, NewPoint(name, scale, seed, Options{Policy: "sd", DynamicCutoff: "avg", Model: mdl}))
		}
	}
	x := &expInstance{points: points, results: make([]*Result, len(points))}
	row := func(k int) ModelRow {
		base, res := x.results[2*k], x.results[2*k+1]
		return ModelRow{
			Workload:    workloads[k/len(models)],
			Model:       models[k%len(models)],
			Makespan:    ratio(float64(res.Makespan), float64(base.Makespan)),
			AvgResponse: ratio(res.AvgResponse, base.AvgResponse),
			AvgSlowdown: ratio(res.AvgSlowdown, base.AvgSlowdown),
		}
	}
	x.emit = func(i int) ([]any, error) {
		k := i / 2
		if x.results[2*k] == nil || x.results[2*k+1] == nil {
			return nil, nil
		}
		return []any{row(k)}, nil
	}
	x.summary = func() (any, error) {
		rows := make([]ModelRow, 0, len(points)/2)
		for k := 0; k < len(points)/2; k++ {
			rows = append(rows, row(k))
		}
		return rows, nil
	}
	return x
}

func bigWorkloadInstance(scale float64, seed uint64) ExperimentInstance {
	x := &expInstance{
		points: []Point{
			NewPoint("wl4", scale, seed, Options{Policy: "static"}),
			NewPoint("wl4", scale, seed, Options{Policy: "sd", MaxSlowdown: 10}),
		},
		results: make([]*Result, 2),
	}
	x.summary = func() (any, error) {
		static, sd := x.results[0], x.results[1]
		if !static.hasReport() || !sd.hasReport() {
			return nil, fmt.Errorf("sdpolicy: big_workload summary needs per-job reports; a result arrived without one")
		}
		return &BigAnalysis{
			Static:        static,
			SD:            sd,
			SlowdownRatio: static.HeatmapRatio(sd, HeatSlowdown),
			RunTimeRatio:  static.HeatmapRatio(sd, HeatRunTime),
			WaitRatio:     static.HeatmapRatio(sd, HeatWait),
			StaticDaily:   static.Daily(),
			SDDaily:       sd.Daily(),
		}, nil
	}
	return &reportedInstance{x}
}

func realRunInstance(scale float64, seed uint64) *expInstance {
	x := &expInstance{
		points: []Point{
			NewPoint("wl5", scale, seed, Options{Policy: "static", Model: "app"}),
			NewPoint("wl5", scale, seed, Options{Policy: "sd", DynamicCutoff: "avg", Model: "app"}),
		},
		results: make([]*Result, 2),
	}
	x.summary = func() (any, error) {
		static, sd := x.results[0], x.results[1]
		return &RealRunReport{
			Static:         static,
			SD:             sd,
			MakespanPct:    improvement(float64(static.Makespan), float64(sd.Makespan)),
			AvgResponsePct: improvement(static.AvgResponse, sd.AvgResponse),
			AvgSlowdownPct: improvement(static.AvgSlowdown, sd.AvgSlowdown),
			EnergyPct:      improvement(static.EnergyKWh, sd.EnergyKWh),
		}, nil
	}
	return x
}

// realTraceInstance replays one registered trace scenario — the
// "yesterday's cluster at 1.5x load with 30% malleable jobs" campaign
// — as a static-vs-SD pair of derived points over the trace ref.
func realTraceInstance(p reducer.Params) (*expInstance, error) {
	trace := p.String("trace")
	if trace == "" {
		return nil, fmt.Errorf("parameter \"trace\" is required")
	}
	ref := WorkloadRef{Trace: trace}
	name := ref.WorkloadName()
	derivs := []Derivation{MalleableFractionDerivation(p.Float("malleable_fraction"))}
	if f := p.Float("load_factor"); f != 1 {
		derivs = append([]Derivation{ScaleLoadDerivation(f)}, derivs...)
	}
	if class := p.String("qos_class"); class != "" {
		derivs = append(derivs, AssignQoSDerivation(class, p.Float("qos_fraction")))
	}
	x := &expInstance{
		points: []Point{
			NewDerivedPoint(name, 1, 1, Options{Policy: "static"}, derivs...),
			NewDerivedPoint(name, 1, 1, Options{Policy: "sd", MaxSlowdown: p.Float("max_slowdown")}, derivs...),
		},
		results: make([]*Result, 2),
	}
	x.summary = func() (any, error) {
		static, sd := x.results[0], x.results[1]
		return &RealRunReport{
			Static:         static,
			SD:             sd,
			MakespanPct:    improvement(float64(static.Makespan), float64(sd.Makespan)),
			AvgResponsePct: improvement(static.AvgResponse, sd.AvgResponse),
			AvgSlowdownPct: improvement(static.AvgSlowdown, sd.AvgSlowdown),
			EnergyPct:      improvement(static.EnergyKWh, sd.EnergyKWh),
		}, nil
	}
	return x, nil
}

// ablateInstance folds one design-choice sweep: points[0] is the
// static baseline, points[1+i] the variant labelled values[i]; every
// row normalises its variant against the baseline.
func ablateInstance(param, name string, scale float64, seed uint64, values []string, variant func(i int) Point) *expInstance {
	points := []Point{NewPoint(name, scale, seed, Options{Policy: "static"})}
	for i := range values {
		points = append(points, variant(i))
	}
	x := &expInstance{points: points, results: make([]*Result, len(points))}
	x.emit = func(i int) ([]any, error) {
		var rows []any
		if i == 0 {
			for vi := range values {
				if x.results[1+vi] != nil {
					rows = append(rows, ablation(param, values[vi], x.results[1+vi], x.results[0]))
				}
			}
		} else if x.results[0] != nil {
			rows = append(rows, ablation(param, values[i-1], x.results[i], x.results[0]))
		}
		return rows, nil
	}
	x.summary = func() (any, error) {
		rows := make([]AblationRow, 0, len(values))
		for i, v := range values {
			rows = append(rows, ablation(param, v, x.results[i+1], x.results[0]))
		}
		return rows, nil
	}
	return x
}
