package sdpolicy

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// mergeTestShards simulates the map step of a map-reduce campaign:
// each shard of points runs in its own engine and spills into its own
// cache directory. Returns the spill paths and the single-process
// reference results.
func mergeTestShards(t *testing.T, points []Point, n int) (paths []string, want []*Result) {
	t.Helper()
	ctx := context.Background()
	shards, err := PlanShards(points, n)
	if err != nil {
		t.Fatal(err)
	}
	base := t.TempDir()
	for i, s := range shards {
		engine := NewEngine(2, 64)
		if _, err := engine.Run(ctx, s.Points); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		dir := filepath.Join(base, "shard", string(rune('a'+i)))
		if _, err := engine.SaveCache(filepath.Join(dir, CacheFileName)); err != nil {
			t.Fatalf("shard %d spill: %v", i, err)
		}
		paths = append(paths, dir)
	}
	want, err = NewEngine(2, 64).Run(ctx, points)
	if err != nil {
		t.Fatal(err)
	}
	return paths, want
}

// TestMergeCacheMapReduce: merging per-shard spills gives a cache that
// answers the full campaign without a single simulation, identically
// to a single-process run.
func TestMergeCacheMapReduce(t *testing.T) {
	points := shardTestPoints()
	paths, want := mergeTestShards(t, points, 3)

	engine := NewEngine(2, 64)
	stats, err := engine.MergeCache(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Conflicts) != 0 {
		t.Fatalf("deterministic shards reported conflicts: %v", stats.Conflicts)
	}
	if stats.Files != 3 {
		t.Fatalf("merged %d files, want 3", stats.Files)
	}
	got, err := engine.Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := engine.CacheStats(); misses != 0 {
		t.Fatalf("merged cache still simulated %d points, want 0", misses)
	}
	for i := range want {
		gotJSON, _ := json.Marshal(got[i])
		wantJSON, _ := json.Marshal(want[i])
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("point %d: %s, want %s", i, gotJSON, wantJSON)
		}
	}
	// The merged spill must be byte-identical to a single process's
	// spill of the same campaign — the acceptance criterion behind the
	// sdexp -shard/-merge-cache CI gate.
	single := NewEngine(2, 64)
	if _, err := single.Run(context.Background(), points); err != nil {
		t.Fatal(err)
	}
	singlePath := filepath.Join(t.TempDir(), CacheFileName)
	if _, err := single.SaveCache(singlePath); err != nil {
		t.Fatal(err)
	}
	mergedPath := filepath.Join(t.TempDir(), CacheFileName)
	if _, err := engine.SaveCache(mergedPath); err != nil {
		t.Fatal(err)
	}
	singleBytes, _ := os.ReadFile(singlePath)
	mergedBytes, _ := os.ReadFile(mergedPath)
	if string(singleBytes) != string(mergedBytes) {
		t.Fatal("merged spill differs from single-process spill")
	}
}

// TestMergeCacheOverlappingEntries: the same point spilled by two
// shards (identical payloads) coalesces without a conflict.
func TestMergeCacheOverlappingEntries(t *testing.T) {
	ctx := context.Background()
	p := NewPoint("wl5", 0.2, 1, Options{Policy: "static"})
	base := t.TempDir()
	var paths []string
	for _, name := range []string{"a", "b"} {
		engine := NewEngine(1, 8)
		if _, err := engine.Run(ctx, []Point{p}); err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(base, name)
		if _, err := engine.SaveCache(filepath.Join(dir, CacheFileName)); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, dir)
	}
	engine := NewEngine(1, 8)
	stats, err := engine.MergeCache(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 1 || len(stats.Conflicts) != 0 {
		t.Fatalf("stats = %+v, want 1 entry, 0 conflicts", stats)
	}
}

// conflictingSpills writes two spill files that disagree about one
// canonical point's payload, returning their paths. The corrupted copy
// perturbs a result field, standing in for a determinism bug.
func conflictingSpills(t *testing.T) (good, bad string) {
	t.Helper()
	ctx := context.Background()
	p := NewPoint("wl5", 0.2, 1, Options{Policy: "static"})
	engine := NewEngine(1, 8)
	if _, err := engine.Run(ctx, []Point{p}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	good = filepath.Join(dir, "good.json")
	if _, err := engine.SaveCache(good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		Version int               `json:"version"`
		Entries []json.RawMessage `json:"entries"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	var entry map[string]json.RawMessage
	if err := json.Unmarshal(file.Entries[0], &entry); err != nil {
		t.Fatal(err)
	}
	var res map[string]any
	if err := json.Unmarshal(entry["result"], &res); err != nil {
		t.Fatal(err)
	}
	res["makespan"] = float64(1) // the divergent payload
	entry["result"], _ = json.Marshal(res)
	file.Entries[0], _ = json.Marshal(entry)
	mutated, _ := json.Marshal(file)
	bad = filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	return good, bad
}

// TestMergeCacheConflictDeterministicWinner: conflicting payloads for
// one canonical point are reported, and the winner is the same no
// matter which order the inputs are merged in.
func TestMergeCacheConflictDeterministicWinner(t *testing.T) {
	good, bad := conflictingSpills(t)
	snapshot := func(order ...string) (string, CacheMergeStats) {
		engine := NewEngine(1, 8)
		stats, err := engine.MergeCache(order...)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), CacheFileName)
		if _, err := engine.SaveCache(path); err != nil {
			t.Fatal(err)
		}
		data, _ := os.ReadFile(path)
		return string(data), stats
	}
	ab, statsAB := snapshot(good, bad)
	ba, statsBA := snapshot(bad, good)
	if ab != ba {
		t.Fatal("merge winner depends on input order")
	}
	for _, stats := range []CacheMergeStats{statsAB, statsBA} {
		if stats.Entries != 1 {
			t.Fatalf("stats = %+v, want 1 entry", stats)
		}
		if len(stats.Conflicts) != 1 {
			t.Fatalf("conflicts = %v, want exactly 1 logged discrepancy", stats.Conflicts)
		}
		if !strings.Contains(stats.Conflicts[0], "wl5") {
			t.Fatalf("conflict description %q does not identify the point", stats.Conflicts[0])
		}
	}
}

// TestSaveCacheReportsConflicts: merge-on-save surfaces divergent
// payloads for one canonical point just like MergeCache does, instead
// of silently trusting the deterministic winner.
func TestSaveCacheReportsConflicts(t *testing.T) {
	_, bad := conflictingSpills(t)
	engine := NewEngine(1, 8)
	if _, err := engine.Run(context.Background(), []Point{NewPoint("wl5", 0.2, 1, Options{Policy: "static"})}); err != nil {
		t.Fatal(err)
	}
	stats, err := engine.SaveCache(bad)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files != 1 || stats.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 file folded in, 1 entry written", stats)
	}
	if len(stats.Conflicts) != 1 || !strings.Contains(stats.Conflicts[0], "wl5") {
		t.Fatalf("conflicts = %v, want exactly 1 logged discrepancy naming the point", stats.Conflicts)
	}
}

// TestSaveCacheMergesExistingSpill: two engines that simulated
// different points and save into the same file both survive — the
// second save merges instead of clobbering the first.
func TestSaveCacheMergesExistingSpill(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), CacheFileName)
	p1 := NewPoint("wl5", 0.2, 1, Options{Policy: "static"})
	p2 := NewPoint("wl5", 0.2, 1, Options{Policy: "sd", MaxSlowdown: 10})
	for _, p := range []Point{p1, p2} {
		engine := NewEngine(1, 8)
		if _, err := engine.Run(ctx, []Point{p}); err != nil {
			t.Fatal(err)
		}
		if _, err := engine.SaveCache(path); err != nil {
			t.Fatal(err)
		}
	}
	cold := NewEngine(1, 8)
	if err := cold.LoadCache(path); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Run(ctx, []Point{p1, p2}); err != nil {
		t.Fatal(err)
	}
	if _, misses := cold.CacheStats(); misses != 0 {
		t.Fatalf("merged spill missing entries: %d simulations, want 0", misses)
	}
}

// TestSaveCacheRefusesToClobberCorruptSpill: an existing spill that
// fails to decode (other than a version mismatch, the documented
// format-upgrade replacement) aborts the save — overwriting it could
// silently drop another shard's entries.
func TestSaveCacheRefusesToClobberCorruptSpill(t *testing.T) {
	ctx := context.Background()
	engine := NewEngine(1, 8)
	if _, err := engine.Run(ctx, []Point{NewPoint("wl5", 0.2, 1, Options{Policy: "static"})}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	corrupt := filepath.Join(dir, CacheFileName)
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.SaveCache(corrupt); err == nil {
		t.Fatal("save over a corrupt spill succeeded")
	}
	if data, _ := os.ReadFile(corrupt); string(data) != "{not json" {
		t.Fatal("corrupt spill was clobbered despite the error")
	}
	// A version mismatch is the upgrade path: replaced, not fatal.
	stale := filepath.Join(dir, "stale", CacheFileName)
	if err := os.MkdirAll(filepath.Dir(stale), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stale, []byte(`{"version":999,"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.SaveCache(stale); err != nil {
		t.Fatalf("save over a version-mismatched spill: %v", err)
	}
	cold := NewEngine(1, 8)
	if err := cold.LoadCache(stale); err != nil {
		t.Fatalf("replaced spill does not load: %v", err)
	}
}

// TestSaveCacheConcurrentWriters: shards racing to spill into one
// shared file (the -cache-dir sharing case the lock file guards) must
// all land their entries, and the file must stay valid throughout.
func TestSaveCacheConcurrentWriters(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), CacheFileName)
	points := shardTestPoints()
	shards, err := PlanShards(points, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(shards))
	for _, s := range shards {
		wg.Add(1)
		go func(s CampaignShard) {
			defer wg.Done()
			engine := NewEngine(1, 32)
			if _, err := engine.Run(ctx, s.Points); err != nil {
				errs <- err
				return
			}
			_, serr := engine.SaveCache(path)
			errs <- serr
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	cold := NewEngine(1, 32)
	if err := cold.LoadCache(path); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Run(ctx, points); err != nil {
		t.Fatal(err)
	}
	if _, misses := cold.CacheStats(); misses != 0 {
		t.Fatalf("shared spill dropped entries: %d simulations after merge, want 0", misses)
	}
}

// TestMergeCacheRejectsOverflow: a merged entry set larger than the
// engine's cache would silently evict the overflow and re-simulate it
// on replay; the merge must refuse instead of reporting success.
func TestMergeCacheRejectsOverflow(t *testing.T) {
	ctx := context.Background()
	engine := NewEngine(1, 8)
	points := []Point{
		NewPoint("wl5", 0.2, 1, Options{Policy: "static"}),
		NewPoint("wl5", 0.2, 1, Options{Policy: "sd", MaxSlowdown: 10}),
	}
	if _, err := engine.Run(ctx, points); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), CacheFileName)
	if _, err := engine.SaveCache(path); err != nil {
		t.Fatal(err)
	}
	small := NewEngine(1, 1)
	if _, err := small.MergeCache(path); !errors.Is(err, ErrBadInput) {
		t.Fatalf("2 entries into a 1-entry cache: err = %v, want ErrBadInput", err)
	}
}

// TestMergeCacheRejectsBadInputs: unreadable or invalid files abort
// the merge without priming anything.
func TestMergeCacheRejectsBadInputs(t *testing.T) {
	engine := NewEngine(1, 8)
	if _, err := engine.MergeCache(); err == nil {
		t.Fatal("empty path list accepted")
	}
	if _, err := engine.MergeCache(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":999,"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.MergeCache(bad); err == nil {
		t.Fatal("version-mismatched file accepted")
	}
}
