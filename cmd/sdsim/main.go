// Command sdsim runs one workload under one scheduling policy and prints
// the evaluation metrics of the paper (makespan, average response time,
// average slowdown, energy, malleability counters).
//
// Examples:
//
//	sdsim -wl wl1 -scale 0.25 -policy sd -maxsd 10
//	sdsim -wl wl4 -scale 0.1 -policy sd -maxsd dyn -model worst
//	sdsim -swf trace.swf -cores-per-node 16 -nodes 5040 -policy static
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"

	"sdpolicy/internal/apps"
	"sdpolicy/internal/cluster"
	"sdpolicy/internal/job"
	"sdpolicy/internal/model"
	"sdpolicy/internal/sched"
	"sdpolicy/internal/swf"
	"sdpolicy/internal/trace"
	"sdpolicy/internal/workload"
)

func main() {
	var (
		wlName    = flag.String("wl", "wl5", "workload preset: wl1..wl5")
		swfPath   = flag.String("swf", "", "load an SWF trace instead of a preset")
		nodes     = flag.Int("nodes", 0, "machine nodes when loading SWF")
		cpn       = flag.Int("cores-per-node", 48, "cores per node when loading SWF")
		scale     = flag.Float64("scale", 1.0, "workload scale factor (0,1]")
		seed      = flag.Uint64("seed", 1, "workload generator seed")
		policy    = flag.String("policy", "static", "policy: static | sd | oversub")
		maxsd     = flag.String("maxsd", "inf", "MAX_SLOWDOWN: number, inf, dyn, dyn-median, dyn-p70")
		mdl       = flag.String("model", "ideal", "runtime model: ideal | worst | app")
		sf        = flag.Float64("sf", 0.5, "sharing factor")
		mates     = flag.Int("mates", 2, "max mates per malleable start")
		depth     = flag.Int("depth", 100, "backfill depth")
		freeMix   = flag.Bool("free", false, "allow mixing free nodes into mate selections")
		mallFrac  = flag.Float64("malleable", -1, "override malleable job fraction (0..1)")
		verbose   = flag.Bool("v", false, "print per-day series and heatmap summaries")
		traceFile = flag.String("trace", "", "write a CSV scheduling-event trace to this file")
		timeline  = flag.String("timeline", "", "write a CSV core-usage timeline to this file")
	)
	flag.Parse()

	spec, err := loadWorkload(*wlName, *swfPath, *nodes, *cpn, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdsim:", err)
		os.Exit(1)
	}
	if *mallFrac >= 0 {
		// Variants are derivations over the immutable generated spec, not
		// in-place mutations — same pipeline as the campaign engine.
		derived, err := workload.Derive(&spec, []workload.Derivation{workload.MalleableFraction(*mallFrac)})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdsim:", err)
			os.Exit(1)
		}
		spec = *derived
	}

	cfg, err := buildConfig(*policy, *maxsd, *mdl, *sf, *mates, *depth, *freeMix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdsim:", err)
		os.Exit(1)
	}
	var rec *trace.Recorder
	if *traceFile != "" || *timeline != "" {
		rec = trace.NewRecorder()
		cfg.Observer = rec
	}

	res, err := sched.Run(spec, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdsim:", err)
		os.Exit(1)
	}
	printResult(&spec, res, *verbose)
	if rec != nil {
		if err := writeTraces(rec, *traceFile, *timeline); err != nil {
			fmt.Fprintln(os.Stderr, "sdsim:", err)
			os.Exit(1)
		}
		fmt.Printf("utilization   %.1f%% of cores over the run\n",
			100*rec.MeanUtilization(spec.Cluster.TotalCores()))
	}
}

func writeTraces(rec *trace.Recorder, traceFile, timeline string) error {
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
	}
	if timeline != "" {
		f, err := os.Create(timeline)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteTimelineCSV(f); err != nil {
			return err
		}
	}
	return nil
}

func loadWorkload(preset, swfPath string, nodes, cpn int, scale float64, seed uint64) (workload.Spec, error) {
	if swfPath == "" {
		return workload.ByName(preset, scale, seed)
	}
	f, err := os.Open(swfPath)
	if err != nil {
		return workload.Spec{}, err
	}
	defer f.Close()
	recs, err := swf.Parse(f)
	if err != nil {
		return workload.Spec{}, err
	}
	jobs := swf.ToJobs(recs, cpn, job.Malleable)
	workload.SortBySubmit(jobs)
	if nodes <= 0 {
		return workload.Spec{}, fmt.Errorf("-nodes required with -swf")
	}
	return workload.Spec{
		Name:    swfPath,
		Cluster: cluster.Config{Nodes: nodes, Sockets: 2, CoresPerSocket: (cpn + 1) / 2},
		Jobs:    jobs,
	}, nil
}

func buildConfig(policy, maxsd, mdl string, sf float64, mates, depth int, freeMix bool) (sched.Config, error) {
	cfg := sched.Defaults()
	switch policy {
	case "static":
		cfg.Policy = sched.StaticBackfill
	case "sd":
		cfg.Policy = sched.SDPolicy
	case "oversub":
		cfg.Policy = sched.Oversubscribe
		cfg.OversubPenalty = 0.15
	default:
		return cfg, fmt.Errorf("unknown policy %q", policy)
	}
	switch maxsd {
	case "inf":
		cfg.MaxSlowdown = math.Inf(1)
	case "dyn":
		cfg.Cutoff = sched.CutoffDynAvg
	case "dyn-median":
		cfg.Cutoff = sched.CutoffDynMedian
	case "dyn-p70":
		cfg.Cutoff = sched.CutoffDynP70
	default:
		v, err := strconv.ParseFloat(maxsd, 64)
		if err != nil {
			return cfg, fmt.Errorf("bad -maxsd %q", maxsd)
		}
		cfg.MaxSlowdown = v
	}
	switch mdl {
	case "ideal":
		cfg.RuntimeModel = model.Ideal
	case "worst":
		cfg.RuntimeModel = model.WorstCase
	case "app":
		cfg.RuntimeModel = model.App
		cfg.Speedups = apps.SpeedupProvider
	default:
		return cfg, fmt.Errorf("unknown model %q", mdl)
	}
	cfg.SharingFactor = sf
	cfg.MaxMates = mates
	cfg.BackfillDepth = depth
	cfg.IncludeFreeNodes = freeMix
	return cfg, nil
}

func printResult(spec *workload.Spec, res *sched.Result, verbose bool) {
	rep := &res.Report
	fmt.Printf("workload      %s (%d jobs, %d nodes x %d cores)\n",
		res.Workload, len(spec.Jobs), spec.Cluster.Nodes, spec.Cluster.CoresPerNode())
	fmt.Printf("policy        %s\n", res.Policy)
	fmt.Printf("makespan      %d s\n", rep.Makespan())
	fmt.Printf("avg response  %.1f s\n", rep.AvgResponse())
	fmt.Printf("avg wait      %.1f s\n", rep.AvgWait())
	fmt.Printf("avg slowdown  %.1f\n", rep.AvgSlowdown())
	fmt.Printf("energy        %.1f kWh\n", res.EnergyJoules/3.6e6)
	fmt.Printf("malleable     %d starts (%.1f%%), %d mates (%.1f%%)\n",
		res.MalleableStarts, 100*float64(res.MalleableStarts)/float64(len(spec.Jobs)),
		res.Mates, 100*float64(res.Mates)/float64(len(spec.Jobs)))
	fmt.Printf("drom          %d registered, %d mask sets\n", res.DROM.Registered, res.DROM.MaskSets)
	fmt.Printf("sim           %d events, %d passes\n", res.Events, res.Passes)
	if !verbose {
		return
	}
	fmt.Println("\nper-day slowdown:")
	for _, d := range rep.Daily() {
		fmt.Printf("  day %3d  jobs %6d  avg-slowdown %10.1f  malleable %5d\n",
			d.Day, d.Jobs, d.AvgSlowdown, d.MalleableStarts)
	}
}
