package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"

	"sdpolicy"
	"sdpolicy/internal/reducer"
	"sdpolicy/internal/serve"
	"sdpolicy/internal/viz"
)

// The -experiment mode: run one registry experiment (the same registry
// sdserve exposes as /v1/experiments) locally or remotely and render
// its typed result. Unlike -exp there is no banner or timing line, so
// a local and a remote run of the same experiment produce byte-
// identical output — which is exactly what the CI experiments gate
// diffs.

// runExperiment runs the named registry experiment. With serverList
// (comma-separated equivalent sdserve bases) the experiment is created
// as a /v1/experiments resource and the terminal summary frame is
// decoded back into the experiment's Go result type; otherwise the
// local engine simulates it. Both paths render identically.
func (r *runner) runExperiment(name, serverList string) error {
	if name == "list" {
		for _, d := range sdpolicy.Experiments().List() {
			fmt.Printf("%-26s %s\n", d.Name, d.Title)
		}
		return nil
	}
	d := sdpolicy.Experiments().Get(name)
	if d == nil {
		return fmt.Errorf("unknown experiment %q (-experiment list prints the registry)", name)
	}
	// Carry the -scale/-seed flags into whichever of the experiment's
	// parameters they correspond to; everything else runs on defaults.
	params := reducer.Params{}
	for _, ps := range d.Params {
		switch ps.Name {
		case "scale":
			params["scale"] = r.scale
		case "seed":
			params["seed"] = r.seed
		}
	}
	var result any
	if serverList != "" {
		var bases []string
		for _, b := range strings.Split(serverList, ",") {
			if b = strings.TrimSpace(b); b != "" {
				bases = append(bases, b)
			}
		}
		raw, err := serve.RunRemoteExperiment(r.ctx, http.DefaultClient, bases, name, params, nil)
		if err != nil {
			return err
		}
		result, err = decodeExperimentSummary(name, raw)
		if err != nil {
			return err
		}
	} else {
		var err error
		result, err = r.engine.Experiment(r.ctx, name, params)
		if err != nil {
			return err
		}
	}
	return renderExperiment(os.Stdout, result)
}

// decodeExperimentSummary decodes a terminal summary frame's raw JSON
// into the experiment's Go result type, so the remote path renders
// through exactly the code the local path uses.
func decodeExperimentSummary(name string, raw json.RawMessage) (any, error) {
	decode := func(v any) (any, error) {
		if err := json.Unmarshal(raw, v); err != nil {
			return nil, fmt.Errorf("experiment %s summary: %w", name, err)
		}
		return v, nil
	}
	switch name {
	case "table1":
		v, err := decode(&[]sdpolicy.Table1Row{})
		if err != nil {
			return nil, err
		}
		return *v.(*[]sdpolicy.Table1Row), nil
	case "table2":
		v, err := decode(&[]sdpolicy.Table2Row{})
		if err != nil {
			return nil, err
		}
		return *v.(*[]sdpolicy.Table2Row), nil
	case "sweep_maxsd":
		v, err := decode(&[]sdpolicy.SweepRow{})
		if err != nil {
			return nil, err
		}
		return *v.(*[]sdpolicy.SweepRow), nil
	case "runtime_models":
		v, err := decode(&[]sdpolicy.ModelRow{})
		if err != nil {
			return nil, err
		}
		return *v.(*[]sdpolicy.ModelRow), nil
	case "big_workload":
		return decode(&sdpolicy.BigAnalysis{})
	case "real_run":
		return decode(&sdpolicy.RealRunReport{})
	default:
		// Every ablation family (and compare_policies) reduces to rows.
		v, err := decode(&[]sdpolicy.AblationRow{})
		if err != nil {
			return nil, err
		}
		return *v.(*[]sdpolicy.AblationRow), nil
	}
}

// renderExperiment dispatches on the experiment's result type. The
// render functions are shared with the legacy -exp runners, so the two
// modes can never drift apart on formatting.
func renderExperiment(w io.Writer, result any) error {
	switch v := result.(type) {
	case []sdpolicy.Table1Row:
		renderTable1(w, v)
	case []sdpolicy.Table2Row:
		renderTable2(w, v)
	case []sdpolicy.SweepRow:
		renderSweep(w, v)
	case []sdpolicy.ModelRow:
		renderModels(w, v)
	case *sdpolicy.BigAnalysis:
		renderBigHeatmaps(w, v)
		renderBigDaily(w, v)
	case *sdpolicy.RealRunReport:
		renderRealRun(w, v)
	case []sdpolicy.AblationRow:
		fmt.Fprintln(w, "normalised to static backfill (lower is better)")
		renderAblationTable(w, v)
	default:
		return fmt.Errorf("no renderer for experiment result type %T", result)
	}
	return nil
}

func renderTable1(w io.Writer, rows []sdpolicy.Table1Row) {
	fmt.Fprintf(w, "%-5s %-16s %8s %7s %8s %8s %14s %14s %12s\n",
		"ID", "Log/model", "#jobs", "nodes", "cores", "max-job", "avg-resp(s)", "avg-slowdown", "makespan(s)")
	for _, t := range rows {
		fmt.Fprintf(w, "%-5s %-16s %8d %7d %8d %8d %14.1f %14.1f %12d\n",
			t.ID, t.Name, t.Jobs, t.Nodes, t.Cores, t.MaxJobNodes,
			t.AvgResponse, t.AvgSlowdown, t.Makespan)
	}
}

func renderTable2(w io.Writer, rows []sdpolicy.Table2Row) {
	fmt.Fprintf(w, "%-12s %10s %10s\n", "Application", "share(%)", "paper(%)")
	paper := map[string]float64{"PILS": 30.5, "STREAM": 30.8, "CoreNeuron": 35.5, "NEST": 2.6, "Alya": 0.6}
	for _, t := range rows {
		fmt.Fprintf(w, "%-12s %10.1f %10.1f\n", t.App, t.SharePct, paper[t.App])
	}
}

func renderSweep(w io.Writer, rows []sdpolicy.SweepRow) {
	fmt.Fprintln(w, "values normalised to the static backfill baseline (1.00 = equal)")
	fmt.Fprintf(w, "%-5s %-10s %10s %10s %10s %10s\n",
		"WL", "variant", "makespan", "response", "slowdown", "mall-jobs")
	for _, row := range rows {
		fmt.Fprintf(w, "%-5s %-10s %10.3f %10.3f %10.3f %10d\n",
			row.Workload, row.Variant, row.Makespan, row.AvgResponse,
			row.AvgSlowdown, row.MalleableStarts)
	}
	fmt.Fprintln(w)
	charts := []struct {
		title string
		pick  func(sdpolicy.SweepRow) float64
	}{
		{"Figure 1: makespan normalised to static backfill ('|' = 1.0)", func(x sdpolicy.SweepRow) float64 { return x.Makespan }},
		{"Figure 2: avg response time normalised to static backfill", func(x sdpolicy.SweepRow) float64 { return x.AvgResponse }},
		{"Figure 3: avg slowdown normalised to static backfill", func(x sdpolicy.SweepRow) float64 { return x.AvgSlowdown }},
	}
	for _, c := range charts {
		var bars []viz.Bar
		for _, row := range rows {
			bars = append(bars, viz.Bar{Label: row.Workload + " " + row.Variant, Value: c.pick(row)})
		}
		viz.HBar(w, c.title, bars, viz.HBarConfig{Width: 40, Reference: 1.0})
		fmt.Fprintln(w)
	}
}

func renderBigHeatmaps(w io.Writer, an *sdpolicy.BigAnalysis) {
	fmt.Fprintf(w, "wl4: static slowdown %.1f vs SD(MAXSD 10) %.1f (%.1f%% reduction)\n",
		an.Static.AvgSlowdown, an.SD.AvgSlowdown,
		100*(an.Static.AvgSlowdown-an.SD.AvgSlowdown)/an.Static.AvgSlowdown)
	printHeatmap(w, "Figure 4: slowdown ratio static/SD per job category", an.SlowdownRatio)
	printHeatmap(w, "Figure 5: runtime ratio static/SD per job category", an.RunTimeRatio)
	printHeatmap(w, "Figure 6: wait-time ratio static/SD per job category", an.WaitRatio)
}

func printHeatmap(w io.Writer, title string, cells [][]float64) {
	nodeLabels, timeLabels := sdpolicy.HeatmapLabels()
	viz.Heat(w, title, nodeLabels, timeLabels, cells)
	fmt.Fprintln(w)
}

func renderBigDaily(w io.Writer, an *sdpolicy.BigAnalysis) {
	fmt.Fprintf(w, "malleable starts %d (%.1f%% of jobs), mates %d (%.1f%%)\n",
		an.SD.MalleableStarts, 100*float64(an.SD.MalleableStarts)/float64(an.SD.Jobs),
		an.SD.Mates, 100*float64(an.SD.Mates)/float64(an.SD.Jobs))
	sdByDay := map[int]sdpolicy.DayPoint{}
	for _, d := range an.SDDaily {
		sdByDay[d.Day] = d
	}
	fmt.Fprintf(w, "%-5s %12s %12s %12s\n", "day", "static-sd", "sdpolicy-sd", "mall-starts")
	lastDay := 0
	for _, d := range an.StaticDaily {
		sd := sdByDay[d.Day]
		fmt.Fprintf(w, "%-5d %12.1f %12.1f %12d\n", d.Day, d.AvgSlowdown, sd.AvgSlowdown, sd.MalleableStarts)
		if d.Day > lastDay {
			lastDay = d.Day
		}
	}
	static := make([]float64, lastDay+1)
	sdpts := make([]float64, lastDay+1)
	for i := range static {
		static[i], sdpts[i] = math.NaN(), math.NaN()
	}
	for _, d := range an.StaticDaily {
		static[d.Day] = d.AvgSlowdown
	}
	for _, d := range an.SDDaily {
		sdpts[d.Day] = d.AvgSlowdown
	}
	fmt.Fprintln(w)
	viz.Plot(w, "Figure 7: per-day average slowdown (x = day)", 12, []viz.Series{
		{Name: "static backfill", Points: static},
		{Name: "SD-Policy MAXSD 10", Points: sdpts},
	})
}

func renderModels(w io.Writer, rows []sdpolicy.ModelRow) {
	fmt.Fprintln(w, "SD-Policy DynAVGSD normalised to static backfill, per runtime model")
	fmt.Fprintf(w, "%-5s %-7s %10s %10s %10s\n", "WL", "model", "makespan", "response", "slowdown")
	for _, row := range rows {
		fmt.Fprintf(w, "%-5s %-7s %10.3f %10.3f %10.3f\n",
			row.Workload, row.Model, row.Makespan, row.AvgResponse, row.AvgSlowdown)
	}
}

func renderRealRun(w io.Writer, rep *sdpolicy.RealRunReport) {
	fmt.Fprintln(w, "improvement of SD-Policy over static backfill (positive = better):")
	fmt.Fprintf(w, "%-14s %10s %10s\n", "metric", "ours(%)", "paper(%)")
	fmt.Fprintf(w, "%-14s %10.1f %10.1f\n", "makespan", rep.MakespanPct, 7.0)
	fmt.Fprintf(w, "%-14s %10.1f %10.1f\n", "avg response", rep.AvgResponsePct, 16.0)
	fmt.Fprintf(w, "%-14s %10.1f %10.1f\n", "avg slowdown", rep.AvgSlowdownPct, 16.0)
	fmt.Fprintf(w, "%-14s %10.1f %10.1f\n", "energy", rep.EnergyPct, 6.0)
	fmt.Fprintf(w, "malleable starts: %d of %d jobs\n", rep.SD.MalleableStarts, rep.SD.Jobs)
}

func renderAblationTable(w io.Writer, rows []sdpolicy.AblationRow) {
	fmt.Fprintf(w, "%-20s %-8s %10s %10s %10s\n", "parameter", "value", "slowdown", "response", "makespan")
	last := ""
	for _, row := range rows {
		if row.Parameter != last {
			fmt.Fprintln(w, strings.Repeat("-", 62))
			last = row.Parameter
		}
		fmt.Fprintf(w, "%-20s %-8s %10.3f %10.3f %10.3f\n",
			row.Parameter, row.Value, row.AvgSlowdown, row.AvgResponse, row.Makespan)
	}
}
