// Command sdexp regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §5 for the experiment index):
//
//	table1  workload inventory + static baseline aggregates
//	table2  real-run application mix
//	fig1-3  makespan / response / slowdown vs MAX_SLOWDOWN, WL1-4
//	fig4-6  category heatmaps static/SD on the Curie-like workload
//	fig7    per-day slowdown series + malleable starts
//	fig8    ideal vs worst-case runtime model
//	fig9    real-run emulation (application model + energy)
//	ablations  design-choice sweeps (sharing factor, max mates,
//	           malleable fraction, free-node mixing, node features)
//
// The default -scale 0.1 keeps the full suite in the minutes range;
// -scale 1 reproduces the paper's full workload sizes (wl4 alone then
// simulates 198509 jobs and takes correspondingly long).
//
// -experiment name runs one experiment of the shared registry (the
// same registry sdserve exposes as /v1/experiments; -experiment list
// prints it) and renders its result without the -exp banner and timing
// lines, so two runs of the same experiment are byte-comparable.
// Combined with -server url1,url2 the experiment is created as a
// /v1/experiments resource on a remote sdserve deployment — the server
// simulates (fanning out to its worker fleet if it is a coordinator)
// and streams back reduced rows plus a summary, and the rendered output
// is byte-identical to the local run.
//
// -points file.json bypasses the experiment index and streams an
// arbitrary campaign — a JSON array of {workload, scale, seed,
// malleable_fraction, derivations, options} points, the same wire
// format as the sdserve /v1/campaign endpoint — as NDJSON on stdout,
// one line per point in input order, emitted incrementally as points
// complete. -progress adds point-level progress on stderr; Ctrl-C
// aborts the campaign mid-simulation.
//
// -trace file1.swf,file2.swf registers SWF traces before the run; each
// compiles to an immutable workload addressable as trace:<digest>
// anywhere a generator name is accepted (points files, workload_ref,
// the real_trace experiment's trace parameter). The digest is printed
// on stderr at registration. For -server runs the remote deployment
// must hold the same traces (sdserve -trace-dir).
//
// -cache-dir dir persists the campaign result cache across runs: the
// engine loads dir/campaign-cache.json on start and spills its memoised
// results back on exit (even after an error or Ctrl-C), so repeating a
// full-scale run only simulates the points that changed. Spills merge:
// concurrent writers sharing one directory (a job array) each
// contribute their entries instead of clobbering each other.
//
// Distributed runs compose three flags on top of -points:
//
//   - -shard i/n (1-based) runs only the i-th of n deterministic
//     shards of the campaign — clusterless fan-out via a job array.
//     Output lines keep their original campaign indices, and shard
//     assignment co-locates canonical duplicates, so n shard runs
//     merged by index (or via their -cache-dir spills) are
//     byte-identical to one full run.
//   - -merge-cache dir1,dir2,... merges per-shard cache spills into
//     the engine cache before running — the reduce step. Combine with
//     -cache-dir to write the merged spill, and -exp none to do only
//     that; conflicting entries (evidence of broken determinism)
//     resolve deterministically and are reported on stderr.
//   - -server URL sends the campaign to a running sdserve instance
//     (worker or coordinator) instead of simulating in-process, with
//     the same input-ordered, byte-identical NDJSON output. Combined
//     with -cache-dir, per-job report frames are negotiated over the
//     wire so the proxied results — reports included — are spilled
//     locally and warm later in-process runs.
//
// Two profiling surfaces coexist, one offline and one live:
//
//   - -cpuprofile file / -memprofile file follow the go test
//     convention: the CPU profile spans the whole run, the memory
//     profile snapshots allocations after a final GC on exit. Inspect
//     with `go tool pprof file`.
//   - -debug-addr host:port serves /debug/pprof/ and /metrics over
//     HTTP for profiling a run in flight (30-second CPU slices,
//     goroutine dumps) without restarting it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sdpolicy"
	"sdpolicy/internal/serve"
	"sdpolicy/internal/telemetry"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: all | table1 | table2 | fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8 | fig9 | ablations | none (cache maintenance only)")
		experiment = flag.String("experiment", "", "run one registry experiment by name (list = print the registry); with -server the experiment runs remotely via /v1/experiments with byte-identical output")
		scale      = flag.Float64("scale", 0.1, "workload scale factor (0,1]")
		seed       = flag.Uint64("seed", 1, "generator seed")
		outDir     = flag.String("out", "", "also write each experiment's output under this directory")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "campaign worker-pool size (1 = sequential)")
		cache      = flag.Int("cache", 512, "campaign result-cache capacity in points (0 disables)")
		progress   = flag.Bool("progress", false, "report campaign progress on stderr")
		points     = flag.String("points", "", "JSON file holding an array of campaign points; streams NDJSON results to stdout instead of running -exp")
		cacheDir   = flag.String("cache-dir", "", "persist the campaign result cache in this directory across runs")
		shard      = flag.String("shard", "", "with -points: run only shard i/n (1-based, e.g. 2/3) of the campaign; lines keep their original indices")
		mergeCache = flag.String("merge-cache", "", "comma-separated cache dirs (or spill files) merged into the engine cache before running; with -cache-dir the merged cache is spilled back")
		server     = flag.String("server", "", "with -points: comma-separated base URLs of an sdserve deployment (coordinator plus failover standbys) that runs the campaign instead of this process; the stream resumes across disconnects and failovers")
		trace      = flag.String("trace", "", "comma-separated SWF trace files to register before the run; each becomes addressable as trace:<digest> in points files and -experiment parameters")
		debugAddr  = flag.String("debug-addr", "", "optional listen address for net/http/pprof and /metrics (e.g. localhost:6060); off when empty")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go test convention; -debug-addr serves the same data live)")
		memprofile = flag.String("memprofile", "", "write an allocs/heap profile to this file on exit, after a final GC (go test convention)")
	)
	flag.Parse()
	if *points == "" && *shard != "" {
		fmt.Fprintln(os.Stderr, "sdexp: -shard requires -points")
		os.Exit(1)
	}
	if *server != "" && *points == "" && *experiment == "" {
		fmt.Fprintln(os.Stderr, "sdexp: -server requires -points or -experiment")
		os.Exit(1)
	}
	for _, p := range strings.Split(*trace, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		info, err := sdpolicy.RegisterTraceFile(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdexp:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sdexp: registered trace %s as %s (%d jobs, %d nodes, %d cores)\n",
			p, info.Ref, info.Jobs, info.Nodes, info.Cores)
	}
	stopProfiles, perr := startProfiles(*cpuprofile, *memprofile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "sdexp:", perr)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: serve.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := dbg.ListenAndServe(); err != nil {
				fmt.Fprintln(os.Stderr, "sdexp: debug listener:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "sdexp: debug listener on %s (/debug/pprof/, /metrics)\n", *debugAddr)
	}

	engine := sdpolicy.NewEngine(*workers, *cache)
	if *progress {
		engine.OnProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsdexp: %d/%d points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		})
	}
	var cacheFile string
	var warmRemote bool
	if *cacheDir != "" && *cache <= 0 {
		// With the in-memory cache disabled there is nothing to load
		// into or spill from; saving anyway would overwrite a warmed
		// spill file with an empty one.
		fmt.Fprintln(os.Stderr, "sdexp: ignoring -cache-dir: in-memory cache disabled (-cache 0)")
	} else if *cacheDir != "" && *server != "" {
		// Remote campaign: the local cache is never consulted, so skip
		// the load — but negotiate per-job report frames from the server
		// and prime the local engine with every proxied result, so the
		// spill-on-exit below warms later local runs (merge-on-save folds
		// it into whatever the directory already holds).
		cacheFile = filepath.Join(*cacheDir, sdpolicy.CacheFileName)
		warmRemote = true
	} else if *cacheDir != "" {
		cacheFile = filepath.Join(*cacheDir, sdpolicy.CacheFileName)
		switch err := engine.LoadCache(cacheFile); {
		case err == nil:
		case errors.Is(err, fs.ErrNotExist):
			// First run: nothing to load yet.
		default:
			// A stale or corrupt spill must not kill the run — the cache
			// is an optimisation. Warn and simulate from scratch.
			fmt.Fprintln(os.Stderr, "sdexp: ignoring persisted cache:", err)
		}
	}
	var err error
	if *mergeCache != "" {
		// The reduce step of a sharded campaign: fold per-shard spills
		// into the engine cache (and, via the spill-on-exit below, into
		// -cache-dir). Conflicting payloads mean determinism broke
		// somewhere — resolve deterministically but tell the operator.
		switch {
		case *cache <= 0:
			err = errors.New("-merge-cache needs the in-memory cache; raise -cache above 0")
		case *server != "":
			err = errors.New("-merge-cache has no effect with -server: the remote engine never sees the merged cache")
		default:
			var paths []string
			for _, p := range strings.Split(*mergeCache, ",") {
				if p = strings.TrimSpace(p); p != "" {
					paths = append(paths, p)
				}
			}
			var stats sdpolicy.CacheMergeStats
			stats, err = engine.MergeCache(paths...)
			for _, c := range stats.Conflicts {
				fmt.Fprintln(os.Stderr, "sdexp: cache conflict:", c)
			}
			if err == nil {
				fmt.Fprintf(os.Stderr, "sdexp: merged %d cache files into %d entries (%d conflicts)\n",
					stats.Files, stats.Entries, len(stats.Conflicts))
			}
		}
	}
	runner := &runner{ctx: ctx, engine: engine, scale: *scale, seed: *seed, outDir: *outDir}
	switch {
	case err != nil:
	case *points != "":
		err = runner.runPoints(*points, *shard, *server, warmRemote)
	case *experiment != "":
		err = runner.runExperiment(*experiment, *server)
	case *exp == "none":
		// Cache maintenance only (-merge-cache ... -cache-dir out).
	default:
		err = runner.run(*exp)
	}
	if cacheFile != "" {
		// Spill whatever simulated, even after a mid-campaign error or
		// Ctrl-C: completed points are still valid and warm the next run.
		stats, serr := engine.SaveCache(cacheFile)
		for _, c := range stats.Conflicts {
			fmt.Fprintln(os.Stderr, "sdexp: cache conflict:", c)
		}
		if serr != nil {
			fmt.Fprintln(os.Stderr, "sdexp: saving result cache:", serr)
		} else {
			hits, misses := engine.CacheStats()
			fmt.Fprintf(os.Stderr, "sdexp: cache: %d hits, %d misses this run; spilled %d entries\n",
				hits, misses, stats.Entries)
		}
	}
	if *progress {
		emitCacheStatsJSON(os.Stderr)
	}
	stopProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdexp:", err)
		os.Exit(1)
	}
}

// startProfiles wires the go-test-style profiling flags: the CPU
// profile covers everything from flag parsing to exit, and the memory
// profile snapshots allocations after a final GC so live objects
// dominate the picture. The returned stop function is safe to call when
// neither flag is set.
func startProfiles(cpu, mem string) (stop func(), err error) {
	var cpuF *os.File
	if cpu != "" {
		cpuF, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "sdexp: -cpuprofile:", err)
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sdexp: -memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "sdexp: -memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "sdexp: -memprofile:", err)
			}
		}
	}, nil
}

// emitCacheStatsJSON is the machine-readable counterpart of the human
// cache line above: one JSON object on its own stderr line, sourced
// from the process-wide telemetry counters (the same tallies /metrics
// exposes) rather than a parallel ad-hoc count.
func emitCacheStatsJSON(w io.Writer) {
	hits, _ := telemetry.Default.Value("campaign_cache_hits_total")
	misses, _ := telemetry.Default.Value("campaign_cache_misses_total")
	fmt.Fprintf(w, "{\"cache_hits\":%d,\"cache_misses\":%d}\n", uint64(hits), uint64(misses))
}

// runPoints streams an arbitrary campaign — the same format the
// sdserve /v1/campaign endpoint accepts — writing one NDJSON line per
// point to stdout. Results are printed in input order but emitted
// incrementally: each line appears as soon as its point and every
// earlier one has completed, so the output is byte-identical across
// worker counts (the CI determinism gate diffs two runs) while a
// consumer still sees the sweep grow point by point.
//
// With shardSpec ("i/n"), only the i-th deterministic shard of the
// campaign runs; each line keeps its original campaign index, so the n
// shard outputs interleave by index into exactly the full run's bytes.
// With serverURL, the campaign executes on a remote sdserve instance
// (worker or coordinator) and the stream is re-ordered locally — same
// bytes, remote cycles. With warm, the remote stream additionally
// negotiates per-job report frames and primes the local engine cache
// with every proxied result, so a -cache-dir spill after a remote run
// warms later local ones.
func (r *runner) runPoints(path, shardSpec, serverURL string, warm bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var specs []sdpolicy.PointSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	// Reject trailing data (a second concatenated array, say) rather
	// than silently running a subset of the file.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return fmt.Errorf("%s: trailing data after the points array", path)
	}
	if len(specs) == 0 {
		return fmt.Errorf("%s: no points", path)
	}
	points, err := sdpolicy.PointsFromSpecs(specs)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	// positions maps the indices of the points actually run back to
	// their original campaign positions (the identity unless sharded).
	positions := make([]int, len(points))
	for i := range positions {
		positions[i] = i
	}
	if shardSpec != "" {
		index, of, err := parseShard(shardSpec)
		if err != nil {
			return err
		}
		shards, err := sdpolicy.PlanShards(points, of)
		if err != nil {
			return err
		}
		s := shards[index-1]
		positions, points = s.Positions, s.Points
		if len(points) == 0 {
			fmt.Fprintf(os.Stderr, "sdexp: shard %s is empty (fewer unique points than shards)\n", shardSpec)
			return nil
		}
	}
	updates := make(chan sdpolicy.PointResult, len(points))
	errc := make(chan error, 1)
	if serverURL != "" {
		go func() { errc <- streamFromServer(r.ctx, serverURL, r.engine, points, warm, updates) }()
	} else {
		go func() {
			_, err := r.engine.RunStream(r.ctx, points, updates)
			errc <- err
		}()
	}
	enc := json.NewEncoder(os.Stdout)
	pending := make(map[int]sdpolicy.PointResult)
	next := 0
	for u := range updates {
		pending[u.Index] = u
		for {
			v, ok := pending[next]
			if !ok {
				break
			}
			v.Index = positions[next]
			if err := enc.Encode(v); err != nil {
				return err
			}
			delete(pending, next)
			next++
		}
	}
	return <-errc
}

// parseShard parses "i/n" with 1 <= i <= n.
func parseShard(spec string) (index, of int, err error) {
	a, b, ok := strings.Cut(spec, "/")
	if ok {
		index, err = strconv.Atoi(a)
		if err == nil {
			of, err = strconv.Atoi(b)
		}
	}
	if !ok || err != nil || of < 1 || index < 1 || index > of {
		return 0, 0, fmt.Errorf("bad -shard %q: want i/n with 1 <= i <= n (shards are 1-based)", spec)
	}
	return index, of, nil
}

// streamFromServer runs the campaign as a durable /v1/campaigns
// resource on a remote sdserve deployment — serverList is one or more
// comma-separated equivalent bases (the coordinator and its failover
// standbys) — and forwards its stream onto updates, with the same
// contract as Engine.RunStream: results arrive in completion order,
// updates closes before returning, and the first error aborts. The
// durable client reattaches with its ?from= cursor on mid-stream
// disconnects, server restarts and coordinator failovers, so those are
// invisible here beyond latency. With warm, per-job report frames are
// negotiated and every proxied result is primed — report attached —
// into engine's cache, making it spillable by SaveCache.
func streamFromServer(ctx context.Context, serverList string, engine *sdpolicy.Engine, points []sdpolicy.Point, warm bool, updates chan<- sdpolicy.PointResult) error {
	defer close(updates)
	var bases []string
	for _, b := range strings.Split(serverList, ",") {
		if b = strings.TrimSpace(b); b != "" {
			bases = append(bases, b)
		}
	}
	var got map[int]*sdpolicy.Result
	if warm {
		got = make(map[int]*sdpolicy.Result, len(points))
	}
	return serve.RunDurableCampaign(ctx, nil, bases, points, warm, func(index int, res *sdpolicy.Result, report json.RawMessage) error {
		if res == nil {
			// Report frame for an already-delivered result: warm the
			// local cache with it. Best-effort — a server that never
			// sends frames just leaves the cache cold.
			if prev := got[index]; prev != nil {
				engine.PrimeProxied(points[index], prev, report)
				// One frame per result: release the reference so a huge
				// campaign does not hold every Result until the end.
				delete(got, index)
			}
			return nil
		}
		if warm {
			got[index] = res
		}
		// Echo our own point value, not the server's parse of it, so
		// output bytes match a local run exactly.
		select {
		case updates <- sdpolicy.PointResult{Index: index, Point: points[index], Result: res}:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
}

type runner struct {
	ctx    context.Context
	engine *sdpolicy.Engine
	scale  float64
	seed   uint64
	outDir string
}

func (r *runner) run(exp string) error {
	type experiment struct {
		name string
		fn   func(io.Writer) error
	}
	all := []experiment{
		{"table1", r.table1},
		{"table2", r.table2},
		{"fig1-3", r.figs123},
		{"fig4-6", r.figs456},
		{"fig7", r.fig7},
		{"fig8", r.fig8},
		{"fig9", r.fig9},
		{"ablations", r.ablations},
	}
	selected := map[string][]experiment{
		"all":       all,
		"table1":    {all[0]},
		"table2":    {all[1]},
		"fig1":      {all[2]},
		"fig2":      {all[2]},
		"fig3":      {all[2]},
		"fig4":      {all[3]},
		"fig5":      {all[3]},
		"fig6":      {all[3]},
		"fig7":      {all[4]},
		"fig8":      {all[5]},
		"fig9":      {all[6]},
		"ablations": {all[7]},
	}[exp]
	if selected == nil {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	for _, e := range selected {
		start := time.Now()
		var sink io.Writer = os.Stdout
		var file *os.File
		if r.outDir != "" {
			if err := os.MkdirAll(r.outDir, 0o755); err != nil {
				return err
			}
			var err error
			file, err = os.Create(filepath.Join(r.outDir, e.name+".txt"))
			if err != nil {
				return err
			}
			sink = io.MultiWriter(os.Stdout, file)
		}
		fmt.Fprintf(sink, "==== %s (scale %.2f, seed %d) ====\n", e.name, r.scale, r.seed)
		if err := e.fn(sink); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Fprintf(sink, "[%s done in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
		if file != nil {
			file.Close()
		}
	}
	return nil
}

func (r *runner) table1(w io.Writer) error {
	rows, err := r.engine.Table1(r.ctx, r.scale, r.seed)
	if err != nil {
		return err
	}
	renderTable1(w, rows)
	return nil
}

func (r *runner) table2(w io.Writer) error {
	rows, err := r.engine.Table2(r.ctx, r.scale, r.seed)
	if err != nil {
		return err
	}
	renderTable2(w, rows)
	return nil
}

func (r *runner) figs123(w io.Writer) error {
	rows, err := r.engine.SweepMaxSD(r.ctx, []string{"wl1", "wl2", "wl3", "wl4"}, r.scale, r.seed)
	if err != nil {
		return err
	}
	renderSweep(w, rows)
	return nil
}

func (r *runner) figs456(w io.Writer) error {
	an, err := r.engine.AnalyzeBigWorkload(r.ctx, r.scale, r.seed)
	if err != nil {
		return err
	}
	renderBigHeatmaps(w, an)
	return nil
}

func (r *runner) fig7(w io.Writer) error {
	an, err := r.engine.AnalyzeBigWorkload(r.ctx, r.scale, r.seed)
	if err != nil {
		return err
	}
	renderBigDaily(w, an)
	return nil
}

func (r *runner) fig8(w io.Writer) error {
	rows, err := r.engine.CompareRuntimeModels(r.ctx, []string{"wl1", "wl2", "wl3", "wl4"}, r.scale, r.seed)
	if err != nil {
		return err
	}
	renderModels(w, rows)
	return nil
}

func (r *runner) fig9(w io.Writer) error {
	rep, err := r.engine.RealRunExperiment(r.ctx, r.scale, r.seed)
	if err != nil {
		return err
	}
	renderRealRun(w, rep)
	return nil
}

func (r *runner) ablations(w io.Writer) error {
	var all []sdpolicy.AblationRow
	sf, err := r.engine.AblateSharingFactor(r.ctx, "wl1", r.scale, r.seed, []float64{0.25, 0.5, 0.75})
	if err != nil {
		return err
	}
	all = append(all, sf...)
	mm, err := r.engine.AblateMaxMates(r.ctx, "wl1", r.scale, r.seed, []int{1, 2, 3, 4})
	if err != nil {
		return err
	}
	all = append(all, mm...)
	mf, err := r.engine.AblateMalleableFraction(r.ctx, "wl1", r.scale, r.seed, []float64{0, 0.25, 0.5, 0.75, 1})
	if err != nil {
		return err
	}
	all = append(all, mf...)
	fn, err := r.engine.AblateFreeNodeMixing(r.ctx, "wl1", r.scale, r.seed)
	if err != nil {
		return err
	}
	all = append(all, fn...)
	nf, err := r.engine.AblateNodeFeatures(r.ctx, "wl1", r.scale, r.seed, []float64{0, 0.25, 0.5})
	if err != nil {
		return err
	}
	all = append(all, nf...)
	pc, err := r.engine.ComparePolicies(r.ctx, "wl1", r.scale, r.seed)
	if err != nil {
		return err
	}
	all = append(all, pc...)
	fmt.Fprintln(w, "wl1, normalised to static backfill (lower is better)")
	renderAblationTable(w, all)
	return nil
}
