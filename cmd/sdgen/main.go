// Command sdgen generates one of the paper's workloads and writes it in
// Standard Workload Format, so traces can be inspected, archived, or fed
// back into sdsim -swf.
//
//	sdgen -wl wl4 -scale 0.1 -seed 7 -o wl4.swf
package main

import (
	"flag"
	"fmt"
	"os"

	"sdpolicy/internal/swf"
	"sdpolicy/internal/workload"
)

func main() {
	var (
		wlName = flag.String("wl", "wl1", "workload preset: wl1..wl5")
		scale  = flag.Float64("scale", 1.0, "scale factor (0,1]")
		seed   = flag.Uint64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	spec, err := workload.ByName(*wlName, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdgen:", err)
		os.Exit(1)
	}
	recs := swf.FromJobs(spec.Jobs, spec.Cluster.CoresPerNode())
	header := fmt.Sprintf("Workload: %s\nJobs: %d\nNodes: %d\nCoresPerNode: %d\nSeed: %d\nScale: %g",
		spec.Name, len(spec.Jobs), spec.Cluster.Nodes, spec.Cluster.CoresPerNode(), *seed, *scale)

	var sink *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	if err := swf.Write(sink, header, recs); err != nil {
		fmt.Fprintln(os.Stderr, "sdgen:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "sdgen: wrote %d jobs to %s\n", len(recs), *out)
	}
}
