// Command sdserve exposes the sdpolicy campaign engine over HTTP — the
// serving layer for interactive exploration of scheduling scenarios
// without recompiling or re-running cmd/sdexp.
//
//	sdserve -addr :8080 -workers 8 -cache 512 -max-inflight 32
//
// Endpoints (JSON in/out, see internal/serve):
//
//	POST /v1/simulate  {"workload":"wl1","scale":0.1,"seed":1,
//	                    "options":{"policy":"sd","max_slowdown":10}}
//	POST /v1/sweep     {"workloads":["wl1","wl2"],"scale":0.1,"seed":1}
//	POST /v1/campaign  {"points":[{"workload":"wl1","scale":0.1,
//	                    "options":{"policy":"sd"}}, ...]} — streams one
//	                   result per point (SSE with Accept:
//	                   text/event-stream or "format":"sse", NDJSON
//	                   otherwise) plus a terminal done/error event
//	GET  /healthz
//
// All requests share one engine: identical in-flight requests coalesce
// into a single simulation, repeated points are served from the LRU
// result cache, and -max-inflight bounds concurrently simulating
// requests. Disconnecting from a streaming campaign cancels it
// mid-simulation and frees its slot. SIGINT/SIGTERM finish open
// streams with a terminal shutdown event, then drain in-flight
// requests before exit.
//
// -peers http://w1:8080,http://w2:8080 turns the instance into a
// campaign coordinator: /v1/campaign requests are planned into one
// deterministic shard per worker, fanned out to the listed sdserve
// instances over the same streaming wire form, and re-merged — with a
// failed worker's unresolved points requeued to the survivors, so the
// merged stream matches a single-process run as long as one worker is
// alive. /v1/simulate and /v1/sweep keep running on the local engine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"sdpolicy"
	"sdpolicy/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker-pool size")
		cache    = flag.Int("cache", 512, "result cache capacity in campaign points (0 disables)")
		inflight = flag.Int("max-inflight", 32, "max concurrently simulating requests")
		grace    = flag.Duration("grace", 30*time.Second, "shutdown grace period")
		peers    = flag.String("peers", "", "comma-separated worker sdserve base URLs; when set, /v1/campaign fans out to these instances instead of simulating locally")
	)
	flag.Parse()

	engine := sdpolicy.NewEngine(*workers, *cache)
	api := serve.New(engine, *inflight)
	if *peers != "" {
		urls := strings.Split(*peers, ",")
		if err := api.EnableCoordinator(urls, nil); err != nil {
			fmt.Fprintln(os.Stderr, "sdserve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sdserve: coordinating campaigns across %d workers\n", len(urls))
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sdserve: listening on %s (%d workers, cache %d, max in-flight %d)\n",
		*addr, *workers, *cache, *inflight)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "sdserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "sdserve: shutting down, draining in-flight requests")
	// Finish open /v1/campaign streams with a terminal shutdown event
	// first, so Shutdown below drains instead of holding them open (or
	// cutting them) for the whole grace period.
	api.BeginShutdown()
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "sdserve: shutdown:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sdserve:", err)
		os.Exit(1)
	}
}
