// Command sdserve exposes the sdpolicy campaign engine over HTTP — the
// serving layer for interactive exploration of scheduling scenarios
// without recompiling or re-running cmd/sdexp.
//
//	sdserve -addr :8080 -workers 8 -cache 512 -max-inflight 32
//
// Endpoints (JSON in/out, see internal/serve):
//
//	POST /v1/simulate  {"workload":"wl1","scale":0.1,"seed":1,
//	                    "options":{"policy":"sd","max_slowdown":10}}
//	POST /v1/sweep     {"workloads":["wl1","wl2"],"scale":0.1,"seed":1}
//	POST /v1/campaigns {"points":[{"workload":"wl1","scale":0.1,
//	                    "options":{"policy":"sd"}}, ...]} — creates a
//	                   campaign resource (201 + Location) that runs
//	                   detached from the connection
//	GET  /v1/campaigns/{id}?from=<seq>  attach to the campaign's frame
//	                   stream (SSE or NDJSON), resumable from any seq
//	GET  /v1/campaigns/{id}/status      compact progress
//	DELETE /v1/campaigns/{id}           cancel
//	GET  /v1/workloads    list addressable workloads: generator presets
//	                   plus every trace registered via -trace-dir, with
//	                   the derivation-op schema
//	GET  /v1/workloads/{ref}  one workload's resolved metadata
//	GET  /v1/experiments  list the experiment registry (names, params)
//	POST /v1/experiments  {"experiment":"table1","params":{...}} —
//	                   creates a journaled campaign that streams the
//	                   named experiment's reduced rows (201 + Location)
//	GET  /v1/experiments/{id}?from=<seq>  attach to the experiment's
//	                   row stream (SSE or NDJSON); the terminal frame
//	                   carries the same summary the local Engine
//	                   helper returns, byte for byte
//	DELETE /v1/experiments/{id}         cancel
//	POST /v1/campaign  deprecated byte-compatible alias: one-shot
//	                   streaming campaign tied to the connection;
//	                   ?reports=1 adds per-job report frames
//	POST /v1/workers/register    worker announcement / heartbeat
//	POST /v1/workers/deregister  graceful worker departure
//	GET  /healthz
//
// With -journal-dir every campaign resource is write-ahead journaled:
// after a crash or restart the next holder of the directory's
// coordinator lease (this process, or an sdserve -standby sharing the
// directory) resumes in-flight campaigns without re-running journaled
// points, and clients reattach with ?from= for a byte-identical
// continuation of the stream they lost.
//
// All requests share one engine: identical in-flight requests coalesce
// into a single simulation, repeated points are served from the LRU
// result cache, and -max-inflight bounds concurrently simulating
// requests. Disconnecting from a streaming campaign cancels it
// mid-simulation and frees its slot. SIGINT/SIGTERM finish open
// streams with a terminal shutdown event, then drain in-flight
// requests before exit. -cache-dir persists the result cache across
// restarts: loaded on start, spilled on shutdown.
//
// # Elastic coordinator fleets
//
// -peers http://w1:8080,http://w2:8080 (or -coordinator with no static
// peers at all) turns the instance into a campaign coordinator:
// /v1/campaign requests are planned into -shards-per-worker
// deterministic shards per fleet member, handed out work-stealing
// style to the worker fleet over the same streaming wire form, and
// re-merged byte-identically to a single-process run. The fleet is
// elastic three ways:
//
//   - A failed worker requeues its unresolved points and is
//     health-probed (/healthz, exponential backoff) back into rotation
//     — a worker restart is absorbed, not permanent.
//   - Workers announce themselves with -join http://coordinator:8080
//     (heartbeating a TTL'd lease, deregistering on shutdown), so the
//     fleet can grow and shrink without restarting the coordinator; a
//     worker joining mid-campaign steals queued shards immediately.
//   - With -cache-dir the coordinator negotiates per-job report frames
//     from its workers and spills every proxied result on shutdown, so
//     the spill warms later local sdexp runs (fig4-9 analyses too).
//
// /v1/simulate and /v1/sweep keep running on the local engine;
// /healthz reports per-peer fleet state (alive|dead|probing,
// consecutive failures, last error, remaining lease).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"sdpolicy"
	"sdpolicy/internal/journal"
	"sdpolicy/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker-pool size")
		cache       = flag.Int("cache", 512, "result cache capacity in campaign points (0 disables)")
		inflight    = flag.Int("max-inflight", 32, "max concurrently simulating requests")
		grace       = flag.Duration("grace", 30*time.Second, "shutdown grace period")
		peers       = flag.String("peers", "", "comma-separated static worker sdserve base URLs; implies coordinator mode")
		coordinator = flag.Bool("coordinator", false, "enable coordinator mode even with no static -peers (fleet populated by -join registrations)")
		perWorker   = flag.Int("shards-per-worker", sdpolicy.DefaultShardsPerWorker, "coordinator: campaign shards planned per fleet member (work-stealing granularity)")
		probeEvery  = flag.Duration("probe-interval", time.Second, "coordinator: health-prober tick for returning dead workers to rotation")
		leaseTTL    = flag.Duration("lease-ttl", 30*time.Second, "coordinator: default heartbeat lease granted to registering workers; worker: lease requested by -join")
		join        = flag.String("join", "", "comma-separated coordinator base URLs to register this worker with (heartbeats the lease against whichever answers, deregisters on shutdown); list the active coordinator and its standbys")
		advertise   = flag.String("advertise", "", "base URL this worker advertises when joining (default http://127.0.0.1:<port> from -addr)")
		cacheDir    = flag.String("cache-dir", "", "persist the result cache in this directory across restarts; on a coordinator, proxied worker results are spilled too")
		journalDir  = flag.String("journal-dir", "", "write-ahead journal directory for /v1/campaigns resources; enables crash/failover recovery and the coordinator lease (share it between the active coordinator and its standbys)")
		journalTTL  = flag.Duration("journal-lease", 15*time.Second, "coordinator lease TTL inside -journal-dir; a standby adopts the journal after the lease goes this long without a refresh")
		standby     = flag.Bool("standby", false, "start as a failover standby: serve requests but keep the campaign plane inactive until the -journal-dir coordinator lease is acquired (requires -journal-dir)")
		traceDir    = flag.String("trace-dir", "", "register every *.swf file in this directory at startup; each becomes addressable as trace:<digest> on the workload endpoints")
		debugAddr   = flag.String("debug-addr", "", "optional listen address for net/http/pprof and /metrics (e.g. localhost:6060); off when empty")
	)
	flag.Parse()
	if *standby && *journalDir == "" {
		fmt.Fprintln(os.Stderr, "sdserve: -standby requires -journal-dir (the lease and journal to adopt live there)")
		os.Exit(1)
	}
	if *traceDir != "" {
		infos, err := sdpolicy.RegisterTraceDir(*traceDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdserve:", err)
			os.Exit(1)
		}
		for _, info := range infos {
			fmt.Fprintf(os.Stderr, "sdserve: registered trace %s as %s (%d jobs, %d nodes, %d cores)\n",
				info.Source, info.Ref, info.Jobs, info.Nodes, info.Cores)
		}
	}

	engine := sdpolicy.NewEngine(*workers, *cache)
	var cacheFile string
	if *cacheDir != "" && *cache <= 0 {
		fmt.Fprintln(os.Stderr, "sdserve: ignoring -cache-dir: in-memory cache disabled (-cache 0)")
	} else if *cacheDir != "" {
		cacheFile = filepath.Join(*cacheDir, sdpolicy.CacheFileName)
		switch err := engine.LoadCache(cacheFile); {
		case err == nil:
		case errors.Is(err, fs.ErrNotExist):
			// First run: nothing to load yet.
		default:
			fmt.Fprintln(os.Stderr, "sdserve: ignoring persisted cache:", err)
		}
	}
	api := serve.New(engine, *inflight)
	var jnl *journal.Journal
	if *journalDir != "" {
		var err error
		if jnl, err = journal.Open(*journalDir); err != nil {
			fmt.Fprintln(os.Stderr, "sdserve:", err)
			os.Exit(1)
		}
		// Demotes the campaign plane to standby until the coordinator
		// lease below is acquired; must precede serving requests.
		api.EnableJournal(jnl)
		role := "active candidate"
		if *standby {
			role = "standby"
		}
		fmt.Fprintf(os.Stderr, "sdserve: journaling campaigns in %s (%s; lease TTL %v)\n",
			*journalDir, role, *journalTTL)
	}
	if *peers != "" || *coordinator {
		var urls []string
		if *peers != "" {
			urls = strings.Split(*peers, ",")
		}
		cfg := serve.CoordinatorConfig{
			Workers:         urls,
			ShardsPerWorker: *perWorker,
			ProbeInterval:   *probeEvery,
			LeaseTTL:        *leaseTTL,
			WarmCache:       cacheFile != "",
		}
		if err := api.EnableCoordinator(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "sdserve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sdserve: coordinating campaigns (%d static workers, %d shards/worker, registration open)\n",
			len(urls), *perWorker)
	}
	var self string
	var joinBases []string
	if *join != "" {
		var err error
		if self, err = advertiseURL(*advertise, *addr); err != nil {
			fmt.Fprintln(os.Stderr, "sdserve:", err)
			os.Exit(1)
		}
		for _, base := range strings.Split(*join, ",") {
			base = strings.TrimSpace(base)
			if base == "" {
				continue
			}
			// Joining yourself would register the coordinator into its own
			// fleet: campaigns would fan out to this instance, re-enter
			// coordinator mode, and recurse until the in-flight slots 503.
			if strings.TrimRight(base, "/") == self {
				fmt.Fprintf(os.Stderr, "sdserve: -join %s is this instance's own URL; a server cannot join itself\n", self)
				os.Exit(1)
			}
			joinBases = append(joinBases, base)
		}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: serve.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "sdserve: debug listener:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "sdserve: debug listener on %s (/debug/pprof/, /metrics)\n", *debugAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	build := serve.BuildInfo()
	fmt.Fprintf(os.Stderr, "sdserve: version %s (%s, built %s) listening on %s (%d workers, cache %d, max in-flight %d)\n",
		build.Version, build.Go, buildTimeOrUnknown(build), *addr, *workers, *cache, *inflight)

	joinDone := make(chan struct{})
	if len(joinBases) > 0 {
		go func() {
			defer close(joinDone)
			serve.JoinLoop(ctx, nil, joinBases, self, *leaseTTL, func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "sdserve: "+format+"\n", args...)
			})
		}()
	} else {
		close(joinDone)
	}

	// With a journal, the campaign plane opens only once this process
	// holds the directory's coordinator lease: an active coordinator gets
	// it immediately, a -standby blocks here until the active's lease
	// expires (crash) or is released (graceful exit), then adopts the
	// journal and persisted peer table and resumes in-flight campaigns.
	leasec := make(chan *journal.Lease, 1)
	if jnl != nil {
		go func() {
			acquire := jnl.AcquireLease
			if *standby {
				// A standby never creates the lease from nothing: it waits
				// for the active's lease to appear, then takes over when it
				// goes stale or is released. Otherwise a standby that boots
				// faster than its active would win the initial election.
				acquire = jnl.AwaitLease
			}
			lease, err := acquire(ctx, *journalTTL)
			if err != nil {
				if ctx.Err() == nil {
					fmt.Fprintln(os.Stderr, "sdserve: acquiring coordinator lease:", err)
				}
				return
			}
			leasec <- lease
			stats := api.Activate()
			fmt.Fprintf(os.Stderr, "sdserve: journal: lease acquired; adopted %d peers, resumed %d campaigns (%d journaled results skipped), %d completed campaigns attachable\n",
				stats.AdoptedPeers, stats.Resumed, stats.SkippedPoints, stats.Completed)
		}()
	}

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "sdserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "sdserve: shutting down, draining in-flight requests")
	// Finish open /v1/campaign streams with a terminal shutdown event
	// first, so Shutdown below drains instead of holding them open (or
	// cutting them) for the whole grace period. BeginShutdown also stops
	// the coordinator's health prober.
	api.BeginShutdown()
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	// The join loop deregisters from its coordinator once ctx is done;
	// wait so the lease is released before exit.
	<-joinDone
	// Release the coordinator lease (if this instance ever acquired it)
	// so a standby takes over immediately instead of waiting out the TTL.
	select {
	case lease := <-leasec:
		lease.Release()
		fmt.Fprintln(os.Stderr, "sdserve: journal: coordinator lease released")
	default:
	}
	if cacheFile != "" {
		stats, serr := engine.SaveCache(cacheFile)
		for _, c := range stats.Conflicts {
			fmt.Fprintln(os.Stderr, "sdserve: cache conflict:", c)
		}
		if serr != nil {
			fmt.Fprintln(os.Stderr, "sdserve: saving result cache:", serr)
		} else {
			fmt.Fprintf(os.Stderr, "sdserve: spilled %d cached results to %s\n", stats.Entries, cacheFile)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdserve: shutdown:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sdserve:", err)
		os.Exit(1)
	}
}

// buildTimeOrUnknown renders the build's VCS time for the startup log.
func buildTimeOrUnknown(b serve.Build) string {
	if b.Built == "" {
		return "unknown"
	}
	return b.Built
}

// advertiseURL resolves the base URL this worker announces on -join:
// the explicit -advertise value, or one derived from -addr with a
// loopback host when the listen address does not name one (":8080" is
// reachable by the worker's own loopback, which covers the
// single-machine fleets -join is typically smoke-tested with; real
// deployments pass -advertise).
func advertiseURL(advertise, addr string) (string, error) {
	if advertise != "" {
		return strings.TrimRight(advertise, "/"), nil
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("cannot derive -advertise from -addr %q: %w", addr, err)
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port), nil
}
