package sdpolicy

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
)

const campaignTestScale = 0.08

// sequentialSweepMaxSD replicates the pre-campaign sequential
// implementation of SweepMaxSD verbatim: one workload at a time, the
// static baseline first, then every variant, all on this goroutine.
// The campaign runner must reproduce its output exactly.
func sequentialSweepMaxSD(workloads []string, scale float64, seed uint64) ([]SweepRow, error) {
	var rows []SweepRow
	for _, name := range workloads {
		w, err := NewWorkload(name, scale, seed)
		if err != nil {
			return nil, err
		}
		base, err := Simulate(w, Options{Policy: "static"})
		if err != nil {
			return nil, err
		}
		for _, v := range MaxSDVariants() {
			res, err := Simulate(w, v.Options)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SweepRow{
				Workload:        name,
				Variant:         v.Label,
				Makespan:        ratio(float64(res.Makespan), float64(base.Makespan)),
				AvgResponse:     ratio(res.AvgResponse, base.AvgResponse),
				AvgSlowdown:     ratio(res.AvgSlowdown, base.AvgSlowdown),
				MalleableStarts: res.MalleableStarts,
			})
		}
	}
	return rows, nil
}

func TestSweepMaxSDParallelMatchesSequentialReference(t *testing.T) {
	workloads := []string{"wl1", "wl5"}
	want, err := sequentialSweepMaxSD(workloads, campaignTestScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		engine := NewEngine(workers, 64)
		got, err := engine.SweepMaxSD(context.Background(), workloads, campaignTestScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d row %d:\n got %+v\nwant %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestCampaignParallelEqualsSingleWorkerAcrossExperiments(t *testing.T) {
	seq := NewEngine(1, 128)
	par := NewEngine(8, 128)
	ctx := context.Background()

	t.Run("runtime-models", func(t *testing.T) {
		a, err := seq.CompareRuntimeModels(ctx, []string{"wl1"}, campaignTestScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.CompareRuntimeModels(ctx, []string{"wl1"}, campaignTestScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d: %+v != %+v", i, a[i], b[i])
			}
		}
	})
	t.Run("malleable-fraction", func(t *testing.T) {
		fracs := []float64{0, 0.5, 1}
		a, err := seq.AblateMalleableFraction(ctx, "wl1", campaignTestScale, 1, fracs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.AblateMalleableFraction(ctx, "wl1", campaignTestScale, 1, fracs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d: %+v != %+v", i, a[i], b[i])
			}
		}
	})
	t.Run("policies", func(t *testing.T) {
		a, err := seq.ComparePolicies(ctx, "wl1", campaignTestScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.ComparePolicies(ctx, "wl1", campaignTestScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d: %+v != %+v", i, a[i], b[i])
			}
		}
	})
}

func TestCampaignBaselineSimulatesOnce(t *testing.T) {
	engine := NewEngine(8, 64)
	// One sweep: per workload 1 baseline + 5 variants, all unique.
	if _, err := engine.SweepMaxSD(context.Background(), []string{"wl1"}, campaignTestScale, 1); err != nil {
		t.Fatal(err)
	}
	hits, misses := engine.CacheStats()
	if misses != 6 {
		t.Fatalf("first sweep simulated %d points, want 6", misses)
	}
	if hits != 0 {
		t.Fatalf("first sweep had %d unexpected cache hits", hits)
	}
	// An ablation on the same workload shares the canonical static
	// baseline with the sweep: exactly one cached point is reused.
	if _, err := engine.AblateSharingFactor(context.Background(), "wl1", campaignTestScale, 1, []float64{0.25}); err != nil {
		t.Fatal(err)
	}
	hits, misses = engine.CacheStats()
	if hits != 1 {
		t.Fatalf("baseline not shared through cache: hits=%d", hits)
	}
	if misses != 7 {
		t.Fatalf("ablation simulated %d new points, want 1 (total 7, got %d)", misses-6, misses)
	}
	// Re-running the full sweep is now 100% cache hits.
	if _, err := engine.SweepMaxSD(context.Background(), []string{"wl1"}, campaignTestScale, 1); err != nil {
		t.Fatal(err)
	}
	_, misses = engine.CacheStats()
	if misses != 7 {
		t.Fatalf("repeated sweep re-simulated: misses=%d, want 7", misses)
	}
}

func TestCampaignCanonicalOptionsShareCacheEntries(t *testing.T) {
	engine := NewEngine(4, 64)
	ctx := context.Background()
	// Zero-value options and their spelled-out defaults are one point.
	a, err := engine.SimulatePoint(ctx, NewPoint("wl1", campaignTestScale, 1, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.SimulatePoint(ctx, NewPoint("wl1", campaignTestScale, 1, Options{
		Policy: "static", Model: "ideal", SharingFactor: 0.5, MaxMates: 2,
		CandidateCap: 64, BackfillDepth: 100, Backfill: "conservative",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("canonically equal points did not share one cached result")
	}
	_, misses := engine.CacheStats()
	if misses != 1 {
		t.Fatalf("%d simulations for one canonical point", misses)
	}
}

func TestCampaignCancellation(t *testing.T) {
	engine := NewEngine(2, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the campaign starts: no point may simulate
	_, err := engine.SweepMaxSD(ctx, []string{"wl1", "wl2"}, campaignTestScale, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_, misses := engine.CacheStats()
	if misses != 0 {
		t.Fatalf("%d points simulated despite pre-cancelled context", misses)
	}
}

func TestCampaignRejectsNaNPoints(t *testing.T) {
	engine := NewEngine(2, 16)
	ctx := context.Background()
	nan := math.NaN()
	for name, p := range map[string]Point{
		"scale":          {Workload: "wl1", Scale: nan, Seed: 1, MalleableFraction: -1},
		"fraction":       {Workload: "wl1", Scale: 0.1, Seed: 1, MalleableFraction: nan},
		"max-slowdown":   NewPoint("wl1", 0.1, 1, Options{Policy: "sd", MaxSlowdown: nan}),
		"sharing-factor": NewPoint("wl1", 0.1, 1, Options{Policy: "sd", SharingFactor: nan}),
		"oversub":        NewPoint("wl1", 0.1, 1, Options{Policy: "oversubscribe", OversubPenalty: nan}),
	} {
		res, err := engine.SimulatePoint(ctx, p)
		if !errors.Is(err, ErrBadInput) {
			t.Fatalf("%s=NaN: res=%v err=%v, want ErrBadInput", name, res, err)
		}
	}
	_, misses := engine.CacheStats()
	if misses != 0 {
		t.Fatalf("%d points simulated despite NaN inputs", misses)
	}
}

func TestCampaignErrorPropagation(t *testing.T) {
	engine := NewEngine(4, 16)
	_, err := engine.Run(context.Background(), []Point{
		NewPoint("wl1", campaignTestScale, 1, Options{}),
		NewPoint("wl-nope", campaignTestScale, 1, Options{}),
	})
	if err == nil {
		t.Fatal("unknown workload not reported")
	}
	if _, err := engine.SimulatePoint(context.Background(),
		NewPoint("wl1", campaignTestScale, 1, Options{Policy: "bogus"})); err == nil {
		t.Fatal("unknown policy not reported")
	}
}

func TestCampaignProgressAndConcurrentUse(t *testing.T) {
	engine := NewEngine(4, 64)
	var mu sync.Mutex
	final := 0
	engine.OnProgress(func(done, total int) {
		mu.Lock()
		if done == total {
			final++
		}
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := engine.SweepMaxSD(context.Background(), []string{"wl1"}, campaignTestScale, 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	_, misses := engine.CacheStats()
	if misses != 6 {
		t.Fatalf("concurrent identical sweeps simulated %d points, want 6", misses)
	}
	mu.Lock()
	defer mu.Unlock()
	if final == 0 {
		t.Fatal("progress callback never reached done == total")
	}
}

func TestDeriveSeedReplicateZeroIsBase(t *testing.T) {
	if DeriveSeed(42, 0) != 42 {
		t.Fatal("replicate 0 must keep the base seed")
	}
	if DeriveSeed(42, 1) == 42 {
		t.Fatal("replicate 1 not derived")
	}
	if DeriveSeed(42, 1) != DeriveSeed(42, 1) {
		t.Fatal("derived seed not deterministic")
	}
}

func ExampleEngine_SweepMaxSD() {
	engine := NewEngine(4, 64)
	rows, err := engine.SweepMaxSD(context.Background(), []string{"wl5"}, 0.15, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("rows:", len(rows))
	fmt.Println("improved:", rows[1].AvgSlowdown < 1)
	// Output:
	// rows: 5
	// improved: true
}
