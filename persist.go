package sdpolicy

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"sdpolicy/internal/metrics"
)

// cacheFileVersion guards the spill format: bump it when the canonical
// point encoding or the persisted result shape changes incompatibly, so
// stale files are refused instead of priming wrong results.
const cacheFileVersion = 1

// cacheFile is the on-disk form of a campaign result cache: one entry
// per canonical point, least recently used first, so loading in order
// reproduces the LRU recency order.
type cacheFile struct {
	Version int              `json:"version"`
	Entries []cacheFileEntry `json:"entries"`
}

// cacheFileEntry persists one memoised simulation. The point is stored
// in its wire form (the same JSON a /v1/campaign client sends); the
// per-job report — which Daily and the heatmaps need but the Result's
// public JSON omits — rides alongside so a restored Result is fully
// equivalent to a freshly simulated one.
type cacheFileEntry struct {
	Point  Point          `json:"point"`
	Result *Result        `json:"result"`
	Report metrics.Report `json:"report"`
}

// wire returns the point with every encoding JSON can carry: the
// canonical +Inf MaxSlowdown maps back to the 0 wire default (and is
// restored by canonical() on load).
func (p Point) wire() Point {
	if math.IsInf(p.Options.MaxSlowdown, 1) {
		p.Options.MaxSlowdown = 0
	}
	return p
}

// SaveCache writes the engine's memoised campaign results to path as
// JSON keyed by canonical point, creating parent directories and
// replacing the file atomically (temp file + rename), so repeated
// full-scale runs survive process restarts. An engine whose cache is
// disabled writes an empty file.
func (e *Engine) SaveCache(path string) error {
	keys, vals := e.runner.CacheSnapshot()
	file := cacheFile{Version: cacheFileVersion, Entries: make([]cacheFileEntry, 0, len(keys))}
	for i, k := range keys {
		if vals[i] == nil {
			continue
		}
		file.Entries = append(file.Entries, cacheFileEntry{
			Point:  k.wire(),
			Result: vals[i],
			Report: vals[i].report,
		})
	}
	data, err := json.Marshal(file)
	if err != nil {
		return fmt.Errorf("sdpolicy: encoding result cache: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// LoadCache primes the engine's result cache from a file written by
// SaveCache: every persisted point is re-canonicalised and inserted, so
// a subsequent campaign over the same points is pure cache hits. The
// file's entries must be valid — a version mismatch, malformed point or
// missing result aborts the load (tagged ErrBadInput) without priming
// anything, rather than silently serving partial state. Loading into an
// engine whose cache is disabled is a no-op.
func (e *Engine) LoadCache(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var file cacheFile
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("sdpolicy: %s: %w: %w", path, err, ErrBadInput)
	}
	if file.Version != cacheFileVersion {
		return fmt.Errorf("sdpolicy: %s: cache version %d, want %d: %w",
			path, file.Version, cacheFileVersion, ErrBadInput)
	}
	keys := make([]Point, 0, len(file.Entries))
	vals := make([]*Result, 0, len(file.Entries))
	for i, ent := range file.Entries {
		if ent.Result == nil {
			return fmt.Errorf("sdpolicy: %s: entry %d has no result: %w", path, i, ErrBadInput)
		}
		if err := ent.Point.validate(); err != nil {
			return fmt.Errorf("sdpolicy: %s: entry %d: %w", path, i, err)
		}
		res := *ent.Result
		res.report = ent.Report
		keys = append(keys, ent.Point.canonical())
		vals = append(vals, &res)
	}
	e.runner.CachePrime(keys, vals)
	return nil
}
