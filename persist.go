package sdpolicy

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sdpolicy/internal/metrics"
)

// CacheFileName is the spill file maintained inside a cache directory
// (sdexp -cache-dir, Engine.MergeCache over directories).
const CacheFileName = "campaign-cache.json"

// cacheFileVersion guards the spill format: bump it when the canonical
// point encoding or the persisted result shape changes incompatibly, so
// stale files are refused instead of priming wrong results.
const cacheFileVersion = 1

// errCacheVersion marks a spill written under a different format
// version — the one decode failure SaveCache replaces rather than
// aborts on.
var errCacheVersion = errors.New("cache format version mismatch")

// cacheFile is the on-disk form of a campaign result cache: one entry
// per canonical point, sorted by the point's wire encoding, so the
// bytes of a spill are a pure function of its contents — independent of
// LRU recency, shard count, or the order concurrent writers finished.
type cacheFile struct {
	Version int              `json:"version"`
	Entries []cacheFileEntry `json:"entries"`
}

// cacheFileEntry persists one memoised simulation. The point is stored
// in its wire form (the same JSON a /v1/campaign client sends); the
// per-job report — which Daily and the heatmaps need but the Result's
// public JSON omits — rides alongside so a restored Result is fully
// equivalent to a freshly simulated one.
type cacheFileEntry struct {
	Point  Point          `json:"point"`
	Result *Result        `json:"result"`
	Report metrics.Report `json:"report"`
}

// payload is the comparable serialisation of the entry's simulation
// outcome — result plus per-job report, excluding the point spelling —
// used to detect and deterministically resolve conflicting entries for
// one canonical point.
func (ent cacheFileEntry) payload() ([]byte, error) {
	return json.Marshal(struct {
		Result *Result        `json:"result"`
		Report metrics.Report `json:"report"`
	}{ent.Result, ent.Report})
}

// wire returns the point with every encoding JSON can carry: the
// canonical +Inf MaxSlowdown maps back to the 0 wire default (and is
// restored by canonical() on load).
func (p Point) wire() Point {
	if math.IsInf(p.Options.MaxSlowdown, 1) {
		p.Options.MaxSlowdown = 0
	}
	return p
}

// SaveCache spills the engine's memoised campaign results to path as
// JSON keyed by canonical point, creating parent directories, so
// repeated full-scale runs survive process restarts. Concurrent
// writers are safe: an existing spill at path is merged in rather than
// clobbered (so shards of a job array sharing one -cache-dir each
// contribute their points), a sibling lock file serialises the
// read-merge-write cycle across processes, and the file is replaced
// atomically (temp file + rename) so readers never observe a partial
// spill. Conflicting payloads for one canonical point — which only
// happen if determinism broke — resolve to a deterministic winner and
// are reported in the returned stats (Files counts existing spills
// folded in, Entries the total written), mirroring MergeCache, so
// callers can surface the discrepancy instead of trusting a silently
// chosen result.
func (e *Engine) SaveCache(path string) (CacheMergeStats, error) {
	var stats CacheMergeStats
	keys, vals := e.runner.CacheSnapshot()
	merged := make(map[Point]cacheFileEntry, len(keys))
	for i, k := range keys {
		if vals[i] == nil {
			continue
		}
		if _, err := mergeEntry(merged, k, cacheFileEntry{Result: vals[i], Report: vals[i].report}); err != nil {
			return stats, fmt.Errorf("sdpolicy: encoding result cache: %w", err)
		}
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return stats, err
		}
	}
	unlock, err := lockCacheFile(path)
	if err != nil {
		return stats, err
	}
	defer unlock()
	// Merge-on-save: fold in whatever another process already spilled.
	// Only a version-mismatched file — a documented format upgrade — is
	// replaced; a file that fails to read or decode for any other
	// reason aborts the save, because clobbering it would silently drop
	// another shard's entries, the exact loss this merge exists to
	// prevent.
	switch data, rerr := os.ReadFile(path); {
	case rerr == nil:
		existing, derr := decodeCacheFile(path, data)
		switch {
		case derr == nil:
			stats.Files++
			for _, kv := range existing {
				conflict, err := mergeEntry(merged, kv.key, kv.ent)
				if err != nil {
					return stats, fmt.Errorf("sdpolicy: merging existing cache %s: %w", path, err)
				}
				if conflict {
					stats.Conflicts = append(stats.Conflicts, conflictDescription(kv.key))
				}
			}
		case errors.Is(derr, errCacheVersion):
			// Stale format from an older binary: replace it.
		default:
			return stats, fmt.Errorf("sdpolicy: existing cache %s is unreadable; remove it to allow the spill: %w", path, derr)
		}
	case errors.Is(rerr, fs.ErrNotExist):
	default:
		return stats, fmt.Errorf("sdpolicy: reading existing cache %s: %w", path, rerr)
	}
	entries, err := sortedEntries(merged)
	if err != nil {
		return stats, fmt.Errorf("sdpolicy: encoding result cache: %w", err)
	}
	data, err := json.Marshal(cacheFile{Version: cacheFileVersion, Entries: entries})
	if err != nil {
		return stats, fmt.Errorf("sdpolicy: encoding result cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return stats, err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return stats, werr
		}
		return stats, cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return stats, err
	}
	stats.Entries = len(entries)
	return stats, nil
}

// LoadCache primes the engine's result cache from a file written by
// SaveCache: every persisted point is re-canonicalised and inserted, so
// a subsequent campaign over the same points is pure cache hits. The
// file's entries must be valid — a version mismatch, malformed point or
// missing result aborts the load (tagged ErrBadInput) without priming
// anything, rather than silently serving partial state. Loading into an
// engine whose cache is disabled is a no-op.
func (e *Engine) LoadCache(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	kvs, err := decodeCacheFile(path, data)
	if err != nil {
		return err
	}
	keys, vals := entryResults(kvs)
	e.runner.CachePrime(keys, vals)
	return nil
}

// ReportJSON encodes the result's per-job report — the payload behind
// Daily and the heatmap analyses, which the Result's public JSON
// deliberately omits. It backs the negotiated report frame of the
// campaign wire form: a worker attaches the encoding to its stream so
// a coordinator (or sdexp -server -cache-dir) can reconstruct fully
// cacheable results from proxied simulations.
func (r *Result) ReportJSON() ([]byte, error) {
	return json.Marshal(r.report)
}

// SetReportJSON is ReportJSON's inverse: it restores the per-job
// report onto a Result decoded from the wire, making it equivalent to
// a freshly simulated one — and therefore safe to Prime into a cache
// that SaveCache will later spill.
func (r *Result) SetReportJSON(data []byte) error {
	return json.Unmarshal(data, &r.report)
}

// Prime inserts an externally computed result for p into the engine's
// result cache without simulating — the coordinator's path for warming
// a local cache from results proxied over the campaign wire form. The
// point is validated and canonicalised exactly as Run would, so a
// later campaign over the same point (in any spelling) is a cache hit.
// Priming an engine whose cache is disabled is a no-op. Results meant
// to survive a SaveCache spill should carry their per-job report
// (SetReportJSON) first; a report-less result still serves campaign
// hits but spills an empty report.
func (e *Engine) Prime(p Point, res *Result) error {
	if res == nil {
		return fmt.Errorf("sdpolicy: priming a nil result: %w", ErrBadInput)
	}
	if err := p.validate(); err != nil {
		return err
	}
	e.runner.CachePrime([]Point{p.canonical()}, []*Result{res})
	return nil
}

// PrimeProxied caches a result that arrived over the campaign wire
// form — a result line plus its negotiated report frame — cloning res
// before attaching the report, because the streamed pointer is shared
// with whatever relay or printer path delivered it to the caller. This
// is the one place the clone-before-attach invariant lives; the
// coordinator's fan-out and sdexp -server both warm through it. Like
// the frames themselves it is best-effort: an undecodable report
// simply skips priming, only an invalid point is an error.
func (e *Engine) PrimeProxied(p Point, res *Result, report []byte) error {
	if res == nil {
		return fmt.Errorf("sdpolicy: priming a nil result: %w", ErrBadInput)
	}
	clone := *res
	if clone.SetReportJSON(report) != nil {
		return nil
	}
	return e.Prime(p, &clone)
}

// CacheMergeStats reports what Engine.MergeCache combined.
type CacheMergeStats struct {
	// Files is how many spill files were read; Entries how many
	// distinct canonical points the merged cache holds.
	Files   int
	Entries int
	// Conflicts describes every canonical point whose inputs carried
	// differing payloads — evidence that determinism broke somewhere —
	// one human-readable line per collision. The merge itself stays
	// deterministic: the lexicographically smaller payload encoding
	// wins, independent of the order the inputs were given.
	Conflicts []string
}

// MergeCache primes the engine's result cache from several spill files
// at once — the reduce step of a map-reduce campaign, combining the
// per-shard -cache-dir spills of a job array (or of coordinator
// workers) into one warm cache. Each path may be a spill file or a
// cache directory holding CacheFileName. Overlapping entries with
// identical payloads coalesce; conflicting payloads resolve to a
// deterministic, input-order-independent winner and are reported in
// the returned stats so callers can surface the discrepancy. Any
// unreadable or invalid input — or a merged entry set larger than the
// engine's cache capacity, which priming would silently evict from —
// aborts the merge without priming anything. Follow with SaveCache to
// spill the merged cache.
func (e *Engine) MergeCache(paths ...string) (CacheMergeStats, error) {
	var stats CacheMergeStats
	if len(paths) == 0 {
		return stats, fmt.Errorf("sdpolicy: no cache files to merge: %w", ErrBadInput)
	}
	merged := make(map[Point]cacheFileEntry)
	for _, p := range paths {
		if fi, err := os.Stat(p); err == nil && fi.IsDir() {
			p = filepath.Join(p, CacheFileName)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return stats, err
		}
		kvs, err := decodeCacheFile(p, data)
		if err != nil {
			return stats, err
		}
		stats.Files++
		for _, kv := range kvs {
			conflict, err := mergeEntry(merged, kv.key, kv.ent)
			if err != nil {
				return stats, fmt.Errorf("sdpolicy: merging %s: %w", p, err)
			}
			if conflict {
				stats.Conflicts = append(stats.Conflicts, conflictDescription(kv.key))
			}
		}
	}
	entries, err := sortedEntries(merged)
	if err != nil {
		return stats, fmt.Errorf("sdpolicy: merging caches: %w", err)
	}
	// Priming past the LRU capacity would silently evict the overflow:
	// the merge would report success while a later replay re-simulates
	// the evicted points. Refuse instead, so the caller sizes the cache
	// to the campaign (sdexp -cache). The check counts the union with
	// whatever is already cached — entries loaded before the merge must
	// not be evicted either — without penalising overlap.
	cachedKeys, _ := e.runner.CacheSnapshot()
	union := len(entries)
	for _, k := range cachedKeys {
		if _, ok := merged[k]; !ok {
			union++
		}
	}
	if capacity := e.runner.CacheCap(); union > capacity {
		return stats, fmt.Errorf("sdpolicy: cache would hold %d entries (%d merged + %d already cached, overlap deduplicated) but fits %d; raise the cache size: %w",
			union, len(entries), len(cachedKeys), capacity, ErrBadInput)
	}
	kvs := make([]cacheKV, len(entries))
	for i, ent := range entries {
		kvs[i] = cacheKV{key: ent.Point.canonical(), ent: ent}
	}
	keys, vals := entryResults(kvs)
	e.runner.CachePrime(keys, vals)
	stats.Entries = len(entries)
	return stats, nil
}

// conflictDescription is the one logged-discrepancy line for a
// canonical point whose merge inputs carried differing payloads.
func conflictDescription(key Point) string {
	w, _ := json.Marshal(key.wire())
	return fmt.Sprintf("%s: conflicting cached payloads across merge inputs; kept the deterministic winner", w)
}

// cacheKV pairs a decoded spill entry with its canonical cache key.
type cacheKV struct {
	key Point
	ent cacheFileEntry
}

// decodeCacheFile parses and validates one spill file, returning its
// entries keyed by canonical point. Errors are tagged ErrBadInput.
func decodeCacheFile(path string, data []byte) ([]cacheKV, error) {
	var file cacheFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("sdpolicy: %s: %w: %w", path, err, ErrBadInput)
	}
	if file.Version != cacheFileVersion {
		return nil, fmt.Errorf("sdpolicy: %s: cache version %d, want %d: %w: %w",
			path, file.Version, cacheFileVersion, errCacheVersion, ErrBadInput)
	}
	kvs := make([]cacheKV, 0, len(file.Entries))
	for i, ent := range file.Entries {
		if ent.Result == nil {
			return nil, fmt.Errorf("sdpolicy: %s: entry %d has no result: %w", path, i, ErrBadInput)
		}
		if err := ent.Point.validate(); err != nil {
			return nil, fmt.Errorf("sdpolicy: %s: entry %d: %w", path, i, err)
		}
		kvs = append(kvs, cacheKV{key: ent.Point.canonical(), ent: ent})
	}
	return kvs, nil
}

// entryResults materialises decoded entries as cache keys and restored
// Results (per-job report reattached).
func entryResults(kvs []cacheKV) ([]Point, []*Result) {
	keys := make([]Point, len(kvs))
	vals := make([]*Result, len(kvs))
	for i, kv := range kvs {
		res := *kv.ent.Result
		res.report = kv.ent.Report
		keys[i] = kv.key
		vals[i] = &res
	}
	return keys, vals
}

// mergeEntry folds ent (for canonical point key) into dst. Identical
// payloads coalesce silently; differing payloads keep whichever
// payload encodes lexicographically smaller, so the outcome is
// deterministic and independent of merge order. The stored point is
// normalised to the canonical wire spelling. Returns whether the
// payloads genuinely differed.
func mergeEntry(dst map[Point]cacheFileEntry, key Point, ent cacheFileEntry) (bool, error) {
	ent.Point = key.wire()
	old, ok := dst[key]
	if !ok {
		dst[key] = ent
		return false, nil
	}
	oldPayload, err := old.payload()
	if err != nil {
		return false, err
	}
	newPayload, err := ent.payload()
	if err != nil {
		return false, err
	}
	if bytes.Equal(oldPayload, newPayload) {
		return false, nil
	}
	if bytes.Compare(newPayload, oldPayload) < 0 {
		dst[key] = ent
	}
	return true, nil
}

// sortedEntries orders merged entries by their point's wire encoding,
// making spill bytes a pure function of the cache contents.
func sortedEntries(m map[Point]cacheFileEntry) ([]cacheFileEntry, error) {
	type sortable struct {
		wire string
		ent  cacheFileEntry
	}
	all := make([]sortable, 0, len(m))
	for _, ent := range m {
		w, err := json.Marshal(ent.Point)
		if err != nil {
			return nil, err
		}
		all = append(all, sortable{wire: string(w), ent: ent})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].wire < all[j].wire })
	entries := make([]cacheFileEntry, len(all))
	for i, s := range all {
		entries[i] = s.ent
	}
	return entries, nil
}

// lockCacheFile serialises cross-process spill writers on a sibling
// lock file, so two shards saving into one cache directory cannot
// interleave their read-merge-write cycles and drop each other's
// entries. The lock is held across the whole read-merge-marshal-rename
// cycle, and its mtime is refreshed while held, so only a lock whose
// owner actually died goes staleLockAge without a touch and gets
// broken — a live writer, however slow, keeps its lock fresh. Each
// lock records an owner token, and release removes the file only while
// that token is still inside it, so a writer whose lock was somehow
// stolen cannot delete the thief's fresh lock and re-admit a third
// writer. The acquisition timeout exceeds staleLockAge so a waiter
// behind a crashed writer always outlives the staleness threshold and
// breaks through instead of timing out first.
func lockCacheFile(path string) (release func(), err error) {
	const (
		retryEvery   = 20 * time.Millisecond
		staleLockAge = 30 * time.Second
		lockTimeout  = 2 * staleLockAge
	)
	lock := path + ".lock"
	token := fmt.Sprintf("%d-%d", os.Getpid(), time.Now().UnixNano())
	deadline := time.Now().Add(lockTimeout)
	for {
		f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_, werr := f.WriteString(token)
			cerr := f.Close()
			if werr != nil || cerr != nil {
				os.Remove(lock)
				if werr == nil {
					werr = cerr
				}
				return nil, fmt.Errorf("sdpolicy: writing cache lock %s: %w", lock, werr)
			}
			stop := make(chan struct{})
			go func() {
				ticker := time.NewTicker(staleLockAge / 3)
				defer ticker.Stop()
				for {
					select {
					case <-ticker.C:
						now := time.Now()
						os.Chtimes(lock, now, now)
					case <-stop:
						return
					}
				}
			}()
			return func() {
				close(stop)
				if data, rerr := os.ReadFile(lock); rerr == nil && string(data) == token {
					os.Remove(lock)
				}
			}, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("sdpolicy: locking cache %s: %w", path, err)
		}
		if fi, serr := os.Stat(lock); serr == nil && time.Since(fi.ModTime()) > staleLockAge {
			// Break the abandoned lock by renaming it to a name we own:
			// rename is atomic, so exactly one contender wins the steal
			// and the losers retry against whatever lock exists next —
			// a plain Remove here could delete a fresh lock created by
			// a faster contender between the Stat and the Remove.
			stolen := fmt.Sprintf("%s.stale-%d", lock, os.Getpid())
			if os.Rename(lock, stolen) == nil {
				os.Remove(stolen)
			}
			continue
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("sdpolicy: cache lock %s still held after %v; remove it if its owner crashed", lock, lockTimeout)
		}
		time.Sleep(retryEvery)
	}
}
