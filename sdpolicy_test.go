package sdpolicy

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestNewWorkloadPresets(t *testing.T) {
	w, err := NewWorkload("wl5", 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Jobs() == 0 || w.Nodes() == 0 || w.Cores() == 0 {
		t.Fatalf("empty workload: %+v", w)
	}
	if w.MaxJobNodes() > w.Nodes() {
		t.Fatal("job larger than machine")
	}
	if _, err := NewWorkload("nope", 1, 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := NewWorkload("wl1", 0, 1); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := NewWorkload("wl1", 1.5, 1); err == nil {
		t.Fatal("scale > 1 accepted")
	}
}

func TestSimulateStaticAndSD(t *testing.T) {
	w, err := NewWorkload("wl5", 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Simulate(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if static.Policy != "static-backfill" || static.MalleableStarts != 0 {
		t.Fatalf("static run: %+v", static)
	}
	sd, err := Simulate(w, Options{Policy: "sd", MaxSlowdown: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sd.MalleableStarts == 0 {
		t.Fatal("SD run applied no malleability on a congested workload")
	}
	if sd.AvgSlowdown >= static.AvgSlowdown {
		t.Fatalf("SD slowdown %v not below static %v", sd.AvgSlowdown, static.AvgSlowdown)
	}
	if sd.Jobs != static.Jobs || sd.Jobs != w.Jobs() {
		t.Fatal("job counts diverge")
	}
	// the bounded metric is damped but must agree on the winner here
	if sd.AvgBoundedSlowdown >= static.AvgBoundedSlowdown {
		t.Fatalf("SD bounded slowdown %v not below static %v",
			sd.AvgBoundedSlowdown, static.AvgBoundedSlowdown)
	}
	if sd.AvgBoundedSlowdown > sd.AvgSlowdown {
		t.Fatal("bounded slowdown exceeds raw slowdown")
	}
	if sd.P95Slowdown < 1 {
		t.Fatalf("p95 slowdown %v below 1", sd.P95Slowdown)
	}
}

func TestOptionsValidation(t *testing.T) {
	w, _ := NewWorkload("wl5", 0.1, 1)
	for _, opt := range []Options{
		{Policy: "bogus"},
		{DynamicCutoff: "bogus"},
		{Model: "bogus"},
	} {
		if _, err := Simulate(w, opt); err == nil {
			t.Errorf("options %+v accepted", opt)
		}
	}
}

func TestDailySeries(t *testing.T) {
	w, _ := NewWorkload("wl5", 0.2, 1)
	res, err := Simulate(w, Options{Policy: "sd"})
	if err != nil {
		t.Fatal(err)
	}
	days := res.Daily()
	if len(days) == 0 {
		t.Fatal("no daily series")
	}
	total := 0
	for _, d := range days {
		total += d.Jobs
		if d.AvgSlowdown < 1 {
			t.Fatalf("day %d slowdown %v below 1", d.Day, d.AvgSlowdown)
		}
	}
	if total != w.Jobs() {
		t.Fatalf("daily series covers %d of %d jobs", total, w.Jobs())
	}
}

func TestHeatmapRatioShape(t *testing.T) {
	w, _ := NewWorkload("wl5", 0.2, 1)
	static, _ := Simulate(w, Options{})
	sd, _ := Simulate(w, Options{Policy: "sd", MaxSlowdown: 10})
	ratio := static.HeatmapRatio(sd, HeatSlowdown)
	nodesL, timesL := HeatmapLabels()
	if len(ratio) != len(nodesL) {
		t.Fatalf("rows %d, labels %d", len(ratio), len(nodesL))
	}
	if len(ratio[0]) != len(timesL) {
		t.Fatalf("cols %d, labels %d", len(ratio[0]), len(timesL))
	}
	anyFinite := false
	for _, row := range ratio {
		for _, v := range row {
			if !math.IsNaN(v) {
				anyFinite = true
			}
		}
	}
	if !anyFinite {
		t.Fatal("heatmap ratio entirely empty")
	}
}

func TestAppShares(t *testing.T) {
	w, _ := NewWorkload("wl5", 1.0, 1)
	shares := w.AppShares()
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum %v", sum)
	}
	if shares["CoreNeuron"] < 0.25 {
		t.Fatalf("CoreNeuron share %v too low", shares["CoreNeuron"])
	}
}

func TestLoadSWFRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.swf")
	content := "; test trace\n" +
		"1 0 -1 600 -1 -1 -1 96 1200 -1 1 -1 -1 -1 -1 -1 -1 -1\n" +
		"2 60 -1 60 -1 -1 -1 48 300 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := LoadSWF(path, 4, 2, 24)
	if err != nil {
		t.Fatal(err)
	}
	if w.Jobs() != 2 || w.MaxJobNodes() != 2 {
		t.Fatalf("loaded %d jobs, max %d nodes", w.Jobs(), w.MaxJobNodes())
	}
	res, err := Simulate(w, Options{Policy: "sd"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 2 {
		t.Fatal("SWF jobs did not complete")
	}
	if _, err := LoadSWF(filepath.Join(dir, "missing.swf"), 4, 2, 24); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSetMalleableFraction(t *testing.T) {
	w, _ := NewWorkload("wl5", 0.2, 1)
	w.SetMalleableFraction(0)
	res, err := Simulate(w, Options{Policy: "sd"})
	if err != nil {
		t.Fatal(err)
	}
	if res.MalleableStarts != 0 {
		t.Fatal("all-rigid workload used malleability")
	}
}

func TestHeterogeneousMachine(t *testing.T) {
	w, _ := NewWorkload("wl5", 0.3, 1)
	w.TagNodes("bigmem", 0.5)
	w.RequireFeature("bigmem", 0.2)
	for _, opt := range []Options{{Policy: "static"}, {Policy: "sd"}} {
		res, err := Simulate(w, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if res.Jobs != w.Jobs() {
			t.Fatalf("%+v: %d of %d jobs completed", opt, res.Jobs, w.Jobs())
		}
	}
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { w.TagNodes("x", 1.5) })
	mustPanic(func() { w.RequireFeature("x", -0.1) })
}

func TestEASYBackfillOption(t *testing.T) {
	w, _ := NewWorkload("wl5", 0.2, 1)
	easy, err := Simulate(w, Options{Policy: "static", Backfill: "easy"})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Simulate(w, Options{Policy: "static", Backfill: "conservative"})
	if err != nil {
		t.Fatal(err)
	}
	if easy.Jobs != cons.Jobs {
		t.Fatal("job counts differ between disciplines")
	}
	if _, err := Simulate(w, Options{Backfill: "bogus"}); err == nil {
		t.Fatal("unknown backfill discipline accepted")
	}
}

func TestSweepMaxSD(t *testing.T) {
	rows, err := SweepMaxSD([]string{"wl5"}, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(MaxSDVariants()) {
		t.Fatalf("rows %d, want %d", len(rows), len(MaxSDVariants()))
	}
	for _, r := range rows {
		if r.AvgSlowdown <= 0 || math.IsNaN(r.AvgSlowdown) {
			t.Fatalf("bad normalised slowdown: %+v", r)
		}
		if r.AvgSlowdown > 1.001 {
			t.Errorf("%s %s worsened slowdown: %v", r.Workload, r.Variant, r.AvgSlowdown)
		}
	}
}

func TestCompareRuntimeModels(t *testing.T) {
	rows, err := CompareRuntimeModels([]string{"wl5"}, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.AvgSlowdown > 1.01 {
			t.Errorf("model %s worsened slowdown vs static: %v", r.Model, r.AvgSlowdown)
		}
	}
}

func TestRealRunExperiment(t *testing.T) {
	rep, err := RealRunExperiment(0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgSlowdownPct <= 0 {
		t.Fatalf("real-run slowdown improvement %v, want positive", rep.AvgSlowdownPct)
	}
	if rep.SD.MalleableStarts == 0 {
		t.Fatal("real run applied no malleability")
	}
}

func TestTable1And2(t *testing.T) {
	rows, err := Table1(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("table 1 rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Jobs == 0 || r.Makespan <= 0 || r.AvgSlowdown < 1 {
			t.Fatalf("bad row: %+v", r)
		}
	}
	t2, err := Table2(1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 5 || t2[0].App != "PILS" {
		t.Fatalf("table 2: %+v", t2)
	}
}

func TestComparePolicies(t *testing.T) {
	rows, err := ComparePolicies("wl5", 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Value] = r
	}
	if math.Abs(byName["static"].AvgSlowdown-1) > 1e-9 {
		t.Fatalf("static not normalised to 1: %v", byName["static"].AvgSlowdown)
	}
	if !(byName["sd"].AvgSlowdown < byName["oversubscribe"].AvgSlowdown) {
		t.Fatalf("SD (%v) should beat oversubscription (%v)",
			byName["sd"].AvgSlowdown, byName["oversubscribe"].AvgSlowdown)
	}
	if !(byName["oversubscribe"].AvgSlowdown < 1) {
		t.Fatalf("oversubscription (%v) should beat static here",
			byName["oversubscribe"].AvgSlowdown)
	}
}

func TestAblations(t *testing.T) {
	sf, err := AblateSharingFactor("wl5", 0.1, 1, []float64{0.25, 0.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if len(sf) != 3 {
		t.Fatalf("sf rows %d", len(sf))
	}
	mm, err := AblateMaxMates("wl5", 0.1, 1, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(mm) != 3 {
		t.Fatalf("mates rows %d", len(mm))
	}
	mf, err := AblateMalleableFraction("wl5", 0.1, 1, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	// more malleable jobs must not hurt the normalised slowdown ordering:
	// frac=0 is exactly static
	if math.Abs(mf[0].AvgSlowdown-1) > 0.001 {
		t.Fatalf("all-rigid SD run deviates from static: %v", mf[0].AvgSlowdown)
	}
	if mf[2].AvgSlowdown > mf[0].AvgSlowdown {
		t.Fatalf("fully malleable (%v) worse than all-rigid (%v)",
			mf[2].AvgSlowdown, mf[0].AvgSlowdown)
	}
	fn, err := AblateFreeNodeMixing("wl5", 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fn) != 2 {
		t.Fatalf("free-node rows %d", len(fn))
	}
}
