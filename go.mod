module sdpolicy

go 1.23
