module sdpolicy

go 1.24
