package sdpolicy

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func streamTestPoints() []Point {
	var pts []Point
	for _, wl := range []string{"wl1", "wl5"} {
		pts = append(pts,
			NewPoint(wl, campaignTestScale, 1, Options{Policy: "static"}),
			NewPoint(wl, campaignTestScale, 1, Options{Policy: "sd", MaxSlowdown: 10}),
			NewPoint(wl, campaignTestScale, 1, Options{Policy: "sd", DynamicCutoff: "avg"}),
		)
	}
	return pts
}

// TestEngineRunStreamMatchesSequentialRun is the acceptance check that
// streaming costs no determinism: the merged slice of a parallel,
// streamed campaign is byte-identical (JSON) to a sequential Run of the
// same points, and every point is also delivered exactly once on the
// updates channel with a result identical to its slot in the merge.
func TestEngineRunStreamMatchesSequentialRun(t *testing.T) {
	points := streamTestPoints()
	seqRes, err := NewEngine(1, 0).Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(seqRes)
	if err != nil {
		t.Fatal(err)
	}

	updates := make(chan PointResult, len(points))
	parRes, err := NewEngine(8, 0).RunStream(context.Background(), points, updates)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(parRes)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("streamed parallel merge differs from sequential run:\n%s\nvs\n%s", got, want)
	}
	seen := make(map[int]bool)
	for u := range updates {
		if seen[u.Index] {
			t.Fatalf("index %d streamed twice", u.Index)
		}
		seen[u.Index] = true
		if u.Point != points[u.Index] {
			t.Fatalf("update %d echoes point %+v, want %+v", u.Index, u.Point, points[u.Index])
		}
		uj, _ := json.Marshal(u.Result)
		sj, _ := json.Marshal(parRes[u.Index])
		if string(uj) != string(sj) {
			t.Fatalf("streamed result %d differs from merged slice", u.Index)
		}
	}
	if len(seen) != len(points) {
		t.Fatalf("%d of %d points streamed", len(seen), len(points))
	}
}

// TestEngineCancelAbortsInFlightPoint verifies mid-simulation
// cancellation through the whole stack: cancelling a campaign whose
// only point is already simulating returns context.Canceled in a small
// fraction of the point's runtime instead of finishing the point.
func TestEngineCancelAbortsInFlightPoint(t *testing.T) {
	point := NewPoint("wl1", 0.3, 1, Options{Policy: "sd", MaxSlowdown: 10})

	start := time.Now()
	if _, err := NewEngine(1, 0).SimulatePoint(context.Background(), point); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(full/20, cancel)
	start = time.Now()
	_, err := NewEngine(1, 0).SimulatePoint(ctx, point)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > full/2 {
		t.Fatalf("cancelled campaign returned after %v; the point runs %v — in-flight abort not prompt", elapsed, full)
	}
}

func TestPointSpecDefaultsAndRoundTrip(t *testing.T) {
	var specs []PointSpec
	if err := json.Unmarshal([]byte(`[
		{"workload":"wl1","options":{"policy":"sd","max_slowdown":10}},
		{"workload":"wl2","scale":0.25,"seed":9,"malleable_fraction":0.5,"options":{}}
	]`), &specs); err != nil {
		t.Fatal(err)
	}
	a := specs[0].Point()
	if a.Scale != 1 || a.Seed != 1 || a.MalleableFraction != -1 {
		t.Fatalf("defaults not applied: %+v", a)
	}
	b := specs[1].Point()
	if b.Scale != 0.25 || b.Seed != 9 || b.MalleableFraction != 0.5 {
		t.Fatalf("explicit fields lost: %+v", b)
	}
	// Echoed points are themselves valid PointSpecs: the -1 keep-mix
	// sentinel must not leak into the JSON.
	for _, p := range []Point{a, b} {
		enc, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(enc), "-1") {
			t.Fatalf("sentinel leaked: %s", enc)
		}
		var spec PointSpec
		if err := json.Unmarshal(enc, &spec); err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("echoed point %s failed validation: %v", enc, err)
		}
		if got := spec.Point(); got != p {
			t.Fatalf("round trip: %+v != %+v", got, p)
		}
		// And decoding straight back into Point restores the keep-mix
		// sentinel instead of defaulting the fraction to 0.
		var back Point
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatal(err)
		}
		if back != p {
			t.Fatalf("Point round trip: %+v != %+v", back, p)
		}
	}
}

func TestPointSpecValidate(t *testing.T) {
	bad := -0.5
	if err := (PointSpec{MalleableFraction: &bad}).Validate(); !errors.Is(err, ErrBadInput) {
		t.Fatalf("missing workload + bad fraction: err = %v", err)
	}
	if err := (PointSpec{Workload: "wl1", MalleableFraction: &bad}).Validate(); !errors.Is(err, ErrBadInput) {
		t.Fatalf("negative fraction accepted: err = %v", err)
	}
	ok := 0.5
	if err := (PointSpec{Workload: "wl1", MalleableFraction: &ok}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}
