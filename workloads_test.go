package sdpolicy

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"sdpolicy/internal/reducer"
)

// testTraceSWF is a tiny but simulatable SWF log: a 4-node machine of
// 4-core nodes and three rigid-recorded jobs (compiled as malleable).
const testTraceSWF = `; MaxNodes: 4
; MaxProcs: 16
1 0 5 100 -1 -1 -1 8 200 -1 1 -1 -1 -1 1 1 -1 -1
2 30 -1 60 -1 -1 -1 4 90 -1 1 -1 -1 -1 1 1 -1 -1
3 80 -1 40 -1 -1 -1 4 40 -1 1 -1 -1 -1 1 1 -1 -1
`

func registerTestTrace(t *testing.T) TraceInfo {
	t.Helper()
	info, err := RegisterTrace([]byte(testTraceSWF), "workloads_test.swf")
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestWorkloadRefValidate(t *testing.T) {
	valid := []WorkloadRef{
		{Name: "wl1"},
		{Name: "wl1", Scale: 0.5, Seed: 7},
		{Trace: "trace:ca9b6a7f62b5e8e3"},
		{Trace: "ca9b6a7f62b5e8e3"},
		{Name: "wl1", Derivations: []Derivation{MalleableFractionDerivation(0.5)}},
	}
	for _, r := range valid {
		if err := r.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", r, err)
		}
	}
	invalid := []WorkloadRef{
		{},
		{Name: "wl1", Trace: "trace:ca9b6a7f62b5e8e3"},
		{Name: "trace:ca9b6a7f62b5e8e3"}, // trace refs go in the trace field
		{Name: "wl1", Derivations: []Derivation{{Op: "shrink_jobs"}}},
	}
	for _, r := range invalid {
		err := r.Validate()
		if err == nil {
			t.Errorf("%+v accepted", r)
		} else if !errors.Is(err, ErrBadInput) {
			t.Errorf("%+v: error %v is not ErrBadInput", r, err)
		}
	}
}

func TestWorkloadRefName(t *testing.T) {
	if got := (WorkloadRef{Name: "wl2"}).WorkloadName(); got != "wl2" {
		t.Fatalf("name ref: %q", got)
	}
	// With or without the prefix, the trace field resolves to the same
	// canonical "trace:<digest>" name.
	withPrefix := (WorkloadRef{Trace: "trace:abcd"}).WorkloadName()
	without := (WorkloadRef{Trace: "abcd"}).WorkloadName()
	if withPrefix != "trace:abcd" || without != "trace:abcd" {
		t.Fatalf("trace refs: %q / %q", withPrefix, without)
	}
}

// TestWorkloadRefPointSpec: materialising a ref must produce exactly
// the point the equivalent loose spec produces — one address, one
// cache identity, regardless of which wire shape carried it.
func TestWorkloadRefPointSpec(t *testing.T) {
	ref := WorkloadRef{
		Name: "wl1", Scale: 0.25, Seed: 9,
		Derivations: []Derivation{ScaleLoadDerivation(1.5), MalleableFractionDerivation(0.3)},
	}
	opt := Options{Policy: "sd", MaxSlowdown: 10}
	loose := PointSpec{
		Workload: "wl1", Scale: 0.25, Seed: 9,
		Derivations: []Derivation{ScaleLoadDerivation(1.5), MalleableFractionDerivation(0.3)},
		Options:     opt,
	}
	if got, want := ref.PointSpec(opt).Point(), loose.Point(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ref point %+v != loose point %+v", got, want)
	}
}

func TestPointSpecRejectsMixedRef(t *testing.T) {
	ref := &WorkloadRef{Name: "wl1"}
	for _, s := range []PointSpec{
		{Ref: ref, Workload: "wl1"},
		{Ref: ref, Scale: 0.5},
		{Ref: ref, Seed: 3},
		{Ref: ref, Derivations: []Derivation{MalleableFractionDerivation(0.5)}},
		{Ref: &WorkloadRef{}},
	} {
		err := s.Validate()
		if err == nil {
			t.Errorf("%+v accepted", s)
		} else if !errors.Is(err, ErrBadInput) {
			t.Errorf("%+v: error %v is not ErrBadInput", s, err)
		}
	}
	if err := (PointSpec{Ref: ref, Options: Options{Policy: "sd"}}).Validate(); err != nil {
		t.Fatalf("pure ref spec rejected: %v", err)
	}
}

// TestPointWorkloadRefWire: the workload_ref input shape decodes to the
// same Point as the loose shape, and re-encoding always emits the loose
// shape — the success bytes of every streaming surface stay frozen.
func TestPointWorkloadRefWire(t *testing.T) {
	looseJSON := `{"workload":"wl1","scale":0.25,"seed":9,
		"derivations":[{"op":"scale_load","fraction":0,"factor":1.5}],
		"options":{"policy":"sd","max_slowdown":10}}`
	refJSON := `{"workload_ref":{"name":"wl1","scale":0.25,"seed":9,
		"derivations":[{"op":"scale_load","fraction":0,"factor":1.5}]},
		"options":{"policy":"sd","max_slowdown":10}}`
	var loose, ref Point
	if err := json.Unmarshal([]byte(looseJSON), &loose); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(refJSON), &ref); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loose, ref) {
		t.Fatalf("wire shapes decode differently:\n%+v\n%+v", loose, ref)
	}
	out, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "workload_ref") {
		t.Fatalf("encoded point leaks the input shape: %s", out)
	}
}

// TestTracePointCanonical: a trace's content is pinned by its digest,
// so differently-spelled generation parameters must collapse to one
// cache identity — and therefore one simulation.
func TestTracePointCanonical(t *testing.T) {
	info := registerTestTrace(t)
	opt := Options{Policy: "sd", MaxSlowdown: 10}
	a := NewPoint(info.Ref, 0.5, 9, opt).canonical()
	b := NewPoint(info.Ref, 1, 1, opt).canonical()
	if a != b {
		t.Fatalf("trace points did not canonicalise together:\n%+v\n%+v", a, b)
	}
	if g := NewPoint("wl1", 0.5, 9, opt).canonical(); g.Scale != 0.5 || g.Seed != 9 {
		t.Fatalf("generator point lost its parameters: %+v", g)
	}

	// The fold is live end to end: the second spelling must be a cache
	// hit, not a second simulation.
	engine := NewEngine(2, 16)
	ctx := context.Background()
	if _, err := engine.Run(ctx, []Point{NewPoint(info.Ref, 0.5, 9, opt)}); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(ctx, []Point{NewPoint(info.Ref, 1, 1, opt)}); err != nil {
		t.Fatal(err)
	}
	hits, misses := engine.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache: %d hits, %d misses; want 1 and 1", hits, misses)
	}
}

func TestRealTraceExperiment(t *testing.T) {
	info := registerTestTrace(t)
	engine := NewEngine(2, 16)
	out, err := engine.Experiment(context.Background(), "real_trace", reducer.Params{
		"trace":       info.Ref,
		"load_factor": 1.5,
		"qos_class":   "gold",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := out.(*RealRunReport)
	if !ok {
		t.Fatalf("summary type %T", out)
	}
	if rep.Static == nil || rep.SD == nil || rep.Static.Jobs != info.Jobs {
		t.Fatalf("report: %+v", rep)
	}
	if _, err := engine.Experiment(context.Background(), "real_trace", reducer.Params{}); err == nil {
		t.Fatal("missing trace parameter accepted")
	}
}

func TestRegisterTraceRejectsGarbage(t *testing.T) {
	if _, err := RegisterTrace([]byte("not an swf\n"), "bad.swf"); err == nil {
		t.Fatal("garbage registered")
	}
	if _, ok := TraceByRef("trace:0000000000000000"); ok {
		t.Fatal("unknown digest resolved")
	}
	if _, ok := TraceByRef("wl1"); ok {
		t.Fatal("generator name resolved as a trace")
	}
}
