// Package sdpolicy is the public API of the SD-Policy reproduction: a
// discrete-event HPC scheduling laboratory implementing the Slowdown
// Driven (SD) malleable-job policy of D'Amico, Jokanovic and Corbalan
// (ICPP 2019) next to a conservative-backfill baseline, the DROM
// node-level malleability substrate, the paper's runtime models, workload
// generators for its five evaluation workloads, and the metrics needed to
// regenerate every table and figure of the paper.
//
// Quick start:
//
//	w, _ := sdpolicy.NewWorkload("wl5", 0.5, 1)
//	static, _ := sdpolicy.Simulate(w, sdpolicy.Options{Policy: "static"})
//	sd, _ := sdpolicy.Simulate(w, sdpolicy.Options{Policy: "sd", MaxSlowdown: 10})
//	fmt.Println(static.AvgSlowdown, "->", sd.AvgSlowdown)
//
// # Campaigns
//
// Experiment campaigns — cross products of workloads, scheduler
// variants, seeds and scales — run through an Engine: a worker pool
// that shards the campaign's Points across GOMAXPROCS (or a configured
// number of) workers and memoises results in an LRU cache, so repeated
// points such as the per-workload static baseline simulate exactly
// once. Campaigns are deterministic: results come back in input order
// and a parallel run is byte-identical to a sequential one.
//
//	engine := sdpolicy.NewEngine(8, 512)
//	rows, err := engine.SweepMaxSD(ctx, []string{"wl1", "wl2"}, 0.1, 1)
//
// The package-level experiment functions (SweepMaxSD, Table1,
// CompareRuntimeModels, the ablations, ...) delegate to a process-wide
// Default engine; the Engine methods additionally accept a
// context.Context for cancellation and report progress via OnProgress.
// Cancellation is prompt: the scheduler's event loop checkpoints the
// context (sched.RunContext), so cancelling a campaign aborts even the
// simulation point currently in flight within milliseconds.
// Engine.RunStream streams each point's result on a channel as it
// completes while still returning the deterministic final merge.
// DeriveSeed expands one base seed into independent per-replicate
// seeds for multi-seed campaigns.
//
// cmd/sdserve exposes the same engine over HTTP (POST /v1/simulate,
// POST /v1/sweep, and the streaming POST /v1/campaign), serving
// concurrent clients from one shared result cache.
package sdpolicy

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"

	"sdpolicy/internal/apps"
	"sdpolicy/internal/cluster"
	"sdpolicy/internal/job"
	"sdpolicy/internal/metrics"
	"sdpolicy/internal/model"
	"sdpolicy/internal/sched"
	"sdpolicy/internal/swf"
	"sdpolicy/internal/workload"
)

// ErrBadInput marks errors caused by invalid caller input (unknown
// preset, policy, model, or out-of-range parameters) as opposed to
// internal simulation failures; test with errors.Is. The sdserve layer
// maps it to HTTP 400.
var ErrBadInput = errors.New("invalid input")

// Workload is a machine description plus a job stream, ready to simulate.
type Workload struct {
	spec workload.Spec
}

// NewWorkload builds one of the paper's Table 1 workload presets
// ("wl1".."wl5"). scale in (0, 1] shrinks the machine and the job count
// proportionally for faster experiments; seed drives the deterministic
// generator.
func NewWorkload(name string, scale float64, seed uint64) (Workload, error) {
	if scale <= 0 || scale > 1 {
		return Workload{}, fmt.Errorf("sdpolicy: scale %v out of (0,1]: %w", scale, ErrBadInput)
	}
	spec, err := workload.ByName(name, scale, seed)
	if err != nil {
		return Workload{}, fmt.Errorf("%w: %w", err, ErrBadInput)
	}
	return Workload{spec: spec}, nil
}

// LoadSWF reads a Standard Workload Format trace (e.g. the real RICC or
// CEA-Curie logs from the Parallel Workloads Archive) onto a machine with
// the given geometry. All jobs are treated as malleable.
func LoadSWF(path string, nodes, sockets, coresPerSocket int) (Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return Workload{}, err
	}
	defer f.Close()
	recs, err := swf.Parse(f)
	if err != nil {
		return Workload{}, err
	}
	cfg := cluster.Config{Nodes: nodes, Sockets: sockets, CoresPerSocket: coresPerSocket}
	jobs := swf.ToJobs(recs, cfg.CoresPerNode(), job.Malleable)
	workload.SortBySubmit(jobs)
	w := Workload{spec: workload.Spec{Name: path, Cluster: cfg, Jobs: jobs}}
	if err := w.spec.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

// Name returns the workload identifier.
func (w Workload) Name() string { return w.spec.Name }

// Jobs returns the number of jobs.
func (w Workload) Jobs() int { return len(w.spec.Jobs) }

// Nodes returns the machine's node count.
func (w Workload) Nodes() int { return w.spec.Cluster.Nodes }

// Cores returns the machine's total core count.
func (w Workload) Cores() int { return w.spec.Cluster.TotalCores() }

// MaxJobNodes returns the largest node request in the stream.
func (w Workload) MaxJobNodes() int {
	m := 0
	for i := range w.spec.Jobs {
		if w.spec.Jobs[i].ReqNodes > m {
			m = w.spec.Jobs[i].ReqNodes
		}
	}
	return m
}

// SetMalleableFraction re-flags the given fraction of jobs as malleable
// and the rest rigid (mixed-workload experiments).
func (w *Workload) SetMalleableFraction(frac float64) {
	workload.SetMalleableFraction(&w.spec, frac)
}

// TagNodes attaches a feature string (architecture, memory class,
// interconnect, ...) to the given fraction of nodes, making the machine
// heterogeneous. Nodes are tagged deterministically by striping.
func (w *Workload) TagNodes(feature string, frac float64) {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("sdpolicy: fraction %v out of [0,1]", frac))
	}
	if w.spec.NodeFeatures == nil {
		w.spec.NodeFeatures = map[int][]string{}
	}
	for nd := 0; nd < w.spec.Cluster.Nodes; nd++ {
		if float64(nd%100) < frac*100 {
			w.spec.NodeFeatures[nd] = append(w.spec.NodeFeatures[nd], feature)
		}
	}
}

// RequireFeature makes the given fraction of jobs (striped
// deterministically) require the feature on every allocated node —
// the constraint-filtering behaviour of Section 3.2.4.
func (w *Workload) RequireFeature(feature string, frac float64) {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("sdpolicy: fraction %v out of [0,1]", frac))
	}
	for i := range w.spec.Jobs {
		if float64(i%100) < frac*100 {
			w.spec.Jobs[i].Features = append(w.spec.Jobs[i].Features, feature)
		}
	}
}

// AppShares returns the fraction of jobs per application class name —
// the Table 2 composition for the real-run workload.
func (w Workload) AppShares() map[string]float64 {
	counts := workload.AppCounts(&w.spec)
	out := make(map[string]float64, len(counts))
	for app, n := range counts {
		out[app.String()] = float64(n) / float64(len(w.spec.Jobs))
	}
	return out
}

// Options configures one simulation. The zero value simulates the static
// conservative-backfill baseline under the ideal runtime model.
type Options struct {
	// Policy is "static" (default), "sd", or "oversubscribe" — the
	// non-adaptive node-sharing baseline of the paper's related work.
	Policy string `json:"policy,omitempty"`
	// MaxSlowdown is the static MAX_SLOWDOWN cut-off; 0 means infinite.
	MaxSlowdown float64 `json:"max_slowdown,omitempty"`
	// DynamicCutoff selects feedback cut-offs: "" (static), "avg"
	// (DynAVGSD), "median", or "p70".
	DynamicCutoff string `json:"dynamic_cutoff,omitempty"`
	// Model is "ideal" (default), "worst", or "app".
	Model string `json:"model,omitempty"`
	// SharingFactor defaults to 0.5 (one of two sockets).
	SharingFactor float64 `json:"sharing_factor,omitempty"`
	// MaxMates defaults to 2.
	MaxMates int `json:"max_mates,omitempty"`
	// CandidateCap defaults to 64.
	CandidateCap int `json:"candidate_cap,omitempty"`
	// BackfillDepth defaults to 100.
	BackfillDepth int `json:"backfill_depth,omitempty"`
	// Backfill selects the reservation discipline: "conservative"
	// (default — every examined waiting job holds a reservation) or
	// "easy" (only the queue head does).
	Backfill string `json:"backfill,omitempty"`
	// IncludeFreeNodes enables mixing free nodes into mate selections.
	IncludeFreeNodes bool `json:"include_free_nodes,omitempty"`
	// DROMOverhead is the simulated seconds per reconfiguration.
	DROMOverhead int64 `json:"drom_overhead,omitempty"`
	// OversubPenalty is the fractional throughput loss per shared job
	// under the "oversubscribe" policy (default 0.15).
	OversubPenalty float64 `json:"oversub_penalty,omitempty"`
}

func (o Options) toConfig() (sched.Config, error) {
	cfg := sched.Defaults()
	switch o.Policy {
	case "", "static":
		cfg.Policy = sched.StaticBackfill
	case "sd":
		cfg.Policy = sched.SDPolicy
	case "oversubscribe":
		cfg.Policy = sched.Oversubscribe
		cfg.OversubPenalty = 0.15
		if o.OversubPenalty > 0 {
			cfg.OversubPenalty = o.OversubPenalty
		}
	default:
		return cfg, fmt.Errorf("sdpolicy: unknown policy %q: %w", o.Policy, ErrBadInput)
	}
	if o.MaxSlowdown > 0 {
		cfg.MaxSlowdown = o.MaxSlowdown
	} else {
		cfg.MaxSlowdown = math.Inf(1)
	}
	switch o.DynamicCutoff {
	case "":
	case "avg":
		cfg.Cutoff = sched.CutoffDynAvg
	case "median":
		cfg.Cutoff = sched.CutoffDynMedian
	case "p70":
		cfg.Cutoff = sched.CutoffDynP70
	default:
		return cfg, fmt.Errorf("sdpolicy: unknown dynamic cutoff %q: %w", o.DynamicCutoff, ErrBadInput)
	}
	switch o.Model {
	case "", "ideal":
		cfg.RuntimeModel = model.Ideal
	case "worst":
		cfg.RuntimeModel = model.WorstCase
	case "app":
		cfg.RuntimeModel = model.App
		cfg.Speedups = apps.SpeedupProvider
	default:
		return cfg, fmt.Errorf("sdpolicy: unknown model %q: %w", o.Model, ErrBadInput)
	}
	if o.SharingFactor > 0 {
		cfg.SharingFactor = o.SharingFactor
	}
	if o.MaxMates > 0 {
		cfg.MaxMates = o.MaxMates
	}
	if o.CandidateCap > 0 {
		cfg.CandidateCap = o.CandidateCap
	}
	if o.BackfillDepth > 0 {
		cfg.BackfillDepth = o.BackfillDepth
	}
	switch o.Backfill {
	case "", "conservative":
		cfg.ReservationDepth = cfg.BackfillDepth
	case "easy":
		cfg.ReservationDepth = 1
	default:
		return cfg, fmt.Errorf("sdpolicy: unknown backfill discipline %q: %w", o.Backfill, ErrBadInput)
	}
	cfg.IncludeFreeNodes = o.IncludeFreeNodes
	cfg.DROMOverhead = o.DROMOverhead
	return cfg, nil
}

// Result is the outcome of one simulation.
type Result struct {
	Workload    string  `json:"workload"`
	Policy      string  `json:"policy"`
	Jobs        int     `json:"jobs"`
	Makespan    int64   `json:"makespan"`
	AvgResponse float64 `json:"avg_response"`
	AvgWait     float64 `json:"avg_wait"`
	AvgSlowdown float64 `json:"avg_slowdown"`
	// AvgBoundedSlowdown uses the customary 10-minute bound, damping the
	// influence of sub-bound jobs (Feitelson's metric).
	AvgBoundedSlowdown float64 `json:"avg_bounded_slowdown"`
	// P95Slowdown is the 95th percentile of per-job slowdowns.
	P95Slowdown     float64 `json:"p95_slowdown"`
	EnergyKWh       float64 `json:"energy_kwh"`
	MalleableStarts int     `json:"malleable_starts"`
	Mates           int     `json:"mates"`

	report metrics.Report
}

// DayPoint is one sample of the Figure 7 per-day series.
type DayPoint struct {
	Day             int
	Jobs            int
	AvgSlowdown     float64
	MalleableStarts int
}

// Daily returns the per-day average slowdown and malleable-start counts.
func (r *Result) Daily() []DayPoint {
	days := r.report.Daily()
	out := make([]DayPoint, len(days))
	for i, d := range days {
		out[i] = DayPoint{Day: d.Day, Jobs: d.Jobs,
			AvgSlowdown: d.AvgSlowdown, MalleableStarts: d.MalleableStarts}
	}
	return out
}

// HeatmapMetric names a per-job quantity for category heatmaps.
type HeatmapMetric string

// Heatmap metrics of Figures 4-6.
const (
	HeatSlowdown HeatmapMetric = "slowdown"
	HeatRunTime  HeatmapMetric = "runtime"
	HeatWait     HeatmapMetric = "wait"
)

func (m HeatmapMetric) internal() metrics.Metric {
	switch m {
	case HeatSlowdown:
		return metrics.MetricSlowdown
	case HeatRunTime:
		return metrics.MetricRunTime
	case HeatWait:
		return metrics.MetricWait
	}
	panic(fmt.Sprintf("sdpolicy: unknown heatmap metric %q", string(m)))
}

// HeatmapRatio returns base/other cell ratios of the metric over (node
// bucket × runtime bucket) job categories — the Figures 4-6 convention
// with r as the static baseline and other as the SD run: values > 1 mean
// SD improved that category. Empty cells are NaN.
func (r *Result) HeatmapRatio(other *Result, m HeatmapMetric) [][]float64 {
	return r.report.NewHeatmap(m.internal()).Ratio(other.report.NewHeatmap(m.internal()))
}

// HeatmapLabels returns the row (node bucket) and column (runtime
// bucket) labels matching HeatmapRatio's layout.
func HeatmapLabels() (nodeBuckets, timeBuckets []string) {
	for i := range metrics.NodeEdges {
		nodeBuckets = append(nodeBuckets, metrics.NodeBucketLabel(i))
	}
	for i := range metrics.TimeEdges {
		timeBuckets = append(timeBuckets, metrics.TimeBucketLabel(i))
	}
	return nodeBuckets, timeBuckets
}

// Simulate runs the workload under the options and returns the metrics.
func Simulate(w Workload, opt Options) (*Result, error) {
	return SimulateContext(context.Background(), w, opt)
}

// SimulateContext is Simulate with mid-simulation cancellation: the
// scheduler's event loop checkpoints ctx every few dozen events, so
// an abandoned simulation aborts within milliseconds — returning an
// error wrapping ctx.Err() — instead of running to completion.
func SimulateContext(ctx context.Context, w Workload, opt Options) (*Result, error) {
	cfg, err := opt.toConfig()
	if err != nil {
		return nil, err
	}
	res, err := sched.RunContext(ctx, w.spec, cfg)
	if err != nil {
		return nil, err
	}
	rep := res.Report
	return &Result{
		Workload:           res.Workload,
		Policy:             res.Policy.String(),
		Jobs:               len(rep.Results),
		Makespan:           rep.Makespan(),
		AvgResponse:        rep.AvgResponse(),
		AvgWait:            rep.AvgWait(),
		AvgSlowdown:        rep.AvgSlowdown(),
		AvgBoundedSlowdown: rep.AvgBoundedSlowdown(600),
		P95Slowdown:        rep.SlowdownPercentile(95),
		EnergyKWh:          res.EnergyJoules / 3.6e6,
		MalleableStarts:    res.MalleableStarts,
		Mates:              res.Mates,
		report:             rep,
	}, nil
}
